(* Stand-alone ABSOLVER executable (the paper's Sec. 4 "stand-alone
   executable" whose input layer is the extended-DIMACS parser).

     absolver solve FILE [--all-models] [--bool-solver lsat|cdcl] ...
     absolver convert MODEL.mdl [--output ok] [-o FILE]
     absolver gen fischer N | sudoku NAME | steering [-o FILE]
     absolver circuit FILE [-o FILE.dot]
*)

module A = Absolver_core
module M = Absolver_model
module F = Absolver_smtlib.Fischer
module S = Absolver_encodings.Sudoku
module P = Absolver_encodings.Puzzles
module Q = Absolver_numeric.Rational
module Telemetry = Absolver_telemetry.Telemetry
module Budget = Absolver_resource.Budget
open Cmdliner

let read_problem path =
  match A.Dimacs_ext.parse_file path with
  | Ok p -> Ok p
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let registry_of_name = function
  | "lsat" -> Ok A.Registry.default
  | "cdcl" -> Ok A.Registry.with_chaff
  | other -> Error (Printf.sprintf "unknown Boolean solver %S (lsat|cdcl)" other)

let write_or_print output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s\n" path

(* ---- solve ---- *)

let solve_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Problem in extended-DIMACS format.")
  in
  let all_models =
    Arg.(value & flag & info [ "all-models" ] ~doc:"Enumerate every solution (LSAT mode).")
  in
  let limit =
    Arg.(value & opt int 0 & info [ "limit" ] ~docv:"N"
           ~doc:"Stop after N solutions in --all-models mode (0 = no limit).")
  in
  let bool_solver =
    Arg.(value & opt string "lsat" & info [ "bool-solver" ] ~docv:"NAME"
           ~doc:"Boolean solver: lsat (incremental all-solutions) or cdcl (restarting zChaff-like).")
  in
  let minimize =
    Arg.(value & flag & info [ "minimize-conflicts" ]
           ~doc:"Deletion-filter linear conflict sets to minimal cores.")
  in
  let no_presolve =
    Arg.(value & flag & info [ "no-presolve" ]
           ~doc:"Disable the presolve layer (SAT inprocessing, LP presolve, \
                 interval propagation); exact pre-presolve engine behaviour.")
  in
  let no_incremental =
    Arg.(value & flag & info [ "no-incremental" ]
           ~doc:"Disable the incremental LP session (warm-started simplex, \
                 theory-verdict cache, float-filtered pivoting); every \
                 linear check solves from scratch. Verdicts are identical \
                 either way.")
  in
  let no_relax =
    Arg.(value & flag & info [ "no-relax" ]
           ~doc:"Disable the branch-and-prune linear-relaxation layer \
                 (LP cuts from sound linear enclosures of the nonlinear \
                 atoms, octagon screening, optimization-based bounds \
                 tightening); the nonlinear search falls back to pure \
                 interval contraction. Verdicts are identical either way.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print statistics.") in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print a per-phase statistics summary (span timings, solver \
                 counters) after the verdict, without the --verbose noise.")
  in
  let stats_json =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write aggregated statistics (run stats, counters, per-span \
                 timings) to FILE as one JSON object.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Stream a JSONL telemetry trace to FILE: one object per line \
                 (meta, nested spans with per-span counter deltas, events, \
                 final counter totals). Analyse with $(b,absolver trace).")
  in
  let metrics_file =
    Arg.(value & opt (some string) None & info [ "metrics-file" ] ~docv:"FILE"
           ~doc:"Write the run's telemetry (counters, latency and work \
                 histograms, per-span totals) to FILE in Prometheus \
                 text-exposition format at exit.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Wall-clock deadline (monotonic clock). A run cut short \
                 answers unknown (timeout) with partial statistics and \
                 exits 0: resource exhaustion is a graceful outcome, not \
                 an error.")
  in
  let max_steps =
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N"
           ~doc:"Abstract work budget: total solver steps (CDCL search \
                 iterations, simplex pivots, contraction rounds) before \
                 the run degrades to unknown.")
  in
  let mem_budget =
    Arg.(value & opt (some int) None & info [ "mem-budget" ] ~docv:"WORDS"
           ~doc:"Approximate allocation budget in heap words (measured via \
                 the GC's minor counters) before the run degrades to \
                 unknown.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the nonlinear branch-and-prune oracle. \
                 1 (the default) is the historical sequential search, \
                 bit-for-bit; N>1 runs the box worklist as a work-stealing \
                 frontier with identical SAT/UNSAT verdicts.")
  in
  let portfolio =
    Arg.(value & flag & info [ "portfolio" ]
           ~doc:"Race the ABSOLVER pipeline against the DPLL(T) baselines \
                 on separate domains; the first definitive verdict wins \
                 and cancels the losers.")
  in
  let run file all_models limit bool_solver minimize no_presolve no_incremental
      no_relax verbose stats_flag stats_json trace metrics_file timeout
      max_steps mem_budget jobs portfolio =
    match (read_problem file, registry_of_name bool_solver) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      1
    | Ok problem, Ok registry ->
      let registry =
        if jobs > 1 then
          {
            registry with
            A.Registry.nonlinear = [ A.Registry.branch_prune_solver ~jobs () ];
          }
        else registry
      in
      let trace_oc = Option.map open_out trace in
      let tel =
        if stats_flag || stats_json <> None || trace_oc <> None
           || metrics_file <> None then
          Telemetry.create ?trace:trace_oc ()
        else Telemetry.disabled
      in
      let budget =
        if timeout = None && max_steps = None && mem_budget = None then
          Budget.unlimited
        else
          Budget.create ?deadline_seconds:timeout ?max_steps
            ?max_words:mem_budget ()
      in
      let options =
        {
          A.Engine.default_options with
          A.Engine.minimize_conflicts = minimize;
          use_presolve = not no_presolve;
          use_incremental = not no_incremental;
          use_bp_relaxation = not no_relax;
          telemetry = tel;
          budget;
        }
      in
      (* Shared epilogue: human summary, JSON dump, trace flush. *)
      let write_metrics () =
        match metrics_file with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          output_string oc (Absolver_telemetry.Prometheus.render tel);
          close_out oc
      in
      let finish stats =
        Telemetry.close tel;
        write_metrics ();
        if stats_flag then begin
          Format.printf "%a@." A.Engine.pp_run_stats stats;
          if Telemetry.enabled tel then
            Format.printf "%a@." Telemetry.pp_summary tel
        end;
        (match stats_json with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          output_string oc
            (Telemetry.Json.obj
               [
                 ("run_stats", A.Engine.run_stats_json stats);
                 ("telemetry", Telemetry.stats_json tel);
               ]);
          output_char oc '\n';
          close_out oc);
        Option.iter close_out trace_oc
      in
      if all_models then begin
        let limit = if limit <= 0 then max_int else limit in
        match A.Engine.all_models ~registry ~options ~limit problem with
        | Error e ->
          Option.iter close_out trace_oc;
          prerr_endline ("error: " ^ e);
          1
        | Ok (models, stats) ->
          Printf.printf "%d solution(s)\n" (List.length models);
          (match stats.A.Engine.budget_exhausted with
          | Some e ->
            Printf.printf "stopped early (%s); the enumeration is partial\n"
              (Absolver_resource.Absolver_error.to_string e)
          | None -> ());
          List.iteri
            (fun i sol ->
              Format.printf "@[<v>-- solution %d:@,%a@]@." (i + 1)
                (A.Solution.pp problem) sol)
            models;
          if verbose then Format.printf "%a@." A.Engine.pp_run_stats stats;
          finish stats;
          0
      end
      else if portfolio then begin
        let result, winner =
          Absolver_baselines.Portfolio.solve ~registry ~options problem
        in
        Format.printf "%a@." (A.Engine.pp_result problem) result;
        (match winner with
        | Some name -> Printf.printf "portfolio winner: %s\n" name
        | None -> ());
        Telemetry.close tel;
        write_metrics ();
        if stats_flag && Telemetry.enabled tel then
          Format.printf "%a@." Telemetry.pp_summary tel;
        Option.iter close_out trace_oc;
        match result with
        | A.Engine.R_sat _ -> 0
        | A.Engine.R_unsat -> 20
        | A.Engine.R_unknown _ ->
          if Budget.tripped budget <> None then 0 else 30
      end
      else begin
        let result, stats = A.Engine.solve ~registry ~options problem in
        Format.printf "%a@." (A.Engine.pp_result problem) result;
        if verbose then Format.printf "%a@." A.Engine.pp_run_stats stats;
        finish stats;
        match result with
        | A.Engine.R_sat _ -> 0
        | A.Engine.R_unsat -> 20
        | A.Engine.R_unknown _ ->
          (* Running out of budget is the requested behaviour, not a
             failure: exit 0 so timed batch runs don't read as errors. *)
          if stats.A.Engine.budget_exhausted <> None then 0 else 30
      end
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Decide an AB-problem (extended DIMACS).")
    Term.(
      const run $ file $ all_models $ limit $ bool_solver $ minimize
      $ no_presolve $ no_incremental $ no_relax $ verbose $ stats_flag
      $ stats_json $ trace $ metrics_file $ timeout $ max_steps $ mem_budget
      $ jobs $ portfolio)

(* ---- convert ---- *)

let convert_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL"
           ~doc:"Simulink-like textual model (see Simulink_text).")
  in
  let output_sig =
    Arg.(value & opt string "" & info [ "output-signal" ] ~docv:"NAME"
           ~doc:"Outport to analyse (default: the first one).")
  in
  let witness =
    Arg.(value & flag & info [ "witness" ]
           ~doc:"Assert the output itself instead of its negation.")
  in
  let emit_lustre =
    Arg.(value & flag & info [ "lustre" ] ~doc:"Print the LUSTRE-like intermediate form instead.")
  in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE") in
  let run file output_sig witness emit_lustre out =
    match M.Simulink_text.parse_file file with
    | Error e ->
      prerr_endline e;
      1
    | Ok (name, diagram) -> (
      match M.Lustre.of_diagram ~name diagram with
      | Error e ->
        prerr_endline e;
        1
      | Ok node ->
        if emit_lustre then begin
          write_or_print out (M.Lustre.to_string node);
          0
        end
        else begin
          let output_sig =
            if output_sig <> "" then output_sig
            else
              match node.M.Lustre.outputs with
              | o :: _ -> o
              | [] -> ""
          in
          let goal = if witness then `Find_witness else `Find_violation in
          match M.Convert.node_to_ab ~goal ~output:output_sig node with
          | Error e ->
            prerr_endline e;
            1
          | Ok problem ->
            write_or_print out (A.Dimacs_ext.to_string problem);
            0
        end)
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert a Simulink-like model to ABSOLVER input (Fig. 3 work-flow).")
    Term.(const run $ file $ output_sig $ witness $ emit_lustre $ out)

(* ---- gen ---- *)

let gen_cmd =
  let what =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND"
           ~doc:"fischer | sudoku | steering | sudoku-baseline")
  in
  let param =
    Arg.(value & pos 1 string "" & info [] ~docv:"PARAM"
           ~doc:"fischer: process count; sudoku: instance name.")
  in
  let rounds = Arg.(value & opt int 6 & info [ "rounds" ] ~docv:"K") in
  let smt =
    Arg.(value & flag & info [ "smt" ] ~doc:"For fischer: emit SMT-LIB 1.2 text instead.")
  in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE") in
  let run what param rounds smt out =
    let emit problem =
      write_or_print out (A.Dimacs_ext.to_string problem);
      0
    in
    match what with
    | "fischer" -> (
      match int_of_string_opt param with
      | None ->
        prerr_endline "fischer needs a process count";
        1
      | Some n ->
        if smt then begin
          write_or_print out (Absolver_smtlib.Ast.to_string (F.benchmark ~rounds ~n ()));
          0
        end
        else (
          match F.problem ~rounds ~n () with
          | Ok p -> emit p
          | Error e ->
            prerr_endline e;
            1))
    | "sudoku" | "sudoku-baseline" -> (
      match P.find param with
      | None ->
        Printf.eprintf "unknown puzzle %S; available:\n" param;
        List.iter (fun (n, _) -> prerr_endline ("  " ^ n)) P.all;
        1
      | Some puzzle ->
        emit
          (if what = "sudoku" then S.absolver_problem puzzle
           else S.baseline_problem puzzle))
    | "steering" -> emit (M.Steering.problem ())
    | other ->
      Printf.eprintf "unknown generator %S\n" other;
      1
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate benchmark instances in ABSOLVER's input format.")
    Term.(const run $ what $ param $ rounds $ smt $ out)

(* ---- circuit ---- *)

let circuit_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"DOT") in
  let run file out =
    match read_problem file with
    | Error e ->
      prerr_endline e;
      1
    | Ok problem ->
      let circuit = A.Ab_problem.to_circuit problem in
      let name v = A.Ab_problem.arith_var_name problem v in
      write_or_print out (Absolver_circuit.Circuit.to_dot ~arith_name:name circuit);
      0
  in
  Cmd.v
    (Cmd.info "circuit"
       ~doc:"Render a problem's internal circuit representation (Fig. 5) as GraphViz.")
    Term.(const run $ file $ out)

(* ---- serve ---- *)

let serve_cmd =
  let module Server = Absolver_server.Server in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
      ~doc:"Listen on a Unix-domain socket at $(docv) (default: serve one session on stdin/stdout).")
  in
  let max_clients =
    Arg.(value & opt int Server.default_config.Server.max_clients
      & info [ "max-clients" ] ~docv:"N" ~doc:"Concurrent connection cap.")
  in
  let default_timeout =
    Arg.(value & opt int 30_000 & info [ "default-timeout" ] ~docv:"MS"
      ~doc:"Per-request deadline in milliseconds when the request names none; 0 disables it.")
  in
  let workers =
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
      ~doc:"Solver worker domains (default: a machine-sized pool).")
  in
  let client_cap =
    Arg.(value & opt int Server.default_config.Server.client_cap
      & info [ "client-cap" ] ~docv:"N"
      ~doc:"Pending requests admitted per client before rejection.")
  in
  let queue_capacity =
    Arg.(value & opt int Server.default_config.Server.queue_capacity
      & info [ "queue-capacity" ] ~docv:"N"
      ~doc:"Global executor queue bound (admission backstop).")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
      ~doc:"Stream a JSONL request trace to $(docv): every solve/smt2 \
            request records a span tree tagged with a minted trace id, \
            echoed in the response. Analyse with $(b,absolver trace).")
  in
  let slow_log =
    Arg.(value & opt (some string) None & info [ "slow-log" ] ~docv:"FILE"
      ~doc:"Append a structured JSONL record (op, verdict, latency, budget \
            outcome, LP-cache hits, trace id) for every request at or over \
            the $(b,--slow-ms) threshold.")
  in
  let slow_ms =
    Arg.(value & opt float Server.default_config.Server.slow_ms
      & info [ "slow-ms" ] ~docv:"MS" ~doc:"Slow-query threshold for $(b,--slow-log).")
  in
  let metrics_file =
    Arg.(value & opt (some string) None & info [ "metrics-file" ] ~docv:"FILE"
      ~doc:"Write the server aggregate in Prometheus text-exposition format \
            to $(docv) at shutdown (live scraping uses the $(b,metrics) op).")
  in
  let idle_timeout =
    Arg.(value & opt float 300.0 & info [ "idle-timeout" ] ~docv:"SECONDS"
      ~doc:"Reclaim a connection after this much inactivity (counted from \
            the last byte received or reply written; suspended while the \
            connection has a request in flight). 0 disables it.")
  in
  let read_deadline =
    Arg.(value & opt float 30.0 & info [ "read-deadline" ] ~docv:"SECONDS"
      ~doc:"A frame, once its first byte arrived, must complete within \
            $(docv) or the connection is reclaimed. 0 disables it.")
  in
  let max_frame_bytes =
    Arg.(value & opt int (64 * 1024 * 1024) & info [ "max-frame-bytes" ] ~docv:"BYTES"
      ~doc:"Cap on one request frame; an oversized frame gets one framed \
            error reply and the connection is closed, so adversarial input \
            cannot exhaust memory. 0 removes the cap.")
  in
  let run socket max_clients default_timeout workers client_cap queue_capacity
      trace slow_log slow_ms metrics_file idle_timeout read_deadline
      max_frame_bytes =
    let trace_oc = Option.map open_out trace in
    let slow_oc =
      Option.map
        (fun p -> open_out_gen [ Open_append; Open_creat ] 0o644 p)
        slow_log
    in
    let config =
      {
        Server.default_config with
        Server.max_clients;
        client_cap;
        queue_capacity;
        workers =
          (match workers with
          | Some w -> max 1 w
          | None -> Server.default_config.Server.workers);
        default_timeout_ms =
          (if default_timeout > 0 then Some default_timeout else None);
        io =
          {
            Absolver_server.Io.idle_timeout_s =
              (if idle_timeout > 0.0 then Some idle_timeout else None);
            read_deadline_s =
              (if read_deadline > 0.0 then Some read_deadline else None);
            max_frame_bytes =
              (if max_frame_bytes > 0 then max_frame_bytes else max_int);
          };
        trace = trace_oc;
        slow_log = slow_oc;
        slow_ms;
      }
    in
    let srv = Server.create ~config () in
    let stop _ = Server.request_stop srv in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let finish code =
      (match metrics_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Server.metrics_text srv);
        close_out oc);
      Option.iter close_out trace_oc;
      Option.iter close_out slow_oc;
      code
    in
    match socket with
    | Some path -> (
      match Server.serve_socket srv ~path with
      | Ok () ->
        Server.shutdown srv;
        finish 0
      | Error e ->
        prerr_endline ("serve: " ^ e);
        Server.shutdown srv;
        finish 1)
    | None ->
      Server.serve_channel srv stdin stdout;
      Server.shutdown srv;
      finish 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the solve server: line-delimited JSON or SMT-LIB 2 over \
             stdin/stdout or a Unix-domain socket.")
    Term.(
      const run $ socket $ max_clients $ default_timeout $ workers $ client_cap
      $ queue_capacity $ trace $ slow_log $ slow_ms $ metrics_file
      $ idle_timeout $ read_deadline $ max_frame_bytes)

(* ---- client ---- *)

let client_cmd =
  let module Client = Absolver_client.Client in
  let socket =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
      ~doc:"The server's Unix-domain socket.")
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
      ~doc:"SMT-LIB 2 script to run (default: read stdin).")
  in
  let attempts =
    Arg.(value & opt int Client.default_config.Client.max_attempts
      & info [ "attempts" ] ~docv:"N"
      ~doc:"Tries per command (the first included) before giving up.")
  in
  let request_timeout =
    Arg.(value & opt float Client.default_config.Client.request_timeout_s
      & info [ "request-timeout" ] ~docv:"SECONDS"
      ~doc:"Reply deadline per attempt; expiry triggers a retry.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
      ~doc:"Backoff-jitter PRNG seed (same seed, same retry schedule).")
  in
  let journal_solves =
    Arg.(value & flag & info [ "journal-solves" ]
      ~doc:"Also replay check-sat/get-model commands after a reconnect, \
            reconstructing the server's warm solver state exactly.")
  in
  let metrics_file =
    Arg.(value & opt (some string) None & info [ "metrics-file" ] ~docv:"FILE"
      ~doc:"Write client-side counters (retries, reconnects, replayed \
            commands) in Prometheus text-exposition format to $(docv) at exit.")
  in
  let run socket file attempts request_timeout seed journal_solves metrics_file =
    let script =
      match file with
      | Some path ->
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      | None -> In_channel.input_all stdin
    in
    let config =
      {
        Client.default_config with
        Client.max_attempts = max 1 attempts;
        request_timeout_s = request_timeout;
        seed;
        journal_solves;
      }
    in
    let write_metrics cl =
      match metrics_file with
      | None -> ()
      | Some path ->
        (* written directly, not via Telemetry: zero-valued counters
           must still be present so scrapes see the family *)
        let oc = open_out path in
        List.iter
          (fun (name, v) ->
            Printf.fprintf oc "# TYPE %s counter\n%s %d\n" name name v)
          [
            ("absolver_client_retries_total", Client.retries cl);
            ("absolver_client_reconnects_total", Client.reconnects cl);
            ( "absolver_client_replayed_commands_total",
              Client.replayed cl );
          ];
        close_out oc
    in
    match Client.connect ~config ~path:socket () with
    | Error e ->
      prerr_endline ("client: " ^ e);
      1
    | Ok cl -> (
      match Client.run_script cl script with
      | Ok replies ->
        List.iter print_endline replies;
        write_metrics cl;
        Client.close cl;
        0
      | Error e ->
        prerr_endline ("client: " ^ e);
        write_metrics cl;
        Client.close cl;
        1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Run an SMT-LIB 2 script against a solve server through the \
             fault-tolerant session client: transport faults are retried \
             with seeded backoff, and a dropped connection is rebuilt by \
             replaying the command journal.")
    Term.(
      const run $ socket $ file $ attempts $ request_timeout $ seed
      $ journal_solves $ metrics_file)

(* ---- trace ---- *)

let trace_cmd =
  let module T = Absolver_tracetool.Tracetool in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"JSONL trace written by $(b,solve --trace) or $(b,serve --trace).")
  in
  let tree = Arg.(value & flag & info [ "tree" ] ~doc:"Print only the span trees.") in
  let aggregates_flag =
    Arg.(value & flag & info [ "aggregates" ] ~doc:"Print only the per-name aggregates.")
  in
  let critical =
    Arg.(value & flag & info [ "critical-path" ]
           ~doc:"Print only each root's critical path (longest-duration \
                 child chain).")
  in
  let folded_flag =
    Arg.(value & flag & info [ "folded" ]
           ~doc:"Print flamegraph-ready folded stacks (self time in \
                 microseconds) and nothing else; pipe to flamegraph.pl.")
  in
  let trace_id =
    Arg.(value & opt (some string) None & info [ "trace-id" ] ~docv:"ID"
           ~doc:"Restrict to one request's span tree (the trace id echoed \
                 in the server's response).")
  in
  let max_depth =
    Arg.(value & opt int max_int & info [ "max-depth" ] ~docv:"N"
           ~doc:"Truncate printed trees below depth N.")
  in
  let run file tree aggregates_flag critical folded_flag trace_id max_depth =
    match T.load file with
    | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      1
    | Ok t ->
      let roots = T.roots ?trace_id t in
      (match (trace_id, roots) with
      | Some tid, [] ->
        Printf.eprintf "no spans tagged with trace id %s\n" tid
      | _ -> ());
      if folded_flag then
        List.iter
          (fun (stack, us) -> Printf.printf "%s %d\n" stack us)
          (T.folded ?trace_id t)
      else begin
        let explicit = tree || aggregates_flag || critical in
        let show_summary = not explicit in
        let show_tree = tree || not explicit in
        let show_aggs = aggregates_flag || not explicit in
        let show_crit = critical || not explicit in
        if show_summary then print_string (T.render_summary t);
        if show_tree then
          List.iter
            (fun root ->
              if show_summary then print_newline ();
              print_string (T.render_tree ~max_depth t root))
            roots;
        if show_aggs then begin
          if show_summary then print_newline ();
          print_string (T.render_aggregates t)
        end;
        if show_crit then
          List.iter
            (fun root ->
              if show_summary then print_newline ();
              print_string (T.render_critical_path t root))
            roots
      end;
      if T.unresolved t = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Analyse a JSONL telemetry trace: span trees, per-name \
             aggregates, critical paths, folded stacks.")
    Term.(
      const run $ file $ tree $ aggregates_flag $ critical $ folded_flag
      $ trace_id $ max_depth)

let main =
  let doc = "ABSOLVER: an extensible multi-domain constraint solver (DATE'07 reproduction)" in
  Cmd.group
    (Cmd.info "absolver" ~version:"1.0.0" ~doc)
    [ solve_cmd; convert_cmd; gen_cmd; circuit_cmd; serve_cmd; client_cmd; trace_cmd ]

let () = exit (Cmd.eval' main)
