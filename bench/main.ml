(* Benchmark harness: regenerates every table of the paper's evaluation
   (Sec. 5) plus the ablation studies DESIGN.md calls out.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table1     -- nonlinear problems (Table 1)
     dune exec bench/main.exe table2     -- SMT-LIB FISCHER family (Table 2)
     dune exec bench/main.exe table3     -- Sudoku (Table 3)
     dune exec bench/main.exe ablations  -- design-choice ablations
     dune exec bench/main.exe micro      -- Bechamel micro-benchmarks
     dune exec bench/main.exe json       -- presolve on/off comparison,
                                            written to BENCH_presolve.json
     dune exec bench/main.exe parallel   -- --jobs 1/2/4 speedups and the
                                            portfolio, written to
                                            BENCH_parallel.json
     dune exec bench/main.exe incremental -- from-scratch vs warm-started
                                            vs cached LP sessions, written
                                            to BENCH_incremental.json
     dune exec bench/main.exe server     -- mixed workload through the solve
                                            server at 1/4/16 clients, written
                                            to BENCH_server.json
     dune exec bench/main.exe chaos      -- session workload over a socket,
                                            fault-free vs the seeded network
                                            fault injector, plus the half-open
                                            reclaim time, written to
                                            BENCH_chaos.json
     dune exec bench/main.exe relax      -- branch-and-prune with the linear
                                            relaxation layer on vs off,
                                            written to BENCH_relax.json

   Absolute times are not expected to match a 2007 notebook; the shapes
   (who wins, rough factors, where solvers reject or abort) are. *)

module A = Absolver_core
module B = Absolver_baselines
module M = Absolver_model
module F = Absolver_smtlib.Fischer
module S = Absolver_encodings.Sudoku
module P = Absolver_encodings.Puzzles
module Q = Absolver_numeric.Rational
module BP = Absolver_nlp.Branch_prune
module Expr = Absolver_nlp.Expr
module Linexpr = Absolver_lp.Linexpr
module Telemetry = Absolver_telemetry.Telemetry

let time f =
  let t0 = Telemetry.Clock.now () in
  let r = f () in
  (r, Telemetry.Clock.now () -. t0)

let fmt_time s =
  (* the paper's 0mS.SSSs format *)
  let m = int_of_float (s /. 60.0) in
  Printf.sprintf "%dm%.3fs" m (s -. (60.0 *. float_of_int m))

let engine_verdict = function
  | A.Engine.R_sat _ -> "sat"
  | A.Engine.R_unsat -> "unsat"
  | A.Engine.R_unknown _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Table 1: nonlinear problems.                                        *)

(* esat_n11_m8_nonlinear: 11 clauses, 8 Boolean variables, 9 linear and
   2 nonlinear expressions (the published statistics). *)
let esat_problem () =
  let text =
    {|p cnf 8 11
1 2 0
-1 3 0
2 -3 4 0
-4 5 0
5 6 0
-6 7 0
7 -8 0
1 -5 8 0
-2 -7 0
3 4 -6 0
2 5 7 0
c def real 1 u + v >= 1
c def real 2 u - v <= 3
c def real 3 2 * u + w <= 10
c def real 4 w - v >= -2
c def real 5 u + v + w <= 12
c def real 6 v >= 0
c def real 6 u + 2 * v <= 15
c def real 7 u >= 0
c def real 7 w >= 0
c def real 8 u * v <= 6
c def real 8 w * w >= 0.25
c bound u -20 20
c bound v -20 20
c bound w -20 20
|}
  in
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> failwith ("esat: " ^ e)

(* nonlinear_unsat: 1 clause, 1 variable, 2 nonlinear expressions that
   cannot hold together. *)
let nonlinear_unsat_problem () =
  let text =
    {|p cnf 1 1
1 0
c def real 1 x * x + y * y <= 1
c def real 1 x * y >= 2
c bound x -10 10
c bound y -10 10
|}
  in
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> failwith ("nonlinear_unsat: " ^ e)

(* div_operator: the paper's example of how cheap adding '/' was — one
   clause, one variable, 4 linear and 1 nonlinear expression. *)
let div_operator_problem () =
  let text =
    {|p cnf 1 1
1 0
c def real 1 a >= 1
c def real 1 a <= 5
c def real 1 b >= 2
c def real 1 b <= 6
c def real 1 a / b >= 0.5
c bound a -100 100
c bound b -100 100
|}
  in
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> failwith ("div_operator: " ^ e)

let steering_registry =
  {
    A.Registry.default with
    A.Registry.nonlinear =
      [
        A.Registry.branch_prune_solver
          ~config:
            {
              BP.default_config with
              BP.max_nodes = 600;
              samples_per_node = 2;
              root_samples = 2048;
            }
          ();
      ];
  }

let table1 () =
  print_endline "== Table 1: nonlinear problems =====================================";
  Printf.printf "%-28s %6s %6s %8s %8s  %-10s %s\n" "Benchmark" "#Cl." "#Var."
    "#linear" "#nonlin." "ABSOLVER" "(result)";
  let row name problem ~registry ~expect =
    let stats = A.Ab_problem.stats problem in
    let defined = List.length (A.Ab_problem.defined_vars problem) in
    let (result, _), dt = time (fun () -> A.Engine.solve ~registry problem) in
    Printf.printf "%-28s %6d %6d %8d %8d  %-10s (%s, expected %s)\n" name
      stats.A.Ab_problem.n_clauses defined stats.A.Ab_problem.n_linear
      stats.A.Ab_problem.n_nonlinear (fmt_time dt) (engine_verdict result)
      expect;
    (match result with
    | A.Engine.R_sat sol -> (
      match A.Solution.check problem sol with
      | Ok () -> ()
      | Error e -> Printf.printf "  !! solution check failed: %s\n" e)
    | A.Engine.R_unsat | A.Engine.R_unknown _ -> ());
    flush stdout
  in
  row "Car steering" (M.Steering.problem ()) ~registry:steering_registry
    ~expect:"sat";
  row "esat_n11_m8_nonlinear" (esat_problem ()) ~registry:A.Registry.default
    ~expect:"sat";
  row "nonlinear_unsat" (nonlinear_unsat_problem ()) ~registry:A.Registry.default
    ~expect:"unsat";
  row "div_operator" (div_operator_problem ()) ~registry:A.Registry.default
    ~expect:"sat";
  (* The paper's remark: both comparison solvers reject these inputs. *)
  print_endline "-- comparative solvers on the same problems:";
  List.iter
    (fun (name, problem) ->
      Printf.printf "%-28s CVC-Lite-like: %-22s MathSAT-like: %s\n" name
        (Format.asprintf "%a" B.Common.pp_result (B.Cvclite_like.solve problem))
        (Format.asprintf "%a" B.Common.pp_result (B.Mathsat_like.solve problem)))
    [
      ("Car steering", M.Steering.problem ());
      ("esat_n11_m8_nonlinear", esat_problem ());
      ("nonlinear_unsat", nonlinear_unsat_problem ());
      ("div_operator", div_operator_problem ());
    ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table 2: SMT-LIB (FISCHER family).                                  *)

let table2 () =
  print_endline "== Table 2: SMT-LIB benchmarks (FISCHER family) ====================";
  Printf.printf "%-24s %-12s %-12s %-12s\n" "Benchmark" "ABSOLVER" "CVC-Lite-like"
    "MathSAT-like";
  let rounds = 6 in
  let property = F.Cs_within (Q.of_int 2) in
  for n = 1 to 11 do
    match F.problem ~rounds ~property ~n () with
    | Error e -> Printf.printf "FISCHER%d: generation error %s\n" n e
    | Ok problem ->
      let (ra, _), ta = time (fun () -> A.Engine.solve problem) in
      let rc, tc = time (fun () -> B.Cvclite_like.solve ~deadline_seconds:120.0 problem) in
      let rm, tm = time (fun () -> B.Mathsat_like.solve ~deadline_seconds:120.0 problem) in
      let agree =
        let s r = B.Common.result_name r in
        engine_verdict ra = s rc && s rc = s rm
      in
      Printf.printf "%-24s %-12s %-12s %-12s %s\n"
        (Printf.sprintf "FISCHER%d-1-fair.smt" n)
        (fmt_time ta) (fmt_time tc) (fmt_time tm)
        (if agree then "(all " ^ engine_verdict ra ^ ")"
         else
           Printf.sprintf "(disagree: %s/%s/%s)" (engine_verdict ra)
             (B.Common.result_name rc) (B.Common.result_name rm));
      flush stdout
  done;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table 3: Sudoku.                                                    *)

let table3 ?(baseline_deadline = 30.0) () =
  print_endline "== Table 3: Sudoku puzzles =========================================";
  Printf.printf "%-20s %-12s %-22s %-12s\n" "Benchmark" "ABSOLVER" "CVC-Lite-like"
    "MathSAT-like";
  List.iter
    (fun (name, puzzle) ->
      let problem = S.absolver_problem puzzle in
      let (ra, _), ta = time (fun () -> A.Engine.solve problem) in
      (match ra with
      | A.Engine.R_sat sol ->
        let grid = S.decode problem sol in
        if not (S.is_complete_and_valid grid && S.respects_clues ~clues:puzzle grid)
        then Printf.printf "  !! %s: invalid grid returned\n" name
      | A.Engine.R_unsat | A.Engine.R_unknown _ ->
        Printf.printf "  !! %s: ABSOLVER failed to solve\n" name);
      let bp = S.baseline_problem puzzle in
      let rc, tc =
        time (fun () -> B.Cvclite_like.solve ~deadline_seconds:baseline_deadline bp)
      in
      let rm, tm =
        time (fun () -> B.Mathsat_like.solve ~deadline_seconds:baseline_deadline bp)
      in
      let show r t =
        match r with
        | B.Common.B_out_of_memory -> Printf.sprintf "-* (oom, %s)" (fmt_time t)
        | B.Common.B_unknown _ -> Printf.sprintf ">%s" (fmt_time t)
        | B.Common.B_sat _ | B.Common.B_unsat | B.Common.B_rejected _ ->
          fmt_time t
      in
      Printf.printf "%-20s %-12s %-22s %-12s\n" name (fmt_time ta) (show rc tc)
        (show rm tm);
      flush stdout)
    P.all;
  Printf.printf
    "(-* marks simulated out-of-memory aborts; >T marks the %.0fs deadline.)\n\n"
    baseline_deadline

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)

let ablations () =
  print_endline "== Ablations =======================================================";
  (* 1. LSAT-style incremental enumeration vs zChaff-style external
        restarts (paper Sec. 4's remark on the cost of restarting). *)
  print_endline "-- all-models enumeration: incremental (LSAT) vs restarting (zChaff)";
  let puzzle = P.generate ~name:"ablation" ~clues:24 in
  let problem () = S.absolver_problem puzzle in
  let run registry =
    time (fun () ->
        match A.Engine.all_models ~registry ~limit:25 (problem ()) with
        | Ok (models, _) -> List.length models
        | Error e -> failwith e)
  in
  let n1, t_inc = run A.Registry.default in
  let n2, t_restart = run A.Registry.with_chaff in
  Printf.printf "   incremental: %d models in %s\n" n1 (fmt_time t_inc);
  flush stdout;
  Printf.printf "   restarting : %d models in %s (%.1fx slower)\n" n2
    (fmt_time t_restart)
    (t_restart /. Float.max 1e-9 t_inc);
  flush stdout;
  (* 2. Conflict-set minimization on/off. *)
  print_endline "-- smallest-conflicting-subset refinement (deletion filtering)";
  let fischer =
    match F.problem ~rounds:5 ~property:(F.Cs_within (Q.of_int 2)) ~n:6 () with
    | Ok p -> p
    | Error e -> failwith e
  in
  let run_opts options = time (fun () -> A.Engine.solve ~options fischer) in
  let (_, st_plain), t_plain = run_opts A.Engine.default_options in
  let (_, st_min), t_min =
    run_opts { A.Engine.default_options with A.Engine.minimize_conflicts = true }
  in
  Printf.printf "   simplex cores only : %s, %d Boolean models examined\n"
    (fmt_time t_plain) st_plain.A.Engine.bool_models;
  Printf.printf "   + deletion filter  : %s, %d Boolean models examined\n"
    (fmt_time t_min) st_min.A.Engine.bool_models;
  flush stdout;
  (* 3. Linear relaxation of nonlinear constraints on/off. *)
  print_endline "-- linear relaxation of nonlinear subterms in the LP filter";
  let steer () = M.Steering.problem () in
  let run_relax flag =
    time (fun () ->
        A.Engine.solve ~registry:steering_registry
          ~options:
            {
              A.Engine.default_options with
              A.Engine.use_linear_relaxation = flag;
              max_bool_models = 40;
              max_unknown_models = 40;
            }
          (steer ()))
  in
  let (r_on, st_on), t_on = run_relax true in
  let (r_off, st_off), t_off = run_relax false in
  Printf.printf "   relaxation on : %-8s %s (%d models, %d LP conflicts)\n"
    (engine_verdict r_on) (fmt_time t_on) st_on.A.Engine.bool_models
    st_on.A.Engine.linear_conflicts;
  Printf.printf "   relaxation off: %-8s %s (%d models, %d LP conflicts)\n"
    (engine_verdict r_off) (fmt_time t_off) st_off.A.Engine.bool_models
    st_off.A.Engine.linear_conflicts;
  flush stdout;
  (* 4. HC4 contraction on/off inside branch-and-prune. *)
  print_endline "-- HC4 contraction in the nonlinear solver";
  let rels =
    [
      {
        Expr.expr =
          Expr.sub
            (Expr.add (Expr.pow (Expr.var 0) 2) (Expr.pow (Expr.var 1) 2))
            (Expr.const Q.one);
        op = Linexpr.Le;
        tag = 0;
      };
      {
        Expr.expr =
          Expr.sub
            (Expr.const (Q.of_decimal_string "1.5"))
            (Expr.add (Expr.var 0) (Expr.var 1));
        op = Linexpr.Le;
        tag = 1;
      };
    ]
  in
  let box () =
    Absolver_nlp.Box.of_bounds
      [
        (0, Absolver_numeric.Interval.make (-4.0) 4.0);
        (1, Absolver_numeric.Interval.make (-4.0) 4.0);
      ]
      2
  in
  let run_hc4 flag =
    time (fun () ->
        BP.solve
          ~config:{ BP.default_config with BP.use_hc4 = flag; samples_per_node = 0; root_samples = 0 }
          ~nvars:2 ~box:(box ()) rels)
  in
  let (_, stats_on), t_hc4_on = run_hc4 true in
  let (_, stats_off), t_hc4_off = run_hc4 false in
  Printf.printf "   HC4 on : %s, %d nodes explored\n" (fmt_time t_hc4_on)
    stats_on.BP.nodes;
  Printf.printf "   HC4 off: %s, %d nodes explored (%.0fx more)\n"
    (fmt_time t_hc4_off) stats_off.BP.nodes
    (float_of_int stats_off.BP.nodes /. Float.max 1.0 (float_of_int stats_on.BP.nodes));
  flush stdout;
  (* 5. Sudoku encodings: the paper's claim that the mixed encoding beats
        the classic pure-SAT translation [6,12]. *)
  print_endline "-- Sudoku: mixed Boolean+integer encoding vs pure-SAT [6,12]";
  let sudoku_encoding_times name mk =
    let total = ref 0.0 in
    List.iter
      (fun (pname, puzzle) ->
        let problem = mk puzzle in
        let (r, _), t = time (fun () -> A.Engine.solve problem) in
        (match r with
        | A.Engine.R_sat _ -> ()
        | A.Engine.R_unsat | A.Engine.R_unknown _ ->
          Printf.printf "   !! %s unsolved on %s\n" name pname);
        total := !total +. t)
      P.all;
    Printf.printf "   %-22s %s over the 10 Table-3 instances\n" name
      (fmt_time !total);
    flush stdout
  in
  sudoku_encoding_times "mixed (order atoms)" S.absolver_problem;
  sudoku_encoding_times "pure SAT" S.sat_problem;
  (* 6. Equality splitting in the SMT-LIB conversion. *)
  print_endline "-- equality splitting (eq -> le & ge) in the SMT-LIB conversion";
  let bench = F.benchmark ~rounds:3 ~property:(F.Cs_within (Q.of_int 4)) ~n:3 () in
  let convert split =
    match Absolver_smtlib.To_ab.convert_split_eq ~split_eq:split bench with
    | Ok p -> p
    | Error e -> failwith e
  in
  let (r_split, st_split), t_split = time (fun () -> A.Engine.solve (convert true)) in
  let (r_eq, st_eq), t_eq = time (fun () -> A.Engine.solve (convert false)) in
  Printf.printf "   split eq : %-8s %s (%d eq-branches)\n" (engine_verdict r_split)
    (fmt_time t_split) st_split.A.Engine.eq_branches;
  Printf.printf "   plain eq : %-8s %s (%d eq-branches)\n" (engine_verdict r_eq)
    (fmt_time t_eq) st_eq.A.Engine.eq_branches;
  flush stdout;
  (* 7. The presolve layer (SAT inprocessing + LP presolve + ICP) on/off. *)
  print_endline "-- presolve layer (SAT inprocessing + LP presolve + interval prop.)";
  let run_pre flag =
    time (fun () ->
        A.Engine.solve
          ~options:{ A.Engine.default_options with A.Engine.use_presolve = flag }
          fischer)
  in
  let (_, st_pre_on), t_pre_on = run_pre true in
  let (_, st_pre_off), t_pre_off = run_pre false in
  Printf.printf
    "   presolve on : %s (%d vars fixed, %d bounds tightened, %d Boolean models)\n"
    (fmt_time t_pre_on) st_pre_on.A.Engine.presolve_fixed_literals
    st_pre_on.A.Engine.presolve_tightened_bounds st_pre_on.A.Engine.bool_models;
  Printf.printf "   presolve off: %s (%d Boolean models)\n" (fmt_time t_pre_off)
    st_pre_off.A.Engine.bool_models;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Machine-readable presolve comparison: every Table-1/2/3 instance     *)
(* solved with the presolve layer on and off, dumped as JSON — each run *)
(* under an enabled telemetry aggregator, so every entry also carries a *)
(* per-phase timing breakdown (presolve, sat_search, linear_check, …).  *)

let phases_json tel =
  Telemetry.Json.obj
    (List.map
       (fun (name, a) ->
         ( name,
           Telemetry.Json.obj
             [
               ("calls", string_of_int a.Telemetry.agg_calls);
               ("total_s", Telemetry.Json.of_float a.Telemetry.agg_total_s);
               ("max_s", Telemetry.Json.of_float a.Telemetry.agg_max_s);
             ] ))
       (Telemetry.span_aggregates tel))

let json_mode () =
  let entries = ref [] in
  let tot_on = ref 0.0 and tot_off = ref 0.0 in
  let case ~table ~name ?(registry = A.Registry.default) mk =
    let run on =
      let tel = Telemetry.create () in
      let options =
        {
          A.Engine.default_options with
          A.Engine.use_presolve = on;
          telemetry = tel;
        }
      in
      let (r, st), t = time (fun () -> A.Engine.solve ~registry ~options (mk ())) in
      Telemetry.close tel;
      (engine_verdict r, t, st, tel)
    in
    let v_on, t_on, st_on, tel_on = run true in
    let v_off, t_off, st_off, tel_off = run false in
    if v_on <> v_off then
      Printf.printf "!! %s: verdict differs with presolve (%s vs %s)\n" name v_on
        v_off;
    tot_on := !tot_on +. t_on;
    tot_off := !tot_off +. t_off;
    let side v t st tel =
      Telemetry.Json.obj
        [
          ("verdict", Printf.sprintf "%S" v);
          ("seconds", Telemetry.Json.of_float t);
          ("stats", A.Engine.run_stats_json st);
          ("phases", phases_json tel);
        ]
    in
    entries :=
      Printf.sprintf
        "    {\"table\":%S,\"name\":%S,\n\
        \     \"presolve_on\":%s,\n\
        \     \"presolve_off\":%s}"
        table name
        (side v_on t_on st_on tel_on)
        (side v_off t_off st_off tel_off)
      :: !entries;
    Printf.printf "%-26s on %-10s off %-10s (%s)\n" name (fmt_time t_on)
      (fmt_time t_off) v_on;
    flush stdout
  in
  case ~table:"table1" ~name:"car_steering" ~registry:steering_registry
    (fun () -> M.Steering.problem ());
  case ~table:"table1" ~name:"esat_n11_m8_nonlinear" esat_problem;
  case ~table:"table1" ~name:"nonlinear_unsat" nonlinear_unsat_problem;
  case ~table:"table1" ~name:"div_operator" div_operator_problem;
  for n = 1 to 6 do
    case ~table:"table2" ~name:(Printf.sprintf "fischer%d" n) (fun () ->
        match F.problem ~rounds:6 ~property:(F.Cs_within (Q.of_int 2)) ~n () with
        | Ok p -> p
        | Error e -> failwith e)
  done;
  List.iter
    (fun (pname, puzzle) ->
      case ~table:"table3" ~name:("sudoku_" ^ pname) (fun () ->
          S.absolver_problem puzzle))
    P.all;
  let body = String.concat ",\n" (List.rev !entries) in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"presolve on/off\",\n\
      \  \"total_seconds_presolve_on\": %.6f,\n\
      \  \"total_seconds_presolve_off\": %.6f,\n\
      \  \"cases\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      !tot_on !tot_off body
  in
  let oc = open_out "BENCH_presolve.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "totals: presolve on %s, presolve off %s\nwrote BENCH_presolve.json\n"
    (fmt_time !tot_on) (fmt_time !tot_off)

(* ------------------------------------------------------------------ *)
(* Parallel mode: the Table-1 nonlinear instances at --jobs 1/2/4 with *)
(* per-case speedups, plus a portfolio run per case, dumped as JSON.   *)

let parallel_mode () =
  let job_counts = [ 1; 2; 4 ] in
  let cores = Absolver_parallel.Pool.available_cores () in
  Printf.printf "cores available: %d\n" cores;
  let entries = ref [] in
  let case ~name ?(config = BP.default_config) mk =
    let run jobs =
      let registry =
        {
          A.Registry.default with
          A.Registry.nonlinear = [ A.Registry.branch_prune_solver ~config ~jobs () ];
        }
      in
      let (r, _), t = time (fun () -> A.Engine.solve ~registry (mk ())) in
      (engine_verdict r, t)
    in
    let runs = List.map (fun j -> (j, run j)) job_counts in
    let t1 =
      match runs with (1, (_, t)) :: _ -> t | _ -> assert false
    in
    let verdicts = List.map (fun (_, (v, _)) -> v) runs in
    let agree = List.for_all (fun v -> v = List.hd verdicts) verdicts in
    if not agree then
      Printf.printf "!! %s: verdicts differ across job counts: %s\n" name
        (String.concat "/" verdicts);
    (* Portfolio: engine (with this case's oracle config) vs baselines. *)
    let registry =
      {
        A.Registry.default with
        A.Registry.nonlinear = [ A.Registry.branch_prune_solver ~config () ];
      }
    in
    let (pr, pwinner), pt =
      time (fun () -> B.Portfolio.solve ~registry (mk ()))
    in
    let runs_json =
      List.map
        (fun (j, (v, t)) ->
          Telemetry.Json.obj
            [
              ("jobs", string_of_int j);
              ("verdict", Printf.sprintf "%S" v);
              ("seconds", Telemetry.Json.of_float t);
              ( "speedup_vs_jobs1",
                Telemetry.Json.of_float (t1 /. Float.max 1e-9 t) );
            ])
        runs
    in
    entries :=
      Telemetry.Json.obj
        [
          ("name", Printf.sprintf "%S" name);
          ("verdicts_agree", string_of_bool agree);
          ("runs", "[" ^ String.concat "," runs_json ^ "]");
          ( "portfolio",
            Telemetry.Json.obj
              [
                ("verdict", Printf.sprintf "%S" (engine_verdict pr));
                ( "winner",
                  match pwinner with
                  | Some w -> Printf.sprintf "%S" w
                  | None -> "null" );
                ("seconds", Telemetry.Json.of_float pt);
              ] );
        ]
      :: !entries;
    Printf.printf "%-26s %s  portfolio %s (winner %s)\n" name
      (String.concat "  "
         (List.map
            (fun (j, (v, t)) ->
              Printf.sprintf "j%d %s/%s (%.2fx)" j v (fmt_time t)
                (t1 /. Float.max 1e-9 t))
            runs))
      (fmt_time pt)
      (Option.value ~default:"-" pwinner);
    flush stdout
  in
  case ~name:"car_steering"
    ~config:
      {
        BP.default_config with
        BP.max_nodes = 600;
        samples_per_node = 2;
        root_samples = 2048;
      }
    (fun () -> M.Steering.problem ());
  case ~name:"esat_n11_m8_nonlinear" esat_problem;
  case ~name:"nonlinear_unsat" nonlinear_unsat_problem;
  case ~name:"div_operator" div_operator_problem;
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"parallel branch-and-prune\",\n\
      \  \"cores_available\": %d,\n\
      \  \"job_counts\": [%s],\n\
      \  \"cases\": [\n%s\n  ]\n}\n"
      cores
      (String.concat "," (List.map string_of_int job_counts))
      (String.concat ",\n"
         (List.map (fun e -> "    " ^ e) (List.rev !entries)))
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_parallel.json"

(* ------------------------------------------------------------------ *)
(* Incremental mode: from-scratch vs warm-started session vs session   *)
(* with the verdict cache, on multi-model paper cases. Reports wall    *)
(* clock, exact pivot counts and cache hit rates per case, and asserts *)
(* that the three configurations agree on every verdict.               *)

let incremental_mode () =
  let entries = ref [] in
  let tot = Hashtbl.create 4 in
  let add_tot mode t pivots =
    let t0, p0 =
      Option.value ~default:(0.0, 0) (Hashtbl.find_opt tot mode)
    in
    Hashtbl.replace tot mode (t0 +. t, p0 + pivots)
  in
  let mode_name = function
    | `Scratch -> "from_scratch"
    | `Warm -> "incremental"
    | `Full -> "incremental_cache"
  in
  let case ~name ?(registry = A.Registry.default) ?limit mk =
    let run mode =
      let registry =
        match mode with
        | `Warm ->
          (* Session on, cache off: isolates the warm-start gain. *)
          {
            registry with
            A.Registry.linear =
              [ A.Registry.simplex_solver_custom ~cache_capacity:0 () ];
          }
        | `Scratch | `Full -> registry
      in
      let options =
        {
          A.Engine.default_options with
          A.Engine.use_incremental = (mode <> `Scratch);
        }
      in
      let p0 = Absolver_lp.Simplex.total_pivots () in
      let r, t =
        time (fun () ->
            match limit with
            | Some limit -> (
              match A.Engine.all_models ~registry ~options ~limit (mk ()) with
              | Ok (models, st) ->
                (Printf.sprintf "%d models" (List.length models), st)
              | Error e -> failwith (name ^ ": " ^ e))
            | None ->
              let res, st = A.Engine.solve ~registry ~options (mk ()) in
              (engine_verdict res, st))
      in
      let pivots = Absolver_lp.Simplex.total_pivots () - p0 in
      (fst r, snd r, t, pivots)
    in
    let v_scratch, _, t_scratch, p_scratch = run `Scratch in
    let v_warm, _, t_warm, p_warm = run `Warm in
    let v_full, st_full, t_full, p_full = run `Full in
    if v_scratch <> v_warm || v_scratch <> v_full then
      Printf.printf "!! %s: verdicts differ (%s / %s / %s)\n" name v_scratch
        v_warm v_full;
    add_tot (mode_name `Scratch) t_scratch p_scratch;
    add_tot (mode_name `Warm) t_warm p_warm;
    add_tot (mode_name `Full) t_full p_full;
    let lookups =
      st_full.A.Engine.lp_cache_hits + st_full.A.Engine.lp_cache_misses
    in
    let hit_rate =
      if lookups = 0 then 0.0
      else float_of_int st_full.A.Engine.lp_cache_hits /. float_of_int lookups
    in
    let side t pivots =
      Telemetry.Json.obj
        [
          ("seconds", Telemetry.Json.of_float t);
          ("pivots", string_of_int pivots);
        ]
    in
    entries :=
      Telemetry.Json.obj
        [
          ("name", Printf.sprintf "%S" name);
          ("verdict", Printf.sprintf "%S" v_scratch);
          ("verdicts_agree",
           string_of_bool (v_scratch = v_warm && v_scratch = v_full));
          ("from_scratch", side t_scratch p_scratch);
          ("incremental", side t_warm p_warm);
          ("incremental_cache", side t_full p_full);
          ("cache_hits", string_of_int st_full.A.Engine.lp_cache_hits);
          ("cache_misses", string_of_int st_full.A.Engine.lp_cache_misses);
          ("cache_hit_rate", Telemetry.Json.of_float hit_rate);
          ("constraints_reused", string_of_int st_full.A.Engine.lp_reused);
          ("constraints_asserted", string_of_int st_full.A.Engine.lp_asserted);
          ( "pivot_reduction",
            Telemetry.Json.of_float
              (if p_full = 0 then float_of_int p_scratch
               else float_of_int p_scratch /. float_of_int p_full) );
        ]
      :: !entries;
    Printf.printf
      "%-22s scratch %s/%-6d warm %s/%-6d cache %s/%-6d hit-rate %.2f (%s)\n"
      name (fmt_time t_scratch) p_scratch (fmt_time t_warm) p_warm
      (fmt_time t_full) p_full hit_rate v_scratch;
    flush stdout
  in
  (* Cs_within 4 is satisfiable: the enumeration visits many Boolean
     models, which is where the warm start and the cache earn their keep.
     Cs_within 2 is the unsat variant — every model's subsystem is
     refuted by the LP, a different (conflict-heavy) access pattern. *)
  for n = 1 to 3 do
    case ~name:(Printf.sprintf "fischer%d_models_sat" n) ~limit:25 (fun () ->
        match F.problem ~rounds:4 ~property:(F.Cs_within (Q.of_int 4)) ~n () with
        | Ok p -> p
        | Error e -> failwith e)
  done;
  for n = 1 to 3 do
    case ~name:(Printf.sprintf "fischer%d_models_unsat" n) ~limit:25 (fun () ->
        match F.problem ~rounds:6 ~property:(F.Cs_within (Q.of_int 2)) ~n () with
        | Ok p -> p
        | Error e -> failwith e)
  done;
  case ~name:"car_steering" ~registry:steering_registry (fun () ->
      M.Steering.problem ());
  case ~name:"esat_n11_m8_nonlinear" esat_problem;
  case ~name:"nonlinear_unsat" nonlinear_unsat_problem;
  case ~name:"div_operator" div_operator_problem;
  let totals =
    List.map
      (fun m ->
        let t, p = Option.value ~default:(0.0, 0) (Hashtbl.find_opt tot m) in
        Printf.sprintf "  \"total_%s\": {\"seconds\": %s, \"pivots\": %d}" m
          (Telemetry.Json.of_float t) p)
      [ "from_scratch"; "incremental"; "incremental_cache" ]
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"incremental DPLL(T) hot path\",\n\
       %s,\n\
      \  \"cases\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" totals)
      (String.concat ",\n"
         (List.map (fun e -> "    " ^ e) (List.rev !entries)))
  in
  let oc = open_out "BENCH_incremental.json" in
  output_string oc json;
  close_out oc;
  let t_s, p_s =
    Option.value ~default:(0.0, 0) (Hashtbl.find_opt tot "from_scratch")
  in
  let t_f, p_f =
    Option.value ~default:(0.0, 1) (Hashtbl.find_opt tot "incremental_cache")
  in
  Printf.printf
    "totals: from-scratch %s (%d pivots), incremental+cache %s (%d pivots, %.1fx fewer)\n\
     wrote BENCH_incremental.json\n"
    (fmt_time t_s) p_s (fmt_time t_f) p_f
    (if p_f = 0 then float_of_int p_s
     else float_of_int p_s /. float_of_int p_f)

(* ------------------------------------------------------------------ *)
(* Server mode: the same mixed workload (FISCHER sat/unsat, Sudoku,    *)
(* car steering) pushed through the solve server at 1/4/16 concurrent  *)
(* clients.  Queries are partitioned deterministically (client i gets  *)
(* queries i, i+C, i+2C, ...), so every level answers the identical    *)
(* set and the verdict vector must be identical across levels — warm   *)
(* per-client sessions may change models, never verdicts.  Written to  *)
(* BENCH_server.json.                                                  *)

let server_mode () =
  let module Server = Absolver_server.Server in
  let module Sjson = Absolver_server.Sjson in
  let fischer ~rounds ~within n =
    match F.problem ~rounds ~property:(F.Cs_within (Q.of_int within)) ~n () with
    | Ok p -> A.Dimacs_ext.to_string p
    | Error e -> failwith e
  in
  let base =
    List.concat
      [
        List.init 3 (fun i ->
            (Printf.sprintf "fischer%d_sat" (i + 1), fischer ~rounds:4 ~within:4 (i + 1)));
        List.init 3 (fun i ->
            (Printf.sprintf "fischer%d_unsat" (i + 1), fischer ~rounds:5 ~within:2 (i + 1)));
        (match P.all with
        | (n1, p1) :: (n2, p2) :: _ ->
          [
            ("sudoku_" ^ n1, A.Dimacs_ext.to_string (S.absolver_problem p1));
            ("sudoku_" ^ n2, A.Dimacs_ext.to_string (S.absolver_problem p2));
          ]
        | _ -> []);
      ]
  in
  let queries =
    ("car_steering", A.Dimacs_ext.to_string (M.Steering.problem ()))
    :: List.concat [ base; base; base; base; base; base; base; base ]
  in
  let n = List.length queries in
  let texts = Array.of_list (List.map snd queries) in
  Printf.printf "workload: %d queries (%s)\n%!" n
    (String.concat ", " (List.sort_uniq compare (List.map fst queries)));
  (* steering needs the Table-1 branch-and-prune budget; each client
     still gets its own warm persistent simplex session *)
  let registry () =
    let solver, dispose = A.Registry.persistent_simplex () in
    ( {
        steering_registry with
        A.Registry.linear = [ solver ];
      },
      dispose )
  in
  let percentile sorted q =
    let m = Array.length sorted in
    if m = 0 then 0.0
    else sorted.(min (m - 1) (int_of_float (ceil (q *. float_of_int m)) - 1))
  in
  let run_level clients =
    let config =
      { Server.default_config with Server.default_timeout_ms = None; registry }
    in
    let srv = Server.create ~config () in
    let latencies = Array.make n 0.0 in
    let verdicts = Array.make n "" in
    let t0 = Telemetry.Clock.now () in
    let client ci =
      let req_r, req_w = Unix.pipe () in
      let resp_r, resp_w = Unix.pipe () in
      let th =
        Thread.create
          (fun () ->
            let ic = Unix.in_channel_of_descr req_r in
            let oc = Unix.out_channel_of_descr resp_w in
            Server.serve_channel srv ic oc;
            (try close_in ic with _ -> ());
            try close_out oc with _ -> ())
          ()
      in
      let wr = Unix.out_channel_of_descr req_w in
      let rd = Unix.in_channel_of_descr resp_r in
      let q = ref ci in
      while !q < n do
        let line =
          Sjson.to_string
            (Sjson.Obj
               [
                 ("id", Sjson.Num (float_of_int !q));
                 ("op", Sjson.Str "solve");
                 ("format", Sjson.Str "dimacs");
                 ("problem", Sjson.Str texts.(!q));
               ])
        in
        let t = Telemetry.Clock.now () in
        output_string wr (line ^ "\n");
        flush wr;
        let resp = input_line rd in
        latencies.(!q) <- (Telemetry.Clock.now () -. t) *. 1000.0;
        (verdicts.(!q) <-
           (match Sjson.parse resp with
           | Ok o -> (
             match Option.bind (Sjson.member "verdict" o) Sjson.get_string with
             | Some v -> v
             | None -> "error")
           | Error _ -> "error"));
        q := !q + clients
      done;
      (try close_out wr with _ -> ());
      Thread.join th;
      try close_in rd with _ -> ()
    in
    let threads = List.init clients (fun ci -> Thread.create client ci) in
    List.iter Thread.join threads;
    let wall = Telemetry.Clock.now () -. t0 in
    Server.shutdown srv;
    let sorted = Array.copy latencies in
    Array.sort compare sorted;
    let level =
      Telemetry.Json.obj
        [
          ("clients", string_of_int clients);
          ("seconds", Telemetry.Json.of_float wall);
          ( "throughput_qps",
            Telemetry.Json.of_float (float_of_int n /. Float.max 1e-9 wall) );
          ("p50_ms", Telemetry.Json.of_float (percentile sorted 0.50));
          ("p95_ms", Telemetry.Json.of_float (percentile sorted 0.95));
          ("p99_ms", Telemetry.Json.of_float (percentile sorted 0.99));
        ]
    in
    Printf.printf
      "clients %2d: %s  %6.2f q/s  p50 %7.1fms  p95 %7.1fms  p99 %7.1fms\n%!"
      clients (fmt_time wall)
      (float_of_int n /. Float.max 1e-9 wall)
      (percentile sorted 0.50) (percentile sorted 0.95) (percentile sorted 0.99);
    (level, Array.to_list verdicts)
  in
  let levels = [ 1; 4; 16 ] in
  let results = List.map (fun c -> (c, run_level c)) levels in
  let reference = snd (snd (List.hd results)) in
  let identical =
    List.for_all (fun (_, (_, vs)) -> vs = reference) results
  in
  if not identical then
    List.iter
      (fun (c, (_, vs)) ->
        List.iteri
          (fun i (v, r) ->
            if v <> r then
              Printf.printf "!! clients=%d query %d (%s): %s <> %s\n" c i
                (fst (List.nth queries i))
                v r)
          (List.combine vs reference))
      results;
  Printf.printf "verdicts identical across levels: %b\n%!" identical;
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"solve server throughput\",\n\
      \  \"queries\": %d,\n\
      \  \"cores_available\": %d,\n\
      \  \"workers\": %d,\n\
      \  \"verdicts_identical_across_levels\": %b,\n\
      \  \"levels\": [\n%s\n  ]\n}\n"
      n
      (Absolver_parallel.Pool.available_cores ())
      Server.default_config.Server.workers identical
      (String.concat ",\n"
         (List.map (fun (_, (l, _)) -> "    " ^ l) results))
  in
  let oc = open_out "BENCH_server.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_server.json"

(* ------------------------------------------------------------------ *)
(* Chaos mode: seeded SMT-LIB 2 session workload through the           *)
(* reconnecting client over a real Unix socket, fault-free vs under    *)
(* the seeded network fault injector — per-command latency percentiles *)
(* must not grow a cliff, transcripts must stay byte-identical — plus  *)
(* the half-open-client reclaim time against the idle timeout.         *)
(* Written to BENCH_chaos.json.                                        *)

let chaos_mode () =
  let module Server = Absolver_server.Server in
  let module Io = Absolver_server.Io in
  let module Sjson = Absolver_server.Sjson in
  let module Client = Absolver_client.Client in
  let module Faults = Absolver_resource.Faults in
  let sessions = 64 in
  let idle_timeout_s = 2.0 in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "absolver-bench-chaos-%d.sock" (Unix.getpid ()))
  in
  let gen_session st =
    let a () = 1 + Random.State.int st 5 in
    let r () = Random.State.int st 13 - 4 in
    let cmds = ref [ "(declare-const y Real)"; "(declare-const x Real)" ] in
    let n = 4 + Random.State.int st 5 in
    for _ = 1 to n do
      match Random.State.int st 4 with
      | 0 | 1 ->
        cmds :=
          Printf.sprintf "(assert (<= (+ (* %d x) (* %d y)) %d))" (a ()) (a ())
            (r ())
          :: !cmds
      | 2 -> cmds := Printf.sprintf "(assert (>= x %d))" (r ()) :: !cmds
      | _ -> cmds := "(check-sat)" :: !cmds
    done;
    List.rev ("(check-sat)" :: !cmds)
  in
  let scripts =
    let st = Random.State.make [| 0xbc4a05 |] in
    Array.init sessions (fun _ -> gen_session st)
  in
  let config =
    {
      Server.default_config with
      Server.default_timeout_ms = None;
      io = { Io.default_limits with Io.idle_timeout_s = Some idle_timeout_s };
    }
  in
  let srv = Server.create ~config () in
  let srv_th = Thread.create (fun () -> ignore (Server.serve_socket srv ~path)) () in
  let rec wait_up tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with _ -> ());
      if tries = 0 then failwith "chaos bench: daemon did not come up";
      Thread.delay 0.02;
      wait_up (tries - 1)
  in
  wait_up 250;
  let cconfig =
    {
      Client.default_config with
      Client.journal_solves = true;
      max_attempts = 16;
      backoff_base_s = 0.002;
      backoff_max_s = 0.05;
    }
  in
  let percentile sorted q =
    let m = Array.length sorted in
    if m = 0 then 0.0
    else sorted.(min (m - 1) (int_of_float (ceil (q *. float_of_int m)) - 1))
  in
  (* one phase: all sessions across 8 threads; per-command latency, the
     full transcripts and the client fault counters *)
  let run_phase name =
    let transcripts = Array.make sessions [] in
    let lat = Array.init sessions (fun _ -> ref []) in
    let retries = Atomic.make 0 and reconnects = Atomic.make 0 in
    let replayed = Atomic.make 0 in
    let next = Atomic.make 0 in
    let t0 = Telemetry.Clock.now () in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < sessions then begin
          (match Client.connect ~config:cconfig ~path () with
          | Error e -> failwith ("chaos bench connect: " ^ e)
          | Ok cl ->
            let out =
              List.concat_map
                (fun cmd ->
                  let t = Telemetry.Clock.now () in
                  match Client.command cl cmd with
                  | Ok rs ->
                    lat.(i) :=
                      ((Telemetry.Clock.now () -. t) *. 1000.0) :: !(lat.(i));
                    rs
                  | Error e -> failwith ("chaos bench command: " ^ e))
                scripts.(i)
            in
            transcripts.(i) <- out;
            Atomic.fetch_and_add retries (Client.retries cl) |> ignore;
            Atomic.fetch_and_add reconnects (Client.reconnects cl) |> ignore;
            Atomic.fetch_and_add replayed (Client.replayed cl) |> ignore;
            Client.close cl);
          go ()
        end
      in
      go ()
    in
    let ths = List.init 8 (fun _ -> Thread.create worker ()) in
    List.iter Thread.join ths;
    let wall = Telemetry.Clock.now () -. t0 in
    let all = Array.of_list (List.concat_map (fun r -> !r) (Array.to_list lat)) in
    Array.sort compare all;
    let cmds = Array.length all in
    Printf.printf
      "%-9s %s  %5d commands  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  \
       retries %d  reconnects %d  replayed %d\n%!"
      name (fmt_time wall) cmds (percentile all 0.50) (percentile all 0.95)
      (percentile all 0.99) (Atomic.get retries) (Atomic.get reconnects)
      (Atomic.get replayed);
    let json =
      Telemetry.Json.obj
        [
          ("seconds", Telemetry.Json.of_float wall);
          ("commands", string_of_int cmds);
          ("p50_ms", Telemetry.Json.of_float (percentile all 0.50));
          ("p95_ms", Telemetry.Json.of_float (percentile all 0.95));
          ("p99_ms", Telemetry.Json.of_float (percentile all 0.99));
          ("retries", string_of_int (Atomic.get retries));
          ("reconnects", string_of_int (Atomic.get reconnects));
          ("replayed_commands", string_of_int (Atomic.get replayed));
        ]
    in
    (json, Array.to_list transcripts, percentile all 0.99)
  in
  let base_json, base_out, base_p99 = run_phase "baseline" in
  Faults.Net.arm
    ~plan:{ Faults.Net.default_plan with Faults.Net.seed = 42; max_delay_ms = 2.0 }
    ();
  let chaos_json, chaos_out, chaos_p99 =
    match run_phase "chaos" with
    | r -> r
    | exception e ->
      Faults.Net.disarm ();
      raise e
  in
  let injected =
    List.fold_left (fun n (_, k) -> n + k) 0 (Faults.Net.injected ())
  in
  Faults.Net.disarm ();
  let identical = base_out = chaos_out in
  Printf.printf "transcripts identical under chaos: %b (%d faults injected)\n%!"
    identical injected;
  (* half-open reclaim: a client sends one command, reads its reply and
     goes silent without closing; the idle timeout must reclaim it *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let line = "(check-sat)\n" in
  ignore (Unix.write_substring fd line 0 (String.length line));
  let buf = Bytes.create 256 in
  ignore (Unix.read fd buf 0 256);
  let clients_now () =
    match List.assoc_opt "clients" (Server.health_fields srv) with
    | Some (Sjson.Num n) -> int_of_float n
    | _ -> -1
  in
  let t0 = Telemetry.Clock.now () in
  let rec wait_reclaim () =
    if clients_now () = 0 then Telemetry.Clock.now () -. t0
    else if Telemetry.Clock.now () -. t0 > idle_timeout_s +. 5.0 then -1.0
    else begin
      Thread.delay 0.05;
      wait_reclaim ()
    end
  in
  let reclaim_s = wait_reclaim () in
  (try Unix.close fd with _ -> ());
  let within = reclaim_s >= 0.0 && reclaim_s <= idle_timeout_s +. 1.0 in
  Printf.printf "half-open client reclaimed in %s (idle timeout %.1fs): %b\n%!"
    (fmt_time reclaim_s) idle_timeout_s within;
  Server.request_stop srv;
  Thread.join srv_th;
  Server.shutdown srv;
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"fault-tolerant serving under network chaos\",\n\
      \  \"sessions\": %d,\n\
      \  \"faults_injected\": %d,\n\
      \  \"transcripts_identical\": %b,\n\
      \  \"p99_ratio_chaos_over_baseline\": %s,\n\
      \  \"baseline\": %s,\n\
      \  \"chaos\": %s,\n\
      \  \"half_open\": {\"idle_timeout_s\": %s, \"reclaimed_in_s\": %s, \
       \"within_timeout\": %b}\n\
       }\n"
      sessions injected identical
      (Telemetry.Json.of_float
         (if base_p99 <= 0.0 then 0.0 else chaos_p99 /. base_p99))
      base_json chaos_json
      (Telemetry.Json.of_float idle_timeout_s)
      (Telemetry.Json.of_float reclaim_s)
      within
  in
  let oc = open_out "BENCH_chaos.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_chaos.json";
  if not identical then exit 1;
  if not within then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table.                 *)

let micro () =
  (* Capture before the Bechamel opens (Toolkit shadows short names). *)
  let sudoku_problem = S.absolver_problem in
  let generate_puzzle = P.generate in
  let open Bechamel in
  let open Toolkit in
  let t1 =
    Test.make ~name:"table1/div_operator"
      (Staged.stage (fun () -> ignore (A.Engine.solve (div_operator_problem ()))))
  in
  let t2 =
    Test.make ~name:"table2/fischer3"
      (Staged.stage (fun () ->
           match F.problem ~rounds:3 ~property:(F.Cs_within (Q.of_int 2)) ~n:3 () with
           | Ok p -> ignore (A.Engine.solve p)
           | Error e -> failwith e))
  in
  let puzzle = generate_puzzle ~name:"micro" ~clues:40 in
  let t3 =
    Test.make ~name:"table3/sudoku40"
      (Staged.stage (fun () -> ignore (A.Engine.solve (sudoku_problem puzzle))))
  in
  let test = Test.make_grouped ~name:"absolver" [ t1; t2; t3 ] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name ols ->
          Format.printf "%-24s %-18s %a@." name measure Analyze.OLS.pp ols)
        tbl)
    results

(* ------------------------------------------------------------------ *)
(* Flatcore mode: wall time and allocated words per case, new (live)   *)
(* vs the recorded pre-refactor baseline, written to                   *)
(* BENCH_flatcore.json.  The baseline column was measured at the seed  *)
(* commit (before the CSR tableau / small-rational refactor) with this *)
(* same harness; verdicts are asserted identical, and the fischer      *)
(* family doubles as CI's allocation-budget regression check: the run  *)
(* exits non-zero if the live fischer allocation exceeds half the      *)
(* recorded pre-refactor total.                                        *)

let flatcore_measure f =
  let s0 = Gc.quick_stat () in
  let t0 = Telemetry.Clock.now () in
  let r = f () in
  let dt = Telemetry.Clock.now () -. t0 in
  let s1 = Gc.quick_stat () in
  let words =
    s1.Gc.minor_words -. s0.Gc.minor_words
    +. (s1.Gc.major_words -. s0.Gc.major_words)
    -. (s1.Gc.promoted_words -. s0.Gc.promoted_words)
  in
  (r, dt, words)

(* (name, verdict, seconds, allocated words) measured pre-refactor, at
   the seed of this change (commit 7c0eccf: Q.t IM.t tree-map tableau
   rows, two-Bigint-boxed rationals), single run of this harness on the
   1-core reference container. *)
let flatcore_baseline : (string * string * float * float) list =
  [
    ("fischer1_models_sat", "6 models", 0.006, 961548.0);
    ("fischer2_models_sat", "25 models", 0.055, 13411214.0);
    ("fischer3_models_sat", "25 models", 0.111, 23400686.0);
    ("fischer1_models_unsat", "0 models", 0.003, 669884.0);
    ("fischer2_models_unsat", "0 models", 0.051, 10887560.0);
    ("fischer3_models_unsat", "0 models", 0.150, 27731691.0);
    ("fischer4_solve", "unsat", 0.210, 34816477.0);
    ("fischer6_solve", "unsat", 0.529, 69672887.0);
    ("car_steering_j1", "sat", 4.558, 1367482518.0);
    ("car_steering_j4", "sat", 10.155, 743722008.0);
    ("esat_n11_m8", "sat", 0.001, 380.0);
    ("div_operator", "sat", 0.000, 0.0);
  ]

let flatcore_mode () =
  let entries = ref [] in
  let fischer_old = ref 0.0 and fischer_new = ref 0.0 in
  let mismatches = ref 0 in
  let case ~name run =
    let v, t, w = flatcore_measure run in
    let old =
      List.find_opt (fun (n, _, _, _) -> n = name) flatcore_baseline
    in
    (match old with
    | Some (_, v_old, _, _) when v_old <> v ->
      incr mismatches;
      Printf.printf "!! %s: verdict flipped (%s, baseline %s)\n" name v v_old
    | _ -> ());
    let is_fischer =
      String.length name >= 7 && String.sub name 0 7 = "fischer"
    in
    if is_fischer then begin
      fischer_new := !fischer_new +. w;
      match old with
      | Some (_, _, _, w_old) -> fischer_old := !fischer_old +. w_old
      | None -> ()
    end;
    let old_json =
      match old with
      | Some (_, _, t_old, w_old) ->
        Telemetry.Json.obj
          [
            ("seconds", Telemetry.Json.of_float t_old);
            ("alloc_words", Telemetry.Json.of_float w_old);
          ]
      | None -> "null"
    in
    let ratio_json =
      match old with
      | Some (_, _, t_old, w_old) when w > 0.0 && t > 0.0 ->
        Telemetry.Json.obj
          [
            ("alloc_reduction", Telemetry.Json.of_float (w_old /. w));
            ("speedup", Telemetry.Json.of_float (t_old /. t));
          ]
      | _ -> "null"
    in
    entries :=
      Telemetry.Json.obj
        [
          ("name", Printf.sprintf "%S" name);
          ("verdict", Printf.sprintf "%S" v);
          ( "new",
            Telemetry.Json.obj
              [
                ("seconds", Telemetry.Json.of_float t);
                ("alloc_words", Telemetry.Json.of_float w);
              ] );
          ("old", old_json);
          ("vs_old", ratio_json);
        ]
      :: !entries;
    (match old with
    | Some (_, _, t_old, w_old) ->
      Printf.printf
        "%-26s %-8s %9s %12.0fw   (old %9s %12.0fw: %4.1fx alloc, %4.1fx time)\n"
        name v (fmt_time t) w (fmt_time t_old) w_old
        (if w > 0.0 then w_old /. w else 0.0)
        (if t > 0.0 then t_old /. t else 0.0)
    | None ->
      Printf.printf "%-26s %-8s %9s %12.0fw   (no baseline)\n" name v
        (fmt_time t) w);
    flush stdout
  in
  let fischer_models ~rounds ~within n =
    match F.problem ~rounds ~property:(F.Cs_within (Q.of_int within)) ~n () with
    | Ok p -> p
    | Error e -> failwith e
  in
  let models_verdict ?(registry = A.Registry.default) ?(options = A.Engine.default_options) p =
    match A.Engine.all_models ~registry ~options ~limit:25 p with
    | Ok (models, _) -> Printf.sprintf "%d models" (List.length models)
    | Error e -> failwith e
  in
  for n = 1 to 3 do
    case ~name:(Printf.sprintf "fischer%d_models_sat" n) (fun () ->
        models_verdict (fischer_models ~rounds:4 ~within:4 n))
  done;
  for n = 1 to 3 do
    case ~name:(Printf.sprintf "fischer%d_models_unsat" n) (fun () ->
        models_verdict (fischer_models ~rounds:6 ~within:2 n))
  done;
  List.iter
    (fun n ->
      case ~name:(Printf.sprintf "fischer%d_solve" n) (fun () ->
          let r, _ = A.Engine.solve (fischer_models ~rounds:6 ~within:2 n) in
          engine_verdict r))
    [ 4; 6 ];
  List.iter
    (fun jobs ->
      case ~name:(Printf.sprintf "car_steering_j%d" jobs) (fun () ->
          let registry =
            {
              A.Registry.default with
              A.Registry.nonlinear =
                [
                  A.Registry.branch_prune_solver
                    ~config:
                      {
                        BP.default_config with
                        BP.max_nodes = 600;
                        samples_per_node = 2;
                        root_samples = 2048;
                      }
                    ~jobs ();
                ];
            }
          in
          let r, _ = A.Engine.solve ~registry (M.Steering.problem ()) in
          engine_verdict r))
    [ 1; 4 ];
  case ~name:"esat_n11_m8" (fun () ->
      let r, _ = A.Engine.solve (esat_problem ()) in
      engine_verdict r);
  case ~name:"div_operator" (fun () ->
      let r, _ = A.Engine.solve (div_operator_problem ()) in
      engine_verdict r);
  let budget_ok =
    !fischer_old = 0.0 || !fischer_new <= !fischer_old /. 2.0
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"flat core (CSR tableau + small rationals)\",\n\
      \  \"baseline\": \"pre-refactor seed, same harness\",\n\
      \  \"fischer_alloc_words_old\": %s,\n\
      \  \"fischer_alloc_words_new\": %s,\n\
      \  \"fischer_alloc_reduction\": %s,\n\
      \  \"fischer_alloc_budget_ok\": %b,\n\
      \  \"verdict_mismatches\": %d,\n\
      \  \"cases\": [\n%s\n  ]\n}\n"
      (Telemetry.Json.of_float !fischer_old)
      (Telemetry.Json.of_float !fischer_new)
      (Telemetry.Json.of_float
         (if !fischer_new > 0.0 then !fischer_old /. !fischer_new else 0.0))
      budget_ok !mismatches
      (String.concat ",\n"
         (List.map (fun e -> "    " ^ e) (List.rev !entries)))
  in
  let oc = open_out "BENCH_flatcore.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "fischer family: %.0f allocated words (baseline %.0f, %.1fx reduction)\n\
     wrote BENCH_flatcore.json\n"
    !fischer_new !fischer_old
    (if !fischer_new > 0.0 then !fischer_old /. !fischer_new else 0.0);
  if !mismatches > 0 then begin
    Printf.eprintf "flatcore: %d verdict mismatch(es) against baseline\n"
      !mismatches;
    exit 1
  end;
  if not budget_ok then begin
    Printf.eprintf
      "flatcore: fischer allocation budget exceeded (%.0f > %.0f / 2)\n"
      !fischer_new !fischer_old;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Relax mode: the branch-and-prune linear-relaxation layer            *)
(* (lib/relax) on vs off, dumped as BENCH_relax.json. The headline     *)
(* figure is node reduction — how many fewer branch-and-prune nodes    *)
(* the search needs to reach the same verdict under the same node cap  *)
(* — with the wall-time delta reported next to it (each LP-backed node *)
(* costs more than an interval-only node; the relaxation trades        *)
(* per-node cost for tree size). Gate: >= 2x node reduction on the     *)
(* car-steering slice, verdicts equal everywhere.                      *)

(* The headline steering measurement runs branch-and-prune directly on
   the model's full constraint conjunction over the "critical slice" of
   the sensor space: every sensor range shrunk to its central quarter —
   the plausible-driving region the monitor cascade targets — where the
   conjunction is infeasible and the search must prove it. The sampler
   is off (a refutation cannot be sampled) and OBBT runs at every node
   over all variables, so the comparison isolates what the relaxation
   layer contributes to the size of the refutation tree. *)
let steering_slice () =
  let p = M.Steering.problem () in
  let n = A.Ab_problem.num_arith_vars p in
  let box = Absolver_nlp.Box.create n in
  List.iter
    (fun (v, (lo, hi)) ->
      let lo = match lo with Some q -> Q.to_float q | None -> -1e6
      and hi = match hi with Some q -> Q.to_float q | None -> 1e6 in
      let m = (lo +. hi) /. 2.0 and w = (hi -. lo) /. 2.0 in
      box.(v) <-
        Absolver_numeric.Interval.make (m -. (w *. 0.25)) (m +. (w *. 0.25)))
    (A.Ab_problem.bounds p);
  let rels =
    List.map (fun (d : A.Ab_problem.def) -> d.rel) (A.Ab_problem.defs p)
  in
  (n, box, rels)

let steering_slice_config nvars =
  {
    BP.default_config with
    BP.max_nodes = 50_000;
    samples_per_node = 0;
    root_samples = 0;
    relax_obbt_depth = max_int;
    relax_obbt_vars = nvars;
  }

(* sphere_cap_unsat: ball of radius 1 cut by a plane outside it — every
   Boolean model forces an empty intersection, and the linear relaxation
   of the quadratic sees it immediately while plain interval splitting
   has to shave the box down. *)
let sphere_cap_problem () =
  let text =
    {|p cnf 1 1
1 0
c def real 1 x * x + y * y + z * z <= 1
c def real 1 x + y + z >= 2
c bound x -2 2
c bound y -2 2
c bound z -2 2
|}
  in
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> failwith ("sphere_cap: " ^ e)

let relax_mode () =
  print_endline
    "== Linear relaxation: LP cuts ahead of branch-and-prune ============";
  Printf.printf "%-22s %-9s %8s %8s %7s %9s %9s %7s\n" "Benchmark" "verdict"
    "nodes+" "nodes-" "redux" "time+" "time-" "pruned";
  let entries = ref [] in
  let mismatches = ref 0 in
  let steering_reduction = ref 0.0 in
  let case ~name ?(registry = A.Registry.default) ?(options = A.Engine.default_options)
      mk =
    let run relax =
      time (fun () ->
          A.Engine.solve ~registry
            ~options:{ options with A.Engine.use_bp_relaxation = relax }
            (mk ()))
    in
    let (r_on, st_on), t_on = run true in
    let (r_off, st_off), t_off = run false in
    let v_on = engine_verdict r_on and v_off = engine_verdict r_off in
    if v_on <> v_off then begin
      incr mismatches;
      Printf.printf "!! %s: verdict differs (relax on %s, off %s)\n" name v_on
        v_off
    end;
    let n_on = st_on.A.Engine.bp_nodes and n_off = st_off.A.Engine.bp_nodes in
    let reduction =
      if n_on > 0 then float_of_int n_off /. float_of_int n_on else 0.0
    in
    if name = "car_steering" then steering_reduction := reduction;
    Printf.printf "%-22s %-9s %8d %8d %6.1fx %9s %9s %7d\n" name v_on n_on
      n_off reduction (fmt_time t_on) (fmt_time t_off)
      st_on.A.Engine.relax_nodes_pruned;
    flush stdout;
    entries :=
      Telemetry.Json.obj
        [
          ("name", Printf.sprintf "%S" name);
          ("verdict", Printf.sprintf "%S" v_on);
          ("verdict_relax_off", Printf.sprintf "%S" v_off);
          ( "relax_on",
            Telemetry.Json.obj
              [
                ("bp_nodes", string_of_int n_on);
                ("seconds", Telemetry.Json.of_float t_on);
                ("cuts_asserted", string_of_int st_on.A.Engine.relax_cuts_asserted);
                ("lp_checks", string_of_int st_on.A.Engine.relax_lp_checks);
                ("nodes_pruned", string_of_int st_on.A.Engine.relax_nodes_pruned);
                ( "bounds_tightened",
                  string_of_int st_on.A.Engine.relax_bounds_tightened );
              ] );
          ( "relax_off",
            Telemetry.Json.obj
              [
                ("bp_nodes", string_of_int n_off);
                ("seconds", Telemetry.Json.of_float t_off);
              ] );
          ("node_reduction", Telemetry.Json.of_float reduction);
          ( "wall_time_delta_seconds",
            Telemetry.Json.of_float (t_on -. t_off) );
        ]
      :: !entries
  in
  let bp_case ~name mk_instance =
    let nvars, box, rels = mk_instance () in
    let config = steering_slice_config nvars in
    let run relax =
      let oracle =
        if relax then
          Some (Absolver_relax.Relax.oracle ~config ~nvars rels)
        else None
      in
      time (fun () ->
          BP.solve ~config ?relax:oracle ~nvars
            ~box:(Absolver_nlp.Box.copy box) rels)
    in
    let (v_on, st_on), t_on = run true in
    let (v_off, st_off), t_off = run false in
    let outcome = function
      | BP.Sat _ -> "sat"
      | BP.Unsat -> "unsat"
      | BP.Approx_sat _ -> "approx"
      | BP.Unknown -> "unknown"
    in
    let s_on = outcome v_on and s_off = outcome v_off in
    if s_on <> s_off then begin
      incr mismatches;
      Printf.printf "!! %s: verdict differs (relax on %s, off %s)\n" name s_on
        s_off
    end;
    let n_on = st_on.BP.nodes and n_off = st_off.BP.nodes in
    let reduction =
      if n_on > 0 then float_of_int n_off /. float_of_int n_on else 0.0
    in
    if name = "car_steering" then steering_reduction := reduction;
    Printf.printf "%-22s %-9s %8d %8d %6.1fx %9s %9s %7d\n" name s_on n_on
      n_off reduction (fmt_time t_on) (fmt_time t_off) st_on.BP.relax_pruned;
    flush stdout;
    entries :=
      Telemetry.Json.obj
        [
          ("name", Printf.sprintf "%S" name);
          ("verdict", Printf.sprintf "%S" s_on);
          ("verdict_relax_off", Printf.sprintf "%S" s_off);
          ( "relax_on",
            Telemetry.Json.obj
              [
                ("bp_nodes", string_of_int n_on);
                ("seconds", Telemetry.Json.of_float t_on);
                ("cuts_asserted", string_of_int st_on.BP.relax_cuts);
                ("lp_checks", string_of_int st_on.BP.relax_lp_checks);
                ("nodes_pruned", string_of_int st_on.BP.relax_pruned);
                ("bounds_tightened", string_of_int st_on.BP.relax_tightened);
              ] );
          ( "relax_off",
            Telemetry.Json.obj
              [
                ("bp_nodes", string_of_int n_off);
                ("seconds", Telemetry.Json.of_float t_off);
              ] );
          ("node_reduction", Telemetry.Json.of_float reduction);
          ("wall_time_delta_seconds", Telemetry.Json.of_float (t_on -. t_off));
        ]
      :: !entries
  in
  bp_case ~name:"car_steering" steering_slice;
  case ~name:"nonlinear_unsat" nonlinear_unsat_problem;
  case ~name:"sphere_cap_unsat" sphere_cap_problem;
  case ~name:"esat_n11_m8" esat_problem;
  case ~name:"div_operator" div_operator_problem;
  let gate_ok = !steering_reduction >= 2.0 && !mismatches = 0 in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"branch-and-prune linear relaxation (lib/relax)\",\n\
      \  \"steering_node_reduction\": %s,\n\
      \  \"gate\": \"car_steering node_reduction >= 2.0, verdicts equal\",\n\
      \  \"gate_ok\": %b,\n\
      \  \"verdict_mismatches\": %d,\n\
      \  \"cases\": [\n%s\n  ]\n}\n"
      (Telemetry.Json.of_float !steering_reduction)
      gate_ok !mismatches
      (String.concat ",\n"
         (List.map (fun e -> "    " ^ e) (List.rev !entries)))
  in
  let oc = open_out "BENCH_relax.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "car steering: %.1fx node reduction\nwrote BENCH_relax.json\n"
    !steering_reduction;
  if not gate_ok then begin
    Printf.eprintf
      "relax: gate failed (steering reduction %.2fx, %d verdict mismatches)\n"
      !steering_reduction !mismatches;
    exit 1
  end

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "ablations" -> ablations ()
  | "micro" -> micro ()
  | "json" -> json_mode ()
  | "parallel" -> parallel_mode ()
  | "incremental" -> incremental_mode ()
  | "server" -> server_mode ()
  | "chaos" -> chaos_mode ()
  | "flatcore" -> flatcore_mode ()
  | "relax" -> relax_mode ()
  | "all" ->
    table1 ();
    table2 ();
    table3 ();
    ablations ()
  | other ->
    Printf.eprintf
      "unknown benchmark %S (expected \
       table1|table2|table3|ablations|micro|json|parallel|incremental|server|chaos|flatcore|relax|all)\n"
      other;
    exit 2
