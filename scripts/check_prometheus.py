#!/usr/bin/env python3
"""Validate Prometheus text-exposition (0.0.4) output.

Used by CI against the solve server's `metrics` op and the CLI's
--metrics-file output. Checks the line grammar, that every sample
belongs to a `# TYPE`d family, and the histogram contract: cumulative
`_bucket{le="..."}` series capped by a `+Inf` bucket whose count equals
the family's `_count`.

Usage: check_prometheus.py [FILE]   (reads stdin when FILE is absent)
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises on garbage


def fail(lineno, line, why):
    sys.exit(f"check_prometheus: line {lineno}: {why}: {line!r}")


def main():
    text = open(sys.argv[1]).read() if len(sys.argv) > 1 else sys.stdin.read()
    types = {}
    samples = []  # (name, labels-dict, value, lineno)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    fail(lineno, line, "malformed TYPE comment")
                _, _, name, kind = parts
                if not NAME_RE.match(name):
                    fail(lineno, line, "bad metric name in TYPE")
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    fail(lineno, line, f"unknown type {kind}")
                if name in types:
                    fail(lineno, line, "duplicate TYPE for family")
                types[name] = kind
            # other comments (HELP, free-form) are fine
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, "not a sample line")
        labels = {}
        if m.group("labels"):
            for pair in re.split(r",(?=[a-zA-Z_])", m.group("labels")):
                if not LABEL_RE.match(pair):
                    fail(lineno, line, f"bad label {pair!r}")
                k, v = pair.split("=", 1)
                labels[k] = v[1:-1]
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            fail(lineno, line, f"unparseable value {m.group('value')!r}")
        samples.append((m.group("name"), labels, value, lineno))

    if not samples:
        sys.exit("check_prometheus: no samples")

    def family(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    for name, _, _, lineno in samples:
        if family(name) not in types:
            fail(lineno, name, "sample without a TYPE comment")

    n_hist = 0
    for fam, kind in types.items():
        if kind != "histogram":
            continue
        n_hist += 1
        buckets = [
            (float("inf") if lb["le"] == "+Inf" else float(lb["le"]), v)
            for (name, lb, v, _) in samples
            if name == fam + "_bucket" and "le" in lb
        ]
        if not buckets:
            sys.exit(f"check_prometheus: histogram {fam} has no buckets")
        buckets.sort()
        counts = [c for _, c in buckets]
        if counts != sorted(counts):
            sys.exit(f"check_prometheus: {fam} buckets not cumulative")
        if buckets[-1][0] != float("inf"):
            sys.exit(f"check_prometheus: {fam} missing +Inf bucket")
        total = [v for (name, _, v, _) in samples if name == fam + "_count"]
        if len(total) != 1:
            sys.exit(f"check_prometheus: {fam} needs exactly one _count")
        if buckets[-1][1] != total[0]:
            sys.exit(f"check_prometheus: {fam} +Inf bucket != _count")
        if not any(name == fam + "_sum" for (name, _, _, _) in samples):
            sys.exit(f"check_prometheus: {fam} missing _sum")

    print(
        f"check_prometheus: OK — {len(samples)} samples, "
        f"{len(types)} families ({n_hist} histograms)"
    )


if __name__ == "__main__":
    main()
