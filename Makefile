.PHONY: all build test check bench bench-json fmt clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything compiles and the full suite passes.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable presolve on/off comparison with per-phase telemetry
# breakdowns, written to BENCH_presolve.json.
bench-json:
	dune exec bench/main.exe json

# The reference container has no ocamlformat binary and .ocamlformat sets
# disable=true, so this is a guarded no-op there (see README).
fmt:
	@command -v ocamlformat >/dev/null 2>&1 && dune fmt || \
	  echo "ocamlformat not installed; skipping"

clean:
	dune clean
