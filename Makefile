.PHONY: all build test check bench bench-json bench-parallel bench-incremental bench-server bench-chaos bench-flatcore bench-relax bench-all fuzz fmt clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything compiles and the full suite passes.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable presolve on/off comparison with per-phase telemetry
# breakdowns, written to BENCH_presolve.json.
bench-json:
	dune exec bench/main.exe json

# Parallel branch-and-prune at --jobs 1/2/4 with per-case speedups and a
# portfolio run per case, written to BENCH_parallel.json.
bench-parallel:
	dune exec bench/main.exe parallel

# From-scratch vs warm-started vs cached LP sessions on multi-model
# paper cases: wall clock, exact pivot counts and cache hit rates,
# written to BENCH_incremental.json.
bench-incremental:
	dune exec bench/main.exe incremental

# Mixed FISCHER/Sudoku/steering workload through the solve server at
# 1/4/16 concurrent clients: throughput and p50/p95/p99 latency, with
# verdict identity asserted across levels, written to BENCH_server.json.
bench-server:
	dune exec bench/main.exe server

# Seeded session workload over a real socket, fault-free vs under the
# network fault injector: byte-identical transcripts, latency
# percentiles, client retry counters and the half-open reclaim time,
# written to BENCH_chaos.json.  Exits non-zero on a transcript flip or
# a missed idle-timeout reclaim.
bench-chaos:
	dune exec bench/main.exe chaos

# Flat-core regression gate: wall time and allocated words per case
# (fischer sat/unsat model enumeration, one-shot solves, steering at
# jobs 1/4) against the embedded pre-refactor baseline, written to
# BENCH_flatcore.json.  Exits non-zero on a verdict mismatch or if the
# fischer family allocates more than half the pre-refactor words.
bench-flatcore:
	dune exec bench/main.exe flatcore

# Branch-and-prune with the linear-relaxation layer on vs off: node
# counts, prune attribution and wall time on the steering slice and the
# nonlinear families, written to BENCH_relax.json.  Exits non-zero if
# the steering node reduction drops below 2x or any verdict differs.
bench-relax:
	dune exec bench/main.exe relax

# Re-emit every machine-readable benchmark artefact (BENCH_*.json) in
# one go — the full measurement sweep behind the README numbers.
bench-all: bench-json bench-parallel bench-incremental bench-server bench-chaos bench-flatcore bench-relax

# Resource-governor robustness: the seeded differential fuzzer (500
# random problems, engine and DPLL(T) baseline under tight budgets vs
# the unbudgeted reference) plus the deterministic fault-injection
# sweep over every pipeline boundary.
fuzz:
	dune exec test/main.exe -- test resource

# The reference container has no ocamlformat binary and .ocamlformat sets
# disable=true, so this is a guarded no-op there (see README).
fmt:
	@command -v ocamlformat >/dev/null 2>&1 && dune fmt || \
	  echo "ocamlformat not installed; skipping"

clean:
	dune clean
