type 'a entry = { key : string list (* sorted *); value : 'a }

type 'a t = {
  hash : string -> int64;
  capacity : int;
  buckets : (int64, 'a entry list) Hashtbl.t;
  fifo : (int64 * string list) Queue.t; (* insertion order, sorted keys *)
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* FNV-1a over the native int range, boxed to int64 once per key. The
   63-bit truncation is irrelevant here: the signature only buckets
   candidates (see the sorted-key comparison in [find]), and keeping the
   accumulation in immediate ints means hashing allocates nothing per
   character — this runs on every cache probe of the DPLL(T) hot loop. *)
let default_hash s =
  let prime = 0x100000001b3 and offset = 0x3bf29ce484222325 in
  let h = ref offset in
  String.iter (fun c -> h := (!h lxor Char.code c) * prime) s;
  Int64.of_int !h

let create ?(hash = default_hash) ?(capacity = 4096) () =
  {
    hash;
    capacity = max 0 capacity;
    buckets = Hashtbl.create 64;
    fifo = Queue.create ();
    size = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Commutative combination: the signature of a key set is independent of
   the order the elements arrive in. Exactness is not required here —
   the sorted-key comparison below is what decides membership. *)
let signature t keys =
  List.fold_left (fun acc k -> Int64.add acc (t.hash k)) 0L keys

let find t keys =
  let sg = signature t keys in
  match Hashtbl.find_opt t.buckets sg with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some entries -> (
    (* Keys are sorted only once a bucket matches: most misses die on
       the signature and never pay for the canonical ordering. *)
    let sorted = List.sort compare keys in
    match List.find_opt (fun e -> e.key = sorted) entries with
    | Some e ->
      t.hits <- t.hits + 1;
      Some e.value
    | None ->
      t.misses <- t.misses + 1;
      None)

let drop_entry t sg key =
  match Hashtbl.find_opt t.buckets sg with
  | None -> ()
  | Some entries -> (
    match List.filter (fun e -> e.key <> key) entries with
    | [] -> Hashtbl.remove t.buckets sg
    | rest -> Hashtbl.replace t.buckets sg rest)

let add t keys value =
  if t.capacity > 0 then begin
    let sg = signature t keys in
    let sorted = List.sort compare keys in
    let present =
      match Hashtbl.find_opt t.buckets sg with
      | None -> false
      | Some entries -> List.exists (fun e -> e.key = sorted) entries
    in
    if not present then begin
      if t.size >= t.capacity then begin
        let old_sg, old_key = Queue.pop t.fifo in
        drop_entry t old_sg old_key;
        t.size <- t.size - 1;
        t.evictions <- t.evictions + 1
      end;
      let entries = Option.value ~default:[] (Hashtbl.find_opt t.buckets sg) in
      Hashtbl.replace t.buckets sg ({ key = sorted; value } :: entries);
      Queue.push (sg, sorted) t.fifo;
      t.size <- t.size + 1
    end
  end

let size t = t.size
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
