(** Persistent, warm-started LP sessions for the DPLL(T) loop.

    The paper's control loop restarts the linear solver from scratch on
    every Boolean candidate model; a session instead keeps one
    {!Simplex.t} alive for the whole enumeration. Each call to {!solve}
    maps the new constraint set onto the simplex assertion stack by
    popping down to the longest still-valid prefix and pushing only the
    missing constraints (one trail frame per constraint, so any one of
    them can be retracted later), warm-starting every check from the
    previous basis — pivots survive retraction because they preserve the
    solution set. Verdicts and conflict cores are additionally memoized
    in a {!Verdict_cache} keyed by the constraint set, so repeated
    sub-problems (equality-split combos, all-models blocking iterations)
    are answered without touching the tableau at all.

    Verdict-equivalent to {!Simplex.solve_system} by construction: the
    same constant-constraint screening, the same branch-and-bound over
    [int_vars], the same typed [Unknown] degradation on budget
    exhaustion — only the tableau lifetime and pivot count differ. *)

type t

type stats = {
  mutable solves : int;  (** calls to {!solve} *)
  mutable asserted : int;  (** constraints pushed onto the stack *)
  mutable retracted : int;  (** constraints popped off the stack *)
  mutable reused : int;  (** constraints kept across consecutive solves *)
}

val create :
  ?budget:Absolver_resource.Budget.t ->
  ?cache_capacity:int ->
  ?float_filter:bool ->
  unit ->
  t
(** A fresh session. The [budget] governs every pivot for the session's
    lifetime. [cache_capacity] sizes the verdict cache (0 disables it);
    [float_filter] (default [true]) enables double-precision pivot
    selection on the underlying simplex. *)

val set_budget : t -> Absolver_resource.Budget.t -> unit
(** Swap the budget governing subsequent pivots. The warm tableau, the
    assertion stack and the verdict cache survive — this is how a
    long-lived per-client session (the solve server's) is re-governed by
    each request's own deadline without losing its warm start. *)

val solve : t -> ?int_vars:Linexpr.var list -> Linexpr.cons list -> Simplex.verdict
(** Decide the conjunction, reusing tableau state and cached verdicts
    from earlier calls. Library boundary: budget exhaustion rolls the
    session back to a consistent state and returns [Unknown] — no
    exception escapes, and the session stays usable. *)

val stats : t -> stats

val counters : t -> (string * int) list
(** Session counters in telemetry form: solves, cache hits / misses /
    evictions, asserted / retracted / reused constraints. *)
