(** Persistent, warm-started LP sessions for the DPLL(T) loop.

    The paper's control loop restarts the linear solver from scratch on
    every Boolean candidate model; a session instead keeps one
    {!Simplex.t} alive for the whole enumeration. Each call to {!solve}
    maps the new constraint set onto the simplex assertion stack by
    popping down to the longest still-valid prefix and pushing only the
    missing constraints (one trail frame per constraint, so any one of
    them can be retracted later), warm-starting every check from the
    previous basis — pivots survive retraction because they preserve the
    solution set. Verdicts and conflict cores are additionally memoized
    in a {!Verdict_cache} keyed by the constraint set, so repeated
    sub-problems (equality-split combos, all-models blocking iterations)
    are answered without touching the tableau at all.

    Verdict-equivalent to {!Simplex.solve_system} by construction: the
    same constant-constraint screening, the same branch-and-bound over
    [int_vars], the same typed [Unknown] degradation on budget
    exhaustion — only the tableau lifetime and pivot count differ. *)

type t

type stats = {
  mutable solves : int;  (** calls to {!solve} *)
  mutable asserted : int;  (** constraints pushed onto the stack *)
  mutable retracted : int;  (** constraints popped off the stack *)
  mutable reused : int;  (** constraints kept across consecutive solves *)
}

val create :
  ?budget:Absolver_resource.Budget.t ->
  ?cache_capacity:int ->
  ?float_filter:bool ->
  unit ->
  t
(** A fresh session. The [budget] governs every pivot for the session's
    lifetime. [cache_capacity] sizes the verdict cache (0 disables it);
    [float_filter] (default [true]) enables double-precision pivot
    selection on the underlying simplex. *)

val set_budget : t -> Absolver_resource.Budget.t -> unit
(** Swap the budget governing subsequent pivots. The warm tableau, the
    assertion stack and the verdict cache survive — this is how a
    long-lived per-client session (the solve server's) is re-governed by
    each request's own deadline without losing its warm start. *)

val solve : t -> ?int_vars:Linexpr.var list -> Linexpr.cons list -> Simplex.verdict
(** Decide the conjunction, reusing tableau state and cached verdicts
    from earlier calls. Library boundary: budget exhaustion rolls the
    session back to a consistent state and returns [Unknown] — no
    exception escapes, and the session stays usable. *)

val stats : t -> stats

val counters : t -> (string * int) list
(** Session counters in telemetry form: solves, cache hits / misses /
    evictions, asserted / retracted / reused constraints. *)

(** {1 Scoped cuts}

    Path-scoped assertion for the branch-and-prune relaxation layer:
    cut rows asserted inside a scope are retracted exactly when the
    scope pops (checkpoint on branch, rollback on backtrack — one
    simplex trail frame per scope, pivots kept across pops so every
    check warm-starts). The caller owns the path discipline: {!solve}
    raises [Invalid_argument] while scopes are open, so a session is
    either in stack mode or in scope mode at any time. *)

val scope_push : t -> unit
(** Open a new cut scope (innermost). *)

val scope_pop : t -> unit
(** Retract every cut of the innermost scope, keeping pivots.
    @raise Invalid_argument when no scope is open. *)

val open_scopes : t -> int

val scope_assert : t -> Linexpr.cons -> bool
(** Assert a cut into the innermost scope. [false] means the cut
    immediately conflicts with bounds asserted so far (the system is
    infeasible); the session stays consistent either way.
    @raise Invalid_argument when no scope is open. *)

val scope_check : t -> bool
(** Run the simplex to a verdict over everything currently asserted
    ([true] = feasible). Sound and complete — the verdict depends only
    on the asserted rows, never on warm-start state.
    @raise Absolver_resource.Budget.Exhausted if the session's budget
    trips mid-pivot (the tableau is left consistent; the caller of the
    scoped API owns the budget boundary). *)

type scope_opt = Opt_value of Absolver_numeric.Delta_rational.t | Opt_unbounded | Opt_infeasible

val scope_maximize : t -> Linexpr.t -> scope_opt
val scope_minimize : t -> Linexpr.t -> scope_opt
(** Optimize an (affine) objective in {e external} variables over the
    currently asserted rows; used for optimization-based bounds
    tightening. Exact; the optimum value's rational part is a sound
    outer bound even when a strict row leaves a delta component.
    @raise Absolver_resource.Budget.Exhausted as {!scope_check}. *)
