module Q = Absolver_numeric.Rational
module DR = Absolver_numeric.Delta_rational
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults
module Err = Absolver_resource.Absolver_error

type stats = {
  mutable solves : int;
  mutable asserted : int;
  mutable retracted : int;
  mutable reused : int;
}

type cached = C_sat of (Linexpr.var * Q.t) list | C_unsat of int list

type t = {
  simplex : Simplex.t;
  mutable budget : Budget.t;
  cache : cached Verdict_cache.t;
  (* The assertion stack, top-first: one simplex trail frame per entry,
     so any suffix can be retracted independently of assertion order. *)
  mutable stack : (string * Linexpr.cons) list;
  (* Variable interning. A one-shot tableau can lay out the caller's
     structural variables below its own slacks, but a persistent session
     cannot: a later call may introduce a structural index the tableau
     already handed to a slack row. Renaming every external variable
     through [Simplex.new_var] makes each tableau index either one
     interned external variable or one slack, never both. The stack,
     the tableau and branch-and-bound all live in internal indices; the
     cache and the returned models stay external. *)
  ext2int : (int, int) Hashtbl.t;
  int2ext : (int, int) Hashtbl.t;
  (* Interned image of each constraint, memoized by its canonical key:
     the engine re-linearizes the same atoms on every Boolean model, so
     re-walking [intern_cons] per solve would rebuild identical
     expressions thousands of times. Two constraints with equal keys are
     interchangeable (see [cons_key]), so replaying the memo is exact. *)
  interned : (string, Linexpr.cons) Hashtbl.t;
  (* Scratch for [cons_key] and [apply_delta]; reused across solves so
     the per-query bookkeeping stays off the allocator. *)
  keybuf : Buffer.t;
  needed : (string, int) Hashtbl.t;
  stats : stats;
  (* Open cut scopes (see the scoped-cut API below): one simplex trail
     frame per scope, layered on top of the assertion stack. *)
  mutable scopes : int;
}

let create ?(budget = Budget.unlimited) ?(cache_capacity = 4096)
    ?(float_filter = true) () =
  let simplex = Simplex.create ~budget () in
  Simplex.set_float_filter simplex float_filter;
  {
    simplex;
    budget;
    cache = Verdict_cache.create ~capacity:cache_capacity ();
    stack = [];
    ext2int = Hashtbl.create 64;
    int2ext = Hashtbl.create 64;
    interned = Hashtbl.create 64;
    keybuf = Buffer.create 256;
    needed = Hashtbl.create 64;
    stats = { solves = 0; asserted = 0; retracted = 0; reused = 0 };
    scopes = 0;
  }

let intern_var t v =
  match Hashtbl.find_opt t.ext2int v with
  | Some i -> i
  | None ->
    let i = Simplex.new_var t.simplex in
    Hashtbl.add t.ext2int v i;
    Hashtbl.add t.int2ext i v;
    i

let intern_cons t (c : Linexpr.cons) =
  let expr =
    List.fold_left
      (fun acc (v, q) -> Linexpr.add_term acc q (intern_var t v))
      (Linexpr.constant (Linexpr.const c.expr))
      (Linexpr.coeffs c.expr)
  in
  { c with Linexpr.expr }

let intern_memo t k c =
  match Hashtbl.find_opt t.interned k with
  | Some ic -> ic
  | None ->
    let ic = intern_cons t c in
    Hashtbl.add t.interned k ic;
    ic

let extern_model t model =
  List.filter_map
    (fun (i, q) ->
      match Hashtbl.find_opt t.int2ext i with
      | Some v -> Some (v, q)
      | None -> None)
    model

(* A long-lived session (the solve server keeps one per client) is
   re-governed per request: the warm tableau and the cache survive, only
   the budget polled by subsequent pivots changes. *)
let set_budget t budget =
  t.budget <- budget;
  Simplex.set_budget t.simplex budget

let stats t = t.stats

let counters t =
  [
    ("lp.inc.solves", t.stats.solves);
    ("lp.inc.cache_hits", Verdict_cache.hits t.cache);
    ("lp.inc.cache_misses", Verdict_cache.misses t.cache);
    ("lp.inc.cache_evictions", Verdict_cache.evictions t.cache);
    ("lp.inc.asserted", t.stats.asserted);
    ("lp.inc.retracted", t.stats.retracted);
    ("lp.inc.reused", t.stats.reused);
  ]

(* ------------------------------------------------------------------ *)
(* Scoped cuts                                                         *)
(*                                                                     *)
(* The branch-and-prune relaxation layer asserts per-node cut rows that *)
(* must retract exactly with the search path: checkpoint on branch,     *)
(* rollback on backtrack.  Each scope is one simplex trail frame, so a  *)
(* pop retracts the scope's bounds while keeping the pivots (warm       *)
(* start) — the same delta mechanics [apply_delta] uses, exposed to a   *)
(* caller that manages its own path discipline.  Scoped rows use        *)
(* [intern_cons], not the [interned] memo: cut constants vary per box,  *)
(* so memoizing them would grow the table without reuse (the tableau's  *)
(* own slack-row sharing by coefficient vector still applies).          *)
(* ------------------------------------------------------------------ *)

let open_scopes t = t.scopes

let scope_push t =
  Simplex.push t.simplex;
  t.scopes <- t.scopes + 1

let scope_pop t =
  if t.scopes <= 0 then invalid_arg "Incremental.scope_pop: no open scope";
  Simplex.pop t.simplex;
  t.scopes <- t.scopes - 1

let scope_assert t (c : Linexpr.cons) =
  if t.scopes <= 0 then invalid_arg "Incremental.scope_assert: no open scope";
  t.stats.asserted <- t.stats.asserted + 1;
  match Simplex.assert_cons t.simplex (intern_cons t c) with
  | Simplex.Feasible -> true
  | Simplex.Infeasible _ -> false

let scope_check t =
  match Simplex.check t.simplex with
  | Simplex.Feasible -> true
  | Simplex.Infeasible _ -> false

type scope_opt = Opt_value of DR.t | Opt_unbounded | Opt_infeasible

let scope_objective t le =
  List.fold_left
    (fun acc (v, q) -> Linexpr.add_term acc q (intern_var t v))
    (Linexpr.constant (Linexpr.const le))
    (Linexpr.coeffs le)

let scope_maximize t le =
  match Simplex.maximize t.simplex (scope_objective t le) with
  | Simplex.O_optimal (d, _) -> Opt_value d
  | Simplex.O_unbounded -> Opt_unbounded
  | Simplex.O_infeasible _ -> Opt_infeasible

let scope_minimize t le =
  match Simplex.minimize_obj t.simplex (scope_objective t le) with
  | Simplex.O_optimal (d, _) -> Opt_value d
  | Simplex.O_unbounded -> Opt_unbounded
  | Simplex.O_infeasible _ -> Opt_infeasible

(* Canonical identity of a constraint: tag, relation, sorted coefficient
   list, constant. Two constraints with equal keys are interchangeable on
   the stack, which is what lets the delta treat the inputs as a
   multiset. *)
let cons_key b (c : Linexpr.cons) =
  Buffer.clear b;
  Buffer.add_string b (string_of_int c.tag);
  Buffer.add_char b '|';
  Buffer.add_string b
    (match c.op with
    | Linexpr.Le -> "<="
    | Linexpr.Lt -> "<"
    | Linexpr.Ge -> ">="
    | Linexpr.Gt -> ">"
    | Linexpr.Eq -> "=");
  Buffer.add_char b '|';
  List.iter
    (fun (v, q) ->
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ':';
      Buffer.add_string b (Q.to_string q);
      Buffer.add_char b ';')
    (Linexpr.coeffs c.expr);
  Buffer.add_char b '|';
  Buffer.add_string b (Q.to_string (Linexpr.const c.expr));
  Buffer.contents b

let branch_tag = -1
let drop_branch_tag tags = List.filter (fun g -> g <> branch_tag) tags

exception Bb_budget

(* Branch-and-bound over [int_vars] on the persistent tableau; mirrors
   the loop in [Simplex.solve_system] (same node cap, same branching
   order) so the two paths stay verdict-equivalent. *)
let branch_and_bound t ~int_vars ~structural =
  let sx = t.simplex in
  let bb_nodes = ref 200_000 in
  let rec bb () =
    decr bb_nodes;
    if !bb_nodes <= 0 then raise Bb_budget;
    match Simplex.check sx with
    | Simplex.Infeasible tags -> Simplex.Unsat tags
    | Simplex.Feasible -> (
      let model = Simplex.concrete_model sx ~vars:structural in
      let fractional =
        List.find_opt
          (fun v ->
            List.mem v int_vars
            &&
            match List.assoc_opt v model with
            | Some q -> not (Q.is_integer q)
            | None -> false)
          structural
      in
      match fractional with
      | None -> Simplex.Sat model
      | Some v ->
        let q = List.assoc v model in
        let lo = Q.of_bigint (Q.floor q) and hi = Q.of_bigint (Q.ceil q) in
        Simplex.push sx;
        let left =
          match
            Simplex.assert_bound sx ~tag:branch_tag v Simplex.Upper
              (DR.of_rational lo)
          with
          | Simplex.Feasible -> bb ()
          | Simplex.Infeasible tags -> Simplex.Unsat tags
        in
        Simplex.pop sx;
        (match left with
        | Simplex.Sat _ | Simplex.Unknown _ -> left
        | Simplex.Unsat tags_l -> (
          Simplex.push sx;
          let right =
            match
              Simplex.assert_bound sx ~tag:branch_tag v Simplex.Lower
                (DR.of_rational hi)
            with
            | Simplex.Feasible -> bb ()
            | Simplex.Infeasible tags -> Simplex.Unsat tags
          in
          Simplex.pop sx;
          match right with
          | Simplex.Sat _ | Simplex.Unknown _ -> right
          | Simplex.Unsat tags_r ->
            Simplex.Unsat
              (List.sort_uniq compare (drop_branch_tag (tags_l @ tags_r))))))
  in
  bb ()

(* Map the new constraint multiset onto the assertion stack: keep the
   longest bottom prefix whose entries all still occur in the new set,
   pop everything above it, then push whatever the prefix does not yet
   cover. Returns [Some tags] on an assertion-time conflict (with the
   offending frame already popped, so the session stays consistent). *)
let apply_delta t ~keys ~constraints =
  let sx = t.simplex in
  let needed = t.needed in
  Hashtbl.clear needed;
  List.iter
    (fun k ->
      Hashtbl.replace needed k
        (1 + Option.value ~default:0 (Hashtbl.find_opt needed k)))
    keys;
  let kept = ref [] in
  let n_kept = ref 0 in
  let broken = ref false in
  List.iter
    (fun ((k, _) as entry) ->
      if not !broken then
        match Hashtbl.find_opt needed k with
        | Some n when n > 0 ->
          Hashtbl.replace needed k (n - 1);
          kept := entry :: !kept;
          incr n_kept
        | _ -> broken := true)
    (List.rev t.stack);
  let n_pop = List.length t.stack - !n_kept in
  for _ = 1 to n_pop do
    Simplex.pop sx
  done;
  t.stats.retracted <- t.stats.retracted + n_pop;
  t.stats.reused <- t.stats.reused + !n_kept;
  t.stack <- !kept;
  (* [needed] now holds, per key, how many instances the kept prefix did
     not cover: assert exactly those, in input order. *)
  let conflict = ref None in
  List.iter2
    (fun k c ->
      if !conflict = None then
        match Hashtbl.find_opt needed k with
        | Some n when n > 0 ->
          Hashtbl.replace needed k (n - 1);
          Simplex.push sx;
          (match Simplex.assert_cons sx c with
          | Simplex.Feasible ->
            t.stack <- (k, c) :: t.stack;
            t.stats.asserted <- t.stats.asserted + 1
          | Simplex.Infeasible tags ->
            Simplex.pop sx;
            conflict := Some tags)
        | _ -> ())
    keys constraints;
  !conflict

let solve_uncached t ~int_vars ~keys ~constraints =
  let sx = t.simplex in
  match apply_delta t ~keys ~constraints with
  | Some tags -> Simplex.Unsat (drop_branch_tag tags)
  | None -> (
    let structural =
      List.sort_uniq compare
        (List.concat_map
           (fun (c : Linexpr.cons) -> Linexpr.vars c.expr)
           constraints)
    in
    let cp = Simplex.checkpoint sx in
    match branch_and_bound t ~int_vars ~structural with
    | Simplex.Sat model -> Simplex.Sat model
    | Simplex.Unsat tags -> Simplex.Unsat (drop_branch_tag tags)
    | Simplex.Unknown _ as u -> u
    | exception Bb_budget ->
      Simplex.rollback sx cp;
      Simplex.Unknown (Err.Out_of_budget Err.Steps)
    | exception Budget.Exhausted e ->
      Simplex.rollback sx cp;
      Simplex.Unknown e)

let solve t ?(int_vars = []) constraints =
  if t.scopes > 0 then
    invalid_arg "Incremental.solve: cut scopes are open (pop them first)";
  t.stats.solves <- t.stats.solves + 1;
  (* Constant constraints never reach the tableau (as in solve_system). *)
  let const_conflict =
    List.find_opt
      (fun (c : Linexpr.cons) ->
        Linexpr.is_constant c.expr && not (Linexpr.holds (fun _ -> Q.zero) c))
      constraints
  in
  match const_conflict with
  | Some c -> Simplex.Unsat [ c.tag ]
  | None -> (
    let constraints =
      List.filter
        (fun (c : Linexpr.cons) -> not (Linexpr.is_constant c.expr))
        constraints
    in
    let keys = List.map (cons_key t.keybuf) constraints in
    let cache_key =
      match List.sort_uniq compare int_vars with
      | [] -> keys
      | vs ->
        ("ints:" ^ String.concat "," (List.map string_of_int vs)) :: keys
    in
    match Verdict_cache.find t.cache cache_key with
    | Some (C_sat model) -> Simplex.Sat model
    | Some (C_unsat tags) -> Simplex.Unsat tags
    | None -> (
      match
        Faults.hit "lp.solve_system" t.budget;
        let constraints = List.map2 (intern_memo t) keys constraints in
        let int_vars = List.map (intern_var t) int_vars in
        match solve_uncached t ~int_vars ~keys ~constraints with
        | Simplex.Sat model -> Simplex.Sat (extern_model t model)
        | (Simplex.Unsat _ | Simplex.Unknown _) as v -> v
      with
      | exception Budget.Exhausted e -> Simplex.Unknown e
      | verdict ->
        (match verdict with
        | Simplex.Sat model -> Verdict_cache.add t.cache cache_key (C_sat model)
        | Simplex.Unsat tags -> Verdict_cache.add t.cache cache_key (C_unsat tags)
        | Simplex.Unknown _ -> ());
        verdict))
