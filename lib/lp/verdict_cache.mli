(** Theory-verdict cache for the incremental DPLL(T) hot path.

    Memoizes LP verdicts (models and conflict cores) keyed by the set of
    asserted constraints. Lookup is a two-level check: an
    order-independent 64-bit signature (commutative combination of
    per-element FNV-1a hashes) buckets the candidates, then an exact
    comparison of the sorted key set confirms — so hash collisions cost a
    list walk, never a wrong answer. Eviction is FIFO at a fixed
    capacity. A capacity of 0 disables the cache (every lookup misses,
    nothing is stored), which the bench uses to isolate warm-start gains
    from cache gains. *)

type 'a t

val create : ?hash:(string -> int64) -> ?capacity:int -> unit -> 'a t
(** [capacity] defaults to 4096 entries. [hash] replaces the per-element
    hash (default {!default_hash}) — the tests inject a degenerate hash
    to exercise collision buckets. *)

val find : 'a t -> string list -> 'a option
(** Lookup by key set. Order of the list does not matter; duplicates do
    (the key is a multiset). Counts a hit or a miss. *)

val add : 'a t -> string list -> 'a -> unit
(** Insert, evicting the oldest entry when at capacity. Re-inserting a
    present key is a no-op. *)

val signature : 'a t -> string list -> int64
(** The order-independent signature of a key set under this cache's
    element hash (exposed for tests). *)

val default_hash : string -> int64
(** 64-bit FNV-1a. *)

val size : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
