(** Exact general simplex for linear-arithmetic feasibility.

    This is the reproduction's stand-in for COIN [5]: a sound and complete
    feasibility oracle for conjunctions of linear (in)equalities over the
    rationals, in the style of Dutertre and de Moura's solver-for-DPLL(T):
    slack variables carry the linear forms, asserted constraints become
    bounds, and strict inequalities are handled with delta-rationals.

    The incremental interface ({!assert_bound}, {!push}/{!pop}) serves the
    tightly-integrated MathSAT-like baseline; the one-shot {!solve_system}
    serves ABSOLVER's loosely-coupled control loop (which restarts the
    linear solver per Boolean model, exactly as the paper describes). *)

module Q = Absolver_numeric.Rational
module DR = Absolver_numeric.Delta_rational

type t

type result = Feasible | Infeasible of int list
(** [Infeasible tags]: the referenced asserted bounds are jointly
    inconsistent (a theory conflict ready to be learned). *)

val create : ?budget:Absolver_resource.Budget.t -> unit -> t
(** An empty tableau. With a [budget], every pivot ticks it: the
    incremental operations ({!check}, {!maximize}) may then raise
    {!Absolver_resource.Budget.Exhausted} — callers of the incremental
    interface own the boundary and must catch it. The one-shot
    {!solve_system} is exception-safe. *)

val set_budget : t -> Absolver_resource.Budget.t -> unit

val set_float_filter : t -> bool -> unit
(** Enable the double-precision pivot filter (off by default): {!check}
    first runs a greedy simplex on a float shadow of the tableau and
    replays its pivot script — each pivot re-justified exactly — before
    the certifying exact loop. Verdicts and conflict cores always come
    from the exact loop, so this only changes which pivots are tried,
    never the answer. *)

val new_var : t -> Linexpr.var
(** A fresh structural variable. *)

val ensure_vars : t -> int -> unit
(** Make structural variables [0 .. n-1] available. *)

val define : t -> Linexpr.t -> Linexpr.var
(** [define t e] returns a variable constrained to equal the (constant-free
    part of the) linear expression [e]: either [e]'s single variable when
    [e] is of the form [1*x], or a slack variable with a tableau row.
    Repeated definitions of the same expression share the slack. *)

type bound_kind = Lower | Upper

val assert_bound : t -> tag:int -> Linexpr.var -> bound_kind -> DR.t -> result
(** Tighten a bound. A [Lower] bound [c + delta] encodes [x > c]; an
    [Upper] bound [c - delta] encodes [x < c]. Immediate conflicts with the
    opposite bound are reported without modifying the state. *)

val assert_cons : t -> Linexpr.cons -> result
(** Convenience: define the constraint's expression and assert the
    corresponding bound (tagged with the constraint's tag). [Eq] asserts
    both bounds. *)

val check : t -> result
(** Run pivoting to a verdict. Sound and complete; terminates by Bland's
    rule.
    @raise Absolver_resource.Budget.Exhausted if the tableau carries a
    budget and a pivot exhausts it (the tableau is left consistent: the
    interrupted pivot has not modified it). *)

val push : t -> unit
val pop : t -> unit
(** Backtrack the most recent {!push}. Bound tightenings are undone;
    pivots are kept (they preserve the solution set). *)

type checkpoint
(** A stable name for a trail depth, for non-chronological callers that
    cannot count their own pushes (e.g. rollback after a budget trip
    mid-branch-and-bound). *)

val checkpoint : t -> checkpoint

val rollback : t -> checkpoint -> unit
(** Pop frames until the trail is back at the checkpointed depth. Bounds
    asserted since are retracted; pivots are kept (warm start). Raises
    [Invalid_argument] if the checkpoint is deeper than the current
    trail (i.e. already popped past). *)

val value : t -> Linexpr.var -> DR.t
(** Current assignment of a variable (meaningful after [check = Feasible]). *)

val concrete_model : t -> vars:Linexpr.var list -> (Linexpr.var * Q.t) list
(** Rational model obtained by substituting a suitable positive value for
    delta; valid for the current feasible assignment. *)

val num_pivots : t -> int

val total_pivots : unit -> int
(** Process-wide cumulative pivot count over {e all} simplex instances
    (including the internal ones built by {!solve_system}). Telemetry
    snapshots this before/after a call to attribute pivots to a phase. *)

val float_filter_stats : unit -> int * int * int
(** Process-wide [(guided, escalated, replayed)] float-filter counters:
    checks where the float shadow produced a pivot script, checks where
    it was inconclusive and the exact loop ran cold, and individual
    pivots replayed from a script. *)

(** {1 One-shot solving} *)

type verdict =
  | Sat of (Linexpr.var * Q.t) list
  | Unsat of int list (** tags of an inconsistent subset of the input *)
  | Unknown of Absolver_resource.Absolver_error.t
      (** gave up: budget exhausted, cancellation, or the internal
          branch-and-bound node cap *)

val solve_system :
  ?int_vars:Linexpr.var list ->
  ?budget:Absolver_resource.Budget.t ->
  Linexpr.cons list ->
  verdict
(** Decide a conjunction of linear constraints. With [int_vars], a
    branch-and-bound refinement additionally requires those variables to
    take integer values. This is a library boundary: exhaustion of the
    [budget] (or of the internal branch-and-bound node cap) returns
    [Unknown] with the typed reason — no exception escapes. *)

(** {1 Optimization}

    COIN is an optimization interface, not just a feasibility oracle; this
    primal simplex over the same tableau maximizes a linear objective
    subject to the asserted bounds. *)

type opt_result =
  | O_infeasible of int list (** tags, as in {!check} *)
  | O_unbounded
  | O_optimal of DR.t * (Linexpr.var * Q.t) list
      (** optimum value (delta-rational: strict bounds give suprema
          approached within delta) and a concretized optimal model *)

val maximize : t -> Linexpr.t -> opt_result
(** Maximize the (affine) objective over the current constraint system.
    Uses Bland's rule; terminating and exact. The tableau and assignment
    are left at the optimum. *)

val minimize_obj : t -> Linexpr.t -> opt_result
(** [maximize] of the negated objective, with the value negated back. *)
