module Q = Absolver_numeric.Rational
module DR = Absolver_numeric.Delta_rational
module IM = Map.Make (Int)
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults
module Err = Absolver_resource.Absolver_error

type bound = { value : DR.t; tag : int }

(* CSR tableau row (DESIGN.md Sec. 16): column indices sorted ascending in
   [idx.(0..len-1)] with the matching coefficients in [coef]. Coefficients
   are never zero — every producer drops exact cancellations — and the
   ascending order is load-bearing: iterating a row left to right visits
   columns in exactly the order the previous [Q.t IM.t] representation
   folded them, which is what keeps Bland's rule (and therefore the whole
   pivot history and every conflict core) bit-for-bit identical. *)
type row = {
  idx : int array;
  coef : Q.t array;
  len : int;
}

(* Physical sentinel for "not basic". Never mutated, compared with [==]. *)
let no_row = { idx = [||]; coef = [||]; len = 0 }

(* Growable int stack for the per-column occurrence lists. *)
type ivec = { mutable a : int array; mutable n : int }

let iv_make () = { a = [||]; n = 0 }

let iv_push v x =
  if v.n = Array.length v.a then begin
    let c = if v.n = 0 then 8 else 2 * v.n in
    let b = Array.make c 0 in
    Array.blit v.a 0 b 0 v.n;
    v.a <- b
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

type t = {
  mutable nvars : int;
  (* [rows.(v) != no_row] iff [v] is basic, with [v = sum coef.(i) * x_(idx.(i))]
     over nonbasic variables. *)
  mutable rows : row array;
  (* [occ.(j)] lists the basic variables whose rows may mention column [j]:
     a superset with stale entries and duplicates, compacted lazily by
     [occ_iter]. The invariant is one-sided — every live (row, column)
     incidence is registered — so occurrence-driven traversals see exactly
     the rows the old dense [for z = 0 to nvars-1] scans saw. *)
  mutable occ : ivec array;
  (* Per-variable generation stamps deduplicating one [occ_iter] pass. *)
  mutable mark : int array;
  mutable gen : int;
  mutable lower : bound option array;
  mutable upper : bound option array;
  mutable beta : DR.t array;
  defs : (string, int) Hashtbl.t; (* canonical expression -> slack var *)
  mutable trail : (int * bound_kind * bound option) list list;
  mutable pivots : int;
  mutable budget : Budget.t;
  (* When set, [check] first consults a double-precision shadow of the
     tableau to guide pivot selection; verdicts still come from the exact
     loop, so this is a heuristic only (see [float_guide] below). *)
  mutable float_filter : bool;
}

and bound_kind = Lower | Upper

type result = Feasible | Infeasible of int list

let create ?(budget = Budget.unlimited) () =
  {
    nvars = 0;
    rows = Array.make 16 no_row;
    occ = Array.init 16 (fun _ -> iv_make ());
    mark = Array.make 16 0;
    gen = 0;
    lower = Array.make 16 None;
    upper = Array.make 16 None;
    beta = Array.make 16 DR.zero;
    defs = Hashtbl.create 16;
    trail = [];
    pivots = 0;
    budget;
    float_filter = false;
  }

let set_budget t budget = t.budget <- budget
let set_float_filter t b = t.float_filter <- b

let grow t n =
  let cap = Array.length t.rows in
  if n > cap then begin
    let c = max n (2 * cap) in
    let ext a fill =
      let b = Array.make c fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.rows <- ext t.rows no_row;
    t.occ <-
      Array.init c (fun i -> if i < cap then t.occ.(i) else iv_make ());
    t.mark <- ext t.mark 0;
    t.lower <- ext t.lower None;
    t.upper <- ext t.upper None;
    t.beta <- ext t.beta DR.zero
  end

let new_var t =
  let v = t.nvars in
  grow t (v + 1);
  t.nvars <- v + 1;
  v

let ensure_vars t n = while t.nvars < n do ignore (new_var t) done
let is_basic t v = t.rows.(v) != no_row
let value t v = t.beta.(v)
let num_pivots t = t.pivots

(* Position of column [y] in [r], or -1. Binary search over the sorted
   index array. *)
let row_find r y =
  let lo = ref 0 and hi = ref r.len in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) lsr 1 in
    if r.idx.(mid) < y then lo := mid + 1 else hi := mid
  done;
  if !lo < r.len && r.idx.(!lo) = y then !lo else -1

(* Record that basic variable [b] has (or may have gained) an entry in
   every column of [r]. Over-registration is fine: [occ_iter] drops stale
   and duplicate entries as it walks. *)
let register_cols t b r =
  for i = 0 to r.len - 1 do
    iv_push t.occ.(r.idx.(i)) b
  done

(* Visit every basic variable [z] whose row currently contains column [y],
   as [f z row position]. Compacts [occ.(y)] in place: duplicates (via the
   generation stamp) and dead entries (no longer basic, or the row lost
   the column) are dropped. [f] may replace rows and push into other
   columns' occurrence lists, but must not add entries for column [y]. *)
let occ_iter t y f =
  let v = t.occ.(y) in
  t.gen <- t.gen + 1;
  let g = t.gen in
  let w = ref 0 in
  for i = 0 to v.n - 1 do
    let z = v.a.(i) in
    if t.mark.(z) <> g then begin
      t.mark.(z) <- g;
      let r = t.rows.(z) in
      if r != no_row then begin
        let p = row_find r y in
        if p >= 0 then begin
          v.a.(!w) <- z;
          incr w;
          f z r p
        end
      end
    end
  done;
  v.n <- !w

(* Replace basic variables in a term map by their defining rows. Cold
   path (definition time only), so the sparse accumulator is a plain
   int-keyed map; hot-loop row algebra below works on the flat arrays. *)
let expand t terms =
  IM.fold
    (fun v q acc ->
      let r = t.rows.(v) in
      if r == no_row then
        IM.update v
          (fun cur ->
            let s = Q.add (Option.value ~default:Q.zero cur) q in
            if Q.is_zero s then None else Some s)
          acc
      else begin
        let acc = ref acc in
        for i = 0 to r.len - 1 do
          let j = r.idx.(i) and c = r.coef.(i) in
          acc :=
            IM.update j
              (fun cur ->
                let s = Q.add (Option.value ~default:Q.zero cur) (Q.mul q c) in
                if Q.is_zero s then None else Some s)
              !acc
        done;
        !acc
      end)
    terms IM.empty

(* Freeze a term map into a CSR row ([IM.bindings] is ascending). *)
let row_of_im m =
  let n = IM.cardinal m in
  let idx = Array.make n 0 in
  let coef = Array.make n Q.zero in
  let i = ref 0 in
  IM.iter
    (fun j c ->
      idx.(!i) <- j;
      coef.(!i) <- c;
      incr i)
    m;
  { idx; coef; len = n }

let eval_row t r =
  let acc = ref DR.zero in
  for i = 0 to r.len - 1 do
    acc := DR.add !acc (DR.scale r.coef.(i) t.beta.(r.idx.(i)))
  done;
  !acc

let canonical_key terms =
  let buf = Buffer.create 64 in
  IM.iter
    (fun v q ->
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Q.to_string q);
      Buffer.add_char buf ';')
    terms;
  Buffer.contents buf

let define t expr =
  let terms =
    List.fold_left (fun acc (v, q) -> IM.add v q acc) IM.empty (Linexpr.coeffs expr)
  in
  match IM.bindings terms with
  | [ (v, q) ] when Q.equal q Q.one ->
    ensure_vars t (v + 1);
    v
  | bindings ->
    List.iter (fun (v, _) -> ensure_vars t (v + 1)) bindings;
    let key = canonical_key terms in
    (match Hashtbl.find_opt t.defs key with
    | Some s -> s
    | None ->
      let s = new_var t in
      let row = row_of_im (expand t terms) in
      t.rows.(s) <- row;
      register_cols t s row;
      t.beta.(s) <- eval_row t row;
      Hashtbl.add t.defs key s;
      s)

(* Adjust a nonbasic variable and propagate through dependent rows: only
   the rows registered under column [x] are touched, where the previous
   representation scanned every basic row. *)
let update t x v =
  let theta = DR.sub v t.beta.(x) in
  t.beta.(x) <- v;
  occ_iter t x (fun z r p ->
      t.beta.(z) <- DR.add t.beta.(z) (DR.scale r.coef.(p) theta))

let record t var kind old =
  match t.trail with
  | [] -> () (* no open frame: permanent assertion *)
  | frame :: rest -> t.trail <- ((var, kind, old) :: frame) :: rest

let assert_bound t ~tag x kind value =
  match kind with
  | Lower -> (
    let current = t.lower.(x) in
    let subsumed =
      match current with Some b -> DR.leq value b.value | None -> false
    in
    if subsumed then Feasible
    else
      match t.upper.(x) with
      | Some ub when DR.lt ub.value value -> Infeasible [ tag; ub.tag ]
      | _ ->
        record t x Lower current;
        t.lower.(x) <- Some { value; tag };
        if (not (is_basic t x)) && DR.lt t.beta.(x) value then update t x value;
        Feasible)
  | Upper -> (
    let current = t.upper.(x) in
    let subsumed =
      match current with Some b -> DR.leq b.value value | None -> false
    in
    if subsumed then Feasible
    else
      match t.lower.(x) with
      | Some lb when DR.lt value lb.value -> Infeasible [ tag; lb.tag ]
      | _ ->
        record t x Upper current;
        t.upper.(x) <- Some { value; tag };
        if (not (is_basic t x)) && DR.lt value t.beta.(x) then update t x value;
        Feasible)

let assert_cons t (c : Linexpr.cons) =
  let x = define t (Linexpr.drop_const c.expr) in
  let rhs = Q.neg (Linexpr.const c.expr) in
  (* expr op 0  <=>  (expr - const) op -const *)
  match c.op with
  | Linexpr.Le -> assert_bound t ~tag:c.tag x Upper (DR.of_rational rhs)
  | Linexpr.Lt ->
    assert_bound t ~tag:c.tag x Upper (DR.make rhs Q.minus_one)
  | Linexpr.Ge -> assert_bound t ~tag:c.tag x Lower (DR.of_rational rhs)
  | Linexpr.Gt -> assert_bound t ~tag:c.tag x Lower (DR.make rhs Q.one)
  | Linexpr.Eq -> (
    match assert_bound t ~tag:c.tag x Lower (DR.of_rational rhs) with
    | Infeasible _ as r -> r
    | Feasible -> assert_bound t ~tag:c.tag x Upper (DR.of_rational rhs))

(* Process-wide pivot total across every instance (including the
   throwaway solvers inside [solve_system]), so callers that only see
   verdicts can still attribute pivot work to their own phases by
   differencing this counter. *)
let global_pivots = Atomic.make 0
let total_pivots () = Atomic.get global_pivots

(* [r] minus its entry at position [p] (column being eliminated), plus
   [c] times [ry]: a sorted two-way merge, dropping exact cancellations.
   This is the inner loop of [pivot]; everything stays in flat arrays. *)
let row_subst r p c ry =
  let n1 = r.len and n2 = ry.len in
  let idx = Array.make (n1 - 1 + n2) 0 in
  let coef = Array.make (n1 - 1 + n2) Q.zero in
  let w = ref 0 in
  let put j q =
    idx.(!w) <- j;
    coef.(!w) <- q;
    incr w
  in
  let i = ref 0 and j = ref 0 in
  while !i < n1 || !j < n2 do
    if !i = p then incr i
    else begin
      let ji = if !i < n1 then r.idx.(!i) else max_int in
      let jj = if !j < n2 then ry.idx.(!j) else max_int in
      if ji < jj then begin
        put ji r.coef.(!i);
        incr i
      end
      else if jj < ji then begin
        put jj (Q.mul c ry.coef.(!j));
        incr j
      end
      else begin
        let s = Q.add r.coef.(!i) (Q.mul c ry.coef.(!j)) in
        if not (Q.is_zero s) then put ji s;
        incr i;
        incr j
      end
    end
  done;
  { idx; coef; len = !w }

(* Pivot basic x with nonbasic y (coefficient a = row(x)(y) <> 0). *)
let pivot t x y =
  t.pivots <- t.pivots + 1;
  Atomic.incr global_pivots;
  Budget.tick t.budget;
  let row_x = t.rows.(x) in
  let px = row_find row_x y in
  let a = row_x.coef.(px) in
  let inv_a = Q.inv a in
  (* y = (1/a) * x - sum_{j<>y} (a_j/a) * x_j; x replaces y in the sorted
     column order ([x] was basic, so it appears in no row, including this
     one). *)
  let n = row_x.len in
  let idx = Array.make n 0 in
  let coef = Array.make n Q.zero in
  let w = ref 0 in
  let placed = ref false in
  let put j q =
    idx.(!w) <- j;
    coef.(!w) <- q;
    incr w
  in
  for i = 0 to n - 1 do
    let j = row_x.idx.(i) in
    if j <> y then begin
      if (not !placed) && x < j then begin
        put x inv_a;
        placed := true
      end;
      put j (Q.neg (Q.mul row_x.coef.(i) inv_a))
    end
  done;
  if not !placed then put x inv_a;
  let row_y = { idx; coef; len = n } in
  t.rows.(x) <- no_row;
  t.rows.(y) <- row_y;
  register_cols t y row_y;
  (* Substitute y in the rows that mention it — exactly the live entries
     of occ.(y). *)
  occ_iter t y (fun z r p ->
      let c = r.coef.(p) in
      t.rows.(z) <- row_subst r p c row_y;
      register_cols t z row_y);
  (* No row mentions y anymore (y is basic; row_y does not contain y). *)
  t.occ.(y).n <- 0

let pivot_and_update t x y v =
  let row_x = t.rows.(x) in
  let a = row_x.coef.(row_find row_x y) in
  let theta = DR.scale (Q.inv a) (DR.sub v t.beta.(x)) in
  t.beta.(x) <- v;
  t.beta.(y) <- DR.add t.beta.(y) theta;
  occ_iter t y (fun z r p ->
      if z <> x then
        t.beta.(z) <- DR.add t.beta.(z) (DR.scale r.coef.(p) theta));
  pivot t x y

let below_lower t v =
  match t.lower.(v) with Some b -> DR.lt t.beta.(v) b.value | None -> false

let above_upper t v =
  match t.upper.(v) with Some b -> DR.lt b.value t.beta.(v) | None -> false

let lower_tag t v = match t.lower.(v) with Some b -> b.tag | None -> assert false
let upper_tag t v = match t.upper.(v) with Some b -> b.tag | None -> assert false

let can_increase t v =
  match t.upper.(v) with Some b -> DR.lt t.beta.(v) b.value | None -> true

let can_decrease t v =
  match t.lower.(v) with Some b -> DR.lt b.value t.beta.(v) | None -> true

exception Found of int

(* Exact feasibility restoration: Bland's rule on the rational tableau.
   This is the certifying loop — every verdict ultimately comes from
   here, whether or not the float filter ran first. *)
let check_exact t =
  let rec loop () =
    (* Bland's rule: smallest-index violated basic variable. *)
    let violated =
      try
        for v = 0 to t.nvars - 1 do
          if is_basic t v && (below_lower t v || above_upper t v) then
            raise (Found v)
        done;
        None
      with Found v -> Some v
    in
    match violated with
    | None -> Feasible
    | Some x ->
      let row = t.rows.(x) in
      if below_lower t x then begin
        (* Need to increase x: first admissible entering variable in
           ascending column order (Bland). *)
        let pivot_var = ref (-1) in
        let i = ref 0 in
        while !pivot_var < 0 && !i < row.len do
          let y = row.idx.(!i) and a = row.coef.(!i) in
          if
            (Q.sign a > 0 && can_increase t y)
            || (Q.sign a < 0 && can_decrease t y)
          then pivot_var := y;
          incr i
        done;
        if !pivot_var >= 0 then begin
          let target = (Option.get t.lower.(x)).value in
          pivot_and_update t x !pivot_var target;
          loop ()
        end
        else begin
          let conflict = ref [ lower_tag t x ] in
          for i = 0 to row.len - 1 do
            let y = row.idx.(i) in
            conflict :=
              (if Q.sign row.coef.(i) > 0 then upper_tag t y
               else lower_tag t y)
              :: !conflict
          done;
          Infeasible (List.sort_uniq compare !conflict)
        end
      end
      else begin
        (* Need to decrease x. *)
        let pivot_var = ref (-1) in
        let i = ref 0 in
        while !pivot_var < 0 && !i < row.len do
          let y = row.idx.(!i) and a = row.coef.(!i) in
          if
            (Q.sign a < 0 && can_increase t y)
            || (Q.sign a > 0 && can_decrease t y)
          then pivot_var := y;
          incr i
        done;
        if !pivot_var >= 0 then begin
          let target = (Option.get t.upper.(x)).value in
          pivot_and_update t x !pivot_var target;
          loop ()
        end
        else begin
          let conflict = ref [ upper_tag t x ] in
          for i = 0 to row.len - 1 do
            let y = row.idx.(i) in
            conflict :=
              (if Q.sign row.coef.(i) > 0 then lower_tag t y
               else upper_tag t y)
              :: !conflict
          done;
          Infeasible (List.sort_uniq compare !conflict)
        end
      end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Float-filtered pivoting (DESIGN.md Sec. 12).

   A double-precision shadow of the tableau is rebuilt at [check] entry
   and driven with a greedy (largest-violation / largest-coefficient)
   pivot rule that the exact loop cannot afford (Bland's rule is what
   guarantees its termination). If the shadow reaches feasibility, its
   pivot script is replayed on the exact tableau — each replayed pivot is
   first re-justified exactly (violated bound, nonzero coefficient), so a
   drifted shadow can only waste a bounded amount of work, never corrupt
   the state. The exact loop then runs regardless and is the sole source
   of verdicts and conflict cores: the filter is a heuristic accelerator,
   not an oracle, which is the whole soundness argument. *)

let float_cap_vars = 256
let float_margin = 1e-6

(* Strict bounds live at [r + k*delta]; any small positive stand-in for
   delta keeps the float comparisons ordered the same way as long as the
   margin dominates the rounding noise. *)
let float_of_dr v = Q.to_float (DR.r v) +. (1e-7 *. Q.to_float (DR.k v))

let global_float_guided = Atomic.make 0
let global_float_escalations = Atomic.make 0
let global_float_replayed = Atomic.make 0

let float_filter_stats () =
  ( Atomic.get global_float_guided,
    Atomic.get global_float_escalations,
    Atomic.get global_float_replayed )

(* Run the shadow simplex. Returns [Some script] — a list of
   [(basic, entering, bound_kind)] pivots after which the shadow is
   feasible with a clear margin — or [None] when the shadow is
   inconclusive (borderline violations, no admissible entering variable,
   iteration cap): the caller then escalates straight to exact pivoting. *)
let float_guide t =
  let n = t.nvars in
  if n = 0 || n > float_cap_vars then None
  else begin
    let fm = Array.make_matrix n n 0.0 in
    let basic = Array.make n false in
    let fbeta = Array.make n 0.0 in
    let flo = Array.make n neg_infinity in
    let fhi = Array.make n infinity in
    for v = 0 to n - 1 do
      let r = t.rows.(v) in
      if r != no_row then begin
        basic.(v) <- true;
        for i = 0 to r.len - 1 do
          fm.(v).(r.idx.(i)) <- Q.to_float r.coef.(i)
        done
      end;
      fbeta.(v) <- float_of_dr t.beta.(v);
      (match t.lower.(v) with
      | Some b -> flo.(v) <- float_of_dr b.value
      | None -> ());
      match t.upper.(v) with
      | Some b -> fhi.(v) <- float_of_dr b.value
      | None -> ()
    done;
    let cap = (4 * n) + 16 in
    let script = ref [] in
    let rec loop iter =
      if iter > cap then None
      else begin
        (* Largest-violation selection of the leaving variable. *)
        let x = ref (-1) in
        let worst = ref float_margin in
        let borderline = ref false in
        for v = 0 to n - 1 do
          if basic.(v) then begin
            let viol = Float.max (flo.(v) -. fbeta.(v)) (fbeta.(v) -. fhi.(v)) in
            if viol > !worst then begin
              x := v;
              worst := viol
            end
            else if viol > 0.0 then borderline := true
          end
        done;
        if !x < 0 then if !borderline then None else Some (List.rev !script)
        else begin
          let x = !x in
          let need_increase = flo.(x) -. fbeta.(x) > 0.0 in
          (* Largest-coefficient admissible entering variable. *)
          let y = ref (-1) in
          let ya = ref 0.0 in
          for j = 0 to n - 1 do
            if (not basic.(j)) && j <> x then begin
              let a = fm.(x).(j) in
              if Float.abs a > 1e-9 && Float.abs a > Float.abs !ya then begin
                let room =
                  if (a > 0.0) = need_increase then fhi.(j) -. fbeta.(j)
                  else fbeta.(j) -. flo.(j)
                in
                if room > float_margin then begin
                  y := j;
                  ya := a
                end
              end
            end
          done;
          if !y < 0 then None (* float thinks infeasible: verdict needs exact cores *)
          else begin
            let y = !y and a = !ya in
            let kind = if need_increase then Lower else Upper in
            let target = if need_increase then flo.(x) else fhi.(x) in
            (* Value update. *)
            let theta = (target -. fbeta.(x)) /. a in
            fbeta.(x) <- target;
            fbeta.(y) <- fbeta.(y) +. theta;
            for z = 0 to n - 1 do
              if z <> x && basic.(z) && fm.(z).(y) <> 0.0 then
                fbeta.(z) <- fbeta.(z) +. (fm.(z).(y) *. theta)
            done;
            (* Structural pivot: x leaves the basis, y enters. *)
            let row_y = Array.make n 0.0 in
            for j = 0 to n - 1 do
              if j <> y then row_y.(j) <- -.fm.(x).(j) /. a
            done;
            row_y.(x) <- 1.0 /. a;
            Array.fill fm.(x) 0 n 0.0;
            basic.(x) <- false;
            for z = 0 to n - 1 do
              if z <> x && basic.(z) then begin
                let c = fm.(z).(y) in
                if c <> 0.0 then begin
                  fm.(z).(y) <- 0.0;
                  for j = 0 to n - 1 do
                    fm.(z).(j) <- fm.(z).(j) +. (c *. row_y.(j))
                  done
                end
              end
            done;
            Array.blit row_y 0 fm.(y) 0 n;
            basic.(y) <- true;
            script := (x, y, kind) :: !script;
            loop (iter + 1)
          end
        end
      end
    in
    loop 0
  end

(* Replay one float-suggested pivot on the exact tableau, but only when
   the exact state still justifies it: x basic and violated in the
   predicted direction, entering coefficient present (CSR rows never
   store zeros). Replayed pivots go through [pivot] and therefore tick
   the budget and the process-wide pivot counters like any other pivot. *)
let replay_pivot t (x, y, kind) =
  let r = t.rows.(x) in
  if r != no_row && row_find r y >= 0 then begin
    let justified, target =
      match kind with
      | Lower -> (
        match t.lower.(x) with
        | Some b when DR.lt t.beta.(x) b.value -> (true, b.value)
        | _ -> (false, DR.zero))
      | Upper -> (
        match t.upper.(x) with
        | Some b when DR.lt b.value t.beta.(x) -> (true, b.value)
        | _ -> (false, DR.zero))
    in
    if justified then begin
      Atomic.incr global_float_replayed;
      pivot_and_update t x y target
    end
  end

(* An allocation-free pre-scan: warm-started checks are very often
   already feasible, and building the float shadow for them would cost
   more than the exact loop's single confirming pass. *)
let any_violation t =
  try
    for v = 0 to t.nvars - 1 do
      if is_basic t v && (below_lower t v || above_upper t v) then
        raise (Found v)
    done;
    false
  with Found _ -> true

let check t =
  (if t.float_filter && any_violation t then
     match float_guide t with
     | None -> Atomic.incr global_float_escalations
     | Some script ->
       Atomic.incr global_float_guided;
       List.iter (replay_pivot t) script);
  check_exact t

let push t = t.trail <- [] :: t.trail

let pop t =
  match t.trail with
  | [] -> invalid_arg "Simplex.pop: no open frame"
  | frame :: rest ->
    t.trail <- rest;
    List.iter
      (fun (v, kind, old) ->
        match kind with
        | Lower -> t.lower.(v) <- old
        | Upper -> t.upper.(v) <- old)
      frame

(* A checkpoint names a trail depth; rollback pops frames until the trail
   is back at that depth. Like [pop], this undoes bound tightenings but
   keeps pivots (they preserve the solution set), which is exactly what
   warm-starting wants: after a budget trip mid-search the session pops
   back to a consistent constraint set without discarding the basis. *)
type checkpoint = int

let checkpoint t = List.length t.trail

let rollback t target =
  let depth = ref (List.length t.trail) in
  if target > !depth then
    invalid_arg "Simplex.rollback: checkpoint is newer than the trail";
  while !depth > target do
    pop t;
    decr depth
  done

let concrete_model t ~vars =
  (* Collect the orderings the concrete delta must preserve. *)
  let pairs = ref [] in
  for v = 0 to t.nvars - 1 do
    (match t.lower.(v) with
    | Some b -> pairs := (b.value, t.beta.(v)) :: !pairs
    | None -> ());
    match t.upper.(v) with
    | Some b -> pairs := (t.beta.(v), b.value) :: !pairs
    | None -> ()
  done;
  let d = DR.concretize_delta !pairs in
  List.map (fun v -> (v, DR.substitute d t.beta.(v))) vars

(* ------------------------------------------------------------------ *)
(* One-shot interface with optional integer branch-and-bound.          *)

type verdict =
  | Sat of (Linexpr.var * Q.t) list
  | Unsat of int list
  | Unknown of Err.t

let branch_tag = -1

exception Bb_budget

let solve_system ?(int_vars = []) ?(budget = Budget.unlimited) constraints =
  (* Constant constraints never reach the tableau. *)
  let const_conflict =
    List.find_opt
      (fun (c : Linexpr.cons) ->
        Linexpr.is_constant c.expr && not (Linexpr.holds (fun _ -> Q.zero) c))
      constraints
  in
  match const_conflict with
  | Some c -> Unsat [ c.tag ]
  | None ->
    let constraints =
      List.filter (fun (c : Linexpr.cons) -> not (Linexpr.is_constant c.expr)) constraints
    in
    let t = create ~budget () in
    let structural =
      List.sort_uniq compare (List.concat_map (fun (c : Linexpr.cons) -> Linexpr.vars c.expr) constraints)
    in
    (match structural with [] -> () | vs -> ensure_vars t (List.fold_left max 0 vs + 1));
    let rec assert_all = function
      | [] -> None
      | c :: rest -> (
        match assert_cons t c with
        | Feasible -> assert_all rest
        | Infeasible tags -> Some tags)
    in
    (match
       Faults.hit "lp.solve_system" budget;
       assert_all constraints
     with
    | exception Budget.Exhausted e -> Unknown e
    | Some tags -> Unsat (List.filter (fun g -> g <> branch_tag) tags)
    | None -> (
      (* Defensive node cap, kept alongside the caller's budget: a
         reachable condition, so it degrades to a typed Unknown instead
         of an escaped exception. *)
      let bb_nodes = ref 200_000 in
      (* Branch and bound on integer variables on top of rational check. *)
      let rec bb () =
        decr bb_nodes;
        if !bb_nodes <= 0 then raise Bb_budget;
        match check t with
        | Infeasible tags -> Unsat tags
        | Feasible -> (
          let model = concrete_model t ~vars:structural in
          let fractional =
            List.find_opt
              (fun v ->
                List.mem v int_vars
                &&
                match List.assoc_opt v model with
                | Some q -> not (Q.is_integer q)
                | None -> false)
              structural
          in
          match fractional with
          | None -> Sat model
          | Some v ->
            let q = List.assoc v model in
            let lo = Q.of_bigint (Q.floor q) and hi = Q.of_bigint (Q.ceil q) in
            push t;
            let left =
              match assert_bound t ~tag:branch_tag v Upper (DR.of_rational lo) with
              | Feasible -> bb ()
              | Infeasible tags -> Unsat tags
            in
            pop t;
            (match left with
            | Sat _ | Unknown _ -> left
            | Unsat tags_l -> (
              push t;
              let right =
                match
                  assert_bound t ~tag:branch_tag v Lower (DR.of_rational hi)
                with
                | Feasible -> bb ()
                | Infeasible tags -> Unsat tags
              in
              pop t;
              match right with
              | Sat _ | Unknown _ -> right
              | Unsat tags_r ->
                Unsat
                  (List.sort_uniq compare
                     (List.filter (fun g -> g <> branch_tag) (tags_l @ tags_r))))))
      in
      match bb () with
      | Sat model -> Sat model
      | Unsat tags -> Unsat (List.filter (fun g -> g <> branch_tag) tags)
      | Unknown _ as u -> u
      | exception Bb_budget ->
        Unknown (Err.Out_of_budget Err.Steps)
      | exception Budget.Exhausted e -> Unknown e))

(* ------------------------------------------------------------------ *)
(* Primal simplex optimization over the bounded-variable tableau.      *)

type opt_result =
  | O_infeasible of int list
  | O_unbounded
  | O_optimal of DR.t * (Linexpr.var * Q.t) list

let lower_value t v = Option.map (fun b -> b.value) t.lower.(v)
let upper_value t v = Option.map (fun b -> b.value) t.upper.(v)

(* Maximum admissible increase of beta(v) (None = unbounded). *)
let headroom_up t v =
  match upper_value t v with
  | None -> None
  | Some u -> Some (DR.sub u t.beta.(v))

let headroom_down t v =
  match lower_value t v with
  | None -> None
  | Some l -> Some (DR.sub t.beta.(v) l)

let maximize t objective =
  match check t with
  | Infeasible tags -> O_infeasible tags
  | Feasible ->
    let z = define t (Linexpr.drop_const objective) in
    (* [define] keeps beta consistent, but z may be nonbasic (objective is
       a single variable): when it has a row the entering scan walks it in
       ascending column order (Bland); a nonbasic z behaves as the trivial
       row {z -> 1}. *)
    let rec loop iterations =
      if iterations > 100_000 then O_unbounded (* defensive; Bland prevents this *)
      else begin
        (* Entering variable: Bland's rule. *)
        let entering =
          if t.rows.(z) == no_row then
            match headroom_up t z with
            | Some h when DR.compare h DR.zero <= 0 -> None
            | _ -> Some (z, `Up, Q.one)
          else begin
            let row = t.rows.(z) in
            let res = ref None in
            let i = ref 0 in
            while Option.is_none !res && !i < row.len do
              let y = row.idx.(!i) and a = row.coef.(!i) in
              (if y <> z then
                 if
                   Q.sign a > 0
                   && (match headroom_up t y with
                      | Some h -> DR.compare h DR.zero > 0
                      | None -> true)
                 then res := Some (y, `Up, a)
                 else if
                   Q.sign a < 0
                   && (match headroom_down t y with
                      | Some h -> DR.compare h DR.zero > 0
                      | None -> true)
                 then res := Some (y, `Down, a));
              incr i
            done;
            !res
          end
        in
        match entering with
        | None ->
          let pairs = ref [] in
          for v = 0 to t.nvars - 1 do
            (match t.lower.(v) with
            | Some b -> pairs := (b.value, t.beta.(v)) :: !pairs
            | None -> ());
            match t.upper.(v) with
            | Some b -> pairs := (t.beta.(v), b.value) :: !pairs
            | None -> ()
          done;
          let d = DR.concretize_delta !pairs in
          let model =
            List.map
              (fun v -> (v, DR.substitute d t.beta.(v)))
              (List.init t.nvars Fun.id)
          in
          O_optimal (DR.add t.beta.(z) (DR.of_rational (Linexpr.const objective)), model)
        | Some (y, dir, obj_coeff) -> (
          (* Ratio test: how far can y move before its own bound or a basic
             variable's bound blocks. The scan stays dense and ascending in
             the basic index — identical tie-breaking to the previous
             representation (ties replace only on strictly smaller limit). *)
          let own_limit =
            match dir with `Up -> headroom_up t y | `Down -> headroom_down t y
          in
          let blocking = ref None in
          let limit = ref own_limit in
          let consider cand_limit var target =
            match cand_limit with
            | None -> ()
            | Some cl -> (
              match !limit with
              | Some cur when DR.compare cur cl <= 0 -> ()
              | _ ->
                limit := Some cl;
                blocking := Some (var, target))
          in
          (* The objective variable itself may be bounded (a hash-consed
             slack shared with a constraint): its upper bound blocks the
             increase like any basic bound. *)
          (if t.rows.(z) != no_row then
             match upper_value t z with
             | None -> ()
             | Some u ->
               let a_abs = Q.abs obj_coeff in
               let room = DR.sub u t.beta.(z) in
               consider (Some (DR.scale (Q.inv a_abs) room)) z u);
          for b = 0 to t.nvars - 1 do
            if b <> z && b <> y then begin
              let rowb = t.rows.(b) in
              if rowb != no_row then begin
                let p = row_find rowb y in
                if p >= 0 then begin
                  let coeff = rowb.coef.(p) in
                  (* beta(b) changes by coeff * delta_y; delta_y is
                     positive for `Up, negative for `Down. *)
                  let effective =
                    match dir with
                    | `Up -> Q.sign coeff
                    | `Down -> -Q.sign coeff
                  in
                  if effective > 0 then begin
                    (* b increases: blocked by upper(b). *)
                    match upper_value t b with
                    | None -> ()
                    | Some u ->
                      let room = DR.sub u t.beta.(b) in
                      let cl = DR.scale (Q.inv (Q.abs coeff)) room in
                      consider (Some cl) b u
                  end
                  else if effective < 0 then begin
                    match lower_value t b with
                    | None -> ()
                    | Some l ->
                      let room = DR.sub t.beta.(b) l in
                      let cl = DR.scale (Q.inv (Q.abs coeff)) room in
                      consider (Some cl) b l
                  end
                end
              end
            end
          done;
          match (!limit, !blocking) with
          | None, _ -> O_unbounded
          | Some step, None ->
            (* y's own bound blocks: move y there. *)
            let target =
              match dir with
              | `Up -> DR.add t.beta.(y) step
              | `Down -> DR.sub t.beta.(y) step
            in
            update t y target;
            loop (iterations + 1)
          | Some _, Some (b, target) ->
            (* Basic b hits its bound first: pivot b out, y in. *)
            pivot_and_update t b y target;
            loop (iterations + 1))
      end
    in
    loop 0

let minimize_obj t objective =
  match maximize t (Linexpr.neg objective) with
  | O_optimal (v, model) -> O_optimal (DR.neg v, model)
  | (O_infeasible _ | O_unbounded) as r -> r
