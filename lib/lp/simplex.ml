module Q = Absolver_numeric.Rational
module DR = Absolver_numeric.Delta_rational
module IM = Map.Make (Int)
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults
module Err = Absolver_resource.Absolver_error

type bound = { value : DR.t; tag : int }

type t = {
  mutable nvars : int;
  (* [rows.(v) = Some m] iff [v] is basic, with [v = sum m(j) * x_j] over
     nonbasic variables. *)
  mutable rows : Q.t IM.t option array;
  mutable lower : bound option array;
  mutable upper : bound option array;
  mutable beta : DR.t array;
  defs : (string, int) Hashtbl.t; (* canonical expression -> slack var *)
  mutable trail : (int * bound_kind * bound option) list list;
  mutable pivots : int;
  mutable budget : Budget.t;
}

and bound_kind = Lower | Upper

type result = Feasible | Infeasible of int list

let create ?(budget = Budget.unlimited) () =
  {
    nvars = 0;
    rows = Array.make 16 None;
    lower = Array.make 16 None;
    upper = Array.make 16 None;
    beta = Array.make 16 DR.zero;
    defs = Hashtbl.create 16;
    trail = [];
    pivots = 0;
    budget;
  }

let set_budget t budget = t.budget <- budget

let grow t n =
  let cap = Array.length t.rows in
  if n > cap then begin
    let c = max n (2 * cap) in
    let ext a fill =
      let b = Array.make c fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.rows <- ext t.rows None;
    t.lower <- ext t.lower None;
    t.upper <- ext t.upper None;
    t.beta <- ext t.beta DR.zero
  end

let new_var t =
  let v = t.nvars in
  grow t (v + 1);
  t.nvars <- v + 1;
  v

let ensure_vars t n = while t.nvars < n do ignore (new_var t) done
let is_basic t v = t.rows.(v) <> None
let value t v = t.beta.(v)
let num_pivots t = t.pivots

(* Replace basic variables in a term map by their defining rows. *)
let expand t terms =
  IM.fold
    (fun v q acc ->
      match t.rows.(v) with
      | None ->
        IM.update v
          (fun cur ->
            let s = Q.add (Option.value ~default:Q.zero cur) q in
            if Q.is_zero s then None else Some s)
          acc
      | Some row ->
        IM.fold
          (fun j c acc ->
            IM.update j
              (fun cur ->
                let s = Q.add (Option.value ~default:Q.zero cur) (Q.mul q c) in
                if Q.is_zero s then None else Some s)
              acc)
          row acc)
    terms IM.empty

let eval_row t row =
  IM.fold (fun v q acc -> DR.add acc (DR.scale q t.beta.(v))) row DR.zero

let canonical_key terms =
  let buf = Buffer.create 64 in
  IM.iter
    (fun v q ->
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Q.to_string q);
      Buffer.add_char buf ';')
    terms;
  Buffer.contents buf

let define t expr =
  let terms =
    List.fold_left (fun acc (v, q) -> IM.add v q acc) IM.empty (Linexpr.coeffs expr)
  in
  match IM.bindings terms with
  | [ (v, q) ] when Q.equal q Q.one ->
    ensure_vars t (v + 1);
    v
  | bindings ->
    List.iter (fun (v, _) -> ensure_vars t (v + 1)) bindings;
    let key = canonical_key terms in
    (match Hashtbl.find_opt t.defs key with
    | Some s -> s
    | None ->
      let s = new_var t in
      let row = expand t terms in
      t.rows.(s) <- Some row;
      t.beta.(s) <- eval_row t row;
      Hashtbl.add t.defs key s;
      s)

(* Adjust a nonbasic variable and propagate through dependent rows. *)
let update t x v =
  let theta = DR.sub v t.beta.(x) in
  t.beta.(x) <- v;
  for b = 0 to t.nvars - 1 do
    match t.rows.(b) with
    | None -> ()
    | Some row -> (
      match IM.find_opt x row with
      | None -> ()
      | Some c -> t.beta.(b) <- DR.add t.beta.(b) (DR.scale c theta))
  done

let record t var kind old =
  match t.trail with
  | [] -> () (* no open frame: permanent assertion *)
  | frame :: rest -> t.trail <- ((var, kind, old) :: frame) :: rest

let assert_bound t ~tag x kind value =
  match kind with
  | Lower -> (
    let current = t.lower.(x) in
    let subsumed =
      match current with Some b -> DR.leq value b.value | None -> false
    in
    if subsumed then Feasible
    else
      match t.upper.(x) with
      | Some ub when DR.lt ub.value value -> Infeasible [ tag; ub.tag ]
      | _ ->
        record t x Lower current;
        t.lower.(x) <- Some { value; tag };
        if (not (is_basic t x)) && DR.lt t.beta.(x) value then update t x value;
        Feasible)
  | Upper -> (
    let current = t.upper.(x) in
    let subsumed =
      match current with Some b -> DR.leq b.value value | None -> false
    in
    if subsumed then Feasible
    else
      match t.lower.(x) with
      | Some lb when DR.lt value lb.value -> Infeasible [ tag; lb.tag ]
      | _ ->
        record t x Upper current;
        t.upper.(x) <- Some { value; tag };
        if (not (is_basic t x)) && DR.lt value t.beta.(x) then update t x value;
        Feasible)

let assert_cons t (c : Linexpr.cons) =
  let x = define t (Linexpr.drop_const c.expr) in
  let rhs = Q.neg (Linexpr.const c.expr) in
  (* expr op 0  <=>  (expr - const) op -const *)
  match c.op with
  | Linexpr.Le -> assert_bound t ~tag:c.tag x Upper (DR.of_rational rhs)
  | Linexpr.Lt ->
    assert_bound t ~tag:c.tag x Upper (DR.make rhs Q.minus_one)
  | Linexpr.Ge -> assert_bound t ~tag:c.tag x Lower (DR.of_rational rhs)
  | Linexpr.Gt -> assert_bound t ~tag:c.tag x Lower (DR.make rhs Q.one)
  | Linexpr.Eq -> (
    match assert_bound t ~tag:c.tag x Lower (DR.of_rational rhs) with
    | Infeasible _ as r -> r
    | Feasible -> assert_bound t ~tag:c.tag x Upper (DR.of_rational rhs))

(* Process-wide pivot total across every instance (including the
   throwaway solvers inside [solve_system]), so callers that only see
   verdicts can still attribute pivot work to their own phases by
   differencing this counter. *)
let global_pivots = Atomic.make 0
let total_pivots () = Atomic.get global_pivots

(* Pivot basic x with nonbasic y (coefficient a = row(x)(y) <> 0). *)
let pivot t x y =
  t.pivots <- t.pivots + 1;
  Atomic.incr global_pivots;
  Budget.tick t.budget;
  let row_x = match t.rows.(x) with Some r -> r | None -> assert false in
  let a = IM.find y row_x in
  let inv_a = Q.inv a in
  (* y = (1/a) * x - sum_{j<>y} (a_j/a) * x_j *)
  let row_y =
    IM.fold
      (fun j c acc ->
        if j = y then acc else IM.add j (Q.neg (Q.mul c inv_a)) acc)
      row_x
      (IM.singleton x inv_a)
  in
  t.rows.(x) <- None;
  t.rows.(y) <- Some row_y;
  (* Substitute y in all other rows. *)
  for z = 0 to t.nvars - 1 do
    if z <> y then
      match t.rows.(z) with
      | None -> ()
      | Some row -> (
        match IM.find_opt y row with
        | None -> ()
        | Some c ->
          let without_y = IM.remove y row in
          let merged =
            IM.fold
              (fun j q acc ->
                IM.update j
                  (fun cur ->
                    let s = Q.add (Option.value ~default:Q.zero cur) (Q.mul c q) in
                    if Q.is_zero s then None else Some s)
                  acc)
              row_y without_y
          in
          t.rows.(z) <- Some merged)
  done

let pivot_and_update t x y v =
  let row_x = match t.rows.(x) with Some r -> r | None -> assert false in
  let a = IM.find y row_x in
  let theta = DR.scale (Q.inv a) (DR.sub v t.beta.(x)) in
  t.beta.(x) <- v;
  t.beta.(y) <- DR.add t.beta.(y) theta;
  for z = 0 to t.nvars - 1 do
    if z <> x then
      match t.rows.(z) with
      | None -> ()
      | Some row -> (
        match IM.find_opt y row with
        | None -> ()
        | Some c -> t.beta.(z) <- DR.add t.beta.(z) (DR.scale c theta))
  done;
  pivot t x y

let below_lower t v =
  match t.lower.(v) with Some b -> DR.lt t.beta.(v) b.value | None -> false

let above_upper t v =
  match t.upper.(v) with Some b -> DR.lt b.value t.beta.(v) | None -> false

let lower_tag t v = match t.lower.(v) with Some b -> b.tag | None -> assert false
let upper_tag t v = match t.upper.(v) with Some b -> b.tag | None -> assert false

let can_increase t v =
  match t.upper.(v) with Some b -> DR.lt t.beta.(v) b.value | None -> true

let can_decrease t v =
  match t.lower.(v) with Some b -> DR.lt b.value t.beta.(v) | None -> true

exception Found of int

let check t =
  let rec loop () =
    (* Bland's rule: smallest-index violated basic variable. *)
    let violated =
      try
        for v = 0 to t.nvars - 1 do
          if is_basic t v && (below_lower t v || above_upper t v) then
            raise (Found v)
        done;
        None
      with Found v -> Some v
    in
    match violated with
    | None -> Feasible
    | Some x ->
      let row = match t.rows.(x) with Some r -> r | None -> assert false in
      if below_lower t x then begin
        (* Need to increase x. *)
        let pivot_var =
          IM.fold
            (fun y a acc ->
              match acc with
              | Some _ -> acc
              | None ->
                if
                  (Q.sign a > 0 && can_increase t y)
                  || (Q.sign a < 0 && can_decrease t y)
                then Some y
                else None)
            row None
        in
        match pivot_var with
        | Some y ->
          let target = (Option.get t.lower.(x)).value in
          pivot_and_update t x y target;
          loop ()
        | None ->
          let conflict =
            IM.fold
              (fun y a acc ->
                if Q.sign a > 0 then upper_tag t y :: acc
                else lower_tag t y :: acc)
              row
              [ lower_tag t x ]
          in
          Infeasible (List.sort_uniq compare conflict)
      end
      else begin
        (* Need to decrease x. *)
        let pivot_var =
          IM.fold
            (fun y a acc ->
              match acc with
              | Some _ -> acc
              | None ->
                if
                  (Q.sign a < 0 && can_increase t y)
                  || (Q.sign a > 0 && can_decrease t y)
                then Some y
                else None)
            row None
        in
        match pivot_var with
        | Some y ->
          let target = (Option.get t.upper.(x)).value in
          pivot_and_update t x y target;
          loop ()
        | None ->
          let conflict =
            IM.fold
              (fun y a acc ->
                if Q.sign a > 0 then lower_tag t y :: acc
                else upper_tag t y :: acc)
              row
              [ upper_tag t x ]
          in
          Infeasible (List.sort_uniq compare conflict)
      end
  in
  loop ()

let push t = t.trail <- [] :: t.trail

let pop t =
  match t.trail with
  | [] -> invalid_arg "Simplex.pop: no open frame"
  | frame :: rest ->
    t.trail <- rest;
    List.iter
      (fun (v, kind, old) ->
        match kind with
        | Lower -> t.lower.(v) <- old
        | Upper -> t.upper.(v) <- old)
      frame

let concrete_model t ~vars =
  (* Collect the orderings the concrete delta must preserve. *)
  let pairs = ref [] in
  for v = 0 to t.nvars - 1 do
    (match t.lower.(v) with
    | Some b -> pairs := (b.value, t.beta.(v)) :: !pairs
    | None -> ());
    match t.upper.(v) with
    | Some b -> pairs := (t.beta.(v), b.value) :: !pairs
    | None -> ()
  done;
  let d = DR.concretize_delta !pairs in
  List.map (fun v -> (v, DR.substitute d t.beta.(v))) vars

(* ------------------------------------------------------------------ *)
(* One-shot interface with optional integer branch-and-bound.          *)

type verdict =
  | Sat of (Linexpr.var * Q.t) list
  | Unsat of int list
  | Unknown of Err.t

let branch_tag = -1

exception Bb_budget

let solve_system ?(int_vars = []) ?(budget = Budget.unlimited) constraints =
  (* Constant constraints never reach the tableau. *)
  let const_conflict =
    List.find_opt
      (fun (c : Linexpr.cons) ->
        Linexpr.is_constant c.expr && not (Linexpr.holds (fun _ -> Q.zero) c))
      constraints
  in
  match const_conflict with
  | Some c -> Unsat [ c.tag ]
  | None ->
    let constraints =
      List.filter (fun (c : Linexpr.cons) -> not (Linexpr.is_constant c.expr)) constraints
    in
    let t = create ~budget () in
    let structural =
      List.sort_uniq compare (List.concat_map (fun (c : Linexpr.cons) -> Linexpr.vars c.expr) constraints)
    in
    (match structural with [] -> () | vs -> ensure_vars t (List.fold_left max 0 vs + 1));
    let rec assert_all = function
      | [] -> None
      | c :: rest -> (
        match assert_cons t c with
        | Feasible -> assert_all rest
        | Infeasible tags -> Some tags)
    in
    (match
       Faults.hit "lp.solve_system" budget;
       assert_all constraints
     with
    | exception Budget.Exhausted e -> Unknown e
    | Some tags -> Unsat (List.filter (fun g -> g <> branch_tag) tags)
    | None -> (
      (* Defensive node cap, kept alongside the caller's budget: a
         reachable condition, so it degrades to a typed Unknown instead
         of an escaped exception. *)
      let bb_nodes = ref 200_000 in
      (* Branch and bound on integer variables on top of rational check. *)
      let rec bb () =
        decr bb_nodes;
        if !bb_nodes <= 0 then raise Bb_budget;
        match check t with
        | Infeasible tags -> Unsat tags
        | Feasible -> (
          let model = concrete_model t ~vars:structural in
          let fractional =
            List.find_opt
              (fun v ->
                List.mem v int_vars
                &&
                match List.assoc_opt v model with
                | Some q -> not (Q.is_integer q)
                | None -> false)
              structural
          in
          match fractional with
          | None -> Sat model
          | Some v ->
            let q = List.assoc v model in
            let lo = Q.of_bigint (Q.floor q) and hi = Q.of_bigint (Q.ceil q) in
            push t;
            let left =
              match assert_bound t ~tag:branch_tag v Upper (DR.of_rational lo) with
              | Feasible -> bb ()
              | Infeasible tags -> Unsat tags
            in
            pop t;
            (match left with
            | Sat _ | Unknown _ -> left
            | Unsat tags_l -> (
              push t;
              let right =
                match
                  assert_bound t ~tag:branch_tag v Lower (DR.of_rational hi)
                with
                | Feasible -> bb ()
                | Infeasible tags -> Unsat tags
              in
              pop t;
              match right with
              | Sat _ | Unknown _ -> right
              | Unsat tags_r ->
                Unsat
                  (List.sort_uniq compare
                     (List.filter (fun g -> g <> branch_tag) (tags_l @ tags_r))))))
      in
      match bb () with
      | Sat model -> Sat model
      | Unsat tags -> Unsat (List.filter (fun g -> g <> branch_tag) tags)
      | Unknown _ as u -> u
      | exception Bb_budget ->
        Unknown (Err.Out_of_budget Err.Steps)
      | exception Budget.Exhausted e -> Unknown e))

(* ------------------------------------------------------------------ *)
(* Primal simplex optimization over the bounded-variable tableau.      *)

type opt_result =
  | O_infeasible of int list
  | O_unbounded
  | O_optimal of DR.t * (Linexpr.var * Q.t) list

let lower_value t v = Option.map (fun b -> b.value) t.lower.(v)
let upper_value t v = Option.map (fun b -> b.value) t.upper.(v)

(* Maximum admissible increase of beta(v) (None = unbounded). *)
let headroom_up t v =
  match upper_value t v with
  | None -> None
  | Some u -> Some (DR.sub u t.beta.(v))

let headroom_down t v =
  match lower_value t v with
  | None -> None
  | Some l -> Some (DR.sub t.beta.(v) l)

let maximize t objective =
  match check t with
  | Infeasible tags -> O_infeasible tags
  | Feasible ->
    let z = define t (Linexpr.drop_const objective) in
    (* [define] keeps beta consistent, but z may be nonbasic (objective is
       a single variable): pivot it basic if it has a row; otherwise treat
       the single variable directly through the same loop by noting that a
       nonbasic z has the trivial row {z -> 1}. *)
    let row_of_z () =
      match t.rows.(z) with Some r -> r | None -> IM.singleton z Q.one
    in
    let rec loop iterations =
      if iterations > 100_000 then O_unbounded (* defensive; Bland prevents this *)
      else begin
        let row = row_of_z () in
        (* Entering variable: Bland's rule. *)
        let entering =
          IM.fold
            (fun y a acc ->
              match acc with
              | Some _ -> acc
              | None ->
                if y = z then None
                else if Q.sign a > 0 && headroom_up t y <> Some DR.zero
                        && (match headroom_up t y with Some h -> DR.compare h DR.zero > 0 | None -> true)
                then Some (y, `Up, a)
                else if Q.sign a < 0
                        && (match headroom_down t y with Some h -> DR.compare h DR.zero > 0 | None -> true)
                then Some (y, `Down, a)
                else None)
            row None
        in
        (* Nonbasic z: its own coefficient is 1, direction up. *)
        let entering =
          if t.rows.(z) = None then
            match headroom_up t z with
            | Some h when DR.compare h DR.zero <= 0 -> None
            | _ -> Some (z, `Up, Q.one)
          else entering
        in
        match entering with
        | None ->
          let pairs = ref [] in
          for v = 0 to t.nvars - 1 do
            (match t.lower.(v) with
            | Some b -> pairs := (b.value, t.beta.(v)) :: !pairs
            | None -> ());
            match t.upper.(v) with
            | Some b -> pairs := (t.beta.(v), b.value) :: !pairs
            | None -> ()
          done;
          let d = DR.concretize_delta !pairs in
          let model =
            List.filter_map
              (fun v ->
                if t.rows.(v) = None || true then
                  Some (v, DR.substitute d t.beta.(v))
                else None)
              (List.init t.nvars Fun.id)
          in
          O_optimal (DR.add t.beta.(z) (DR.of_rational (Linexpr.const objective)), model)
        | Some (y, dir, obj_coeff) -> (
          (* Ratio test: how far can y move before its own bound or a basic
             variable's bound blocks. *)
          let own_limit =
            match dir with `Up -> headroom_up t y | `Down -> headroom_down t y
          in
          let blocking = ref None in
          let limit = ref own_limit in
          let consider cand_limit var target =
            match cand_limit with
            | None -> ()
            | Some cl -> (
              match !limit with
              | Some cur when DR.compare cur cl <= 0 -> ()
              | _ ->
                limit := Some cl;
                blocking := Some (var, target))
          in
          (* The objective variable itself may be bounded (a hash-consed
             slack shared with a constraint): its upper bound blocks the
             increase like any basic bound. *)
          (if t.rows.(z) <> None then
             match upper_value t z with
             | None -> ()
             | Some u ->
               let a_abs = Q.abs obj_coeff in
               let room = DR.sub u t.beta.(z) in
               consider (Some (DR.scale (Q.inv a_abs) room)) z u);
          for b = 0 to t.nvars - 1 do
            if b <> z && b <> y then
              match t.rows.(b) with
              | None -> ()
              | Some rowb -> (
                match IM.find_opt y rowb with
                | None -> ()
                | Some coeff ->
                  (* beta(b) changes by coeff * delta_y; delta_y is
                     positive for `Up, negative for `Down. *)
                  let effective = match dir with `Up -> Q.sign coeff | `Down -> -Q.sign coeff in
                  if effective > 0 then begin
                    (* b increases: blocked by upper(b). *)
                    match upper_value t b with
                    | None -> ()
                    | Some u ->
                      let room = DR.sub u t.beta.(b) in
                      let cl = DR.scale (Q.inv (Q.abs coeff)) room in
                      consider (Some cl) b u
                  end
                  else if effective < 0 then begin
                    match lower_value t b with
                    | None -> ()
                    | Some l ->
                      let room = DR.sub t.beta.(b) l in
                      let cl = DR.scale (Q.inv (Q.abs coeff)) room in
                      consider (Some cl) b l
                  end)
          done;
          match (!limit, !blocking) with
          | None, _ -> O_unbounded
          | Some step, None ->
            (* y's own bound blocks: move y there. *)
            let target =
              match dir with
              | `Up -> DR.add t.beta.(y) step
              | `Down -> DR.sub t.beta.(y) step
            in
            if y = z && t.rows.(z) = None then begin
              update t z target;
              loop (iterations + 1)
            end
            else begin
              update t y target;
              loop (iterations + 1)
            end
          | Some _, Some (b, target) ->
            (* Basic b hits its bound first: pivot b out, y in. *)
            pivot_and_update t b y target;
            loop (iterations + 1))
      end
    in
    loop 0

let minimize_obj t objective =
  match maximize t (Linexpr.neg objective) with
  | O_optimal (v, model) -> O_optimal (DR.neg v, model)
  | (O_infeasible _ | O_unbounded) as r -> r
