(* [Unknown] (budget exhausted mid-minimization) conservatively counts as
   "not proven infeasible": the candidate constraint is kept, so the core
   stays a superset of a minimal one — sound, just less minimal. *)
let is_infeasible cs =
  match Simplex.solve_system cs with
  | Simplex.Sat _ | Simplex.Unknown _ -> false
  | Simplex.Unsat _ -> true

(* Deletion filtering: drop each constraint in turn; if the rest is still
   infeasible the constraint is redundant for the conflict. *)
let minimize cs =
  if not (is_infeasible cs) then
    invalid_arg "Conflict.minimize: system is feasible";
  let rec filter kept = function
    | [] -> List.rev kept
    | c :: rest ->
      if is_infeasible (List.rev_append kept rest) then filter kept rest
      else filter (c :: kept) rest
  in
  filter [] cs

let minimal_core all tags =
  let selected =
    List.filter (fun (c : Linexpr.cons) -> List.mem c.tag tags) all
  in
  if not (is_infeasible selected) then tags
  else
    minimize selected
    |> List.map (fun (c : Linexpr.cons) -> c.tag)
    |> List.sort_uniq compare
