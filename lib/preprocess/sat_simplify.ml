module Types = Absolver_sat.Types
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults

type stats = {
  mutable fixed_literals : int;
  mutable pure_literals : int;
  mutable removed_clauses : int;
  mutable strengthened_literals : int;
  mutable probes : int;
  mutable failed_literals : int;
}

let mk_stats () =
  {
    fixed_literals = 0;
    pure_literals = 0;
    removed_clauses = 0;
    strengthened_literals = 0;
    probes = 0;
    failed_literals = 0;
  }

type simplified = {
  clauses : Types.lit list list;
  fixed : (Types.var * bool) list;
  pure : (Types.var * bool) list;
  stats : stats;
}

type result = Unsat | Simplified of simplified

exception Root_conflict

(* [sig_] is a 64-bit Bloom-style signature of the literal set: bit
   [l mod 63] per literal.  C ⊆ D implies sig(C) ∧ ¬sig(D) = 0, so one
   AND refutes most non-subsuming candidate pairs before the O(|D|)
   stamped-membership walk (the subsumption hot spot on large CNFs). *)
type clause = { mutable lits : Types.lit list; mutable sig_ : int; mutable dead : bool }

let sig_bit (l : Types.lit) = 1 lsl (l mod 63)
let compute_sig lits = List.fold_left (fun acc l -> acc lor sig_bit l) 0 lits

type state = {
  nvars : int;
  cls : clause array;
  occ : int list array; (* literal -> clause indices; stale-tolerant *)
  assign : Types.value array;
  mutable fixed : (Types.var * bool) list; (* newest first *)
  mutable pure : (Types.var * bool) list; (* newest first *)
  queue : Types.lit Queue.t;
  st : stats;
  protect : Types.var -> bool;
}

let lit_value s l =
  match s.assign.(Types.var_of l) with
  | Types.V_undef -> Types.V_undef
  | v -> if Types.is_pos l then v else Types.value_negate v

let kill s c = if not c.dead then begin
    c.dead <- true;
    s.st.removed_clauses <- s.st.removed_clauses + 1
  end

(* Permanently assign an implied literal: satisfied clauses die, the
   opposite literal is removed from every clause it occurs in, and any
   clause thereby reduced to a unit feeds the propagation queue. *)
let assign_implied s l =
  match lit_value s l with
  | Types.V_true -> ()
  | Types.V_false -> raise Root_conflict
  | Types.V_undef ->
    let v = Types.var_of l in
    s.assign.(v) <- (if Types.is_pos l then Types.V_true else Types.V_false);
    s.fixed <- (v, Types.is_pos l) :: s.fixed;
    s.st.fixed_literals <- s.st.fixed_literals + 1;
    List.iter
      (fun ci ->
        let c = s.cls.(ci) in
        if (not c.dead) && List.mem l c.lits then kill s c)
      s.occ.(l);
    let nl = Types.negate l in
    List.iter
      (fun ci ->
        let c = s.cls.(ci) in
        if (not c.dead) && List.mem nl c.lits then begin
          c.lits <- List.filter (fun x -> x <> nl) c.lits;
          c.sig_ <- compute_sig c.lits;
          match c.lits with
          | [] -> raise Root_conflict
          | [ u ] -> Queue.push u s.queue
          | _ -> ()
        end)
      s.occ.(nl)

let propagate s =
  while not (Queue.is_empty s.queue) do
    assign_implied s (Queue.pop s.queue)
  done

let init ~nvars ~probe_limit:_ ~protect clause_list =
  let nvars =
    List.fold_left
      (fun n c -> List.fold_left (fun n l -> max n (Types.var_of l + 1)) n c)
      nvars clause_list
  in
  let cls =
    Array.of_list
      (List.map
         (fun lits ->
           let lits = List.sort_uniq compare lits in
           { lits; sig_ = compute_sig lits; dead = false })
         clause_list)
  in
  let occ = Array.make (2 * max 1 nvars) [] in
  let s =
    {
      nvars;
      cls;
      occ;
      assign = Array.make (max 1 nvars) Types.V_undef;
      fixed = [];
      pure = [];
      queue = Queue.create ();
      st = mk_stats ();
      protect;
    }
  in
  Array.iteri
    (fun ci c ->
      let tautology =
        List.exists (fun l -> List.mem (Types.negate l) c.lits) c.lits
      in
      if tautology then kill s c
      else begin
        List.iter (fun l -> occ.(l) <- ci :: occ.(l)) c.lits;
        match c.lits with
        | [] -> raise Root_conflict
        | [ u ] -> Queue.push u s.queue
        | _ -> ()
      end)
    cls;
  s

(* Pure-literal elimination. A variable whose negation never occurs in an
   active clause can be set to its occurring polarity without losing
   satisfiability; variables with no occurrence at all are free. Only
   unprotected variables are eliminated (the caller protects variables
   whose models are counted or that carry arithmetic definitions). *)
let pure_pass s =
  let changed = ref true in
  while !changed do
    changed := false;
    let cnt = Array.make (2 * s.nvars) 0 in
    Array.iter
      (fun c ->
        if not c.dead then List.iter (fun l -> cnt.(l) <- cnt.(l) + 1) c.lits)
      s.cls;
    for v = 0 to s.nvars - 1 do
      if s.assign.(v) = Types.V_undef && not (s.protect v) then begin
        let cp = cnt.(Types.pos v) and cn = cnt.(Types.neg_of_var v) in
        if cp = 0 || cn = 0 then begin
          let value = cp > 0 in
          s.assign.(v) <- (if value then Types.V_true else Types.V_false);
          s.pure <- (v, value) :: s.pure;
          s.st.pure_literals <- s.st.pure_literals + 1;
          let l = if value then Types.pos v else Types.neg_of_var v in
          List.iter
            (fun ci ->
              let c = s.cls.(ci) in
              if (not c.dead) && List.mem l c.lits then kill s c)
            s.occ.(l);
          changed := true
        end
      end
    done
  done

(* Subsumption and self-subsuming resolution. For each active clause C
   (shortest first), kill every D ⊇ C reachable through C's rarest
   literal, and for each l ∈ C strengthen every D ⊇ (C \ {l}) ∪ {¬l} by
   dropping ¬l — the resolvent subsumes D. Both transformations preserve
   the model set exactly. *)
(* Beyond these sizes the quadratic pair exploration stops paying for
   itself even with signatures; the pass is skipped outright (the other
   passes still run, and skipping a model-preserving transformation is
   always sound). *)
let subsumption_max_clauses = 50_000
let subsumption_max_lits = 500_000

let subsumption_oversized s =
  let clauses = ref 0 and lits = ref 0 in
  Array.iter
    (fun c ->
      if not c.dead then begin
        incr clauses;
        lits := !lits + List.length c.lits
      end)
    s.cls;
  !clauses > subsumption_max_clauses || !lits > subsumption_max_lits

(* How many literals of [lits] carry the stamp [ci] — the inner test of
   both subsumption directions, written as a bare loop so the quadratic
   candidate exploration allocates nothing. *)
let rec count_stamped (stamp : int array) ci lits n =
  match lits with
  | [] -> n
  | l :: tl -> count_stamped stamp ci tl (if stamp.(l) = ci then n + 1 else n)

(* Forward subsumption: kill every candidate D ⊇ C among [cis]. A
   top-level recursion over the occurrence list (like the probe loops)
   so the quadratic candidate walk allocates nothing. *)
let rec subsume_forward s (stamp : int array) ci len_c sig_c cis =
  match cis with
  | [] -> ()
  | di :: tl ->
    (if di <> ci then begin
       let d = s.cls.(di) in
       if
         (not d.dead)
         && sig_c land lnot d.sig_ = 0
         && List.compare_length_with d.lits len_c >= 0
       then if count_stamped stamp ci d.lits 0 = len_c then kill s d
     end);
    subsume_forward s stamp ci len_c sig_c tl

(* Self-subsuming resolution on literal [l] of C: strengthen every
   candidate D ⊇ (C \ {l}) ∪ {¬l} among [cis] by dropping ¬l. *)
let rec strengthen_candidates s (stamp : int array) ci len_c sig_c l nl cis =
  match cis with
  | [] -> ()
  | di :: tl ->
    (if di <> ci then begin
       let d = s.cls.(di) in
       if
         (not d.dead)
         (* C \ {l} ⊆ D is necessary for the resolvent to subsume D;
            bit l is forgiven since l itself need not occur in D. *)
         && sig_c land lnot (d.sig_ lor sig_bit l) = 0
         && List.compare_length_with d.lits len_c >= 0
         && List.mem nl d.lits
       then
         if count_stamped stamp ci d.lits 0 = len_c - 1 then begin
           d.lits <- List.filter (fun x -> x <> nl) d.lits;
           d.sig_ <- compute_sig d.lits;
           s.st.strengthened_literals <- s.st.strengthened_literals + 1;
           match d.lits with
           | [] -> raise Root_conflict
           | [ u ] -> Queue.push u s.queue
           | _ -> ()
         end
     end);
    strengthen_candidates s stamp ci len_c sig_c l nl tl

let rec strengthen_lits s stamp ci len_c sig_c lits =
  match lits with
  | [] -> ()
  | l :: tl ->
    let nl = Types.negate l in
    strengthen_candidates s stamp ci len_c sig_c l nl s.occ.(nl);
    strengthen_lits s stamp ci len_c sig_c tl

let subsumption_pass_run ~budget s =
  let stamp = Array.make (2 * s.nvars) (-1) in
  let order =
    List.sort
      (fun a b -> compare (List.length s.cls.(a).lits) (List.length s.cls.(b).lits))
      (List.init (Array.length s.cls) Fun.id)
  in
  List.iter
    (fun ci ->
      Budget.tick budget;
      let c = s.cls.(ci) in
      if (not c.dead) && c.lits <> [] then begin
        List.iter (fun l -> stamp.(l) <- ci) c.lits;
        let len_c = List.length c.lits in
        (* Forward subsumption through the literal with fewest occurrences. *)
        let best =
          let bl = ref (List.hd c.lits) in
          let bn = ref (List.length s.occ.(!bl)) in
          List.iter
            (fun l ->
              let n = List.length s.occ.(l) in
              if n < !bn then begin
                bl := l;
                bn := n
              end)
            (List.tl c.lits);
          !bl
        in
        subsume_forward s stamp ci len_c c.sig_ s.occ.(best);
        (* Self-subsuming resolution on every literal of C. *)
        strengthen_lits s stamp ci len_c c.sig_ c.lits
      end)
    order;
  propagate s

let subsumption_pass ~budget s =
  if subsumption_oversized s then () else subsumption_pass_run ~budget s

exception Probe_conflict

(* Failed-literal probing: assume a literal, propagate without modifying
   the clause database; a conflict proves the negation at root level. The
   shared [visits] budget bounds total clause scans across all probes. *)
(* The budget is polled only {e between} probes: a probe restores its
   trail before returning, and interrupting it mid-propagation would leave
   probe assumptions looking like root-level assignments. *)
(* Scan a clause under the current (probe) assignment, with the outcome
   encoded as an immediate int so the per-visit hot path allocates
   nothing: [-2] the clause is satisfied, [-1] every literal is false,
   [-3] two or more literals are unassigned, otherwise the sole
   unassigned literal. [acc] threads the unassigned state ([-1] none
   seen yet). *)
let rec probe_scan_clause s lits acc =
  match lits with
  | [] -> acc
  | x :: tl -> (
    match lit_value s x with
    | Types.V_true -> -2
    | Types.V_false -> probe_scan_clause s tl acc
    | Types.V_undef -> probe_scan_clause s tl (if acc = -1 then x else -3))

let probe_push s (q : int array) qtail (trail : int array) ntrail l =
  match lit_value s l with
  | Types.V_true -> ()
  | Types.V_false -> raise Probe_conflict
  | Types.V_undef ->
    s.assign.(Types.var_of l) <-
      (if Types.is_pos l then Types.V_true else Types.V_false);
    trail.(!ntrail) <- Types.var_of l;
    incr ntrail;
    q.(!qtail) <- l;
    incr qtail

let rec probe_scan_occ s visits q qtail trail ntrail cis =
  match cis with
  | [] -> ()
  | ci :: tl ->
    let c = s.cls.(ci) in
    if not c.dead then begin
      decr visits;
      match probe_scan_clause s c.lits (-1) with
      | -1 -> raise Probe_conflict
      | -2 | -3 -> ()
      | u -> probe_push s q qtail trail ntrail u
    end;
    probe_scan_occ s visits q qtail trail ntrail tl

let probe_pass ~probe_limit ~visits ~budget s =
  (* Scratch state shared by every probe: a flat FIFO ring for the
     propagation queue and a flat trail (each variable enters either at
     most once per probe, so [nvars] slots bound both). The probe loops
     above are top-level recursions over immediates — one probe is up to
     [visits] clause scans, and none of them allocates. *)
  let q = Array.make (max 1 s.nvars) 0 in
  let qhead = ref 0 and qtail = ref 0 in
  let trail = Array.make (max 1 s.nvars) 0 in
  let ntrail = ref 0 in
  let probe l =
    qhead := 0;
    qtail := 0;
    ntrail := 0;
    let ok =
      try
        probe_push s q qtail trail ntrail l;
        while !qhead < !qtail do
          let l = q.(!qhead) in
          incr qhead;
          probe_scan_occ s visits q qtail trail ntrail s.occ.(Types.negate l)
        done;
        true
      with Probe_conflict -> false
    in
    for i = 0 to !ntrail - 1 do
      s.assign.(trail.(i)) <- Types.V_undef
    done;
    ok
  in
  let v = ref 0 in
  while !v < s.nvars && s.st.probes < probe_limit && !visits > 0 do
    Budget.tick budget;
    if s.assign.(!v) = Types.V_undef then begin
      s.st.probes <- s.st.probes + 1;
      if not (probe (Types.pos !v)) then begin
        s.st.failed_literals <- s.st.failed_literals + 1;
        Queue.push (Types.neg_of_var !v) s.queue;
        propagate s
      end
      else if not (probe (Types.neg_of_var !v)) then begin
        s.st.failed_literals <- s.st.failed_literals + 1;
        Queue.push (Types.pos !v) s.queue;
        propagate s
      end
    end;
    incr v
  done

let simplify ?(probe_limit = 2000) ?(protect = fun _ -> false)
    ?(budget = Budget.unlimited) ~nvars clause_list =
  try
    let s = init ~nvars ~probe_limit ~protect clause_list in
    propagate s;
    (* Budget exhaustion stops inprocessing early but soundly: every
       transformation already applied preserves the model set exactly, and
       clauses reduced to units but not yet propagated simply stay in the
       database as unit clauses.  The typed reason is sticky in the budget. *)
    (try
       Faults.hit "presolve.sat_simplify" budget;
       let visits = ref 300_000 in
       let rounds = ref 0 and continue_ = ref true in
       while !continue_ && !rounds < 3 do
         incr rounds;
         let progress st =
           st.fixed_literals + st.pure_literals + st.removed_clauses
           + st.strengthened_literals + st.failed_literals
         in
         let before = progress s.st in
         subsumption_pass ~budget s;
         probe_pass ~probe_limit ~visits ~budget s;
         pure_pass s;
         continue_ := progress s.st > before
       done
     with Budget.Exhausted _ -> ());
    let units =
      List.rev_map
        (fun (v, b) -> [ (if b then Types.pos v else Types.neg_of_var v) ])
        s.fixed
    in
    let active =
      Array.fold_right (fun c acc -> if c.dead then acc else c.lits :: acc) s.cls []
    in
    Simplified
      {
        clauses = units @ active;
        fixed = List.rev s.fixed;
        pure = List.rev s.pure;
        stats = s.st;
      }
  with Root_conflict -> Unsat

let restore ~pure model =
  List.iter
    (fun (v, b) -> if v < Array.length model then model.(v) <- b)
    pure
