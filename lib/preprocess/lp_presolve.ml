module Q = Absolver_numeric.Rational
module Linexpr = Absolver_lp.Linexpr
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults

type bounds = { lo : Q.t option array; hi : Q.t option array }

let create n = { lo = Array.make n None; hi = Array.make n None }
let copy b = { lo = Array.copy b.lo; hi = Array.copy b.hi }

(* Minimum/maximum of [expr] over the bounds box; [None] = unbounded. *)
let activity ~minimize b (e : Linexpr.t) =
  List.fold_left
    (fun acc (v, a) ->
      match acc with
      | None -> None
      | Some s ->
        let want_lo = if minimize then Q.gt a Q.zero else Q.lt a Q.zero in
        let bound = if want_lo then b.lo.(v) else b.hi.(v) in
        (match bound with
        | None -> None
        | Some q -> Some (Q.add s (Q.mul a q))))
    (Some (Linexpr.const e))
    (Linexpr.coeffs e)

let min_activity b e = activity ~minimize:true b e
let max_activity b e = activity ~minimize:false b e

type row_status = Redundant | Infeasible | Open

let status b (c : Linexpr.cons) =
  let mn = min_activity b c.Linexpr.expr and mx = max_activity b c.Linexpr.expr in
  match c.Linexpr.op with
  | Linexpr.Le -> (
    match (mn, mx) with
    | Some mn, _ when Q.gt mn Q.zero -> Infeasible
    | _, Some mx when Q.leq mx Q.zero -> Redundant
    | _ -> Open)
  | Linexpr.Lt -> (
    match (mn, mx) with
    | Some mn, _ when Q.geq mn Q.zero -> Infeasible
    | _, Some mx when Q.lt mx Q.zero -> Redundant
    | _ -> Open)
  | Linexpr.Ge -> (
    match (mn, mx) with
    | _, Some mx when Q.lt mx Q.zero -> Infeasible
    | Some mn, _ when Q.geq mn Q.zero -> Redundant
    | _ -> Open)
  | Linexpr.Gt -> (
    match (mn, mx) with
    | _, Some mx when Q.leq mx Q.zero -> Infeasible
    | Some mn, _ when Q.gt mn Q.zero -> Redundant
    | _ -> Open)
  | Linexpr.Eq -> (
    match (mn, mx) with
    | Some mn, _ when Q.gt mn Q.zero -> Infeasible
    | _, Some mx when Q.lt mx Q.zero -> Infeasible
    | Some mn, Some mx when Q.is_zero mn && Q.is_zero mx -> Redundant
    | _ -> Open)

(* Every row as a list of normalized [expr <= 0] (or [< 0]) forms. *)
let le_rows (c : Linexpr.cons) =
  match c.Linexpr.op with
  | Linexpr.Le -> [ (c.Linexpr.expr, false) ]
  | Linexpr.Lt -> [ (c.Linexpr.expr, true) ]
  | Linexpr.Ge -> [ (Linexpr.neg c.Linexpr.expr, false) ]
  | Linexpr.Gt -> [ (Linexpr.neg c.Linexpr.expr, true) ]
  | Linexpr.Eq -> [ (c.Linexpr.expr, false); (Linexpr.neg c.Linexpr.expr, false) ]

exception Crossed

(* Bound propagation on one normalized row sum a_i x_i + c {<=,<} 0: the
   residual minimum activity of the other terms implies a bound on each
   variable in turn. Raises [Crossed] when a derived bound crosses the
   opposite one (the row is infeasible within the bounds). *)
let tighten_row b ~is_int (e, strict) =
  let tightened = ref 0 in
  let coeffs = Linexpr.coeffs e in
  let c0 = Linexpr.const e in
  List.iter
    (fun (j, aj) ->
      let residual =
        List.fold_left
          (fun acc (v, a) ->
            if v = j then acc
            else
              match acc with
              | None -> None
              | Some s -> (
                let bound = if Q.gt a Q.zero then b.lo.(v) else b.hi.(v) in
                match bound with
                | None -> None
                | Some q -> Some (Q.add s (Q.mul a q))))
          (Some c0) coeffs
      in
      match residual with
      | None -> ()
      | Some r ->
        let bnd = Q.div (Q.neg r) aj in
        if Q.gt aj Q.zero then begin
          (* x_j <= bnd (strict: <) *)
          let bnd =
            if is_int j then
              if strict && Q.is_integer bnd then Q.sub bnd Q.one
              else Q.of_bigint (Q.floor bnd)
            else bnd
          in
          let improves =
            match b.hi.(j) with None -> true | Some old -> Q.lt bnd old
          in
          if improves then begin
            b.hi.(j) <- Some bnd;
            incr tightened;
            match b.lo.(j) with
            | Some lo when Q.gt lo bnd -> raise Crossed
            | _ -> ()
          end
        end
        else begin
          (* x_j >= bnd (strict: >) *)
          let bnd =
            if is_int j then
              if strict && Q.is_integer bnd then Q.add bnd Q.one
              else Q.of_bigint (Q.ceil bnd)
            else bnd
          in
          let improves =
            match b.lo.(j) with None -> true | Some old -> Q.gt bnd old
          in
          if improves then begin
            b.lo.(j) <- Some bnd;
            incr tightened;
            match b.hi.(j) with
            | Some hi when Q.lt hi bnd -> raise Crossed
            | _ -> ()
          end
        end)
    coeffs;
  !tightened

type outcome =
  | Infeasible_rows of int list
  | Presolved of { tightened : int; kept : Linexpr.cons list; dropped : int }

exception Found_infeasible of int

let presolve ?(max_rounds = 4) ?(is_int = fun _ -> false)
    ?(budget = Budget.unlimited) b rows =
  let tightened = ref 0 and dropped = ref 0 in
  let active = ref rows in
  try
    Faults.hit "presolve.lp" budget;
    let continue_ = ref true and round = ref 0 in
    while !continue_ && !round < max_rounds do
      incr round;
      let t0 = !tightened in
      active :=
        List.filter
          (fun (c : Linexpr.cons) ->
            Budget.tick budget;
            match status b c with
            | Infeasible -> raise (Found_infeasible c.Linexpr.tag)
            | Redundant ->
              incr dropped;
              false
            | Open ->
              List.iter
                (fun row ->
                  try tightened := !tightened + tighten_row b ~is_int row
                  with Crossed -> raise (Found_infeasible c.Linexpr.tag))
                (le_rows c);
              true)
          !active;
      continue_ := !tightened > t0
    done;
    Presolved { tightened = !tightened; kept = !active; dropped = !dropped }
  with
  | Found_infeasible tag -> Infeasible_rows [ tag ]
  | Budget.Exhausted _ ->
    (* Early stop: bounds derived so far are sound relaxations; the rows
       of the interrupted pass stay in [kept] (conservative — a row
       filtered as redundant in that pass is merely kept). *)
    Presolved { tightened = !tightened; kept = !active; dropped = !dropped }
