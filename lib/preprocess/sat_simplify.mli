(** SAT-level inprocessing on the CNF skeleton, run before CDCL search.

    Root-level unit propagation, pure-literal elimination, clause
    subsumption with self-subsuming resolution, and failed-literal
    probing, in the SatELite/MiniSat-preprocessor tradition. All
    transformations except pure-literal elimination are model-preserving
    (they keep the set of satisfying assignments identical); pure-literal
    elimination may discard models of the eliminated variables and is
    therefore gated by a [protect] predicate — the caller protects every
    variable whose exact value matters (arithmetic definition variables,
    projection/counting variables) and receives a reconstruction map for
    the rest. *)

module Types = Absolver_sat.Types

type stats = {
  mutable fixed_literals : int;
      (** Root-implied assignments (input units, propagation, probing). *)
  mutable pure_literals : int;  (** Variables eliminated as pure or free. *)
  mutable removed_clauses : int;  (** Satisfied, subsumed or pure-satisfied. *)
  mutable strengthened_literals : int;
      (** Literals dropped by self-subsuming resolution. *)
  mutable probes : int;  (** Variables probed for failed literals. *)
  mutable failed_literals : int;  (** Probes that yielded an implied unit. *)
}

type simplified = {
  clauses : Types.lit list list;
      (** The simplified CNF over the original variable numbering: one unit
          clause per fixed variable, then the surviving strengthened
          clauses. Equivalent to the input for every variable except the
          [pure] ones. *)
  fixed : (Types.var * bool) list;
      (** Root-implied assignments — true in {e every} model of the input. *)
  pure : (Types.var * bool) list;
      (** Eliminated pure/free variables with a satisfying polarity; patch
          these into any model of [clauses] to obtain a model of the
          input (see {!restore}). *)
  stats : stats;
}

type result = Unsat | Simplified of simplified

val simplify :
  ?probe_limit:int ->
  ?protect:(Types.var -> bool) ->
  ?budget:Absolver_resource.Budget.t ->
  nvars:int ->
  Types.lit list list ->
  result
(** [simplify ~nvars clauses] simplifies to a propagation/subsumption/
    probing fixpoint (bounded internally). [probe_limit] caps the number
    of failed-literal probes (default 2000); [protect] exempts variables
    from pure-literal elimination (default: none). Budget exhaustion stops
    inprocessing early and returns the (equivalent) partially simplified
    CNF; no exception escapes this boundary. *)

val restore : pure:(Types.var * bool) list -> bool array -> unit
(** Patch the eliminated variables' satisfying polarities into a model of
    the simplified CNF, making it a model of the original CNF. *)
