(** Interval constraint propagation for presolve: one bounded HC4-style
    contraction sweep over a set of relations, tightening the global
    variable box before branch-and-prune is ever invoked (the up-front
    tightening HySIA-style interval tools perform). *)

module I = Absolver_numeric.Interval
module Box = Absolver_nlp.Box
module Expr = Absolver_nlp.Expr

val contract :
  ?max_rounds:int ->
  ?budget:Absolver_resource.Budget.t ->
  box:Box.t ->
  Expr.rel list ->
  [ `Empty | `Box of Box.t * int ]
(** Contract a copy of [box] with the HC4 fixpoint over [rels]. [`Empty]
    means the relations exclude every point of the box; [`Box (b, n)]
    returns the contracted box and the number of variables whose interval
    strictly narrowed. Budget exhaustion stops the sweep early and returns
    the partially contracted box (sound: contraction preserves solutions);
    no exception escapes. *)
