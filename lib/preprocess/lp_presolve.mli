(** LP presolve over exact rational bounds, in the classic
    Brearley/Mitra/Williams style: singleton rows become variable bounds,
    activity-based bound propagation tightens bounds across rows, and rows
    whose activity range proves them always-true (redundant) or
    never-true (infeasible) are detected and reported.

    A row is a {!Absolver_lp.Linexpr.cons} [expr op 0]; bounds are kept as
    optional rationals ([None] = unbounded). All derived bounds are sound
    relaxations: strict inequalities on real variables are recorded as
    their non-strict closure, integer variables round to the nearest
    implied integer. *)

module Q = Absolver_numeric.Rational
module Linexpr = Absolver_lp.Linexpr

type bounds = { lo : Q.t option array; hi : Q.t option array }

val create : int -> bounds
val copy : bounds -> bounds

type row_status =
  | Redundant  (** holds for every point within the bounds *)
  | Infeasible  (** holds for no point within the bounds *)
  | Open

val status : bounds -> Linexpr.cons -> row_status
(** Classify one row against the bounds via its minimum/maximum activity. *)

type outcome =
  | Infeasible_rows of int list
      (** Tags of rows proven unsatisfiable together with the bounds. *)
  | Presolved of { tightened : int; kept : Linexpr.cons list; dropped : int }
      (** Bounds were tightened in place [tightened] times; [kept] are the
          surviving (non-redundant) rows, [dropped] counts redundant ones. *)

val presolve :
  ?max_rounds:int ->
  ?is_int:(int -> bool) ->
  ?budget:Absolver_resource.Budget.t ->
  bounds ->
  Linexpr.cons list ->
  outcome
(** Propagate to a bounded fixpoint (default 4 rounds), mutating [bounds]
    in place. [is_int] marks integer variables whose derived bounds are
    rounded inward. Budget exhaustion stops propagation early — bounds
    derived so far are sound relaxations — and never escapes. *)
