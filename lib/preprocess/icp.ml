module I = Absolver_numeric.Interval
module Box = Absolver_nlp.Box
module Expr = Absolver_nlp.Expr
module Hc4 = Absolver_nlp.Hc4

let contract ?max_rounds ~box rels =
  let b = Box.copy box in
  let ok =
    match max_rounds with
    | None -> Hc4.contract b rels
    | Some r -> Hc4.contract ~max_rounds:r b rels
  in
  if not ok then `Empty
  else begin
    let narrowed = ref 0 in
    Array.iteri
      (fun i iv -> if not (I.equal iv (Box.get b i)) then incr narrowed)
      box;
    `Box (b, !narrowed)
  end
