module I = Absolver_numeric.Interval
module Box = Absolver_nlp.Box
module Expr = Absolver_nlp.Expr
module Hc4 = Absolver_nlp.Hc4
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults

let contract ?max_rounds ?(budget = Budget.unlimited) ~box rels =
  let b = Box.copy box in
  let finish alive =
    if not alive then `Empty
    else begin
      let narrowed = ref 0 in
      Array.iteri
        (fun i iv -> if not (I.equal iv (Box.get b i)) then incr narrowed)
        box;
      `Box (b, !narrowed)
    end
  in
  match
    Faults.hit "presolve.icp" budget;
    match max_rounds with
    | None -> Hc4.contract ~budget b rels
    | Some r -> Hc4.contract ~max_rounds:r ~budget b rels
  with
  | alive -> finish alive
  | exception Budget.Exhausted _ ->
    (* Contraction so far only narrowed [b] while preserving solutions;
       return the partial result. *)
    finish (not (Box.is_empty b))
