(* Sign-magnitude big integers.  The magnitude is a little-endian array of
   limbs in base 2^30 with no trailing zero limb; zero is represented by
   [sign = 0] and an empty magnitude.  Base 2^30 keeps every intermediate
   product of the schoolbook routines below 2^62, safely inside OCaml's
   63-bit native integers. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then zero
  else if hi = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_small n =
  (* Any native int except [min_int] (whose magnitude cannot be negated). *)
  if n = 0 then zero
  else
    let s = if n < 0 then -1 else 1 in
    let a = abs n in
    if a < base then { sign = s; mag = [| a |] }
    else if a lsr (2 * base_bits) = 0 then
      { sign = s; mag = [| a land mask; a lsr base_bits |] }
    else
      {
        sign = s;
        mag = [| a land mask; (a lsr base_bits) land mask; a lsr (2 * base_bits) |];
      }

let one = of_small 1
let two = of_small 2
let minus_one = of_small (-1)
let ten = of_small 10
let sign t = t.sign
let is_zero t = t.sign = 0
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

(* Native fast path: a magnitude of at most two limbs (60 bits) round-trips
   exactly through a native int, and two such values add — and, with a bit
   check, multiply — without leaving OCaml's 63-bit range.  The arithmetic
   entry points below try this shape first and fall back to the limb
   routines; rationals normalize constantly, so in practice almost all of
   the solvers' bignum traffic stays on machine integers. *)
let small_opt t =
  match Array.length t.mag with
  | 0 -> Some 0
  | 1 -> Some (t.sign * t.mag.(0))
  | 2 -> Some (t.sign * ((t.mag.(1) lsl base_bits) lor t.mag.(0)))
  | _ -> None

(* Magnitude comparison: -1, 0, 1. *)
let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then compare_mag x.mag y.mag
  else compare_mag y.mag x.mag

let compare x y =
  match (small_opt x, small_opt y) with
  | Some a, Some b -> Int.compare a b
  | _ -> compare x y

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let hash t =
  Array.fold_left (fun acc limb -> (acc * 65599) + limb) (t.sign + 7) t.mag

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let t = da + db + !carry in
    r.(i) <- t land mask;
    carry := t lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  r

(* Requires [compare_mag a b >= 0]. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let t = a.(i) - db - !borrow in
    if t < 0 then begin
      r.(i) <- t + base;
      borrow := 1
    end
    else begin
      r.(i) <- t;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let t = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    r
  end

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else
    match compare_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> normalize x.sign (sub_mag x.mag y.mag)
    | _ -> normalize y.sign (sub_mag y.mag x.mag)

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else normalize (x.sign * y.sign) (mul_mag x.mag y.mag)

(* Divide a magnitude by a single limb; returns (quotient, remainder). *)
let divmod_mag_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

let shift_mag_left a s =
  (* 0 <= s < base_bits; result may gain one limb. *)
  if s = 0 then Array.copy a
  else
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) lsl s) lor !carry in
      r.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    r

let shift_mag_right a s =
  if s = 0 then Array.copy a
  else
    let la = Array.length a in
    let r = Array.make la 0 in
    let carry = ref 0 in
    for i = la - 1 downto 0 do
      let t = (!carry lsl base_bits) lor a.(i) in
      r.(i) <- t lsr s;
      carry := t land ((1 lsl s) - 1)
    done;
    r

let limb_bits x =
  let rec loop n v = if v = 0 then n else loop (n + 1) (v lsr 1) in
  loop 0 x

(* Knuth algorithm D on magnitudes.  Requires [compare_mag u v >= 0] and
   [Array.length v >= 2].  Returns (quotient, remainder) magnitudes. *)
let divmod_mag_knuth u v =
  let n = Array.length v in
  let s = base_bits - limb_bits v.(n - 1) in
  let vn = shift_mag_left v s in
  let vn = if vn.(Array.length vn - 1) = 0 then Array.sub vn 0 n else vn in
  let un = shift_mag_left u s in
  let un =
    (* Ensure un has exactly (m + n + 1) limbs with a top slot available. *)
    let lu = Array.length u in
    if Array.length un = lu then Array.append un [| 0 |] else un
  in
  let m = Array.length un - 1 - n in
  let q = Array.make (m + 1) 0 in
  let v1 = vn.(n - 1) in
  let v2 = vn.(n - 2) in
  for j = m downto 0 do
    let top = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (top / v1) in
    let rhat = ref (top mod v1) in
    (* Once rhat >= base the test qhat * v2 > rhat * base + ... is
       necessarily false (qhat * v2 < base^2), so the adjustment stops. *)
    let continue_adjust = ref true in
    while
      !continue_adjust
      && (!qhat >= base
         || !qhat * v2 > (!rhat lsl base_bits) lor un.(j + n - 2))
    do
      decr qhat;
      rhat := !rhat + v1;
      if !rhat >= base then continue_adjust := false
    done;
    (* Multiply-subtract qhat * vn from un[j .. j+n]. *)
    let borrow = ref 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr base_bits;
      let t = un.(i + j) - (p land mask) - !borrow in
      if t < 0 then begin
        un.(i + j) <- t + base;
        borrow := 1
      end
      else begin
        un.(i + j) <- t;
        borrow := 0
      end
    done;
    let t = un.(j + n) - !carry - !borrow in
    if t < 0 then begin
      (* qhat was one too large: add back. *)
      un.(j + n) <- t + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let t2 = un.(i + j) + vn.(i) + !carry2 in
        un.(i + j) <- t2 land mask;
        carry2 := t2 lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !carry2) land mask
    end
    else un.(j + n) <- t;
    q.(j) <- !qhat
  done;
  let r = shift_mag_right (Array.sub un 0 n) s in
  (q, r)

let divmod x y =
  if y.sign = 0 then raise Division_by_zero
  else if x.sign = 0 then (zero, zero)
  else if compare_mag x.mag y.mag < 0 then (zero, x)
  else
    let qmag, rmag =
      if Array.length y.mag = 1 then
        let q, r = divmod_mag_small x.mag y.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      else divmod_mag_knuth x.mag y.mag
    in
    let q = normalize (x.sign * y.sign) qmag in
    let r = normalize x.sign rmag in
    (q, r)

let rec gcd x y =
  let x = abs x and y = abs y in
  if is_zero y then x else gcd y (snd (divmod x y))

(* Machine-arithmetic shadows of the hot entry points (see [small_opt]).
   Two 60-bit operands sum below 2^61; a product is native-safe when the
   factors' combined bit length is at most 62; native [/] and [mod]
   truncate toward zero, exactly the sign-magnitude semantics above. *)
let add x y =
  match (small_opt x, small_opt y) with
  | Some a, Some b -> of_small (a + b)
  | _ -> add x y

let sub x y = add x (neg y)

let mul x y =
  match (small_opt x, small_opt y) with
  | Some a, Some b
    when limb_bits (Stdlib.abs a) + limb_bits (Stdlib.abs b) <= 62 ->
    of_small (a * b)
  | _ -> mul x y

let divmod x y =
  match (small_opt x, small_opt y) with
  | Some a, Some b ->
    if b = 0 then raise Division_by_zero
    else (of_small (a / b), of_small (a mod b))
  | _ -> divmod x y

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let gcd x y =
  match (small_opt x, small_opt y) with
  | Some a, Some b ->
    let rec go a b = if b = 0 then a else go b (a mod b) in
    of_small (go (Stdlib.abs a) (Stdlib.abs b))
  | _ -> gcd x y

(* [of_small] requires a negatable argument; [min_int] cannot be negated,
   so decompose it as h * base + low first. *)
let of_int n =
  if n = min_int then
    let h = n / base and low = n mod base in
    add (mul (of_small h) (of_small base)) (of_small low)
  else of_small n

let mul_int x n = mul x (of_int n)

let to_float t =
  let f =
    Array.fold_right
      (fun limb acc -> (acc *. 1073741824.0) +. float_of_int limb)
      t.mag 0.0
  in
  if t.sign < 0 then -.f else f

let num_bits t =
  let n = Array.length t.mag in
  if n = 0 then 0 else ((n - 1) * base_bits) + limb_bits t.mag.(n - 1)

let to_int_opt t =
  if num_bits t <= 62 then begin
    let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) t.mag 0 in
    if v < 0 then None else Some (if t.sign < 0 then -v else v)
  end
  else None

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Bigint.to_int: value does not fit in a native int"

let shift_left t n =
  if n < 0 then invalid_arg "Bigint.shift_left: negative shift"
  else if t.sign = 0 || n = 0 then t
  else
    let limbs = n / base_bits and bits = n mod base_bits in
    let shifted = shift_mag_left t.mag bits in
    let mag = Array.append (Array.make limbs 0) shifted in
    normalize t.sign mag

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent"
  else
    let rec go acc b e =
      if e = 0 then acc
      else
        let acc = if e land 1 = 1 then mul acc b else acc in
        go acc (mul b b) (e lsr 1)
    in
    go one b e

let succ t = add t one
let pred t = sub t one
let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0

(* Decimal I/O works in chunks of 9 digits (10^9 < 2^30). *)
let chunk = 1_000_000_000
let chunk_digits = 9

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let cur = ref 0 and cur_digits = ref 0 in
  let flush () =
    if !cur_digits > 0 then begin
      let scale = pow ten !cur_digits in
      acc := add (mul !acc scale) (of_small !cur);
      cur := 0;
      cur_digits := 0
    end
  in
  let saw_digit = ref false in
  String.iteri
    (fun i c ->
      if i >= start then
        match c with
        | '0' .. '9' ->
          saw_digit := true;
          cur := (!cur * 10) + (Char.code c - Char.code '0');
          incr cur_digits;
          if !cur_digits = chunk_digits then flush ()
        | '_' -> ()
        | _ -> invalid_arg "Bigint.of_string: invalid character")
    s;
  if not !saw_digit then invalid_arg "Bigint.of_string: no digits";
  flush ();
  if neg_sign then neg !acc else !acc

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec loop mag acc =
      if Array.length mag = 0 then acc
      else
        let q, r = divmod_mag_small mag chunk in
        let q = (normalize 1 q).mag in
        loop q (r :: acc)
    in
    let chunks = loop t.mag [] in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
