module B = Bigint

type t = { num : B.t; den : B.t }

let normalize num den =
  if B.is_zero den then raise Division_by_zero
  else if B.is_zero num then { num = B.zero; den = B.one }
  else if B.is_one den then { num; den }
  else
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.is_one g then { num; den }
    else { num = B.div num g; den = B.div den g }

let make num den = normalize num den
let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints n d = normalize (B.of_int n) (B.of_int d)
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den
let sign t = B.sign t.num
let is_zero t = B.is_zero t.num
let is_integer t = B.is_one t.den
let neg t = { t with num = B.neg t.num }
let abs t = { t with num = B.abs t.num }

let add a b =
  if B.equal a.den b.den then normalize (B.add a.num b.num) a.den
  else normalize (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = normalize (B.mul a.num b.num) (B.mul a.den b.den)
let div a b = normalize (B.mul a.num b.den) (B.mul a.den b.num)

let inv t =
  if is_zero t then raise Division_by_zero else normalize t.den t.num

let mul_int t n = normalize (B.mul_int t.num n) t.den

let compare a b =
  (* Denominators are positive, so cross-multiplication preserves order. *)
  B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let equal a b = B.equal a.num b.num && B.equal a.den b.den
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let gt a b = compare a b > 0
let geq a b = compare a b >= 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

let floor t =
  let q, r = B.divmod t.num t.den in
  if B.sign r < 0 then B.pred q else q

let ceil t =
  let q, r = B.divmod t.num t.den in
  if B.sign r > 0 then B.succ q else q

let pow t e =
  if e >= 0 then { num = B.pow t.num e; den = B.pow t.den e }
  else if is_zero t then raise Division_by_zero
  else
    let p = { num = B.pow t.num (-e); den = B.pow t.den (-e) } in
    normalize p.den p.num

let to_float t = B.to_float t.num /. B.to_float t.den

let of_float f =
  if not (Float.is_finite f) then
    invalid_arg "Rational.of_float: not a finite float";
  if f = 0.0 then zero
  else begin
    (* f = m * 2^(e - 53) with m a 53-bit integer: exact by construction. *)
    let m, e = Float.frexp f in
    let m53 = Int64.of_float (Float.ldexp m 53) in
    let mant = B.of_string (Int64.to_string m53) in
    let shift = e - 53 in
    if shift >= 0 then of_bigint (B.shift_left mant shift)
    else make mant (B.shift_left B.one (-shift))
  end

let of_decimal_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Rational.of_decimal_string: empty string";
  match String.index_opt s '/' with
  | Some i ->
    let n = B.of_string (String.sub s 0 i) in
    let d = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None ->
    let mantissa, exponent =
      match String.index_opt s 'e' with
      | Some i ->
        ( String.sub s 0 i,
          int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
      | None -> (
        match String.index_opt s 'E' with
        | Some i ->
          ( String.sub s 0 i,
            int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
        | None -> (s, 0))
    in
    let negated, mantissa =
      if mantissa <> "" && mantissa.[0] = '-' then
        (true, String.sub mantissa 1 (String.length mantissa - 1))
      else if mantissa <> "" && mantissa.[0] = '+' then
        (false, String.sub mantissa 1 (String.length mantissa - 1))
      else (false, mantissa)
    in
    let int_part, frac_part =
      match String.index_opt mantissa '.' with
      | Some i ->
        ( String.sub mantissa 0 i,
          String.sub mantissa (i + 1) (String.length mantissa - i - 1) )
      | None -> (mantissa, "")
    in
    if int_part = "" && frac_part = "" then
      invalid_arg "Rational.of_decimal_string: no digits";
    let digits = int_part ^ frac_part in
    let n = B.of_string (if digits = "" then "0" else digits) in
    let scale = String.length frac_part - exponent in
    let v =
      if scale <= 0 then of_bigint (B.mul n (B.pow B.ten (-scale)))
      else make n (B.pow B.ten scale)
    in
    if negated then neg v else v

let to_string t =
  if is_integer t then B.to_string t.num
  else B.to_string t.num ^ "/" ^ B.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)
