module B = Bigint

(* Small-value-inlined rationals (DESIGN.md Sec. 16).

   A rational is stored flat as two native ints whenever its normalized
   numerator and denominator both fit (anything but [min_int], i.e. 62
   bits of magnitude): one 3-word [S] block instead of a record holding
   two limb-array-backed {!Bigint}s.  Arithmetic on two [S] values runs
   entirely in machine integers with explicit overflow checks and falls
   back to the Bigint path only when a check trips; Bigint results are
   demoted back through {!of_big}, so the representation is canonical —
   a value fits the small case iff it is stored in it.  Canonicality is
   load-bearing: structural equality, polymorphic compare and hashing
   over containers of rationals (Linexpr maps, nlp expressions) remain
   consistent across construction routes. *)

type t =
  | S of { n : int; d : int }
      (* d > 0, gcd(|n|,d) = 1, neither component is min_int *)
  | Big of { num : B.t; den : B.t }
      (* normalized, and at least one component exceeds a native int *)

let zero = S { n = 0; d = 1 }
let one = S { n = 1; d = 1 }
let minus_one = S { n = -1; d = 1 }

(* Demote a normalized bigint pair into the small case when it fits. *)
let of_big num den =
  match (B.to_int_opt num, B.to_int_opt den) with
  | Some n, Some d -> S { n; d }
  | _ -> Big { num; den }

let normalize_big num den =
  if B.is_zero den then raise Division_by_zero
  else if B.is_zero num then zero
  else
    let num, den =
      if B.sign den < 0 then (B.neg num, B.neg den) else (num, den)
    in
    if B.is_one den then of_big num den
    else
      let g = B.gcd num den in
      if B.is_one g then of_big num den
      else of_big (B.div num g) (B.div den g)

let to_big = function
  | S { n; d } -> (B.of_int n, B.of_int d)
  | Big { num; den } -> (num, den)

(* ------------------------------------------------------------------ *)
(* Machine-int helpers.  [min_int] doubles as the overflow sentinel:    *)
(* it is never a valid small component (its magnitude needs 63 bits),   *)
(* so any helper returning it sends the caller to the Bigint path.      *)

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let add_chk a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then min_int else s

let mul_chk a b =
  if a = 0 || b = 0 then 0
  else if a = min_int || b = min_int then min_int
  else if b = -1 then -a
  else
    let p = a * b in
    (* Exact overflow test: a wrapped product never divides back.  [b]
       is neither 0 nor -1 here, so the division cannot trap. *)
    if p / b = a then p else min_int

(* d > 0, n <> min_int, not yet reduced. *)
let small n d =
  if n = 0 then zero
  else
    let g = gcd_int (Stdlib.abs n) d in
    if g = 1 then S { n; d } else S { n = n / g; d = d / g }

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

let make num den = normalize_big num den
let of_bigint n = of_big n B.one

let of_int n =
  if n = min_int then Big { num = B.of_int n; den = B.one } else S { n; d = 1 }

let of_ints n d =
  if d = 0 then raise Division_by_zero
  else if n = min_int || d = min_int then
    normalize_big (B.of_int n) (B.of_int d)
  else if d < 0 then small (-n) (-d)
  else small n d

(* ------------------------------------------------------------------ *)
(* Observation.                                                        *)

let num = function S { n; _ } -> B.of_int n | Big { num; _ } -> num
let den = function S { d; _ } -> B.of_int d | Big { den; _ } -> den

let sign = function
  | S { n; _ } -> compare n 0
  | Big { num; _ } -> B.sign num

let is_zero = function S { n; _ } -> n = 0 | Big _ -> false
let is_integer = function S { d; _ } -> d = 1 | Big { den; _ } -> B.is_one den

let neg = function
  | S { n; d } -> S { n = -n; d }
  | Big { num; den } -> Big { num = B.neg num; den }

let abs = function
  | S { n; d } -> if n < 0 then S { n = -n; d } else S { n; d }
  | Big { num; den } -> Big { num = B.abs num; den }

(* ------------------------------------------------------------------ *)
(* Arithmetic.                                                         *)

(* Knuth 4.5.1 at the bigint level: reduce through the gcd of the
   denominators first.  The expensive case to avoid is a gcd of
   double-width products — [g0] and [g1] only ever see operand-width
   values ([g1] divides [g0]), where {!B.gcd}'s native fast path
   usually applies. *)
let big_add a b =
  let an, ad = to_big a and bn, bd = to_big b in
  if B.equal ad bd then normalize_big (B.add an bn) ad
  else
    let g0 = B.gcd ad bd in
    if B.is_one g0 then
      (* coprime denominators: the sum is already in lowest terms *)
      of_big (B.add (B.mul an bd) (B.mul bn ad)) (B.mul ad bd)
    else
      let ad' = B.div ad g0 and bd' = B.div bd g0 in
      let t = B.add (B.mul an bd') (B.mul bn ad') in
      if B.is_zero t then zero
      else
        let g1 = B.gcd t g0 in
        if B.is_one g1 then of_big t (B.mul ad' bd)
        else of_big (B.div t g1) (B.mul ad' (B.div bd g1))

let add a b =
  match (a, b) with
  | S x, S y ->
    if x.n = 0 then b
    else if y.n = 0 then a
    else if x.d = y.d then begin
      let n = add_chk x.n y.n in
      if n = min_int then big_add a b
      else if n = 0 then zero
      else
        let g = gcd_int (Stdlib.abs n) x.d in
        if g = 1 then S { n; d = x.d } else S { n = n / g; d = x.d / g }
    end
    else begin
      (* Knuth 4.5.1: reduce through g0 = gcd of the denominators; when
         g0 = 1 the result is already coprime, otherwise the remaining
         common factor of t and the denominator divides g0. *)
      let g0 = gcd_int x.d y.d in
      let d1' = x.d / g0 and d2' = y.d / g0 in
      let t1 = mul_chk x.n d2' and t2 = mul_chk y.n d1' in
      if t1 = min_int || t2 = min_int then big_add a b
      else
        let t = add_chk t1 t2 in
        if t = min_int then big_add a b
        else if t = 0 then zero
        else
          let g1 = if g0 = 1 then 1 else gcd_int (Stdlib.abs t) g0 in
          let d = mul_chk d1' (y.d / g1) in
          if d = min_int then big_add a b else S { n = t / g1; d }
    end
  | _ -> big_add a b

let sub a b = add a (neg b)

(* Cross-reduce before multiplying: with canonical operands the product
   of the reduced parts is coprime by construction, so no gcd of the
   double-width products is ever needed — the two gcds below only see
   operand-width values. *)
let big_mul a b =
  let an, ad = to_big a and bn, bd = to_big b in
  if B.is_zero an || B.is_zero bn then zero
  else
    let g1 = B.gcd an bd and g2 = B.gcd bn ad in
    let an = if B.is_one g1 then an else B.div an g1
    and bd = if B.is_one g1 then bd else B.div bd g1
    and bn = if B.is_one g2 then bn else B.div bn g2
    and ad = if B.is_one g2 then ad else B.div ad g2 in
    of_big (B.mul an bn) (B.mul ad bd)

let mul a b =
  match (a, b) with
  | S x, S y ->
    if x.n = 0 || y.n = 0 then zero
    else begin
      let g1 = gcd_int (Stdlib.abs x.n) y.d in
      let g2 = gcd_int (Stdlib.abs y.n) x.d in
      let n1 = x.n / g1 and n2 = y.n / g2 in
      let d1 = x.d / g2 and d2 = y.d / g1 in
      let n = mul_chk n1 n2 in
      let d = mul_chk d1 d2 in
      if n = min_int || d = min_int then
        (* overflow: the reduced parts are already pairwise coprime, so
           multiply at bigint width and skip normalization entirely *)
        of_big
          (B.mul (B.of_int n1) (B.of_int n2))
          (B.mul (B.of_int d1) (B.of_int d2))
      else S { n; d }
    end
  | _ -> big_mul a b

let inv = function
  | S { n; _ } when n = 0 -> raise Division_by_zero
  | S { n; d } -> if n < 0 then S { n = -d; d = -n } else S { n = d; d = n }
  | Big { num; den } -> normalize_big den num

let div a b =
  match (a, b) with
  | _, S { n = 0; _ } -> raise Division_by_zero
  | S _, S _ -> mul a (inv b)
  | _ ->
    let an, ad = to_big a and bn, bd = to_big b in
    normalize_big (B.mul an bd) (B.mul ad bn)

let mul_int t i = mul t (of_int i)

(* ------------------------------------------------------------------ *)
(* Comparison.                                                         *)

let big_compare a b =
  let an, ad = to_big a and bn, bd = to_big b in
  (* Denominators are positive, so cross-multiplication preserves order. *)
  B.compare (B.mul an bd) (B.mul bn ad)

let compare a b =
  match (a, b) with
  | S x, S y ->
    if x.d = y.d then Int.compare x.n y.n
    else
      let sx = Stdlib.compare x.n 0 and sy = Stdlib.compare y.n 0 in
      if sx <> sy then Int.compare sx sy
      else
        let l = mul_chk x.n y.d and r = mul_chk y.n x.d in
        if l = min_int || r = min_int then big_compare a b
        else Int.compare l r
  | _ -> big_compare a b

let equal a b =
  match (a, b) with
  | S x, S y -> x.n = y.n && x.d = y.d
  | Big x, Big y -> B.equal x.num y.num && B.equal x.den y.den
  | _ -> false (* canonical representation: cases never overlap *)

let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let gt a b = compare a b > 0
let geq a b = compare a b >= 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

(* ------------------------------------------------------------------ *)
(* Integer rounding.                                                   *)

let floor = function
  | S { n; d } ->
    let q = n / d in
    B.of_int (if n < 0 && n mod d <> 0 then q - 1 else q)
  | Big { num; den } ->
    let q, r = B.divmod num den in
    if B.sign r < 0 then B.pred q else q

let ceil = function
  | S { n; d } ->
    let q = n / d in
    B.of_int (if n > 0 && n mod d <> 0 then q + 1 else q)
  | Big { num; den } ->
    let q, r = B.divmod num den in
    if B.sign r > 0 then B.succ q else q

let pow t e =
  let rec go acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
  in
  if e >= 0 then go one t e
  else if is_zero t then raise Division_by_zero
  else go one (inv t) (-e)

(* ------------------------------------------------------------------ *)
(* Conversions.                                                        *)

let to_float = function
  | S { n; d } -> float_of_int n /. float_of_int d
  | Big { num; den } -> B.to_float num /. B.to_float den

let of_float f =
  if not (Float.is_finite f) then
    invalid_arg "Rational.of_float: not a finite float";
  if f = 0.0 then zero
  else begin
    (* f = m * 2^(e - 53) with m a 53-bit integer: exact by construction.
       Stripping the mantissa's trailing zeros makes the pair coprime up
       front (odd numerator, power-of-two denominator), so no gcd runs
       and small magnitudes stay on the inlined representation. *)
    let m, e = Float.frexp f in
    let m53 = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
    let rec tz n k = if n land 1 = 0 then tz (n asr 1) (k + 1) else k in
    let t = tz (Stdlib.abs m53) 0 in
    let m' = m53 asr t in
    let shift = e - 53 + t in
    if shift >= 0 then
      if shift <= 8 then S { n = m' lsl shift; d = 1 }
      else of_bigint (B.shift_left (B.of_int m') shift)
    else if -shift <= 61 then S { n = m'; d = 1 lsl -shift }
    else Big { num = B.of_int m'; den = B.shift_left B.one (-shift) }
  end

let of_decimal_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Rational.of_decimal_string: empty string";
  match String.index_opt s '/' with
  | Some i ->
    let n = B.of_string (String.sub s 0 i) in
    let d = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None ->
    let mantissa, exponent =
      match String.index_opt s 'e' with
      | Some i ->
        ( String.sub s 0 i,
          int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
      | None -> (
        match String.index_opt s 'E' with
        | Some i ->
          ( String.sub s 0 i,
            int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
        | None -> (s, 0))
    in
    let negated, mantissa =
      if mantissa <> "" && mantissa.[0] = '-' then
        (true, String.sub mantissa 1 (String.length mantissa - 1))
      else if mantissa <> "" && mantissa.[0] = '+' then
        (false, String.sub mantissa 1 (String.length mantissa - 1))
      else (false, mantissa)
    in
    let int_part, frac_part =
      match String.index_opt mantissa '.' with
      | Some i ->
        ( String.sub mantissa 0 i,
          String.sub mantissa (i + 1) (String.length mantissa - i - 1) )
      | None -> (mantissa, "")
    in
    if int_part = "" && frac_part = "" then
      invalid_arg "Rational.of_decimal_string: no digits";
    let digits = int_part ^ frac_part in
    let n = B.of_string (if digits = "" then "0" else digits) in
    let scale = String.length frac_part - exponent in
    let v =
      if scale <= 0 then of_bigint (B.mul n (B.pow B.ten (-scale)))
      else make n (B.pow B.ten scale)
    in
    if negated then neg v else v

let to_string = function
  | S { n; d } ->
    if d = 1 then string_of_int n
    else string_of_int n ^ "/" ^ string_of_int d
  | Big { num; den } ->
    if B.is_one den then B.to_string num
    else B.to_string num ^ "/" ^ B.to_string den

let pp fmt t = Format.pp_print_string fmt (to_string t)
