module Q = Rational

(* Flat representation (DESIGN.md Sec. 16): almost every value the
   simplex manipulates is a plain rational (non-strict bounds, most
   assignments), so the delta coefficient is only materialized when it
   is nonzero.  [Rat r] is one block smaller than the old {r; k} record
   and skips the [k] arithmetic entirely on the common path. *)
type t =
  | Rat of Q.t (* r + 0*delta *)
  | Del of { r : Q.t; k : Q.t } (* invariant: k <> 0 *)

let make r k = if Q.is_zero k then Rat r else Del { r; k }
let of_rational r = Rat r
let of_int n = Rat (Q.of_int n)
let zero = Rat Q.zero
let delta = Del { r = Q.zero; k = Q.one }
let r = function Rat r -> r | Del { r; _ } -> r
let k = function Rat _ -> Q.zero | Del { k; _ } -> k

let add a b =
  match (a, b) with
  | Rat x, Rat y -> Rat (Q.add x y)
  | Rat x, Del { r; k } | Del { r; k }, Rat x -> Del { r = Q.add x r; k }
  | Del x, Del y -> make (Q.add x.r y.r) (Q.add x.k y.k)

let neg = function
  | Rat x -> Rat (Q.neg x)
  | Del { r; k } -> Del { r = Q.neg r; k = Q.neg k }

let sub a b = add a (neg b)

let scale c a =
  if Q.is_zero c then zero
  else
    match a with
    | Rat x -> Rat (Q.mul c x)
    | Del { r; k } -> Del { r = Q.mul c r; k = Q.mul c k }

let compare a b =
  match (a, b) with
  | Rat x, Rat y -> Q.compare x y
  | _ ->
    let c = Q.compare (r a) (r b) in
    if c <> 0 then c else Q.compare (k a) (k b)

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let min a b = if leq a b then a else b
let max a b = if leq a b then b else a
let is_rational = function Rat _ -> true | Del _ -> false

let pp fmt t =
  match t with
  | Rat x -> Q.pp fmt x
  | Del { r; k } -> Format.fprintf fmt "%a + %a*delta" Q.pp r Q.pp k

(* For each symbolic ordering r1 + k1*d <= r2 + k2*d with k1 > k2 the
   concrete delta must satisfy d <= (r2 - r1) / (k1 - k2); take the minimum
   over all such constraints, capped at 1. *)
let concretize_delta pairs =
  let bound =
    List.fold_left
      (fun acc (lhs, rhs) ->
        let k1 = k lhs and k2 = k rhs in
        if Q.gt k1 k2 then
          let limit = Q.div (Q.sub (r rhs) (r lhs)) (Q.sub k1 k2) in
          Q.min acc limit
        else acc)
      Q.one pairs
  in
  if Q.sign bound > 0 then Q.div bound (Q.of_int 2) else Q.of_ints 1 2

let substitute d t =
  match t with Rat x -> x | Del { r; k } -> Q.add r (Q.mul d k)
