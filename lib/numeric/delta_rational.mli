(** Rationals extended with an infinitesimal: values of the form
    [r + k*delta] where [delta] is a positive infinitesimal.

    The general simplex treats a strict bound [x < c] as the non-strict
    bound [x <= c - delta]; once a feasible delta-valuation is found, a
    concrete positive value for [delta] small enough to satisfy every
    strict constraint is recovered with {!concretize_delta}. *)

type t
(** Abstract: the implementation inlines the rational-only case (zero
    delta coefficient) into a flat single-field block, so values must be
    built with {!make}/{!of_rational} and inspected with {!r}/{!k}. *)

val make : Rational.t -> Rational.t -> t
val of_rational : Rational.t -> t
val of_int : int -> t
val zero : t
val delta : t
(** [0 + 1*delta]. *)

val r : t -> Rational.t
val k : t -> Rational.t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val scale : Rational.t -> t -> t
(** Multiplication by a rational scalar. *)

val compare : t -> t -> int
(** Lexicographic: first on the rational part, then on the delta
    coefficient. *)

val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val is_rational : t -> bool
val pp : Format.formatter -> t -> unit

val concretize_delta : (t * t) list -> Rational.t
(** [concretize_delta pairs] returns a strictly positive rational value [d]
    for delta such that substituting it preserves every ordering
    [lhs <= rhs] in [pairs] (each pair must already satisfy
    [compare lhs rhs <= 0] symbolically). *)

val substitute : Rational.t -> t -> Rational.t
(** [substitute d v] evaluates [v] with [delta := d]. *)
