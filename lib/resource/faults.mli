(** Deterministic fault injection at solver boundaries.

    Each boundary of the solve pipeline calls [hit point budget] with its
    own name; a test arms a point and the [n]th hit fires — either
    tripping the budget (simulating a timeout or cancellation exactly
    where the real poll would notice it) or raising {!Injected}
    (simulating an internal solver crash).  Disarmed, a hit is a single
    flag test, so the points stay in production code permanently.

    The harness is deliberately deterministic: tests choose the point and
    the hit count, so every failure replays exactly. *)

exception Injected of string
(** The injected "solver crash".  Must never escape [Engine.solve] — the
    engine's boundary converts it to [R_unknown (internal: ...)]. *)

type action =
  | Trip of Absolver_error.t
      (** Trip the budget with this reason and raise
          {!Budget.Exhausted}, as a real exhaustion would. *)
  | Raise  (** Raise {!Injected}, as an internal fault would. *)

val known : string list
(** The static fault-point inventory (see DESIGN.md Sec. 10). *)

val arm : ?after:int -> point:string -> action -> unit
(** Fire [action] on the [after]th hit of [point] (default: the first).
    A point fires once per arming.
    @raise Invalid_argument for a point not in {!known}. *)

val disarm_all : unit -> unit
(** Disarm every point and reset hit counts.  Tests call this in a
    [Fun.protect] finaliser. *)

val hit : string -> Budget.t -> unit
(** Called by pipeline code at each boundary.  No-op unless some point
    has been armed since the last {!disarm_all}. *)

val hits : string -> int
(** Observed hits of a point since the last {!disarm_all} (counted only
    while any point is armed). *)

(** Seeded network fault injection for the solve server's read, write
    and accept paths (DESIGN.md Sec. 15).

    Unlike the solver points above, network faults are drawn from a
    seeded PRNG with per-kind probabilities: torn frames (a write split
    in two with a delay between the halves), delayed bytes, mid-frame
    disconnects and refused accepts.  This module only {e decides};
    applying a decision (sleeping, shutting a socket down) is the I/O
    layer's job ({!Absolver_server.Io}), so this library stays free of
    [Unix].  Disarmed, every query is one mutex-protected [None]
    check. *)
module Net : sig
  type plan = {
    seed : int;  (** PRNG seed; same seed = same decision stream *)
    tear_write : float;  (** probability a write is split in two *)
    delay : float;  (** probability an operation is delayed *)
    drop : float;  (** probability the connection is severed mid-frame *)
    refuse_accept : float;  (** probability a fresh accept is severed *)
    max_delay_ms : float;  (** injected delays are uniform in [0, max] *)
  }

  val default_plan : plan

  type decision = {
    delay_ms : float;  (** sleep this long before the operation *)
    tear_at : int option;  (** split a write at this byte offset *)
    drop : bool;  (** sever the connection instead of completing *)
  }

  val no_decision : decision

  val arm : ?plan:plan -> unit -> unit
  (** Start injecting network faults according to [plan]. *)

  val disarm : unit -> unit
  val armed : unit -> bool

  val on_write : len:int -> decision
  (** Decision for one write of [len] bytes. *)

  val on_read : unit -> decision
  (** Decision for one read attempt. *)

  val on_accept : unit -> bool
  (** [true]: sever this freshly accepted connection immediately. *)

  val injected : unit -> (string * int) list
  (** Injected-event counts by kind ([tear], [delay], [drop_read],
      [drop_write], [refuse_accept]) since {!arm}. *)
end
