(** Deterministic fault injection at solver boundaries.

    Each boundary of the solve pipeline calls [hit point budget] with its
    own name; a test arms a point and the [n]th hit fires — either
    tripping the budget (simulating a timeout or cancellation exactly
    where the real poll would notice it) or raising {!Injected}
    (simulating an internal solver crash).  Disarmed, a hit is a single
    flag test, so the points stay in production code permanently.

    The harness is deliberately deterministic: tests choose the point and
    the hit count, so every failure replays exactly. *)

exception Injected of string
(** The injected "solver crash".  Must never escape [Engine.solve] — the
    engine's boundary converts it to [R_unknown (internal: ...)]. *)

type action =
  | Trip of Absolver_error.t
      (** Trip the budget with this reason and raise
          {!Budget.Exhausted}, as a real exhaustion would. *)
  | Raise  (** Raise {!Injected}, as an internal fault would. *)

val known : string list
(** The static fault-point inventory (see DESIGN.md Sec. 10). *)

val arm : ?after:int -> point:string -> action -> unit
(** Fire [action] on the [after]th hit of [point] (default: the first).
    A point fires once per arming.
    @raise Invalid_argument for a point not in {!known}. *)

val disarm_all : unit -> unit
(** Disarm every point and reset hit counts.  Tests call this in a
    [Fun.protect] finaliser. *)

val hit : string -> Budget.t -> unit
(** Called by pipeline code at each boundary.  No-op unless some point
    has been armed since the last {!disarm_all}. *)

val hits : string -> int
(** Observed hits of a point since the last {!disarm_all} (counted only
    while any point is armed). *)
