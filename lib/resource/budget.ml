module Clock = Absolver_telemetry.Telemetry.Clock

exception Exhausted of Absolver_error.t

(* Words allocated by this process so far (minor + major, promoted counted
   once).  [Gc.allocated_bytes] is a few loads — cheap enough for the slow
   path of [tick]. *)
let words_now () = Gc.allocated_bytes () /. float_of_int (Sys.word_size / 8)

type state = {
  deadline : float option; (* absolute, on the monotonic telemetry clock *)
  max_steps : int;
  max_words : float;
  words0 : float;
  mutable charged : int; (* explicitly metered words, on top of the GC's *)
  mutable steps : int;
  mutable cancelled : bool;
  mutable tripped : Absolver_error.t option;
}

type t = Unlimited | Limited of state

let unlimited = Unlimited

let create ?deadline_seconds ?max_steps ?max_words () =
  Limited
    {
      deadline = Option.map (fun d -> Clock.now () +. d) deadline_seconds;
      max_steps = Option.value ~default:max_int max_steps;
      max_words =
        (match max_words with Some w -> float_of_int w | None -> infinity);
      words0 = words_now ();
      charged = 0;
      steps = 0;
      cancelled = false;
      tripped = None;
    }

let is_unlimited = function Unlimited -> true | Limited _ -> false

let cancel = function
  | Unlimited -> ()
  | Limited s -> s.cancelled <- true

let trip t err =
  match t with
  | Unlimited -> ()
  | Limited s -> if s.tripped = None then s.tripped <- Some err

let tripped = function Unlimited -> None | Limited s -> s.tripped
let steps = function Unlimited -> 0 | Limited s -> s.steps

let remaining_seconds = function
  | Unlimited -> None
  | Limited s ->
    Option.map (fun d -> Float.max 0.0 (d -. Clock.now ())) s.deadline

(* The expensive part of a poll: clock and allocation reads.  Kept out of
   the per-tick fast path — [tick] runs it every [interval] steps. *)
let slow_check s =
  match s.tripped with
  | Some _ -> s.tripped
  | None ->
    let verdict =
      if s.cancelled then Some Absolver_error.Cancelled
      else if
        match s.deadline with Some d -> Clock.now () > d | None -> false
      then Some Absolver_error.Timeout
      else if
        Float.is_finite s.max_words
        && words_now () -. s.words0 +. float_of_int s.charged > s.max_words
      then Some (Absolver_error.Out_of_budget Absolver_error.Memory)
      else None
    in
    (match verdict with Some _ -> s.tripped <- verdict | None -> ());
    s.tripped

let check = function
  | Unlimited -> None
  | Limited s ->
    if s.steps > s.max_steps && s.tripped = None then
      s.tripped <- Some (Absolver_error.Out_of_budget Absolver_error.Steps);
    slow_check s

(* Full polls every [interval] ticks: hot loops pay an int increment, a
   compare and a mask almost always. *)
let interval_mask = 0xFF

let tick = function
  | Unlimited -> ()
  | Limited s ->
    s.steps <- s.steps + 1;
    if s.steps > s.max_steps then begin
      if s.tripped = None then
        s.tripped <- Some (Absolver_error.Out_of_budget Absolver_error.Steps);
      raise (Exhausted (Option.get s.tripped))
    end
    else if s.steps land interval_mask = 0 then begin
      match slow_check s with None -> () | Some e -> raise (Exhausted e)
    end

let charge t n =
  match t with
  | Unlimited -> ()
  | Limited s -> (
    s.charged <- s.charged + n;
    if Float.is_finite s.max_words then
      match slow_check s with None -> () | Some e -> raise (Exhausted e))

let check_exn t =
  match check t with None -> () | Some e -> raise (Exhausted e)

let guard t f =
  match f () with
  | v -> Ok v
  | exception Exhausted e -> Error e
  | exception e ->
    (* A stray exception must not cross the boundary either; record it so
       the caller's sticky reason survives. *)
    let err = Absolver_error.Internal (Printexc.to_string e) in
    trip t err;
    Error err
