module Clock = Absolver_telemetry.Telemetry.Clock

exception Exhausted of Absolver_error.t

(* Words allocated by this process so far (minor + major, promoted counted
   once).  [Gc.allocated_bytes] is a few loads — cheap enough for the slow
   path of [tick]. *)
let words_now () = Gc.allocated_bytes () /. float_of_int (Sys.word_size / 8)

(* The shared half of a budget: cancellation and the sticky trip reason
   live in atomics so any domain may cancel/trip while others poll.  Cells
   form a tree through [parent]: a child polls its ancestors too, so
   cancelling a parent reaches every forked worker at its next poll, while
   a child's own trip (say, a branch-and-prune race settled by a Sat
   certificate) stays invisible to the parent. *)
type cell = {
  cancelled : bool Atomic.t;
  trip_reason : Absolver_error.t option Atomic.t;
  parent : cell option;
}

let mk_cell ?parent () =
  { cancelled = Atomic.make false; trip_reason = Atomic.make None; parent }

type state = {
  cell : cell;
  deadline : float option; (* absolute, on the monotonic telemetry clock *)
  max_steps : int;
  max_words : float;
  words0 : float;
  mutable charged : int; (* explicitly metered words, on top of the GC's *)
  mutable steps : int;
}

type t = Unlimited | Limited of state

let unlimited = Unlimited

let create ?deadline_seconds ?max_steps ?max_words () =
  Limited
    {
      cell = mk_cell ();
      deadline = Option.map (fun d -> Clock.now () +. d) deadline_seconds;
      max_steps = Option.value ~default:max_int max_steps;
      max_words =
        (match max_words with Some w -> float_of_int w | None -> infinity);
      words0 = words_now ();
      charged = 0;
      steps = 0;
    }

(* A worker/competitor budget: fresh step and allocation meters, the
   parent's absolute deadline, and a fresh cell linked to the parent's so
   parent-side cancellation and trips propagate down (never up).  Forking
   [unlimited] yields a pure cancellation flag — the cheapest budget that
   can still take part in a first-win race. *)
let fork = function
  | Unlimited ->
    Limited
      {
        cell = mk_cell ();
        deadline = None;
        max_steps = max_int;
        max_words = infinity;
        words0 = 0.0;
        charged = 0;
        steps = 0;
      }
  | Limited s ->
    Limited
      {
        cell = mk_cell ~parent:s.cell ();
        deadline = s.deadline;
        max_steps = max_int;
        max_words = infinity;
        words0 = 0.0;
        charged = 0;
        steps = 0;
      }

(* A request budget sliced out of a long-lived parent (the solve server's
   per-request budgets): its own, possibly tighter, limits plus a cell
   linked to the parent's so shutting the parent down cancels every
   outstanding request at its next poll.  The effective deadline is the
   tighter of the parent's and the child's own. *)
let child t ?deadline_seconds ?max_steps ?max_words () =
  let own_deadline = Option.map (fun d -> Clock.now () +. d) deadline_seconds in
  let parent_cell, parent_deadline =
    match t with
    | Unlimited -> (None, None)
    | Limited s -> (Some s.cell, s.deadline)
  in
  let deadline =
    match (own_deadline, parent_deadline) with
    | Some a, Some b -> Some (Float.min a b)
    | (Some _ as d), None | None, (Some _ as d) -> d
    | None, None -> None
  in
  Limited
    {
      cell = mk_cell ?parent:parent_cell ();
      deadline;
      max_steps = Option.value ~default:max_int max_steps;
      max_words =
        (match max_words with Some w -> float_of_int w | None -> infinity);
      words0 = words_now ();
      charged = 0;
      steps = 0;
    }

let is_unlimited = function Unlimited -> true | Limited _ -> false

let cancel = function
  | Unlimited -> ()
  | Limited s -> Atomic.set s.cell.cancelled true

(* First trip wins, even when several domains race to report. *)
let trip_cell c err =
  ignore (Atomic.compare_and_set c.trip_reason None (Some err))

let trip t err =
  match t with Unlimited -> () | Limited s -> trip_cell s.cell err

let tripped = function
  | Unlimited -> None
  | Limited s -> Atomic.get s.cell.trip_reason

let steps = function Unlimited -> 0 | Limited s -> s.steps

let remaining_seconds = function
  | Unlimited -> None
  | Limited s ->
    Option.map (fun d -> Float.max 0.0 (d -. Clock.now ())) s.deadline

(* Cancellation or a trip anywhere up the cell chain exhausts this budget;
   the ancestor's typed reason is inherited so a worker cut short by the
   engine's timeout still reports Timeout, not a generic Cancelled. *)
let rec inherited_verdict c =
  match Atomic.get c.trip_reason with
  | Some _ as r -> r
  | None ->
    if Atomic.get c.cancelled then Some Absolver_error.Cancelled
    else ( match c.parent with None -> None | Some p -> inherited_verdict p)

(* The expensive part of a poll: clock and allocation reads.  Kept out of
   the per-tick fast path — [tick] runs it every [interval] steps. *)
let slow_check s =
  match Atomic.get s.cell.trip_reason with
  | Some _ as r -> r
  | None ->
    let verdict =
      match inherited_verdict s.cell with
      | Some _ as r -> r
      | None ->
        if match s.deadline with Some d -> Clock.now () > d | None -> false
        then Some Absolver_error.Timeout
        else if
          Float.is_finite s.max_words
          && words_now () -. s.words0 +. float_of_int s.charged > s.max_words
        then Some (Absolver_error.Out_of_budget Absolver_error.Memory)
        else None
    in
    (match verdict with Some e -> trip_cell s.cell e | None -> ());
    Atomic.get s.cell.trip_reason

let check = function
  | Unlimited -> None
  | Limited s ->
    if s.steps > s.max_steps then
      trip_cell s.cell (Absolver_error.Out_of_budget Absolver_error.Steps);
    slow_check s

(* Full polls every [interval] ticks: hot loops pay an int increment, a
   compare and a mask almost always. *)
let interval_mask = 0xFF

let tick = function
  | Unlimited -> ()
  | Limited s ->
    s.steps <- s.steps + 1;
    if s.steps > s.max_steps then begin
      trip_cell s.cell (Absolver_error.Out_of_budget Absolver_error.Steps);
      raise (Exhausted (Option.get (Atomic.get s.cell.trip_reason)))
    end
    else if s.steps land interval_mask = 0 then begin
      match slow_check s with None -> () | Some e -> raise (Exhausted e)
    end

let charge t n =
  match t with
  | Unlimited -> ()
  | Limited s -> (
    s.charged <- s.charged + n;
    if Float.is_finite s.max_words then
      match slow_check s with None -> () | Some e -> raise (Exhausted e))

let check_exn t =
  match check t with None -> () | Some e -> raise (Exhausted e)

let guard t f =
  match f () with
  | v -> Ok v
  | exception Exhausted e -> Error e
  | exception e ->
    (* A stray exception must not cross the boundary either; record it so
       the caller's sticky reason survives. *)
    let err = Absolver_error.Internal (Printexc.to_string e) in
    trip t err;
    Error err
