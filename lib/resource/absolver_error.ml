type resource = Steps | Memory

type t =
  | Timeout
  | Cancelled
  | Out_of_budget of resource
  | Internal of string

let to_string = function
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Out_of_budget Steps -> "step budget exhausted"
  | Out_of_budget Memory -> "memory budget exhausted"
  | Internal why -> "internal: " ^ why

let code = function
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Out_of_budget Steps -> "steps"
  | Out_of_budget Memory -> "memory"
  | Internal _ -> "internal"

let pp fmt e = Format.pp_print_string fmt (to_string e)

let is_resource = function
  | Timeout | Cancelled | Out_of_budget _ -> true
  | Internal _ -> false
