(** The resource governor's budget: a monotonic deadline, a step budget,
    an approximate allocation budget and a cooperative cancellation flag,
    bundled into one value threaded through every hot loop of the solve
    pipeline ([Engine.options.budget]).

    Design rules:

    - {!unlimited} (the default everywhere) compiles every operation down
      to a single match on an immutable constructor — instrumented hot
      loops pay nothing when no budget is configured.
    - Exhaustion inside a library is signalled with the {!Exhausted}
      exception, but it must be caught at that library's public entry
      points: no exception crosses a library boundary.  The reason is
      {e sticky} — once tripped, {!tripped} keeps reporting it, so outer
      layers that only see a generic "gave up" verdict can still recover
      the typed {!Absolver_error.t}.
    - Deadlines use the monotonic telemetry clock
      ({!Absolver_telemetry.Telemetry.Clock}), never the raw wall clock,
      so NTP steps cannot corrupt them.
    - The cancellation flag and the sticky trip reason are atomics, so any
      domain may {!cancel} or {!trip} a budget that other domains poll.
      {!fork} builds the cancellation {e tree} used by the parallel
      subsystem: parent-side cancellation reaches every fork at its next
      poll, while a fork's own trip stays invisible to the parent. *)

type t

exception Exhausted of Absolver_error.t

val unlimited : t
(** No limits; every operation is a no-op.  [is_unlimited unlimited]. *)

val create :
  ?deadline_seconds:float ->
  ?max_steps:int ->
  ?max_words:int ->
  unit ->
  t
(** A fresh budget.  [deadline_seconds] is relative to now on the
    monotonic clock; [max_steps] bounds {!tick} calls (solver-defined
    work units: decisions, pivots, nodes, probes…); [max_words] bounds
    words allocated since creation (GC-observed plus {!charge}d). *)

val is_unlimited : t -> bool

val fork : t -> t
(** A worker/competitor budget for one branch of a parallel computation:
    fresh step and allocation meters, the parent's absolute deadline, and
    a cancellation cell {e linked} to the parent's — cancelling or
    tripping the parent exhausts the fork at its next poll, but the
    fork's own {!cancel}/{!trip} never propagates up.  Forking
    {!unlimited} yields a pure cancellation flag (no limits), the
    cheapest budget that can still take part in a first-win race. *)

val child :
  t ->
  ?deadline_seconds:float ->
  ?max_steps:int ->
  ?max_words:int ->
  unit ->
  t
(** A request budget sliced out of a long-lived parent (the solve
    server's admission layer): fresh meters with their {e own} limits —
    [deadline_seconds] is relative to now and is clipped to the parent's
    absolute deadline if that is tighter — and a cancellation cell linked
    to the parent's, so cancelling or tripping the parent exhausts every
    child at its next poll while a child's own trip stays invisible to
    the parent and its siblings.  [child unlimited ()] is a plain
    {!create} (no linkage). *)

val cancel : t -> unit
(** Request cooperative cancellation: the next poll trips the budget with
    {!Absolver_error.Cancelled}.  Safe to call from a signal handler or
    another domain. *)

val trip : t -> Absolver_error.t -> unit
(** Force exhaustion with the given reason (first trip wins).  Used by
    the fault-injection harness. *)

val tripped : t -> Absolver_error.t option
(** The sticky exhaustion reason, if the budget has tripped. *)

val tick : t -> unit
(** One unit of work in a hot loop.  Almost always an increment and two
    compares; every 256th call also polls the clock, the allocation meter
    and the cancellation flag.
    @raise Exhausted when a limit is hit (sticky). *)

val charge : t -> int -> unit
(** Meter [n] words of logical allocation explicitly (for structures the
    GC cannot attribute, or simulated allocators).
    @raise Exhausted when the allocation budget is exceeded. *)

val check : t -> Absolver_error.t option
(** Full non-raising poll: cancellation, deadline, steps, words.  [None]
    while within budget. *)

val check_exn : t -> unit
(** @raise Exhausted like {!tick}, but always runs the full poll and does
    not count a step. *)

val steps : t -> int
(** Ticks consumed so far (0 when unlimited). *)

val remaining_seconds : t -> float option
(** Seconds until the deadline ([None] when no deadline). *)

val guard : t -> (unit -> 'a) -> ('a, Absolver_error.t) result
(** Boundary wrapper: run [f], converting {!Exhausted} into its payload
    and any other exception into [Internal] (also {!trip}ping the budget
    so the reason is observable downstream).  This is what makes
    "exhaustion never raises across a library boundary" cheap to
    enforce. *)
