(** The error taxonomy of the resource governor.

    Every layer of the solve pipeline that can give up early reports one
    of these instead of letting an exception escape its library boundary;
    the engine converts them into [R_unknown] verdicts carrying
    best-effort partial results (Monniaux's {e anytime} contract: budget
    pressure may turn SAT/UNSAT into UNKNOWN but never flips an answer). *)

type resource =
  | Steps  (** the tick/step budget, e.g. pivots, conflicts, nodes *)
  | Memory  (** the approximate allocation budget, in words *)

type t =
  | Timeout  (** the monotonic deadline passed *)
  | Cancelled  (** cooperative cancellation was requested *)
  | Out_of_budget of resource
  | Internal of string
      (** an unexpected condition converted at a boundary — a caught
          exception, a missing solver, an impossible state *)

val to_string : t -> string
(** Short lower-case reason, the exact text carried by [R_unknown] (so a
    timed-out solve prints [unknown (timeout)]). *)

val code : t -> string
(** One-token machine-readable tag ([timeout], [cancelled], [steps],
    [memory], [internal]) for stats columns and JSON. *)

val pp : Format.formatter -> t -> unit

val is_resource : t -> bool
(** [true] for {!Timeout}, {!Cancelled} and {!Out_of_budget} — exhaustion
    of a configured budget rather than an internal fault. *)
