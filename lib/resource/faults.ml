exception Injected of string

type action = Trip of Absolver_error.t | Raise

(* The static inventory: one point per solver boundary the engine relies
   on.  Keep DESIGN.md Sec. 10's fault-point table in sync. *)
let known =
  [
    "engine.solve";
    "engine.bool_model";
    "presolve.run";
    "presolve.sat_simplify";
    "presolve.lp";
    "presolve.icp";
    "sat.solve";
    "sat.all_sat";
    "lp.solve_system";
    "nlp.branch_prune";
  ]

type armed = { mutable countdown : int; action : action }

let armed_tbl : (string, armed) Hashtbl.t = Hashtbl.create 8
let hit_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 8
let enabled = ref false

let arm ?(after = 1) ~point action =
  if not (List.mem point known) then
    invalid_arg (Printf.sprintf "Faults.arm: unknown fault point %S" point);
  Hashtbl.replace armed_tbl point { countdown = max 1 after; action };
  enabled := true

let disarm_all () =
  Hashtbl.reset armed_tbl;
  Hashtbl.reset hit_tbl;
  enabled := false

let hits point =
  match Hashtbl.find_opt hit_tbl point with Some r -> !r | None -> 0

let hit point budget =
  if !enabled then begin
    (match Hashtbl.find_opt hit_tbl point with
    | Some r -> incr r
    | None -> Hashtbl.add hit_tbl point (ref 1));
    match Hashtbl.find_opt armed_tbl point with
    | None -> ()
    | Some a ->
      a.countdown <- a.countdown - 1;
      if a.countdown <= 0 then begin
        Hashtbl.remove armed_tbl point;
        match a.action with
        | Trip err ->
          Budget.trip budget err;
          raise (Budget.Exhausted err)
        | Raise -> raise (Injected point)
      end
  end
