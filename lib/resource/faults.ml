exception Injected of string

type action = Trip of Absolver_error.t | Raise

(* The static inventory: one point per solver boundary the engine relies
   on.  Keep DESIGN.md Sec. 10's fault-point table in sync. *)
let known =
  [
    "engine.solve";
    "engine.bool_model";
    "presolve.run";
    "presolve.sat_simplify";
    "presolve.lp";
    "presolve.icp";
    "sat.solve";
    "sat.all_sat";
    "lp.solve_system";
    "nlp.branch_prune";
    "server.lane";
  ]

type armed = { mutable countdown : int; action : action }

let armed_tbl : (string, armed) Hashtbl.t = Hashtbl.create 8
let hit_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 8
let enabled = ref false

let arm ?(after = 1) ~point action =
  if not (List.mem point known) then
    invalid_arg (Printf.sprintf "Faults.arm: unknown fault point %S" point);
  Hashtbl.replace armed_tbl point { countdown = max 1 after; action };
  enabled := true

let disarm_all () =
  Hashtbl.reset armed_tbl;
  Hashtbl.reset hit_tbl;
  enabled := false

let hits point =
  match Hashtbl.find_opt hit_tbl point with Some r -> !r | None -> 0

let hit point budget =
  if !enabled then begin
    (match Hashtbl.find_opt hit_tbl point with
    | Some r -> incr r
    | None -> Hashtbl.add hit_tbl point (ref 1));
    match Hashtbl.find_opt armed_tbl point with
    | None -> ()
    | Some a ->
      a.countdown <- a.countdown - 1;
      if a.countdown <= 0 then begin
        Hashtbl.remove armed_tbl point;
        match a.action with
        | Trip err ->
          Budget.trip budget err;
          raise (Budget.Exhausted err)
        | Raise -> raise (Injected point)
      end
  end

(* ------------------------------------------------------------------ *)
(* Network fault injection                                             *)
(*                                                                     *)
(* A seeded decision oracle for the solve server's read/write/accept   *)
(* paths.  This module only *decides* (tear here, delay that long,     *)
(* drop now) — applying a decision (sleeping, shutting a socket down)  *)
(* is the caller's job, so this library stays free of Unix.  All       *)
(* draws come from one seeded PRNG behind a mutex: a chaos run is      *)
(* reproducible up to thread interleaving, and the differential suite  *)
(* asserts on transcripts, which are interleaving-independent.         *)
(* ------------------------------------------------------------------ *)

module Net = struct
  type plan = {
    seed : int;
    tear_write : float;
    delay : float;
    drop : float;
    refuse_accept : float;
    max_delay_ms : float;
  }

  let default_plan =
    {
      seed = 0;
      tear_write = 0.15;
      delay = 0.15;
      drop = 0.05;
      refuse_accept = 0.1;
      max_delay_ms = 5.0;
    }

  type decision = {
    delay_ms : float;  (** sleep this long before the operation *)
    tear_at : int option;  (** split a write at this byte offset *)
    drop : bool;  (** sever the connection instead of completing *)
  }

  let no_decision = { delay_ms = 0.0; tear_at = None; drop = false }

  type state = { st : Random.State.t; mutable counts : (string * int) list }

  let lock = Mutex.create ()
  let state : state option ref = ref None

  let arm plan =
    Mutex.protect lock (fun () ->
        state :=
          Some { st = Random.State.make [| plan.seed; 0x6e657446 |]; counts = [] })

  let plan_ref = ref default_plan

  let arm ?(plan = default_plan) () =
    plan_ref := plan;
    arm plan

  let disarm () = Mutex.protect lock (fun () -> state := None)
  let armed () = Mutex.protect lock (fun () -> !state <> None)

  let count s kind =
    s.counts <-
      (match List.assoc_opt kind s.counts with
      | Some n -> (kind, n + 1) :: List.remove_assoc kind s.counts
      | None -> (kind, 1) :: s.counts)

  let injected () =
    Mutex.protect lock (fun () ->
        match !state with Some s -> s.counts | None -> [])

  let chance s p = p > 0.0 && Random.State.float s.st 1.0 < p

  let delay_of s plan =
    if chance s plan.delay then begin
      count s "delay";
      Random.State.float s.st (Float.max 0.01 plan.max_delay_ms)
    end
    else 0.0

  (* Decision for one write of [len] bytes. *)
  let on_write ~len =
    Mutex.protect lock (fun () ->
        match !state with
        | None -> no_decision
        | Some s ->
          let plan = !plan_ref in
          let delay_ms = delay_of s plan in
          let tear_at =
            if len > 1 && chance s plan.tear_write then begin
              count s "tear";
              Some (1 + Random.State.int s.st (len - 1))
            end
            else None
          in
          let drop =
            if chance s plan.drop then begin
              count s "drop_write";
              true
            end
            else false
          in
          { delay_ms; tear_at; drop })

  (* Decision for one read attempt. *)
  let on_read () =
    Mutex.protect lock (fun () ->
        match !state with
        | None -> no_decision
        | Some s ->
          let plan = !plan_ref in
          let delay_ms = delay_of s plan in
          let drop =
            if chance s plan.drop then begin
              count s "drop_read";
              true
            end
            else false
          in
          { delay_ms; tear_at = None; drop })

  (* [true]: refuse (sever) this freshly accepted connection. *)
  let on_accept () =
    Mutex.protect lock (fun () ->
        match !state with
        | None -> false
        | Some s ->
          if chance s (!plan_ref).refuse_accept then begin
            count s "refuse_accept";
            true
          end
          else false)
end
