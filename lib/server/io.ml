(* Deadline-aware, fault-isolated I/O on raw file descriptors.

   The server's reader threads used to park in blocking [input_line]
   forever when a client went half-open; replies went through buffered
   channels whose short writes and EPIPEs surfaced as [Sys_error]
   strings.  This module replaces both with explicit fd I/O:

   - [read_line] waits in bounded [select] slices, so an idle timeout,
     a per-frame read deadline, a frame-size cap and an external stop
     condition are all enforced without signals or extra threads;
   - [write_all] loops over short writes ([EINTR]/[EAGAIN] included)
     and reports a severed peer as a value, never as an exception;
   - both paths consult {!Absolver_resource.Faults.Net} when the chaos
     harness is armed, applying its seeded decisions (delays, torn
     writes, mid-frame disconnects) at exactly the byte level a hostile
     network would.

   Every error is a value of {!event}; no exception escapes, so one
   connection's misbehaviour can never take down a sibling or the
   accept loop. *)

module Net = Absolver_resource.Faults.Net

type limits = {
  idle_timeout_s : float option;
  read_deadline_s : float option;
  max_frame_bytes : int;
}

let default_limits =
  {
    idle_timeout_s = Some 300.0;
    read_deadline_s = Some 30.0;
    max_frame_bytes = 64 * 1024 * 1024;
  }

let unlimited =
  { idle_timeout_s = None; read_deadline_s = None; max_frame_bytes = max_int }

type event =
  | Line of string
  | Eof
  | Idle_timeout
  | Read_deadline
  | Frame_too_large
  | Stopped
  | Io_error of string

(* The longest single [select] wait: the granularity at which external
   stop conditions (server shutdown, a dead peer detected by a writer)
   interrupt a blocked reader. *)
let slice_s = 0.25

type reader = {
  fd : Unix.file_descr;
  limits : limits;
  chaos : bool;  (* consult Faults.Net on this side of the connection *)
  should_stop : unit -> bool;
  busy : unit -> bool;  (* in-flight work parked on this connection? *)
  buf : Buffer.t;  (* bytes received, no complete line yet *)
  chunk : Bytes.t;
  mutable scanned : int;  (* prefix of [buf] known to be '\n'-free *)
  mutable last_activity : float;
  mutable frame_started : float option;  (* first byte of current frame *)
  mutable at_eof : bool;
}

let now () = Absolver_telemetry.Telemetry.Clock.now ()

let reader ?(limits = default_limits) ?(chaos = false)
    ?(should_stop = fun () -> false) ?(busy = fun () -> false) fd =
  {
    fd;
    limits;
    chaos;
    should_stop;
    busy;
    buf = Buffer.create 256;
    chunk = Bytes.create 8192;
    scanned = 0;
    last_activity = now ();
    frame_started = None;
    at_eof = false;
  }

let touch r = r.last_activity <- now ()

(* Sever a connection the way a hostile network would: the peer sees
   EOF / ECONNRESET, but the fd number stays valid until its owner
   closes it — chaos must never introduce double-close races. *)
let sever fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let apply_read_chaos r =
  if r.chaos && Net.armed () then begin
    let d = Net.on_read () in
    if d.Net.delay_ms > 0.0 then Unix.sleepf (d.Net.delay_ms /. 1000.0);
    if d.Net.drop then begin
      sever r.fd;
      true
    end
    else false
  end
  else false

(* Extract one complete line from [buf], if any.  [scanned] remembers
   how far previous calls already looked, so repeated reads of a long
   frame stay linear. *)
let take_line r =
  let s = Buffer.contents r.buf in
  match String.index_from_opt s r.scanned '\n' with
  | None ->
    r.scanned <- String.length s;
    None
  | Some i ->
    let line =
      if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
      else String.sub s 0 i
    in
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
    r.scanned <- 0;
    r.frame_started <- (if Buffer.length r.buf > 0 then Some (now ()) else None);
    Some line

(* One '\n'-terminated frame (the trailing ['\r'] of CRLF is stripped).
   Waits honour, in order: the external stop condition, the frame-size
   cap, the per-frame read deadline (counted from the frame's first
   byte) and the idle timeout (counted from the last activity, and only
   when no request of this connection is still in flight — a client
   quietly waiting for a long solve is not idle). *)
let read_line r =
  let rec go () =
    if r.should_stop () then Stopped
    else
      match take_line r with
      | Some line ->
        if String.length line > r.limits.max_frame_bytes then Frame_too_large
        else begin
          touch r;
          Line line
        end
      | None ->
        if Buffer.length r.buf > r.limits.max_frame_bytes then Frame_too_large
        else if r.at_eof then Eof
        else begin
          let t = now () in
          let deadline_hit =
            match (r.frame_started, r.limits.read_deadline_s) with
            | Some t0, Some d -> t -. t0 >= d
            | _ -> false
          in
          let idle_hit =
            match r.limits.idle_timeout_s with
            | Some d -> (not (r.busy ())) && t -. r.last_activity >= d
            | None -> false
          in
          if deadline_hit then Read_deadline
          else if idle_hit && r.frame_started = None then Idle_timeout
          else if idle_hit then Read_deadline
          else begin
            match Unix.select [ r.fd ] [] [] slice_s with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error (e, _, _) ->
              Io_error (Unix.error_message e)
            | [], _, _ -> go ()
            | _ :: _, _, _ ->
              if apply_read_chaos r then Eof
              else begin
                match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  go ()
                | exception
                    Unix.Unix_error
                      ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                  Eof
                | exception Unix.Unix_error (e, _, _) ->
                  Io_error (Unix.error_message e)
                | 0 ->
                  r.at_eof <- true;
                  go ()
                | n ->
                  touch r;
                  if r.frame_started = None then r.frame_started <- Some (now ());
                  Buffer.add_subbytes r.buf r.chunk 0 n;
                  go ()
              end
          end
        end
  in
  go ()

let pending_partial r = Buffer.length r.buf > 0

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

type write_error = Peer_closed | Write_error of string

(* Write the whole buffer, riding out short writes, EINTR and EAGAIN.
   A severed peer (EPIPE / ECONNRESET — SIGPIPE is ignored process-wide
   by the server) is reported as [Peer_closed].  With chaos armed on
   this side, the seeded plan may delay the write, tear it in two with
   a delay between the halves, or sever the connection mid-frame. *)
let write_all ?(chaos = false) fd s =
  let d =
    if chaos && Net.armed () then Net.on_write ~len:(String.length s)
    else Net.no_decision
  in
  if d.Net.delay_ms > 0.0 then Unix.sleepf (d.Net.delay_ms /. 1000.0);
  let b = Bytes.of_string s in
  let rec loop off len =
    if len = 0 then Ok ()
    else
      match Unix.write fd b off len with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match Unix.select [] [ fd ] [] slice_s with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off len
        | exception Unix.Unix_error (e, _, _) ->
          Error (Write_error (Unix.error_message e))
        | _ -> loop off len)
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN | Unix.EBADF), _, _)
        ->
        Error Peer_closed
      | exception Unix.Unix_error (e, _, _) ->
        Error (Write_error (Unix.error_message e))
      | n -> loop (off + n) (len - n)
  in
  match d.Net.tear_at with
  | Some k when k < String.length s && not d.Net.drop -> (
    match loop 0 k with
    | Error _ as e -> e
    | Ok () ->
      Unix.sleepf 0.001;
      loop k (String.length s - k))
  | _ ->
    if d.Net.drop then begin
      (* deliver a prefix, then sever mid-frame *)
      let k = max 1 (String.length s / 2) in
      ignore (loop 0 k);
      sever fd;
      Error Peer_closed
    end
    else loop 0 (String.length s)
