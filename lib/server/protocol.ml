module Q = Absolver_numeric.Rational
module Ab_problem = Absolver_core.Ab_problem
module Solution = Absolver_core.Solution
module Engine = Absolver_core.Engine

type format = F_dimacs | F_smt1

type request =
  | Solve of {
      format : format;
      problem : string;
      all_models : bool;
      limit : int option;
      timeout_ms : int option;
    }
  | Smt2_script of { script : string; timeout_ms : int option }
  | Stats
  | Metrics
  | Health
  | Quit

let parse_request line =
  match Sjson.parse line with
  | Error e -> Error e
  | Ok (Sjson.Obj _ as obj) ->
    let id = Option.value ~default:Sjson.Null (Sjson.member "id" obj) in
    let field name = Sjson.member name obj in
    let str_field name = Option.bind (field name) Sjson.get_string in
    let int_field name = Option.bind (field name) Sjson.get_int in
    let req =
      match str_field "op" with
      | None -> Error "missing op"
      | Some "solve" -> (
        match str_field "problem" with
        | None -> Error "solve: missing problem"
        | Some problem -> (
          match Option.value ~default:"dimacs" (str_field "format") with
          | "dimacs" ->
            Ok
              (Solve
                 {
                   format = F_dimacs;
                   problem;
                   all_models =
                     Option.value ~default:false
                       (Option.bind (field "all_models") Sjson.get_bool);
                   limit = int_field "limit";
                   timeout_ms = int_field "timeout_ms";
                 })
          | "smt1" | "smtlib" ->
            Ok
              (Solve
                 {
                   format = F_smt1;
                   problem;
                   all_models =
                     Option.value ~default:false
                       (Option.bind (field "all_models") Sjson.get_bool);
                   limit = int_field "limit";
                   timeout_ms = int_field "timeout_ms";
                 })
          | f -> Error (Printf.sprintf "unknown format %s" f)))
      | Some "smt2" -> (
        match str_field "script" with
        | None -> Error "smt2: missing script"
        | Some script ->
          Ok (Smt2_script { script; timeout_ms = int_field "timeout_ms" }))
      | Some "stats" -> Ok Stats
      | Some "metrics" -> Ok Metrics
      | Some "health" -> Ok Health
      | Some "exit" -> Ok Quit
      | Some op -> Error (Printf.sprintf "unknown op %s" op)
    in
    Ok (id, req)
  | Ok _ -> Error "request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let respond ~id ~status fields =
  Sjson.to_string
    (Sjson.Obj (("id", id) :: ("status", Sjson.Str status) :: fields))

let ok ~id fields = respond ~id ~status:"ok" fields
let rejected ~id reason = respond ~id ~status:"rejected" [ ("reason", Sjson.Str reason) ]
let error ~id msg = respond ~id ~status:"error" [ ("error", Sjson.Str msg) ]

let internal_error ~id msg =
  respond ~id ~status:"error"
    [ ("kind", Sjson.Str "internal_error"); ("error", Sjson.Str msg) ]

(* ------------------------------------------------------------------ *)
(* Canonical models                                                    *)
(* ------------------------------------------------------------------ *)

let model_to_string problem (sol : Solution.t) =
  let b = Buffer.create 64 in
  let bools =
    match Ab_problem.projection problem with
    | Some vars -> vars
    | None -> List.init (Ab_problem.num_bool_vars problem) Fun.id
  in
  Buffer.add_string b "b:";
  List.iter
    (fun v ->
      Buffer.add_char b
        (if v < Array.length sol.Solution.bools && sol.Solution.bools.(v) then
           '1'
         else '0'))
    bools;
  for i = 0 to Ab_problem.num_arith_vars problem - 1 do
    Buffer.add_char b ' ';
    Buffer.add_string b (Ab_problem.arith_var_name problem i);
    Buffer.add_char b '=';
    Buffer.add_string b
      (if i < Array.length sol.Solution.arith then
         match sol.Solution.arith.(i) with
         | Some (Solution.Exact q) -> Q.to_string q
         | Some (Solution.Approx f) -> Printf.sprintf "~%.17g" f
         | None -> "_"
       else "_")
  done;
  Buffer.contents b

let verdict_fields problem = function
  | Engine.R_sat sol ->
    [
      ("verdict", Sjson.Str "sat");
      ("model", Sjson.Str (model_to_string problem sol));
    ]
  | Engine.R_unsat -> [ ("verdict", Sjson.Str "unsat") ]
  | Engine.R_unknown why ->
    [ ("verdict", Sjson.Str "unknown"); ("reason", Sjson.Str why) ]
