(** The solve server's JSON wire protocol: one request object per line
    in, one response object per line out.

    Requests:
    {v
    {"id":1,"op":"solve","format":"dimacs","problem":"...","all_models":false,
     "limit":10,"timeout_ms":5000}
    {"id":2,"op":"smt2","script":"(declare-const x Real)...","timeout_ms":5000}
    {"id":3,"op":"stats"}   {"id":4,"op":"health"}   {"id":5,"op":"exit"}
    {"id":6,"op":"metrics"}
    v}

    Responses echo the request's [id] verbatim and carry
    ["status":"ok"], ["status":"rejected"] (admission control, with a
    [reason]) or ["status":"error"] (with an [error]).  The [id] of a
    line that could not even be parsed is [null].

    [metrics] answers with a single ["metrics"] string field holding the
    server aggregate in Prometheus text-exposition format (counters,
    gauges, latency/allocation histograms, span totals).  When the
    server was started with request tracing, [solve] and [smt2]
    responses additionally echo ["trace_id"] and ["span_id"] — the keys
    to slice the JSONL trace by request. *)

type format = F_dimacs | F_smt1

type request =
  | Solve of {
      format : format;
      problem : string;
      all_models : bool;
      limit : int option;
      timeout_ms : int option;
    }
  | Smt2_script of { script : string; timeout_ms : int option }
  | Stats
  | Metrics
  | Health
  | Quit

val parse_request : string -> (Sjson.t * (request, string) result, string) result
(** [Ok (id, req)] when the line is a JSON object (the [id] defaults to
    [null]; [req] is [Error reason] on an unknown op or missing field,
    so the reply can still echo the id).  [Error] only when the line is
    not parseable JSON at all. *)

(** {1 Responses} *)

val ok : id:Sjson.t -> (string * Sjson.t) list -> string
val rejected : id:Sjson.t -> string -> string
val error : id:Sjson.t -> string -> string

val internal_error : id:Sjson.t -> string -> string
(** An ["error"] response with ["kind":"internal_error"]: the request
    itself was well-formed but its execution escaped the lane's panic
    barrier.  The connection stays usable — only this request failed. *)

(** {1 Canonical model rendering}

    Shared between the server and the differential test suite so
    "byte-identical models" is a string comparison. *)

val model_to_string :
  Absolver_core.Ab_problem.t -> Absolver_core.Solution.t -> string
(** Deterministic one-line rendering: the projected Boolean assignment
    as a bit string, then each arithmetic variable by name — exact
    rationals verbatim, approximations as [~]-prefixed floats at full
    precision, unconstrained variables as [_]. *)

val verdict_fields :
  Absolver_core.Ab_problem.t ->
  Absolver_core.Engine.result ->
  (string * Sjson.t) list
(** The response fields for a single-solution verdict: ["verdict"] plus
    ["model"] (sat) or ["reason"] (unknown). *)
