(** Minimal JSON values for the solve server's wire protocol.

    The container ships no JSON library, and the protocol needs only
    scalars, arrays and objects — so this is a small, total
    recursive-descent parser plus a printer.  Numbers are [float]s
    (ints round-trip exactly up to 2^53, far beyond any id or timeout
    the protocol carries); strings support the standard escapes and
    [\uXXXX] (encoded back out as UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** One JSON value; trailing non-whitespace is an error (the server
    frames one value per line).  Adversarial input is rejected with a
    byte offset in the diagnostic, never a crash: nesting is capped at
    512 containers (no stack overflow), documents at 1M values (field
    and item counts included), and unterminated strings/escapes report
    where the string opened. *)

val to_string : t -> string
(** Canonical one-line rendering: no added whitespace, object fields in
    given order, integral numbers printed without a decimal point. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val get_string : t -> string option
val get_int : t -> int option
val get_bool : t -> bool option
