type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Err of string

let failf fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* Adversarial-input bounds: a parse may nest at most [max_depth]
   containers (deeper input would otherwise overflow the OCaml stack
   long before memory runs out) and allocate at most [max_nodes] values
   across the whole document (caps object field and array item counts
   without a per-container knob).  Both limits reject with a byte
   offset, like every other diagnostic here. *)
let max_depth = 512
let max_nodes = 1_000_000

type cursor = { text : string; mutable pos : int; mutable nodes : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text
    &&
    match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some d when d = ch -> c.pos <- c.pos + 1
  | Some d -> failf "expected '%c', got '%c' at %d" ch d c.pos
  | None -> failf "expected '%c', got end of input" ch

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else failf "invalid literal at %d" c.pos

let utf8_encode b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body c =
  let started = c.pos - 1 in
  let b = Buffer.create 16 in
  let fin = ref false in
  while not !fin do
    match peek c with
    | None -> failf "unterminated string (opened at byte %d)" started
    | Some '"' ->
      c.pos <- c.pos + 1;
      fin := true
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      match peek c with
      | None -> failf "unterminated escape (string opened at byte %d)" started
      | Some e ->
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.text then failf "truncated \\u escape";
          let hex = String.sub c.text c.pos 4 in
          c.pos <- c.pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> utf8_encode b code
          | None -> failf "invalid \\u escape %s" hex)
        | e -> failf "invalid escape \\%c" e))
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char b ch
  done;
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while
    c.pos < String.length c.text && is_num_char c.text.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> failf "invalid number %s" s

let rec parse_value depth c =
  c.nodes <- c.nodes + 1;
  if c.nodes > max_nodes then
    failf "document too large (over %d values) at byte %d" max_nodes c.pos;
  if depth > max_depth then
    failf "nesting deeper than %d at byte %d" max_depth c.pos;
  skip_ws c;
  match peek c with
  | None -> failf "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let fin = ref false in
      while not !fin do
        skip_ws c;
        expect c '"';
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value (depth + 1) c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> c.pos <- c.pos + 1
        | Some '}' ->
          c.pos <- c.pos + 1;
          fin := true
        | _ -> failf "expected ',' or '}' at %d" c.pos
      done;
      Obj (List.rev !fields)
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let items = ref [] in
      let fin = ref false in
      while not !fin do
        let v = parse_value (depth + 1) c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> c.pos <- c.pos + 1
        | Some ']' ->
          c.pos <- c.pos + 1;
          fin := true
        | _ -> failf "expected ',' or ']' at %d" c.pos
      done;
      Arr (List.rev !items)
    end
  | Some '"' ->
    c.pos <- c.pos + 1;
    Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> failf "unexpected character '%c' at %d" ch c.pos

let parse text =
  match
    let c = { text; pos = 0; nodes = 0 } in
    let v = parse_value 0 c in
    skip_ws c;
    if c.pos <> String.length text then failf "trailing input at %d" c.pos;
    v
  with
  | v -> Ok v
  | exception Err msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.9g" f
  else "null"

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f -> num_to_string f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) fields)
    ^ "}"

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let get_string = function Str s -> Some s | _ -> None

let get_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
