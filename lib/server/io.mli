(** Deadline-aware, fault-isolated I/O on raw file descriptors
    (DESIGN.md Sec. 15).

    The server's connection I/O in both directions: bounded-wait line
    reads with an idle timeout, a per-frame read deadline and a
    frame-size cap; partial-write-safe framed replies that report a
    severed peer as a value instead of raising.  When the chaos harness
    ({!Absolver_resource.Faults.Net}) is armed, both paths apply its
    seeded decisions — delays, torn writes, mid-frame disconnects — on
    the side that created the reader/writer with [~chaos:true] (the
    server's side in the differential suite, so the reconnecting client
    under test faces the hostile network, not its own stack). *)

type limits = {
  idle_timeout_s : float option;
      (** reclaim a connection after this much inactivity — counted
          from the last byte received or reply written, and suspended
          while a request of this connection is still in flight.
          [None]: never. *)
  read_deadline_s : float option;
      (** a frame, once its first byte arrived, must complete within
          this bound.  [None]: unbounded. *)
  max_frame_bytes : int;
      (** cap on one frame's size; an overrun is reported as
          {!Frame_too_large} before further input is buffered, so
          adversarial input cannot OOM the daemon. *)
}

val default_limits : limits
(** 300 s idle, 30 s per frame, 64 MiB frames. *)

val unlimited : limits
(** No timeouts, no cap — the pre-hardening behaviour, for tests. *)

type event =
  | Line of string  (** one frame, ['\n'] consumed, [CRLF] stripped *)
  | Eof  (** orderly peer close (a torn trailing partial is dropped) *)
  | Idle_timeout
  | Read_deadline
  | Frame_too_large
  | Stopped  (** the [should_stop] condition became true *)
  | Io_error of string

type reader

val reader :
  ?limits:limits ->
  ?chaos:bool ->
  ?should_stop:(unit -> bool) ->
  ?busy:(unit -> bool) ->
  Unix.file_descr ->
  reader
(** A buffered line reader over [fd].  [should_stop] is polled at least
    every 250 ms while blocked (server shutdown, peer declared dead by
    the write path); [busy] suspends the idle timeout while this
    connection has requests in flight. *)

val read_line : reader -> event
(** Block (in bounded slices) until one complete line, a timeout, EOF
    or an error.  Never raises. *)

val touch : reader -> unit
(** Record activity (a reply written), resetting the idle clock. *)

val pending_partial : reader -> bool
(** Bytes of an incomplete frame are buffered (a torn frame at EOF). *)

type write_error = Peer_closed | Write_error of string

val write_all : ?chaos:bool -> Unix.file_descr -> string -> (unit, write_error) result
(** Write the whole string, riding out short writes, [EINTR] and
    [EAGAIN].  [EPIPE]/[ECONNRESET] (the peer vanished — SIGPIPE is
    ignored process-wide by the server) is [Error Peer_closed].  Never
    raises. *)

val sever : Unix.file_descr -> unit
(** [shutdown] both directions, ignoring errors; never closes (the fd's
    owner does), so chaos cannot introduce double-close races. *)
