module Budget = Absolver_resource.Budget
module Telemetry = Absolver_telemetry.Telemetry
module Prometheus = Absolver_telemetry.Prometheus
module Clock = Absolver_telemetry.Telemetry.Clock
module Pool = Absolver_parallel.Pool
module Engine = Absolver_core.Engine
module Registry = Absolver_core.Registry
module Dimacs = Absolver_core.Dimacs_ext
module Smt_parser = Absolver_smtlib.Parser
module To_ab = Absolver_smtlib.To_ab
module Smt2 = Absolver_smtlib.Smt2

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  max_clients : int;
  client_cap : int;
  queue_capacity : int;
  workers : int;
  default_timeout_ms : int option;
  engine_options : Engine.options;
  registry : unit -> Registry.t * (unit -> unit);
  trace : out_channel option;
  slow_log : out_channel option;
  slow_ms : float;
}

let default_registry () =
  let solver, dispose = Registry.persistent_simplex () in
  ({ Registry.default with Registry.linear = [ solver ] }, dispose)

let default_config =
  {
    max_clients = 32;
    client_cap = 8;
    queue_capacity = 64;
    workers = max 1 (min 4 (Pool.available_cores () - 1));
    default_timeout_ms = Some 30_000;
    engine_options = Engine.default_options;
    registry = default_registry;
    trace = None;
    slow_log = None;
    slow_ms = 100.0;
  }

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  exec : Pool.Executor.t;
  tel : Telemetry.t;
  tel_lock : Mutex.t;
  slow_lock : Mutex.t;
  root : Budget.t;  (* cancellable umbrella over every request budget *)
  started : float;
  clients : int Atomic.t;
  total_clients : int Atomic.t;
  lock : Mutex.t;
  mutable listener : Unix.file_descr option;
  mutable client_fds : Unix.file_descr list;
  mutable stopping : bool;
}

let create ?(config = default_config) () =
  {
    config;
    exec =
      Pool.Executor.create ~queue_capacity:config.queue_capacity
        ~workers:config.workers ();
    tel = Telemetry.create ?trace:config.trace ();
    tel_lock = Mutex.create ();
    slow_lock = Mutex.create ();
    root = Budget.create ();
    started = Clock.wall ();
    clients = Atomic.make 0;
    total_clients = Atomic.make 0;
    lock = Mutex.create ();
    listener = None;
    client_fds = [];
    stopping = false;
  }

let tracing srv = srv.config.trace <> None

(* The server-side aggregate is one Telemetry handle shared by every
   worker domain, so all access goes through [tel_lock] (solve/smt2
   requests additionally record into a per-request fork of this handle,
   merged back at request end — see [begin_request]). *)
let bump srv name n =
  Mutex.protect srv.tel_lock (fun () -> Telemetry.add srv.tel name n)

let observe srv name v =
  Mutex.protect srv.tel_lock (fun () -> Telemetry.observe srv.tel name v)

let set_gauge srv name v =
  Mutex.protect srv.tel_lock (fun () -> Telemetry.set_gauge srv.tel name v)

let budget_for srv timeout_ms =
  let ms =
    match timeout_ms with
    | Some _ as m -> m
    | None -> srv.config.default_timeout_ms
  in
  match ms with
  | Some m when m > 0 ->
    Budget.child srv.root ~deadline_seconds:(float_of_int m /. 1000.) ()
  | _ -> Budget.child srv.root ()

let absorb_run_stats srv (rs : Engine.run_stats) =
  Mutex.protect srv.tel_lock (fun () ->
      Telemetry.add srv.tel "server.lp_cache_hits" rs.Engine.lp_cache_hits;
      Telemetry.add srv.tel "server.lp_cache_misses" rs.Engine.lp_cache_misses;
      if rs.Engine.budget_exhausted <> None then
        Telemetry.add srv.tel "server.budget_trips" 1)

(* ------------------------------------------------------------------ *)
(* Per-request trace context                                           *)
(*                                                                     *)
(* Every solve/smt2 request gets a fresh trace id and a fork of the    *)
(* server handle with one [server.request] root span.  The fork shares *)
(* the server's trace sink and span-id space, so engine spans — and    *)
(* their further forks across the domain pool — stitch into a single   *)
(* connected tree per request in the JSONL stream; aggregates          *)
(* (counters, span totals, pivot/depth/allocation histograms) merge    *)
(* back into the long-running server handle at request end.            *)
(* ------------------------------------------------------------------ *)

type req = {
  rq_op : string;
  rq_trace_id : string;
  rq_tel : Telemetry.t;
  rq_span : int;
  rq_started : float;
  rq_alloc0 : float;
}

(* Words allocated by this domain so far.  A request runs entirely on
   one executor worker domain (the lane serializes it), so the delta
   across the request is its own allocation. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let begin_request srv ~op ~enqueued =
  let rq_trace_id = Telemetry.mint_trace_id () in
  let rq_tel = Telemetry.fork ~parent:(-1) ~trace_id:rq_trace_id srv.tel in
  let rq_started = Clock.now () in
  let queue_wait_ms = Float.max 0.0 ((rq_started -. enqueued) *. 1000.) in
  Telemetry.observe rq_tel "server.queue_wait_ms" queue_wait_ms;
  let rq_span =
    Telemetry.span_open rq_tel "server.request"
      ~attrs:
        [
          ("op", Telemetry.String op);
          ("queue_wait_ms", Telemetry.Float queue_wait_ms);
        ]
  in
  { rq_op = op; rq_trace_id; rq_tel; rq_span; rq_started; rq_alloc0 = allocated_words () }

let request_options srv rq budget =
  { srv.config.engine_options with Engine.budget; telemetry = rq.rq_tel }

let log_slow srv rq ~verdict ~latency_ms ~(run_stats : Engine.run_stats option) =
  match srv.config.slow_log with
  | Some oc when latency_ms >= srv.config.slow_ms ->
    let module J = Telemetry.Json in
    let quoted s = Printf.sprintf "\"%s\"" (J.escape s) in
    let budget_outcome =
      match run_stats with
      | Some rs -> (
        match rs.Engine.budget_exhausted with
        | Some e -> quoted (Absolver_resource.Absolver_error.to_string e)
        | None -> "null")
      | None -> "null"
    in
    let lp_cache_hits =
      match run_stats with Some rs -> rs.Engine.lp_cache_hits | None -> 0
    in
    let line =
      J.obj
        [
          ("type", "\"slow_query\"");
          ("t", J.of_float (Clock.wall ()));
          ("op", quoted rq.rq_op);
          ("verdict", quoted verdict);
          ("latency_ms", J.of_float latency_ms);
          ("budget", budget_outcome);
          ("lp_cache_hits", string_of_int lp_cache_hits);
          ("trace_id", quoted rq.rq_trace_id);
        ]
    in
    Mutex.protect srv.slow_lock (fun () ->
        try
          output_string oc line;
          output_char oc '\n';
          flush oc
        with Sys_error _ -> ())
  | _ -> ()

let end_request srv rq ~verdict ~run_stats =
  let latency_ms = (Clock.now () -. rq.rq_started) *. 1000. in
  let alloc = Float.max 0.0 (allocated_words () -. rq.rq_alloc0) in
  Telemetry.observe rq.rq_tel "server.request_alloc_words" alloc;
  Telemetry.observe rq.rq_tel "server.latency_ms" latency_ms;
  Telemetry.span_close rq.rq_tel rq.rq_span
    ~attrs:
      [
        ("verdict", Telemetry.String verdict);
        ("latency_ms", Telemetry.Float latency_ms);
      ];
  Telemetry.flush rq.rq_tel;
  Mutex.protect srv.tel_lock (fun () ->
      Telemetry.merge srv.tel rq.rq_tel;
      Telemetry.add srv.tel ("server." ^ rq.rq_op) 1);
  (match run_stats with Some rs -> absorb_run_stats srv rs | None -> ());
  log_slow srv rq ~verdict ~latency_ms ~run_stats

(* Extra response fields when tracing is on: the keys to slice the
   JSONL stream by request.  Silent otherwise, keeping the default
   wire format byte-identical. *)
let trace_fields srv rq =
  if tracing srv then
    [
      ("trace_id", Sjson.Str rq.rq_trace_id);
      ("span_id", Sjson.Num (float_of_int rq.rq_span));
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Stats / health payloads                                             *)
(* ------------------------------------------------------------------ *)

let stats_fields srv =
  let pool_fields =
    [
      ("workers", Sjson.Num (float_of_int (Pool.Executor.workers srv.exec)));
      ("in_flight", Sjson.Num (float_of_int (Pool.Executor.in_flight srv.exec)));
      ("queued", Sjson.Num (float_of_int (Pool.Executor.queued srv.exec)));
      ("submitted", Sjson.Num (float_of_int (Pool.Executor.submitted srv.exec)));
      ("completed", Sjson.Num (float_of_int (Pool.Executor.completed srv.exec)));
    ]
  in
  Mutex.protect srv.tel_lock (fun () ->
      let c name = Sjson.Num (float_of_int (Telemetry.counter srv.tel name)) in
      (* One source of truth for latency: the same mergeable histogram
         the Prometheus exporter renders. *)
      let latency =
        match Telemetry.histogram srv.tel "server.latency_ms" with
        | Some h ->
          [
            ("count", Sjson.Num (float_of_int h.Telemetry.h_count));
            ("p50_ms", Sjson.Num (Telemetry.hist_quantile h 0.50));
            ("p95_ms", Sjson.Num (Telemetry.hist_quantile h 0.95));
            ("p99_ms", Sjson.Num (Telemetry.hist_quantile h 0.99));
            ("max_ms", Sjson.Num h.Telemetry.h_max);
          ]
        | None -> [ ("count", Sjson.Num 0.) ]
      in
      [
        ( "queries",
          Sjson.Obj
            [
              ("solve", c "server.solve");
              ("smt2", c "server.smt2");
              ("stats", c "server.stats");
              ("health", c "server.health");
            ] );
        ( "verdicts",
          Sjson.Obj
            [
              ("sat", c "server.sat");
              ("unsat", c "server.unsat");
              ("unknown", c "server.unknown");
            ] );
        ("rejected", c "server.rejected");
        ("budget_trips", c "server.budget_trips");
        ("latency_ms", Sjson.Obj latency);
        ( "pool",
          Sjson.Obj
            (pool_fields
            @ [
                (* last sampled at an enqueue/dequeue edge, vs the
                   instantaneous [queued] probe above *)
                ( "queue_depth",
                  Sjson.Num
                    (Option.value ~default:0.
                       (List.assoc_opt "pool.queue_depth"
                          (Telemetry.gauges srv.tel))) );
              ]) );
        ( "lp_cache",
          Sjson.Obj
            [
              ("hits", c "server.lp_cache_hits");
              ("misses", c "server.lp_cache_misses");
            ] );
        ( "clients",
          Sjson.Obj
            [
              ("active", Sjson.Num (float_of_int (Atomic.get srv.clients)));
              ("total", Sjson.Num (float_of_int (Atomic.get srv.total_clients)));
            ] );
        ("uptime_s", Sjson.Num (Clock.wall () -. srv.started));
      ])

let stats_json srv = Sjson.to_string (Sjson.Obj (stats_fields srv))

(* Prometheus text exposition of the whole aggregate.  Liveness gauges
   are refreshed at render time so a scrape always sees current
   occupancy, not the last request's. *)
let metrics_text srv =
  Mutex.protect srv.tel_lock (fun () ->
      Telemetry.set_gauge srv.tel "server.uptime_s"
        (Clock.wall () -. srv.started);
      Telemetry.set_gauge srv.tel "server.clients_active"
        (float_of_int (Atomic.get srv.clients));
      Telemetry.set_gauge srv.tel "server.clients_total"
        (float_of_int (Atomic.get srv.total_clients));
      Telemetry.set_gauge srv.tel "pool.workers"
        (float_of_int (Pool.Executor.workers srv.exec));
      Telemetry.set_gauge srv.tel "pool.in_flight"
        (float_of_int (Pool.Executor.in_flight srv.exec));
      Telemetry.set_gauge srv.tel "pool.queued"
        (float_of_int (Pool.Executor.queued srv.exec));
      Prometheus.render srv.tel)

let health_fields srv =
  [
    ("health", Sjson.Str (if srv.stopping then "stopping" else "ok"));
    ("accepting", Sjson.Bool (not srv.stopping));
    ("uptime_s", Sjson.Num (Clock.wall () -. srv.started));
    ("clients", Sjson.Num (float_of_int (Atomic.get srv.clients)));
    ("workers", Sjson.Num (float_of_int (Pool.Executor.workers srv.exec)));
    ("in_flight", Sjson.Num (float_of_int (Pool.Executor.in_flight srv.exec)));
    ("queued", Sjson.Num (float_of_int (Pool.Executor.queued srv.exec)));
  ]

(* ------------------------------------------------------------------ *)
(* Per-client serial lanes                                             *)
(*                                                                     *)
(* Each connection owns a FIFO of request jobs; at most one is ever    *)
(* submitted to the executor at a time, and the next is submitted only *)
(* from the previous one's completion — so a client's responses come   *)
(* back in request order (deterministic for scripted sessions), the    *)
(* client's warm simplex session and smt2 state are never touched by   *)
(* two domains at once, and fairness across clients falls out of the   *)
(* executor's FIFO: C clients have at most C jobs in the global queue. *)
(* ------------------------------------------------------------------ *)

type entry = { run : unit -> unit; entry_reject : string -> unit }

type client = {
  srv : t;
  oc : out_channel;
  out_lock : Mutex.t;
  m : Mutex.t;
  cv : Condition.t;
  q : entry Queue.t;
  mutable busy : bool;
  registry : Registry.t;
  dispose : unit -> unit;
  smt2 : Smt2.session;
}

let write_line c line =
  Mutex.protect c.out_lock (fun () ->
      try
        output_string c.oc line;
        output_char c.oc '\n';
        flush c.oc
      with Sys_error _ -> ())

(* Requires [c.m] held.  On executor rejection the job is answered
   immediately (out of band) and the lane moves on — the reader is
   never blocked and nothing is silently dropped. *)
let sample_queue_depth srv =
  set_gauge srv "pool.queue_depth"
    (float_of_int (Pool.Executor.queued srv.exec))

let rec pump c =
  if (not c.busy) && not (Queue.is_empty c.q) then begin
    let e = Queue.pop c.q in
    c.busy <- true;
    match
      Pool.Executor.submit c.srv.exec (fun () ->
          sample_queue_depth c.srv;
          (try e.run () with _ -> ());
          Mutex.protect c.m (fun () ->
              c.busy <- false;
              pump c;
              Condition.broadcast c.cv))
    with
    | Pool.Executor.Submitted ->
      sample_queue_depth c.srv
    | Pool.Executor.Rejected reason ->
      c.busy <- false;
      bump c.srv "server.rejected" 1;
      e.entry_reject reason;
      Condition.broadcast c.cv;
      pump c
  end

(* Flow control, not load shedding: a client that sends faster than it
   solves blocks its own reader at [client_cap] pending requests (the
   socket's kernel buffer backs further input up to the peer), so a
   scripted session is never torn by its own burstiness.  Rejection
   with a reason is reserved for genuine saturation: the executor's
   bounded global queue and the [max_clients] connection cap. *)
let enqueue c e =
  Mutex.protect c.m (fun () ->
      while
        Queue.length c.q >= c.srv.config.client_cap && not c.srv.stopping
      do
        Condition.wait c.cv c.m
      done;
      Queue.add e c.q;
      pump c)

let drain c =
  Mutex.protect c.m (fun () ->
      while c.busy || not (Queue.is_empty c.q) do
        Condition.wait c.cv c.m
      done)

(* ------------------------------------------------------------------ *)
(* JSON request execution (runs on a worker domain)                    *)
(* ------------------------------------------------------------------ *)

let finish_query c ~started ~op =
  observe c.srv "server.latency_ms" ((Clock.now () -. started) *. 1000.);
  bump c.srv ("server." ^ op) 1

let run_solve c ~id ~format ~problem ~all_models ~limit ~timeout_ms ~enqueued
    () =
  let rq = begin_request c.srv ~op:"solve" ~enqueued in
  let budget = budget_for c.srv timeout_ms in
  let parsed =
    match format with
    | Protocol.F_dimacs -> Dimacs.parse_string problem
    | Protocol.F_smt1 -> (
      match Smt_parser.parse_benchmark problem with
      | Error e -> Error e
      | Ok b -> To_ab.convert b)
  in
  let line, verdict, run_stats =
    match parsed with
    | Error e -> (Protocol.error ~id ("parse error: " ^ e), "parse_error", None)
    | Ok prob ->
      let options = request_options c.srv rq budget in
      if all_models then begin
        match Engine.all_models ~registry:c.registry ~options ?limit prob with
        | Error e -> (Protocol.error ~id e, "error", None)
        | Ok (models, rs) ->
          bump c.srv "server.sat" (List.length models);
          ( Protocol.ok ~id
              ([
                 ("verdict", Sjson.Str "models");
                 ("count", Sjson.Num (float_of_int (List.length models)));
                 ( "models",
                   Sjson.Arr
                     (List.map
                        (fun m -> Sjson.Str (Protocol.model_to_string prob m))
                        models) );
               ]
              @ trace_fields c.srv rq),
            "models",
            Some rs )
      end
      else begin
        let result, rs = Engine.solve ~registry:c.registry ~options prob in
        let verdict =
          match result with
          | Engine.R_sat _ -> "sat"
          | Engine.R_unsat -> "unsat"
          | Engine.R_unknown _ -> "unknown"
        in
        bump c.srv ("server." ^ verdict) 1;
        ( Protocol.ok ~id
            (Protocol.verdict_fields prob result @ trace_fields c.srv rq),
          verdict,
          Some rs )
      end
  in
  end_request c.srv rq ~verdict ~run_stats;
  write_line c line

let run_smt2 c ~id ~script ~timeout_ms ~enqueued () =
  let rq = begin_request c.srv ~op:"smt2" ~enqueued in
  let budget = budget_for c.srv timeout_ms in
  let check =
    Smt2.engine_check ~registry:c.registry
      ~options:(request_options c.srv rq budget) ()
  in
  let replies, exited = Smt2.run_string c.smt2 ~check script in
  end_request c.srv rq ~verdict:"-" ~run_stats:None;
  write_line c
    (Protocol.ok ~id
       (("replies", Sjson.Arr (List.map (fun s -> Sjson.Str s) replies))
       :: ((if exited then [ ("exited", Sjson.Bool true) ] else [])
          @ trace_fields c.srv rq)))

let handle_json_line c stop_reading line =
  match Protocol.parse_request line with
  | Error e ->
    write_line c (Protocol.error ~id:Sjson.Null ("bad request: " ^ e))
  | Ok (id, Error e) -> write_line c (Protocol.error ~id e)
  | Ok (id, Ok req) -> (
    let entry_reject reason = write_line c (Protocol.rejected ~id reason) in
    match req with
    | Protocol.Quit ->
      stop_reading := true;
      enqueue c
        {
          run =
            (fun () -> write_line c (Protocol.ok ~id [ ("bye", Sjson.Bool true) ]));
          entry_reject;
        }
    | Protocol.Stats ->
      enqueue c
        {
          run =
            (fun () ->
              let started = Clock.now () in
              let fields = stats_fields c.srv in
              finish_query c ~started ~op:"stats";
              write_line c (Protocol.ok ~id [ ("stats", Sjson.Obj fields) ]));
          entry_reject;
        }
    | Protocol.Metrics ->
      enqueue c
        {
          run =
            (fun () ->
              let started = Clock.now () in
              let text = metrics_text c.srv in
              finish_query c ~started ~op:"metrics";
              write_line c (Protocol.ok ~id [ ("metrics", Sjson.Str text) ]));
          entry_reject;
        }
    | Protocol.Health ->
      enqueue c
        {
          run =
            (fun () ->
              let started = Clock.now () in
              let fields = health_fields c.srv in
              finish_query c ~started ~op:"health";
              write_line c (Protocol.ok ~id fields));
          entry_reject;
        }
    | Protocol.Solve { format; problem; all_models; limit; timeout_ms } ->
      let enqueued = Clock.now () in
      enqueue c
        {
          run =
            run_solve c ~id ~format ~problem ~all_models ~limit ~timeout_ms
              ~enqueued;
          entry_reject;
        }
    | Protocol.Smt2_script { script; timeout_ms } ->
      let enqueued = Clock.now () in
      enqueue c { run = run_smt2 c ~id ~script ~timeout_ms ~enqueued; entry_reject })

(* ------------------------------------------------------------------ *)
(* SMT-LIB 2 framing                                                   *)
(* ------------------------------------------------------------------ *)

let smt2_error_line reason =
  let b = Buffer.create (String.length reason + 12) in
  Buffer.add_string b "(error \"";
  String.iter
    (fun ch ->
      if ch = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b ch)
    reason;
  Buffer.add_string b "\")";
  Buffer.contents b

(* Commands are parsed on the reader thread (cheap, and it lets the
   reader see [exit]); execution — which may run a check-sat — goes
   through the lane like every other request. *)
let handle_smt2_form c stop_reading form =
  if not !stop_reading then begin
    let entry_reject reason = write_line c (smt2_error_line reason) in
    let enqueue_error e =
      enqueue c { run = (fun () -> write_line c (smt2_error_line e)); entry_reject }
    in
    match Smt_parser.parse_sexps form with
    | Error e -> enqueue_error e
    | Ok sexps ->
      List.iter
        (fun sx ->
          if not !stop_reading then
            match Smt2.parse_command sx with
            | Error e -> enqueue_error e
            | Ok cmd ->
              if cmd = Smt2.Exit then stop_reading := true;
              let enqueued = Clock.now () in
              enqueue c
                {
                  run =
                    (fun () ->
                      (* Only [check-sat] runs the engine; it alone gets
                         the per-request trace context and latency
                         accounting, like a JSON solve. *)
                      match cmd with
                      | Smt2.Check_sat ->
                        let rq = begin_request c.srv ~op:"smt2" ~enqueued in
                        let budget = budget_for c.srv None in
                        let check =
                          Smt2.engine_check ~registry:c.registry
                            ~options:(request_options c.srv rq budget) ()
                        in
                        let reply = Smt2.execute c.smt2 ~check cmd in
                        let verdict =
                          match reply with
                          | Smt2.R_sat -> "sat"
                          | Smt2.R_unsat -> "unsat"
                          | _ -> "unknown"
                        in
                        bump c.srv ("server." ^ verdict) 1;
                        end_request c.srv rq ~verdict ~run_stats:None;
                        (match Smt2.render c.smt2 reply with
                        | Some line -> write_line c line
                        | None -> ());
                        (* SMT-LIB has no response metadata slot, so the
                           trace keys ride an info comment — parsers
                           skip [;] lines by definition. *)
                        if tracing c.srv then
                          write_line c
                            (Printf.sprintf "; trace_id=%s span_id=%d"
                               rq.rq_trace_id rq.rq_span)
                      | _ -> (
                        let budget = budget_for c.srv None in
                        let check =
                          Smt2.engine_check ~registry:c.registry
                            ~options:
                              {
                                c.srv.config.engine_options with
                                Engine.budget;
                                telemetry = Telemetry.disabled;
                              }
                            ()
                        in
                        let reply = Smt2.execute c.smt2 ~check cmd in
                        match Smt2.render c.smt2 reply with
                        | Some line -> write_line c line
                        | None -> ()));
                  entry_reject;
                })
        sexps
  end

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let serve_channel srv ic oc =
  if Atomic.get srv.clients >= srv.config.max_clients then begin
    (try
       output_string oc
         (Protocol.rejected ~id:Sjson.Null
            (Printf.sprintf "server at max clients (%d)" srv.config.max_clients));
       output_char oc '\n';
       flush oc
     with Sys_error _ -> ())
  end
  else begin
    Atomic.incr srv.clients;
    Atomic.incr srv.total_clients;
    let registry, dispose = srv.config.registry () in
    let c =
      {
        srv;
        oc;
        out_lock = Mutex.create ();
        m = Mutex.create ();
        cv = Condition.create ();
        q = Queue.create ();
        busy = false;
        registry;
        dispose;
        smt2 = Smt2.create ();
      }
    in
    let stop_reading = ref false in
    let mode = ref `Undecided in
    let buf = Buffer.create 256 in
    (try
       while (not !stop_reading) && not srv.stopping do
         match input_line ic with
         | exception End_of_file -> stop_reading := true
         | line -> (
           let trimmed = String.trim line in
           match !mode with
           | `Undecided when trimmed = "" -> ()
           | _ -> (
             let m =
               match !mode with
               | `Undecided ->
                 (* framing auto-detection: a JSON request line must
                    start with '{'; anything else is an smt2 stream *)
                 let m = if trimmed.[0] = '{' then `Json else `Smt2 in
                 mode := m;
                 m
               | (`Json | `Smt2) as m -> m
             in
             match m with
             | `Json -> handle_json_line c stop_reading line
             | `Smt2 ->
               Buffer.add_string buf line;
               Buffer.add_char buf '\n';
               let forms, rest = Smt2.split_complete (Buffer.contents buf) in
               Buffer.clear buf;
               Buffer.add_string buf rest;
               List.iter (handle_smt2_form c stop_reading) forms))
       done
     with Sys_error _ -> ());
    drain c;
    c.dispose ();
    Atomic.decr srv.clients
  end

let serve_socket srv ~path =
  match
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind sock (Unix.ADDR_UNIX path);
       Unix.listen sock 64
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    sock
  with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | sock ->
    Mutex.protect srv.lock (fun () -> srv.listener <- Some sock);
    if srv.stopping then (try Unix.close sock with Unix.Unix_error _ -> ());
    let threads = ref [] in
    let rec loop () =
      if not srv.stopping then
        match Unix.accept sock with
        | exception
            Unix.Unix_error
              ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
          ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | fd, _ ->
          if srv.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
          else begin
            Mutex.protect srv.lock (fun () ->
                srv.client_fds <- fd :: srv.client_fds);
            let th =
              Thread.create
                (fun () ->
                  let ic = Unix.in_channel_of_descr fd in
                  let oc = Unix.out_channel_of_descr fd in
                  (try serve_channel srv ic oc with _ -> ());
                  Mutex.protect srv.lock (fun () ->
                      srv.client_fds <-
                        List.filter (fun f -> f != fd) srv.client_fds);
                  (try Unix.shutdown fd Unix.SHUTDOWN_ALL
                   with Unix.Unix_error _ -> ());
                  try Unix.close fd with Unix.Unix_error _ -> ())
                ()
            in
            threads := th :: !threads;
            loop ()
          end
    in
    loop ();
    List.iter Thread.join !threads;
    Mutex.protect srv.lock (fun () -> srv.listener <- None);
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    Ok ()

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

(* Deliberately lock-free (reads of [listener]/[client_fds] may race
   with the accept loop, harmlessly — readers also poll [stopping]):
   this must be safe to call from a SIGTERM handler. *)
let request_stop srv =
  srv.stopping <- true;
  Budget.cancel srv.root;
  (match srv.listener with
  | Some fd -> (
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    srv.client_fds

let shutdown srv =
  request_stop srv;
  let deadline = Clock.now () +. 10.0 in
  while Atomic.get srv.clients > 0 && Clock.now () < deadline do
    Unix.sleepf 0.01
  done;
  Pool.Executor.shutdown srv.exec;
  (* Seal the trace (final counter/gauge totals, flush).  Aggregates
     stay readable: [stats_json] / [metrics_text] still answer. *)
  Mutex.protect srv.tel_lock (fun () -> Telemetry.close srv.tel)
