module Budget = Absolver_resource.Budget
module Telemetry = Absolver_telemetry.Telemetry
module Prometheus = Absolver_telemetry.Prometheus
module Clock = Absolver_telemetry.Telemetry.Clock
module Pool = Absolver_parallel.Pool
module Engine = Absolver_core.Engine
module Registry = Absolver_core.Registry
module Dimacs = Absolver_core.Dimacs_ext
module Smt_parser = Absolver_smtlib.Parser
module To_ab = Absolver_smtlib.To_ab
module Smt2 = Absolver_smtlib.Smt2

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  max_clients : int;
  client_cap : int;
  queue_capacity : int;
  workers : int;
  restart_limit : int;
  default_timeout_ms : int option;
  io : Io.limits;
  engine_options : Engine.options;
  registry : unit -> Registry.t * (unit -> unit);
  trace : out_channel option;
  slow_log : out_channel option;
  slow_ms : float;
}

let default_registry () =
  let solver, dispose = Registry.persistent_simplex () in
  ({ Registry.default with Registry.linear = [ solver ] }, dispose)

let default_config =
  {
    max_clients = 32;
    client_cap = 8;
    queue_capacity = 64;
    workers = max 1 (min 4 (Pool.available_cores () - 1));
    restart_limit = 8;
    default_timeout_ms = Some 30_000;
    io = Io.default_limits;
    engine_options = Engine.default_options;
    registry = default_registry;
    trace = None;
    slow_log = None;
    slow_ms = 100.0;
  }

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  exec : Pool.Executor.t;
  tel : Telemetry.t;
  tel_lock : Mutex.t;
  slow_lock : Mutex.t;
  root : Budget.t;  (* cancellable umbrella over every request budget *)
  started : float;
  clients : int Atomic.t;
  total_clients : int Atomic.t;
  lock : Mutex.t;
  mutable listener : Unix.file_descr option;
  mutable client_fds : Unix.file_descr list;
  mutable stopping : bool;
}

let create ?(config = default_config) () =
  (* A peer that closes mid-reply must surface as EPIPE on the write —
     a per-connection error value — not as a process-killing signal.
     Idempotent, and harmless in-process: nothing here relies on
     default SIGPIPE delivery. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  {
    config;
    exec =
      Pool.Executor.create ~queue_capacity:config.queue_capacity
        ~restart_limit:config.restart_limit ~workers:config.workers ();
    tel = Telemetry.create ?trace:config.trace ();
    tel_lock = Mutex.create ();
    slow_lock = Mutex.create ();
    root = Budget.create ();
    started = Clock.wall ();
    clients = Atomic.make 0;
    total_clients = Atomic.make 0;
    lock = Mutex.create ();
    listener = None;
    client_fds = [];
    stopping = false;
  }

let tracing srv = srv.config.trace <> None

(* The server-side aggregate is one Telemetry handle shared by every
   worker domain, so all access goes through [tel_lock] (solve/smt2
   requests additionally record into a per-request fork of this handle,
   merged back at request end — see [begin_request]). *)
let bump srv name n =
  Mutex.protect srv.tel_lock (fun () -> Telemetry.add srv.tel name n)

let observe srv name v =
  Mutex.protect srv.tel_lock (fun () -> Telemetry.observe srv.tel name v)

let set_gauge srv name v =
  Mutex.protect srv.tel_lock (fun () -> Telemetry.set_gauge srv.tel name v)

let absorb_run_stats srv (rs : Engine.run_stats) =
  Mutex.protect srv.tel_lock (fun () ->
      Telemetry.add srv.tel "server.lp_cache_hits" rs.Engine.lp_cache_hits;
      Telemetry.add srv.tel "server.lp_cache_misses" rs.Engine.lp_cache_misses;
      if rs.Engine.budget_exhausted <> None then
        Telemetry.add srv.tel "server.budget_trips" 1)

(* ------------------------------------------------------------------ *)
(* Per-request trace context                                           *)
(*                                                                     *)
(* Every solve/smt2 request gets a fresh trace id and a fork of the    *)
(* server handle with one [server.request] root span.  The fork shares *)
(* the server's trace sink and span-id space, so engine spans — and    *)
(* their further forks across the domain pool — stitch into a single   *)
(* connected tree per request in the JSONL stream; aggregates          *)
(* (counters, span totals, pivot/depth/allocation histograms) merge    *)
(* back into the long-running server handle at request end.            *)
(* ------------------------------------------------------------------ *)

type req = {
  rq_op : string;
  rq_trace_id : string;
  rq_tel : Telemetry.t;
  rq_span : int;
  rq_started : float;
  rq_alloc0 : float;
}

(* Words allocated by this domain so far.  A request runs entirely on
   one executor worker domain (the lane serializes it), so the delta
   across the request is its own allocation. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let begin_request srv ~op ~enqueued =
  let rq_trace_id = Telemetry.mint_trace_id () in
  let rq_tel = Telemetry.fork ~parent:(-1) ~trace_id:rq_trace_id srv.tel in
  let rq_started = Clock.now () in
  let queue_wait_ms = Float.max 0.0 ((rq_started -. enqueued) *. 1000.) in
  Telemetry.observe rq_tel "server.queue_wait_ms" queue_wait_ms;
  let rq_span =
    Telemetry.span_open rq_tel "server.request"
      ~attrs:
        [
          ("op", Telemetry.String op);
          ("queue_wait_ms", Telemetry.Float queue_wait_ms);
        ]
  in
  { rq_op = op; rq_trace_id; rq_tel; rq_span; rq_started; rq_alloc0 = allocated_words () }

let request_options srv rq budget =
  { srv.config.engine_options with Engine.budget; telemetry = rq.rq_tel }

let log_slow srv rq ~verdict ~latency_ms ~(run_stats : Engine.run_stats option) =
  match srv.config.slow_log with
  | Some oc when latency_ms >= srv.config.slow_ms ->
    let module J = Telemetry.Json in
    let quoted s = Printf.sprintf "\"%s\"" (J.escape s) in
    let budget_outcome =
      match run_stats with
      | Some rs -> (
        match rs.Engine.budget_exhausted with
        | Some e -> quoted (Absolver_resource.Absolver_error.to_string e)
        | None -> "null")
      | None -> "null"
    in
    let lp_cache_hits =
      match run_stats with Some rs -> rs.Engine.lp_cache_hits | None -> 0
    in
    let line =
      J.obj
        [
          ("type", "\"slow_query\"");
          ("t", J.of_float (Clock.wall ()));
          ("op", quoted rq.rq_op);
          ("verdict", quoted verdict);
          ("latency_ms", J.of_float latency_ms);
          ("budget", budget_outcome);
          ("lp_cache_hits", string_of_int lp_cache_hits);
          ("trace_id", quoted rq.rq_trace_id);
        ]
    in
    Mutex.protect srv.slow_lock (fun () ->
        try
          output_string oc line;
          output_char oc '\n';
          flush oc
        with Sys_error _ -> ())
  | _ -> ()

let end_request srv rq ~verdict ~run_stats =
  let latency_ms = (Clock.now () -. rq.rq_started) *. 1000. in
  let alloc = Float.max 0.0 (allocated_words () -. rq.rq_alloc0) in
  Telemetry.observe rq.rq_tel "server.request_alloc_words" alloc;
  Telemetry.observe rq.rq_tel "server.latency_ms" latency_ms;
  Telemetry.span_close rq.rq_tel rq.rq_span
    ~attrs:
      [
        ("verdict", Telemetry.String verdict);
        ("latency_ms", Telemetry.Float latency_ms);
      ];
  Telemetry.flush rq.rq_tel;
  Mutex.protect srv.tel_lock (fun () ->
      Telemetry.merge srv.tel rq.rq_tel;
      Telemetry.add srv.tel ("server." ^ rq.rq_op) 1);
  (match run_stats with Some rs -> absorb_run_stats srv rs | None -> ());
  log_slow srv rq ~verdict ~latency_ms ~run_stats

(* Extra response fields when tracing is on: the keys to slice the
   JSONL stream by request.  Silent otherwise, keeping the default
   wire format byte-identical. *)
let trace_fields srv rq =
  if tracing srv then
    [
      ("trace_id", Sjson.Str rq.rq_trace_id);
      ("span_id", Sjson.Num (float_of_int rq.rq_span));
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Stats / health payloads                                             *)
(* ------------------------------------------------------------------ *)

(* Counters named [base|k=v] (the Prometheus label convention) fold
   into a JSON object keyed by the label value: the stats view of
   [server.disconnects|reason=...] / [server.errors|kind=...]. *)
let labelled_counts tel prefix =
  List.filter_map
    (fun (name, v) ->
      let n = String.length prefix in
      if String.length name > n && String.sub name 0 n = prefix then
        Some
          (String.sub name n (String.length name - n), Sjson.Num (float_of_int v))
      else None)
    (List.sort compare (Telemetry.counters tel))

let stats_fields srv =
  let pool_fields =
    [
      ("workers", Sjson.Num (float_of_int (Pool.Executor.workers srv.exec)));
      ("in_flight", Sjson.Num (float_of_int (Pool.Executor.in_flight srv.exec)));
      ("queued", Sjson.Num (float_of_int (Pool.Executor.queued srv.exec)));
      ("submitted", Sjson.Num (float_of_int (Pool.Executor.submitted srv.exec)));
      ("completed", Sjson.Num (float_of_int (Pool.Executor.completed srv.exec)));
      ( "workers_live",
        Sjson.Num (float_of_int (Pool.Executor.live_workers srv.exec)) );
      ( "worker_deaths",
        Sjson.Num (float_of_int (Pool.Executor.worker_deaths srv.exec)) );
      ( "worker_restarts",
        Sjson.Num (float_of_int (Pool.Executor.worker_restarts srv.exec)) );
      ("lost_jobs", Sjson.Num (float_of_int (Pool.Executor.lost_jobs srv.exec)));
    ]
  in
  Mutex.protect srv.tel_lock (fun () ->
      let c name = Sjson.Num (float_of_int (Telemetry.counter srv.tel name)) in
      (* One source of truth for latency: the same mergeable histogram
         the Prometheus exporter renders. *)
      let latency =
        match Telemetry.histogram srv.tel "server.latency_ms" with
        | Some h ->
          [
            ("count", Sjson.Num (float_of_int h.Telemetry.h_count));
            ("p50_ms", Sjson.Num (Telemetry.hist_quantile h 0.50));
            ("p95_ms", Sjson.Num (Telemetry.hist_quantile h 0.95));
            ("p99_ms", Sjson.Num (Telemetry.hist_quantile h 0.99));
            ("max_ms", Sjson.Num h.Telemetry.h_max);
          ]
        | None -> [ ("count", Sjson.Num 0.) ]
      in
      [
        ( "queries",
          Sjson.Obj
            [
              ("solve", c "server.solve");
              ("smt2", c "server.smt2");
              ("stats", c "server.stats");
              ("health", c "server.health");
            ] );
        ( "verdicts",
          Sjson.Obj
            [
              ("sat", c "server.sat");
              ("unsat", c "server.unsat");
              ("unknown", c "server.unknown");
            ] );
        ("rejected", c "server.rejected");
        ("budget_trips", c "server.budget_trips");
        ( "disconnects",
          Sjson.Obj (labelled_counts srv.tel "server.disconnects|reason=") );
        ("errors", Sjson.Obj (labelled_counts srv.tel "server.errors|kind="));
        ("latency_ms", Sjson.Obj latency);
        ( "pool",
          Sjson.Obj
            (pool_fields
            @ [
                (* last sampled at an enqueue/dequeue edge, vs the
                   instantaneous [queued] probe above *)
                ( "queue_depth",
                  Sjson.Num
                    (Option.value ~default:0.
                       (List.assoc_opt "pool.queue_depth"
                          (Telemetry.gauges srv.tel))) );
              ]) );
        ( "lp_cache",
          Sjson.Obj
            [
              ("hits", c "server.lp_cache_hits");
              ("misses", c "server.lp_cache_misses");
            ] );
        ( "clients",
          Sjson.Obj
            [
              ("active", Sjson.Num (float_of_int (Atomic.get srv.clients)));
              ("total", Sjson.Num (float_of_int (Atomic.get srv.total_clients)));
            ] );
        ("uptime_s", Sjson.Num (Clock.wall () -. srv.started));
      ])

let stats_json srv = Sjson.to_string (Sjson.Obj (stats_fields srv))

(* Prometheus text exposition of the whole aggregate.  Liveness gauges
   are refreshed at render time so a scrape always sees current
   occupancy, not the last request's. *)
let metrics_text srv =
  Mutex.protect srv.tel_lock (fun () ->
      Telemetry.set_gauge srv.tel "server.uptime_s"
        (Clock.wall () -. srv.started);
      Telemetry.set_gauge srv.tel "server.clients_active"
        (float_of_int (Atomic.get srv.clients));
      Telemetry.set_gauge srv.tel "server.clients_total"
        (float_of_int (Atomic.get srv.total_clients));
      Telemetry.set_gauge srv.tel "pool.workers"
        (float_of_int (Pool.Executor.workers srv.exec));
      Telemetry.set_gauge srv.tel "pool.in_flight"
        (float_of_int (Pool.Executor.in_flight srv.exec));
      Telemetry.set_gauge srv.tel "pool.queued"
        (float_of_int (Pool.Executor.queued srv.exec));
      Prometheus.render srv.tel)

let health_fields srv =
  let state =
    if srv.stopping then "stopping"
    else if Pool.Executor.degraded srv.exec then "degraded"
    else "ok"
  in
  [
    ("health", Sjson.Str state);
    ("accepting", Sjson.Bool (not srv.stopping));
    ("uptime_s", Sjson.Num (Clock.wall () -. srv.started));
    ("clients", Sjson.Num (float_of_int (Atomic.get srv.clients)));
    ("workers", Sjson.Num (float_of_int (Pool.Executor.workers srv.exec)));
    ("in_flight", Sjson.Num (float_of_int (Pool.Executor.in_flight srv.exec)));
    ("queued", Sjson.Num (float_of_int (Pool.Executor.queued srv.exec)));
    ( "workers_live",
      Sjson.Num (float_of_int (Pool.Executor.live_workers srv.exec)) );
    ( "worker_deaths",
      Sjson.Num (float_of_int (Pool.Executor.worker_deaths srv.exec)) );
    ( "worker_restarts",
      Sjson.Num (float_of_int (Pool.Executor.worker_restarts srv.exec)) );
  ]

(* ------------------------------------------------------------------ *)
(* Per-client serial lanes                                             *)
(*                                                                     *)
(* Each connection owns a FIFO of request jobs; at most one is ever    *)
(* submitted to the executor at a time, and the next is submitted only *)
(* from the previous one's completion — so a client's responses come   *)
(* back in request order (deterministic for scripted sessions), the    *)
(* client's warm simplex session and smt2 state are never touched by   *)
(* two domains at once, and fairness across clients falls out of the   *)
(* executor's FIFO: C clients have at most C jobs in the global queue. *)
(* ------------------------------------------------------------------ *)

type entry = {
  run : unit -> unit;
  entry_reject : string -> unit;
  entry_panic : exn -> unit;  (* typed internal-error reply for this entry *)
}

type client = {
  srv : t;
  fd_out : Unix.file_descr;
  out_lock : Mutex.t;
  dead : bool Atomic.t;  (* reply write failed: peer is fully gone *)
  disc : string option Atomic.t;  (* disconnect reason, recorded once *)
  cbudget : Budget.t;  (* umbrella over this connection's request budgets *)
  m : Mutex.t;
  cv : Condition.t;
  q : entry Queue.t;
  mutable busy : bool;
  mutable rdr : Io.reader option;
  registry : Registry.t;
  dispose : unit -> unit;
  smt2 : Smt2.session;
}

(* Every request budget is a child of the connection's [cbudget] (itself
   a child of the server root), so tearing down a client cancels its
   queued and in-flight work in one stroke without touching anyone
   else's. *)
let budget_for c timeout_ms =
  let ms =
    match timeout_ms with
    | Some _ as m -> m
    | None -> c.srv.config.default_timeout_ms
  in
  match ms with
  | Some m when m > 0 ->
    Budget.child c.cbudget ~deadline_seconds:(float_of_int m /. 1000.) ()
  | _ -> Budget.child c.cbudget ()

let record_disconnect c reason =
  if Atomic.compare_and_set c.disc None (Some reason) then
    bump c.srv ("server.disconnects|reason=" ^ reason) 1

(* Tear the client down from the writing side: the peer is fully gone
   (EPIPE) or the transport is broken, so queued and in-flight work is
   pointless — cancel the connection umbrella and let the lane drain
   without writing to the dead fd. *)
let mark_dead c reason =
  if not (Atomic.exchange c.dead true) then begin
    record_disconnect c reason;
    Budget.cancel c.cbudget
    (* the reader polls [c.dead] via its stop condition within one
       select slice, so no need to sever the fd from here *)
  end

let write_line c line =
  if not (Atomic.get c.dead) then
    Mutex.protect c.out_lock (fun () ->
        if not (Atomic.get c.dead) then
          match Io.write_all ~chaos:true c.fd_out (line ^ "\n") with
          | Ok () -> ( match c.rdr with Some r -> Io.touch r | None -> ())
          | Error Io.Peer_closed -> mark_dead c "epipe"
          | Error (Io.Write_error _) ->
            bump c.srv "server.errors|kind=io_write" 1;
            mark_dead c "io_error")

(* Requires [c.m] held.  On executor rejection the job is answered
   immediately (out of band) and the lane moves on — the reader is
   never blocked and nothing is silently dropped. *)
let sample_queue_depth srv =
  set_gauge srv "pool.queue_depth"
    (float_of_int (Pool.Executor.queued srv.exec))

let rec pump c =
  if (not c.busy) && not (Queue.is_empty c.q) then begin
    let e = Queue.pop c.q in
    c.busy <- true;
    match
      Pool.Executor.submit c.srv.exec (fun () ->
          (* Panic barrier.  An exception escaping [e.run] is answered
             with a typed internal error and counted; the lane and the
             worker both survive.  The [finally] releases the lane even
             when the exception is a worker-fatal one (Kill_worker,
             OOM, stack overflow) that must keep propagating to kill
             the domain — otherwise a dying worker would wedge this
             client forever. *)
          Fun.protect
            ~finally:(fun () ->
              Mutex.protect c.m (fun () ->
                  c.busy <- false;
                  pump c;
                  Condition.broadcast c.cv))
            (fun () ->
              sample_queue_depth c.srv;
              match
                Absolver_resource.Faults.hit "server.lane" Budget.unlimited;
                e.run ()
              with
              | () -> ()
              | exception ex ->
                if Pool.Executor.is_fatal ex then raise ex
                else begin
                  bump c.srv "server.errors|kind=internal" 1;
                  try e.entry_panic ex with _ -> ()
                end))
    with
    | Pool.Executor.Submitted ->
      sample_queue_depth c.srv
    | Pool.Executor.Rejected reason ->
      c.busy <- false;
      bump c.srv "server.rejected" 1;
      e.entry_reject reason;
      Condition.broadcast c.cv;
      pump c
  end

(* Flow control, not load shedding: a client that sends faster than it
   solves blocks its own reader at [client_cap] pending requests (the
   socket's kernel buffer backs further input up to the peer), so a
   scripted session is never torn by its own burstiness.  Rejection
   with a reason is reserved for genuine saturation: the executor's
   bounded global queue and the [max_clients] connection cap. *)
let enqueue c e =
  Mutex.protect c.m (fun () ->
      while
        Queue.length c.q >= c.srv.config.client_cap
        && (not c.srv.stopping)
        && not (Atomic.get c.dead)
      do
        Condition.wait c.cv c.m
      done;
      Queue.add e c.q;
      pump c)

let drain c =
  Mutex.protect c.m (fun () ->
      while c.busy || not (Queue.is_empty c.q) do
        Condition.wait c.cv c.m
      done)

(* ------------------------------------------------------------------ *)
(* JSON request execution (runs on a worker domain)                    *)
(* ------------------------------------------------------------------ *)

let finish_query c ~started ~op =
  observe c.srv "server.latency_ms" ((Clock.now () -. started) *. 1000.);
  bump c.srv ("server." ^ op) 1

let run_solve c ~id ~format ~problem ~all_models ~limit ~timeout_ms ~enqueued
    () =
  let rq = begin_request c.srv ~op:"solve" ~enqueued in
  let budget = budget_for c timeout_ms in
  let parsed =
    match format with
    | Protocol.F_dimacs -> Dimacs.parse_string problem
    | Protocol.F_smt1 -> (
      match Smt_parser.parse_benchmark problem with
      | Error e -> Error e
      | Ok b -> To_ab.convert b)
  in
  let line, verdict, run_stats =
    match parsed with
    | Error e -> (Protocol.error ~id ("parse error: " ^ e), "parse_error", None)
    | Ok prob ->
      let options = request_options c.srv rq budget in
      if all_models then begin
        match Engine.all_models ~registry:c.registry ~options ?limit prob with
        | Error e -> (Protocol.error ~id e, "error", None)
        | Ok (models, rs) ->
          bump c.srv "server.sat" (List.length models);
          ( Protocol.ok ~id
              ([
                 ("verdict", Sjson.Str "models");
                 ("count", Sjson.Num (float_of_int (List.length models)));
                 ( "models",
                   Sjson.Arr
                     (List.map
                        (fun m -> Sjson.Str (Protocol.model_to_string prob m))
                        models) );
               ]
              @ trace_fields c.srv rq),
            "models",
            Some rs )
      end
      else begin
        let result, rs = Engine.solve ~registry:c.registry ~options prob in
        let verdict =
          match result with
          | Engine.R_sat _ -> "sat"
          | Engine.R_unsat -> "unsat"
          | Engine.R_unknown _ -> "unknown"
        in
        bump c.srv ("server." ^ verdict) 1;
        ( Protocol.ok ~id
            (Protocol.verdict_fields prob result @ trace_fields c.srv rq),
          verdict,
          Some rs )
      end
  in
  end_request c.srv rq ~verdict ~run_stats;
  write_line c line

let run_smt2 c ~id ~script ~timeout_ms ~enqueued () =
  let rq = begin_request c.srv ~op:"smt2" ~enqueued in
  let budget = budget_for c timeout_ms in
  let check =
    Smt2.engine_check ~registry:c.registry
      ~options:(request_options c.srv rq budget) ()
  in
  let replies, exited = Smt2.run_string c.smt2 ~check script in
  end_request c.srv rq ~verdict:"-" ~run_stats:None;
  write_line c
    (Protocol.ok ~id
       (("replies", Sjson.Arr (List.map (fun s -> Sjson.Str s) replies))
       :: ((if exited then [ ("exited", Sjson.Bool true) ] else [])
          @ trace_fields c.srv rq)))

let handle_json_line c stop_reading line =
  match Protocol.parse_request line with
  | Error e ->
    write_line c (Protocol.error ~id:Sjson.Null ("bad request: " ^ e))
  | Ok (id, Error e) -> write_line c (Protocol.error ~id e)
  | Ok (id, Ok req) -> (
    let entry_reject reason = write_line c (Protocol.rejected ~id reason) in
    let entry_panic ex =
      write_line c (Protocol.internal_error ~id (Printexc.to_string ex))
    in
    match req with
    | Protocol.Quit ->
      stop_reading := true;
      enqueue c
        {
          run =
            (fun () -> write_line c (Protocol.ok ~id [ ("bye", Sjson.Bool true) ]));
          entry_reject;
          entry_panic;
        }
    | Protocol.Stats ->
      enqueue c
        {
          run =
            (fun () ->
              let started = Clock.now () in
              let fields = stats_fields c.srv in
              finish_query c ~started ~op:"stats";
              write_line c (Protocol.ok ~id [ ("stats", Sjson.Obj fields) ]));
          entry_reject;
          entry_panic;
        }
    | Protocol.Metrics ->
      enqueue c
        {
          run =
            (fun () ->
              let started = Clock.now () in
              let text = metrics_text c.srv in
              finish_query c ~started ~op:"metrics";
              write_line c (Protocol.ok ~id [ ("metrics", Sjson.Str text) ]));
          entry_reject;
          entry_panic;
        }
    | Protocol.Health ->
      enqueue c
        {
          run =
            (fun () ->
              let started = Clock.now () in
              let fields = health_fields c.srv in
              finish_query c ~started ~op:"health";
              write_line c (Protocol.ok ~id fields));
          entry_reject;
          entry_panic;
        }
    | Protocol.Solve { format; problem; all_models; limit; timeout_ms } ->
      let enqueued = Clock.now () in
      enqueue c
        {
          run =
            run_solve c ~id ~format ~problem ~all_models ~limit ~timeout_ms
              ~enqueued;
          entry_reject;
          entry_panic;
        }
    | Protocol.Smt2_script { script; timeout_ms } ->
      let enqueued = Clock.now () in
      enqueue c
        { run = run_smt2 c ~id ~script ~timeout_ms ~enqueued; entry_reject; entry_panic })

(* ------------------------------------------------------------------ *)
(* SMT-LIB 2 framing                                                   *)
(* ------------------------------------------------------------------ *)

let smt2_error_line reason =
  let b = Buffer.create (String.length reason + 12) in
  Buffer.add_string b "(error \"";
  String.iter
    (fun ch ->
      if ch = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b ch)
    reason;
  Buffer.add_string b "\")";
  Buffer.contents b

(* Commands are parsed on the reader thread (cheap, and it lets the
   reader see [exit]); execution — which may run a check-sat — goes
   through the lane like every other request. *)
let handle_smt2_form c stop_reading form =
  if not !stop_reading then begin
    let entry_reject reason = write_line c (smt2_error_line reason) in
    let entry_panic ex =
      write_line c (smt2_error_line ("internal error: " ^ Printexc.to_string ex))
    in
    let enqueue_error e =
      enqueue c
        {
          run = (fun () -> write_line c (smt2_error_line e));
          entry_reject;
          entry_panic;
        }
    in
    match Smt_parser.parse_sexps form with
    | Error e -> enqueue_error e
    | Ok sexps ->
      List.iter
        (fun sx ->
          if not !stop_reading then
            match Smt2.parse_command sx with
            | Error e -> enqueue_error e
            | Ok cmd ->
              if cmd = Smt2.Exit then stop_reading := true;
              let enqueued = Clock.now () in
              enqueue c
                {
                  run =
                    (fun () ->
                      (* Only [check-sat] runs the engine; it alone gets
                         the per-request trace context and latency
                         accounting, like a JSON solve. *)
                      match cmd with
                      | Smt2.Check_sat ->
                        let rq = begin_request c.srv ~op:"smt2" ~enqueued in
                        let budget = budget_for c None in
                        let check =
                          Smt2.engine_check ~registry:c.registry
                            ~options:(request_options c.srv rq budget) ()
                        in
                        let reply = Smt2.execute c.smt2 ~check cmd in
                        let verdict =
                          match reply with
                          | Smt2.R_sat -> "sat"
                          | Smt2.R_unsat -> "unsat"
                          | _ -> "unknown"
                        in
                        bump c.srv ("server." ^ verdict) 1;
                        end_request c.srv rq ~verdict ~run_stats:None;
                        (match Smt2.render c.smt2 reply with
                        | Some line -> write_line c line
                        | None -> ());
                        (* SMT-LIB has no response metadata slot, so the
                           trace keys ride an info comment — parsers
                           skip [;] lines by definition. *)
                        if tracing c.srv then
                          write_line c
                            (Printf.sprintf "; trace_id=%s span_id=%d"
                               rq.rq_trace_id rq.rq_span)
                      | _ -> (
                        let budget = budget_for c None in
                        let check =
                          Smt2.engine_check ~registry:c.registry
                            ~options:
                              {
                                c.srv.config.engine_options with
                                Engine.budget;
                                telemetry = Telemetry.disabled;
                              }
                            ()
                        in
                        let reply = Smt2.execute c.smt2 ~check cmd in
                        match Smt2.render c.smt2 reply with
                        | Some line -> write_line c line
                        | None -> ()));
                  entry_reject;
                  entry_panic;
                })
        sexps
  end

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

(* Serve one connection over raw fds.  The reader waits in bounded
   select slices (Io.read_line), so server shutdown, a peer declared
   dead by the write path, the idle timeout, the per-frame read
   deadline and the frame-size cap all interrupt it; every abnormal end
   is answered (when the framing is known), counted by reason, and
   tears down only this connection. *)
let serve_fd srv ~fd_in ~fd_out =
  if Atomic.get srv.clients >= srv.config.max_clients then
    ignore
      (Io.write_all fd_out
         (Protocol.rejected ~id:Sjson.Null
            (Printf.sprintf "server at max clients (%d)" srv.config.max_clients)
         ^ "\n"))
  else begin
    Atomic.incr srv.clients;
    Atomic.incr srv.total_clients;
    let registry, dispose = srv.config.registry () in
    let c =
      {
        srv;
        fd_out;
        out_lock = Mutex.create ();
        dead = Atomic.make false;
        disc = Atomic.make None;
        cbudget = Budget.child srv.root ();
        m = Mutex.create ();
        cv = Condition.create ();
        q = Queue.create ();
        busy = false;
        rdr = None;
        registry;
        dispose;
        smt2 = Smt2.create ();
      }
    in
    let mode = ref `Undecided in
    let rdr =
      Io.reader ~limits:srv.config.io ~chaos:true
        ~should_stop:(fun () -> srv.stopping || Atomic.get c.dead)
        ~busy:(fun () ->
          Mutex.protect c.m (fun () -> c.busy || not (Queue.is_empty c.q)))
        fd_in
    in
    c.rdr <- Some rdr;
    let stop_reading = ref false in
    let buf = Buffer.create 256 in
    (* A limit violation still gets one framed error line (when the
       framing is already known) before the connection is torn down. *)
    let abnormal reason msg =
      (match !mode with
      | `Json -> write_line c (Protocol.error ~id:Sjson.Null msg)
      | `Smt2 -> write_line c (smt2_error_line msg)
      | `Undecided -> ());
      record_disconnect c reason;
      (* reclaim, don't linger: queued and in-flight work of a torn
         connection is cancelled outright *)
      Budget.cancel c.cbudget;
      stop_reading := true
    in
    while not !stop_reading do
      match Io.read_line rdr with
      | Io.Stopped ->
        record_disconnect c (if srv.stopping then "shutdown" else "dead_peer");
        stop_reading := true
      | Io.Eof ->
        (* Orderly half-close: pending work still drains and replies
           still go out (batch usage pipes a script in and reads the
           answers).  A fully closed peer surfaces at the next write. *)
        record_disconnect c "eof";
        stop_reading := true
      | Io.Idle_timeout ->
        bump srv "server.errors|kind=idle_timeout" 1;
        abnormal "idle_timeout" "idle timeout, closing connection"
      | Io.Read_deadline ->
        bump srv "server.errors|kind=read_deadline" 1;
        abnormal "read_deadline" "read deadline exceeded, closing connection"
      | Io.Frame_too_large ->
        bump srv "server.errors|kind=oversize" 1;
        abnormal "oversize"
          (Printf.sprintf "frame exceeds %d bytes" srv.config.io.Io.max_frame_bytes)
      | Io.Io_error msg ->
        bump srv "server.errors|kind=io_read" 1;
        abnormal "io_error" ("read error: " ^ msg)
      | Io.Line line -> (
        let trimmed = String.trim line in
        match !mode with
        | `Undecided when trimmed = "" -> ()
        | _ -> (
          let m =
            match !mode with
            | `Undecided ->
              (* framing auto-detection: a JSON request line must
                 start with '{'; anything else is an smt2 stream *)
              let m = if trimmed.[0] = '{' then `Json else `Smt2 in
              mode := m;
              m
            | (`Json | `Smt2) as m -> m
          in
          match m with
          | `Json -> handle_json_line c stop_reading line
          | `Smt2 ->
            Buffer.add_string buf line;
            Buffer.add_char buf '\n';
            (* the multi-line smt2 accumulator obeys the same frame
               cap as the line reader *)
            if Buffer.length buf > srv.config.io.Io.max_frame_bytes then begin
              bump srv "server.errors|kind=oversize" 1;
              abnormal "oversize"
                (Printf.sprintf "frame exceeds %d bytes"
                   srv.config.io.Io.max_frame_bytes)
            end
            else begin
              let forms, rest = Smt2.split_complete (Buffer.contents buf) in
              Buffer.clear buf;
              Buffer.add_string buf rest;
              List.iter (handle_smt2_form c stop_reading) forms
            end))
    done;
    record_disconnect c "exit";
    drain c;
    c.dispose ();
    Atomic.decr srv.clients
  end

let serve_channel srv ic oc =
  (* all I/O goes through the raw fds; the channels are only carriers
     (their buffers are never used, so the caller's close is safe) *)
  serve_fd srv ~fd_in:(Unix.descr_of_in_channel ic)
    ~fd_out:(Unix.descr_of_out_channel oc)

(* A leftover socket file from a crashed daemon must not block restart,
   but silently unlinking the path would also hijack a live daemon's
   socket (or destroy an unrelated file).  So: only a socket nobody
   answers on is stale, and only stale sockets are removed. *)
let remove_stale_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if alive then
      Error (Printf.sprintf "%s: a live daemon is already serving this socket" path)
    else begin
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
    end
  | _ -> Error (Printf.sprintf "%s: exists and is not a socket" path)

let serve_socket_bound srv ~path =
  match
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind sock (Unix.ADDR_UNIX path);
       Unix.listen sock 64
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    sock
  with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | sock ->
    Mutex.protect srv.lock (fun () -> srv.listener <- Some sock);
    if srv.stopping then (try Unix.close sock with Unix.Unix_error _ -> ());
    let threads = ref [] in
    let rec loop () =
      if not srv.stopping then
        match Unix.accept sock with
        | exception
            Unix.Unix_error
              ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
          ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error (_, _, _) ->
          (* a transient accept failure must never kill the daemon *)
          Unix.sleepf 0.01;
          loop ()
        | fd, _ ->
          if srv.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
          else if Absolver_resource.Faults.Net.on_accept () then begin
            (* chaos: the network refused this connection — the client
               sees an immediate reset and is expected to retry *)
            Io.sever fd;
            (try Unix.close fd with Unix.Unix_error _ -> ());
            loop ()
          end
          else begin
            Mutex.protect srv.lock (fun () ->
                srv.client_fds <- fd :: srv.client_fds);
            let th =
              Thread.create
                (fun () ->
                  (try serve_fd srv ~fd_in:fd ~fd_out:fd with _ -> ());
                  Mutex.protect srv.lock (fun () ->
                      srv.client_fds <-
                        List.filter (fun f -> f != fd) srv.client_fds);
                  (try Unix.shutdown fd Unix.SHUTDOWN_ALL
                   with Unix.Unix_error _ -> ());
                  try Unix.close fd with Unix.Unix_error _ -> ())
                ()
            in
            threads := th :: !threads;
            loop ()
          end
    in
    loop ();
    List.iter Thread.join !threads;
    Mutex.protect srv.lock (fun () -> srv.listener <- None);
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    Ok ()

let serve_socket srv ~path =
  match remove_stale_socket path with
  | Error _ as e -> e
  | Ok () -> serve_socket_bound srv ~path

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

(* Deliberately lock-free (reads of [listener]/[client_fds] may race
   with the accept loop, harmlessly — readers also poll [stopping]):
   this must be safe to call from a SIGTERM handler. *)
let request_stop srv =
  srv.stopping <- true;
  Budget.cancel srv.root;
  (match srv.listener with
  | Some fd -> (
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    srv.client_fds

let shutdown srv =
  request_stop srv;
  let deadline = Clock.now () +. 10.0 in
  while Atomic.get srv.clients > 0 && Clock.now () < deadline do
    Unix.sleepf 0.01
  done;
  Pool.Executor.shutdown srv.exec;
  (* Seal the trace (final counter/gauge totals, flush).  Aggregates
     stay readable: [stats_json] / [metrics_text] still answer. *)
  Mutex.protect srv.tel_lock (fun () -> Telemetry.close srv.tel)
