(** Solver-as-a-service: a long-running daemon multiplexing concurrent
    solve jobs over the shared domain pool (DESIGN.md §13).

    Clients connect over a Unix-domain socket (or drive stdin/stdout)
    and speak either line-delimited JSON ({!Protocol}) or a raw
    SMT-LIB 2 command stream ({!Absolver_smtlib.Smt2}) — the framing is
    auto-detected per connection from the first non-blank byte ([{]
    means JSON).  Each connection gets a reader thread (I/O-bound, on
    the main domain), one warm persistent simplex session
    ({!Absolver_core.Registry.persistent_simplex}, torn down at
    disconnect) and a {e serial lane}: its requests run one at a time,
    in arrival order, on the shared {!Absolver_parallel.Pool.Executor}
    worker domains — concurrency comes from multiple clients, so a
    connection's responses are deterministic and FIFO.

    Admission control is three-layered: a connection cap
    ([max_clients], refused connections get one ["status":"rejected"]
    line), a per-client pending cap ([client_cap], {e flow control}: the
    client's own reader stops consuming input until its lane drains, so
    a scripted session is never torn by its own burstiness) and the
    executor's bounded queue as global backstop (a request that cannot
    be admitted there is answered immediately with
    ["status":"rejected"] and the executor's reason).  Nothing is ever
    dropped silently.

    Every request runs under a budget {!Absolver_resource.Budget.child}
    of the server's root, so one SIGTERM cancels everything in flight
    cooperatively; timeouts degrade to ["verdict":"unknown"] replies,
    never to a dead connection. *)

type config = {
  max_clients : int;  (** concurrent connections (default 32) *)
  client_cap : int;
      (** pending (queued, not yet running) requests per client before
          the reader stops consuming input (default 8) *)
  queue_capacity : int;  (** executor backstop queue (default 64) *)
  workers : int;  (** solver worker domains *)
  restart_limit : int;
      (** worker-domain replacements the executor's supervisor may spawn
          over its lifetime (default 8); past it the pool shrinks and
          [health] reports ["degraded"] *)
  default_timeout_ms : int option;
      (** per-request deadline when the request names none;
          [None] = unbounded (still cancellable via shutdown) *)
  io : Io.limits;
      (** connection I/O hardening: idle timeout, per-frame read
          deadline, frame-size cap (default {!Io.default_limits};
          {!Io.unlimited} restores the pre-hardening behaviour) *)
  engine_options : Absolver_core.Engine.options;
      (** base options; each request overrides [budget] and [telemetry]
          (solve/smt2 requests run under a per-request fork of the
          server's handle, merged back at request end) *)
  registry : unit -> Absolver_core.Registry.t * (unit -> unit);
      (** per-client registry factory; the second component disposes
          client-held state at disconnect.  Default: {!Absolver_core.Registry.default}
          with the linear solver replaced by a fresh
          [persistent_simplex]. *)
  trace : out_channel option;
      (** JSONL request-trace sink (default [None]).  When set, every
          solve/smt2 request records a [server.request] root span with
          the engine's span tree (and its pool forks) beneath it, all
          tagged with the request's minted trace id; responses echo
          ["trace_id"]/["span_id"] (JSON) or an [; trace_id=...] info
          comment (SMT-LIB 2).  The caller owns the channel; close it
          after {!shutdown}. *)
  slow_log : out_channel option;
      (** structured slow-query JSONL sink (default [None]): one
          [{"type":"slow_query",...}] object per request at or over
          {!field-slow_ms}, with op, verdict, latency, budget outcome,
          LP-cache hits and trace id. *)
  slow_ms : float;  (** slow-query threshold, milliseconds (default 100) *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
(** Build the server: spawns the executor's worker domains. *)

val serve_channel : t -> in_channel -> out_channel -> unit
(** Serve one connection on explicit channels (the CLI's stdio mode and
    the tests' pipe harness); returns when the peer sends [exit] /
    [(exit)] or closes its end, with the client's session disposed. *)

val serve_socket : t -> path:string -> (unit, string) result
(** Bind a Unix-domain socket at [path], then accept-loop until
    {!request_stop}; each connection is served on its own thread.  A
    leftover socket file is removed only after a connect probe fails
    (a crashed daemon's residue must not block restart, but a live
    daemon's socket — or a non-socket file — is never hijacked:
    [Error] instead).  Blocks the calling thread; returns after the
    listener closed and every connection drained, with the socket file
    removed. *)

val request_stop : t -> unit
(** Begin shutdown: stop accepting, cancel the root budget (every
    in-flight request trips to [unknown] at its next poll), and shut
    down client sockets so reader threads see EOF.  Async-signal-safe
    enough for a SIGTERM handler: flips flags and closes descriptors,
    never blocks. *)

val shutdown : t -> unit
(** {!request_stop}, then drain: wait for connections to finish and the
    executor to join its domains.  Idempotent. *)

val stats_json : t -> string
(** The [stats] op's payload: queries served by op and verdict,
    rejections, budget trips, end-to-end latency quantiles
    (p50/p95/p99 ms, estimated from the shared latency histogram),
    executor occupancy, LP-cache hit counters, connection counts,
    uptime. *)

val metrics_text : t -> string
(** The [metrics] op's payload: the server aggregate in Prometheus
    text-exposition format — request counters, liveness gauges
    (refreshed at render time), latency / queue-wait / allocation /
    pivot / branch-and-prune-depth histograms with cumulative
    [_bucket{le=...}] series, and per-span-name call/seconds totals.
    Also reachable without a connection (the CLI's [--metrics-file]
    writes it at exit). *)

val health_fields : t -> (string * Sjson.t) list
(** The [health] op's payload fields (also usable before [create]d
    servers go public): ["health"], uptime, client/worker occupancy,
    whether the server still accepts work. *)
