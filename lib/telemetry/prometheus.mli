(** Prometheus text-exposition rendering of a telemetry handle.

    Everything a handle aggregates maps onto the standard instrument
    types: monotone counters become [counter] samples suffixed [_total],
    gauges become [gauge] samples, histograms become the cumulative
    [_bucket{le="..."}] / [_sum] / [_count] triple (with the mandatory
    [+Inf] bucket), and span aggregates become a pair of counters labeled
    by span name ([_span_calls_total] / [_span_seconds_total]). Metric
    names are sanitized to the Prometheus grammar ([[a-zA-Z_:][a-zA-Z0-9_:]*]);
    dots in telemetry names become underscores.

    A counter whose telemetry name carries a ['|'] suffix of [k=v]
    pairs ([server.errors|kind=internal]) renders as a {e labelled}
    sample of the base family
    ([absolver_server_errors_total{kind="internal"}]); samples sharing
    a base are grouped under a single [# TYPE] line. *)

val metric_name : ?prefix:string -> string -> string
(** The sanitized exposition name for a telemetry instrument name,
    without any type suffix. *)

val render : ?prefix:string -> Telemetry.t -> string
(** The full exposition document for the handle's current aggregate:
    [# TYPE] comments and samples, families sorted by name, terminated
    by a newline. [prefix] (default ["absolver"]) namespaces every
    metric. *)
