(* See telemetry.mli for the contract. The design constraints driving the
   shape of this file: a [disabled] handle must make every operation a
   single match on an immutable constructor, so instrumentation can stay
   in place permanently; and span ids come from one process-wide counter,
   so handles [fork]ed across domains write into one trace without id
   collisions and stitch back together through parent links alone. *)

module Clock = struct
  (* Monotonized wall clock: remember the largest reading handed out (in
     an atomic, so every domain shares one monotone timeline) and never
     hand out anything smaller.  A backward wall-clock jump freezes the
     clock at the high-water mark until real time passes it again. *)
  let start = Unix.gettimeofday ()
  let last = Atomic.make 0.0

  let rec now () =
    let w = Unix.gettimeofday () -. start in
    let l = Atomic.get last in
    if w <= l then l
    else if Atomic.compare_and_set last l w then w
    else now ()

  let wall = Unix.gettimeofday
end

type value = Int of int | Float of float | String of string | Bool of bool

module Json = struct
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let of_float f =
    if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

  let of_value = function
    | Int i -> string_of_int i
    | Float f -> of_float f
    | String s -> Printf.sprintf "\"%s\"" (escape s)
    | Bool b -> if b then "true" else "false"

  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) v) fields) ^ "}"
end

type span_agg = { agg_calls : int; agg_total_s : float; agg_max_s : float }

(* ---- histograms ----

   Sparse log-bucketed: bucket [i] covers (γ^(i-1), γ^i] with γ = 2^(1/4),
   so four buckets per octave and a worst-case quantile error of √γ ≈ 9%.
   Non-positive samples get a dedicated bucket (key [min_int], reported
   with upper bound 0).  Bucket counts merge exactly, which is the whole
   point: per-request and per-worker histograms fold into a long-running
   aggregate without the bias a bounded sample window would introduce. *)

let hist_gamma = Float.pow 2.0 0.25
let log_gamma = Float.log hist_gamma
let nonpos_bucket = min_int

let bucket_of v =
  if v <= 0.0 then nonpos_bucket
  else int_of_float (Float.ceil (Float.log v /. log_gamma))

let bucket_bound i =
  if i = nonpos_bucket then 0.0 else Float.pow hist_gamma (float_of_int i)

(* Recover a bucket index from its reported upper bound.  Bounds are
   exactly γ^i for integer i, so rounding (not [ceil], which would drift
   up on a positive float error) round-trips them. *)
let bucket_of_bound ub =
  if ub <= 0.0 then nonpos_bucket
  else int_of_float (Float.round (Float.log ub /. log_gamma))

type hist = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

type hist_cell = {
  mutable hc_count : int;
  mutable hc_sum : float;
  mutable hc_min : float;
  mutable hc_max : float;
  hc_buckets : (int, int ref) Hashtbl.t;
}

let hist_cell () =
  {
    hc_count = 0;
    hc_sum = 0.0;
    hc_min = infinity;
    hc_max = neg_infinity;
    hc_buckets = Hashtbl.create 8;
  }

let hist_cell_add c v n =
  (match Hashtbl.find_opt c.hc_buckets (bucket_of v) with
  | Some r -> r := !r + n
  | None -> Hashtbl.add c.hc_buckets (bucket_of v) (ref n));
  c.hc_count <- c.hc_count + n;
  c.hc_sum <- c.hc_sum +. (v *. float_of_int n);
  if v < c.hc_min then c.hc_min <- v;
  if v > c.hc_max then c.hc_max <- v

let hist_of_cell c =
  let idx = Hashtbl.fold (fun i r acc -> (i, !r) :: acc) c.hc_buckets [] in
  let idx = List.sort (fun (a, _) (b, _) -> compare a b) idx in
  {
    h_count = c.hc_count;
    h_sum = c.hc_sum;
    h_min = (if c.hc_count = 0 then 0.0 else c.hc_min);
    h_max = (if c.hc_count = 0 then 0.0 else c.hc_max);
    h_buckets = List.map (fun (i, n) -> (bucket_bound i, n)) idx;
  }

let hist_quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
      max 1 (min h.h_count r)
    in
    let rec walk cum = function
      | [] -> h.h_max
      | (ub, n) :: rest ->
        let cum = cum + n in
        if cum >= rank then
          (* geometric midpoint of (ub/γ, ub], clamped to observed range *)
          let est = if ub <= 0.0 then 0.0 else ub /. sqrt hist_gamma in
          Float.max h.h_min (Float.min h.h_max est)
        else walk cum rest
    in
    walk 0 h.h_buckets
  end

let hist_cumulative h =
  let _, acc =
    List.fold_left
      (fun (cum, acc) (ub, n) ->
        let cum = cum + n in
        (cum, (ub, cum) :: acc))
      (0, []) h.h_buckets
  in
  List.rev acc

(* ---- handles ---- *)

type agg_cell = {
  mutable c_calls : int;
  mutable c_total : float;
  mutable c_max : float;
}

type span_rec = {
  id : int;
  name : string;
  parent : int;
  t_start : float;
  attrs : (string * value) list;
  snapshot : (string * int) list; (* counter totals when the span opened *)
}

(* The trace sink is shared by a handle and all its forks; the write lock
   keeps concurrent domains' lines whole. *)
type writer = { w_oc : out_channel; w_lock : Mutex.t }

type state = {
  mutable stack : span_rec list;
  cnt : (string, int ref) Hashtbl.t;
  ggs : (string, float ref) Hashtbl.t;
  aggs : (string, agg_cell) Hashtbl.t;
  hists : (string, hist_cell) Hashtbl.t;
  trace : writer option;
  mutable trace_ctx : string option; (* trace id stamped on emitted spans *)
  default_parent : int; (* parent of top-level spans; -1 for a root handle *)
  root : bool; (* created (not forked): owns the final counter dump *)
  mutable closed : bool;
  (* Every public operation takes this lock, so one handle may be shared
     across domains without corrupting the hash tables.  The span stack
     still interleaves nonsensically under concurrent spans — parallel
     workers should use their own [fork] and [merge] it at join (the lock
     only makes the shared-handle case safe, not meaningful). *)
  lock : Mutex.t;
}

type t = Disabled | Enabled of state

let disabled = Disabled
let enabled = function Disabled -> false | Enabled _ -> true

(* Span ids are process-global so spans recorded by linked handles on
   different domains never collide; 0 is reserved (never allocated) and
   -1 means "no parent". *)
let span_ids = Atomic.make 1

(* Trace ids: a per-process random-ish prefix plus a counter, 16 hex
   chars.  Uniqueness matters within one trace file, which one process
   writes; the prefix keeps ids from colliding across restarts. *)
let trace_prefix =
  Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ()) land 0xffffff

let trace_ids = Atomic.make 1

let mint_trace_id () =
  Printf.sprintf "%06x%010x" trace_prefix (Atomic.fetch_and_add trace_ids 1)

let emit st line =
  match st.trace with
  | None -> ()
  | Some w ->
    Mutex.protect w.w_lock (fun () ->
        output_string w.w_oc line;
        output_char w.w_oc '\n')

let mk_state ~trace ~trace_ctx ~default_parent ~root =
  {
    stack = [];
    cnt = Hashtbl.create 32;
    ggs = Hashtbl.create 8;
    aggs = Hashtbl.create 32;
    hists = Hashtbl.create 8;
    trace;
    trace_ctx;
    default_parent;
    root;
    closed = false;
    lock = Mutex.create ();
  }

let create ?trace () =
  let trace =
    Option.map (fun oc -> { w_oc = oc; w_lock = Mutex.create () }) trace
  in
  let st = mk_state ~trace ~trace_ctx:None ~default_parent:(-1) ~root:true in
  emit st
    (Json.obj
       [
         ("type", "\"meta\"");
         ("format", "\"absolver-trace\"");
         ("version", "2");
         ("clock", "\"monotonic-seconds\"");
       ]);
  Enabled st

let set_trace_id t id =
  match t with
  | Disabled -> ()
  | Enabled st -> Mutex.protect st.lock (fun () -> st.trace_ctx <- Some id)

let trace_id t =
  match t with
  | Disabled -> None
  | Enabled st -> Mutex.protect st.lock (fun () -> st.trace_ctx)

let current_span t =
  match t with
  | Disabled -> -1
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        match st.stack with sp :: _ -> sp.id | [] -> st.default_parent)

let fork ?parent ?trace_id t =
  match t with
  | Disabled -> Disabled
  | Enabled st ->
    let default_parent, inherited =
      Mutex.protect st.lock (fun () ->
          ( (match parent with
            | Some p -> p
            | None -> (
              match st.stack with
              | sp :: _ -> sp.id
              | [] -> st.default_parent)),
            st.trace_ctx ))
    in
    let trace_ctx =
      match trace_id with Some _ -> trace_id | None -> inherited
    in
    Enabled
      (mk_state ~trace:st.trace ~trace_ctx ~default_parent ~root:false)

(* ---- counters / gauges ---- *)

let add t name d =
  match t with
  | Disabled -> ()
  | Enabled st ->
    if d > 0 then
      Mutex.protect st.lock (fun () ->
          match Hashtbl.find_opt st.cnt name with
          | Some r -> r := !r + d
          | None -> Hashtbl.add st.cnt name (ref d))

let set_gauge t name v =
  match t with
  | Disabled -> ()
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        match Hashtbl.find_opt st.ggs name with
        | Some r -> r := v
        | None -> Hashtbl.add st.ggs name (ref v))

let observe t name v =
  match t with
  | Disabled -> ()
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        let c =
          match Hashtbl.find_opt st.hists name with
          | Some c -> c
          | None ->
            let c = hist_cell () in
            Hashtbl.add st.hists name c;
            c
        in
        hist_cell_add c v 1)

let histograms t =
  match t with
  | Disabled -> []
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Hashtbl.fold (fun k c acc -> (k, hist_of_cell c) :: acc) st.hists [])
    |> List.sort compare

let histogram t name =
  match t with
  | Disabled -> None
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Option.map hist_of_cell (Hashtbl.find_opt st.hists name))

let counter t name =
  match t with
  | Disabled -> 0
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        match Hashtbl.find_opt st.cnt name with Some r -> !r | None -> 0)

let counters t =
  match t with
  | Disabled -> []
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.cnt [])
    |> List.sort compare

let gauges t =
  match t with
  | Disabled -> []
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.ggs [])
    |> List.sort compare

(* ---- spans ---- *)

let snapshot_counters st =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.cnt []

let span_open t ?(attrs = []) name =
  match t with
  | Disabled -> -1
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        let id = Atomic.fetch_and_add span_ids 1 in
        let parent =
          match st.stack with [] -> st.default_parent | s :: _ -> s.id
        in
        st.stack <-
          {
            id;
            name;
            parent;
            t_start = Clock.now ();
            attrs;
            snapshot = snapshot_counters st;
          }
          :: st.stack;
        id)

let counter_deltas st (sp : span_rec) =
  Hashtbl.fold
    (fun k r acc ->
      let before =
        match List.assoc_opt k sp.snapshot with Some v -> v | None -> 0
      in
      let d = !r - before in
      if d <> 0 then (k, d) :: acc else acc)
    st.cnt []
  |> List.sort compare

let close_one st ~extra_attrs (sp : span_rec) =
  let t_end = Clock.now () in
  let dur = Float.max 0.0 (t_end -. sp.t_start) in
  (* aggregate *)
  (match Hashtbl.find_opt st.aggs sp.name with
  | Some c ->
    c.c_calls <- c.c_calls + 1;
    c.c_total <- c.c_total +. dur;
    if dur > c.c_max then c.c_max <- dur
  | None ->
    Hashtbl.add st.aggs sp.name { c_calls = 1; c_total = dur; c_max = dur });
  (* trace *)
  if st.trace <> None then begin
    let attrs = sp.attrs @ extra_attrs in
    let fields =
      [
        ("type", "\"span\"");
        ("id", string_of_int sp.id);
        ("parent", string_of_int sp.parent);
        ("name", Printf.sprintf "\"%s\"" (Json.escape sp.name));
        ("start", Json.of_float sp.t_start);
        ("dur", Json.of_float dur);
      ]
      @ (match st.trace_ctx with
        | None -> []
        | Some tid -> [ ("trace", Printf.sprintf "\"%s\"" (Json.escape tid)) ])
      @ (if attrs = [] then []
         else
           [
             ( "attrs",
               Json.obj (List.map (fun (k, v) -> (k, Json.of_value v)) attrs) );
           ])
      @
      match counter_deltas st sp with
      | [] -> []
      | ds ->
        [
          ( "counters",
            Json.obj (List.map (fun (k, d) -> (k, string_of_int d)) ds) );
        ]
    in
    emit st (Json.obj fields)
  end

let abandoned_attr = [ ("abandoned", Bool true) ]

let span_close t ?(attrs = []) id =
  match t with
  | Disabled -> ()
  | Enabled st ->
    if id >= 0 then
      Mutex.protect st.lock (fun () ->
          (* Close any still-open children first (properly nested); they
             were force-closed rather than finished, and say so. *)
          let rec pop () =
            match st.stack with
            | [] -> ()
            | sp :: rest ->
              st.stack <- rest;
              if sp.id = id then close_one st ~extra_attrs:attrs sp
              else begin
                close_one st ~extra_attrs:abandoned_attr sp;
                pop ()
              end
          in
          pop ())

let span t ?attrs name f =
  match t with
  | Disabled -> f ()
  | Enabled _ ->
    let id = span_open t ?attrs name in
    Fun.protect ~finally:(fun () -> span_close t id) f

let event t ?(attrs = []) name =
  match t with
  | Disabled -> ()
  | Enabled st ->
    if st.trace <> None then
      Mutex.protect st.lock (fun () ->
      let parent =
        match st.stack with [] -> st.default_parent | s :: _ -> s.id
      in
      let fields =
        [
          ("type", "\"event\"");
          ("name", Printf.sprintf "\"%s\"" (Json.escape name));
          ("t", Json.of_float (Clock.now ()));
          ("span", string_of_int parent);
        ]
        @ (match st.trace_ctx with
          | None -> []
          | Some tid ->
            [ ("trace", Printf.sprintf "\"%s\"" (Json.escape tid)) ])
        @
        if attrs = [] then []
        else
          [
            ( "attrs",
              Json.obj (List.map (fun (k, v) -> (k, Json.of_value v)) attrs) );
          ]
      in
      emit st (Json.obj fields))

(* ---- aggregate access ---- *)

let span_aggregates t =
  match t with
  | Disabled -> []
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Hashtbl.fold
          (fun k c acc ->
            ( k,
              {
                agg_calls = c.c_calls;
                agg_total_s = c.c_total;
                agg_max_s = c.c_max;
              } )
            :: acc)
          st.aggs [])
    |> List.sort compare

(* Fold a fork's totals back into its parent handle: counters add, span
   aggregates combine (calls and totals add, maxima max), gauges
   last-write-wins, histograms merge bucket-wise (exact — the reason the
   buckets are log-spaced rather than a sample window).  Trace lines need
   no merging: a fork already writes into the shared sink.  This is the
   join-side half of the per-worker-handle discipline used by the
   parallel subsystem and the server's per-request handles. *)
let merge dst src =
  match (dst, src) with
  | Disabled, _ | _, Disabled -> ()
  | Enabled dstst, Enabled _ ->
    let src_counters = counters src in
    let src_aggs = span_aggregates src in
    let src_gauges = gauges src in
    let src_hists = histograms src in
    let src_tid = trace_id src in
    Mutex.protect dstst.lock (fun () ->
        List.iter
          (fun (k, v) ->
            if v > 0 then
              match Hashtbl.find_opt dstst.cnt k with
              | Some r -> r := !r + v
              | None -> Hashtbl.add dstst.cnt k (ref v))
          src_counters;
        List.iter
          (fun (k, (a : span_agg)) ->
            match Hashtbl.find_opt dstst.aggs k with
            | Some c ->
              c.c_calls <- c.c_calls + a.agg_calls;
              c.c_total <- c.c_total +. a.agg_total_s;
              if a.agg_max_s > c.c_max then c.c_max <- a.agg_max_s
            | None ->
              Hashtbl.add dstst.aggs k
                {
                  c_calls = a.agg_calls;
                  c_total = a.agg_total_s;
                  c_max = a.agg_max_s;
                })
          src_aggs;
        List.iter
          (fun (k, v) ->
            match Hashtbl.find_opt dstst.ggs k with
            | Some r -> r := v
            | None -> Hashtbl.add dstst.ggs k (ref v))
          src_gauges;
        List.iter
          (fun (k, (h : hist)) ->
            if h.h_count > 0 then begin
              let c =
                match Hashtbl.find_opt dstst.hists k with
                | Some c -> c
                | None ->
                  let c = hist_cell () in
                  Hashtbl.add dstst.hists k c;
                  c
              in
              List.iter
                (fun (ub, n) ->
                  let i = bucket_of_bound ub in
                  match Hashtbl.find_opt c.hc_buckets i with
                  | Some r -> r := !r + n
                  | None -> Hashtbl.add c.hc_buckets i (ref n))
                h.h_buckets;
              c.hc_count <- c.hc_count + h.h_count;
              c.hc_sum <- c.hc_sum +. h.h_sum;
              if h.h_min < c.hc_min then c.hc_min <- h.h_min;
              if h.h_max > c.hc_max then c.hc_max <- h.h_max
            end)
          src_hists;
        match (dstst.trace_ctx, src_tid) with
        | None, Some tid -> dstst.trace_ctx <- Some tid
        | _ -> ())

let pp_summary fmt t =
  match t with
  | Disabled -> Format.pp_print_string fmt "(telemetry disabled)"
  | Enabled _ ->
    let spans = span_aggregates t in
    Format.fprintf fmt "@[<v>";
    if spans <> [] then begin
      Format.fprintf fmt "%-32s %8s %12s %12s@," "span" "calls" "total(s)"
        "max(s)";
      List.iter
        (fun (name, a) ->
          Format.fprintf fmt "%-32s %8d %12.6f %12.6f@," name a.agg_calls
            a.agg_total_s a.agg_max_s)
        spans
    end;
    (match counters t with
    | [] -> ()
    | cs ->
      Format.fprintf fmt "counters:@,";
      List.iter (fun (k, v) -> Format.fprintf fmt "  %-34s %d@," k v) cs);
    (match gauges t with
    | [] -> ()
    | gs ->
      Format.fprintf fmt "gauges:@,";
      List.iter (fun (k, v) -> Format.fprintf fmt "  %-34s %g@," k v) gs);
    Format.fprintf fmt "@]"

let stats_json t =
  let cs = List.map (fun (k, v) -> (k, string_of_int v)) (counters t) in
  let gs = List.map (fun (k, v) -> (k, Json.of_float v)) (gauges t) in
  let ss =
    List.map
      (fun (k, a) ->
        ( k,
          Json.obj
            [
              ("calls", string_of_int a.agg_calls);
              ("total_s", Json.of_float a.agg_total_s);
              ("max_s", Json.of_float a.agg_max_s);
            ] ))
      (span_aggregates t)
  in
  let hs =
    List.map
      (fun (k, h) ->
        ( k,
          Json.obj
            [
              ("count", string_of_int h.h_count);
              ("sum", Json.of_float h.h_sum);
              ("min", Json.of_float h.h_min);
              ("max", Json.of_float h.h_max);
              ("p50", Json.of_float (hist_quantile h 0.50));
              ("p95", Json.of_float (hist_quantile h 0.95));
              ("p99", Json.of_float (hist_quantile h 0.99));
            ] ))
      (histograms t)
  in
  Json.obj
    ([ ("counters", Json.obj cs); ("gauges", Json.obj gs); ("spans", Json.obj ss) ]
    @ if hs = [] then [] else [ ("hists", Json.obj hs) ])

let flush t =
  match t with
  | Disabled -> ()
  | Enabled st -> (
    match st.trace with
    | None -> ()
    | Some w -> Mutex.protect w.w_lock (fun () -> Stdlib.flush w.w_oc))

(* [close] already holds the state lock; these lock-free variants avoid
   re-entering it (the mutex is not recursive). *)
let counters_unlocked st =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.cnt [] |> List.sort compare

let gauges_unlocked st =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.ggs [] |> List.sort compare

let close t =
  match t with
  | Disabled -> ()
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
    if not st.closed then begin
      st.closed <- true;
      (* Close any spans left open so the trace is well-formed; they did
         not finish on their own, and the trace says so. *)
      List.iter (fun sp -> close_one st ~extra_attrs:abandoned_attr sp) st.stack;
      st.stack <- [];
      (* Only the handle that created the sink dumps the final totals —
         a fork closing must not interleave its partial counters into
         the shared stream. *)
      if st.root then begin
        List.iter
          (fun (k, v) ->
            emit st
              (Json.obj
                 [
                   ("type", "\"counter\"");
                   ("name", Printf.sprintf "\"%s\"" (Json.escape k));
                   ("total", string_of_int v);
                 ]))
          (counters_unlocked st);
        List.iter
          (fun (k, v) ->
            emit st
              (Json.obj
                 [
                   ("type", "\"gauge\"");
                   ("name", Printf.sprintf "\"%s\"" (Json.escape k));
                   ("value", Json.of_float v);
                 ]))
          (gauges_unlocked st)
      end;
      match st.trace with
      | None -> ()
      | Some w -> Mutex.protect w.w_lock (fun () -> Stdlib.flush w.w_oc)
    end)
