(* See telemetry.mli for the contract. The design constraint driving the
   shape of this file: a [disabled] handle must make every operation a
   single match on an immutable constructor, so instrumentation can stay
   in place permanently. *)

module Clock = struct
  (* Monotonized wall clock: remember the largest reading handed out (in
     an atomic, so every domain shares one monotone timeline) and never
     hand out anything smaller.  A backward wall-clock jump freezes the
     clock at the high-water mark until real time passes it again. *)
  let start = Unix.gettimeofday ()
  let last = Atomic.make 0.0

  let rec now () =
    let w = Unix.gettimeofday () -. start in
    let l = Atomic.get last in
    if w <= l then l
    else if Atomic.compare_and_set last l w then w
    else now ()

  let wall = Unix.gettimeofday
end

type value = Int of int | Float of float | String of string | Bool of bool

module Json = struct
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let of_float f =
    if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

  let of_value = function
    | Int i -> string_of_int i
    | Float f -> of_float f
    | String s -> Printf.sprintf "\"%s\"" (escape s)
    | Bool b -> if b then "true" else "false"

  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) v) fields) ^ "}"
end

type span_agg = { agg_calls : int; agg_total_s : float; agg_max_s : float }

type dist = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_window : float array;
}

(* One observed distribution: exact count/sum/min/max plus a bounded
   window of the most recent samples (a ring) from which percentiles are
   estimated.  8192 samples is plenty for p99 at server request rates
   while keeping a cold distribution under 64 KiB. *)
let dist_window_capacity = 8192

type dist_cell = {
  mutable o_count : int;
  mutable o_sum : float;
  mutable o_min : float;
  mutable o_max : float;
  ring : float array;
}

type agg_cell = {
  mutable c_calls : int;
  mutable c_total : float;
  mutable c_max : float;
}

type span_rec = {
  id : int;
  name : string;
  parent : int;
  t_start : float;
  attrs : (string * value) list;
  snapshot : (string * int) list; (* counter totals when the span opened *)
}

type state = {
  mutable stack : span_rec list;
  mutable next_id : int;
  cnt : (string, int ref) Hashtbl.t;
  ggs : (string, float ref) Hashtbl.t;
  aggs : (string, agg_cell) Hashtbl.t;
  dists : (string, dist_cell) Hashtbl.t;
  trace : out_channel option;
  mutable closed : bool;
  (* Every public operation takes this lock, so one handle may be shared
     across domains without corrupting the hash tables or the trace.  The
     span stack still interleaves nonsensically under concurrent spans —
     parallel workers should use their own handle and [merge] it at join
     (the lock only makes the shared-handle case safe, not meaningful). *)
  lock : Mutex.t;
}

type t = Disabled | Enabled of state

let disabled = Disabled
let enabled = function Disabled -> false | Enabled _ -> true

let emit st line =
  match st.trace with
  | None -> ()
  | Some oc ->
    output_string oc line;
    output_char oc '\n'

let create ?trace () =
  let st =
    {
      stack = [];
      next_id = 0;
      cnt = Hashtbl.create 32;
      ggs = Hashtbl.create 8;
      aggs = Hashtbl.create 32;
      dists = Hashtbl.create 8;
      trace;
      closed = false;
      lock = Mutex.create ();
    }
  in
  emit st
    (Json.obj
       [
         ("type", "\"meta\"");
         ("format", "\"absolver-trace\"");
         ("version", "1");
         ("clock", "\"monotonic-seconds\"");
       ]);
  Enabled st

(* ---- counters / gauges ---- *)

let add t name d =
  match t with
  | Disabled -> ()
  | Enabled st ->
    if d > 0 then
      Mutex.protect st.lock (fun () ->
          match Hashtbl.find_opt st.cnt name with
          | Some r -> r := !r + d
          | None -> Hashtbl.add st.cnt name (ref d))

let set_gauge t name v =
  match t with
  | Disabled -> ()
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        match Hashtbl.find_opt st.ggs name with
        | Some r -> r := v
        | None -> Hashtbl.add st.ggs name (ref v))

let observe t name v =
  match t with
  | Disabled -> ()
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        let c =
          match Hashtbl.find_opt st.dists name with
          | Some c -> c
          | None ->
            let c =
              {
                o_count = 0;
                o_sum = 0.0;
                o_min = infinity;
                o_max = neg_infinity;
                ring = Array.make dist_window_capacity 0.0;
              }
            in
            Hashtbl.add st.dists name c;
            c
        in
        c.ring.(c.o_count mod dist_window_capacity) <- v;
        c.o_count <- c.o_count + 1;
        c.o_sum <- c.o_sum +. v;
        if v < c.o_min then c.o_min <- v;
        if v > c.o_max then c.o_max <- v)

let dist_of_cell c =
  {
    d_count = c.o_count;
    d_sum = c.o_sum;
    d_min = (if c.o_count = 0 then 0.0 else c.o_min);
    d_max = (if c.o_count = 0 then 0.0 else c.o_max);
    d_window = Array.sub c.ring 0 (min c.o_count dist_window_capacity);
  }

let distributions t =
  match t with
  | Disabled -> []
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Hashtbl.fold (fun k c acc -> (k, dist_of_cell c) :: acc) st.dists [])
    |> List.sort compare

let distribution t name =
  match t with
  | Disabled -> None
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Option.map dist_of_cell (Hashtbl.find_opt st.dists name))

(* Nearest-rank percentile over a copy of the samples; [q] in [0,1]. *)
let percentile_of samples q =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let dist_percentile d q = percentile_of d.d_window q

let counter t name =
  match t with
  | Disabled -> 0
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        match Hashtbl.find_opt st.cnt name with Some r -> !r | None -> 0)

let counters t =
  match t with
  | Disabled -> []
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.cnt [])
    |> List.sort compare

let gauges t =
  match t with
  | Disabled -> []
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.ggs [])
    |> List.sort compare

(* ---- spans ---- *)

let snapshot_counters st =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.cnt []

let span_open t ?(attrs = []) name =
  match t with
  | Disabled -> -1
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        let id = st.next_id in
        st.next_id <- id + 1;
        let parent = match st.stack with [] -> -1 | s :: _ -> s.id in
        st.stack <-
          {
            id;
            name;
            parent;
            t_start = Clock.now ();
            attrs;
            snapshot = snapshot_counters st;
          }
          :: st.stack;
        id)

let counter_deltas st (sp : span_rec) =
  Hashtbl.fold
    (fun k r acc ->
      let before =
        match List.assoc_opt k sp.snapshot with Some v -> v | None -> 0
      in
      let d = !r - before in
      if d <> 0 then (k, d) :: acc else acc)
    st.cnt []
  |> List.sort compare

let close_one st ~extra_attrs (sp : span_rec) =
  let t_end = Clock.now () in
  let dur = Float.max 0.0 (t_end -. sp.t_start) in
  (* aggregate *)
  (match Hashtbl.find_opt st.aggs sp.name with
  | Some c ->
    c.c_calls <- c.c_calls + 1;
    c.c_total <- c.c_total +. dur;
    if dur > c.c_max then c.c_max <- dur
  | None ->
    Hashtbl.add st.aggs sp.name { c_calls = 1; c_total = dur; c_max = dur });
  (* trace *)
  if st.trace <> None then begin
    let attrs = sp.attrs @ extra_attrs in
    let fields =
      [
        ("type", "\"span\"");
        ("id", string_of_int sp.id);
        ("parent", string_of_int sp.parent);
        ("name", Printf.sprintf "\"%s\"" (Json.escape sp.name));
        ("start", Json.of_float sp.t_start);
        ("dur", Json.of_float dur);
      ]
      @ (if attrs = [] then []
         else
           [
             ( "attrs",
               Json.obj (List.map (fun (k, v) -> (k, Json.of_value v)) attrs) );
           ])
      @
      match counter_deltas st sp with
      | [] -> []
      | ds ->
        [
          ( "counters",
            Json.obj (List.map (fun (k, d) -> (k, string_of_int d)) ds) );
        ]
    in
    emit st (Json.obj fields)
  end

let span_close t ?(attrs = []) id =
  match t with
  | Disabled -> ()
  | Enabled st ->
    if id >= 0 then
      Mutex.protect st.lock (fun () ->
          (* Close any still-open children first (properly nested). *)
          let rec pop () =
            match st.stack with
            | [] -> ()
            | sp :: rest ->
              st.stack <- rest;
              if sp.id = id then close_one st ~extra_attrs:attrs sp
              else begin
                close_one st ~extra_attrs:[] sp;
                pop ()
              end
          in
          pop ())

let span t ?attrs name f =
  match t with
  | Disabled -> f ()
  | Enabled _ ->
    let id = span_open t ?attrs name in
    Fun.protect ~finally:(fun () -> span_close t id) f

let event t ?(attrs = []) name =
  match t with
  | Disabled -> ()
  | Enabled st ->
    if st.trace <> None then
      Mutex.protect st.lock (fun () ->
      let parent = match st.stack with [] -> -1 | s :: _ -> s.id in
      let fields =
        [
          ("type", "\"event\"");
          ("name", Printf.sprintf "\"%s\"" (Json.escape name));
          ("t", Json.of_float (Clock.now ()));
          ("span", string_of_int parent);
        ]
        @
        if attrs = [] then []
        else
          [
            ( "attrs",
              Json.obj (List.map (fun (k, v) -> (k, Json.of_value v)) attrs) );
          ]
      in
      emit st (Json.obj fields))

(* ---- aggregate access ---- *)

let span_aggregates t =
  match t with
  | Disabled -> []
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
        Hashtbl.fold
          (fun k c acc ->
            ( k,
              {
                agg_calls = c.c_calls;
                agg_total_s = c.c_total;
                agg_max_s = c.c_max;
              } )
            :: acc)
          st.aggs [])
    |> List.sort compare

(* Fold a worker handle's totals into a parent handle: counters add,
   span aggregates combine (calls and totals add, maxima max), gauges
   last-write-wins.  Trace lines are not merged — workers that need a
   trace should write their own file.  This is the join-side half of the
   per-worker-handle discipline used by the parallel subsystem. *)
let merge dst src =
  match (dst, src) with
  | Disabled, _ | _, Disabled -> ()
  | Enabled dstst, Enabled _ ->
    let src_counters = counters src in
    let src_aggs = span_aggregates src in
    let src_gauges = gauges src in
    let src_dists = distributions src in
    Mutex.protect dstst.lock (fun () ->
        List.iter
          (fun (k, v) ->
            if v > 0 then
              match Hashtbl.find_opt dstst.cnt k with
              | Some r -> r := !r + v
              | None -> Hashtbl.add dstst.cnt k (ref v))
          src_counters;
        List.iter
          (fun (k, (a : span_agg)) ->
            match Hashtbl.find_opt dstst.aggs k with
            | Some c ->
              c.c_calls <- c.c_calls + a.agg_calls;
              c.c_total <- c.c_total +. a.agg_total_s;
              if a.agg_max_s > c.c_max then c.c_max <- a.agg_max_s
            | None ->
              Hashtbl.add dstst.aggs k
                {
                  c_calls = a.agg_calls;
                  c_total = a.agg_total_s;
                  c_max = a.agg_max_s;
                })
          src_aggs;
        List.iter
          (fun (k, v) ->
            match Hashtbl.find_opt dstst.ggs k with
            | Some r -> r := v
            | None -> Hashtbl.add dstst.ggs k (ref v))
          src_gauges;
        List.iter
          (fun (k, (d : dist)) ->
            if d.d_count > 0 then begin
              let c =
                match Hashtbl.find_opt dstst.dists k with
                | Some c -> c
                | None ->
                  let c =
                    {
                      o_count = 0;
                      o_sum = 0.0;
                      o_min = infinity;
                      o_max = neg_infinity;
                      ring = Array.make dist_window_capacity 0.0;
                    }
                  in
                  Hashtbl.add dstst.dists k c;
                  c
              in
              (* The src window lands in the dst ring (unordered, bounded);
                 the exact meters add. *)
              Array.iteri
                (fun i v ->
                  c.ring.((c.o_count + i) mod dist_window_capacity) <- v)
                d.d_window;
              c.o_count <- c.o_count + d.d_count;
              c.o_sum <- c.o_sum +. d.d_sum;
              if d.d_min < c.o_min then c.o_min <- d.d_min;
              if d.d_max > c.o_max then c.o_max <- d.d_max
            end)
          src_dists)

let pp_summary fmt t =
  match t with
  | Disabled -> Format.pp_print_string fmt "(telemetry disabled)"
  | Enabled _ ->
    let spans = span_aggregates t in
    Format.fprintf fmt "@[<v>";
    if spans <> [] then begin
      Format.fprintf fmt "%-32s %8s %12s %12s@," "span" "calls" "total(s)"
        "max(s)";
      List.iter
        (fun (name, a) ->
          Format.fprintf fmt "%-32s %8d %12.6f %12.6f@," name a.agg_calls
            a.agg_total_s a.agg_max_s)
        spans
    end;
    (match counters t with
    | [] -> ()
    | cs ->
      Format.fprintf fmt "counters:@,";
      List.iter (fun (k, v) -> Format.fprintf fmt "  %-34s %d@," k v) cs);
    (match gauges t with
    | [] -> ()
    | gs ->
      Format.fprintf fmt "gauges:@,";
      List.iter (fun (k, v) -> Format.fprintf fmt "  %-34s %g@," k v) gs);
    Format.fprintf fmt "@]"

let stats_json t =
  let cs = List.map (fun (k, v) -> (k, string_of_int v)) (counters t) in
  let gs = List.map (fun (k, v) -> (k, Json.of_float v)) (gauges t) in
  let ss =
    List.map
      (fun (k, a) ->
        ( k,
          Json.obj
            [
              ("calls", string_of_int a.agg_calls);
              ("total_s", Json.of_float a.agg_total_s);
              ("max_s", Json.of_float a.agg_max_s);
            ] ))
      (span_aggregates t)
  in
  let ds =
    List.map
      (fun (k, d) ->
        ( k,
          Json.obj
            [
              ("count", string_of_int d.d_count);
              ("sum", Json.of_float d.d_sum);
              ("min", Json.of_float d.d_min);
              ("max", Json.of_float d.d_max);
              ("p50", Json.of_float (dist_percentile d 0.50));
              ("p95", Json.of_float (dist_percentile d 0.95));
              ("p99", Json.of_float (dist_percentile d 0.99));
            ] ))
      (distributions t)
  in
  Json.obj
    ([ ("counters", Json.obj cs); ("gauges", Json.obj gs); ("spans", Json.obj ss) ]
    @ if ds = [] then [] else [ ("dists", Json.obj ds) ])

(* [close] already holds the state lock; these lock-free variants avoid
   re-entering it (the mutex is not recursive). *)
let counters_unlocked st =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.cnt [] |> List.sort compare

let gauges_unlocked st =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.ggs [] |> List.sort compare

let close t =
  match t with
  | Disabled -> ()
  | Enabled st ->
    Mutex.protect st.lock (fun () ->
    if not st.closed then begin
      st.closed <- true;
      (* Close any spans left open so the trace is well-formed. *)
      List.iter (fun sp -> close_one st ~extra_attrs:[] sp) st.stack;
      st.stack <- [];
      List.iter
        (fun (k, v) ->
          emit st
            (Json.obj
               [
                 ("type", "\"counter\"");
                 ("name", Printf.sprintf "\"%s\"" (Json.escape k));
                 ("total", string_of_int v);
               ]))
        (counters_unlocked st);
      List.iter
        (fun (k, v) ->
          emit st
            (Json.obj
               [
                 ("type", "\"gauge\"");
                 ("name", Printf.sprintf "\"%s\"" (Json.escape k));
                 ("value", Json.of_float v);
               ]))
        (gauges_unlocked st);
      match st.trace with None -> () | Some oc -> flush oc
    end)
