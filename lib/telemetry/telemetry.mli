(** Zero-dependency observability: monotonic clock, hierarchical spans,
    named monotone counters and gauges, pluggable sinks.

    The paper's evaluation (Sec. 5) is entirely about where the time goes
    — which subsystem rejects a candidate model, how many Boolean models
    the control loop burns, how the solvers compare. This module is the
    machinery behind that kind of accounting: the engine (and anything
    else) opens {e spans} around its phases, bumps {e counters} as work
    happens, and a sink turns the stream into either an in-memory
    aggregate (for [--stats] / [--stats-json]) or a JSONL trace file (for
    [--trace]).

    A disabled handle ({!disabled}) compiles every operation down to a
    single pattern match on an immutable constructor — the instrumented
    code paths pay no measurable cost when telemetry is off, which is what
    lets the instrumentation live permanently in the hot loops'
    surroundings. *)

(** {1 Monotonic clock shim}

    The stdlib has no monotonic clock and this library links no C stubs,
    so the shim monotonizes [Unix.gettimeofday]: readings never decrease
    even across wall-clock jumps (NTP steps, DST). All span timestamps and
    every timing in the engine and bench harness go through it. *)
module Clock : sig
  val now : unit -> float
  (** Monotonic (never-decreasing) seconds since an arbitrary epoch fixed
      at module initialization. *)

  val wall : unit -> float
  (** The raw wall clock, for human-facing timestamps only. *)
end

(** {1 Values and handles} *)

type value = Int of int | Float of float | String of string | Bool of bool
(** Attribute values attached to spans and events. *)

type t
(** A telemetry handle: either disabled (all operations no-ops) or an
    enabled recorder with an in-memory aggregator and an optional JSONL
    trace channel. Enabled handles are domain-safe — every operation
    takes an internal lock — but spans opened concurrently from several
    domains interleave on one stack and nest meaninglessly; parallel
    workers should record into their own handle and {!merge} it into the
    parent's at join. *)

val disabled : t
(** The null sink. [enabled disabled = false]; every operation is a
    no-op. This is the default everywhere. *)

val create : ?trace:out_channel -> unit -> t
(** An enabled recorder. Aggregation (counter totals, per-span-name call
    counts and cumulative durations) is always on; [trace] additionally
    streams spans, events and final counter totals as JSONL (one object
    per line) to the channel. The caller owns the channel; call {!close}
    before closing it. *)

val enabled : t -> bool

(** {1 Spans}

    Spans nest: the innermost open span is the parent of the next one
    opened. Counter increments are attributed to every open span, so a
    finished span knows the deltas of all counters that moved while it was
    open ("12 pivots happened inside this linear check"). *)

val span : t -> ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span named [name]. Exception-safe:
    the span is closed (and traced) even if [f] raises. *)

val span_open : t -> ?attrs:(string * value) list -> string -> int
(** Manual span begin, for non-lexical extents. Returns a span id
    ([-1] when disabled). *)

val span_close : t -> ?attrs:(string * value) list -> int -> unit
(** Close the span [id] (and any spans opened after it that are still
    open — closing is properly nested by construction). Extra [attrs] are
    appended to the span's record. *)

val event : t -> ?attrs:(string * value) list -> string -> unit
(** A point-in-time occurrence, attributed to the innermost open span. *)

(** {1 Counters and gauges} *)

val add : t -> string -> int -> unit
(** [add t name d] bumps the monotone counter [name] by [d] (negative
    deltas are ignored: counters are monotone by contract). *)

val set_gauge : t -> string -> float -> unit
(** Record the latest value of a non-monotone quantity. *)

val counter : t -> string -> int
(** Current total of a counter (0 when disabled or never bumped). *)

(** {1 Distributions}

    Observed samples (latencies, sizes…): exact count/sum/min/max plus a
    bounded window of the most recent samples from which percentiles are
    estimated — the machinery behind the solve server's p50/p99 latency
    reporting and the bench harness's tail-latency columns. *)

type dist = {
  d_count : int;  (** samples observed (exact) *)
  d_sum : float;  (** sum of all samples (exact) *)
  d_min : float;
  d_max : float;
  d_window : float array;
      (** the most recent samples (bounded, unordered) — the percentile
          estimation basis *)
}

val observe : t -> string -> float -> unit
(** Record one sample into the named distribution. No-op when disabled. *)

val distribution : t -> string -> dist option
val distributions : t -> (string * dist) list
(** All distributions, sorted by name. Empty when disabled. *)

val dist_percentile : dist -> float -> float
(** Nearest-rank percentile over the window; the quantile is in [0,1]
    (e.g. [0.99] for p99). 0 on an empty distribution. *)

val percentile_of : float array -> float -> float
(** Nearest-rank percentile of a raw sample array (sorts a copy). *)

(** {1 Reading the aggregate} *)

type span_agg = {
  agg_calls : int;
  agg_total_s : float;  (** cumulative duration over all calls *)
  agg_max_s : float;
}

val counters : t -> (string * int) list
(** All counter totals, sorted by name. Empty when disabled. *)

val gauges : t -> (string * float) list

val span_aggregates : t -> (string * span_agg) list
(** Per-span-name aggregates, sorted by name. Empty when disabled. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s aggregate into [dst]: counters add,
    span aggregates combine (calls and totals add, maxima max), gauges
    last-write-wins, distributions combine (exact meters add, the src
    window lands in the dst window). Trace lines are not merged. No-op
    when either handle is disabled. This is the join-side half of the per-worker-handle
    discipline of the parallel subsystem: each worker records into a
    fresh handle, and the spawner merges at join. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable summary: span table (calls, total, max) then counter
    totals then gauges — the body of the CLI's [--stats]. *)

val stats_json : t -> string
(** The aggregate as one JSON object:
    [{"counters":{...},"gauges":{...},"spans":{name:{"calls":..,"total_s":..,"max_s":..}}}]
    plus, when any sample was observed, a ["dists"] object with
    count/sum/min/max/p50/p95/p99 per distribution. *)

val close : t -> unit
(** Close any spans left open, emit the final counter/gauge totals to the
    trace channel (if any) and flush it. The handle stays readable
    (aggregates survive) but must not record further spans. *)

(** {1 JSON helpers}

    Shared by the CLI and bench harness so every JSON we emit escapes
    strings and formats floats the same way. *)
module Json : sig
  val escape : string -> string
  (** Contents properly escaped for a double-quoted JSON string (quotes
      not included). *)

  val of_value : value -> string
  val of_float : float -> string
  (** Plain decimal, never OCaml's [nan]/[infinity] (clamped to null). *)

  val obj : (string * string) list -> string
  (** [obj [(k, v); ...]] where each [v] is already-rendered JSON. *)
end
