(** Zero-dependency observability: monotonic clock, hierarchical spans
    with cross-domain trace context, named monotone counters and gauges,
    log-bucketed histograms, pluggable sinks.

    The paper's evaluation (Sec. 5) is entirely about where the time goes
    — which subsystem rejects a candidate model, how many Boolean models
    the control loop burns, how the solvers compare. This module is the
    machinery behind that kind of accounting: the engine (and anything
    else) opens {e spans} around its phases, bumps {e counters} as work
    happens, and a sink turns the stream into either an in-memory
    aggregate (for [--stats] / [--stats-json]) or a JSONL trace file (for
    [--trace]).

    Span ids are allocated from one process-wide counter, so spans
    recorded by different handles never collide; {!fork} hands a worker
    domain (or a server request) a {e linked} handle that shares the
    parent's trace sink and id space and remembers which span it hangs
    under. A single query that fans out across the executor and the
    domain pool therefore yields one connected span tree in the trace,
    stitched by parent links alone.

    A disabled handle ({!disabled}) compiles every operation down to a
    single pattern match on an immutable constructor — the instrumented
    code paths pay no measurable cost when telemetry is off, which is what
    lets the instrumentation live permanently in the hot loops'
    surroundings. *)

(** {1 Monotonic clock shim}

    The stdlib has no monotonic clock and this library links no C stubs,
    so the shim monotonizes [Unix.gettimeofday]: readings never decrease
    even across wall-clock jumps (NTP steps, DST). All span timestamps and
    every timing in the engine and bench harness go through it. *)
module Clock : sig
  val now : unit -> float
  (** Monotonic (never-decreasing) seconds since an arbitrary epoch fixed
      at module initialization. *)

  val wall : unit -> float
  (** The raw wall clock, for human-facing timestamps only. *)
end

(** {1 Values and handles} *)

type value = Int of int | Float of float | String of string | Bool of bool
(** Attribute values attached to spans and events. *)

type t
(** A telemetry handle: either disabled (all operations no-ops) or an
    enabled recorder with an in-memory aggregator and an optional JSONL
    trace sink. Enabled handles are domain-safe — every operation takes
    an internal lock — but spans opened concurrently from several domains
    interleave on one stack and nest meaninglessly; parallel workers
    record into a {!fork} of the spawner's handle and {!merge} it back at
    join. *)

val disabled : t
(** The null sink. [enabled disabled = false]; every operation is a
    no-op. This is the default everywhere. *)

val create : ?trace:out_channel -> unit -> t
(** An enabled recorder. Aggregation (counter totals, per-span-name call
    counts and cumulative durations, histograms) is always on; [trace]
    additionally streams spans, events and final counter totals as JSONL
    (one object per line) to the channel. The caller owns the channel;
    call {!close} before closing it. *)

val enabled : t -> bool

(** {1 Trace context}

    A {e trace id} names one logical request end to end; every span a
    handle records while a trace id is set carries it in the trace
    stream, so one file multiplexing many concurrent requests can be
    sliced back into per-request trees. *)

val mint_trace_id : unit -> string
(** A fresh process-unique trace id (16 lowercase hex chars). *)

val set_trace_id : t -> string -> unit
(** Tag every span recorded by this handle from now on. *)

val trace_id : t -> string option
(** The handle's current trace id, if any. *)

val current_span : t -> int
(** The innermost open span's id — the parent a new child would get.
    Falls back to the handle's fork parent when no span is open; [-1]
    when disabled or at top level. *)

val fork : ?parent:int -> ?trace_id:string -> t -> t
(** [fork t] is a linked child handle: it shares [t]'s trace sink and the
    process-wide span-id space, inherits [t]'s trace id (unless
    [trace_id] overrides it), and parents its top-level spans under
    [parent] (default: [current_span t] at fork time). Counters, gauges,
    histograms and span aggregates accumulate locally — hand the fork to
    a worker domain or a server request, then {!merge} it back. Forking
    {!disabled} yields {!disabled}. *)

(** {1 Spans}

    Spans nest: the innermost open span is the parent of the next one
    opened. Counter increments are attributed to every open span, so a
    finished span knows the deltas of all counters that moved while it was
    open ("12 pivots happened inside this linear check"). *)

val span : t -> ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span named [name]. Exception-safe:
    the span is closed (and traced) even if [f] raises. *)

val span_open : t -> ?attrs:(string * value) list -> string -> int
(** Manual span begin, for non-lexical extents. Returns a span id
    ([-1] when disabled). *)

val span_close : t -> ?attrs:(string * value) list -> int -> unit
(** Close the span [id]. Any spans opened after it that are still open
    are closed first (closing is properly nested by construction) and
    marked with an [abandoned:true] attribute, so a truncated trace is
    distinguishable from a clean one. Extra [attrs] are appended to the
    span's record. *)

val event : t -> ?attrs:(string * value) list -> string -> unit
(** A point-in-time occurrence, attributed to the innermost open span. *)

(** {1 Counters and gauges} *)

val add : t -> string -> int -> unit
(** [add t name d] bumps the monotone counter [name] by [d] (negative
    deltas are ignored: counters are monotone by contract). *)

val set_gauge : t -> string -> float -> unit
(** Record the latest value of a non-monotone quantity. *)

val counter : t -> string -> int
(** Current total of a counter (0 when disabled or never bumped). *)

(** {1 Histograms}

    Observed samples (latencies, pivot counts, sizes…) land in sparse
    log-bucketed histograms: bucket [i] covers [(γ^(i-1), γ^i]] with
    γ = 2{^1/4} ≈ 1.189, one extra bucket holds non-positive samples.
    Count/sum/min/max are exact; quantiles are estimated from the bucket
    boundaries and are accurate within a factor of √γ ≈ 1.09. Unlike a
    sample window, bucket counts merge exactly and associatively — the
    property that lets per-worker and per-request histograms fold into
    the server's long-running aggregate without bias. *)

val hist_gamma : float
(** The bucket growth factor γ = 2{^1/4}. *)

type hist = {
  h_count : int;  (** samples observed (exact) *)
  h_sum : float;  (** sum of all samples (exact) *)
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
      (** occupied buckets, ascending by bound: [(ub, n)] means [n]
          samples in [(ub/γ, ub]]; bound [0.] holds samples [<= 0]. *)
}

val observe : t -> string -> float -> unit
(** Record one sample into the named histogram. No-op when disabled. *)

val histogram : t -> string -> hist option
val histograms : t -> (string * hist) list
(** All histograms, sorted by name. Empty when disabled. *)

val hist_quantile : hist -> float -> float
(** Nearest-rank quantile estimate, [q] in [0,1] (e.g. [0.99] for p99):
    the geometric midpoint of the bucket holding the rank, clamped to
    [[h_min, h_max]]. 0 on an empty histogram. *)

val hist_cumulative : hist -> (float * int) list
(** Cumulative counts by ascending upper bound — the Prometheus
    [_bucket{le=...}] view. The final entry's count equals [h_count]. *)

(** {1 Reading the aggregate} *)

type span_agg = {
  agg_calls : int;
  agg_total_s : float;  (** cumulative duration over all calls *)
  agg_max_s : float;
}

val counters : t -> (string * int) list
(** All counter totals, sorted by name. Empty when disabled. *)

val gauges : t -> (string * float) list

val span_aggregates : t -> (string * span_agg) list
(** Per-span-name aggregates, sorted by name. Empty when disabled. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s aggregate into [dst]: counters add,
    span aggregates combine (calls and totals add, maxima max), gauges
    last-write-wins, histograms merge bucket-wise (exactly). If [dst]
    has no trace id and [src] does, the id is preserved onto [dst].
    Trace lines are not merged — a {!fork} already writes into the
    shared sink, so there is nothing to move. No-op when either handle
    is disabled. This is the join-side half of the per-worker-handle
    discipline of the parallel subsystem: each worker records into a
    fork, and the spawner merges at join. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable summary: span table (calls, total, max) then counter
    totals then gauges — the body of the CLI's [--stats]. *)

val stats_json : t -> string
(** The aggregate as one JSON object:
    [{"counters":{...},"gauges":{...},"spans":{name:{"calls":..,"total_s":..,"max_s":..}}}]
    plus, when any sample was observed, a ["hists"] object with
    count/sum/min/max/p50/p95/p99 per histogram. *)

val flush : t -> unit
(** Flush the trace sink, if any. Cheap; safe from any linked handle. *)

val close : t -> unit
(** Close any spans left open (marked [abandoned:true]), emit the final
    counter/gauge totals to the trace sink (if any, and only from the
    handle that {!create}d it — forks stay quiet) and flush it. The
    handle stays readable (aggregates survive) but must not record
    further spans. *)

(** {1 JSON helpers}

    Shared by the CLI and bench harness so every JSON we emit escapes
    strings and formats floats the same way. *)
module Json : sig
  val escape : string -> string
  (** Contents properly escaped for a double-quoted JSON string (quotes
      not included). *)

  val of_value : value -> string
  val of_float : float -> string
  (** Plain decimal, never OCaml's [nan]/[infinity] (clamped to null). *)

  val obj : (string * string) list -> string
  (** [obj [(k, v); ...]] where each [v] is already-rendered JSON. *)
end
