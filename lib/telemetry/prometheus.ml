(* Prometheus text exposition format (version 0.0.4) over a telemetry
   handle's aggregate.  No client library: the format is line-oriented
   and tiny, and the container must not grow dependencies. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let metric_name ?(prefix = "absolver") name =
  let b = Buffer.create (String.length prefix + String.length name + 1) in
  Buffer.add_string b prefix;
  Buffer.add_char b '_';
  String.iter (fun c -> Buffer.add_char b (if is_name_char c then c else '_')) name;
  Buffer.contents b

(* Label values escape backslash, double quote and newline. *)
let label_value s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" f

(* A counter named [base|k=v,k2=v2] renders as a labelled sample of the
   [base] family: [absolver_base_total{k="v",k2="v2"}].  The '|'
   convention lets ordinary string-keyed telemetry counters carry
   Prometheus labels (e.g. [server.errors|kind=internal]) without a
   structured-metric layer; samples sharing a base are grouped under one
   [# TYPE] line, as the exposition format requires. *)
let split_labels name =
  match String.index_opt name '|' with
  | None -> (name, "")
  | Some i ->
    let base = String.sub name 0 i in
    let pairs =
      String.split_on_char ',' (String.sub name (i + 1) (String.length name - i - 1))
    in
    let rendered =
      List.filter_map
        (fun pair ->
          match String.index_opt pair '=' with
          | None -> None
          | Some j ->
            let k = String.sub pair 0 j in
            let v = String.sub pair (j + 1) (String.length pair - j - 1) in
            let k =
              String.map (fun c -> if is_name_char c then c else '_') k
            in
            Some (Printf.sprintf "%s=\"%s\"" k (label_value v)))
        pairs
    in
    (base, "{" ^ String.concat "," rendered ^ "}")

let render ?(prefix = "absolver") t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      let base, labels = split_labels name in
      let m = metric_name ~prefix base ^ "_total" in
      if not (Hashtbl.mem typed m) then begin
        Hashtbl.add typed m ();
        line "# TYPE %s counter" m
      end;
      line "%s%s %d" m labels v)
    (List.sort compare (Telemetry.counters t));
  List.iter
    (fun (name, v) ->
      let m = metric_name ~prefix name in
      line "# TYPE %s gauge" m;
      line "%s %s" m (number v))
    (Telemetry.gauges t);
  List.iter
    (fun (name, (h : Telemetry.hist)) ->
      let m = metric_name ~prefix name in
      line "# TYPE %s histogram" m;
      List.iter
        (fun (ub, cum) ->
          line "%s_bucket{le=\"%s\"} %d" m (label_value (number ub)) cum)
        (Telemetry.hist_cumulative h);
      line "%s_bucket{le=\"+Inf\"} %d" m h.Telemetry.h_count;
      line "%s_sum %s" m (number h.Telemetry.h_sum);
      line "%s_count %d" m h.Telemetry.h_count)
    (Telemetry.histograms t);
  (match Telemetry.span_aggregates t with
  | [] -> ()
  | aggs ->
    let calls = metric_name ~prefix "span_calls" ^ "_total" in
    let secs = metric_name ~prefix "span_seconds" ^ "_total" in
    line "# TYPE %s counter" calls;
    List.iter
      (fun (name, (a : Telemetry.span_agg)) ->
        line "%s{span=\"%s\"} %d" calls (label_value name) a.Telemetry.agg_calls)
      aggs;
    line "# TYPE %s counter" secs;
    List.iter
      (fun (name, (a : Telemetry.span_agg)) ->
        line "%s{span=\"%s\"} %s" secs (label_value name)
          (number a.Telemetry.agg_total_s))
      aggs);
  Buffer.contents b
