(** HC4-revise: forward-backward interval constraint propagation.

    For each constraint [e op 0], the forward phase computes interval
    enclosures bottom-up; the backward phase intersects the root with the
    relation's feasible set ([(-inf,0]], [[0,0]], ...) and projects the
    restriction down to the variable leaves, narrowing the box. A fixpoint
    loop over all constraints yields the contractor used by the
    branch-and-prune solver. Removing HC4 (bisection only) is one of the
    ablation benchmarks. *)

module I = Absolver_numeric.Interval

val total_revisions : unit -> int
(** Process-wide cumulative count of {!revise} passes (including those
    inside {!contract}); telemetry snapshots this before/after a call to
    attribute contraction work to a phase. *)

val revise : Box.t -> Expr.rel -> bool
(** One forward-backward pass of a single constraint; narrows [box] in
    place. Returns [false] iff the box became empty (the constraint cannot
    hold anywhere in it). *)

val contract :
  ?max_rounds:int ->
  ?budget:Absolver_resource.Budget.t ->
  Box.t ->
  Expr.rel list ->
  bool
(** Fixpoint of {!revise} over all constraints. Returns [false] iff the
    box became empty. The [budget] is ticked once per fixpoint round;
    exhaustion stops the fixpoint early (sound: contraction preserves all
    solutions) and never escapes — the trip reason stays sticky in the
    budget for the caller to observe. *)
