module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval
module Linexpr = Absolver_lp.Linexpr

type t =
  | Const of Q.t
  | Var of int
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * int
  | Sqrt of t
  | Exp of t
  | Log of t
  | Sin of t
  | Cos of t

let const q = Const q
let of_int n = Const (Q.of_int n)
let var v = Var v

let neg = function
  | Const q -> Const (Q.neg q)
  | Neg e -> e
  | e -> Neg e

let add a b =
  match (a, b) with
  | Const x, Const y -> Const (Q.add x y)
  | Const x, e when Q.is_zero x -> e
  | e, Const x when Q.is_zero x -> e
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | Const x, Const y -> Const (Q.sub x y)
  | e, Const x when Q.is_zero x -> e
  | Const x, e when Q.is_zero x -> neg e
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Const x, Const y -> Const (Q.mul x y)
  | Const x, _ when Q.is_zero x -> Const Q.zero
  | _, Const x when Q.is_zero x -> Const Q.zero
  | Const x, e when Q.equal x Q.one -> e
  | e, Const x when Q.equal x Q.one -> e
  | _ -> Mul (a, b)

let div a b =
  match (a, b) with
  | Const x, Const y when not (Q.is_zero y) -> Const (Q.div x y)
  | e, Const x when Q.equal x Q.one -> e
  | _ -> Div (a, b)

let pow e n =
  match (e, n) with
  | _, 0 -> Const Q.one
  | _, 1 -> e
  | Const q, _ when n >= 0 || not (Q.is_zero q) -> Const (Q.pow q n)
  | _ -> Pow (e, n)

let sqrt e = Sqrt e
let exp e = Exp e
let log e = Log e
let sin e = Sin e
let cos e = Cos e
let sum = function [] -> Const Q.zero | e :: rest -> List.fold_left add e rest

let rec vars_acc acc = function
  | Const _ -> acc
  | Var v -> v :: acc
  | Neg e | Pow (e, _) | Sqrt e | Exp e | Log e | Sin e | Cos e -> vars_acc acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> vars_acc (vars_acc acc a) b

let vars e = List.sort_uniq compare (vars_acc [] e)

let rec size = function
  | Const _ | Var _ -> 1
  | Neg e | Pow (e, _) | Sqrt e | Exp e | Log e | Sin e | Cos e -> 1 + size e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> 1 + size a + size b

let compare = Stdlib.compare
let equal a b = compare a b = 0

let rec pp ?(name = fun v -> Printf.sprintf "x%d" v) () fmt e =
  let pp = pp ~name () in
  match e with
  | Const q -> Q.pp fmt q
  | Var v -> Format.pp_print_string fmt (name v)
  | Neg e -> Format.fprintf fmt "-(%a)" pp e
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp a pp b
  | Pow (e, n) -> Format.fprintf fmt "(%a)^%d" pp e n
  | Sqrt e -> Format.fprintf fmt "sqrt(%a)" pp e
  | Exp e -> Format.fprintf fmt "exp(%a)" pp e
  | Log e -> Format.fprintf fmt "log(%a)" pp e
  | Sin e -> Format.fprintf fmt "sin(%a)" pp e
  | Cos e -> Format.fprintf fmt "cos(%a)" pp e

let to_string ?name e = Format.asprintf "%a" (pp ?name ()) e

let rec eval_float env = function
  | Const q -> Q.to_float q
  | Var v -> env v
  | Neg e -> -.eval_float env e
  | Add (a, b) -> eval_float env a +. eval_float env b
  | Sub (a, b) -> eval_float env a -. eval_float env b
  | Mul (a, b) -> eval_float env a *. eval_float env b
  | Div (a, b) -> eval_float env a /. eval_float env b
  | Pow (e, n) -> eval_float env e ** float_of_int n
  | Sqrt e -> Float.sqrt (eval_float env e)
  | Exp e -> Float.exp (eval_float env e)
  | Log e -> Float.log (eval_float env e)
  | Sin e -> Float.sin (eval_float env e)
  | Cos e -> Float.cos (eval_float env e)

let rec eval_interval env = function
  | Const q -> I.of_rational q
  | Var v -> env v
  | Neg e -> I.neg (eval_interval env e)
  | Add (a, b) -> I.add (eval_interval env a) (eval_interval env b)
  | Sub (a, b) -> I.sub (eval_interval env a) (eval_interval env b)
  | Mul (a, b) -> I.mul (eval_interval env a) (eval_interval env b)
  | Div (a, b) -> I.div (eval_interval env a) (eval_interval env b)
  | Pow (e, n) -> I.pow_int (eval_interval env e) n
  | Sqrt e -> I.sqrt (eval_interval env e)
  | Exp e -> I.exp (eval_interval env e)
  | Log e -> I.log (eval_interval env e)
  | Sin e -> I.sin (eval_interval env e)
  | Cos e -> I.cos (eval_interval env e)

(* Rigorous enclosure of the exact value at a rational point: interval
   evaluation over verified tightest float enclosures of the
   coordinates.  The relaxation layer uses this as a corner evaluator —
   sound secant intercepts come from endpoint enclosures, not from
   rounding-error-prone float evaluation. *)
let enclose_at env e = eval_interval (fun v -> I.of_rational (env v)) e

let rec eval_exact env expr =
  let ( let* ) = Option.bind in
  match expr with
  | Const q -> Some q
  | Var v -> Some (env v)
  | Neg e ->
    let* x = eval_exact env e in
    Some (Q.neg x)
  | Add (a, b) ->
    let* x = eval_exact env a in
    let* y = eval_exact env b in
    Some (Q.add x y)
  | Sub (a, b) ->
    let* x = eval_exact env a in
    let* y = eval_exact env b in
    Some (Q.sub x y)
  | Mul (a, b) ->
    let* x = eval_exact env a in
    let* y = eval_exact env b in
    Some (Q.mul x y)
  | Div (a, b) ->
    let* x = eval_exact env a in
    let* y = eval_exact env b in
    if Q.is_zero y then None else Some (Q.div x y)
  | Pow (e, n) ->
    let* x = eval_exact env e in
    if n >= 0 then Some (Q.pow x n)
    else if Q.is_zero x then None
    else Some (Q.pow x n)
  | Sqrt _ | Exp _ | Log _ | Sin _ | Cos _ -> None

let rec linearize = function
  | Const q -> Some (Linexpr.constant q)
  | Var v -> Some (Linexpr.var v)
  | Neg e -> Option.map Linexpr.neg (linearize e)
  | Add (a, b) -> (
    match (linearize a, linearize b) with
    | Some x, Some y -> Some (Linexpr.add x y)
    | _ -> None)
  | Sub (a, b) -> (
    match (linearize a, linearize b) with
    | Some x, Some y -> Some (Linexpr.sub x y)
    | _ -> None)
  | Mul (a, b) -> (
    match (linearize a, linearize b) with
    | Some x, Some y ->
      if Linexpr.is_constant x then Some (Linexpr.scale (Linexpr.const x) y)
      else if Linexpr.is_constant y then Some (Linexpr.scale (Linexpr.const y) x)
      else None
    | _ -> None)
  | Div (a, b) -> (
    match (linearize a, linearize b) with
    | Some x, Some y ->
      if Linexpr.is_constant y && not (Q.is_zero (Linexpr.const y)) then
        Some (Linexpr.scale (Q.inv (Linexpr.const y)) x)
      else None
    | _ -> None)
  | Pow (e, n) -> (
    match linearize e with
    | Some x when Linexpr.is_constant x && n >= 0 ->
      Some (Linexpr.constant (Q.pow (Linexpr.const x) n))
    | Some x when n = 1 -> Some x
    | _ -> None)
  | Sqrt _ | Exp _ | Log _ | Sin _ | Cos _ -> None

let is_linear e = Option.is_some (linearize e)

let rec deriv e v =
  match e with
  | Const _ -> Const Q.zero
  | Var w -> if w = v then Const Q.one else Const Q.zero
  | Neg e -> neg (deriv e v)
  | Add (a, b) -> add (deriv a v) (deriv b v)
  | Sub (a, b) -> sub (deriv a v) (deriv b v)
  | Mul (a, b) -> add (mul (deriv a v) b) (mul a (deriv b v))
  | Div (a, b) ->
    div (sub (mul (deriv a v) b) (mul a (deriv b v))) (pow b 2)
  | Pow (e, n) -> mul (mul (of_int n) (pow e (n - 1))) (deriv e v)
  | Sqrt e -> div (deriv e v) (mul (of_int 2) (sqrt e))
  | Exp e -> mul (exp e) (deriv e v)
  | Log e -> div (deriv e v) e
  | Sin e -> mul (cos e) (deriv e v)
  | Cos e -> neg (mul (sin e) (deriv e v))

let rec subst f e =
  match e with
  | Var v -> ( match f v with Some e' -> e' | None -> e)
  | Const _ -> e
  | Neg e -> neg (subst f e)
  | Add (a, b) -> add (subst f a) (subst f b)
  | Sub (a, b) -> sub (subst f a) (subst f b)
  | Mul (a, b) -> mul (subst f a) (subst f b)
  | Div (a, b) -> div (subst f a) (subst f b)
  | Pow (e, n) -> pow (subst f e) n
  | Sqrt e -> sqrt (subst f e)
  | Exp e -> exp (subst f e)
  | Log e -> log (subst f e)
  | Sin e -> sin (subst f e)
  | Cos e -> cos (subst f e)

type rel = { expr : t; op : Linexpr.op; tag : int }

let pp_rel ?name () fmt r =
  Format.fprintf fmt "%a %a 0" (pp ?name ()) r.expr Linexpr.pp_op r.op

let holds_float ?(tol = 1e-9) env r =
  let v = eval_float env r.expr in
  if Float.is_nan v then false
  else
    match r.op with
    | Linexpr.Le -> v <= tol
    | Linexpr.Lt -> v < tol
    | Linexpr.Ge -> v >= -.tol
    | Linexpr.Gt -> v > -.tol
    | Linexpr.Eq -> Float.abs v <= tol

let certainly_holds env r =
  let i = eval_interval env r.expr in
  if I.is_empty i then false
  else
    match r.op with
    | Linexpr.Le -> i.I.hi <= 0.0
    | Linexpr.Lt -> i.I.hi < 0.0
    | Linexpr.Ge -> i.I.lo >= 0.0
    | Linexpr.Gt -> i.I.lo > 0.0
    | Linexpr.Eq -> i.I.lo = 0.0 && i.I.hi = 0.0

let certainly_violated env r =
  let i = eval_interval env r.expr in
  if I.is_empty i then false
  else
    match r.op with
    | Linexpr.Le -> i.I.lo > 0.0
    | Linexpr.Lt -> i.I.lo >= 0.0
    | Linexpr.Ge -> i.I.hi < 0.0
    | Linexpr.Gt -> i.I.hi <= 0.0
    | Linexpr.Eq -> not (I.contains_zero i)

let negate_rel r =
  match r.op with
  | Linexpr.Eq ->
    [ { r with op = Linexpr.Lt }; { r with op = Linexpr.Gt } ]
  | op -> [ { r with op = Linexpr.negate_op op } ]
