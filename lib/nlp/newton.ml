module I = Absolver_numeric.Interval
module Budget = Absolver_resource.Budget

(* Process-wide step total, differenced by telemetry (same pattern as
   Simplex.total_pivots).  Atomic: parallel branch-and-prune workers run
   Newton passes concurrently. *)
let global_steps = Atomic.make 0
let total_steps () = Atomic.get global_steps

let step f ~var x =
  Atomic.incr global_steps;
  if I.is_empty x then I.empty
  else begin
    let m = I.mid x in
    let env_point v = if v = var then I.of_float m else I.entire in
    let env_box v = if v = var then x else I.entire in
    let fm = Expr.eval_interval env_point f in
    let f' = Expr.eval_interval env_box (Expr.deriv f var) in
    if I.is_empty fm || I.is_empty f' then x
    else if I.contains_zero f' then
      (* Extended division would split; keep the hull intersected. *)
      let quot = I.div fm f' in
      I.inter x (I.sub (I.of_float m) quot)
    else
      let quot = I.div fm f' in
      I.inter x (I.sub (I.of_float m) quot)
  end

let contract ?(max_steps = 20) ?(budget = Budget.unlimited) f ~var x =
  let rec loop i x =
    if i >= max_steps || I.is_empty x then x
    else begin
      Budget.tick budget;
      let x' = step f ~var x in
      if I.is_empty x' then x'
      else if I.width x' < 0.9 *. I.width x then loop (i + 1) x'
      else x'
    end
  in
  (* Each Newton step preserves all roots, so an early stop returns a
     sound (merely wider) enclosure; the trip stays sticky in the budget. *)
  match loop 0 x with v -> v | exception Budget.Exhausted _ -> x

let proves_root f ~var x =
  if I.is_empty x || not (Float.is_finite (I.width x)) then false
  else
    let n = step f ~var x in
    (not (I.is_empty n)) && n.I.lo > x.I.lo && n.I.hi < x.I.hi
