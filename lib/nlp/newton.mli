(** Univariate interval Newton contraction.

    For an equality constraint [f(x) = 0] mentioning a single variable,
    the Newton operator [N(X) = m - f(m) / f'(X)] contracts [X] while
    preserving all roots; if [N(X)] lands strictly inside [X] it also
    proves existence of a root. Used as an optional extra contractor in
    {!Branch_prune} (ablation: [use_newton]). *)

module I = Absolver_numeric.Interval

val total_steps : unit -> int
(** Process-wide cumulative count of Newton {!step}s (including those
    inside {!contract} and {!proves_root}), for telemetry differencing. *)

val step : Expr.t -> var:int -> I.t -> I.t
(** One Newton contraction step of [f = 0] on the interval; returns a
    (possibly empty) subinterval still containing all roots. *)

val contract :
  ?max_steps:int ->
  ?budget:Absolver_resource.Budget.t ->
  Expr.t ->
  var:int ->
  I.t ->
  I.t
(** Iterate {!step} until no further progress. The [budget] is ticked once
    per step; exhaustion returns the input interval unchanged (sound: every
    Newton step preserves all roots) and never escapes. *)

val proves_root : Expr.t -> var:int -> I.t -> bool
(** True when one Newton step maps the interval strictly into its own
    interior — a rigorous existence certificate for a root. *)
