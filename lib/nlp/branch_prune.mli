(** Interval branch-and-prune: the nonlinear feasibility oracle.

    This plays the role IPOPT [11] plays in the paper — deciding whether
    the conjunction of nonlinear constraints selected by a Boolean
    assignment is feasible, and producing a witness point. The paper's
    choice (a local interior-point method) can only answer "here is an
    approximately feasible point"; branch-and-prune answers that {e and}
    can prove infeasibility by exhaustion, which Table 1's
    [nonlinear_unsat] row needs (see DESIGN.md §3 for the substitution
    argument).

    Verdicts:
    - [Sat p]: every constraint is rigorously certified at [p] by interval
      evaluation;
    - [Approx_sat p]: [p] satisfies every constraint within [tol]
      (IPOPT-style tolerance answer; equalities usually land here);
    - [Unsat]: the search space was exhausted — no box survived pruning;
    - [Unknown]: node budget exhausted with no candidate point. *)

type outcome =
  | Sat of float array
  | Approx_sat of float array
  | Unsat
  | Unknown

type config = {
  eps : float; (** boxes narrower than this are not split further *)
  tol : float; (** feasibility tolerance for approximate answers *)
  max_nodes : int;
  use_hc4 : bool; (** ablation switch: contraction on/off *)
  use_newton : bool; (** ablation switch: univariate interval Newton *)
  samples_per_node : int;
      (** random feasibility samples per box (IPOPT-style local search) *)
  root_samples : int; (** multistart samples at the root box *)
  seed : int; (** deterministic sampling seed *)
}

val default_config : config

type stats = { nodes : int; prunings : int; max_depth : int }

val total_nodes : unit -> int
val total_prunings : unit -> int
(** Process-wide cumulative node/pruning totals over all {!solve} calls,
    for telemetry differencing (cf. {!Absolver_lp.Simplex.total_pivots}). *)

val solve :
  ?config:config ->
  ?budget:Absolver_resource.Budget.t ->
  ?telemetry:Absolver_telemetry.Telemetry.t ->
  ?jobs:int ->
  nvars:int ->
  box:Box.t ->
  Expr.rel list ->
  outcome * stats
(** Decide feasibility of the conjunction over the box. Variables absent
    from all constraints keep their box midpoint in witness points.

    [telemetry] is threaded into the parallel frontier (per-worker forks
    under the caller's open span, so traced runs stay one connected
    tree) and records the final search depth into the [nlp.bp_depth]
    histogram at every job count.

    The [budget] is ticked once per search node (and threaded into the HC4
    and Newton contractors). Exhaustion degrades exactly like the node
    cap — [Approx_sat] with the best candidate found so far, else
    [Unknown] — and never escapes as an exception; the typed reason stays
    sticky in the budget ({!Absolver_resource.Budget.tripped}).

    [jobs] (default 1) sets the number of worker domains. [jobs <= 1]
    runs the historical sequential search, bit-for-bit.  [jobs > 1] runs
    the box worklist as a work-stealing frontier
    ({!Absolver_parallel.Pool.Frontier}): workers contract and split
    boxes concurrently, the root multistart sampling is spread over the
    pool in chunks, and the first rigorous certificate cancels everyone
    else through forked budgets.  Every random draw is seeded by the
    node's split path, so the explored tree is schedule-independent:
    [Sat]/[Unsat] verdicts agree at every job count (witness points and
    [Approx_sat]/[Unknown] under a tripped cap may differ, since they
    depend on which worker reports first).  [Unsat] is only reported when
    the frontier fully drained (see DESIGN.md §11). *)

val pp_outcome : Format.formatter -> outcome -> unit
