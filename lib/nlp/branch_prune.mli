(** Interval branch-and-prune: the nonlinear feasibility oracle.

    This plays the role IPOPT [11] plays in the paper — deciding whether
    the conjunction of nonlinear constraints selected by a Boolean
    assignment is feasible, and producing a witness point. The paper's
    choice (a local interior-point method) can only answer "here is an
    approximately feasible point"; branch-and-prune answers that {e and}
    can prove infeasibility by exhaustion, which Table 1's
    [nonlinear_unsat] row needs (see DESIGN.md §3 for the substitution
    argument).

    Verdicts:
    - [Sat p]: every constraint is rigorously certified at [p] by interval
      evaluation;
    - [Approx_sat p]: [p] satisfies every constraint within [tol]
      (IPOPT-style tolerance answer; equalities usually land here);
    - [Unsat]: the search space was exhausted — no box survived pruning;
    - [Unknown]: node budget exhausted with no candidate point. *)

type outcome =
  | Sat of float array
  | Approx_sat of float array
  | Unsat
  | Unknown

type config = {
  eps : float; (** boxes narrower than this are not split further *)
  tol : float; (** feasibility tolerance for approximate answers *)
  max_nodes : int;
  use_hc4 : bool; (** ablation switch: contraction on/off *)
  use_newton : bool; (** ablation switch: univariate interval Newton *)
  samples_per_node : int;
      (** random feasibility samples per box (IPOPT-style local search) *)
  root_samples : int; (** multistart samples at the root box *)
  seed : int; (** deterministic sampling seed *)
  use_relax : bool;
      (** ablation switch: consult the relaxation oracle (when one is
          installed via [?relax]) before contracting a node *)
  relax_octagon : bool;
      (** try the octagon middle tier before the full LP check *)
  relax_obbt_depth : int;
      (** optimization-based bounds tightening runs at depths [<=] this
          (a depth gate rather than a running count, so the decision is a
          function of the node alone and parallel runs stay
          schedule-independent) *)
  relax_obbt_vars : int;
      (** number of most-influential variables tightened per OBBT node *)
}

val default_config : config

type stats = {
  nodes : int;
  prunings : int;
  max_depth : int;
  relax_cuts : int; (** linear cuts asserted by the relaxation oracle *)
  relax_lp_checks : int; (** LP feasibility checks run *)
  relax_pruned : int; (** nodes pruned by the relaxation (octagon or LP) *)
  relax_oct_pruned : int; (** subset of [relax_pruned] refuted by octagons *)
  relax_tightened : int; (** variable bounds tightened (octagon + OBBT) *)
  relax_obbt : int; (** LP optimizations run for bounds tightening *)
}
(** Per-solve counters. Unlike {!total_nodes}/{!total_prunings} these
    never conflate concurrent solves: each {!solve} call returns its own
    figures. *)

val empty_stats : stats

val merge_stats : stats -> stats -> stats
(** Field-wise sum ([max] for [max_depth]); for callers that chain
    several solver attempts into one logical nonlinear check. *)

val total_nodes : unit -> int
val total_prunings : unit -> int
(** Process-wide cumulative node/pruning totals over all {!solve} calls,
    for telemetry differencing (cf. {!Absolver_lp.Simplex.total_pivots}).
    These conflate concurrent solves; prefer the per-solve {!stats}. *)

(** {1 Relaxation oracle}

    The linear-relaxation layer ([Absolver_relax]) depends on this
    library, so the search loop sees it through this record of closures.
    [rx_node] is called once per node {e before} HC4/Newton with the
    node's ancestor cut chain (one group of linear cuts per surviving
    ancestor, root group first — exactly the rows a path-scoped LP
    session holds when the search sits at this node), its depth, and its
    box. [Rx_prune] discards the node outright; [Rx_continue chain]
    returns the extended chain for the node's children, possibly after
    tightening the box in place.

    Contract: the decision and any box mutation must be a function of
    [path], [depth] and the box only (never of scheduling or warm-start
    state), and must be {e sound}: a pruned box contains no point that
    satisfies every relation within the configured tolerance. Counters
    are atomics because parallel workers bump them concurrently; an
    oracle instance is meant to serve a single {!solve} call. *)

type relax_decision =
  | Rx_prune
  | Rx_continue of Absolver_lp.Linexpr.cons list list

type relax_oracle = {
  rx_node :
    budget:Absolver_resource.Budget.t ->
    path:Absolver_lp.Linexpr.cons list list ->
    depth:int ->
    Box.t ->
    relax_decision;
  rx_cuts : int Atomic.t;
  rx_lp_checks : int Atomic.t;
  rx_pruned : int Atomic.t;
  rx_oct_pruned : int Atomic.t;
  rx_tightened : int Atomic.t;
  rx_obbt : int Atomic.t;
}

val solve :
  ?config:config ->
  ?budget:Absolver_resource.Budget.t ->
  ?telemetry:Absolver_telemetry.Telemetry.t ->
  ?jobs:int ->
  ?relax:relax_oracle ->
  nvars:int ->
  box:Box.t ->
  Expr.rel list ->
  outcome * stats
(** Decide feasibility of the conjunction over the box. Variables absent
    from all constraints keep their box midpoint in witness points.

    [telemetry] is threaded into the parallel frontier (per-worker forks
    under the caller's open span, so traced runs stay one connected
    tree) and records the final search depth into the [nlp.bp_depth]
    histogram at every job count.

    The [budget] is ticked once per search node (and threaded into the HC4
    and Newton contractors, and into the relaxation oracle's LP pivots).
    Exhaustion degrades exactly like the node cap — [Approx_sat] with the
    best candidate found so far, else [Unknown] — and never escapes as an
    exception; the typed reason stays sticky in the budget
    ({!Absolver_resource.Budget.tripped}).

    [relax] installs a linear-relaxation oracle consulted at every node
    before contraction (gated by [config.use_relax]); pass a fresh oracle
    per call — its counters are reported in the returned {!stats}.

    [jobs] (default 1) sets the number of worker domains. [jobs <= 1]
    runs the historical sequential search (bit-for-bit identical to
    earlier releases when no oracle is installed).  [jobs > 1] runs the
    box worklist as a work-stealing frontier
    ({!Absolver_parallel.Pool.Frontier}): workers contract and split
    boxes concurrently, the root multistart sampling is spread over the
    pool in chunks, and the first rigorous certificate cancels everyone
    else through forked budgets.  Every random draw is seeded by the
    node's split path and every relaxation decision by the node's carried
    cut chain, so the explored tree is schedule-independent:
    [Sat]/[Unsat] verdicts agree at every job count (witness points and
    [Approx_sat]/[Unknown] under a tripped cap may differ, since they
    depend on which worker reports first).  [Unsat] is only reported when
    the frontier fully drained (see DESIGN.md §11). *)

val pp_outcome : Format.formatter -> outcome -> unit
