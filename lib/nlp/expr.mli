(** Nonlinear arithmetic expressions — the paper's class A of (possibly)
    nonlinear terms over [+ - * /] (Sec. 2), extended with [pow], [sqrt],
    [exp], [log], [sin], [cos] to substantiate the paper's claim that
    adding operators "is straightforward and not limited by a design
    decision". *)

module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval

type t =
  | Const of Q.t
  | Var of int
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * int
  | Sqrt of t
  | Exp of t
  | Log of t
  | Sin of t
  | Cos of t

(** {1 Smart constructors (with constant folding)} *)

val const : Q.t -> t
val of_int : int -> t
val var : int -> t
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> int -> t
val sqrt : t -> t
val exp : t -> t
val log : t -> t
val sin : t -> t
val cos : t -> t
val sum : t list -> t

(** {1 Observation} *)

val vars : t -> int list
(** Sorted, without duplicates. *)

val size : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : ?name:(int -> string) -> unit -> Format.formatter -> t -> unit
val to_string : ?name:(int -> string) -> t -> string

(** {1 Evaluation} *)

val eval_float : (int -> float) -> t -> float
(** Plain floating evaluation; may return nan/infinities. *)

val eval_interval : (int -> I.t) -> t -> I.t
(** Sound interval enclosure of the range over the given variable boxes. *)

val enclose_at : (int -> Q.t) -> t -> I.t
(** Rigorous float enclosure of the value at an exact rational point:
    {!eval_interval} over the verified tightest float enclosures of the
    coordinates ({!Absolver_numeric.Interval.of_rational}). The
    relaxation layer's sound corner evaluator: secant intercepts and
    tangent constants derived from these enclosures over-approximate the
    operator without float slop. *)

val eval_exact : (int -> Q.t) -> t -> Q.t option
(** Exact rational evaluation; [None] when the expression leaves the
    rationals ([sqrt], [exp], ... or division by zero). *)

(** {1 Structure} *)

val linearize : t -> Absolver_lp.Linexpr.t option
(** [Some le] iff the expression is linear (affine) in its variables;
    products with constants and constant subexpressions are folded. *)

val is_linear : t -> bool

val deriv : t -> int -> t
(** Symbolic partial derivative; used by the interval-Newton refinement. *)

val subst : (int -> t option) -> t -> t

(** {1 Relations}

    A constraint [expr op 0], tagged with its origin (the Boolean variable
    it is attached to in an AB-problem). *)

type rel = { expr : t; op : Absolver_lp.Linexpr.op; tag : int }

val pp_rel : ?name:(int -> string) -> unit -> Format.formatter -> rel -> unit

val holds_float : ?tol:float -> (int -> float) -> rel -> bool
(** Floating check with tolerance on equalities (IPOPT-style approximate
    feasibility). *)

val certainly_holds : (int -> I.t) -> rel -> bool
(** Interval certificate: the relation holds for {e every} point of the
    box. *)

val certainly_violated : (int -> I.t) -> rel -> bool
(** Interval certificate: the relation fails for every point of the box. *)

val negate_rel : rel -> rel list
(** Logical negation: [Eq] becomes the two strict alternatives (as in the
    paper's Sec. 1 treatment of negated equations). *)
