module I = Absolver_numeric.Interval
module F = Absolver_numeric.Float_ops
module Budget = Absolver_resource.Budget

exception Empty

type ann = { expr : Expr.t; itv : I.t; kids : ann array }

let rec forward box (e : Expr.t) =
  let node itv kids = { expr = e; itv; kids } in
  match e with
  | Expr.Const q -> node (I.of_rational q) [||]
  | Expr.Var v -> node (Box.get box v) [||]
  | Expr.Neg a ->
    let ka = forward box a in
    node (I.neg ka.itv) [| ka |]
  | Expr.Add (a, b) ->
    let ka = forward box a and kb = forward box b in
    node (I.add ka.itv kb.itv) [| ka; kb |]
  | Expr.Sub (a, b) ->
    let ka = forward box a and kb = forward box b in
    node (I.sub ka.itv kb.itv) [| ka; kb |]
  | Expr.Mul (a, b) ->
    let ka = forward box a and kb = forward box b in
    node (I.mul ka.itv kb.itv) [| ka; kb |]
  | Expr.Div (a, b) ->
    let ka = forward box a and kb = forward box b in
    node (I.div ka.itv kb.itv) [| ka; kb |]
  | Expr.Pow (a, n) ->
    let ka = forward box a in
    node (I.pow_int ka.itv n) [| ka |]
  | Expr.Sqrt a ->
    let ka = forward box a in
    node (I.sqrt ka.itv) [| ka |]
  | Expr.Exp a ->
    let ka = forward box a in
    node (I.exp ka.itv) [| ka |]
  | Expr.Log a ->
    let ka = forward box a in
    node (I.log ka.itv) [| ka |]
  | Expr.Sin a ->
    let ka = forward box a in
    node (I.sin ka.itv) [| ka |]
  | Expr.Cos a ->
    let ka = forward box a in
    node (I.cos ka.itv) [| ka |]

(* Sign-preserving nth root with outward widening (n >= 1). *)
let nth_root_point_down x n =
  if x = 0.0 then 0.0
  else if x = Float.infinity then Float.infinity
  else if x = Float.neg_infinity then Float.neg_infinity
  else
    let r =
      if x >= 0.0 then x ** (1.0 /. float_of_int n)
      else -.((-.x) ** (1.0 /. float_of_int n))
    in
    F.widen_down (F.widen_down r)

let nth_root_point_up x n =
  if x = 0.0 then 0.0
  else if x = Float.infinity then Float.infinity
  else if x = Float.neg_infinity then Float.neg_infinity
  else
    let r =
      if x >= 0.0 then x ** (1.0 /. float_of_int n)
      else -.((-.x) ** (1.0 /. float_of_int n))
    in
    F.widen_up (F.widen_up r)

(* Enclosure of { y >= 0 | y^n in r }, for r intersected with [0, inf). *)
let nth_root_nonneg (r : I.t) n =
  let r = I.inter r (I.make 0.0 Float.infinity) in
  if I.is_empty r then I.empty
  else
    I.make
      (Float.max 0.0 (nth_root_point_down r.I.lo n))
      (nth_root_point_up r.I.hi n)

(* Enclosure of { y | y^n in r } for odd n (monotone). *)
let nth_root_odd (r : I.t) n =
  if I.is_empty r then I.empty
  else I.make (nth_root_point_down r.I.lo n) (nth_root_point_up r.I.hi n)

let rec backward box ann required =
  let r = I.inter ann.itv required in
  if I.is_empty r then raise Empty;
  match ann.expr with
  | Expr.Const _ -> ()
  | Expr.Var v ->
    let narrowed = I.inter (Box.get box v) r in
    if I.is_empty narrowed then raise Empty;
    Box.set box v narrowed
  | Expr.Neg _ -> backward box ann.kids.(0) (I.neg r)
  | Expr.Add (_, _) ->
    let a = ann.kids.(0) and b = ann.kids.(1) in
    backward box a (I.sub r b.itv);
    backward box b (I.sub r a.itv)
  | Expr.Sub (_, _) ->
    let a = ann.kids.(0) and b = ann.kids.(1) in
    backward box a (I.add r b.itv);
    backward box b (I.sub a.itv r)
  | Expr.Mul (_, _) ->
    let a = ann.kids.(0) and b = ann.kids.(1) in
    (* When both the product target and the other factor contain zero, any
       value of this factor is feasible; otherwise extended division gives
       a sound projection. *)
    let proj num den =
      if I.contains_zero num && I.contains_zero den then I.entire
      else I.div num den
    in
    backward box a (proj r b.itv);
    backward box b (proj r a.itv)
  | Expr.Div (_, _) ->
    let a = ann.kids.(0) and b = ann.kids.(1) in
    backward box a (I.mul r b.itv);
    let proj_b =
      if I.contains_zero r && I.contains_zero a.itv then I.entire
      else I.div a.itv r
    in
    backward box b proj_b
  | Expr.Pow (_, n) ->
    let a = ann.kids.(0) in
    if n = 0 then ()
    else if n < 0 then begin
      (* a^n = r  =>  a^{-n} in 1/r *)
      let rinv = I.inv r in
      backward_pow box a (-n) rinv
    end
    else backward_pow box a n r
  | Expr.Sqrt _ ->
    let a = ann.kids.(0) in
    let rr = I.inter r (I.make 0.0 Float.infinity) in
    if I.is_empty rr then raise Empty;
    backward box a (I.sqr rr)
  | Expr.Exp _ -> backward box ann.kids.(0) (I.log r)
  | Expr.Log _ -> backward box ann.kids.(0) (I.exp r)
  | Expr.Sin _ | Expr.Cos _ ->
    (* No backward projection for the periodic functions: sound, just not
       contracting through them. *)
    ()

and backward_pow box a n r =
  if n mod 2 = 1 then backward box a (nth_root_odd r n)
  else begin
    let s = nth_root_nonneg r n in
    if I.is_empty s then raise Empty;
    let proj =
      if a.itv.I.lo >= 0.0 then s
      else if a.itv.I.hi <= 0.0 then I.neg s
      else I.hull (I.neg s) s
    in
    backward box a proj
  end

let required_of_op (op : Absolver_lp.Linexpr.op) =
  match op with
  | Absolver_lp.Linexpr.Le | Absolver_lp.Linexpr.Lt ->
    I.make Float.neg_infinity 0.0
  | Absolver_lp.Linexpr.Ge | Absolver_lp.Linexpr.Gt -> I.make 0.0 Float.infinity
  | Absolver_lp.Linexpr.Eq -> I.of_float 0.0

(* Process-wide revision total; telemetry attributes contraction work to
   phases by differencing it (see Simplex.total_pivots for the pattern).
   Atomic: parallel branch-and-prune workers revise concurrently. *)
let global_revisions = Atomic.make 0
let total_revisions () = Atomic.get global_revisions

let revise box (rel : Expr.rel) =
  Atomic.incr global_revisions;
  match
    let ann = forward box rel.Expr.expr in
    backward box ann (required_of_op rel.Expr.op)
  with
  | () -> not (Box.is_empty box)
  | exception Empty -> false

let contract ?(max_rounds = 10) ?(budget = Budget.unlimited) box rels =
  let rec loop round =
    if round >= max_rounds then true
    else begin
      Budget.tick budget;
      let before = Box.copy box in
      let alive = List.for_all (fun rel -> revise box rel) rels in
      if not alive then false
      else if Box.volume_reduced ~from:before ~to_:box then loop (round + 1)
      else true
    end
  in
  (* Contraction only narrows the box while preserving every solution, so
     stopping the fixpoint early is sound: report what is known so far.
     The budget's sticky trip reason lets the caller's own poll fire. *)
  match loop 0 with
  | alive -> alive
  | exception Budget.Exhausted _ -> not (Box.is_empty box)
