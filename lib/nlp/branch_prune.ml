module I = Absolver_numeric.Interval
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults

type outcome =
  | Sat of float array
  | Approx_sat of float array
  | Unsat
  | Unknown

type config = {
  eps : float;
  tol : float;
  max_nodes : int;
  use_hc4 : bool;
  use_newton : bool;
  samples_per_node : int;
  root_samples : int;
  seed : int;
}

let default_config =
  {
    eps = 1e-8;
    tol = 1e-7;
    max_nodes = 200_000;
    use_hc4 = true;
    use_newton = true;
    samples_per_node = 4;
    root_samples = 512;
    seed = 0x5eed;
  }

type stats = { nodes : int; prunings : int; max_depth : int }

let pp_outcome fmt = function
  | Sat p ->
    Format.fprintf fmt "sat (";
    Array.iteri (fun i x -> Format.fprintf fmt "%s%g" (if i > 0 then ", " else "") x) p;
    Format.fprintf fmt ")"
  | Approx_sat p ->
    Format.fprintf fmt "approx-sat (";
    Array.iteri (fun i x -> Format.fprintf fmt "%s%g" (if i > 0 then ", " else "") x) p;
    Format.fprintf fmt ")"
  | Unsat -> Format.pp_print_string fmt "unsat"
  | Unknown -> Format.pp_print_string fmt "unknown"

(* Random points inside a box, for IPOPT-style local feasibility search.
   Infinite box dimensions are sampled from a clamped window. *)
let sample_point rng (b : Box.t) =
  Array.map
    (fun (iv : I.t) ->
      if I.is_empty iv then 0.0
      else
        let lo = Float.max iv.I.lo (-1e6) and hi = Float.min iv.I.hi 1e6 in
        if lo >= hi then I.mid iv
        else lo +. (Random.State.float rng (hi -. lo)))
    b

(* Rigorous point certificate: interval evaluation at the degenerate box. *)
let certified_at rels p =
  List.for_all (fun rel -> Expr.certainly_holds (Box.point_env p) rel) rels

let feasible_at ~tol rels p =
  List.for_all (fun rel -> Expr.holds_float ~tol (fun v -> p.(v)) rel) rels

(* Contract univariate equalities with interval Newton. *)
let newton_pass ?budget box rels =
  List.iter
    (fun (rel : Expr.rel) ->
      if rel.Expr.op = Absolver_lp.Linexpr.Eq then
        match Expr.vars rel.Expr.expr with
        | [ v ] ->
          let x = Newton.contract ?budget rel.Expr.expr ~var:v (Box.get box v) in
          Box.set box v x
        | _ -> ())
    rels

exception Done of outcome

(* Process-wide branch-and-prune totals, differenced by telemetry (same
   pattern as Simplex.total_pivots). *)
let global_nodes = ref 0
let global_prunings = ref 0
let total_nodes () = !global_nodes
let total_prunings () = !global_prunings

let solve ?(config = default_config) ?(budget = Budget.unlimited) ~nvars ~box
    rels =
  let nodes = ref 0 and prunings = ref 0 and max_depth = ref 0 in
  let candidate = ref None in
  let note_candidate p =
    if !candidate = None && feasible_at ~tol:config.tol rels p then
      candidate := Some (Array.copy p)
  in
  let rng = Random.State.make [| config.seed |] in
  let stack = ref [ (Box.copy box, 0) ] in
  let outcome =
    try
      Faults.hit "nlp.branch_prune" budget;
      while !stack <> [] do
        let b, depth =
          match !stack with
          | x :: rest ->
            stack := rest;
            x
          | [] -> assert false
        in
        incr nodes;
        Budget.tick budget;
        if !nodes > config.max_nodes then
          raise
            (Done (match !candidate with Some p -> Approx_sat p | None -> Unknown));
        if depth > !max_depth then max_depth := depth;
        let alive =
          if config.use_hc4 then Hc4.contract ~budget b rels
          else not (Box.is_empty b)
        in
        if not alive then incr prunings
        else begin
          if config.use_newton then newton_pass ~budget b rels;
          if Box.is_empty b then incr prunings
          else begin
            (* Whole-box certificate first, then midpoint certificate. *)
            let p = Box.midpoint b in
            if List.for_all (fun rel -> Expr.certainly_holds (Box.env b) rel) rels
            then raise (Done (Sat p));
            if certified_at rels p then raise (Done (Sat p));
            note_candidate p;
            (* Local search: random samples within the contracted box; a
               rigorously certified sample ends the search, a tolerance
               sample is recorded as candidate. *)
            let n_samples =
              if depth = 0 then max config.root_samples config.samples_per_node
              else config.samples_per_node
            in
            for _ = 1 to n_samples do
              let sp = sample_point rng b in
              if certified_at rels sp then raise (Done (Sat sp));
              note_candidate sp
            done;
            if Box.max_width b > config.eps && nvars > 0 then begin
              let v = Box.widest_var b in
              match I.split (Box.get b v) with
              | exception Invalid_argument _ -> ()
              | left, right ->
                let b_left = Box.copy b and b_right = Box.copy b in
                Box.set b_left v left;
                Box.set b_right v right;
                stack := (b_left, depth + 1) :: (b_right, depth + 1) :: !stack
            end
          end
        end
      done;
      match !candidate with Some p -> Approx_sat p | None -> Unsat
    with
    | Done o -> o
    | Budget.Exhausted _ ->
      (* Same degradation as the node cap: best tolerance-feasible point
         found so far, else unknown.  The typed reason stays sticky in the
         budget for the engine to report. *)
      (match !candidate with Some p -> Approx_sat p | None -> Unknown)
  in
  global_nodes := !global_nodes + !nodes;
  global_prunings := !global_prunings + !prunings;
  (outcome, { nodes = !nodes; prunings = !prunings; max_depth = !max_depth })
