module I = Absolver_numeric.Interval
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults
module Linexpr = Absolver_lp.Linexpr

type outcome =
  | Sat of float array
  | Approx_sat of float array
  | Unsat
  | Unknown

type config = {
  eps : float;
  tol : float;
  max_nodes : int;
  use_hc4 : bool;
  use_newton : bool;
  samples_per_node : int;
  root_samples : int;
  seed : int;
  use_relax : bool;
  relax_octagon : bool;
  relax_obbt_depth : int;
  relax_obbt_vars : int;
}

let default_config =
  {
    eps = 1e-8;
    tol = 1e-7;
    max_nodes = 200_000;
    use_hc4 = true;
    use_newton = true;
    samples_per_node = 4;
    root_samples = 512;
    seed = 0x5eed;
    use_relax = true;
    relax_octagon = true;
    relax_obbt_depth = 2;
    relax_obbt_vars = 2;
  }

type stats = {
  nodes : int;
  prunings : int;
  max_depth : int;
  relax_cuts : int;
  relax_lp_checks : int;
  relax_pruned : int;
  relax_oct_pruned : int;
  relax_tightened : int;
  relax_obbt : int;
}

let empty_stats =
  {
    nodes = 0;
    prunings = 0;
    max_depth = 0;
    relax_cuts = 0;
    relax_lp_checks = 0;
    relax_pruned = 0;
    relax_oct_pruned = 0;
    relax_tightened = 0;
    relax_obbt = 0;
  }

let merge_stats a b =
  {
    nodes = a.nodes + b.nodes;
    prunings = a.prunings + b.prunings;
    max_depth = max a.max_depth b.max_depth;
    relax_cuts = a.relax_cuts + b.relax_cuts;
    relax_lp_checks = a.relax_lp_checks + b.relax_lp_checks;
    relax_pruned = a.relax_pruned + b.relax_pruned;
    relax_oct_pruned = a.relax_oct_pruned + b.relax_oct_pruned;
    relax_tightened = a.relax_tightened + b.relax_tightened;
    relax_obbt = a.relax_obbt + b.relax_obbt;
  }

(* ------------------------------------------------------------------ *)
(* Relaxation oracle hook                                              *)
(* ------------------------------------------------------------------ *)

(* The linear-relaxation layer lives in [Absolver_relax] (which depends
   on this library), so the search loop sees it only through this record
   of closures.  A node hands the oracle its ancestor cut chain (one
   group of linear cuts per surviving ancestor, root first) plus its own
   box; the oracle syncs a warm LP session to exactly that chain
   (checkpoint on branch, rollback on backtrack), asserts the node's
   fresh cuts and decides.  [Rx_prune] means the linear relaxation of
   the constraint system (slackened by the feasibility tolerance) is
   empty over the box, so the node can be discarded without HC4, Newton
   or sampling.  [Rx_continue chain] hands back the extended chain for
   the node's children; the oracle may also have tightened the box in
   place (optimization-based bounds tightening).

   Determinism contract: the decision (and any box tightening) must be a
   function of [path], [depth] and the box only — never of worker
   identity, arrival order or warm-start state — so that parallel runs
   explore the same tree at every job count (see DESIGN.md §11, §17). *)

type relax_decision = Rx_prune | Rx_continue of Linexpr.cons list list

type relax_oracle = {
  rx_node :
    budget:Budget.t ->
    path:Linexpr.cons list list ->
    depth:int ->
    Box.t ->
    relax_decision;
  rx_cuts : int Atomic.t;
  rx_lp_checks : int Atomic.t;
  rx_pruned : int Atomic.t;
  rx_oct_pruned : int Atomic.t;
  rx_tightened : int Atomic.t;
  rx_obbt : int Atomic.t;
}

let relax_stats relax base =
  match relax with
  | None -> base
  | Some rx ->
    {
      base with
      relax_cuts = Atomic.get rx.rx_cuts;
      relax_lp_checks = Atomic.get rx.rx_lp_checks;
      relax_pruned = Atomic.get rx.rx_pruned;
      relax_oct_pruned = Atomic.get rx.rx_oct_pruned;
      relax_tightened = Atomic.get rx.rx_tightened;
      relax_obbt = Atomic.get rx.rx_obbt;
    }

let pp_outcome fmt = function
  | Sat p ->
    Format.fprintf fmt "sat (";
    Array.iteri (fun i x -> Format.fprintf fmt "%s%g" (if i > 0 then ", " else "") x) p;
    Format.fprintf fmt ")"
  | Approx_sat p ->
    Format.fprintf fmt "approx-sat (";
    Array.iteri (fun i x -> Format.fprintf fmt "%s%g" (if i > 0 then ", " else "") x) p;
    Format.fprintf fmt ")"
  | Unsat -> Format.pp_print_string fmt "unsat"
  | Unknown -> Format.pp_print_string fmt "unknown"

(* Random points inside a box, for IPOPT-style local feasibility search.
   Infinite box dimensions are sampled from a clamped window. *)
let sample_point rng (b : Box.t) =
  Array.map
    (fun (iv : I.t) ->
      if I.is_empty iv then 0.0
      else
        let lo = Float.max iv.I.lo (-1e6) and hi = Float.min iv.I.hi 1e6 in
        if lo >= hi then I.mid iv
        else lo +. (Random.State.float rng (hi -. lo)))
    b

(* Rigorous point certificate: interval evaluation at the degenerate box. *)
let certified_at rels p =
  List.for_all (fun rel -> Expr.certainly_holds (Box.point_env p) rel) rels

let feasible_at ~tol rels p =
  List.for_all (fun rel -> Expr.holds_float ~tol (fun v -> p.(v)) rel) rels

(* Contract univariate equalities with interval Newton. *)
let newton_pass ?budget box rels =
  List.iter
    (fun (rel : Expr.rel) ->
      if rel.Expr.op = Absolver_lp.Linexpr.Eq then
        match Expr.vars rel.Expr.expr with
        | [ v ] ->
          let x = Newton.contract ?budget rel.Expr.expr ~var:v (Box.get box v) in
          Box.set box v x
        | _ -> ())
    rels

exception Done of outcome

(* Process-wide branch-and-prune totals, differenced by telemetry (same
   pattern as Simplex.total_pivots).  Atomic: parallel workers flush their
   per-worker tallies concurrently.  These conflate concurrent solves by
   design; per-solve figures live in the [stats] record. *)
let global_nodes = Atomic.make 0
let global_prunings = Atomic.make 0
let total_nodes () = Atomic.get global_nodes
let total_prunings () = Atomic.get global_prunings

(* Consult the relaxation oracle for one node.  Returns [None] when the
   node is pruned, [Some chain] (the children's cut chain) otherwise. *)
let consult_relax relax config ~budget ~path ~depth b =
  match relax with
  | Some rx when config.use_relax -> (
    match rx.rx_node ~budget ~path ~depth b with
    | Rx_prune -> None
    | Rx_continue chain -> Some chain)
  | _ -> Some path

(* Sequential search, the jobs <= 1 path.  This is the original code and
   stays bit-for-bit identical when no oracle is installed: one RNG
   seeded once, depth-first explicit stack, so [--jobs 1] without
   relaxation reproduces historical witnesses exactly. *)
let solve_seq ?(config = default_config) ?(budget = Budget.unlimited) ?relax
    ~nvars ~box rels =
  let nodes = ref 0 and prunings = ref 0 and max_depth = ref 0 in
  let candidate = ref None in
  let note_candidate p =
    if !candidate = None && feasible_at ~tol:config.tol rels p then
      candidate := Some (Array.copy p)
  in
  let rng = Random.State.make [| config.seed |] in
  let stack = ref [ (Box.copy box, 0, []) ] in
  let outcome =
    try
      Faults.hit "nlp.branch_prune" budget;
      while !stack <> [] do
        let b, depth, chain =
          match !stack with
          | x :: rest ->
            stack := rest;
            x
          | [] -> assert false
        in
        incr nodes;
        Budget.tick budget;
        if !nodes > config.max_nodes then
          raise
            (Done (match !candidate with Some p -> Approx_sat p | None -> Unknown));
        if depth > !max_depth then max_depth := depth;
        match consult_relax relax config ~budget ~path:chain ~depth b with
        | None -> incr prunings
        | Some chain -> (
          let alive =
            if config.use_hc4 then Hc4.contract ~budget b rels
            else not (Box.is_empty b)
          in
          if not alive then incr prunings
          else begin
            if config.use_newton then newton_pass ~budget b rels;
            if Box.is_empty b then incr prunings
            else begin
              (* Whole-box certificate first, then midpoint certificate. *)
              let p = Box.midpoint b in
              if List.for_all (fun rel -> Expr.certainly_holds (Box.env b) rel) rels
              then raise (Done (Sat p));
              if certified_at rels p then raise (Done (Sat p));
              note_candidate p;
              (* Local search: random samples within the contracted box; a
                 rigorously certified sample ends the search, a tolerance
                 sample is recorded as candidate. *)
              let n_samples =
                if depth = 0 then max config.root_samples config.samples_per_node
                else config.samples_per_node
              in
              for _ = 1 to n_samples do
                let sp = sample_point rng b in
                if certified_at rels sp then raise (Done (Sat sp));
                note_candidate sp
              done;
              if Box.max_width b > config.eps && nvars > 0 then begin
                let v = Box.widest_var b in
                match I.split (Box.get b v) with
                | exception Invalid_argument _ -> ()
                | left, right ->
                  let b_left = Box.copy b and b_right = Box.copy b in
                  Box.set b_left v left;
                  Box.set b_right v right;
                  stack :=
                    (b_left, depth + 1, chain)
                    :: (b_right, depth + 1, chain)
                    :: !stack
              end
            end
          end)
      done;
      match !candidate with Some p -> Approx_sat p | None -> Unsat
    with
    | Done o -> o
    | Budget.Exhausted _ ->
      (* Same degradation as the node cap: best tolerance-feasible point
         found so far, else unknown.  The typed reason stays sticky in the
         budget for the engine to report. *)
      (match !candidate with Some p -> Approx_sat p | None -> Unknown)
  in
  ignore (Atomic.fetch_and_add global_nodes !nodes);
  ignore (Atomic.fetch_and_add global_prunings !prunings);
  ( outcome,
    relax_stats relax
      {
        empty_stats with
        nodes = !nodes;
        prunings = !prunings;
        max_depth = !max_depth;
      } )

(* ------------------------------------------------------------------ *)
(* Parallel search (jobs > 1)                                          *)
(* ------------------------------------------------------------------ *)

module Pool = Absolver_parallel.Pool

(* Work items of the shared frontier.  [Explore] is one search node;
   [Sample] is a chunk of the root multistart sampling, split off so the
   sampling-heavy root (the dominant cost on e.g. car_steering) spreads
   over the workers instead of serializing on whoever pops the root box.

   Determinism of the search tree: every random draw comes from an RNG
   seeded by the item's {e path} — the bit-string of split decisions from
   the root (left = 2p, right = 2p+1, wrapping harmlessly past 62 bits) —
   never by worker identity or arrival order.  The relaxation oracle's
   decision at a node is likewise a function of the carried cut chain
   (the same chain the sequential search threads through its stack), so
   the set of boxes explored and points sampled is schedule-independent;
   only which certificate is found {e first} can vary, and any
   certificate is sound. *)
type par_item =
  | Explore of Box.t * int * int * Linexpr.cons list list
    (* box, depth, path, relaxation cut chain *)
  | Sample of Box.t * int * int (* box, count, chunk index *)

(* First-win terminal events: a rigorous certificate, or the shared node
   cap (which voids exhaustiveness exactly like the sequential cap). *)
type par_fin = Certificate of float array | Capped

let sample_chunk = 64

let solve_par ~(config : config) ~budget ~telemetry ?relax ~jobs ~nvars ~box
    rels =
  let nodes = Atomic.make 0
  and prunings = Atomic.make 0
  and max_depth = Atomic.make 0 in
  let candidate = Atomic.make None in
  let note_candidate p =
    if
      Atomic.get candidate = None
      && feasible_at ~tol:config.tol rels p
    then
      (* First tolerance-feasible point wins; losing the CAS just means
         another worker already recorded one. *)
      ignore (Atomic.compare_and_set candidate None (Some (Array.copy p)))
  in
  let rec bump_max cell v =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then bump_max cell v
  in
  let work (ctx : (par_item, par_fin) Pool.Frontier.ctx) item =
    match item with
    | Sample (b, count, chunk) ->
      Budget.tick ctx.budget;
      let rng = Random.State.make [| config.seed; chunk; 0x5a17 |] in
      for _ = 1 to count do
        let sp = sample_point rng b in
        if certified_at rels sp then ctx.finish (Certificate sp)
        else note_candidate sp
      done
    | Explore (b, depth, path, chain) ->
      let n = Atomic.fetch_and_add nodes 1 + 1 in
      if n > config.max_nodes then ctx.finish Capped
      else begin
        Budget.tick ctx.budget;
        bump_max max_depth depth;
        match
          consult_relax relax config ~budget:ctx.budget ~path:chain ~depth b
        with
        | None -> Atomic.incr prunings
        | Some chain ->
          let alive =
            if config.use_hc4 then Hc4.contract ~budget:ctx.budget b rels
            else not (Box.is_empty b)
          in
          if not alive then Atomic.incr prunings
          else begin
            if config.use_newton then newton_pass ~budget:ctx.budget b rels;
            if Box.is_empty b then Atomic.incr prunings
            else begin
              let p = Box.midpoint b in
              if
                List.for_all
                  (fun rel -> Expr.certainly_holds (Box.env b) rel)
                  rels
              then ctx.finish (Certificate p)
              else if certified_at rels p then ctx.finish (Certificate p)
              else begin
                note_candidate p;
                (* Root multistart already ran as [Sample] chunks, so every
                   depth gets the per-node allowance only. *)
                let n_samples = config.samples_per_node in
                let rng = Random.State.make [| config.seed; path |] in
                let stop = ref false in
                for _ = 1 to n_samples do
                  if not !stop then begin
                    let sp = sample_point rng b in
                    if certified_at rels sp then begin
                      ctx.finish (Certificate sp);
                      stop := true
                    end
                    else note_candidate sp
                  end
                done;
                if Box.max_width b > config.eps && nvars > 0 then begin
                  let v = Box.widest_var b in
                  match I.split (Box.get b v) with
                  | exception Invalid_argument _ -> ()
                  | left, right ->
                    let b_left = Box.copy b and b_right = Box.copy b in
                    Box.set b_left v left;
                    Box.set b_right v right;
                    ctx.push
                      (Explore (b_left, depth + 1, (2 * path) land max_int, chain));
                    ctx.push
                      (Explore
                         (b_right, depth + 1, ((2 * path) + 1) land max_int, chain))
                end
              end
            end
          end
      end
  in
  (* Root multistart sampling as independent chunks, then the root box. *)
  let init =
    let total = max config.root_samples config.samples_per_node in
    let rec chunks i off acc =
      if off >= total then List.rev acc
      else
        let c = min sample_chunk (total - off) in
        chunks (i + 1) (off + c) (Sample (Box.copy box, c, i) :: acc)
    in
    chunks 0 0 [ Explore (Box.copy box, 0, 1, []) ]
  in
  let outcome =
    match Pool.Frontier.run ~budget ~telemetry ~jobs ~init work with
    | Pool.Frontier.Finished (Certificate p) -> Sat p
    | Pool.Frontier.Finished Capped | Pool.Frontier.Stopped -> (
      (* Node cap or a tripped budget: same degradation as sequential. *)
      match Atomic.get candidate with Some p -> Approx_sat p | None -> Unknown)
    | Pool.Frontier.Drained -> (
      match Atomic.get candidate with Some p -> Approx_sat p | None -> Unsat)
  in
  let n = Atomic.get nodes and pr = Atomic.get prunings in
  ignore (Atomic.fetch_and_add global_nodes n);
  ignore (Atomic.fetch_and_add global_prunings pr);
  ( outcome,
    relax_stats relax
      {
        empty_stats with
        nodes = n;
        prunings = pr;
        max_depth = Atomic.get max_depth;
      } )

let solve ?(config = default_config) ?(budget = Budget.unlimited)
    ?(telemetry = Absolver_telemetry.Telemetry.disabled) ?(jobs = 1) ?relax
    ~nvars ~box rels =
  let ((_, stats) as r) =
    if jobs <= 1 then solve_seq ~config ~budget ?relax ~nvars ~box rels
    else begin
      match
        Budget.guard budget (fun () -> Faults.hit "nlp.branch_prune" budget)
      with
      | Error _ -> (Unknown, empty_stats)
      | Ok () -> solve_par ~config ~budget ~telemetry ?relax ~jobs ~nvars ~box rels
    end
  in
  Absolver_telemetry.Telemetry.observe telemetry "nlp.bp_depth"
    (float_of_int stats.max_depth);
  r
