(* Reconnecting session-replay client (DESIGN.md Sec. 15.3).

   The transport is the server's JSON framing with exactly one SMT-LIB 2
   command per request: pairing a request with its reply then survives
   any connection loss, because a connection never carries more than one
   unanswered request from this client.  Session state lost with a
   connection is rebuilt from the command journal — the sequence of
   state-bearing commands the server has acknowledged, compacted under
   push/pop (popping a frame discards its commands instead of replaying
   and re-popping them). *)

module Sjson = Absolver_server.Sjson
module Io = Absolver_server.Io
module Smt2 = Absolver_smtlib.Smt2

type config = {
  connect_timeout_s : float;
  request_timeout_s : float;
  max_attempts : int;
  backoff_base_s : float;
  backoff_max_s : float;
  seed : int;
  journal_solves : bool;
}

let default_config =
  {
    connect_timeout_s = 5.0;
    request_timeout_s = 30.0;
    max_attempts = 8;
    backoff_base_s = 0.01;
    backoff_max_s = 0.5;
    seed = 0;
    journal_solves = false;
  }

type conn = { fd : Unix.file_descr; rdr : Io.reader }

type t = {
  path : string;
  cfg : config;
  rng : Random.State.t;
  mutable conn : conn option;
  mutable next_id : int;
  (* journal frames, innermost first; commands within a frame newest
     first.  The base frame (never popped) is always present. *)
  mutable frames : string list list;
  mutable n_retries : int;
  mutable n_reconnects : int;
  mutable n_replayed : int;
  mutable connected_once : bool;
  mutable closed : bool;
}

let retries t = t.n_retries
let reconnects t = t.n_reconnects
let replayed t = t.n_replayed
let journal_length t = List.fold_left (fun n f -> n + List.length f) 0 t.frames

let backoff_s cfg ~rng ~attempt =
  let nominal =
    Float.min cfg.backoff_max_s
      (cfg.backoff_base_s *. (2.0 ** float_of_int (max 0 (attempt - 1))))
  in
  nominal *. (0.5 +. (0.5 *. Random.State.float rng 1.0))

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Journal semantics                                                   *)
(* ------------------------------------------------------------------ *)

let is_head_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '!' | '?' | '.' -> true
  | _ -> false

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* First atom inside the outer parens, lowercased; "" when there is
   none (the server will answer such a command with an error anyway). *)
let head_of cmd =
  let n = String.length cmd in
  let i = ref 0 in
  while !i < n && (cmd.[!i] = '(' || is_space cmd.[!i]) do
    incr i
  done;
  let j = ref !i in
  while !j < n && is_head_char cmd.[!j] do
    incr j
  done;
  String.lowercase_ascii (String.sub cmd !i (!j - !i))

(* The numeral argument of (push n) / (pop n); 1 when absent. *)
let int_arg cmd =
  let n = String.length cmd in
  let i = ref 0 in
  while !i < n && (cmd.[!i] = '(' || is_space cmd.[!i]) do
    incr i
  done;
  while !i < n && is_head_char cmd.[!i] do
    incr i
  done;
  while !i < n && is_space cmd.[!i] do
    incr i
  done;
  let j = ref !i in
  while !j < n && cmd.[!j] >= '0' && cmd.[!j] <= '9' do
    incr j
  done;
  if !j > !i then
    match int_of_string_opt (String.sub cmd !i (!j - !i)) with
    | Some k when k >= 0 -> k
    | _ -> 1
  else 1

type effect = Journal | Push of int | Pop of int | Reset | Ephemeral | Exit

let effect_of cfg cmd =
  match head_of cmd with
  | "push" -> Push (int_arg cmd)
  | "pop" -> Pop (int_arg cmd)
  | "reset" -> Reset
  | "exit" -> Exit
  | "assert" | "declare-const" | "declare-fun" | "declare-sort"
  | "define-fun" | "define-sort" | "set-logic" | "set-option" | "set-info" ->
    Journal
  | _ -> if cfg.journal_solves then Journal else Ephemeral

(* A journal mutation happens only after the server acknowledged the
   command without an [(error ...)] reply — a rejected pop must not
   silently drop a frame the server still holds. *)
let errored replies =
  List.exists
    (fun r -> String.length r >= 6 && String.sub r 0 6 = "(error")
    replies

let apply_effect t cmd eff replies =
  if not (errored replies) then
    match eff with
    | Ephemeral -> ()
    | Exit -> t.closed <- true
    | Journal -> (
      match t.frames with
      | f :: rest -> t.frames <- (cmd :: f) :: rest
      | [] -> t.frames <- [ [ cmd ] ])
    | Push n ->
      for _ = 1 to n do
        t.frames <- [] :: t.frames
      done
    | Pop n ->
      let rec drop k fs =
        match (k, fs) with
        | 0, fs -> fs
        | _, ([] | [ _ ]) -> fs (* the base frame is never popped *)
        | k, _ :: tl -> drop (k - 1) tl
      in
      t.frames <- drop n t.frames
    | Reset -> t.frames <- [ [] ]

(* Replay order: base frame first, then each inner frame behind a fresh
   [(push 1)] — the server's stack depth after replay matches what the
   session's future pops expect. *)
let replay_list t =
  match List.rev_map List.rev t.frames with
  | [] -> []
  | base :: inner -> base @ List.concat_map (fun f -> "(push 1)" :: f) inner

(* ------------------------------------------------------------------ *)
(* Transport                                                           *)
(* ------------------------------------------------------------------ *)

let reader_limits cfg =
  {
    (* the reply deadline is idle-based: the clock starts at the
       request send ([Io.touch]) and any reply byte restarts it *)
    Io.idle_timeout_s = Some cfg.request_timeout_s;
    read_deadline_s = Some cfg.request_timeout_s;
    max_frame_bytes = 256 * 1024 * 1024;
  }

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conn <- None

(* Dial until the connect budget runs out: a refused or missing socket
   is what a restarting daemon (or a chaos-refused accept) looks like,
   so it is retried, not fatal. *)
let dial t =
  let deadline = now () +. t.cfg.connect_timeout_s in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX t.path) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match e with
      | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR
        when now () < deadline ->
        Unix.sleepf 0.02;
        go ()
      | _ -> Error ("connect " ^ t.path ^ ": " ^ Unix.error_message e))
  in
  go ()

type outcome = Replies of string list | Rejected of string | Transport of string

let parse_reply expect_id line =
  match Sjson.parse line with
  | Error e -> Transport ("garbled reply: " ^ e)
  | Ok obj -> (
    match Option.bind (Sjson.member "id" obj) Sjson.get_int with
    | Some id when id <> expect_id -> Transport "reply id mismatch"
    | _ -> (
      match Option.bind (Sjson.member "status" obj) Sjson.get_string with
      | Some "ok" ->
        let replies =
          match Sjson.member "replies" obj with
          | Some (Sjson.Arr items) -> List.filter_map Sjson.get_string items
          | _ -> []
        in
        Replies replies
      | Some "rejected" ->
        Rejected
          (Option.value ~default:"rejected"
             (Option.bind (Sjson.member "reason" obj) Sjson.get_string))
      | Some "error" ->
        (* a deterministic protocol answer, not a transport fault:
           surface it in SMT-LIB error shape so transcripts compare *)
        let msg =
          Option.value ~default:"error"
            (Option.bind (Sjson.member "error" obj) Sjson.get_string)
        in
        let b = Buffer.create (String.length msg + 12) in
        Buffer.add_string b "(error \"";
        String.iter
          (fun ch ->
            if ch = '"' then Buffer.add_string b "\"\""
            else Buffer.add_char b ch)
          msg;
        Buffer.add_string b "\")";
        Replies [ Buffer.contents b ]
      | _ -> Transport "reply without status"))

let roundtrip t conn cmd =
  let id = t.next_id in
  t.next_id <- id + 1;
  let req =
    Sjson.to_string
      (Sjson.Obj
         [
           ("id", Sjson.Num (float_of_int id));
           ("op", Sjson.Str "smt2");
           ("script", Sjson.Str cmd);
         ])
  in
  match Io.write_all conn.fd (req ^ "\n") with
  | Error Io.Peer_closed -> Transport "connection closed"
  | Error (Io.Write_error m) -> Transport ("write: " ^ m)
  | Ok () -> (
    Io.touch conn.rdr;
    match Io.read_line conn.rdr with
    | Io.Line l -> parse_reply id l
    | Io.Eof | Io.Stopped -> Transport "connection closed"
    | Io.Idle_timeout | Io.Read_deadline -> Transport "request timed out"
    | Io.Frame_too_large -> Transport "oversized reply"
    | Io.Io_error m -> Transport ("read: " ^ m))

(* Re-establish the server session on a fresh connection.  A transport
   fault mid-replay abandons the connection (the caller backs off and
   tries again from scratch); admission rejections retry in place. *)
let replay t conn =
  let rec send cmd attempt =
    match roundtrip t conn cmd with
    | Replies _ ->
      t.n_replayed <- t.n_replayed + 1;
      Ok ()
    | Rejected reason ->
      if attempt >= t.cfg.max_attempts then Error ("replay rejected: " ^ reason)
      else begin
        Unix.sleepf (backoff_s t.cfg ~rng:t.rng ~attempt);
        send cmd (attempt + 1)
      end
    | Transport reason -> Error ("replay: " ^ reason)
  in
  let rec go = function
    | [] -> Ok conn
    | cmd :: tl -> ( match send cmd 1 with Ok () -> go tl | Error _ as e -> e)
  in
  go (replay_list t)

let ensure_conn t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
    match dial t with
    | Error _ as e -> e
    | Ok fd ->
      let conn = { fd; rdr = Io.reader ~limits:(reader_limits t.cfg) fd } in
      t.conn <- Some conn;
      if t.connected_once then t.n_reconnects <- t.n_reconnects + 1;
      t.connected_once <- true;
      (match replay t conn with
      | Ok _ -> Ok conn
      | Error _ as e ->
        drop_conn t;
        e))

(* ------------------------------------------------------------------ *)
(* API                                                                 *)
(* ------------------------------------------------------------------ *)

let connect ?(config = default_config) ~path () =
  let t =
    {
      path;
      cfg = config;
      rng = Random.State.make [| config.seed; 0x636c6e74 |];
      conn = None;
      next_id = 1;
      frames = [ [] ];
      n_retries = 0;
      n_reconnects = 0;
      n_replayed = 0;
      connected_once = false;
      closed = false;
    }
  in
  match ensure_conn t with Ok _ -> Ok t | Error e -> Error e

let command t cmd =
  if t.closed then Error "client closed"
  else begin
    let eff = effect_of t.cfg cmd in
    let rec attempt k =
      let retry reason =
        if k >= t.cfg.max_attempts then Error reason
        else begin
          t.n_retries <- t.n_retries + 1;
          Unix.sleepf (backoff_s t.cfg ~rng:t.rng ~attempt:k);
          attempt (k + 1)
        end
      in
      match ensure_conn t with
      | Error e -> retry e
      | Ok conn -> (
        match roundtrip t conn cmd with
        | Replies replies ->
          apply_effect t cmd eff replies;
          Ok replies
        | Rejected reason -> retry ("rejected: " ^ reason)
        | Transport reason ->
          drop_conn t;
          retry reason)
    in
    attempt 1
  end

let run_script t script =
  let forms, _rest = Smt2.split_complete script in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: tl ->
      if t.closed then Ok (List.rev acc)
      else (
        match command t f with
        | Error _ as e -> e
        | Ok rs -> go (List.rev_append rs acc) tl)
  in
  go [] forms

let close t =
  drop_conn t;
  t.closed <- true
