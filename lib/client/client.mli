(** A fault-tolerant session client for the solve server (DESIGN.md
    Sec. 15.3).

    The server's SMT-LIB 2 sessions are stateful: declarations,
    assertions and push/pop frames accumulate per connection, so a
    dropped connection loses the session.  This client makes that loss
    invisible: every state-bearing command that succeeds is recorded in
    a {e command journal} (with push/pop scope compaction — a popped
    frame's commands are discarded, not replayed and re-popped), and a
    reconnect transparently replays the journal before the pending
    command is retried.  Under the chaos harness this yields
    byte-identical transcripts to a fault-free run.

    Transport faults — refused or torn connections, lost replies,
    timeouts — are retried with exponential backoff and deterministic
    seeded jitter ({!backoff_s} is pure, so retry schedules are
    reproducible).  Server {e answers}, including [(error ...)] replies,
    are never retried: they are part of the session transcript.
    Admission-control rejections retry on the same connection.

    One command per request: each call maps to exactly one JSON
    [{"op":"smt2"}] request, so request/response pairing survives
    arbitrary connection loss. *)

type config = {
  connect_timeout_s : float;
      (** overall budget for one connect attempt, including the dial
          retries inside it (default 5 s) *)
  request_timeout_s : float;
      (** reply deadline per attempt; expiry counts as a transport
          fault and triggers a retry (default 30 s) *)
  max_attempts : int;
      (** total tries per command, the first included (default 8) *)
  backoff_base_s : float;  (** first retry delay (default 0.01 s) *)
  backoff_max_s : float;  (** backoff ceiling (default 0.5 s) *)
  seed : int;  (** jitter PRNG seed — same seed, same schedule *)
  journal_solves : bool;
      (** also journal non-state commands (check-sat, get-model …) so a
          replayed session reconstructs the server's warm solver state
          exactly — the chaos differential suite turns this on
          (default false) *)
}

val default_config : config

type t

val connect : ?config:config -> path:string -> unit -> (t, string) result
(** Dial the server's Unix-domain socket.  Retries refused/missing
    sockets until [connect_timeout_s] elapses (a restarting daemon is
    indistinguishable from a refused accept). *)

val command : t -> string -> (string list, string) result
(** Run one SMT-LIB 2 command (a complete s-expression), returning the
    server's reply lines (often empty — [assert] answers nothing).
    Retries transport faults with backoff, reconnecting and replaying
    the journal as needed; [Error] only after [max_attempts] tries or
    on a client already closed. *)

val run_script : t -> string -> (string list, string) result
(** Split a multi-command script into complete forms and run each
    through {!command}, concatenating replies.  Stops at the first
    transport failure or after [(exit)]. *)

val close : t -> unit
(** Send nothing; drop the connection and refuse further commands. *)

(** {1 Introspection} *)

val retries : t -> int  (** transport-fault retries across all commands *)

val reconnects : t -> int  (** successful re-dials after the first *)

val replayed : t -> int  (** journal commands re-sent during replays *)

val journal_length : t -> int  (** commands currently held for replay *)

val backoff_s : config -> rng:Random.State.t -> attempt:int -> float
(** The delay before retry [attempt] (1-based): exponential from
    [backoff_base_s], capped at [backoff_max_s], jittered into
    [[0.5, 1.0]] of the nominal value by the next draw from [rng].
    Pure in [rng]: a seeded state reproduces the schedule exactly. *)
