(** The solver registry — ABSOLVER's extensibility point (Sec. 4).

    "At each of those steps a list of solvers is used, if more than one
    solver is enabled for some domain and the preceding solvers thereof
    failed to provide a decent result." Each domain is a list of named
    solvers tried in order; users plug in their own by providing the
    closures, which is how the paper's "reuse of expert knowledge" is
    realized. The defaults wire in this repository's own substrates
    (CDCL / all-SAT enumeration, exact simplex, branch-and-prune). *)

module Q = Absolver_numeric.Rational
module Types = Absolver_sat.Types
module Expr = Absolver_nlp.Expr
module Linexpr = Absolver_lp.Linexpr

(** How Boolean models are enumerated. [Lsat_incremental] keeps a single
    solver instance and blocks models with added clauses (LSAT [2]);
    [Chaff_restarting] restarts a fresh solver per model, the behaviour
    the paper describes for black-box solvers like zChaff. *)
type bool_strategy = Lsat_incremental | Chaff_restarting

type bool_solver = { bs_name : string; bs_strategy : bool_strategy }

type linear_verdict =
  | L_sat of (int * Q.t) list (** values for the structural variables *)
  | L_unsat of int list (** tags of an inconsistent subset *)
  | L_unknown of Absolver_resource.Absolver_error.t
      (** the solver gave up (budget exhausted, cancelled, internal cap) *)

type linear_session = {
  lsess_solve : int_vars:int list -> Linexpr.cons list -> linear_verdict;
  lsess_counters : unit -> (string * int) list;
}
(** A stateful linear-solver session: successive [lsess_solve] calls may
    reuse solver state from earlier calls (warm-started tableau, cached
    verdicts), but each call must decide exactly the constraint set it is
    given. [lsess_counters] exposes cumulative session counters for
    telemetry absorption. *)

type linear_solver = {
  ls_name : string;
  ls_solve :
    int_vars:int list ->
    budget:Absolver_resource.Budget.t ->
    Linexpr.cons list ->
    linear_verdict;
  ls_session : (budget:Absolver_resource.Budget.t -> linear_session) option;
      (** When provided and the engine runs with [use_incremental], the
          engine creates one session per enumeration and routes every LP
          query through it instead of [ls_solve]. *)
}
(** Solver closures receive the engine's budget and must honour the
    no-escape contract: exhaustion is reported as [L_unknown] /
    [N_unknown], never raised across the registry boundary. *)

type nonlinear_verdict =
  | N_sat of float array (** certified witness (indexed by arith var) *)
  | N_approx of float array (** tolerance-level witness *)
  | N_unsat
  | N_unknown

type nonlinear_solver = {
  ns_name : string;
  ns_solve :
    relax:bool ->
    budget:Absolver_resource.Budget.t ->
    telemetry:Absolver_telemetry.Telemetry.t ->
    nvars:int ->
    box:Absolver_nlp.Box.t ->
    Expr.rel list ->
    nonlinear_verdict * Absolver_nlp.Branch_prune.stats;
}
(** [telemetry] is the engine's handle with the [nonlinear_check] span
    open; oracles that fan out over domains fork it per worker so a
    traced run stays one connected span tree (and may record their own
    histograms, e.g. [nlp.bp_depth]). A solver free of instrumentation
    just ignores it.

    [relax] is the engine's linear-relaxation switch
    ([use_bp_relaxation] / [--no-relax]): when false the solver must not
    consult an LP relaxation even if its own config enables one.  The
    returned {!Absolver_nlp.Branch_prune.stats} carries per-solve search
    and relaxation counters for the engine's run statistics; a solver
    without such instrumentation returns
    {!Absolver_nlp.Branch_prune.empty_stats}. *)

type t = {
  boolean : bool_solver list;
  linear : linear_solver list;
  nonlinear : nonlinear_solver list;
}

val cdcl_solver : bool_solver
(** zChaff stand-in: restarting enumeration. *)

val lsat_solver : bool_solver
(** LSAT stand-in: incremental enumeration. *)

val simplex_solver : linear_solver
(** COIN stand-in: exact rational simplex with branch-and-bound for
    integer variables. Provides an incremental session (warm-started
    tableau + verdict cache + float-filtered pivoting) at the defaults of
    {!Absolver_lp.Incremental.create}. *)

val simplex_solver_custom :
  ?cache_capacity:int -> ?float_filter:bool -> unit -> linear_solver
(** {!simplex_solver} with explicit session knobs — [cache_capacity 0]
    disables the verdict cache, [float_filter false] the double-precision
    pivot filter. The bench uses this to attribute gains. *)

val persistent_simplex :
  ?cache_capacity:int -> ?float_filter:bool -> unit -> linear_solver * (unit -> unit)
(** A simplex whose warm session outlives any single enumeration: every
    [ls_session] acquisition re-governs and returns the {e same}
    underlying {!Absolver_lp.Incremental} session, so consecutive solve
    requests reuse asserted constraints, the tableau basis and the
    verdict cache across requests — the solve server keeps one per
    client connection.  Session counters are delta'd per acquisition, so
    per-run statistics stay attributable.  The second component tears the
    warm session down (the server calls it on client disconnect; a later
    acquisition starts fresh).  Each call builds an independent session —
    state never leaks between two [persistent_simplex] values. *)

val branch_prune_solver :
  ?config:Absolver_nlp.Branch_prune.config ->
  ?jobs:int ->
  unit ->
  nonlinear_solver
(** IPOPT stand-in: interval branch-and-prune.  [jobs > 1] runs the
    oracle's box worklist on that many worker domains (see
    {!Absolver_nlp.Branch_prune.solve}); the default 1 is the historical
    sequential search. *)

val default : t
(** LSAT + simplex + branch-and-prune (the combination used for Tables 1
    and 3 of the paper, modulo substitutions). *)

val with_chaff : t
(** zChaff-style restarting Boolean enumeration (Table 1's combination). *)
