module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval
module Types = Absolver_sat.Types
module Expr = Absolver_nlp.Expr
module Box = Absolver_nlp.Box
module Linexpr = Absolver_lp.Linexpr
module Sat_simplify = Absolver_preprocess.Sat_simplify
module Lp_presolve = Absolver_preprocess.Lp_presolve
module Icp = Absolver_preprocess.Icp
module Telemetry = Absolver_telemetry.Telemetry
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults

type stats = {
  mutable fixed_literals : int;
  mutable pure_literals : int;
  mutable removed_clauses : int;
  mutable strengthened_literals : int;
  mutable failed_literals : int;
  mutable tightened_bounds : int;
  mutable unit_defs : int;
  mutable rounds : int;
  mutable wall_seconds : float;
}

let mk_stats () =
  {
    fixed_literals = 0;
    pure_literals = 0;
    removed_clauses = 0;
    strengthened_literals = 0;
    failed_literals = 0;
    tightened_bounds = 0;
    unit_defs = 0;
    rounds = 0;
    wall_seconds = 0.0;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "fixed=%d pure=%d removed=%d strengthened=%d failed=%d tightened=%d unit-defs=%d rounds=%d time=%.3fs"
    s.fixed_literals s.pure_literals s.removed_clauses s.strengthened_literals
    s.failed_literals s.tightened_bounds s.unit_defs s.rounds s.wall_seconds

type t = {
  status : [ `Open | `Unsat ];
  clauses : Types.lit list list;
  fixed : (Types.var * bool) list;
  pure : (Types.var * bool) list;
  box : Box.t;
  bound_rels : Expr.rel list;
  stats : stats;
}

let initial_box problem =
  let n = Ab_problem.num_arith_vars problem in
  let box = Box.create n in
  List.iter
    (fun (v, (lo, hi)) -> Box.set box v (I.of_rational_bounds lo hi))
    (Ab_problem.bounds problem);
  box

let identity problem =
  {
    status = `Open;
    clauses = Ab_problem.clauses problem;
    fixed = [];
    pure = [];
    box = initial_box problem;
    bound_rels = Ab_problem.bound_rels problem;
    stats = mk_stats ();
  }

(* Arithmetic relations that hold in every model, given the root-fixed
   definition variables: a true variable contributes its whole
   conjunction; a false single-constraint variable contributes the
   negation when it is deterministic (negated equations branch and yield
   nothing unconditional). *)
let implied_rels problem fixed_tbl =
  Hashtbl.fold
    (fun v value acc ->
      match Ab_problem.find_defs problem v with
      | [] -> acc
      | ds when value -> List.map (fun (d : Ab_problem.def) -> d.rel) ds @ acc
      | [ d ] -> (
        match Expr.negate_rel d.rel with [ r ] -> r :: acc | _ -> acc)
      | _ -> acc)
    fixed_tbl []

let bound_rels_of_lb nvars (lb : Lp_presolve.bounds) =
  let rels = ref [] in
  for v = nvars - 1 downto 0 do
    (match lb.Lp_presolve.hi.(v) with
    | Some q ->
      rels :=
        {
          Expr.expr = Expr.sub (Expr.var v) (Expr.const q);
          op = Linexpr.Le;
          tag = Ab_problem.bounds_tag;
        }
        :: !rels
    | None -> ());
    match lb.Lp_presolve.lo.(v) with
    | Some q ->
      rels :=
        {
          Expr.expr = Expr.sub (Expr.var v) (Expr.const q);
          op = Linexpr.Ge;
          tag = Ab_problem.bounds_tag;
        }
        :: !rels
    | None -> ()
  done;
  !rels

let run ?(max_rounds = 3) ?(probe_limit = 2000) ?(protect_also = [])
    ?(telemetry = Telemetry.disabled) ?(budget = Budget.unlimited) problem =
  let tel = telemetry in
  let t0 = Telemetry.Clock.now () in
  let stats = mk_stats () in
  let nvars_b = Ab_problem.num_bool_vars problem in
  let nvars_a = Ab_problem.num_arith_vars problem in
  (* Pure-literal protection: defined variables, the enumeration
     projection (all variables when none is declared), and any extra
     variables the caller counts models over. *)
  let protected = Array.make (max 1 nvars_b) false in
  (match Ab_problem.projection problem with
  | None -> Array.fill protected 0 (Array.length protected) true
  | Some vs -> List.iter (fun v -> if v >= 0 && v < nvars_b then protected.(v) <- true) vs);
  List.iter (fun v -> if v >= 0 && v < nvars_b then protected.(v) <- true) protect_also;
  List.iter (fun v -> if v < nvars_b then protected.(v) <- true)
    (Ab_problem.defined_vars problem);
  let protect v = v >= Array.length protected || protected.(v) in
  (* Exact rational bounds and integer-variable marking. *)
  let lb = Lp_presolve.create nvars_a in
  List.iter
    (fun (v, (lo, hi)) ->
      lb.Lp_presolve.lo.(v) <- lo;
      lb.Lp_presolve.hi.(v) <- hi)
    (Ab_problem.bounds problem);
  let int_var = Array.make (max 1 nvars_a) false in
  List.iter
    (fun (d : Ab_problem.def) ->
      if d.domain = Ab_problem.Dint then
        List.iter (fun v -> int_var.(v) <- true) (Expr.vars d.rel.Expr.expr))
    (Ab_problem.defs problem);
  let is_int v = v >= 0 && v < nvars_a && int_var.(v) in
  let original_clauses = Ab_problem.clauses problem in
  let clauses = ref original_clauses in
  let fixed_tbl : (Types.var, bool) Hashtbl.t = Hashtbl.create 16 in
  let pure_tbl : (Types.var, bool) Hashtbl.t = Hashtbl.create 16 in
  let box = ref (initial_box problem) in
  let unsat = ref false in
  (* Every pass below catches its own budget exhaustion and returns a
     sound partial result; between rounds a non-raising poll stops the
     fixpoint. The fault point covers presolve orchestration itself. *)
  (try
   Faults.hit "presolve.run" budget;
   let continue_ = ref true in
   while
     (not !unsat) && !continue_ && stats.rounds < max_rounds
     && Budget.check budget = None
   do
     stats.rounds <- stats.rounds + 1;
     continue_ := false;
     Telemetry.span tel "presolve.round"
       ~attrs:[ ("round", Telemetry.Int stats.rounds) ]
       (fun () ->
     (* 1. SAT-level simplification. *)
     (match
        Telemetry.span tel "presolve.sat_simplify" (fun () ->
            Sat_simplify.simplify ~probe_limit ~protect ~budget ~nvars:nvars_b
              !clauses)
      with
     | Sat_simplify.Unsat -> unsat := true
     | Sat_simplify.Simplified s ->
       clauses := s.Sat_simplify.clauses;
       List.iter (fun (v, b) -> Hashtbl.replace fixed_tbl v b) s.Sat_simplify.fixed;
       List.iter
         (fun (v, b) -> if not (Hashtbl.mem pure_tbl v) then Hashtbl.add pure_tbl v b)
         s.Sat_simplify.pure;
       stats.strengthened_literals <-
         stats.strengthened_literals + s.Sat_simplify.stats.Sat_simplify.strengthened_literals;
       stats.failed_literals <-
         stats.failed_literals + s.Sat_simplify.stats.Sat_simplify.failed_literals;
       (* 2. LP presolve over the unconditionally implied linear rows. *)
       let implied = implied_rels problem fixed_tbl in
       let rows =
         List.filter_map
           (fun (r : Expr.rel) ->
             Option.map
               (fun le -> { Linexpr.expr = le; op = r.Expr.op; tag = r.Expr.tag })
               (Expr.linearize r.Expr.expr))
           implied
       in
       (match
          Telemetry.span tel "presolve.lp" (fun () ->
              Lp_presolve.presolve ~is_int ~budget lb rows)
        with
       | Lp_presolve.Infeasible_rows _ -> unsat := true
       | Lp_presolve.Presolved { tightened; _ } ->
         stats.tightened_bounds <- stats.tightened_bounds + tightened);
       (* 3. Interval constraint propagation over all implied relations
          (including nonlinear ones the LP pass cannot see). *)
       if not !unsat then begin
         let start =
           Array.init nvars_a (fun i ->
               I.inter (Box.get !box i)
                 (I.of_rational_bounds lb.Lp_presolve.lo.(i) lb.Lp_presolve.hi.(i)))
         in
         if Box.is_empty start && nvars_a > 0 then unsat := true
         else
           match
             Telemetry.span tel "presolve.icp" (fun () ->
                 let h0 = Absolver_nlp.Hc4.total_revisions () in
                 let r = Icp.contract ~budget ~box:start implied in
                 Telemetry.add tel "nlp.hc4_revisions"
                   (Absolver_nlp.Hc4.total_revisions () - h0);
                 r)
           with
           | `Empty -> unsat := true
           | `Box (contracted, narrowed) ->
             box := contracted;
             stats.tightened_bounds <- stats.tightened_bounds + narrowed;
             (* Feed the (outward-rounded, hence sound) float box back
                into the exact bounds. *)
             for i = 0 to nvars_a - 1 do
               let iv = Box.get contracted i in
               if Float.is_finite iv.I.lo then begin
                 let q = Q.of_float iv.I.lo in
                 let q = if is_int i then Q.of_bigint (Q.ceil q) else q in
                 match lb.Lp_presolve.lo.(i) with
                 | Some old when Q.geq old q -> ()
                 | _ -> lb.Lp_presolve.lo.(i) <- Some q
               end;
               if Float.is_finite iv.I.hi then begin
                 let q = Q.of_float iv.I.hi in
                 let q = if is_int i then Q.of_bigint (Q.floor q) else q in
                 match lb.Lp_presolve.hi.(i) with
                 | Some old when Q.leq old q -> ()
                 | _ -> lb.Lp_presolve.hi.(i) <- Some q
               end
             done
       end;
       (* 4. Feed arithmetic verdicts back as unit clauses: a definition
          whose conjunction provably holds (or provably fails) everywhere
          in the tightened box fixes its delta-linked literal. *)
       if not !unsat then
         Telemetry.span tel "presolve.feedback" (fun () ->
         let env = Box.env !box in
         let rel_redundant (r : Expr.rel) =
           Expr.certainly_holds env r
           || (match Expr.linearize r.Expr.expr with
              | Some le ->
                Lp_presolve.status lb
                  { Linexpr.expr = le; op = r.Expr.op; tag = r.Expr.tag }
                = Lp_presolve.Redundant
              | None -> false)
         in
         let rel_infeasible (r : Expr.rel) =
           Expr.certainly_violated env r
           || (match Expr.linearize r.Expr.expr with
              | Some le ->
                Lp_presolve.status lb
                  { Linexpr.expr = le; op = r.Expr.op; tag = r.Expr.tag }
                = Lp_presolve.Infeasible
              | None -> false)
         in
         let new_units = ref [] in
         List.iter
           (fun v ->
             if not (Hashtbl.mem fixed_tbl v) then begin
               let rels =
                 List.map
                   (fun (d : Ab_problem.def) -> d.rel)
                   (Ab_problem.find_defs problem v)
               in
               if rels <> [] then
                 if List.for_all rel_redundant rels then
                   new_units := [ Types.pos v ] :: !new_units
                 else if List.exists rel_infeasible rels then
                   new_units := [ Types.neg_of_var v ] :: !new_units
             end)
           (Ab_problem.defined_vars problem);
         if !new_units <> [] then begin
           stats.unit_defs <- stats.unit_defs + List.length !new_units;
           clauses := !new_units @ !clauses;
           continue_ := true
         end))
     )
   done
   with Budget.Exhausted _ -> ());
  stats.fixed_literals <- Hashtbl.length fixed_tbl;
  stats.pure_literals <- Hashtbl.length pure_tbl;
  stats.removed_clauses <-
    max 0 (List.length original_clauses - List.length !clauses);
  stats.wall_seconds <- Telemetry.Clock.now () -. t0;
  Telemetry.add tel "presolve.fixed_literals" stats.fixed_literals;
  Telemetry.add tel "presolve.pure_literals" stats.pure_literals;
  Telemetry.add tel "presolve.removed_clauses" stats.removed_clauses;
  Telemetry.add tel "presolve.strengthened_literals" stats.strengthened_literals;
  Telemetry.add tel "presolve.failed_literals" stats.failed_literals;
  Telemetry.add tel "presolve.tightened_bounds" stats.tightened_bounds;
  Telemetry.add tel "presolve.unit_defs" stats.unit_defs;
  Telemetry.add tel "presolve.rounds" stats.rounds;
  if !unsat then
    {
      status = `Unsat;
      clauses = [ [] ];
      fixed = [];
      pure = [];
      box = initial_box problem;
      bound_rels = Ab_problem.bound_rels problem;
      stats;
    }
  else
    {
      status = `Open;
      clauses = !clauses;
      fixed = Hashtbl.fold (fun v b acc -> (v, b) :: acc) fixed_tbl [];
      pure = Hashtbl.fold (fun v b acc -> (v, b) :: acc) pure_tbl [];
      box = !box;
      bound_rels = bound_rels_of_lb nvars_a lb;
      stats;
    }

let restore_model t model =
  List.iter (fun (v, b) -> if v < Array.length model then model.(v) <- b) t.pure
