(** ABSOLVER's control loop (paper Sec. 4).

    The engine queries a Boolean solver for one model (or enumerates all
    of them), induces the delta-valuation of the defined arithmetic
    constraints, builds the arithmetic subsystem — splitting negated
    equations into their [<] and [>] branches as in Sec. 1 — checks the
    linear part with the linear solver, feeds the smallest conflicting
    subset back to the SAT solver as a blocking clause on infeasibility,
    and calls the nonlinear solver whenever the circuit's output pin is
    still [?]. Iteration continues until a solution is found or all
    Boolean assignments are exhausted. *)

module Types = Absolver_sat.Types

type options = {
  minimize_conflicts : bool;
      (** Post-process linear conflict sets with deletion filtering
          (guaranteed-minimal hints; ablation switch). *)
  max_bool_models : int; (** Safety cap on examined Boolean models. *)
  eq_split_limit : int;
      (** Maximum number of negated equations branched per model. *)
  sat_max_conflicts : int;
  max_unknown_models : int;
      (** Give up after this many Boolean models whose arithmetic part
          could not be decided. *)
  default_phase : bool;
      (** Initial polarity of the Boolean solver's decisions; [true] makes
          early models assert constraints positively, which arithmetic
          subsystems tend to tolerate better. *)
  use_linear_relaxation : bool;
      (** Relax nonlinear constraints into the linear check by replacing
          maximal nonlinear subterms with interval-bounded auxiliary
          variables: blatantly contradictory delta-valuations then die in
          the cheap solver with small cores (ablation switch). *)
  use_bp_relaxation : bool;
      (** Consult the branch-and-prune linear-relaxation layer
          ([Absolver_relax]): sound linear enclosures of the nonlinear
          atoms are asserted into a warm, search-path-scoped LP session —
          LP infeasibility prunes nodes before interval contraction runs,
          an octagon middle tier screens [+-x +- y <= c] cuts before any
          pivot, and near-root LP optima tighten variable bounds (OBBT).
          On by default; off ([CLI --no-relax]) restores the pure
          interval search (ablation switch). Verdict-equivalent either
          way. *)
  use_presolve : bool;
      (** Run the {!Preprocess} layer (SAT inprocessing, LP presolve,
          interval propagation) before search. On by default; off restores
          the exact pre-presolve behaviour (ablation switch). *)
  use_incremental : bool;
      (** Route LP queries through one persistent warm-started simplex
          session per enumeration (constraint-delta assert/retract,
          theory-verdict cache, float-filtered pivoting) instead of
          solving each query from scratch. On by default; off ([CLI
          --no-incremental]) restores the paper's restart-per-model
          behaviour. Verdict-equivalent either way — only pivot counts
          and wall time change. *)
  telemetry : Absolver_telemetry.Telemetry.t;
      (** Observability handle. Disabled by default (no-op); an enabled
          handle records hierarchical spans over every phase of the
          control loop — presolve (and its per-round passes), each
          [sat_search], each Boolean model's arithmetic check with its
          [linear_check] / [nonlinear_check] children — plus per-span
          counter deltas ([sat.*], [lp.pivots], [nlp.*], [engine.*]) and
          one [blocking_clause] event per learned blocking clause with
          its conflict-set size. Results are bit-identical with telemetry
          on or off; only observation is added. *)
  budget : Absolver_resource.Budget.t;
      (** Resource governor handle, threaded through every hot loop of the
          pipeline (presolve passes, CDCL search, simplex pivoting,
          branch-and-prune). [Budget.unlimited] by default — a no-op with
          bit-identical results. When a deadline, step budget, memory
          budget or cancellation trips, the engine degrades gracefully:
          the result becomes [R_unknown] with the typed reason mirrored in
          [run_stats.budget_exhausted], and partial results (models found
          so far, the optimization incumbent) are preserved. Budget
          pressure may turn SAT/UNSAT into UNKNOWN but never flips an
          answer, and no exception ever escapes a public entry point. *)
}

val default_options : options

type result =
  | R_sat of Solution.t
  | R_unsat
  | R_unknown of string (** why the engine could not decide *)

val pp_result : Ab_problem.t -> Format.formatter -> result -> unit

type run_stats = {
  mutable bool_models : int; (** Boolean models examined *)
  mutable linear_checks : int;
  mutable linear_conflicts : int;
  mutable nonlinear_calls : int;
  mutable blocking_clauses : int;
  mutable eq_branches : int;
  mutable wall_seconds : float;
  mutable presolve_fixed_literals : int;
      (** Boolean variables fixed at root level by presolve. *)
  mutable presolve_removed_clauses : int;  (** Net CNF shrinkage. *)
  mutable presolve_tightened_bounds : int;
      (** Bound tightenings (LP presolve + interval contraction). *)
  mutable presolve_seconds : float;  (** Presolve wall time. *)
  mutable sat_decisions : int;  (** CDCL decisions across all SAT calls. *)
  mutable sat_conflicts : int;
  mutable sat_propagations : int;
  mutable sat_restarts : int;
  mutable simplex_pivots : int;
      (** Simplex pivots attributable to this run (linear checks, witness
          re-solves, optimization). *)
  mutable budget_exhausted : Absolver_resource.Absolver_error.t option;
      (** [Some reason] iff the run's budget tripped (or a stray exception
          was contained at the boundary); [None] on unbudgeted runs and on
          runs that finished within budget. *)
  mutable lp_cache_hits : int;
      (** Theory-cache hits: LP queries answered (verdict or conflict
          core replayed) without touching the simplex. Zero when
          [use_incremental] is off. *)
  mutable lp_cache_misses : int;
  mutable lp_cache_evictions : int;
  mutable lp_asserted : int;
      (** Constraints pushed onto the persistent session's stack. *)
  mutable lp_retracted : int;
      (** Constraints popped off the stack between queries. *)
  mutable lp_reused : int;
      (** Constraints kept asserted across consecutive queries — the
          warm-start savings the delta computation realized. *)
  mutable alloc_minor_words : float;
      (** Words allocated in the minor heap during the run
          ([Gc.minor_words] delta). *)
  mutable alloc_major_words : float;
      (** Words allocated directly in the major heap during the run
          ([Gc.major_words - promoted_words] delta, so minor allocations
          that survived a collection are not double-counted). *)
  mutable bp_nodes : int;
      (** Branch-and-prune nodes explored by this run's nonlinear checks
          (per-solve figures, never the process-wide totals). *)
  mutable bp_prunings : int;
      (** Boxes discarded by the branch-and-prune searches (any cause:
          interval certificate, relaxation, empty contraction). *)
  mutable relax_cuts_asserted : int;
      (** Linear cuts the relaxation layer asserted into its scoped LP
          sessions. Zero when [use_bp_relaxation] is off. *)
  mutable relax_lp_checks : int;
      (** LP feasibility checks run by the relaxation layer. *)
  mutable relax_nodes_pruned : int;
      (** Nodes refuted by the relaxation (octagon or LP) before any
          interval contraction ran. *)
  mutable relax_bounds_tightened : int;
      (** Variable bounds tightened by the relaxation layer (octagon
          closure + OBBT). *)
}

val pp_run_stats : Format.formatter -> run_stats -> unit
(** Prints the historical columns first, then the [presolve[...]],
    [sat[...]] and [pivots=] suffixes; existing column order is stable. *)

val run_stats_json : run_stats -> string
(** One flat JSON object, the canonical machine-readable rendering used
    by the CLI's [--stats-json] and the bench harness. *)

val solve :
  ?registry:Registry.t -> ?options:options -> Ab_problem.t -> result * run_stats

(** {1 Portfolio mode}

    Race several complete decision procedures on separate domains and
    take the first definitive verdict (Sec. 4's "list of solvers", run
    concurrently instead of in order).  Each competitor gets a budget
    forked from [options.budget] and a private telemetry handle merged
    back at join; the winner's verdict cancels the losers cooperatively
    (they unwind at their next budget poll — no preemption). *)

type competitor = {
  cp_name : string;
  cp_solve :
    budget:Absolver_resource.Budget.t ->
    telemetry:Absolver_telemetry.Telemetry.t ->
    Ab_problem.t ->
    result;
}

val engine_competitor :
  ?registry:Registry.t -> ?options:options -> ?name:string -> unit -> competitor
(** This engine as a competitor: {!solve} with the race's budget and
    telemetry substituted into [options]. *)

val solve_portfolio :
  ?options:options -> competitors:competitor list -> Ab_problem.t -> result * string option
(** [solve_portfolio ~competitors problem] returns the winning verdict
    and the winner's name.  [R_sat]/[R_unsat] are decisive; if every
    competitor returns [R_unknown], the first competitor's verdict (and
    its reason) is kept and the winner is [None].  The concrete
    engine-vs-DPLL(T)-baselines portfolio lives in
    [Absolver_baselines.Portfolio] (the baselines library depends on this
    one, so the engine only defines the generic race). *)

val all_models :
  ?projection:Types.var list ->
  ?registry:Registry.t ->
  ?options:options ->
  ?limit:int ->
  Ab_problem.t ->
  (Solution.t list * run_stats, string) Stdlib.result
(** Every arithmetically-feasible Boolean model, each with a witness —
    the LSAT-powered mode the paper recommends for consistency-based
    diagnosis and test-case generation (Sec. 4, Sec. 6).

    Anytime semantics under a budget: if the enumeration is cut short by
    the budget, the call still returns [Ok] with the models found so far
    and [run_stats.budget_exhausted = Some reason]; only non-budget
    unknowns (and unbudgeted incompleteness) use the [Error] path. *)

val count_models :
  ?registry:Registry.t ->
  ?options:options ->
  Ab_problem.t ->
  (int * run_stats, string) Stdlib.result
(** Like {!all_models} but returning only the count — with the run's
    statistics, so callers can report enumeration effort. *)

(** {1 Optimization modulo the Boolean structure}

    An OMT-flavoured extension: maximize a linear objective over {e all}
    arithmetically feasible delta-valuations of a (linear) AB-problem —
    the Boolean solver enumerates the disjuncts, the simplex optimizer
    solves each polytope, and the best vertex wins. *)

type opt_outcome =
  | Opt_best of Absolver_numeric.Rational.t * Solution.t
      (** optimal value and an attaining solution — claimed only when the
          delta-valuation enumeration ran to completion *)
  | Opt_incumbent of Absolver_numeric.Rational.t * Solution.t
      (** best value found before the search was cut short (budget
          exhausted, [limit] reached, or an undecidable model): a sound
          lower bound on the optimum for [`Maximize] (upper for
          [`Minimize]), not a proof of optimality *)
  | Opt_unbounded
  | Opt_unsat
  | Opt_unknown of string

val optimize :
  ?registry:Registry.t ->
  ?options:options ->
  ?limit:int ->
  objective:Absolver_lp.Linexpr.t ->
  [ `Maximize | `Minimize ] ->
  Ab_problem.t ->
  opt_outcome
(** Rejects problems with nonlinear definitions ([Opt_unknown]); [limit]
    caps the number of delta-valuations explored (default 10000). Negated
    equalities are disjunctive; they are optimized within the branch the
    enumeration witness satisfies.

    An incomplete search that holds an incumbent reports {!Opt_incumbent},
    never {!Opt_best} (historically this overclaimed optimality) and never
    silently [Opt_unknown]. *)
