module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval
module Types = Absolver_sat.Types
module Cdcl = Absolver_sat.Cdcl
module Expr = Absolver_nlp.Expr
module Box = Absolver_nlp.Box
module Linexpr = Absolver_lp.Linexpr
module Conflict = Absolver_lp.Conflict
module Simplex = Absolver_lp.Simplex
module Hc4 = Absolver_nlp.Hc4
module Newton = Absolver_nlp.Newton
module Branch_prune = Absolver_nlp.Branch_prune
module Telemetry = Absolver_telemetry.Telemetry
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults
module Err = Absolver_resource.Absolver_error
module Pool = Absolver_parallel.Pool

type options = {
  minimize_conflicts : bool;
  max_bool_models : int;
  eq_split_limit : int;
  sat_max_conflicts : int;
  max_unknown_models : int;
  default_phase : bool;
  use_linear_relaxation : bool;
  use_bp_relaxation : bool;
  use_presolve : bool;
  use_incremental : bool;
  telemetry : Telemetry.t;
  budget : Budget.t;
}

let default_options =
  {
    minimize_conflicts = false;
    max_bool_models = 2_000_000;
    eq_split_limit = 12;
    sat_max_conflicts = 50_000_000;
    max_unknown_models = 500;
    default_phase = true;
    use_linear_relaxation = true;
    use_bp_relaxation = true;
    use_presolve = true;
    use_incremental = true;
    telemetry = Telemetry.disabled;
    budget = Budget.unlimited;
  }

type result = R_sat of Solution.t | R_unsat | R_unknown of string

let pp_result problem fmt = function
  | R_sat s -> Format.fprintf fmt "sat@,%a" (Solution.pp problem) s
  | R_unsat -> Format.pp_print_string fmt "unsat"
  | R_unknown why -> Format.fprintf fmt "unknown (%s)" why

type run_stats = {
  mutable bool_models : int;
  mutable linear_checks : int;
  mutable linear_conflicts : int;
  mutable nonlinear_calls : int;
  mutable blocking_clauses : int;
  mutable eq_branches : int;
  mutable wall_seconds : float;
  mutable presolve_fixed_literals : int;
  mutable presolve_removed_clauses : int;
  mutable presolve_tightened_bounds : int;
  mutable presolve_seconds : float;
  mutable sat_decisions : int;
  mutable sat_conflicts : int;
  mutable sat_propagations : int;
  mutable sat_restarts : int;
  mutable simplex_pivots : int;
  mutable budget_exhausted : Err.t option;
  mutable lp_cache_hits : int;
  mutable lp_cache_misses : int;
  mutable lp_cache_evictions : int;
  mutable lp_asserted : int;
  mutable lp_retracted : int;
  mutable lp_reused : int;
  mutable alloc_minor_words : float;
  mutable alloc_major_words : float;
  mutable bp_nodes : int;
  mutable bp_prunings : int;
  mutable relax_cuts_asserted : int;
  mutable relax_lp_checks : int;
  mutable relax_nodes_pruned : int;
  mutable relax_bounds_tightened : int;
}

let mk_stats () =
  {
    bool_models = 0;
    linear_checks = 0;
    linear_conflicts = 0;
    nonlinear_calls = 0;
    blocking_clauses = 0;
    eq_branches = 0;
    wall_seconds = 0.0;
    presolve_fixed_literals = 0;
    presolve_removed_clauses = 0;
    presolve_tightened_bounds = 0;
    presolve_seconds = 0.0;
    sat_decisions = 0;
    sat_conflicts = 0;
    sat_propagations = 0;
    sat_restarts = 0;
    simplex_pivots = 0;
    budget_exhausted = None;
    lp_cache_hits = 0;
    lp_cache_misses = 0;
    lp_cache_evictions = 0;
    lp_asserted = 0;
    lp_retracted = 0;
    lp_reused = 0;
    alloc_minor_words = 0.0;
    alloc_major_words = 0.0;
    bp_nodes = 0;
    bp_prunings = 0;
    relax_cuts_asserted = 0;
    relax_lp_checks = 0;
    relax_nodes_pruned = 0;
    relax_bounds_tightened = 0;
  }

(* Allocation accounting around a solve. [minor_words] counts words
   allocated in the minor heap; the direct-to-major share is
   [major_words - promoted_words] (promotion would otherwise double-count
   minor allocations that survived a collection). [Gc.quick_stat] reads
   counters without walking the heap, so the probe itself is cheap. *)
let alloc_snapshot () =
  let g = Gc.quick_stat () in
  (g.Gc.minor_words, g.Gc.major_words -. g.Gc.promoted_words)

let absorb_alloc tel stats (minor0, major0) =
  let minor1, major1 = alloc_snapshot () in
  stats.alloc_minor_words <- minor1 -. minor0;
  stats.alloc_major_words <- major1 -. major0;
  Telemetry.observe tel "engine.alloc_words"
    (stats.alloc_minor_words +. stats.alloc_major_words)

(* New counters are appended after the original columns: tools (and
   eyeballs) parsing the historical prefix keep working. *)
let pp_run_stats fmt s =
  Format.fprintf fmt
    "models=%d lin-checks=%d lin-conflicts=%d nl-calls=%d blocked=%d eq-branches=%d time=%.3fs presolve[fixed=%d removed=%d tightened=%d time=%.3fs] sat[decisions=%d conflicts=%d propagations=%d restarts=%d] pivots=%d"
    s.bool_models s.linear_checks s.linear_conflicts s.nonlinear_calls
    s.blocking_clauses s.eq_branches s.wall_seconds s.presolve_fixed_literals
    s.presolve_removed_clauses s.presolve_tightened_bounds s.presolve_seconds
    s.sat_decisions s.sat_conflicts s.sat_propagations s.sat_restarts
    s.simplex_pivots;
  Format.fprintf fmt
    " lp-inc[hits=%d misses=%d evicted=%d asserted=%d retracted=%d reused=%d]"
    s.lp_cache_hits s.lp_cache_misses s.lp_cache_evictions s.lp_asserted
    s.lp_retracted s.lp_reused;
  Format.fprintf fmt " alloc[minor=%.0fw major=%.0fw]" s.alloc_minor_words
    s.alloc_major_words;
  Format.fprintf fmt
    " bp[nodes=%d prunings=%d] relax[cuts=%d lp=%d pruned=%d tightened=%d]"
    s.bp_nodes s.bp_prunings s.relax_cuts_asserted s.relax_lp_checks
    s.relax_nodes_pruned s.relax_bounds_tightened;
  match s.budget_exhausted with
  | None -> ()
  | Some e -> Format.fprintf fmt " budget-exhausted=%s" (Err.code e)

(* Fold the SAT solver's cumulative [Types.stats] into the run record and
   telemetry as deltas against [snap] (which is advanced), so the same
   helper serves both the long-lived incremental solver and the
   rebuilt-per-model restarting one. *)
let absorb_sat_stats tel run (snap : Types.stats) (s : Types.stats) =
  let dd = s.Types.decisions - snap.Types.decisions in
  let dc = s.Types.conflicts - snap.Types.conflicts in
  let dp = s.Types.propagations - snap.Types.propagations in
  let dr = s.Types.restarts - snap.Types.restarts in
  let dl = s.Types.learnt_literals - snap.Types.learnt_literals in
  let dx = s.Types.reductions - snap.Types.reductions in
  let db = s.Types.blocked_visits - snap.Types.blocked_visits in
  run.sat_decisions <- run.sat_decisions + dd;
  run.sat_conflicts <- run.sat_conflicts + dc;
  run.sat_propagations <- run.sat_propagations + dp;
  run.sat_restarts <- run.sat_restarts + dr;
  Telemetry.add tel "sat.decisions" dd;
  Telemetry.add tel "sat.conflicts" dc;
  Telemetry.add tel "sat.propagations" dp;
  Telemetry.add tel "sat.restarts" dr;
  Telemetry.add tel "sat.learnt_literals" dl;
  Telemetry.add tel "sat.reductions" dx;
  Telemetry.add tel "sat.blocked_visits" db;
  snap.Types.decisions <- s.Types.decisions;
  snap.Types.conflicts <- s.Types.conflicts;
  snap.Types.propagations <- s.Types.propagations;
  snap.Types.restarts <- s.Types.restarts;
  snap.Types.learnt_literals <- s.Types.learnt_literals;
  snap.Types.reductions <- s.Types.reductions;
  snap.Types.blocked_visits <- s.Types.blocked_visits

(* One canonical JSON rendering of run_stats, shared by the CLI's
   --stats-json and the bench harness. *)
let run_stats_json s =
  let i n = string_of_int n in
  Telemetry.Json.obj
    [
      ("bool_models", i s.bool_models);
      ("linear_checks", i s.linear_checks);
      ("linear_conflicts", i s.linear_conflicts);
      ("nonlinear_calls", i s.nonlinear_calls);
      ("blocking_clauses", i s.blocking_clauses);
      ("eq_branches", i s.eq_branches);
      ("wall_seconds", Telemetry.Json.of_float s.wall_seconds);
      ("presolve_fixed_literals", i s.presolve_fixed_literals);
      ("presolve_removed_clauses", i s.presolve_removed_clauses);
      ("presolve_tightened_bounds", i s.presolve_tightened_bounds);
      ("presolve_seconds", Telemetry.Json.of_float s.presolve_seconds);
      ("sat_decisions", i s.sat_decisions);
      ("sat_conflicts", i s.sat_conflicts);
      ("sat_propagations", i s.sat_propagations);
      ("sat_restarts", i s.sat_restarts);
      ("simplex_pivots", i s.simplex_pivots);
      ("lp_cache_hits", i s.lp_cache_hits);
      ("lp_cache_misses", i s.lp_cache_misses);
      ("lp_cache_evictions", i s.lp_cache_evictions);
      ("lp_asserted", i s.lp_asserted);
      ("lp_retracted", i s.lp_retracted);
      ("lp_reused", i s.lp_reused);
      ("alloc_minor_words", Telemetry.Json.of_float s.alloc_minor_words);
      ("alloc_major_words", Telemetry.Json.of_float s.alloc_major_words);
      ("bp_nodes", i s.bp_nodes);
      ("bp_prunings", i s.bp_prunings);
      ("relax_cuts_asserted", i s.relax_cuts_asserted);
      ("relax_lp_checks", i s.relax_lp_checks);
      ("relax_nodes_pruned", i s.relax_nodes_pruned);
      ("relax_bounds_tightened", i s.relax_bounds_tightened);
      ( "budget_exhausted",
        match s.budget_exhausted with
        | None -> "null"
        | Some e -> "\"" ^ Telemetry.Json.escape (Err.to_string e) ^ "\"" );
    ]

(* Outcome of checking one Boolean model arithmetically. *)
type model_check =
  | M_sat of Solution.t
  | M_conflict of Types.lit list (* blocking clause *)
  | M_unknown of string

(* All sign combinations for the branched (negated equation) definitions:
   each choice picks one relation from each group. *)
let rec combinations = function
  | [] -> [ [] ]
  | group :: rest ->
    let tails = combinations rest in
    List.concat_map (fun rel -> List.map (fun t -> rel :: t) tails) group

(* Build the blocking clause that forbids the delta-valuation selected by
   [model] on the definition variables listed in [tags]. *)
let blocking_of_tags model tags =
  tags
  |> List.filter (fun tag -> tag >= 0)
  |> List.sort_uniq compare
  |> List.map (fun v -> if model.(v) then Types.neg_of_var v else Types.pos v)

(* Linear relaxation: replace each maximal nonlinear subterm by an
   auxiliary variable bounded by the subterm's interval range over the
   problem box.  Structurally identical subterms share their auxiliary
   variable, so e.g. [yaw - f(v) >= 0.4] and [yaw - f(v) <= -0.4] become
   jointly LP-infeasible with the two-literal core {over, under} -- the
   layering that lets the cheap solver prune before the expensive one
   runs. *)
module Relax = struct
  type t = {
    mutable next_aux : int;
    table : (string, int) Hashtbl.t;
    mutable aux_bounds : Linexpr.cons list;
    box : Box.t;
  }

  let create ~first_aux ~box =
    { next_aux = first_aux; table = Hashtbl.create 16; aux_bounds = []; box }

  let aux_for st (e : Expr.t) =
    let key = Expr.to_string e in
    match Hashtbl.find_opt st.table key with
    | Some v -> v
    | None ->
      let v = st.next_aux in
      st.next_aux <- v + 1;
      Hashtbl.add st.table key v;
      let range = Expr.eval_interval (Box.env st.box) e in
      let open Absolver_numeric in
      (if (not (Interval.is_empty range)) && Float.is_finite range.Interval.lo
       then
         st.aux_bounds <-
           {
             Linexpr.expr =
               Linexpr.add_term
                 (Linexpr.constant (Q.neg (Q.of_float range.Interval.lo)))
                 Q.one v;
             op = Linexpr.Ge;
             tag = Ab_problem.bounds_tag;
           }
           :: st.aux_bounds);
      (if (not (Interval.is_empty range)) && Float.is_finite range.Interval.hi
       then
         st.aux_bounds <-
           {
             Linexpr.expr =
               Linexpr.add_term
                 (Linexpr.constant (Q.neg (Q.of_float range.Interval.hi)))
                 Q.one v;
             op = Linexpr.Le;
             tag = Ab_problem.bounds_tag;
           }
           :: st.aux_bounds);
      v

  let rec linexpr st (e : Expr.t) : Linexpr.t =
    match Expr.linearize e with
    | Some le -> le
    | None -> (
      match e with
      | Expr.Add (a, b) -> Linexpr.add (linexpr st a) (linexpr st b)
      | Expr.Sub (a, b) -> Linexpr.sub (linexpr st a) (linexpr st b)
      | Expr.Neg a -> Linexpr.neg (linexpr st a)
      | Expr.Mul (a, b) -> (
        match (Expr.linearize a, Expr.linearize b) with
        | Some la, _ when Linexpr.is_constant la ->
          Linexpr.scale (Linexpr.const la) (linexpr st b)
        | _, Some lb when Linexpr.is_constant lb ->
          Linexpr.scale (Linexpr.const lb) (linexpr st a)
        | _ -> Linexpr.var (aux_for st e))
      | Expr.Div (a, b) -> (
        match Expr.linearize b with
        | Some lb
          when Linexpr.is_constant lb && not (Q.is_zero (Linexpr.const lb)) ->
          Linexpr.scale (Q.inv (Linexpr.const lb)) (linexpr st a)
        | _ -> Linexpr.var (aux_for st e))
      | Expr.Const _ | Expr.Var _ | Expr.Pow _ | Expr.Sqrt _ | Expr.Exp _
      | Expr.Log _ | Expr.Sin _ | Expr.Cos _ ->
        Linexpr.var (aux_for st e))
end

(* [lsolve] is the LP entry point for this enumeration: either a
   persistent warm-started session or a from-scratch closure (see
   [linear_entry] below); [None] when no linear solver is registered. *)
let check_model ~registry ~options ~stats ~pre ~lsolve problem
    (model : bool array) =
  let tel = options.telemetry in
  let budget = options.budget in
  let defs = Ab_problem.defs problem in
  (* Presolve-tightened bounds and box: sound in every Boolean model,
     since presolve only derives facts implied by the whole problem. *)
  let bound_rels = pre.Preprocess.bound_rels in
  let int_vars =
    List.concat_map
      (fun (d : Ab_problem.def) ->
        if d.domain = Ab_problem.Dint then Expr.vars d.rel.Expr.expr else [])
      defs
    |> List.sort_uniq compare
  in
  (* Split definitions into fixed relations and branching groups: a true
     variable contributes all of its constraints; a false variable demands
     that at least one constraint of its conjunction fail, which (together
     with the Eq split of Sec. 1) yields a disjunctive branching group. *)
  let fixed, groups =
    List.fold_left
      (fun (fixed, groups) v ->
        let rels =
          List.map (fun (d : Ab_problem.def) -> d.rel) (Ab_problem.find_defs problem v)
        in
        if model.(v) then (rels @ fixed, groups)
        else
          match List.concat_map Expr.negate_rel rels with
          | [ r ] -> (r :: fixed, groups)
          | rs -> (fixed, rs :: groups))
      ([], [])
      (Ab_problem.defined_vars problem)
  in
  if List.length groups > options.eq_split_limit then
    M_unknown
      (Printf.sprintf "more than %d negated equations in one Boolean model"
         options.eq_split_limit)
  else if Option.is_none lsolve then
    (* An empty solver list is a configuration error, not a crash: report
       it as an undecidable model (pre-refactor this was a [failwith]). *)
    M_unknown "no linear solver registered"
  else begin
    let lsolve = Option.get lsolve in
    let all_combos = combinations groups in
    let cores = ref [] in
    let unknown = ref None in
    let solution = ref None in
    let nvars = Ab_problem.num_arith_vars problem in
    let try_combo combo =
      stats.eq_branches <- stats.eq_branches + 1;
      Telemetry.add tel "engine.eq_branches" 1;
      let rels = fixed @ combo @ bound_rels in
      let linear, nonlinear =
        List.partition_map
          (fun (r : Expr.rel) ->
            match Expr.linearize r.Expr.expr with
            | Some le -> Either.Left { Linexpr.expr = le; op = r.Expr.op; tag = r.Expr.tag }
            | None -> Either.Right r)
          rels
      in
      (* Linear filter, including relaxations of the nonlinear part. *)
      stats.linear_checks <- stats.linear_checks + 1;
      Telemetry.add tel "engine.linear_checks" 1;
      let lp_input =
        if options.use_linear_relaxation && nonlinear <> [] then begin
          let st = Relax.create ~first_aux:nvars ~box:(Box.copy pre.Preprocess.box) in
          let relaxed =
            List.map
              (fun (r : Expr.rel) ->
                {
                  Linexpr.expr = Relax.linexpr st r.Expr.expr;
                  op = r.Expr.op;
                  tag = r.Expr.tag;
                })
              nonlinear
          in
          linear @ relaxed @ st.Relax.aux_bounds
        end
        else linear
      in
      let lp_verdict =
        Telemetry.span tel "linear_check"
          ~attrs:[ ("constraints", Telemetry.Int (List.length lp_input)) ]
          (fun () ->
            let p0 = Simplex.total_pivots () in
            let v = lsolve ~int_vars lp_input in
            let dp = Simplex.total_pivots () - p0 in
            Telemetry.add tel "lp.pivots" dp;
            Telemetry.observe tel "lp.pivots_per_check" (float_of_int dp);
            v)
      in
      match lp_verdict with
      | Registry.L_unknown e -> unknown := Some (Err.to_string e)
      | Registry.L_unsat tags ->
        stats.linear_conflicts <- stats.linear_conflicts + 1;
        Telemetry.add tel "engine.linear_conflicts" 1;
        let tags =
          if options.minimize_conflicts then Conflict.minimal_core linear tags
          else tags
        in
        cores := tags :: !cores
      | Registry.L_sat lin_model ->
        if nonlinear = [] then begin
          let arith = Array.make nvars None in
          List.iter
            (fun (v, q) -> if v < nvars then arith.(v) <- Some (Solution.Exact q))
            lin_model;
          solution :=
            Some (Solution.make ~bools:(Array.copy model) ~arith ~certified:true)
        end
        else begin
          (* Nonlinear step over the full relation system so shared
             variables stay consistent. *)
          stats.nonlinear_calls <- stats.nonlinear_calls + 1;
          Telemetry.add tel "engine.nonlinear_calls" 1;
          let box = Box.copy pre.Preprocess.box in
          (* The paper's solver-list semantics: try each registered solver
             until one produces a decent result. *)
          let rec try_solvers acc = function
            | [] -> (Registry.N_unknown, acc)
            | (s : Registry.nonlinear_solver) :: rest -> (
              let v, st =
                s.Registry.ns_solve ~relax:options.use_bp_relaxation ~budget
                  ~telemetry:tel ~nvars ~box rels
              in
              let acc = Branch_prune.merge_stats acc st in
              match v with
              | Registry.N_unknown -> try_solvers acc rest
              | verdict -> (verdict, acc))
          in
          let nl_vars =
            List.concat_map (fun (r : Expr.rel) -> Expr.vars r.Expr.expr) nonlinear
            |> List.sort_uniq compare
          in
          (* Membership set for the snapping loop below: scanning
             [nl_vars] per integer variable was O(|int_vars|*|nl_vars|). *)
          let nl_set = Hashtbl.create (1 + List.length nl_vars) in
          List.iter (fun v -> Hashtbl.replace nl_set v ()) nl_vars;
          let witness p certified =
            (* Integer variables appearing in nonlinear constraints: snap
               near-integral witness coordinates when the snapped point
               still satisfies everything. *)
            let p =
              let snapped = Array.copy p in
              let changed = ref false in
              List.iter
                (fun v ->
                  if Hashtbl.mem nl_set v then begin
                    let r = Float.round snapped.(v) in
                    if Float.abs (snapped.(v) -. r) > 0.0 && Float.abs (snapped.(v) -. r) < 1e-6
                    then begin
                      snapped.(v) <- r;
                      changed := true
                    end
                  end)
                int_vars;
              if
                !changed
                && List.for_all
                     (fun r -> Expr.holds_float ~tol:1e-9 (fun v -> snapped.(v)) r)
                     rels
              then snapped
              else p
            in
            (* The witness pins the nonlinear variables; re-solve the
               linear subsystem exactly with the shared variables fixed so
               purely-linear (and integer) variables get exact values. *)
            let fix_tag = -3 in
            let fixes =
              List.filter_map
                (fun v ->
                  let touched =
                    List.exists
                      (fun (c : Linexpr.cons) -> List.mem v (Linexpr.vars c.Linexpr.expr))
                      linear
                  in
                  if touched then
                    Some
                      {
                        Linexpr.expr =
                          Linexpr.add_term
                            (Linexpr.constant (Q.neg (Q.of_float p.(v))))
                            Q.one v;
                        op = Linexpr.Eq;
                        tag = fix_tag;
                      }
                  else None)
                nl_vars
            in
            let exact_part =
              match lsolve ~int_vars (fixes @ linear) with
              | Registry.L_sat m -> Some m
              | Registry.L_unsat _ | Registry.L_unknown _ -> None
            in
            let arith = Array.make nvars None in
            (match exact_part with
            | Some m ->
              List.iter
                (fun (v, q) -> if v < nvars then arith.(v) <- Some (Solution.Exact q))
                m;
              List.iter (fun v -> arith.(v) <- Some (Solution.Approx p.(v))) nl_vars
            | None ->
              (* Fall back to the raw witness for every variable. *)
              Array.iteri (fun v _ -> arith.(v) <- Some (Solution.Approx p.(v))) arith);
            solution :=
              Some
                (Solution.make ~bools:(Array.copy model) ~arith
                   ~certified:(certified && exact_part <> None))
          in
          let nl_verdict =
            Telemetry.span tel "nonlinear_check"
              ~attrs:[ ("relations", Telemetry.Int (List.length rels)) ]
              (fun () ->
                let n0 = Branch_prune.total_nodes ()
                and pr0 = Branch_prune.total_prunings ()
                and h0 = Hc4.total_revisions ()
                and w0 = Newton.total_steps () in
                let v, bp =
                  try_solvers Branch_prune.empty_stats
                    registry.Registry.nonlinear
                in
                Telemetry.add tel "nlp.nodes" (Branch_prune.total_nodes () - n0);
                Telemetry.add tel "nlp.prunings"
                  (Branch_prune.total_prunings () - pr0);
                Telemetry.add tel "nlp.hc4_revisions"
                  (Hc4.total_revisions () - h0);
                Telemetry.add tel "nlp.newton_steps"
                  (Newton.total_steps () - w0);
                (* Per-solve search + relaxation counters: the run record
                   aggregates the per-call stats (never the process-wide
                   totals, which conflate concurrent solves). *)
                stats.bp_nodes <- stats.bp_nodes + bp.Branch_prune.nodes;
                stats.bp_prunings <- stats.bp_prunings + bp.Branch_prune.prunings;
                stats.relax_cuts_asserted <-
                  stats.relax_cuts_asserted + bp.Branch_prune.relax_cuts;
                stats.relax_lp_checks <-
                  stats.relax_lp_checks + bp.Branch_prune.relax_lp_checks;
                stats.relax_nodes_pruned <-
                  stats.relax_nodes_pruned + bp.Branch_prune.relax_pruned;
                stats.relax_bounds_tightened <-
                  stats.relax_bounds_tightened + bp.Branch_prune.relax_tightened;
                Telemetry.add tel "nlp.relax.cuts_asserted"
                  bp.Branch_prune.relax_cuts;
                Telemetry.add tel "nlp.relax.lp_checks"
                  bp.Branch_prune.relax_lp_checks;
                Telemetry.add tel "nlp.relax.nodes_pruned"
                  bp.Branch_prune.relax_pruned;
                Telemetry.add tel "nlp.relax.oct_pruned"
                  bp.Branch_prune.relax_oct_pruned;
                Telemetry.add tel "nlp.relax.bounds_tightened"
                  bp.Branch_prune.relax_tightened;
                Telemetry.add tel "nlp.relax.obbt_opts"
                  bp.Branch_prune.relax_obbt;
                v)
          in
          match nl_verdict with
          | Registry.N_sat p -> witness p true
          | Registry.N_approx p -> witness p false
          | Registry.N_unsat ->
            (* Conservative core: every definition participating in this
               subsystem. *)
            let tags =
              List.filter_map
                (fun (r : Expr.rel) -> if r.Expr.tag >= 0 then Some r.Expr.tag else None)
                rels
            in
            cores := tags :: !cores
          | Registry.N_unknown -> unknown := Some "nonlinear solver gave up"
        end
    in
    let rec run = function
      | [] -> ()
      | combo :: rest ->
        if !solution = None && !unknown = None then begin
          try_combo combo;
          run rest
        end
    in
    run all_combos;
    match (!solution, !unknown) with
    | Some s, _ -> M_sat s
    | None, Some why -> M_unknown why
    | None, None ->
      let union = List.sort_uniq compare (List.concat !cores) in
      M_conflict (blocking_of_tags model union)
  end

(* A [Types.Unknown] out of CDCL either means its conflict cap fired or
   the shared budget tripped; the budget's sticky reason disambiguates. *)
let sat_unknown_reason options =
  match Budget.tripped options.budget with
  | Some e -> Err.to_string e
  | None -> "SAT conflict budget exhausted"

(* Enumerate Boolean models according to the configured strategy, invoking
   [on_model]; the callback's verdict drives blocking. *)
let enumerate ?projection:projection_override ~registry ~options ~stats ~pre
    problem ~on_feasible =
  if pre.Preprocess.status = `Unsat then R_unsat
  else begin
  let tel = options.telemetry in
  let num_vars = Ab_problem.num_bool_vars problem in
  let clauses = pre.Preprocess.clauses in
  let strategy =
    match registry.Registry.boolean with
    | s :: _ -> s.Registry.bs_strategy
    | [] -> Registry.Lsat_incremental
  in
  let had_unknown = ref None in
  let unknown_count = ref 0 in
  let finished = ref false in
  let result = ref R_unsat in
  (* Blocking projection: the declared meaningful variables, defaulting to
     every variable.  Same projection => same arithmetic subsystem, so
     blocking the projection is sound and skips auxiliary-variable
     permutations of the same delta-valuation. *)
  let projection =
    match projection_override with
    | Some vs -> vs
    | None -> (
      match Ab_problem.projection problem with
      | Some vs -> vs
      | None -> List.init num_vars Fun.id)
  in
  let block_projection solver_model =
    (* Descending variable order (the projection is ascending): the
       solver watches the clause's first literals, so watches sit on the
       high (late-decided) variables and, with phase saving, consecutive
       models flip late variables first — keeping the early prefix of the
       arithmetic subsystem stable and the LP session's constraint delta
       small. *)
    List.rev_map
      (fun v -> if solver_model.(v) then Types.neg_of_var v else Types.pos v)
      projection
  in
  (* LP entry point for this whole enumeration: a persistent warm-started
     session when the first linear solver provides one (and the option is
     on), otherwise a from-scratch closure over [ls_solve]. *)
  let lsession =
    match registry.Registry.linear with
    | { Registry.ls_session = Some mk; _ } :: _ when options.use_incremental ->
      Some (mk ~budget:options.budget)
    | _ -> None
  in
  let lsolve =
    match (lsession, registry.Registry.linear) with
    | Some sess, _ -> Some (sess.Registry.lsess_solve)
    | None, (ls : Registry.linear_solver) :: _ ->
      Some
        (fun ~int_vars cons -> ls.Registry.ls_solve ~int_vars ~budget:options.budget cons)
    | None, [] -> None
  in
  (* Session counters are cumulative; fold them into telemetry and the
     run record exactly once, even when the enumeration exits by
     exception (budget trip, optimizer stop). *)
  let absorb_session () =
    match lsession with
    | None -> ()
    | Some sess ->
      let cs = sess.Registry.lsess_counters () in
      List.iter (fun (name, v) -> Telemetry.add tel name v) cs;
      let find n = Option.value ~default:0 (List.assoc_opt n cs) in
      stats.lp_cache_hits <- stats.lp_cache_hits + find "lp.inc.cache_hits";
      stats.lp_cache_misses <- stats.lp_cache_misses + find "lp.inc.cache_misses";
      stats.lp_cache_evictions <-
        stats.lp_cache_evictions + find "lp.inc.cache_evictions";
      stats.lp_asserted <- stats.lp_asserted + find "lp.inc.asserted";
      stats.lp_retracted <- stats.lp_retracted + find "lp.inc.retracted";
      stats.lp_reused <- stats.lp_reused + find "lp.inc.reused"
  in
  let block_clause ~reason block =
    stats.blocking_clauses <- stats.blocking_clauses + 1;
    Telemetry.add tel "engine.blocking_clauses" 1;
    Telemetry.event tel "blocking_clause"
      ~attrs:
        [
          ("size", Telemetry.Int (List.length block));
          ("reason", Telemetry.String reason);
        ]
  in
  let handle_model solver_model add_blocking =
    Faults.hit "engine.bool_model" options.budget;
    stats.bool_models <- stats.bool_models + 1;
    Telemetry.add tel "engine.bool_models" 1;
    if stats.bool_models > options.max_bool_models then begin
      had_unknown := Some "Boolean model budget exhausted";
      finished := true
    end
    else
      match
        Telemetry.span tel "bool_model"
          ~attrs:[ ("index", Telemetry.Int stats.bool_models) ]
          (fun () ->
            check_model ~registry ~options ~stats ~pre ~lsolve problem
              solver_model)
      with
      | M_sat sol -> (
        Telemetry.event tel "solution";
        match on_feasible sol with
        | `Stop ->
          result := R_sat sol;
          finished := true
        | `Continue ->
          result := R_sat sol;
          let block = block_projection solver_model in
          block_clause ~reason:"enumerate" block;
          if block = [] then finished := true else add_blocking block)
      | M_conflict [] ->
        (* Arithmetic conflict independent of the Boolean valuation. *)
        result := (match !result with R_sat _ as s -> s | _ -> R_unsat);
        finished := true
      | M_conflict block ->
        block_clause ~reason:"conflict" block;
        add_blocking block
      | M_unknown why ->
        had_unknown := Some why;
        incr unknown_count;
        Telemetry.add tel "engine.unknown_models" 1;
        if !unknown_count > options.max_unknown_models then finished := true
        else begin
          (* Block this delta-valuation so the search can look for a
             decidable one; the result can no longer be a definitive
             UNSAT. *)
          let block = block_projection solver_model in
          block_clause ~reason:"unknown" block;
          if block = [] then finished := true else add_blocking block
        end
  in
  Fun.protect ~finally:absorb_session (fun () ->
  match strategy with
  | Registry.Lsat_incremental ->
    let solver = Cdcl.create () in
    Cdcl.set_default_phase solver options.default_phase;
    Cdcl.ensure_vars solver num_vars;
    List.iter (Cdcl.add_clause solver) clauses;
    let snap = Types.mk_stats () in
    let sat_solve () =
      Telemetry.span tel "sat_search" (fun () ->
          let out =
            Cdcl.solve ~max_conflicts:options.sat_max_conflicts
              ~budget:options.budget solver
          in
          absorb_sat_stats tel stats snap (Cdcl.stats solver);
          out)
    in
    let rec loop () =
      if not !finished then
        match sat_solve () with
        | Types.Unsat -> ()
        | Types.Unknown -> had_unknown := Some (sat_unknown_reason options)
        | Types.Sat ->
          let model = Cdcl.model solver in
          Preprocess.restore_model pre model;
          handle_model model (fun block -> Cdcl.add_clause solver block);
          loop ()
    in
    loop ()
  | Registry.Chaff_restarting ->
    let blocked = ref [] in
    let rec loop () =
      if not !finished then begin
        (* External restart: rebuild the entire solver, as the paper
           describes for black-box single-solution solvers. *)
        let solver = Cdcl.create () in
        Cdcl.set_default_phase solver options.default_phase;
        Cdcl.ensure_vars solver num_vars;
        List.iter (Cdcl.add_clause solver) clauses;
        List.iter (Cdcl.add_clause solver) !blocked;
        let out =
          Telemetry.span tel "sat_search" (fun () ->
              let out =
                Cdcl.solve ~max_conflicts:options.sat_max_conflicts
                  ~budget:options.budget solver
              in
              absorb_sat_stats tel stats (Types.mk_stats ()) (Cdcl.stats solver);
              out)
        in
        match out with
        | Types.Unsat -> ()
        | Types.Unknown -> had_unknown := Some (sat_unknown_reason options)
        | Types.Sat ->
          let model = Cdcl.model solver in
          Preprocess.restore_model pre model;
          handle_model model (fun block -> blocked := block :: !blocked);
          loop ()
      end
    in
    loop ());
  match (!result, !had_unknown) with
  | R_sat _, _ -> !result
  | _, Some why -> R_unknown why
  | r, None -> r
  end

(* Run (or skip) presolve and mirror its headline counters into the
   run_stats record. [protect_also] guards pure-literal elimination when
   the caller enumerates models over a custom projection. *)
let prepare ~options ?(protect_also = []) ~stats problem =
  let tel = options.telemetry in
  let pre =
    Telemetry.span tel "presolve" (fun () ->
        if options.use_presolve then
          Preprocess.run ~protect_also ~telemetry:tel ~budget:options.budget
            problem
        else Preprocess.identity problem)
  in
  stats.presolve_fixed_literals <- pre.Preprocess.stats.Preprocess.fixed_literals;
  stats.presolve_removed_clauses <-
    pre.Preprocess.stats.Preprocess.removed_clauses;
  stats.presolve_tightened_bounds <-
    pre.Preprocess.stats.Preprocess.tightened_bounds;
  stats.presolve_seconds <- pre.Preprocess.stats.Preprocess.wall_seconds;
  pre

let problem_attrs problem =
  let s = Ab_problem.stats problem in
  [
    ("clauses", Telemetry.Int s.Ab_problem.n_clauses);
    ("bool_vars", Telemetry.Int (Ab_problem.num_bool_vars problem));
    ("arith_vars", Telemetry.Int (Ab_problem.num_arith_vars problem));
    ("linear", Telemetry.Int s.Ab_problem.n_linear);
    ("nonlinear", Telemetry.Int s.Ab_problem.n_nonlinear);
  ]

(* The engine's last line of defense: nothing — not [Budget.Exhausted],
   not an injected fault, not a stray exception from a plugged-in solver —
   crosses the public entry points. Typed reasons become [R_unknown] and
   are mirrored into [run_stats.budget_exhausted] from the budget's sticky
   trip, which also covers unknowns produced deep inside the loop. *)
let guarded_result ~options ~stats f =
  let result =
    match Budget.guard options.budget f with
    | Ok r -> r
    | Error e -> R_unknown (Err.to_string e)
  in
  stats.budget_exhausted <- Budget.tripped options.budget;
  result

let solve ?(registry = Registry.default) ?(options = default_options) problem =
  let tel = options.telemetry in
  let stats = mk_stats () in
  let t0 = Telemetry.Clock.now () in
  let p0 = Simplex.total_pivots () in
  let a0 = alloc_snapshot () in
  let result =
    Telemetry.span tel "solve" ~attrs:(problem_attrs problem) (fun () ->
        guarded_result ~options ~stats (fun () ->
            Faults.hit "engine.solve" options.budget;
            let pre = prepare ~options ~stats problem in
            enumerate ~registry ~options ~stats ~pre problem
              ~on_feasible:(fun _ -> `Stop)))
  in
  stats.simplex_pivots <- Simplex.total_pivots () - p0;
  stats.wall_seconds <- Telemetry.Clock.now () -. t0;
  absorb_alloc tel stats a0;
  (result, stats)

(* ------------------------------------------------------------------ *)
(* Portfolio mode: race whole solvers on separate domains.             *)
(* ------------------------------------------------------------------ *)

(* A competitor is any complete decision procedure for AB-problems.  The
   closures live here (rather than a concrete engine-vs-baselines list)
   because the baselines library depends on this one; the concrete wiring
   is in [Absolver_baselines.Portfolio]. *)
type competitor = {
  cp_name : string;
  cp_solve :
    budget:Budget.t -> telemetry:Telemetry.t -> Ab_problem.t -> result;
}

let engine_competitor ?(registry = Registry.default)
    ?(options = default_options) ?(name = "absolver") () =
  {
    cp_name = name;
    cp_solve =
      (fun ~budget ~telemetry problem ->
        let options = { options with budget; telemetry } in
        fst (solve ~registry ~options problem));
  }

let solve_portfolio ?(options = default_options) ~competitors problem =
  let tel = options.telemetry in
  let decisive = function R_sat _ | R_unsat -> true | R_unknown _ -> false in
  Telemetry.span tel "portfolio"
    ~attrs:[ ("competitors", Telemetry.Int (List.length competitors)) ]
    (fun () ->
      let entrants =
        List.map
          (fun c ->
            ( c.cp_name,
              fun ~budget ~telemetry -> c.cp_solve ~budget ~telemetry problem
            ))
          competitors
      in
      let report =
        Pool.race ~budget:options.budget ~telemetry:tel ~decisive entrants
      in
      match report.Pool.winner with
      | Some (name, r) ->
        Telemetry.event tel "portfolio.winner"
          ~attrs:[ ("name", Telemetry.String name) ];
        (r, Some name)
      | None ->
        (* Nobody decided: keep the first competitor's verdict (the main
           engine by convention), which preserves its unknown reason. *)
        let r =
          match report.Pool.results with
          | (_, Ok r) :: _ -> r
          | (_, Error e) :: _ -> R_unknown (Printexc.to_string e)
          | [] -> R_unknown "empty portfolio"
        in
        (r, None))

let all_models ?projection ?(registry = Registry.default)
    ?(options = default_options) ?(limit = max_int) problem =
  let tel = options.telemetry in
  let stats = mk_stats () in
  let t0 = Telemetry.Clock.now () in
  let p0 = Simplex.total_pivots () in
  let a0 = alloc_snapshot () in
  let acc = ref [] in
  let n = ref 0 in
  let result =
    Telemetry.span tel "all_models" ~attrs:(problem_attrs problem) (fun () ->
        guarded_result ~options ~stats (fun () ->
            let pre =
              prepare ~options
                ?protect_also:
                  (match projection with Some vs -> Some vs | None -> None)
                ~stats problem
            in
            enumerate ?projection ~registry ~options ~stats ~pre problem
              ~on_feasible:(fun sol ->
                acc := sol :: !acc;
                incr n;
                if !n >= limit then `Stop else `Continue)))
  in
  stats.simplex_pivots <- Simplex.total_pivots () - p0;
  stats.wall_seconds <- Telemetry.Clock.now () -. t0;
  absorb_alloc tel stats a0;
  match result with
  (* Anytime contract: when the budget is the reason the enumeration is
     incomplete, return the models found so far with the typed reason in
     [stats.budget_exhausted] instead of discarding them. *)
  | R_unknown _ when stats.budget_exhausted <> None -> Ok (List.rev !acc, stats)
  | R_unknown why when !acc = [] -> Error why
  | R_unknown why when !n < limit -> Error why
  | R_sat _ | R_unsat | R_unknown _ -> Ok (List.rev !acc, stats)

let count_models ?registry ?options problem =
  match all_models ?registry ?options problem with
  | Ok (models, stats) -> Ok (List.length models, stats)
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Optimization modulo the Boolean structure (linear problems).        *)

type opt_outcome =
  | Opt_best of Q.t * Solution.t
  | Opt_incumbent of Q.t * Solution.t
  | Opt_unbounded
  | Opt_unsat
  | Opt_unknown of string

exception Opt_stop of opt_outcome

let optimize ?(registry = Registry.default) ?(options = default_options)
    ?(limit = 10_000) ~objective direction problem =
  let nonlinear =
    List.filter
      (fun (d : Ab_problem.def) -> not (Expr.is_linear d.rel.Expr.expr))
      (Ab_problem.defs problem)
  in
  if nonlinear <> [] then
    Opt_unknown
      (Printf.sprintf "%d nonlinear definition(s): optimization is linear-only"
         (List.length nonlinear))
  else begin
    let stats = mk_stats () in
    let best = ref None in
    let nvars = Ab_problem.num_arith_vars problem in
    Telemetry.span options.telemetry "optimize" ~attrs:(problem_attrs problem)
      (fun () ->
    let a0 = alloc_snapshot () in
    let hit_limit = ref false in
    let guarded =
      Budget.guard options.budget (fun () ->
    let pre = prepare ~options ~stats problem in
    let bound_cons =
      List.filter_map
        (fun (r : Expr.rel) ->
          Option.map
            (fun le -> { Linexpr.expr = le; op = r.Expr.op; tag = r.Expr.tag })
            (Expr.linearize r.Expr.expr))
        pre.Preprocess.bound_rels
    in
    (* With [use_incremental], one simplex lives across every
       delta-valuation: the problem bounds are asserted permanently (no
       open frame), each valuation's relations go into a checkpointed
       frame that is rolled back afterwards, and every [maximize] warm
       starts from the previous optimum's basis. *)
    let persistent =
      if options.use_incremental then begin
        let sx = Absolver_lp.Simplex.create ~budget:options.budget () in
        Absolver_lp.Simplex.ensure_vars sx nvars;
        Absolver_lp.Simplex.set_float_filter sx true;
        List.iter
          (fun (c : Linexpr.cons) ->
            ignore (Absolver_lp.Simplex.assert_cons sx c))
          bound_cons;
        Some sx
      end
      else None
    in
    let optimize_valuation (sol : Solution.t) =
      (* Build (or reuse) this delta-valuation's linear system and
         optimize it. The budgeted tableau may raise [Exhausted] out of
         [maximize]; the surrounding [Budget.guard] is the boundary that
         catches it (the [finally] first restores the session). *)
      let simplex, restore =
        match persistent with
        | Some sx ->
          let cp = Absolver_lp.Simplex.checkpoint sx in
          Absolver_lp.Simplex.push sx;
          (sx, fun () -> Absolver_lp.Simplex.rollback sx cp)
        | None ->
          let sx = Absolver_lp.Simplex.create ~budget:options.budget () in
          Absolver_lp.Simplex.ensure_vars sx nvars;
          List.iter
            (fun (c : Linexpr.cons) ->
              ignore (Absolver_lp.Simplex.assert_cons sx c))
            bound_cons;
          (sx, Fun.id)
      in
      Fun.protect ~finally:restore @@ fun () ->
      let add (r : Expr.rel) =
        match Expr.linearize r.Expr.expr with
        | None -> ()
        | Some le ->
          ignore
            (Absolver_lp.Simplex.assert_cons simplex
               { Linexpr.expr = le; op = r.Expr.op; tag = r.Expr.tag })
      in
      List.iter
        (fun v ->
          let rels =
            List.map (fun (d : Ab_problem.def) -> d.rel) (Ab_problem.find_defs problem v)
          in
          if sol.Solution.bools.(v) then List.iter add rels
          else
            (* Disjunctive negations (negated equalities / conjunctions):
               optimize within the branch the witness satisfies. *)
            let fenv av = Solution.float_env sol ~default:0.0 av in
            List.iter
              (fun r ->
                match Expr.negate_rel r with
                | [ nr ] -> add nr
                | nrs -> (
                  match
                    List.find_opt (fun nr -> Expr.holds_float ~tol:1e-9 fenv nr) nrs
                  with
                  | Some nr -> add nr
                  | None -> ( match nrs with nr :: _ -> add nr | [] -> ())))
              rels)
        (Ab_problem.defined_vars problem);
      let obj =
        match direction with
        | `Maximize -> objective
        | `Minimize -> Linexpr.neg objective
      in
      match Absolver_lp.Simplex.maximize simplex obj with
      | Absolver_lp.Simplex.O_infeasible _ -> ()
      | Absolver_lp.Simplex.O_unbounded -> raise (Opt_stop Opt_unbounded)
      | Absolver_lp.Simplex.O_optimal (value, model) ->
        let value = Absolver_numeric.Delta_rational.r value in
        let value = match direction with `Maximize -> value | `Minimize -> Q.neg value in
        let better =
          match !best with
          | None -> true
          | Some (v, _) -> (
            match direction with
            | `Maximize -> Q.gt value v
            | `Minimize -> Q.lt value v)
        in
        if better then begin
          let arith = Array.make nvars None in
          List.iter
            (fun (v, q) -> if v < nvars then arith.(v) <- Some (Solution.Exact q))
            model;
          best :=
            Some
              ( value,
                Solution.make ~bools:(Array.copy sol.Solution.bools) ~arith
                  ~certified:true )
        end
    in
    try
      `Res
        (enumerate ~registry ~options ~stats ~pre problem
           ~on_feasible:(fun sol ->
             optimize_valuation sol;
             if stats.bool_models >= limit then begin
               hit_limit := true;
               `Stop
             end
             else `Continue))
    with Opt_stop o -> `Stopped o)
    in
    stats.budget_exhausted <- Budget.tripped options.budget;
    absorb_alloc options.telemetry stats a0;
    match guarded with
    | Ok (`Stopped o) -> o
    | Error e -> (
      (* Budget exhausted (or a stray exception was contained): degrade to
         the incumbent rather than losing it. *)
      match !best with
      | Some (v, sol) -> Opt_incumbent (v, sol)
      | None -> Opt_unknown (Err.to_string e))
    | Ok (`Res r) -> (
      (* [Opt_best] requires a complete enumeration: neither the
         delta-valuation limit nor an undecided model may have cut it
         short — otherwise a better vertex could exist in the unexplored
         part and claiming optimality would overclaim. *)
      let complete =
        (not !hit_limit) && match r with R_unknown _ -> false | _ -> true
      in
      match (r, !best) with
      | R_unknown why, None -> Opt_unknown why
      | _, None -> Opt_unsat
      | _, Some (v, sol) ->
        if complete then Opt_best (v, sol) else Opt_incumbent (v, sol)))
  end
