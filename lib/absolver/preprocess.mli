(** Cross-domain presolve driver: composes SAT-level simplification
    ({!Absolver_preprocess.Sat_simplify}), LP presolve
    ({!Absolver_preprocess.Lp_presolve}) and interval constraint
    propagation ({!Absolver_preprocess.Icp}) to a bounded fixpoint over an
    AB-problem before the engine's control loop runs.

    Information flows in both directions: Boolean root facts select the
    arithmetic constraints that hold in {e every} model, those tighten the
    exact rational bounds and the interval box, and a definition whose
    constraint becomes provably redundant (or infeasible) on the tightened
    box feeds a unit clause on its defining literal back to the Boolean
    side — which may fix further literals, and so on.

    Everything the driver derives is implied by the problem, except the
    pure-literal eliminations, which are confined to variables that carry
    no definition and are outside the enumeration projection; their
    satisfying polarities are replayed by {!restore_model}. Hence solve /
    all-models / optimize results are preserved exactly. *)

module Q = Absolver_numeric.Rational
module Types = Absolver_sat.Types
module Expr = Absolver_nlp.Expr
module Box = Absolver_nlp.Box

type stats = {
  mutable fixed_literals : int;  (** Boolean variables fixed at root level. *)
  mutable pure_literals : int;  (** Variables eliminated as pure/free. *)
  mutable removed_clauses : int;  (** Net CNF shrinkage in clauses. *)
  mutable strengthened_literals : int;
      (** Literals dropped by self-subsuming resolution. *)
  mutable failed_literals : int;  (** Units found by probing. *)
  mutable tightened_bounds : int;
      (** Bound tightenings (LP presolve + interval contraction). *)
  mutable unit_defs : int;
      (** Unit clauses fed back from arithmetic redundancy/infeasibility of
          defined constraints. *)
  mutable rounds : int;  (** Cross-domain fixpoint rounds executed. *)
  mutable wall_seconds : float;
}

val pp_stats : Format.formatter -> stats -> unit

type t = {
  status : [ `Open | `Unsat ];
      (** [`Unsat]: presolve refuted the problem outright. *)
  clauses : Types.lit list list;
      (** Simplified CNF over the original variable numbering (unit
          clauses for fixed variables included). *)
  fixed : (Types.var * bool) list;  (** Root-implied assignments. *)
  pure : (Types.var * bool) list;
      (** Eliminated variables and the polarity {!restore_model} replays. *)
  box : Box.t;  (** Tightened global interval box (per arithmetic var). *)
  bound_rels : Expr.rel list;
      (** Tightened unconditional bounds as relations (tag
          {!Ab_problem.bounds_tag}); replaces
          {!Ab_problem.bound_rels} downstream. *)
  stats : stats;
}

val run :
  ?max_rounds:int ->
  ?probe_limit:int ->
  ?protect_also:Types.var list ->
  ?telemetry:Absolver_telemetry.Telemetry.t ->
  ?budget:Absolver_resource.Budget.t ->
  Ab_problem.t ->
  t
(** Presolve to a fixpoint bounded by [max_rounds] (default 3) cross-domain
    rounds. [protect_also] adds variables to the pure-literal protection
    set (the engine passes enumeration-projection overrides here).
    [telemetry] (default disabled) records one [presolve.round] span per
    fixpoint round with [presolve.sat_simplify] / [presolve.lp] /
    [presolve.icp] / [presolve.feedback] children, and mirrors the
    headline counters as [presolve.*]. [budget] is threaded into every
    pass; exhaustion stops presolve early with whatever sound
    simplification was completed (never an exception — the typed reason
    stays sticky in the budget). *)

val identity : Ab_problem.t -> t
(** The no-op presolve: original clauses, bounds and box, zero stats —
    exact old engine behaviour for ablation. *)

val restore_model : t -> bool array -> unit
(** Patch a model of [clauses] into a model of the original problem by
    replaying the eliminated pure literals. *)

val initial_box : Ab_problem.t -> Box.t
(** The box induced by the problem's unconditional bounds alone. *)
