module Q = Absolver_numeric.Rational
module Types = Absolver_sat.Types
module Expr = Absolver_nlp.Expr
module Linexpr = Absolver_lp.Linexpr
module Simplex = Absolver_lp.Simplex
module Incremental = Absolver_lp.Incremental
module Branch_prune = Absolver_nlp.Branch_prune
module Budget = Absolver_resource.Budget
module Err = Absolver_resource.Absolver_error

type bool_strategy = Lsat_incremental | Chaff_restarting

type bool_solver = { bs_name : string; bs_strategy : bool_strategy }

type linear_verdict =
  | L_sat of (int * Q.t) list
  | L_unsat of int list
  | L_unknown of Err.t

type linear_session = {
  lsess_solve : int_vars:int list -> Linexpr.cons list -> linear_verdict;
  lsess_counters : unit -> (string * int) list;
}

type linear_solver = {
  ls_name : string;
  ls_solve :
    int_vars:int list -> budget:Budget.t -> Linexpr.cons list -> linear_verdict;
  ls_session : (budget:Budget.t -> linear_session) option;
}

type nonlinear_verdict =
  | N_sat of float array
  | N_approx of float array
  | N_unsat
  | N_unknown

type nonlinear_solver = {
  ns_name : string;
  ns_solve :
    relax:bool ->
    budget:Budget.t ->
    telemetry:Absolver_telemetry.Telemetry.t ->
    nvars:int ->
    box:Absolver_nlp.Box.t ->
    Expr.rel list ->
    nonlinear_verdict * Branch_prune.stats;
}

type t = {
  boolean : bool_solver list;
  linear : linear_solver list;
  nonlinear : nonlinear_solver list;
}

let cdcl_solver = { bs_name = "cdcl (zChaff-like)"; bs_strategy = Chaff_restarting }
let lsat_solver = { bs_name = "lsat (all-solutions)"; bs_strategy = Lsat_incremental }

let verdict_of_simplex = function
  | Simplex.Sat model -> L_sat model
  | Simplex.Unsat tags -> L_unsat tags
  | Simplex.Unknown e -> L_unknown e

let simplex_session ?cache_capacity ?float_filter () ~budget =
  let session = Incremental.create ~budget ?cache_capacity ?float_filter () in
  {
    lsess_solve =
      (fun ~int_vars constraints ->
        verdict_of_simplex (Incremental.solve session ~int_vars constraints));
    lsess_counters = (fun () -> Incremental.counters session);
  }

let simplex_solver_custom ?cache_capacity ?float_filter () =
  {
    ls_name = "simplex (COIN-like)";
    ls_solve =
      (fun ~int_vars ~budget constraints ->
        verdict_of_simplex (Simplex.solve_system ~int_vars ~budget constraints));
    ls_session = Some (simplex_session ?cache_capacity ?float_filter ());
  }

let simplex_solver = simplex_solver_custom ()

(* A linear solver whose warm session outlives any single enumeration:
   every [ls_session] acquisition returns the SAME underlying
   [Incremental] session (created lazily, re-governed by the acquiring
   enumeration's budget), so consecutive solve requests from one server
   client reuse the asserted constraints, the tableau basis and the
   verdict cache across requests.  Two invariants make this safe:

   - counters are delta'd per acquisition, so the engine's per-run
     statistics absorption sees only the work of its own enumeration,
     never the session's cumulative history;
   - the session is an unshared value: each call to
     [persistent_simplex] builds an independent one, which is what makes
     it per-client — the server creates one per connection and calls the
     returned [dispose] at disconnect, so no warm tableau ever leaks
     between independent clients. *)
let persistent_simplex ?cache_capacity ?float_filter () =
  let session = ref None in
  let acquire () =
    match !session with
    | Some s -> s
    | None ->
      let s = Incremental.create ?cache_capacity ?float_filter () in
      session := Some s;
      s
  in
  let mk ~budget =
    let s = acquire () in
    Incremental.set_budget s budget;
    let base = Incremental.counters s in
    {
      lsess_solve =
        (fun ~int_vars constraints ->
          verdict_of_simplex (Incremental.solve s ~int_vars constraints));
      lsess_counters =
        (fun () ->
          List.map
            (fun (k, v) ->
              (k, v - Option.value ~default:0 (List.assoc_opt k base)))
            (Incremental.counters s));
    }
  in
  let solver =
    {
      ls_name = "simplex (COIN-like, persistent session)";
      ls_solve =
        (fun ~int_vars ~budget constraints ->
          verdict_of_simplex (Simplex.solve_system ~int_vars ~budget constraints));
      ls_session = Some mk;
    }
  in
  (solver, fun () -> session := None)

let branch_prune_solver ?(config = Branch_prune.default_config) ?(jobs = 1) () =
  {
    ns_name =
      (if jobs <= 1 then "branch-and-prune (IPOPT-like)"
       else Printf.sprintf "branch-and-prune (IPOPT-like, %d jobs)" jobs);
    ns_solve =
      (fun ~relax ~budget ~telemetry ~nvars ~box rels ->
        let oracle =
          if relax && config.Branch_prune.use_relax then
            Some (Absolver_relax.Relax.oracle ~telemetry ~config ~nvars rels)
          else None
        in
        let verdict, stats =
          Branch_prune.solve ?relax:oracle ~config ~budget ~telemetry ~jobs
            ~nvars ~box rels
        in
        let v =
          match verdict with
          | Branch_prune.Sat p -> N_sat p
          | Branch_prune.Approx_sat p -> N_approx p
          | Branch_prune.Unsat -> N_unsat
          | Branch_prune.Unknown -> N_unknown
        in
        (v, stats));
  }

let default =
  {
    boolean = [ lsat_solver ];
    linear = [ simplex_solver ];
    nonlinear = [ branch_prune_solver () ];
  }

let with_chaff = { default with boolean = [ cdcl_solver ] }
