open Types
module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable removed : bool;
}

let dummy_clause = { lits = [||]; activity = 0.0; learnt = false; removed = false }

type theory = {
  t_on_assign : lit -> unit;
  t_on_backtrack : int -> unit;
  t_check : final:bool -> lit list option;
}

type t = {
  mutable nvars : int;
  (* Per-variable state, indexed by var. *)
  mutable assign : int array; (* -1 undef, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : clause array;
  mutable activity : float array;
  mutable saved_phase : Bool.t array;
  mutable seen : Bool.t array;
  mutable heap_pos : int array; (* -1 when not in heap *)
  (* Watches, indexed by literal: clauses in which this literal is
     watched, each entry paired with a blocking literal whose truth
     satisfies the clause — checking it avoids dereferencing the clause
     at all on most visits. Clause and blocker live in one flat merged
     structure ({!Watches}); removed clauses are swept out eagerly at
     reduction time, so propagation never sees a dead entry. *)
  mutable watches : clause Watches.t array;
  (* Trail. *)
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* Clause database. *)
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  (* VSIDS. *)
  heap : int Vec.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable default_phase : bool;
  mutable ok : bool;
  stats : stats;
  theory : theory option;
  mutable max_learnts : float;
  mutable learnt_hook : (int list -> unit) option;
}

let create ?theory () =
  {
    nvars = 0;
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 dummy_clause;
    activity = Array.make 16 0.0;
    saved_phase = Array.make 16 false;
    seen = Array.make 16 false;
    heap_pos = Array.make 16 (-1);
    watches = Array.init 32 (fun _ -> Watches.create ~dummy:dummy_clause ());
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    heap = Vec.create ~dummy:0 ();
    var_inc = 1.0;
    cla_inc = 1.0;
    default_phase = false;
    ok = true;
    stats = mk_stats ();
    theory;
    max_learnts = 0.0;
    learnt_hook = None;
  }

let num_vars s = s.nvars
let set_learnt_hook s f = s.learnt_hook <- Some f
let emit_learnt s lits = match s.learnt_hook with Some f -> f lits | None -> ()
let is_unsat s = not s.ok
let stats s = s.stats
let set_default_phase s b = s.default_phase <- b

(* ------------------------------------------------------------------ *)
(* Variable order heap (max-heap on activity).                         *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = Vec.get s.heap i and b = Vec.get s.heap j in
  Vec.set s.heap i b;
  Vec.set s.heap j a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_lt s (Vec.get s.heap i) (Vec.get s.heap parent) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let n = Vec.size s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_lt s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_lt s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Vec.push s.heap v;
    s.heap_pos.(v) <- Vec.size s.heap - 1;
    heap_up s (Vec.size s.heap - 1)
  end

let heap_remove_min s =
  let top = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  s.heap_pos.(top) <- -1;
  if Vec.size s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  top

let heap_update s v =
  let p = s.heap_pos.(v) in
  if p >= 0 then begin
    heap_up s p;
    heap_down s (s.heap_pos.(v))
  end

(* ------------------------------------------------------------------ *)
(* Variable management.                                                *)

let grow_to s n =
  let old_cap = Array.length s.assign in
  if n > old_cap then begin
    let cap = max n (2 * old_cap) in
    let extend a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 old_cap;
      b
    in
    s.assign <- extend s.assign (-1);
    s.level <- extend s.level 0;
    s.reason <- extend s.reason dummy_clause;
    s.activity <- extend s.activity 0.0;
    s.saved_phase <- extend s.saved_phase s.default_phase;
    s.seen <- extend s.seen false;
    s.heap_pos <- extend s.heap_pos (-1);
    let w = Array.init (2 * cap) (fun _ -> Watches.create ~dummy:dummy_clause ()) in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w
  end

let new_var s =
  let v = s.nvars in
  grow_to s (v + 1);
  s.nvars <- v + 1;
  s.saved_phase.(v) <- s.default_phase;
  heap_insert s v;
  v

let ensure_vars s n = while s.nvars < n do ignore (new_var s) done

let lit_value s l =
  let a = s.assign.(l lsr 1) in
  if a < 0 then V_undef
  else if a lxor (l land 1) = 1 then V_true
  else V_false

let value s v =
  let a = s.assign.(v) in
  if a < 0 then V_undef else if a = 1 then V_true else V_false

let model s = Array.init s.nvars (fun v -> s.assign.(v) = 1)
let decision_level s = Vec.size s.trail_lim

(* ------------------------------------------------------------------ *)
(* Activity bumping.                                                   *)

let var_decay = 1.0 /. 0.95
let cla_decay = 1.0 /. 0.999

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_update s v

let cla_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

(* ------------------------------------------------------------------ *)
(* Trail operations.                                                   *)

let enqueue s l reason =
  let v = l lsr 1 in
  assert (s.assign.(v) < 0);
  s.assign.(v) <- (l land 1) lxor 1;
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l;
  (match s.theory with Some th -> th.t_on_assign l | None -> ())

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = l lsr 1 in
      s.saved_phase.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- -1;
      s.reason.(v) <- dummy_clause;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound;
    match s.theory with Some th -> th.t_on_backtrack bound | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Clause attachment and propagation.                                  *)

let attach s c =
  assert (Array.length c.lits >= 2);
  Watches.push s.watches.(c.lits.(0)) c c.lits.(1);
  Watches.push s.watches.(c.lits.(1)) c c.lits.(0)

exception Conflict of clause

let propagate_lit s p =
  (* p just became true; visit clauses watching ~p. Every entry is live:
     reduction sweeps removed clauses out of the lists eagerly, so there
     is no dead-entry check on this path. *)
  let fl = p lxor 1 in
  let ws = s.watches.(fl) in
  let i = ref 0 in
  while !i < Watches.size ws do
    (* Blocking literal: if it is already true the clause is satisfied
       and need not be dereferenced at all. *)
    if lit_value s (Watches.blocker ws !i) = V_true then begin
      s.stats.blocked_visits <- s.stats.blocked_visits + 1;
      incr i
    end
    else begin
      let c = Watches.clause ws !i in
      (* Normalize: the false literal goes to position 1. *)
      if c.lits.(0) = fl then begin
        c.lits.(0) <- c.lits.(1);
        c.lits.(1) <- fl
      end;
      if lit_value s c.lits.(0) = V_true then begin
        Watches.set_blocker ws !i c.lits.(0);
        incr i
      end
      else begin
        (* Look for a new literal to watch. *)
        let n = Array.length c.lits in
        let rec find j = if j >= n then -1 else if lit_value s c.lits.(j) <> V_false then j else find (j + 1) in
        let j = find 2 in
        if j >= 0 then begin
          c.lits.(1) <- c.lits.(j);
          c.lits.(j) <- fl;
          Watches.push s.watches.(c.lits.(1)) c c.lits.(0);
          Watches.swap_remove ws !i
        end
        else if lit_value s c.lits.(0) = V_false then raise (Conflict c)
        else begin
          s.stats.propagations <- s.stats.propagations + 1;
          enqueue s c.lits.(0) c;
          Watches.set_blocker ws !i c.lits.(0);
          incr i
        end
      end
    end
  done

let propagate s =
  match
    while s.qhead < Vec.size s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      propagate_lit s p
    done
  with
  | () -> None
  | exception Conflict c -> Some c

(* ------------------------------------------------------------------ *)
(* Clause addition (level 0).                                          *)

let add_clause s lits =
  (* Clauses are added at level 0; any in-progress model is abandoned. *)
  cancel_until s 0;
  if s.ok then begin
    List.iter (fun l -> ensure_vars s ((l lsr 1) + 1)) lits;
    (* Sort, dedup, drop tautologies and false literals. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      let rec adjacent = function
        | a :: (b :: _ as rest) -> (a lxor b = 1 && a lsr 1 = b lsr 1) || adjacent rest
        | _ -> false
      in
      adjacent lits
    in
    if not tautology then begin
      let lits =
        List.filter
          (fun l ->
            match lit_value s l with
            | V_false -> s.level.(l lsr 1) > 0
            | V_true | V_undef -> true)
          lits
      in
      if List.exists (fun l -> lit_value s l = V_true && s.level.(l lsr 1) = 0) lits
      then () (* satisfied at level 0 *)
      else
        match lits with
        | [] ->
          s.ok <- false;
          emit_learnt s []
        | [ l ] -> (
          match lit_value s l with
          | V_true -> ()
          | V_false ->
            s.ok <- false;
            emit_learnt s []
          | V_undef -> (
            enqueue s l dummy_clause;
            match propagate s with
            | None -> ()
            | Some _ ->
              s.ok <- false;
              emit_learnt s []))
        | _ ->
          (* Watch the highest-variable literals (the sort above is
             ascending). Blocking clauses from model enumeration are
             emitted in descending variable order and consecutive models
             usually differ only in a low-variable suffix, so high-end
             watches stay untouched across most re-decisions. *)
          let c =
            {
              lits = Array.of_list (List.rev lits);
              activity = 0.0;
              learnt = false;
              removed = false;
            }
          in
          Vec.push s.clauses c;
          attach s c
    end
  end

(* ------------------------------------------------------------------ *)
(* Conflict analysis (first UIP).                                      *)

let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (Vec.size s.trail - 1) in
  let cur_level = decision_level s in
  let c = ref confl in
  let continue_loop = ref true in
  while !continue_loop do
    if !c.learnt then cla_bump s !c;
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = q lsr 1 in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            var_bump s v;
            if s.level.(v) >= cur_level then incr counter
            else learnt := q :: !learnt
          end
        end)
      !c.lits;
    (* Select next literal on the trail to resolve. *)
    let rec next i = if s.seen.(Vec.get s.trail i lsr 1) then i else next (i - 1) in
    index := next !index;
    p := Vec.get s.trail !index;
    decr index;
    s.seen.(!p lsr 1) <- false;
    decr counter;
    if !counter = 0 then continue_loop := false else c := s.reason.(!p lsr 1)
  done;
  let uip = !p lxor 1 in
  (* Cheap clause minimization: a literal is redundant if the reason of its
     variable exists and all other literals of that reason are marked. *)
  List.iter (fun q -> s.seen.(q lsr 1) <- true) !learnt;
  let redundant q =
    let r = s.reason.(q lsr 1) in
    r != dummy_clause
    && Array.length r.lits > 0
    && Array.for_all
         (fun l -> l lsr 1 = q lsr 1 || s.seen.(l lsr 1) || s.level.(l lsr 1) = 0)
         r.lits
  in
  let minimized = List.filter (fun q -> not (redundant q)) !learnt in
  List.iter (fun q -> s.seen.(q lsr 1) <- false) !learnt;
  let final = uip :: minimized in
  (* Backjump level: highest level among non-UIP literals. *)
  let back_level =
    List.fold_left (fun acc q -> max acc s.level.(q lsr 1)) 0 minimized
  in
  (final, back_level)

let record_learnt s lits =
  s.stats.learnt_literals <- s.stats.learnt_literals + List.length lits;
  emit_learnt s lits;
  match lits with
  | [] -> s.ok <- false
  | [ l ] -> enqueue s l dummy_clause
  | first :: _ ->
    let c =
      {
        lits = Array.of_list lits;
        activity = 0.0;
        learnt = true;
        removed = false;
      }
    in
    (* Watch the UIP and a literal from the backjump level so the clause
       stays well-watched after the jump: position 1 must hold a literal
       with the highest remaining level. *)
    let arr = c.lits in
    let best = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if s.level.(arr.(i) lsr 1) > s.level.(arr.(!best) lsr 1) then best := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    Vec.push s.learnts c;
    attach s c;
    cla_bump s c;
    enqueue s first c

(* ------------------------------------------------------------------ *)
(* Learnt clause DB reduction.                                         *)

let locked s c = Array.length c.lits > 0 && s.reason.(c.lits.(0) lsr 1) == c

(* Eager detach: drop the clause from both watcher lists right away. The
   two watched literals are always [lits.(0)] and [lits.(1)] (attach
   establishes this and propagation preserves it), so the sweep is two
   linear scans — paid once per reduction instead of leaving dead
   entries for every future propagation over those lists to skip. *)
let detach s c =
  c.removed <- true;
  Watches.remove_clause s.watches.(c.lits.(0)) c;
  Watches.remove_clause s.watches.(c.lits.(1)) c

let reduce_db s =
  s.stats.reductions <- s.stats.reductions + 1;
  Vec.sort (fun (a : clause) (b : clause) -> compare a.activity b.activity) s.learnts;
  let n = Vec.size s.learnts in
  let keep = Vec.create ~dummy:dummy_clause () in
  let limit = n / 2 in
  for i = 0 to n - 1 do
    let c = Vec.get s.learnts i in
    if i < limit && (not (locked s c)) && Array.length c.lits > 2
    then detach s c
    else Vec.push keep c
  done;
  Vec.clear s.learnts;
  (* The database just halved: return over-grown capacity before the
     kept clauses are pushed back, and sweep watcher lists the detach
     loop emptied out. *)
  Vec.compact s.learnts;
  Vec.iter (fun c -> Vec.push s.learnts c) keep;
  for l = 0 to (2 * s.nvars) - 1 do
    Watches.compact s.watches.(l)
  done

(* ------------------------------------------------------------------ *)
(* Search.                                                             *)

(* Luby restart sequence 1,1,2,1,1,2,4,... scaled by [y]. *)
let luby y x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y *. (2.0 ** float_of_int !seq)

let pick_branch_var s =
  let rec loop () =
    if Vec.is_empty s.heap then -1
    else
      let v = heap_remove_min s in
      if s.assign.(v) < 0 then v else loop ()
  in
  loop ()

exception Found_unsat
exception Found_sat
exception Assumption_failed

let theory_check s ~final =
  match s.theory with
  | None -> None
  | Some th -> (
    match th.t_check ~final with
    | None -> None
    | Some true_lits ->
      (* Learn the negation of the inconsistent set. *)
      Some (List.map (fun l -> l lxor 1) true_lits))

let handle_conflict_clause s clause_lits =
  (* Normalize a conflict expressed as a list of currently-false literals:
     backtrack so it is conflicting at its maximal level, then analyze. *)
  s.stats.conflicts <- s.stats.conflicts + 1;
  let max_level =
    List.fold_left (fun acc l -> max acc s.level.(l lsr 1)) 0 clause_lits
  in
  if max_level = 0 then raise Found_unsat;
  cancel_until s max_level;
  let c =
    {
      lits = Array.of_list clause_lits;
      activity = 0.0;
      learnt = true;
      removed = false;
    }
  in
  let learnt, back_level = analyze s c in
  cancel_until s back_level;
  record_learnt s learnt;
  s.var_inc <- s.var_inc *. var_decay;
  s.cla_inc <- s.cla_inc *. cla_decay

let search s budget assumptions conflict_budget =
  let conflicts_here = ref 0 in
  let rec loop () =
    Budget.tick budget;
    match propagate s with
    | Some confl ->
      s.stats.conflicts <- s.stats.conflicts + 1;
      incr conflicts_here;
      if decision_level s = 0 then raise Found_unsat;
      let learnt, back_level = analyze s confl in
      (* Backjumping below the assumption prefix is fine: assumptions are
         re-pushed as decisions by level number on the way back down. *)
      cancel_until s back_level;
      record_learnt s learnt;
      if not s.ok then raise Found_unsat;
      s.var_inc <- s.var_inc *. var_decay;
      s.cla_inc <- s.cla_inc *. cla_decay;
      if !conflicts_here >= conflict_budget then `Restart else loop ()
    | None -> (
      match theory_check s ~final:false with
      | Some clause -> (
        match clause with
        | [] -> raise Found_unsat
        | _ ->
          handle_conflict_clause s clause;
          if not s.ok then raise Found_unsat;
          loop ())
      | None ->
        if float_of_int (Vec.size s.learnts) >= s.max_learnts then reduce_db s;
        (* Assumption handling: the first [n] decisions are the assumptions. *)
        let dl = decision_level s in
        let next_decision =
          if dl < List.length assumptions then begin
            let a = List.nth assumptions dl in
            match lit_value s a with
            | V_true ->
              (* Already satisfied: open an empty level to keep the
                 level/assumption correspondence. *)
              Vec.push s.trail_lim (Vec.size s.trail);
              `Skip
            | V_false -> raise Assumption_failed
            | V_undef ->
              Vec.push s.trail_lim (Vec.size s.trail);
              enqueue s a dummy_clause;
              `Skip
          end
          else `Pick
        in
        match next_decision with
        | `Skip -> loop ()
        | `Pick ->
          let v = pick_branch_var s in
          if v < 0 then begin
            match theory_check s ~final:true with
            | Some clause ->
              (match clause with
              | [] -> raise Found_unsat
              | _ ->
                handle_conflict_clause s clause;
                if not s.ok then raise Found_unsat);
              loop ()
            | None -> raise Found_sat
          end
          else begin
            s.stats.decisions <- s.stats.decisions + 1;
            Vec.push s.trail_lim (Vec.size s.trail);
            let phase = s.saved_phase.(v) in
            enqueue s ((2 * v) + if phase then 0 else 1) dummy_clause;
            loop ()
          end)
  in
  loop ()

let solve ?(assumptions = []) ?(max_conflicts = max_int)
    ?(budget = Budget.unlimited) s =
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    s.max_learnts <- max 1000.0 (float_of_int (Vec.size s.clauses) /. 3.0);
    let result = ref Unknown in
    (try
       Faults.hit "sat.solve" budget;
       (* Fail fast when the budget tripped before this search began
          (e.g. during presolve): a fresh phase must not start on an
          exhausted budget just because the periodic poll hasn't fired. *)
       Budget.check_exn budget;
       let restart = ref 0 in
       let total_conflicts = ref 0 in
       while !result = Unknown do
         let conflict_budget = int_of_float (luby 100.0 !restart) in
         incr restart;
         s.stats.restarts <- s.stats.restarts + 1;
         (match search s budget assumptions conflict_budget with
         | `Restart ->
           total_conflicts := !total_conflicts + conflict_budget;
           if !total_conflicts >= max_conflicts then raise Exit;
           cancel_until s 0);
         ()
       done
     with
    | Found_sat -> result := Sat
    | Found_unsat ->
      s.ok <- false;
      emit_learnt s [];
      result := Unsat
    | Assumption_failed -> result := Unsat
    | Exit -> result := Unknown
    | Budget.Exhausted _ ->
      (* The reason stays sticky in the budget; the boundary contract is
         a plain Unknown, never an escaped exception. *)
      result := Unknown);
    (match !result with
    | Sat -> () (* keep trail for model reading *)
    | Unsat | Unknown -> cancel_until s 0);
    !result
  end
