type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; size = 0; dummy }

let size v = v.size
let is_empty v = v.size = 0

let get v i =
  assert (i >= 0 && i < v.size);
  v.data.(i)

let set v i x =
  assert (i >= 0 && i < v.size);
  v.data.(i) <- x

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.size;
  v.data <- data

let push v x =
  if v.size = Array.length v.data then grow v;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  assert (v.size > 0);
  v.size <- v.size - 1;
  let x = v.data.(v.size) in
  v.data.(v.size) <- v.dummy;
  x

let last v =
  assert (v.size > 0);
  v.data.(v.size - 1)

let clear v =
  Array.fill v.data 0 v.size v.dummy;
  v.size <- 0

let compact v =
  let cap = Array.length v.data in
  if cap > 16 && v.size * 4 < cap then begin
    let data = Array.make (max 16 (2 * v.size)) v.dummy in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end

let shrink v n =
  assert (n >= 0 && n <= v.size);
  Array.fill v.data n (v.size - n) v.dummy;
  v.size <- n

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.size (fun i -> v.data.(i))

let exists p v =
  let rec loop i = i < v.size && (p v.data.(i) || loop (i + 1)) in
  loop 0

let swap_remove v i =
  assert (i >= 0 && i < v.size);
  v.data.(i) <- v.data.(v.size - 1);
  v.size <- v.size - 1;
  v.data.(v.size) <- v.dummy

let sort cmp v =
  let sub = Array.sub v.data 0 v.size in
  Array.sort cmp sub;
  Array.blit sub 0 v.data 0 v.size
