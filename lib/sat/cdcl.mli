(** A CDCL SAT solver in the zChaff/MiniSat lineage.

    This is the reproduction's stand-in for zChaff [7]: conflict-driven
    clause learning with first-UIP analysis, two-watched-literal
    propagation, VSIDS branching with phase saving, Luby restarts and
    activity-based deletion of learnt clauses.

    A {!theory} callback interface turns the solver into the DPLL(T) core
    used by the MathSAT-like baseline: the theory is notified of every
    assignment and backtrack, and is asked for consistency at every unit
    propagation fixpoint — the "tight integration" whose absence the paper
    identifies as the reason ABSOLVER trails MathSAT on the SMT-LIB
    benchmarks (Sec. 5.2). *)

type t

(** Callbacks for theory integration (DPLL(T)).

    The solver calls [t_on_assign] once per literal pushed on its trail (in
    order) and [t_on_backtrack keep] when it backtracks, where [keep] is
    the number of earlier [t_on_assign] notifications that remain valid.

    [t_check ~final] is invoked at every propagation fixpoint ([final =
    false]) and on full assignments ([final = true]). It returns [None] if
    the current assignment is theory-consistent, or [Some lits] where
    [lits] is a subset of currently-true literals that is jointly
    inconsistent (the solver learns the clause of their negations). *)
type theory = {
  t_on_assign : Types.lit -> unit;
  t_on_backtrack : int -> unit;
  t_check : final:bool -> Types.lit list option;
}

val create : ?theory:theory -> unit -> t

val new_var : t -> Types.var

val ensure_vars : t -> int -> unit
(** Make sure variables [0 .. n-1] exist. *)

val num_vars : t -> int

val add_clause : t -> Types.lit list -> unit
(** Add a clause at decision level 0. Duplicate literals are merged and
    tautologies dropped. Adding the empty clause makes the instance
    permanently unsatisfiable. *)

val solve :
  ?assumptions:Types.lit list ->
  ?max_conflicts:int ->
  ?budget:Absolver_resource.Budget.t ->
  t ->
  Types.outcome
(** Solve under optional assumptions. [max_conflicts] bounds the search
    ([Unknown] when exhausted). [budget] is polled once per
    propagate/decide iteration; on exhaustion the result is [Unknown]
    with the typed reason left sticky in the budget
    ({!Absolver_resource.Budget.tripped}) — no exception escapes. The
    model of a [Sat] answer stays readable through {!value} / {!model}
    until the next solver call. *)

val value : t -> Types.var -> Types.value
(** Value in the most recent model. *)

val model : t -> bool array
(** Snapshot of the model ([V_undef] variables default to [false]). *)

val is_unsat : t -> bool
(** The clause set itself (independent of assumptions) was proven
    unsatisfiable. *)

val stats : t -> Types.stats

val set_default_phase : t -> bool -> unit
(** Initial polarity used before a variable acquires a saved phase. *)

val set_learnt_hook : t -> (Types.lit list -> unit) -> unit
(** Install a callback invoked with every learnt clause, and with the
    empty clause when unsatisfiability is established — a DRUP-style
    proof trace consumable by {!Proof.check}. *)
