type 'c t = {
  mutable cl : 'c array;
  mutable bl : Types.Lit.t array;
  mutable n : int;
  dummy : 'c;
}

let create ~dummy () = { cl = [||]; bl = [||]; n = 0; dummy }
let size w = w.n
let clause w i = w.cl.(i)
let blocker w i = w.bl.(i)
let set_blocker w i b = w.bl.(i) <- b

let realloc w cap =
  let cl = Array.make cap w.dummy in
  let bl = Array.make cap Types.Lit.undef in
  Array.blit w.cl 0 cl 0 w.n;
  Array.blit w.bl 0 bl 0 w.n;
  w.cl <- cl;
  w.bl <- bl

let push w c b =
  if w.n = Array.length w.cl then realloc w (if w.n = 0 then 4 else 2 * w.n);
  w.cl.(w.n) <- c;
  w.bl.(w.n) <- b;
  w.n <- w.n + 1

let swap_remove w i =
  let last = w.n - 1 in
  w.cl.(i) <- w.cl.(last);
  w.bl.(i) <- w.bl.(last);
  w.cl.(last) <- w.dummy;
  w.n <- last

let remove_clause w c =
  let i = ref 0 in
  while !i < w.n && w.cl.(!i) != c do
    incr i
  done;
  if !i < w.n then swap_remove w !i

let compact w =
  let cap = Array.length w.cl in
  if cap > 16 && w.n * 4 < cap then realloc w (max 16 (2 * w.n))
