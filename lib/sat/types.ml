type var = int
type lit = int

let pos v = v * 2
let neg_of_var v = (v * 2) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0
let to_dimacs l = if is_pos l then var_of l + 1 else -(var_of l + 1)

let of_dimacs n =
  if n = 0 then invalid_arg "Types.of_dimacs: zero literal"
  else if n > 0 then pos (n - 1)
  else neg_of_var (-n - 1)

let pp_lit fmt l = Format.fprintf fmt "%d" (to_dimacs l)

(* Unboxed views of the same encodings (DESIGN.md Sec. 16): [t = int]
   with [@@immediate] asserts at the type level that values never box,
   so arrays of them are flat and comparisons never call the polymorphic
   runtime path. The plain aliases above remain the primary vocabulary;
   these modules serve code that wants the operations bundled with the
   type (watch lists, future typed containers). *)
module Var = struct
  type t = var [@@immediate]

  let of_int (v : int) : t =
    if v < 0 then invalid_arg "Types.Var.of_int: negative" else v

  let to_int (v : t) : int = v
  let equal : t -> t -> bool = Int.equal
  let compare : t -> t -> int = Int.compare
  let undef : t = -1
  let pp fmt (v : t) = Format.fprintf fmt "v%d" v
end

module Lit = struct
  type t = lit [@@immediate]

  let make (v : Var.t) ~positive : t = if positive then pos v else neg_of_var v
  let of_var = pos
  let negate = negate
  let var = var_of
  let is_pos = is_pos
  let to_int (l : t) : int = l
  let of_int (l : int) : t =
    if l < 0 then invalid_arg "Types.Lit.of_int: negative" else l

  let equal : t -> t -> bool = Int.equal
  let compare : t -> t -> int = Int.compare
  let undef : t = -1
  let to_dimacs = to_dimacs
  let of_dimacs = of_dimacs
  let pp = pp_lit
end

type value = V_true | V_false | V_undef

let value_negate = function
  | V_true -> V_false
  | V_false -> V_true
  | V_undef -> V_undef

let pp_value fmt v =
  Format.pp_print_string fmt
    (match v with V_true -> "true" | V_false -> "false" | V_undef -> "undef")

type outcome = Sat | Unsat | Unknown

let pp_outcome fmt o =
  Format.pp_print_string fmt
    (match o with Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown")

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnt_literals : int;
  mutable reductions : int;
  mutable blocked_visits : int;
}

let mk_stats () =
  {
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnt_literals = 0;
    reductions = 0;
    blocked_visits = 0;
  }
