type var = int
type lit = int

let pos v = v * 2
let neg_of_var v = (v * 2) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0
let to_dimacs l = if is_pos l then var_of l + 1 else -(var_of l + 1)

let of_dimacs n =
  if n = 0 then invalid_arg "Types.of_dimacs: zero literal"
  else if n > 0 then pos (n - 1)
  else neg_of_var (-n - 1)

let pp_lit fmt l = Format.fprintf fmt "%d" (to_dimacs l)

type value = V_true | V_false | V_undef

let value_negate = function
  | V_true -> V_false
  | V_false -> V_true
  | V_undef -> V_undef

let pp_value fmt v =
  Format.pp_print_string fmt
    (match v with V_true -> "true" | V_false -> "false" | V_undef -> "undef")

type outcome = Sat | Unsat | Unknown

let pp_outcome fmt o =
  Format.pp_print_string fmt
    (match o with Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown")

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnt_literals : int;
  mutable reductions : int;
  mutable blocked_visits : int;
}

let mk_stats () =
  {
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnt_literals = 0;
    reductions = 0;
    blocked_visits = 0;
  }
