module Budget = Absolver_resource.Budget
module Faults = Absolver_resource.Faults
module Err = Absolver_resource.Absolver_error

type strategy = Incremental | Restarting

let blocking_clause ?projection solver =
  (* Negate the model restricted to the projection (or all variables). *)
  let vars =
    match projection with
    | Some vs -> vs
    | None -> List.init (Cdcl.num_vars solver) Fun.id
  in
  (* Descending variable order: consecutive models usually differ in a
     low-variable suffix, and [Cdcl.add_clause] watches the leading
     (highest) literals, which then survive most model-to-model deltas. *)
  List.fold_left
    (fun acc v ->
      match Cdcl.value solver v with
      | Types.V_true -> Types.neg_of_var v :: acc
      | Types.V_false -> Types.pos v :: acc
      | Types.V_undef -> acc)
    [] vars

let project ?projection solver =
  match projection with
  | None -> Cdcl.model solver
  | Some vs ->
    let m = Array.make (Cdcl.num_vars solver) false in
    List.iter (fun v -> m.(v) <- Cdcl.value solver v = Types.V_true) vs;
    m

(* The typed reason an enumeration stopped early: a tripped budget wins
   over the solver's generic conflict-budget exhaustion. *)
let stop_reason budget =
  match Budget.tripped budget with
  | Some e -> e
  | None -> Err.Internal "model enumeration: conflict budget exhausted"

let iter ?projection ?(limit = max_int) ?(budget = Budget.unlimited) ~solver f
    () =
  match
    Faults.hit "sat.all_sat" budget;
    let rec loop n =
      if n >= limit then Ok n
      else
        match Cdcl.solve ~budget solver with
        | Types.Unsat -> Ok n
        | Types.Unknown -> Error (stop_reason budget)
        | Types.Sat -> (
          let m = project ?projection solver in
          let block = blocking_clause ?projection solver in
          match f m with
          | `Stop -> Ok (n + 1)
          | `Continue ->
            (* An empty blocking clause means the projection is fully
               unconstrained: there is exactly one projected model. *)
            if block = [] then Ok (n + 1)
            else begin
              Cdcl.add_clause solver block;
              loop (n + 1)
            end)
    in
    loop 0
  with
  | r -> r
  | exception Budget.Exhausted e -> Error e

let enumerate ?projection ?limit ?max_conflicts ?budget ~num_vars clauses =
  ignore max_conflicts;
  let solver = Cdcl.create () in
  Cdcl.ensure_vars solver num_vars;
  List.iter (Cdcl.add_clause solver) clauses;
  let acc = ref [] in
  match
    iter ?projection ?limit ?budget ~solver
      (fun m ->
        acc := Array.copy m :: !acc;
        `Continue)
      ()
  with
  | Ok _ -> Ok (List.rev !acc)
  | Error e -> Error e

let enumerate_restarting ?projection ?(limit = max_int)
    ?(budget = Budget.unlimited) ~num_vars clauses =
  (* Fresh solver per model; blocking clauses accumulate externally. *)
  let blocked = ref [] in
  let rec loop acc n =
    if n >= limit then Ok (List.rev acc)
    else begin
      let solver = Cdcl.create () in
      Cdcl.ensure_vars solver num_vars;
      List.iter (Cdcl.add_clause solver) clauses;
      List.iter (Cdcl.add_clause solver) !blocked;
      match Cdcl.solve ~budget solver with
      | Types.Unsat -> Ok (List.rev acc)
      | Types.Unknown -> Error (stop_reason budget)
      | Types.Sat ->
        let m = project ?projection solver in
        let block = blocking_clause ?projection solver in
        if block = [] then Ok (List.rev (m :: acc))
        else begin
          blocked := block :: !blocked;
          loop (m :: acc) (n + 1)
        end
    end
  in
  loop [] 0

let count ?projection ?budget ~num_vars clauses =
  match enumerate ?projection ?budget ~num_vars clauses with
  | Ok models -> Ok (List.length models)
  | Error e -> Error e
