(** Growable arrays, used pervasively by the solver's hot loops. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
val last : 'a t -> 'a
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink v n] keeps the first [n] elements. *)

val compact : 'a t -> unit
(** Shrink the backing array when the vector occupies less than a quarter
    of its capacity — for call sites that clear or halve a vector that
    once grew large (e.g. the learnt-clause database on reduction). *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool

val swap_remove : 'a t -> int -> unit
(** Constant-time removal: overwrite index with the last element. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
