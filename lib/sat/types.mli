(** Shared vocabulary of the SAT layer.

    Variables are non-negative integers; a literal packs a variable and a
    polarity into a single integer ([2*v] for the positive literal,
    [2*v+1] for the negative one), the usual MiniSat encoding. *)

type var = int
type lit = int

val pos : var -> lit
val neg_of_var : var -> lit
val negate : lit -> lit
val var_of : lit -> var
val is_pos : lit -> bool

val to_dimacs : lit -> int
(** 1-based signed integer, as in DIMACS files. *)

val of_dimacs : int -> lit
(** @raise Invalid_argument on zero. *)

val pp_lit : Format.formatter -> lit -> unit

(** Unboxed module views of the same encodings. [t] is an [int] alias and
    [\[@@immediate\]] makes the unboxed representation a checked part of
    the interface: arrays of these are flat, equality never boxes. *)
module Var : sig
  type t = var [@@immediate]

  val of_int : int -> t
  (** @raise Invalid_argument on negatives. *)

  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int

  val undef : t
  (** A sentinel outside the valid range (compares unequal to every real
      variable). *)

  val pp : Format.formatter -> t -> unit
end

module Lit : sig
  type t = lit [@@immediate]

  val make : Var.t -> positive:bool -> t
  val of_var : Var.t -> t
  (** The positive literal. *)

  val negate : t -> t
  val var : t -> Var.t
  val is_pos : t -> bool
  val to_int : t -> int

  val of_int : int -> t
  (** @raise Invalid_argument on negatives. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val undef : t
  val to_dimacs : t -> int
  val of_dimacs : int -> t
  val pp : Format.formatter -> t -> unit
end

(** Three-valued assignment results. *)
type value = V_true | V_false | V_undef

val value_negate : value -> value
val pp_value : Format.formatter -> value -> unit

(** Outcome of a solver run. *)
type outcome = Sat | Unsat | Unknown

val pp_outcome : Format.formatter -> outcome -> unit

(** Statistics every solver in this library reports. *)
type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnt_literals : int;
  mutable reductions : int;  (** learnt-clause database reductions *)
  mutable blocked_visits : int;
      (** watched-clause visits skipped because the clause's blocking
          literal was already true (the clause was never dereferenced) *)
}

val mk_stats : unit -> stats
