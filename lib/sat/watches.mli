(** One literal's watcher list, with the clause pointers and their
    blocking literals interleaved as two parallel flat arrays inside a
    single structure (DESIGN.md Sec. 16).

    The previous representation kept two separate [Vec.t]s per literal
    that had to be mutated in lockstep; merging them halves the header
    and bookkeeping overhead, keeps the blocker — the field checked on
    every propagation visit — in a flat unboxed [int array], and makes
    the lockstep invariant structural instead of by convention.

    Parameterized over the clause type to keep this module below the
    solver in the dependency order. *)

type 'c t

val create : dummy:'c -> unit -> 'c t
(** [dummy] fills unused slots so stale clause pointers do not retain
    memory. *)

val size : 'c t -> int
val clause : 'c t -> int -> 'c
val blocker : 'c t -> int -> Types.Lit.t
val set_blocker : 'c t -> int -> Types.Lit.t -> unit

val push : 'c t -> 'c -> Types.Lit.t -> unit
(** Append a watched clause with its blocking literal. *)

val swap_remove : 'c t -> int -> unit
(** Constant-time removal: overwrite index with the last entry. *)

val remove_clause : 'c t -> 'c -> unit
(** Remove the entry whose clause is physically equal to the argument,
    if present (linear scan; used by eager detach on database
    reduction). *)

val compact : 'c t -> unit
(** Shrink the backing arrays when the list occupies less than a quarter
    of its capacity, returning over-grown watcher memory after a
    reduction sweep. *)
