(** Model enumeration — the reproduction's LSAT [2].

    The paper uses LSAT to obtain {e all} satisfying Boolean assignments in
    one call, which matters for consistency-based diagnosis and for
    ABSOLVER's control loop (each Boolean model spawns one arithmetic
    subproblem). Two strategies are provided:

    - {!enumerate} keeps one incremental CDCL instance alive and adds a
      blocking clause per model (the LSAT behaviour);
    - {!enumerate_restarting} rebuilds the solver from scratch for every
      model, reproducing the paper's remark that with a non-LSAT black-box
      solver all models can still be computed "at the expense of the time
      required for restarting the entire solving process externally"
      (Sec. 4). The ablation bench quantifies that expense. *)

type strategy = Incremental | Restarting

val enumerate :
  ?projection:Types.var list ->
  ?limit:int ->
  ?max_conflicts:int ->
  ?budget:Absolver_resource.Budget.t ->
  num_vars:int ->
  Types.lit list list ->
  (bool array list, Absolver_resource.Absolver_error.t) result
(** [enumerate ~num_vars clauses] returns the list of models (arrays of
    length [num_vars]). With [projection] the models are projected onto the
    given variables and duplicates w.r.t. the projection are suppressed
    (blocking clauses mention only projected variables). [limit] stops
    after that many models; [budget] bounds the whole enumeration and
    yields [Error] with the typed exhaustion reason. *)

val enumerate_restarting :
  ?projection:Types.var list ->
  ?limit:int ->
  ?budget:Absolver_resource.Budget.t ->
  num_vars:int ->
  Types.lit list list ->
  (bool array list, Absolver_resource.Absolver_error.t) result

val iter :
  ?projection:Types.var list ->
  ?limit:int ->
  ?budget:Absolver_resource.Budget.t ->
  solver:Cdcl.t ->
  (bool array -> [ `Continue | `Stop ]) ->
  unit ->
  (int, Absolver_resource.Absolver_error.t) result
(** Streaming interface over an already-loaded solver: calls the callback
    on each model, blocking it afterwards; returns the number of models
    visited. The solver is left with the blocking clauses installed. *)

val count :
  ?projection:Types.var list ->
  ?budget:Absolver_resource.Budget.t ->
  num_vars:int ->
  Types.lit list list ->
  (int, Absolver_resource.Absolver_error.t) result
