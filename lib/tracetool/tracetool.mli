(** Offline analysis of JSONL telemetry traces (the [--trace] files of
    the CLI and the solve server's request tracing).

    A trace is a stream of span records stitched by id/parent links;
    with the process-wide span ids of {!Absolver_telemetry.Telemetry}, a
    file multiplexing many concurrent requests (and their domain-pool
    forks) still decomposes into clean trees. This module loads such a
    file and answers the questions the [absolver trace] subcommand
    renders: the span tree per root, per-name aggregates, the critical
    path under a root, and flamegraph-ready folded stacks. *)

type span = {
  sp_id : int;
  sp_parent : int;  (** [-1] at top level *)
  sp_name : string;
  sp_start : float;  (** monotonic seconds (the trace's clock) *)
  sp_dur : float;  (** seconds *)
  sp_trace : string option;  (** request trace id, when tagged *)
  sp_attrs : (string * Absolver_server.Sjson.t) list;
  sp_counters : (string * int) list;  (** counter deltas inside the span *)
  sp_abandoned : bool;  (** force-closed, not finished on its own *)
}

type t

val of_string : string -> (t, string) result
(** Parse a complete JSONL document. Lines that are not well-formed
    trace records are an error (with their line number); a missing
    leading meta record is tolerated. *)

val load : string -> (t, string) result
(** {!of_string} over a file's contents. *)

val spans : t -> span list
(** Every span, in file (i.e. close-time) order. *)

val find : t -> int -> span option
val children : t -> int -> span list
(** Direct children of the span id, by start time. *)

val roots : ?trace_id:string -> t -> span list
(** Top-level spans ([sp_parent = -1]), by start time; [trace_id]
    restricts to one request's tree. *)

val unresolved : t -> span list
(** Spans whose parent id is neither [-1] nor present in the trace —
    broken links. Empty on any well-formed trace, whatever the
    interleaving. *)

val trace_ids : t -> string list
(** Distinct request trace ids present, in first-appearance order. *)

val counter_totals : t -> (string * int) list
(** The final counter records ([{"type":"counter",...}]), if the trace
    was sealed by [Telemetry.close]. *)

val self_seconds : t -> span -> float
(** The span's duration minus its direct children's, clamped at 0 —
    the time attributable to the span itself. *)

val aggregates : t -> (string * (int * float * float)) list
(** Per-name [(calls, total_s, self_s)], sorted by descending total. *)

val critical_path : t -> span -> span list
(** Root-to-leaf chain following the longest-duration child at every
    step — where an end-to-end latency budget actually went. *)

val folded : ?trace_id:string -> t -> (string * int) list
(** Flamegraph-ready folded stacks: [("root;child;...;leaf", n)] with
    [n] the stack's self time in microseconds (rounded, summed over
    equal stacks, zero-self stacks dropped), sorted by stack string —
    pipe to [flamegraph.pl]. *)

(** {1 Rendering} (the [absolver trace] subcommand's output) *)

val render_tree : ?max_depth:int -> t -> span -> string
val render_aggregates : t -> string
val render_critical_path : t -> span -> string
val render_summary : t -> string
(** Header block: span/root/trace-id counts, total rooted time, broken
    links and abandoned spans if any. *)
