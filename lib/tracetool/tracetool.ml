(* See tracetool.mli. The loader is deliberately strict about record
   shape (a span line missing "id" is a parse error, not a skip) but
   lenient about record *kinds*: meta/event/gauge lines are accepted and
   ignored, so the tool keeps working when the trace format grows. *)

module Sjson = Absolver_server.Sjson

type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_trace : string option;
  sp_attrs : (string * Sjson.t) list;
  sp_counters : (string * int) list;
  sp_abandoned : bool;
}

type t = {
  t_spans : span list; (* file order *)
  t_by_id : (int, span) Hashtbl.t;
  t_children : (int, span list) Hashtbl.t; (* sorted by start *)
  t_totals : (string * int) list;
}

let get_num j = match j with Sjson.Num f -> Some f | _ -> None

let span_of_obj j =
  let field name = Sjson.member name j in
  match
    ( Option.bind (field "id") Sjson.get_int,
      Option.bind (field "parent") Sjson.get_int,
      Option.bind (field "name") Sjson.get_string,
      Option.bind (field "start") get_num,
      Option.bind (field "dur") get_num )
  with
  | Some id, Some parent, Some name, Some start, Some dur ->
    let attrs =
      match field "attrs" with Some (Sjson.Obj kvs) -> kvs | _ -> []
    in
    let counters =
      match field "counters" with
      | Some (Sjson.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun n -> (k, n)) (Sjson.get_int v))
          kvs
      | _ -> []
    in
    Ok
      {
        sp_id = id;
        sp_parent = parent;
        sp_name = name;
        sp_start = start;
        sp_dur = dur;
        sp_trace = Option.bind (field "trace") Sjson.get_string;
        sp_attrs = attrs;
        sp_counters = counters;
        sp_abandoned =
          (match List.assoc_opt "abandoned" attrs with
          | Some (Sjson.Bool b) -> b
          | _ -> false);
      }
  | _ -> Error "span record missing id/parent/name/start/dur"

let of_string text =
  let exception Bad of string in
  try
    let lineno = ref 0 in
    let spans = ref [] and totals = ref [] in
    String.split_on_char '\n' text
    |> List.iter (fun line ->
           incr lineno;
           let line = String.trim line in
           if line <> "" then
             match Sjson.parse line with
             | Error e -> raise (Bad (Printf.sprintf "line %d: %s" !lineno e))
             | Ok j -> (
               match Option.bind (Sjson.member "type" j) Sjson.get_string with
               | Some "span" -> (
                 match span_of_obj j with
                 | Ok sp -> spans := sp :: !spans
                 | Error e ->
                   raise (Bad (Printf.sprintf "line %d: %s" !lineno e)))
               | Some "counter" -> (
                 match
                   ( Option.bind (Sjson.member "name" j) Sjson.get_string,
                     Option.bind (Sjson.member "total" j) Sjson.get_int )
                 with
                 | Some name, Some v -> totals := (name, v) :: !totals
                 | _ ->
                   raise
                     (Bad
                        (Printf.sprintf "line %d: counter record missing \
                                         name/total" !lineno)))
               | Some _ -> () (* meta / event / gauge / future kinds *)
               | None ->
                 raise
                   (Bad (Printf.sprintf "line %d: record without \"type\""
                           !lineno))));
    let spans = List.rev !spans in
    let by_id = Hashtbl.create (List.length spans * 2) in
    List.iter (fun sp -> Hashtbl.replace by_id sp.sp_id sp) spans;
    let children = Hashtbl.create (List.length spans * 2) in
    List.iter
      (fun sp ->
        let prev =
          match Hashtbl.find_opt children sp.sp_parent with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace children sp.sp_parent (sp :: prev))
      spans;
    Hashtbl.iter
      (fun k l ->
        Hashtbl.replace children k
          (List.sort (fun a b -> compare a.sp_start b.sp_start) l))
      (Hashtbl.copy children);
    Ok
      {
        t_spans = spans;
        t_by_id = by_id;
        t_children = children;
        t_totals = List.rev !totals;
      }
  with Bad e -> Error e

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error e -> Error e

let spans t = t.t_spans
let find t id = Hashtbl.find_opt t.t_by_id id

let children t id =
  match Hashtbl.find_opt t.t_children id with Some l -> l | None -> []

let roots ?trace_id t =
  List.filter
    (fun sp ->
      sp.sp_parent = -1
      && match trace_id with None -> true | Some _ -> sp.sp_trace = trace_id)
    t.t_spans
  |> List.sort (fun a b -> compare a.sp_start b.sp_start)

let unresolved t =
  List.filter
    (fun sp -> sp.sp_parent <> -1 && not (Hashtbl.mem t.t_by_id sp.sp_parent))
    t.t_spans

let trace_ids t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun sp ->
      match sp.sp_trace with
      | Some tid when not (Hashtbl.mem seen tid) ->
        Hashtbl.add seen tid ();
        Some tid
      | _ -> None)
    t.t_spans

let counter_totals t = t.t_totals

let self_seconds t sp =
  let kids = children t sp.sp_id in
  let inner = List.fold_left (fun acc k -> acc +. k.sp_dur) 0.0 kids in
  Float.max 0.0 (sp.sp_dur -. inner)

let aggregates t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let calls, total, self =
        match Hashtbl.find_opt tbl sp.sp_name with
        | Some x -> x
        | None -> (0, 0.0, 0.0)
      in
      Hashtbl.replace tbl sp.sp_name
        (calls + 1, total +. sp.sp_dur, self +. self_seconds t sp))
    t.t_spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (na, (_, ta, _)) (nb, (_, tb, _)) ->
         match compare tb ta with 0 -> compare na nb | c -> c)

let critical_path t root =
  let rec descend sp acc =
    match children t sp.sp_id with
    | [] -> List.rev (sp :: acc)
    | kids ->
      let widest =
        List.fold_left
          (fun best k -> if k.sp_dur > best.sp_dur then k else best)
          (List.hd kids) (List.tl kids)
      in
      descend widest (sp :: acc)
  in
  descend root []

let folded ?trace_id t =
  let tbl = Hashtbl.create 64 in
  let rec walk stack sp =
    let stack = stack ^ (if stack = "" then "" else ";") ^ sp.sp_name in
    let us =
      int_of_float (Float.round (self_seconds t sp *. 1e6))
    in
    if us > 0 then
      Hashtbl.replace tbl stack
        ((match Hashtbl.find_opt tbl stack with Some n -> n | None -> 0) + us);
    List.iter (walk stack) (children t sp.sp_id)
  in
  List.iter (walk "") (roots ?trace_id t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- rendering ---- *)

let ms s = s *. 1e3

let render_attr (k, v) = Printf.sprintf "%s=%s" k (Sjson.to_string v)

let render_tree ?(max_depth = max_int) t root =
  let b = Buffer.create 256 in
  let rec walk depth sp =
    if depth <= max_depth then begin
      let label =
        Printf.sprintf "%s%s (#%d)" (String.make (2 * depth) ' ') sp.sp_name
          sp.sp_id
      in
      let flags =
        (if sp.sp_abandoned then " [abandoned]" else "")
        ^
        match sp.sp_counters with
        | [] -> ""
        | cs ->
          " {"
          ^ String.concat ", "
              (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) cs)
          ^ "}"
      in
      let attrs =
        match
          List.filter (fun (k, _) -> k <> "abandoned") sp.sp_attrs
        with
        | [] -> ""
        | l -> " " ^ String.concat " " (List.map render_attr l)
      in
      Buffer.add_string b
        (Printf.sprintf "%-48s %10.3fms  self %8.3fms%s%s\n" label
           (ms sp.sp_dur)
           (ms (self_seconds t sp))
           attrs flags);
      List.iter (walk (depth + 1)) (children t sp.sp_id)
    end
  in
  walk 0 root;
  Buffer.contents b

let render_aggregates t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-32s %8s %12s %12s\n" "span" "calls" "total(ms)"
       "self(ms)");
  List.iter
    (fun (name, (calls, total, self)) ->
      Buffer.add_string b
        (Printf.sprintf "%-32s %8d %12.3f %12.3f\n" name calls (ms total)
           (ms self)))
    (aggregates t);
  Buffer.contents b

let render_critical_path t root =
  let path = critical_path t root in
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "critical path (%.3fms root):\n" (ms root.sp_dur));
  List.iter
    (fun sp ->
      Buffer.add_string b
        (Printf.sprintf "  %-40s %10.3fms (%5.1f%%)\n" sp.sp_name
           (ms sp.sp_dur)
           (if root.sp_dur > 0.0 then 100.0 *. sp.sp_dur /. root.sp_dur
            else 0.0)))
    path;
  Buffer.contents b

let render_summary t =
  let rs = roots t in
  let rooted = List.fold_left (fun acc r -> acc +. r.sp_dur) 0.0 rs in
  let broken = unresolved t in
  let abandoned =
    List.length (List.filter (fun sp -> sp.sp_abandoned) t.t_spans)
  in
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "spans: %d   roots: %d   traces: %d   rooted time: %.3fms\n"
       (List.length t.t_spans) (List.length rs)
       (List.length (trace_ids t))
       (ms rooted));
  if broken <> [] then
    Buffer.add_string b
      (Printf.sprintf "BROKEN LINKS: %d spans with unresolvable parents (%s)\n"
         (List.length broken)
         (String.concat ", "
            (List.map (fun sp -> Printf.sprintf "#%d" sp.sp_id) broken)));
  if abandoned > 0 then
    Buffer.add_string b (Printf.sprintf "abandoned spans: %d\n" abandoned);
  Buffer.contents b
