(* Octagon (difference-bound-matrix) closure over exact rationals.

   The middle tier of the relaxation layer: +-x +- y <= c rows are cheap
   to harvest from the linear cuts and cheap to close (Floyd-Warshall),
   so an octagon refutation prunes a node before any simplex pivot runs.

   Encoding (Mine's): each variable x_v contributes two literals,
   lit (2v) = +x_v and lit (2v+1) = -x_v; entry m.(i).(j) is an upper
   bound on lit_j - lit_i (None = unbounded).  A constraint
   s_u*x_u + s_v*x_v <= c becomes two coherent entries, and a unary
   s*x <= c the half-weight diagonal-adjacent entry 2c on the literal
   pair of x. *)

module Q = Absolver_numeric.Rational

type t = {
  n : int; (* variables; the matrix is 2n x 2n *)
  m : Q.t option array array;
  mutable dirty : bool;
}

let create n =
  { n; m = Array.make_matrix (2 * n) (2 * n) None; dirty = false }

let bar i = i lxor 1

(* Tighten entry (i, j) to at most [c]. *)
let tighten t i j c =
  match t.m.(i).(j) with
  | Some c0 when Q.leq c0 c -> ()
  | _ ->
    t.m.(i).(j) <- Some c;
    t.dirty <- true

(* s*x_v <= c  (s = +1 when pos, else -1). *)
let add1 t v ~pos c =
  let two_c = Q.mul_int c 2 in
  if pos then tighten t (bar (2 * v)) (2 * v) two_c
  else tighten t (2 * v) (bar (2 * v)) two_c

(* s_u*x_u + s_v*x_v <= c with u <> v.  Rewrites to a literal difference:
   lit(+x_u) = lit(2u), lit(-x_u) = lit(2u+1); s_u*x_u + s_v*x_v <= c is
   lit_a - lit_b <= c with lit_a the literal of s_u*x_u and lit_b the
   negated literal of s_v*x_v. *)
let add2 t u ~upos v ~vpos c =
  let la = if upos then 2 * u else (2 * u) + 1 in
  let lb = if vpos then (2 * v) + 1 else 2 * v in
  tighten t lb la c;
  (* coherence: the same constraint read through the negated literals *)
  tighten t (bar la) (bar lb) c

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (Q.min x y)

let add_opt a b =
  match (a, b) with Some x, Some y -> Some (Q.add x y) | _ -> None

(* Shortest-path closure + octagonal tightening.  Returns [false] when
   the system is infeasible (a negative cycle: m.(i).(i) < 0). *)
let close t =
  let d = 2 * t.n in
  let m = t.m in
  for k = 0 to d - 1 do
    for i = 0 to d - 1 do
      match m.(i).(k) with
      | None -> ()
      | Some _ as ik ->
        for j = 0 to d - 1 do
          m.(i).(j) <- min_opt m.(i).(j) (add_opt ik m.(k).(j))
        done
    done
  done;
  (* octagonal strengthening: lit_j - lit_i <= (ubar_i + ubar_j) / 2
     where ubar_i bounds -2*lit_i and ubar_j bounds 2*lit_j. *)
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      match (m.(i).(bar i), m.(bar j).(j)) with
      | Some a, Some b ->
        let half = Q.div (Q.add a b) (Q.of_int 2) in
        m.(i).(j) <- min_opt m.(i).(j) (Some half)
      | _ -> ()
    done
  done;
  t.dirty <- false;
  let ok = ref true in
  for i = 0 to d - 1 do
    match m.(i).(i) with
    | Some c when Q.sign c < 0 -> ok := false
    | _ -> ()
  done;
  !ok

(* Unary bounds implied by the (closed) octagon: x_v <= m[2v+1][2v] / 2,
   x_v >= -m[2v][2v+1] / 2. *)
let bounds t v =
  let two = Q.of_int 2 in
  let hi = Option.map (fun c -> Q.div c two) t.m.(bar (2 * v)).(2 * v) in
  let lo =
    Option.map (fun c -> Q.neg (Q.div c two)) t.m.(2 * v).(bar (2 * v))
  in
  (lo, hi)
