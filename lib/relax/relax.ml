(* Linear relaxation of nonlinear atoms for the branch-and-prune search.

   Given the current box, every nonlinear atom gets a sound linear
   enclosure — McCormick envelopes for products/quotients/powers,
   convexity-aware secant and tangent chords for the unary operators,
   centered forms where the curvature is mixed — and the resulting cut
   rows are asserted into a warm [Incremental] LP session scoped to the
   search path (checkpoint on branch, rollback on backtrack).  LP
   infeasible => the node is pruned before HC4/Newton run; LP feasible =>
   the optimum tightens the k most influential variable bounds (OBBT).
   An octagon middle tier screens the +-x +- y <= c subset of the cuts
   before any pivot runs.

   Two soundness rules shape everything below:

   - every constant that enters a cut is derived either exactly (floats
     are dyadic rationals) or from an outward-rounded interval enclosure
     ([Interval] ops, [Expr.enclose_at]), never from bare float
     arithmetic;
   - cuts are slackened by the branch-and-prune feasibility tolerance, so
     an LP refutation proves the box holds no point that is
     tolerance-feasible, let alone exactly feasible.  Pruning therefore
     never flips an [Approx_sat]/[Unsat] verdict against the
     relaxation-off search.

   Determinism: the per-node decision is a function of the node's cut
   chain, depth and box only.  Both search modes drive the same code —
   the sequential stack and the parallel frontier each carry the chain —
   and the simplex is complete, so warm-start differences can never
   change a verdict (only pivot counts). *)

module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval
module DR = Absolver_numeric.Delta_rational
module Linexpr = Absolver_lp.Linexpr
module Incremental = Absolver_lp.Incremental
module Expr = Absolver_nlp.Expr
module Box = Absolver_nlp.Box
module BP = Absolver_nlp.Branch_prune
module Budget = Absolver_resource.Budget
module Telemetry = Absolver_telemetry.Telemetry

let finite = Float.is_finite
let q_exact f = Q.of_float f (* exact: every finite float is dyadic *)

(* ------------------------------------------------------------------ *)
(* Directed dyadic quantization                                        *)
(* ------------------------------------------------------------------ *)

(* Envelope slopes are rounded to 12 significant bits so that nearby
   boxes produce byte-identical coefficient vectors: [Simplex.define]
   memoizes slack rows by the constant-free expression, so quantized
   cuts from thousands of sibling nodes share tableau rows instead of
   growing the tableau per node.  Directions matter for soundness where
   the quantized value stands for a range endpoint (McCormick corners):
   lower endpoints round down, upper endpoints round up.  The result is
   always an exactly representable dyadic, so [Q.of_float] is exact. *)
let mant_scale = Float.ldexp 1.0 12

let quantize dir f =
  if (not (finite f)) || f = 0.0 then f
  else
    let m, e = Float.frexp f in
    let s = m *. mant_scale in
    let r =
      match dir with
      | `Down -> Float.floor s
      | `Up -> Float.ceil s
      | `Near -> Float.round s
    in
    Float.ldexp (r /. mant_scale) e

(* ------------------------------------------------------------------ *)
(* Linear enclosures                                                   *)
(* ------------------------------------------------------------------ *)

type enclosure = {
  enc_lo : Linexpr.t option; (* for every x in the box: enc_lo(x) <= e(x) *)
  enc_hi : Linexpr.t option; (* ... e(x) <= enc_hi(x) *)
  enc_rng : I.t; (* interval range of e over the box *)
}

(* Evaluation context for one node: the box's interval environment and
   the float midpoint used to choose between candidate envelope facets.
   The choice is a heuristic — both candidates are sound bounds — so
   float evaluation is fine; it is still deterministic. *)
type ctx = { env : int -> I.t; mid : int -> float }

let const_enc q =
  let le = Linexpr.constant q in
  { enc_lo = Some le; enc_hi = Some le; enc_rng = I.of_rational q }

(* Any side the structural rules could not produce falls back to the
   interval range as a constant bound (interval linearization: freeze
   every variable at its range). *)
let with_range_fallback e =
  let side sel v =
    match sel with
    | Some _ as s -> s
    | None -> if finite v then Some (Linexpr.constant (q_exact v)) else None
  in
  {
    e with
    enc_lo = side e.enc_lo e.enc_rng.I.lo;
    enc_hi = side e.enc_hi e.enc_rng.I.hi;
  }

let neg_enc e =
  {
    enc_lo = Option.map Linexpr.neg e.enc_hi;
    enc_hi = Option.map Linexpr.neg e.enc_lo;
    enc_rng = I.neg e.enc_rng;
  }

let add_enc a b =
  let side x y =
    match (x, y) with Some u, Some v -> Some (Linexpr.add u v) | _ -> None
  in
  {
    enc_lo = side a.enc_lo b.enc_lo;
    enc_hi = side a.enc_hi b.enc_hi;
    enc_rng = I.add a.enc_rng b.enc_rng;
  }

let scale_enc q e =
  let sc = Option.map (Linexpr.scale q) in
  let rng = I.mul (I.of_rational q) e.enc_rng in
  if Q.sign q >= 0 then { enc_lo = sc e.enc_lo; enc_hi = sc e.enc_hi; enc_rng = rng }
  else { enc_lo = sc e.enc_hi; enc_hi = sc e.enc_lo; enc_rng = rng }

(* Sound bound of [sum_i c_i * e_i + k] composed through sub-enclosures:
   each term picks the side matching the sign of its coefficient. *)
let comb ~upper terms k =
  let rec go acc = function
    | [] -> Some acc
    | (c, e) :: rest -> (
      let side = if Q.sign c >= 0 <> upper then e.enc_lo else e.enc_hi in
      match side with
      | None -> None
      | Some le -> go (Linexpr.add acc (Linexpr.scale c le)) rest)
  in
  go (Linexpr.constant k) terms

let eval_at mid le =
  List.fold_left
    (fun acc (v, q) -> acc +. (Q.to_float q *. mid v))
    (Q.to_float (Linexpr.const le))
    (Linexpr.coeffs le)

let pick ~upper mid a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some la, Some lb ->
    let c = Float.compare (eval_at mid la) (eval_at mid lb) in
    Some (if (c >= 0) <> upper then la else lb)

(* McCormick envelope of a product, composed through the factors' own
   enclosures.  The corner constants are the factors' range endpoints,
   outward-quantized — (a - aL)(b - bL) >= 0 stays valid for any aL, bL
   below the true range, so rounding the corners outward preserves
   soundness while sharing slack rows across nodes. *)
let mccormick mid a b =
  let rng = I.mul a.enc_rng b.enc_rng in
  let ra = a.enc_rng and rb = b.enc_rng in
  if
    not
      (finite ra.I.lo && finite ra.I.hi && finite rb.I.lo && finite rb.I.hi)
  then with_range_fallback { enc_lo = None; enc_hi = None; enc_rng = rng }
  else begin
    let al = q_exact (quantize `Down ra.I.lo)
    and au = q_exact (quantize `Up ra.I.hi)
    and bl = q_exact (quantize `Down rb.I.lo)
    and bu = q_exact (quantize `Up rb.I.hi) in
    let lo1 = comb ~upper:false [ (bl, a); (al, b) ] (Q.neg (Q.mul al bl))
    and lo2 = comb ~upper:false [ (bu, a); (au, b) ] (Q.neg (Q.mul au bu))
    and hi1 = comb ~upper:true [ (bu, a); (al, b) ] (Q.neg (Q.mul al bu))
    and hi2 = comb ~upper:true [ (bl, a); (au, b) ] (Q.neg (Q.mul au bl)) in
    with_range_fallback
      {
        enc_lo = pick ~upper:false mid lo1 lo2;
        enc_hi = pick ~upper:true mid hi1 hi2;
        enc_rng = rng;
      }
  end

(* Curvature of a unary operator over the inner range. *)
type shape = Convex | Concave | Mixed

let shape_of_second d2 =
  if I.is_empty d2 then Mixed
  else if d2.I.lo >= 0.0 then Convex
  else if d2.I.hi <= 0.0 then Concave
  else Mixed

(* Sound linear enclosure of [f (g)] over the box, where [fi]/[di] are
   interval extensions of f and f'.

   - Secant side (convex upper / concave lower): for convex f and any
     slope s, f - s*x is convex, so its maximum over [xl, xu] sits at an
     endpoint; the intercept is the endpoint-max of rigorous point
     enclosures of f.  Mirrored for concave f.
   - Tangent / centered side: f(x) = f(m) + f'(xi)(x - m) for some xi
     between m and x, so with any slope s,
     f(x) >= lo(f(m)) + s*(x - m) + lo((D - s) * (r - m)) where D
     encloses f' at m (convex/concave tangent, by the gradient
     inequality) or over the whole range (mixed curvature, by the mean
     value theorem).  All error terms are evaluated in outward-rounded
     interval arithmetic; if a derivative blows up (log/sqrt near 0) the
     side is dropped and the range fallback takes over. *)
let unary g ~fi ~di ~shape =
  let r = g.enc_rng in
  let rng = fi r in
  if I.is_empty r || I.is_empty rng then
    { enc_lo = None; enc_hi = None; enc_rng = rng }
  else if not (finite r.I.lo && finite r.I.hi) then
    with_range_fallback { enc_lo = None; enc_hi = None; enc_rng = rng }
  else begin
    let xl = r.I.lo and xu = r.I.hi in
    let m =
      let mq = quantize `Near (I.mid r) in
      if mq < xl || mq > xu then I.mid r else mq
    in
    let fm = fi (I.of_float m) in
    let line ~upper s_f c =
      (* the cut s*g + c, composed through g's enclosure *)
      comb ~upper [ (q_exact s_f, g) ] c
    in
    let centered ~upper dint =
      if I.is_empty fm || I.is_empty dint then None
      else if not (finite dint.I.lo && finite dint.I.hi) then None
      else begin
        let s_f = quantize `Near (I.mid dint) in
        let err =
          I.mul (I.sub dint (I.of_float s_f)) (I.sub r (I.of_float m))
        in
        let fm_v = if upper then fm.I.hi else fm.I.lo
        and err_v = if upper then err.I.hi else err.I.lo in
        if not (finite fm_v && finite err_v) then None
        else
          let c =
            Q.sub
              (Q.add (q_exact fm_v) (q_exact err_v))
              (Q.mul (q_exact s_f) (q_exact m))
          in
          line ~upper s_f c
      end
    in
    let secant ~upper =
      let fl = fi (I.of_float xl) and fu = fi (I.of_float xu) in
      if I.is_empty fl || I.is_empty fu || xu <= xl then None
      else begin
        let fl_v = if upper then fl.I.hi else fl.I.lo
        and fu_v = if upper then fu.I.hi else fu.I.lo in
        if not (finite fl_v && finite fu_v) then None
        else begin
          let s_f = quantize `Near ((fu_v -. fl_v) /. (xu -. xl)) in
          if not (finite s_f) then None
          else
            let s = q_exact s_f in
            let cl = Q.sub (q_exact fl_v) (Q.mul s (q_exact xl))
            and cu = Q.sub (q_exact fu_v) (Q.mul s (q_exact xu)) in
            let c = if upper then Q.max cl cu else Q.min cl cu in
            line ~upper s_f c
        end
      end
    in
    let or_else a b = match a with Some _ -> a | None -> b () in
    let dm () = di (I.of_float m) and dr () = di r in
    let enc_lo, enc_hi =
      match shape with
      | Convex ->
        ( or_else (centered ~upper:false (dm ())) (fun () ->
              centered ~upper:false (dr ())),
          secant ~upper:true )
      | Concave ->
        ( secant ~upper:false,
          or_else (centered ~upper:true (dm ())) (fun () ->
              centered ~upper:true (dr ())) )
      | Mixed -> (centered ~upper:false (dr ()), centered ~upper:true (dr ()))
    in
    with_range_fallback { enc_lo; enc_hi; enc_rng = rng }
  end

let pow_shape n (r : I.t) =
  if n >= 2 then
    if n land 1 = 0 then Convex
    else if r.I.lo >= 0.0 then Convex
    else if r.I.hi <= 0.0 then Concave
    else Mixed
  else if r.I.lo > 0.0 then Convex
  else if r.I.hi < 0.0 then if n land 1 = 0 then Convex else Concave
  else Mixed (* range touches 0: the derivative enclosure is infinite *)

let pow_enc g n =
  let fi iv = I.pow_int iv n in
  let di iv = I.mul (I.of_float (float_of_int n)) (I.pow_int iv (n - 1)) in
  unary g ~fi ~di ~shape:(pow_shape n g.enc_rng)

(* Affine subterms — [Const], [Var], [Neg], [Add], [Sub], constant
   [Mul] — compose exactly through their structural rules (both sides of
   the enclosure coincide), so no separate linearization pass is needed:
   attempting [Expr.linearize] at every recursion level would make the
   walk quadratic in the atom size. *)
let rec enclose ctx (e : Expr.t) : enclosure =
  match e with
  | Expr.Const q -> const_enc q
  | Expr.Var v ->
    let le = Some (Linexpr.var v) in
    { enc_lo = le; enc_hi = le; enc_rng = ctx.env v }
  | Expr.Neg a -> neg_enc (enclose ctx a)
  | Expr.Add (a, b) -> add_enc (enclose ctx a) (enclose ctx b)
  | Expr.Sub (a, b) -> add_enc (enclose ctx a) (neg_enc (enclose ctx b))
  | Expr.Mul (Expr.Const q, b) | Expr.Mul (b, Expr.Const q) ->
    scale_enc q (enclose ctx b)
  | Expr.Mul (a, b) -> mccormick ctx.mid (enclose ctx a) (enclose ctx b)
  | Expr.Div (a, b) ->
    let ea = enclose ctx a and eb = enclose ctx b in
    if I.strictly_positive eb.enc_rng || I.strictly_negative eb.enc_rng
    then
      (* a * (1/b): the reciprocal is convex or concave away from 0. *)
      mccormick ctx.mid ea (pow_enc eb (-1))
    else
      with_range_fallback
        { enc_lo = None; enc_hi = None; enc_rng = I.div ea.enc_rng eb.enc_rng }
  | Expr.Pow (_, 0) -> const_enc Q.one
  | Expr.Pow (a, 1) -> enclose ctx a
  | Expr.Pow (a, n) -> pow_enc (enclose ctx a) n
  | Expr.Sqrt a ->
    let g = enclose ctx a in
    unary g ~fi:I.sqrt
      ~di:(fun iv -> I.inv (I.mul (I.of_float 2.0) (I.sqrt iv)))
      ~shape:Concave
  | Expr.Exp a ->
    unary (enclose ctx a) ~fi:I.exp ~di:I.exp ~shape:Convex
  | Expr.Log a ->
    unary (enclose ctx a) ~fi:I.log ~di:I.inv ~shape:Concave
  | Expr.Sin a ->
    (* Range splitting through the search: once bisection narrows the
       inner range to one curvature regime (sin'' = -sin has constant
       sign), the chord machinery applies; otherwise centered form. *)
    let g = enclose ctx a in
    unary g ~fi:I.sin ~di:I.cos
      ~shape:(shape_of_second (I.neg (I.sin g.enc_rng)))
  | Expr.Cos a ->
    let g = enclose ctx a in
    unary g ~fi:I.cos
      ~di:(fun iv -> I.neg (I.sin iv))
      ~shape:(shape_of_second (I.neg (I.cos g.enc_rng)))

(* ------------------------------------------------------------------ *)
(* Cuts                                                                *)
(* ------------------------------------------------------------------ *)

let bounds_tag = -2 (* cf. Ab_problem.bounds_tag *)

(* Normalize a row so its leading coefficient is exactly [1]: dividing
   [expr op 0] by a positive constant (flipping the relation for a
   negative one) preserves its solution set.  Single-variable rows then
   map to the variable itself inside [Simplex.define] — a plain bound
   assertion, no tableau row — and multi-variable rows that differ only
   by scale share one slack row.  Without this, every distinct envelope
   slope would permanently grow the warm session's tableau. *)
let normalize_cons (c : Linexpr.cons) =
  match Linexpr.coeffs c.expr with
  | [] -> c
  | (_, c0) :: _ when Q.equal c0 Q.one -> c
  | (_, c0) :: _ ->
    let expr = Linexpr.scale (Q.inv (Q.abs c0)) c.expr in
    if Q.sign c0 > 0 then { c with expr }
    else
      let op =
        match c.op with
        | Linexpr.Le -> Linexpr.Ge
        | Linexpr.Lt -> Linexpr.Gt
        | Linexpr.Ge -> Linexpr.Le
        | Linexpr.Gt -> Linexpr.Lt
        | Linexpr.Eq -> Linexpr.Eq
      in
      { c with expr = Linexpr.neg expr; op }

(* Slacken a linear lower/upper enclosure of an atom [e op 0] by the
   feasibility tolerance: a tolerance-feasible point has e(x) <= tol
   (Le/Lt), e(x) >= -tol (Ge/Gt) or |e(x)| <= tol (Eq), and the
   enclosure brackets e, so the slackened rows are implied.  Strict
   relations are relaxed to their closed forms — weaker, hence sound. *)
let atom_cuts ~slack (op : Linexpr.op) ~tag lo hi =
  let mk_le le =
    normalize_cons
      {
        Linexpr.expr = Linexpr.set_const le (Q.sub (Linexpr.const le) slack);
        op = Linexpr.Le;
        tag;
      }
  and mk_ge le =
    normalize_cons
      {
        Linexpr.expr = Linexpr.set_const le (Q.add (Linexpr.const le) slack);
        op = Linexpr.Ge;
        tag;
      }
  in
  match op with
  | Linexpr.Le | Linexpr.Lt ->
    Option.to_list (Option.map mk_le lo)
  | Linexpr.Ge | Linexpr.Gt ->
    Option.to_list (Option.map mk_ge hi)
  | Linexpr.Eq ->
    Option.to_list (Option.map mk_le lo) @ Option.to_list (Option.map mk_ge hi)

(* Box bounds as rows, so the LP sees the node's domain.  Bound rows are
   1*x expressions: [Simplex.define] maps them to the variable itself,
   so they never grow the tableau. *)
let bound_cuts vars box =
  List.concat_map
    (fun v ->
      let iv = Box.get box v in
      (if finite iv.I.lo then
         [
           {
             Linexpr.expr = Linexpr.of_list [ (Q.one, v) ] (Q.neg (q_exact iv.I.lo));
             op = Linexpr.Ge;
             tag = bounds_tag;
           };
         ]
       else [])
      @
      if finite iv.I.hi then
        [
          {
            Linexpr.expr = Linexpr.of_list [ (Q.one, v) ] (Q.neg (q_exact iv.I.hi));
            op = Linexpr.Le;
            tag = bounds_tag;
          };
        ]
      else [])
    vars

(* Constant rows never reach the tableau: a violated one refutes the
   node outright, a satisfied one is dropped. *)
let screen_cuts cuts =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (c : Linexpr.cons) :: rest ->
      if Linexpr.is_constant c.expr then
        if Linexpr.holds (fun _ -> Q.zero) c then go acc rest else None
      else go (c :: acc) rest
  in
  go [] cuts

let ctx_of_box box =
  let mid v =
    let iv = Box.get box v in
    if I.is_empty iv then 0.0 else I.mid iv
  in
  { env = Box.env box; mid }

let cuts_of_rel ~slack ~box (r : Expr.rel) =
  match Expr.linearize r.Expr.expr with
  | Some le ->
    atom_cuts ~slack r.Expr.op ~tag:r.Expr.tag (Some le) (Some le)
  | None ->
    let e = enclose (ctx_of_box box) r.Expr.expr in
    atom_cuts ~slack r.Expr.op ~tag:r.Expr.tag e.enc_lo e.enc_hi

let enclose_expr ~box e = enclose (ctx_of_box box) e

(* ------------------------------------------------------------------ *)
(* Octagon middle tier                                                 *)
(* ------------------------------------------------------------------ *)

(* Harvest the +-x +- y <= c subset of the cuts (after normalizing every
   row to [expr <= 0] form); refute on negative cycle or feed tightened
   unary bounds back into the box.  Everything here is a function of the
   cuts and the box, so the step is deterministic.

   Cost control: the cubic closure runs only over the variables that
   occur in a {e binary} harvested row — unary rows alone cannot create
   any indirect deduction, so when no binary row exists (the common case:
   bound rows and most envelope cuts are unary or many-variable) the
   harvest collapses to a per-variable min over the unary constants.
   Without this restriction a 50-variable problem pays a million-step
   rational Floyd-Warshall per search node. *)
let octagon_step box cuts =
  let unary = ref [] and binary = ref [] in
  let harvest_row le =
    let k = Linexpr.const le in
    match Linexpr.coeffs le with
    | [ (v, a) ] ->
      unary := (v, Q.sign a > 0, Q.neg (Q.div k (Q.abs a))) :: !unary
    | [ (u, a); (v, b) ] when Q.equal (Q.abs a) (Q.abs b) ->
      binary :=
        (u, Q.sign a > 0, v, Q.sign b > 0, Q.neg (Q.div k (Q.abs a)))
        :: !binary
    | _ -> ()
  in
  List.iter
    (fun (c : Linexpr.cons) ->
      match c.op with
      | Linexpr.Le | Linexpr.Lt -> harvest_row c.expr
      | Linexpr.Ge | Linexpr.Gt -> harvest_row (Linexpr.neg c.expr)
      | Linexpr.Eq ->
        harvest_row c.expr;
        harvest_row (Linexpr.neg c.expr))
    cuts;
  (* Tightest per-variable (lo, hi) implied by the unary rows alone. *)
  let unary_bounds () =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (v, pos, c) ->
        let lo, hi =
          Option.value (Hashtbl.find_opt tbl v) ~default:(None, None)
        in
        let entry =
          if pos then
            (lo, Some (match hi with None -> c | Some h -> Q.min h c))
          else
            (* -x <= c, i.e. x >= -c *)
            let l = Q.neg c in
            ( (match lo with None -> Some l | Some l0 -> Some (Q.max l0 l)),
              hi )
        in
        Hashtbl.replace tbl v entry)
      !unary;
    Hashtbl.fold (fun v (lo, hi) acc -> (v, lo, hi) :: acc) tbl []
    |> List.sort compare
  in
  (* Intersect [bnds] (sparse rational bounds per variable) into the box. *)
  let apply bnds =
    let tightened = ref 0 and empty = ref false in
    List.iter
      (fun (v, lo, hi) ->
        if not !empty then begin
          let iv = Box.get box v in
          let niv = I.inter iv (I.of_rational_bounds lo hi) in
          if I.is_empty niv then empty := true
          else if not (I.equal niv iv) then begin
            Box.set box v niv;
            incr tightened
          end
        end)
      bnds;
    if !empty then `Prune else `Tightened !tightened
  in
  if !binary = [] then
    (* Unary-only fast path: fold each variable's tightest upper and
       lower constants; no closure can add anything. *)
    apply (unary_bounds ())
  else begin
    (* Close only over the variables reached by binary rows (plus their
       unary bounds); every other variable's unary rows go through the
       fast path above anyway on the next node. *)
    let involved = Hashtbl.create 16 in
    List.iter
      (fun (u, _, v, _, _) ->
        Hashtbl.replace involved u ();
        Hashtbl.replace involved v ())
      !binary;
    let vars =
      Hashtbl.fold (fun v () acc -> v :: acc) involved [] |> List.sort compare
    in
    let index = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace index v i) vars;
    let n = List.length vars in

    let oct = Octagon.create n in
    List.iter
      (fun (v, pos, c) ->
        match Hashtbl.find_opt index v with
        | Some i -> Octagon.add1 oct i ~pos c
        | None -> ())
      !unary;
    List.iter
      (fun (u, upos, v, vpos, c) ->
        match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
        | Some i, Some j when i <> j -> Octagon.add2 oct i ~upos j ~vpos c
        | _ -> ())
      !binary;
    (* Also give the closure the box bounds of the involved variables, so
       +-x +- y rows can actually refute against the domain. *)
    List.iter
      (fun v ->
        let i = Hashtbl.find index v in
        let iv = Box.get box v in
        if finite iv.I.hi then Octagon.add1 oct i ~pos:true (q_exact iv.I.hi);
        if finite iv.I.lo then
          Octagon.add1 oct i ~pos:false (Q.neg (q_exact iv.I.lo)))
      vars;
    if not (Octagon.close oct) then `Prune
    else begin
      (* Closed octagon bounds for the involved variables, plus the
         unary fast path for the rest. *)
      let oct_bnds =
        List.mapi
          (fun i v ->
            let lo, hi = Octagon.bounds oct i in
            (v, lo, hi))
          vars
      in
      let rest =
        List.filter (fun (v, _, _) -> not (Hashtbl.mem involved v))
          (unary_bounds ())
      in
      apply (oct_bnds @ rest)
    end
  end

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

type state = {
  mutable sess : Incremental.t;
  mutable groups : Linexpr.cons list list; (* asserted chain, root first *)
  mutable asserted_total : int; (* scope_asserts since session creation *)
  atom_cache : (I.t array * Linexpr.cons list) option array;
      (* per nonlinear atom: variable intervals + cuts of the last
         enclosure computed on this domain *)
}

let fresh_session () =
  (* No float filter: relax sessions accumulate a slack row per distinct
     quantized cut, and the filter's dense float shadow is quadratic in
     the variable count — the exact check on a warm basis needs only a
     handful of pivots per node.  No verdict cache either: scoped checks
     never consult it. *)
  Incremental.create ~cache_capacity:0 ~float_filter:false ()

let oracle ?(telemetry = Telemetry.disabled) ~(config : BP.config) ~nvars:_ rels
    =
  let slack = Q.of_float config.tol in
  (* Static per-atom preparation: linear atoms produce box-independent
     cuts once (asserted with the root group); nonlinear atoms are
     re-enclosed per node. *)
  let atoms =
    List.map
      (fun (r : Expr.rel) ->
        match Expr.linearize r.Expr.expr with
        | Some le ->
          `Lin (atom_cuts ~slack r.Expr.op ~tag:r.Expr.tag (Some le) (Some le))
        | None -> `Nl r)
      rels
  in
  let all_vars =
    List.sort_uniq compare
      (List.concat_map (fun (r : Expr.rel) -> Expr.vars r.Expr.expr) rels)
  in
  let obbt_vars =
    List.sort_uniq compare
      (List.concat_map
         (function `Nl (r : Expr.rel) -> Expr.vars r.Expr.expr | `Lin _ -> [])
         atoms)
  in
  let atom_arr = Array.of_list atoms in
  let atom_vars =
    Array.map
      (function
        | `Nl (r : Expr.rel) ->
          Array.of_list (List.sort_uniq compare (Expr.vars r.Expr.expr))
        | `Lin _ -> [||])
      atom_arr
  in
  let rx_cuts = Atomic.make 0
  and rx_lp_checks = Atomic.make 0
  and rx_pruned = Atomic.make 0
  and rx_oct_pruned = Atomic.make 0
  and rx_tightened = Atomic.make 0
  and rx_obbt = Atomic.make 0 in
  (* Budget exhaustion mid-LP disables the oracle for the rest of the
     solve (the search itself trips on its next tick; under an exhausted
     budget schedule independence is already waived). *)
  let disabled = Atomic.make false in
  (* One warm session per worker domain, created lazily.  A mutex-guarded
     table rather than Domain.DLS: oracles are created per solve call and
     DLS keys are never reclaimed. *)
  let states : (Domain.id, state) Hashtbl.t = Hashtbl.create 8 in
  let states_mutex = Mutex.create () in
  let state_for () =
    let id = Domain.self () in
    Mutex.protect states_mutex (fun () ->
        match Hashtbl.find_opt states id with
        | Some s -> s
        | None ->
          let s =
            {
              sess = fresh_session ();
              groups = [];
              asserted_total = 0;
              atom_cache = Array.make (Array.length atom_arr) None;
            }
          in
          Hashtbl.add states id s;
          s)
  in
  let prune ~oct =
    Atomic.incr rx_pruned;
    if oct then Atomic.incr rx_oct_pruned;
    BP.Rx_prune
  in
  (* Optimization-based bounds tightening on the k widest variables
     occurring nonlinearly.  The gate is the node's depth, never a
     running counter, so the set of OBBT nodes is schedule-independent.
     Optimum values are exact; their rational part is rounded outward
     into float bounds through [I.of_rational_bounds]. *)
  let obbt st box =
    let scored =
      List.map (fun v -> (v, I.width (Box.get box v))) obbt_vars
    in
    let sorted =
      List.sort
        (fun (v1, w1) (v2, w2) ->
          match compare w2 w1 with 0 -> compare v1 v2 | c -> c)
        scored
    in
    let rec take n = function
      | [] -> []
      | x :: r -> if n <= 0 then [] else x :: take (n - 1) r
    in
    let chosen = take config.relax_obbt_vars sorted in
    let empty = ref false in
    List.iter
      (fun (v, w) ->
        if (not !empty) && w > 0.0 then begin
          Atomic.incr rx_obbt;
          Atomic.incr rx_obbt;
          let lo =
            match Incremental.scope_minimize st.sess (Linexpr.var v) with
            | Incremental.Opt_value d when Q.sign (DR.k d) >= 0 ->
              Some (DR.r d)
            | _ -> None
          and hi =
            match Incremental.scope_maximize st.sess (Linexpr.var v) with
            | Incremental.Opt_value d when Q.sign (DR.k d) <= 0 ->
              Some (DR.r d)
            | _ -> None
          in
          if lo <> None || hi <> None then begin
            let iv = Box.get box v in
            let niv = I.inter iv (I.of_rational_bounds lo hi) in
            if I.is_empty niv then empty := true
            else if not (I.equal niv iv) then begin
              Box.set box v niv;
              Atomic.incr rx_tightened
            end
          end
        end)
      chosen;
    if !empty then `Empty else `Done
  in
  (* Sync the worker's session to [path @ [cuts]]: pop scopes down to the
     longest common group prefix (physical equality — groups are shared
     up the tree), then assert the missing groups, one scope each. *)
  let lp_node st ~budget ~depth ~path ~cuts box =
    let target = path @ [ cuts ] in
    (* The session holds ONE scope: the current node's group.  Ancestor
       groups are pointwise dominated inside the child box (envelopes are
       inclusion-monotone: a secant, tangent or McCormick facet computed
       on a sub-box is at least as tight at every point of it), so
       re-asserting them would only pin stale-slope rows in the tableau.
       Warm start comes from [Simplex.define]'s row sharing: the 12-bit
       slope quantization makes nearby boxes produce identical coefficient
       vectors, so a sibling's rows are usually already defined and only
       their bounds move.

       [Simplex.define] memoizes rows permanently — [pop] restores bounds
       but never shrinks the tableau — and every dead row keeps sitting in
       the occurrence lists its columns index, so pivot and bound updates
       slow down linearly with garbage.  As soon as the session carries
       any row beyond the live group, drop it and start fresh
       (re-asserting nothing but the current group, which this node
       asserts anyway; measured on the steering model this beats every
       laxer threshold).  Verdicts are unaffected (the exact check is
       complete), only warm-start cost. *)
    let live = List.length cuts in
    if st.asserted_total - live > 0 then begin
      st.sess <- fresh_session ();
      st.groups <- [];
      st.asserted_total <- 0
    end;
    Incremental.set_budget st.sess budget;
    List.iter (fun _ -> Incremental.scope_pop st.sess) st.groups;
    st.groups <- [ cuts ];
    Incremental.scope_push st.sess;
    let conflict = ref false in
    List.iter
      (fun c ->
        if not !conflict then begin
          st.asserted_total <- st.asserted_total + 1;
          if not (Incremental.scope_assert st.sess c) then conflict := true
        end)
      cuts;
    if !conflict then prune ~oct:false
    else begin
      Atomic.incr rx_lp_checks;
      if not (Incremental.scope_check st.sess) then prune ~oct:false
      else if
        depth <= config.relax_obbt_depth
        && config.relax_obbt_vars > 0
        && obbt_vars <> []
      then
        match obbt st box with
        | `Empty -> prune ~oct:false
        | `Done -> BP.Rx_continue target
      else BP.Rx_continue target
    end
  in
  let rx_node ~budget ~path ~depth box =
    if Atomic.get disabled || Box.is_empty box then BP.Rx_continue path
    else begin
      let st = state_for () in
      let ctx = ctx_of_box box in
      (* Per-atom cut memo: a bisection (or an OBBT tightening) moves one
         or two variable ranges, so most atoms see the exact same
         sub-box as the previously visited node and their envelope —
         slopes and constants alike — is unchanged.  Reuse is keyed on
         the atom's own variable intervals, so a hit reproduces exactly
         what recomputation would: decisions stay a function of the box
         alone. *)
      let nl_cuts =
        Array.mapi
          (fun i a ->
            match a with
            | `Lin _ -> []
            | `Nl (r : Expr.rel) ->
              let vs = atom_vars.(i) in
              let snap = Array.map (fun v -> Box.get box v) vs in
              (match st.atom_cache.(i) with
              | Some (prev, cuts) when Array.for_all2 I.equal prev snap ->
                cuts
              | _ ->
                let e = enclose ctx r.Expr.expr in
                let cuts =
                  atom_cuts ~slack r.Expr.op ~tag:r.Expr.tag e.enc_lo
                    e.enc_hi
                in
                st.atom_cache.(i) <- Some (snap, cuts);
                cuts))
          atom_arr
      in
      let cuts =
        bound_cuts all_vars box
        @ (if depth = 0 then
             List.concat_map (function `Lin cs -> cs | `Nl _ -> []) atoms
           else [])
        @ List.concat (Array.to_list nl_cuts)
      in
      match screen_cuts cuts with
      | None -> prune ~oct:false
      | Some cuts -> (
        ignore (Atomic.fetch_and_add rx_cuts (List.length cuts));
        let oct_verdict =
          if config.relax_octagon then octagon_step box cuts
          else `Tightened 0
        in
        match oct_verdict with
        | `Prune -> prune ~oct:true
        | `Tightened nt -> (
          if nt > 0 then
            ignore (Atomic.fetch_and_add rx_tightened nt);
          let t0 = Telemetry.Clock.now () in
          match lp_node st ~budget ~depth ~path ~cuts box with
          | decision ->
            Telemetry.observe telemetry "bp.relax.lp_time"
              (Telemetry.Clock.now () -. t0);
            decision
          | exception Budget.Exhausted _ ->
            Atomic.set disabled true;
            Telemetry.observe telemetry "bp.relax.lp_time"
              (Telemetry.Clock.now () -. t0);
            BP.Rx_continue path))
    end
  in
  {
    BP.rx_node;
    rx_cuts;
    rx_lp_checks;
    rx_pruned;
    rx_oct_pruned;
    rx_tightened;
    rx_obbt;
  }
