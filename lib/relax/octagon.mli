(** Octagon (difference-bound-matrix) domain over exact rationals.

    The relaxation layer's middle tier: [+-x +- y <= c] rows harvested
    from the linear cuts are closed by Floyd–Warshall plus the octagonal
    strengthening step, refuting a box (negative diagonal) or tightening
    unary bounds without running a single simplex pivot. Cubic in the
    literal count [2n], which is cheap at branch-and-prune dimensions. *)

module Q = Absolver_numeric.Rational

type t

val create : int -> t
(** [create n]: the unconstrained octagon over variables [0 .. n-1]. *)

val add1 : t -> int -> pos:bool -> Q.t -> unit
(** [add1 t v ~pos c]: assert [x_v <= c] ([pos]) or [-x_v <= c]. *)

val add2 : t -> int -> upos:bool -> int -> vpos:bool -> Q.t -> unit
(** [add2 t u ~upos v ~vpos c]: assert [s_u*x_u + s_v*x_v <= c] where a
    sign is [+1] when the flag is true. Requires [u <> v] (a caller
    asserting [u = v] should fold the coefficients into {!add1}). *)

val close : t -> bool
(** Shortest-path closure; [false] means the constraint system is
    infeasible (a negative cycle). Bounds read by {!bounds} are only
    meaningful after a closure that returned [true]. *)

val bounds : t -> int -> Q.t option * Q.t option
(** [(lo, hi)] bounds on a variable implied by the closed octagon. *)
