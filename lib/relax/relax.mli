(** Linear relaxation of nonlinear atoms for branch-and-prune.

    Builds sound linear enclosures of every nonlinear atom over the
    current box — McCormick envelopes for products, quotients and
    integer powers, convexity-directed secant/tangent chords for the
    unary operators ([exp], [log], [sqrt]), centered forms where the
    curvature is mixed, and range splitting through bisection for
    [sin]/[cos] — and turns them into cut rows for a warm
    {!Absolver_lp.Incremental} session scoped to the search path.

    The {!oracle} packages the whole pipeline behind
    {!Absolver_nlp.Branch_prune.relax_oracle}: per node it screens
    constant cuts, runs the octagon middle tier, syncs the LP to the
    node's cut chain (checkpoint on branch, rollback on backtrack via
    the common-prefix delta), prunes on infeasibility and tightens
    bounds by OBBT near the root.

    Soundness contract: every cut is implied by tolerance-feasibility of
    the original atom set inside the box (cuts are slackened by
    [config.tol], all constants derive from outward-rounded interval
    arithmetic or exact dyadic float conversion).  A pruned box
    therefore contains no point the unrelaxed search could accept.
    Decisions are a function of the node's path, depth and box only, so
    sequential and parallel searches prune the same tree. *)

module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval
module Linexpr = Absolver_lp.Linexpr
module Expr = Absolver_nlp.Expr
module Box = Absolver_nlp.Box
module BP = Absolver_nlp.Branch_prune
module Telemetry = Absolver_telemetry.Telemetry

(** {1 Enclosures}

    Exposed for the soundness test-suite; solver clients only need
    {!oracle}. *)

type enclosure = {
  enc_lo : Linexpr.t option;  (** [enc_lo(x) <= e(x)] for all [x] in the box *)
  enc_hi : Linexpr.t option;  (** [e(x) <= enc_hi(x)] for all [x] in the box *)
  enc_rng : I.t;  (** interval range of [e] over the box *)
}
(** A sound linear bracket of an expression over a box.  A side is
    [None] only when no finite bound exists (infinite range and
    unbounded envelope machinery). *)

val enclose_expr : box:Box.t -> Expr.t -> enclosure
(** Enclosure of an expression over a box. *)

val cuts_of_rel : slack:Q.t -> box:Box.t -> Expr.rel -> Linexpr.cons list
(** The (slackened) cut rows implied by one atom over a box: any point
    of the box satisfying the atom within [slack] tolerance satisfies
    every returned row.  Rows keep the atom's [tag]. *)

(** {1 The relaxation oracle} *)

val oracle :
  ?telemetry:Telemetry.t ->
  config:BP.config ->
  nvars:int ->
  Expr.rel list ->
  BP.relax_oracle
(** [oracle ~config ~nvars rels] builds a fresh relaxation oracle for
    one [Branch_prune.solve] call over [rels] (with [nvars] real
    variables).  The oracle owns one warm LP session per worker domain
    and must not be shared across solve calls.  Honors
    [config.relax_octagon], [config.relax_obbt_depth],
    [config.relax_obbt_vars] and slackens cuts by [config.tol].  LP time
    is recorded into the [bp.relax.lp_time] histogram of [telemetry];
    cut/prune/tighten counts accumulate in the oracle's atomic counters
    (see {!Absolver_nlp.Branch_prune.relax_stats}). *)
