module Engine = Absolver_core.Engine

(* The DPLL(T) baselines as portfolio competitors.  Their own results map
   into the engine's vocabulary: rejections (nonlinear input) and
   out-of-memory are indecisive — they must lose the race rather than be
   mistaken for verdicts. *)
let of_baseline name solve =
  {
    Engine.cp_name = name;
    cp_solve =
      (fun ~budget ~telemetry:_ problem ->
        match solve ~budget problem with
        | Common.B_sat s -> Engine.R_sat s
        | Common.B_unsat -> Engine.R_unsat
        | Common.B_rejected why -> Engine.R_unknown ("rejected: " ^ why)
        | Common.B_out_of_memory -> Engine.R_unknown "out of memory"
        | Common.B_unknown why -> Engine.R_unknown why);
  }

let cvclite_competitor () =
  of_baseline Cvclite_like.name (fun ~budget p ->
      Cvclite_like.solve ~budget p)

let mathsat_competitor () =
  of_baseline Mathsat_like.name (fun ~budget p ->
      Mathsat_like.solve ~budget p)

let default_competitors ?registry ?options () =
  [
    Engine.engine_competitor ?registry ?options ();
    mathsat_competitor ();
    cvclite_competitor ();
  ]

let solve ?registry ?(options = Engine.default_options) problem =
  Engine.solve_portfolio ~options
    ~competitors:(default_competitors ?registry ~options ())
    problem
