(** Shared DPLL(T) core of the two comparison baselines: CDCL with an
    incremental exact simplex attached through the theory-callback
    interface, consistency checked at every propagation fixpoint, theory
    conflicts learnt as clauses.

    The optional [meter] charges a never-freed term database for every
    case split, asserted constraint and integer expansion — the
    CVC-Lite-like memory behaviour; without it the core is the
    MathSAT-like configuration. *)

val solve :
  ?meter:Budget.t ->
  ?max_conflicts:int ->
  ?deadline_seconds:float ->
  ?budget:Absolver_resource.Budget.t ->
  Absolver_core.Ab_problem.t ->
  Common.result
(** [deadline_seconds] is measured on the monotonic telemetry clock.
    [budget] is the shared resource governor, polled inside the CDCL
    search and the integer-repair simplex; exhaustion yields [B_unknown]
    with the typed reason — never an escaped exception. *)
