module Q = Absolver_numeric.Rational
module Types = Absolver_sat.Types
module Cdcl = Absolver_sat.Cdcl
module Expr = Absolver_nlp.Expr
module Linexpr = Absolver_lp.Linexpr
module Simplex = Absolver_lp.Simplex
module Ab_problem = Absolver_core.Ab_problem
module Solution = Absolver_core.Solution
module Clock = Absolver_telemetry.Telemetry.Clock
module Rbudget = Absolver_resource.Budget
module Err = Absolver_resource.Absolver_error

type frame = {
  pushed : bool; (* paired with a simplex push *)
  asserted : Linexpr.cons list;
  deferred : Expr.rel list list;
      (* groups of constraints at least one of which must fail (negated
         conjunctions and negated equalities, checked at full models) *)
}

let no_frame = { pushed = false; asserted = []; deferred = [] }

exception Deadline

(* The theory solver could not decide (its branch-and-bound cap or the
   shared budget fired inside [Simplex.solve_system]): neither a model nor
   a conflict — unwind to the boundary and answer unknown. *)
exception Theory_gave_up of Err.t

(* Memory metering (for the CVC-Lite-like configuration): a never-freed
   term database is charged per asserted constraint and per case split. *)
let charge meter n = match meter with None -> () | Some m -> Budget.alloc m n

let cons_size (c : Linexpr.cons) = 2 + List.length (Linexpr.coeffs c.Linexpr.expr)

let solve ?meter ?(max_conflicts = 50_000_000) ?(deadline_seconds = 3600.0)
    ?(budget = Rbudget.unlimited) problem =
  match Common.nonlinear_defs problem with
  | n when n > 0 ->
    Common.B_rejected
      (Printf.sprintf "%d nonlinear arithmetic constraint(s)" n)
  | _ ->
    let t_start = Clock.now () in
    let nvars_arith = Ab_problem.num_arith_vars problem in
    let simplex = Simplex.create () in
    Simplex.ensure_vars simplex nvars_arith;
    let cons_of_rel (r : Expr.rel) =
      match Expr.linearize r.Expr.expr with
      | Some le -> { Linexpr.expr = le; op = r.Expr.op; tag = r.Expr.tag }
      | None -> assert false (* nonlinear rejected above *)
    in
    (* Global bounds, asserted permanently. *)
    let bound_cons = List.map cons_of_rel (Ab_problem.bound_rels problem) in
    let bounds_ok =
      List.for_all
        (fun c -> Simplex.assert_cons simplex c = Simplex.Feasible)
        bound_cons
    in
    if not bounds_ok then Common.B_unsat
    else begin
      let int_vars =
        List.concat_map
          (fun (d : Ab_problem.def) ->
            if d.domain = Ab_problem.Dint then Expr.vars d.rel.Expr.expr else [])
          (Ab_problem.defs problem)
        |> List.sort_uniq compare
      in
      (* Theory state. *)
      let frames : frame Absolver_sat.Vec.t =
        Absolver_sat.Vec.create ~dummy:no_frame ()
      in
      let tassign = Array.make (max 1 (Ab_problem.num_bool_vars problem)) 0 in
      (* tassign.(v) = +1 assigned true, -1 false, 0 unassigned *)
      let pending = ref None in
      let final_model = ref None in
      let true_theory_lits () =
        Array.to_list
          (Array.mapi
             (fun v s ->
               if s = 0 || Ab_problem.find_defs problem v = [] then []
               else [ (if s > 0 then Types.pos v else Types.neg_of_var v) ])
             tassign)
        |> List.concat
      in
      let lits_of_tags tags =
        tags
        |> List.filter (fun tag -> tag >= 0)
        |> List.filter_map (fun tag ->
             if tag < Array.length tassign && tassign.(tag) <> 0 then
               Some
                 (if tassign.(tag) > 0 then Types.pos tag
                  else Types.neg_of_var tag)
             else None)
      in
      let on_assign lit =
        if Clock.now () -. t_start > deadline_seconds then raise Deadline;
        let v = Types.var_of lit in
        if v < Array.length tassign then
          tassign.(v) <- (if Types.is_pos lit then 1 else -1);
        let defs = if v < Array.length tassign then Ab_problem.find_defs problem v else [] in
        if defs = [] || !pending <> None then
          Absolver_sat.Vec.push frames no_frame
        else begin
          let rels = List.map (fun (d : Ab_problem.def) -> d.rel) defs in
          if Types.is_pos lit then begin
            (* Assert the whole conjunction. *)
            charge meter 16;
            Simplex.push simplex;
            let asserted = ref [] in
            let rec go = function
              | [] -> ()
              | r :: rest -> (
                let c = cons_of_rel r in
                charge meter (cons_size c);
                match Simplex.assert_cons simplex c with
                | Simplex.Feasible ->
                  asserted := c :: !asserted;
                  go rest
                | Simplex.Infeasible tags -> pending := Some (lits_of_tags tags))
            in
            go rels;
            Absolver_sat.Vec.push frames
              { pushed = true; asserted = !asserted; deferred = [] }
          end
          else begin
            match rels with
            | [ ({ Expr.op = Linexpr.Le | Linexpr.Lt | Linexpr.Ge | Linexpr.Gt; _ } as r) ] ->
              (* Single inequality: assert its negation. *)
              charge meter 16;
              Simplex.push simplex;
              let nr = match Expr.negate_rel r with [ x ] -> x | _ -> assert false in
              let c = cons_of_rel nr in
              charge meter (cons_size c);
              (match Simplex.assert_cons simplex c with
              | Simplex.Feasible ->
                Absolver_sat.Vec.push frames
                  { pushed = true; asserted = [ c ]; deferred = [] }
              | Simplex.Infeasible tags ->
                pending := Some (lits_of_tags tags);
                Absolver_sat.Vec.push frames
                  { pushed = true; asserted = []; deferred = [] })
            | _ ->
              (* Negated equality or negated conjunction: disjunctive, so
                 defer to the full-model check. *)
              Absolver_sat.Vec.push frames { no_frame with deferred = [ rels ] }
          end
        end
      in
      let on_backtrack keep =
        while Absolver_sat.Vec.size frames > keep do
          let f = Absolver_sat.Vec.pop frames in
          if f.pushed then Simplex.pop simplex
        done;
        (* Rebuild tassign lazily: entries beyond the kept trail are reset
           by scanning; cheaper bookkeeping would track the trail, but the
           solver only calls this on backtracks. *)
        pending := None
      in
      (* tassign must shrink with the trail; maintain a parallel stack. *)
      let assign_stack : int Absolver_sat.Vec.t =
        Absolver_sat.Vec.create ~dummy:(-1) ()
      in
      let on_assign' lit =
        Absolver_sat.Vec.push assign_stack (Types.var_of lit);
        on_assign lit
      in
      let on_backtrack' keep =
        while Absolver_sat.Vec.size assign_stack > keep do
          let v = Absolver_sat.Vec.pop assign_stack in
          if v < Array.length tassign then tassign.(v) <- 0
        done;
        on_backtrack keep
      in
      let structural = List.init nvars_arith Fun.id in
      let active_cons () =
        bound_cons
        @ Absolver_sat.Vec.fold (fun acc f -> f.asserted @ acc) [] frames
      in
      let check ~final =
        if Clock.now () -. t_start > deadline_seconds then raise Deadline;
        (* Proof/lemma recording per consistency check. *)
        charge meter 48;
        match !pending with
        | Some lits ->
          pending := None;
          Some lits
        | None -> (
          match Simplex.check simplex with
          | Simplex.Infeasible tags -> Some (lits_of_tags tags)
          | Simplex.Feasible ->
            if not final then None
            else begin
              let rational_model = Simplex.concrete_model simplex ~vars:structural in
              let env v =
                Option.value ~default:Q.zero (List.assoc_opt v rational_model)
              in
              (* Deferred disjunctions of violations. *)
              let deferred_groups =
                Absolver_sat.Vec.fold (fun acc f -> f.deferred @ acc) [] frames
              in
              let violated_group_ok group =
                List.exists
                  (fun (r : Expr.rel) ->
                    match Expr.eval_exact env r.Expr.expr with
                    | None -> false
                    | Some value -> (
                      match r.Expr.op with
                      | Linexpr.Le -> Q.gt value Q.zero
                      | Linexpr.Lt -> Q.geq value Q.zero
                      | Linexpr.Ge -> Q.lt value Q.zero
                      | Linexpr.Gt -> Q.leq value Q.zero
                      | Linexpr.Eq -> not (Q.is_zero value)))
                  group
              in
              let deferred_ok = List.for_all violated_group_ok deferred_groups in
              let int_ok model =
                List.for_all
                  (fun v ->
                    match List.assoc_opt v model with
                    | Some q -> Q.is_integer q
                    | None -> true)
                  int_vars
              in
              if deferred_ok && int_ok rational_model then begin
                final_model := Some rational_model;
                None
              end
              else if deferred_ok && int_vars <> [] then begin
                (* Integer repair: from-scratch branch and bound over the
                   active constraint set (the slow path of Table 3). *)
                let active = active_cons () in
                charge meter (64 * List.length active * max 1 (List.length int_vars));
                match Simplex.solve_system ~int_vars ~budget active with
                | Simplex.Sat m when
                    int_ok m
                    && List.for_all
                         (fun g ->
                           violated_group_ok g
                           ||
                           (* re-evaluate under the int model *)
                           let env v =
                             Option.value ~default:Q.zero (List.assoc_opt v m)
                           in
                           List.exists
                             (fun (r : Expr.rel) ->
                               match Expr.eval_exact env r.Expr.expr with
                               | None -> false
                               | Some value -> (
                                 match r.Expr.op with
                                 | Linexpr.Le -> Q.gt value Q.zero
                                 | Linexpr.Lt -> Q.geq value Q.zero
                                 | Linexpr.Ge -> Q.lt value Q.zero
                                 | Linexpr.Gt -> Q.leq value Q.zero
                                 | Linexpr.Eq -> not (Q.is_zero value)))
                             g)
                         deferred_groups ->
                  final_model := Some m;
                  None
                | Simplex.Sat _ | Simplex.Unsat _ ->
                  (* Coarse conflict: the full current theory assignment. *)
                  Some (true_theory_lits ())
                | Simplex.Unknown e ->
                  (* No conflict was proven — learning one here could flip
                     a satisfiable answer to unsat. Give up instead. *)
                  raise (Theory_gave_up e)
              end
              else Some (true_theory_lits ())
            end)
      in
      let theory =
        {
          Cdcl.t_on_assign = on_assign';
          t_on_backtrack = on_backtrack';
          t_check = (fun ~final -> check ~final);
        }
      in
      let solver = Cdcl.create ~theory () in
      Cdcl.ensure_vars solver (Ab_problem.num_bool_vars problem);
      List.iter (Cdcl.add_clause solver) (Ab_problem.clauses problem);
      match Cdcl.solve ~max_conflicts ~budget solver with
      | exception Deadline -> Common.B_unknown "deadline exceeded"
      | exception Budget.Simulated_out_of_memory -> Common.B_out_of_memory
      | exception Theory_gave_up e -> Common.B_unknown (Err.to_string e)
      | Types.Unsat -> Common.B_unsat
      | Types.Unknown -> (
        match Rbudget.tripped budget with
        | Some e -> Common.B_unknown (Err.to_string e)
        | None -> Common.B_unknown "conflict budget exhausted")
      | Types.Sat ->
        let bools = Cdcl.model solver in
        let bools =
          Array.init (Ab_problem.num_bool_vars problem) (fun v ->
              if v < Array.length bools then bools.(v) else false)
        in
        let arith = Array.make nvars_arith None in
        (match !final_model with
        | Some m ->
          List.iter
            (fun (v, q) -> if v < nvars_arith then arith.(v) <- Some (Solution.Exact q))
            m
        | None -> ());
        Common.B_sat (Solution.make ~bools ~arith ~certified:true)
    end
