let name = "MathSAT-like (tight DPLL(T))"

let solve ?max_conflicts ?deadline_seconds ?budget problem =
  Dpllt.solve ?max_conflicts ?deadline_seconds ?budget problem
