(** A CVC-Lite-like cooperating validity checker [1].

    Same lazy Boolean/linear cooperation as {!Mathsat_like}, but with the
    original's appetite: a never-freed term database is charged for every
    case split and assertion, and integer variables are expanded eagerly.
    On the Sudoku instances of Table 3 this exhausts the (simulated)
    memory budget, reproducing the paper's "–*" out-of-memory entries;
    on the small FISCHER instances it stays comfortably within budget.

    Nonlinear definitions are rejected, as the paper reports (Sec. 5.1). *)

val name : string

val default_memory_budget : int
(** Cells; roughly models a mid-2000s 1 GB workstation. *)

val solve :
  ?memory_budget:int ->
  ?max_conflicts:int ->
  ?deadline_seconds:float ->
  ?budget:Absolver_resource.Budget.t ->
  Absolver_core.Ab_problem.t ->
  Common.result
