(** The concrete solver portfolio: ABSOLVER's engine raced against the
    DPLL(T) baselines on separate domains (paper Sec. 5's comparison,
    run concurrently; first definitive verdict wins).

    The generic racing machinery is {!Absolver_core.Engine.solve_portfolio};
    this module only supplies competitors, because the baselines library
    depends on the core and not vice versa.

    Soundness under disagreement: a race only {e selects} a verdict, it
    never synthesizes one — each competitor is individually sound, so the
    first [R_sat]/[R_unsat] stands on its own.  Baselines reject
    nonlinear input ([B_rejected]) which maps to [R_unknown] and simply
    loses the race, so on nonlinear problems the portfolio degenerates to
    the engine alone plus two immediate losers. *)

val cvclite_competitor : unit -> Absolver_core.Engine.competitor
val mathsat_competitor : unit -> Absolver_core.Engine.competitor

val default_competitors :
  ?registry:Absolver_core.Registry.t ->
  ?options:Absolver_core.Engine.options ->
  unit ->
  Absolver_core.Engine.competitor list
(** Engine first (its verdict is kept when nobody is decisive), then
    MathSAT-like, then CVC-Lite-like. *)

val solve :
  ?registry:Absolver_core.Registry.t ->
  ?options:Absolver_core.Engine.options ->
  Absolver_core.Ab_problem.t ->
  Absolver_core.Engine.result * string option
(** Race the default competitors; returns the verdict and the winner's
    name ([None] when every competitor came back unknown). *)
