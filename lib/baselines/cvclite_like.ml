let name = "CVC-Lite-like (cooperating checker)"

let default_memory_budget = 12_000_000

let solve ?(memory_budget = default_memory_budget) ?max_conflicts
    ?deadline_seconds ?budget problem =
  let meter = Budget.create ~limit:memory_budget in
  Dpllt.solve ~meter ?max_conflicts ?deadline_seconds ?budget problem
