(** A MathSAT-like Boolean+linear solver [3]: lazy DPLL(T) with the
    linear solver tightly integrated into the CDCL loop (see {!Dpllt}).

    This is the comparison point of the paper's Tables 2 and 3. The
    "tight integration" the paper credits for MathSAT's speed (Sec. 5.2)
    is real here: bounds are asserted into an incremental simplex as the
    SAT trail grows, consistency is checked at every unit-propagation
    fixpoint, and theory conflicts are learnt as clauses — instead of
    ABSOLVER's enumerate-a-full-model-then-check loop.

    Faithful limitations of the original are kept: nonlinear definitions
    are rejected, and integrality is only enforced by a from-scratch
    branch-and-bound at full Boolean assignments (the slow path of
    Table 3). *)

val name : string

val solve :
  ?max_conflicts:int ->
  ?deadline_seconds:float ->
  ?budget:Absolver_resource.Budget.t ->
  Absolver_core.Ab_problem.t ->
  Common.result
