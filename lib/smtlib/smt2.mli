(** Incremental SMT-LIB 2 front-end.

    The paper predates SMT-LIB 2, but the solve server speaks it so that
    standard incremental scripts drive ABSOLVER directly: [set-logic],
    0-ary [declare-fun] / [declare-const] over [Bool]/[Int]/[Real],
    [assert], [push]/[pop], [check-sat], [get-model], [reset], [exit].
    Each [check-sat] lowers the current assertion stack to an SMT-LIB 1.2
    {!Ast.benchmark} and through {!To_ab.convert_full} to an AB-problem —
    the exact pipeline the batch path uses — then hands it to a
    caller-supplied {!check_fun} (the server plugs in a budgeted
    {!Absolver_core.Engine.solve}; tests plug in recorders).

    Error handling is session-preserving by contract: malformed input or
    an unsupported construct yields an [(error "...")] reply and leaves
    the assertion stack untouched — a protocol error must never take the
    daemon down (ISSUE 6 acceptance). *)

(** {1 Commands} *)

type command =
  | Set_logic of string
  | Set_option of string * string
  | Set_info of string * string
  | Get_info of string
  | Declare of string * Ast.sort  (** 0-ary [declare-fun] / [declare-const] *)
  | Assert_cmd of Parser.sexp
      (** body kept as an s-expression: elaboration needs the session's
          sort environment, so it happens at execution time *)
  | Push of int
  | Pop of int
  | Check_sat
  | Get_model
  | Get_assertions
  | Echo of string
  | Reset
  | Reset_assertions
  | Exit

val parse_command : Parser.sexp -> (command, string) result
(** Shape-checks one top-level form. Unsupported or malformed commands
    come back as [Error] with a human-readable reason. *)

val split_complete : string -> string list * string
(** Stream framing: split a buffer into the complete top-level forms it
    contains (parenthesis-balanced, string literals and [;] comments
    respected) and the unconsumed remainder.  The server feeds socket
    reads through this to know when a command is whole. *)

(** {1 Sessions} *)

type session

val create : unit -> session
(** Fresh session: empty assertion stack, one global frame, no logic. *)

type check_result =
  | C_sat of Absolver_core.Solution.t
  | C_unsat
  | C_unknown of string

type check_fun = Absolver_core.Ab_problem.t -> check_result
(** How [check-sat] decides the lowered problem. *)

val engine_check :
  ?registry:Absolver_core.Registry.t ->
  ?options:Absolver_core.Engine.options ->
  unit ->
  check_fun
(** The default decision procedure: {!Absolver_core.Engine.solve} with
    the given registry/options (run statistics are discarded — the
    server gathers its own telemetry around the call). *)

type reply =
  | R_success
  | R_sat
  | R_unsat
  | R_unknown of string  (** printed ["unknown"]; reason kept for stats *)
  | R_model of string
  | R_info of string
  | R_echo of string
  | R_error of string
  | R_exit

val execute : session -> check:check_fun -> command -> reply
(** Run one command against the session.  Never raises: elaboration and
    conversion failures become {!R_error} and leave the stack as it was. *)

val render : session -> reply -> string option
(** The reply's wire form, one line, or [None] when nothing is printed
    ([R_success] with [print-success] off — the default — and [R_exit]).
    Errors print as [(error "reason")] with quotes doubled, SMT-LIB
    style. *)

val run_string : session -> check:check_fun -> string -> string list * bool
(** Convenience driver for tests and [--script] use: split the input
    into forms, parse and execute each in order (recovering from
    per-form errors), stop after [exit].  Returns the rendered reply
    lines and whether [exit] was reached.  Trailing bytes that never
    completed a form yield a final [(error "incomplete input")]. *)
