(** Back half of the paper's benchmark conversion: SMT-LIB 1.2 benchmark →
    AB-problem in ABSOLVER's extended-DIMACS representation.

    Comparison atoms become definitional Boolean variables; equality atoms
    are split into a [<=] and a [>=] definition (two variables constrained
    to their conjunction) so that negated equalities stay branch-free in
    the engine; propositional predicates map to plain Boolean variables;
    the Boolean structure is clausified with Tseitin. *)

val convert : Ast.benchmark -> (Absolver_core.Ab_problem.t, string) result

val convert_split_eq :
  split_eq:bool -> Ast.benchmark -> (Absolver_core.Ab_problem.t, string) result
(** [split_eq:false] keeps equality atoms as single [Eq] definitions
    (exercises the engine's negated-equation branching; ablation). *)

val convert_full :
  ?split_eq:bool ->
  Ast.benchmark ->
  (Absolver_core.Ab_problem.t * (string * int) list, string) result
(** Like {!convert_split_eq} (default [split_eq:true]) but also returns
    the predicate map — each declared propositional predicate paired with
    the Boolean variable it became, in declaration order.  {!Smt2} uses
    it to read Boolean values back out of a solution for [(get-model)]. *)
