module Q = Absolver_numeric.Rational

type sexp = Atom of string | List of sexp list

exception Err of string

let failf fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = ';' then begin
      (* comment to end of line *)
      while !i < n && text.[!i] <> '\n' do incr i done
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then begin
      toks := "(" :: !toks;
      incr i
    end
    else if c = ')' then begin
      toks := ")" :: !toks;
      incr i
    end
    else if c = '"' then begin
      (* SMT-LIB 2 string literal: kept as one atom, quotes included;
         an embedded [""] escapes a quote character. *)
      let start = !i in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if text.[!i] = '"' then
          if !i + 1 < n && text.[!i + 1] = '"' then i := !i + 2
          else begin
            closed := true;
            incr i
          end
        else incr i
      done;
      if not !closed then failf "unterminated string literal";
      toks := String.sub text start (!i - start) :: !toks
    end
    else begin
      let start = !i in
      while
        !i < n
        &&
        let d = text.[!i] in
        d <> ' ' && d <> '\t' && d <> '\n' && d <> '\r' && d <> '(' && d <> ')'
        && d <> ';'
      do
        incr i
      done;
      toks := String.sub text start (!i - start) :: !toks
    end
  done;
  List.rev !toks

let parse_sexps text =
  match
    let toks = ref (tokenize text) in
    let rec parse_one () =
      match !toks with
      | [] -> failf "unexpected end of input"
      | "(" :: rest ->
        toks := rest;
        let items = ref [] in
        let rec loop () =
          match !toks with
          | ")" :: rest ->
            toks := rest;
            List (List.rev !items)
          | [] -> failf "unclosed parenthesis"
          | _ ->
            items := parse_one () :: !items;
            loop ()
        in
        loop ()
      | ")" :: _ -> failf "unexpected ')'"
      | atom :: rest ->
        toks := rest;
        Atom atom
    in
    let acc = ref [] in
    while !toks <> [] do
      acc := parse_one () :: !acc
    done;
    List.rev !acc
  with
  | sexps -> Ok sexps
  | exception Err msg -> Error msg

(* ------------------------------------------------------------------ *)

let is_number s =
  s <> ""
  &&
  let s = if s.[0] = '-' || s.[0] = '+' then String.sub s 1 (String.length s - 1) else s in
  s <> "" && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '/') s

let rec term_of_sexp preds s =
  match s with
  | Atom a when is_number a -> Ast.T_const (Q.of_decimal_string a)
  | Atom a -> Ast.T_var a
  | List [ Atom "~"; t ] -> Ast.T_neg (term_of_sexp preds t)
  | List (Atom "+" :: ts) -> Ast.T_add (List.map (term_of_sexp preds) ts)
  | List [ Atom "-"; a; b ] -> Ast.T_sub (term_of_sexp preds a, term_of_sexp preds b)
  | List [ Atom "-"; a ] -> Ast.T_neg (term_of_sexp preds a)
  | List [ Atom "*"; a; b ] -> Ast.T_mul (term_of_sexp preds a, term_of_sexp preds b)
  | List (Atom "*" :: a :: rest) ->
    List.fold_left
      (fun acc t -> Ast.T_mul (acc, term_of_sexp preds t))
      (term_of_sexp preds a) rest
  | List [ Atom "/"; a; b ] -> Ast.T_div (term_of_sexp preds a, term_of_sexp preds b)
  | _ -> failf "unsupported term"

let rec formula_of_sexp preds s =
  match s with
  | Atom "true" -> Ast.F_true
  | Atom "false" -> Ast.F_false
  | Atom p -> Ast.F_pred p
  | List [ Atom p ] when List.mem p preds -> Ast.F_pred p
  | List (Atom "and" :: fs) -> Ast.F_and (List.map (formula_of_sexp preds) fs)
  | List (Atom "or" :: fs) -> Ast.F_or (List.map (formula_of_sexp preds) fs)
  | List [ Atom "not"; f ] -> Ast.F_not (formula_of_sexp preds f)
  | List [ Atom "implies"; a; b ] | List [ Atom "=>"; a; b ] ->
    Ast.F_implies (formula_of_sexp preds a, formula_of_sexp preds b)
  | List [ Atom "iff"; a; b ] | List [ Atom "<=>"; a; b ] ->
    Ast.F_iff (formula_of_sexp preds a, formula_of_sexp preds b)
  | List [ Atom "xor"; a; b ] ->
    Ast.F_xor (formula_of_sexp preds a, formula_of_sexp preds b)
  | List [ Atom "<"; a; b ] -> cmp preds Ast.Lt a b
  | List [ Atom "<="; a; b ] -> cmp preds Ast.Le a b
  | List [ Atom ">"; a; b ] -> cmp preds Ast.Gt a b
  | List [ Atom ">="; a; b ] -> cmp preds Ast.Ge a b
  | List [ Atom "="; a; b ] -> cmp preds Ast.Eq a b
  | List _ -> failf "unsupported formula"

and cmp preds c a b = Ast.F_cmp (c, term_of_sexp preds a, term_of_sexp preds b)

let parse_benchmark text =
  match
    match parse_sexps text with
    | Error e -> raise (Err e)
    | Ok [ List (Atom "benchmark" :: Atom name :: attrs) ] ->
      let logic = ref "unknown" in
      let status = ref `Unknown in
      let extrafuns = ref [] in
      let extrapreds = ref [] in
      let assumptions = ref [] in
      let formula = ref None in
      let rec eat = function
        | [] -> ()
        | Atom ":logic" :: Atom l :: rest ->
          logic := l;
          eat rest
        | Atom ":status" :: Atom s :: rest ->
          status :=
            (match s with "sat" -> `Sat | "unsat" -> `Unsat | _ -> `Unknown);
          eat rest
        | Atom ":extrafuns" :: List decls :: rest ->
          List.iter
            (fun d ->
              match d with
              | List [ Atom n; Atom srt ] ->
                let sort =
                  match srt with
                  | "Real" -> Ast.S_real
                  | "Int" -> Ast.S_int
                  | "Bool" -> Ast.S_bool
                  | _ -> failf "unknown sort %s" srt
                in
                extrafuns := (n, sort) :: !extrafuns
              | _ -> failf "malformed extrafuns entry")
            decls;
          eat rest
        | Atom ":extrapreds" :: List decls :: rest ->
          List.iter
            (fun d ->
              match d with
              | List [ Atom n ] -> extrapreds := n :: !extrapreds
              | Atom n -> extrapreds := n :: !extrapreds
              | _ -> failf "malformed extrapreds entry")
            decls;
          eat rest
        | Atom ":assumption" :: f :: rest ->
          assumptions := formula_of_sexp !extrapreds f :: !assumptions;
          eat rest
        | Atom ":formula" :: f :: rest ->
          formula := Some (formula_of_sexp !extrapreds f);
          eat rest
        | Atom ":source" :: _ :: rest | Atom ":notes" :: _ :: rest -> eat rest
        | Atom a :: _ -> failf "unknown attribute %s" a
        | List _ :: _ -> failf "unexpected list at attribute position"
      in
      eat attrs;
      (match !formula with
      | None -> failf "benchmark has no :formula"
      | Some f ->
        {
          Ast.name;
          logic = !logic;
          extrafuns = List.rev !extrafuns;
          extrapreds = List.rev !extrapreds;
          status = !status;
          assumptions = List.rev !assumptions;
          formula = f;
        })
    | Ok _ -> failf "expected a single (benchmark ...) form"
  with
  | b -> Ok b
  | exception Err msg -> Error msg

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    parse_benchmark content
