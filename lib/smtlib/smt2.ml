module Q = Absolver_numeric.Rational
module Bigint = Absolver_numeric.Bigint
module Ab_problem = Absolver_core.Ab_problem
module Solution = Absolver_core.Solution
module Engine = Absolver_core.Engine

exception Err of string

let failf fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

type command =
  | Set_logic of string
  | Set_option of string * string
  | Set_info of string * string
  | Get_info of string
  | Declare of string * Ast.sort
  | Assert_cmd of Parser.sexp
  | Push of int
  | Pop of int
  | Check_sat
  | Get_model
  | Get_assertions
  | Echo of string
  | Reset
  | Reset_assertions
  | Exit

let sort_of_string = function
  | "Bool" -> Ast.S_bool
  | "Int" -> Ast.S_int
  | "Real" -> Ast.S_real
  | s -> failf "unknown sort %s" s

let nat_of_atom what = function
  | Parser.Atom a -> (
    match int_of_string_opt a with
    | Some n when n >= 0 -> n
    | _ -> failf "%s expects a numeral" what)
  | Parser.List _ -> failf "%s expects a numeral" what

let parse_command (s : Parser.sexp) : (command, string) result =
  match
    match s with
    | Parser.List [ Parser.Atom "set-logic"; Parser.Atom l ] -> Set_logic l
    | Parser.List [ Parser.Atom "set-option"; Parser.Atom k; Parser.Atom v ] ->
      Set_option (k, v)
    | Parser.List [ Parser.Atom "set-info"; Parser.Atom k ] -> Set_info (k, "")
    | Parser.List [ Parser.Atom "set-info"; Parser.Atom k; Parser.Atom v ] ->
      Set_info (k, v)
    | Parser.List [ Parser.Atom "get-info"; Parser.Atom k ] -> Get_info k
    | Parser.List
        [ Parser.Atom "declare-fun"; Parser.Atom n; Parser.List args;
          Parser.Atom srt ] ->
      if args <> [] then
        failf "only constant (0-ary) declarations are supported"
      else Declare (n, sort_of_string srt)
    | Parser.List [ Parser.Atom "declare-const"; Parser.Atom n; Parser.Atom srt ]
      ->
      Declare (n, sort_of_string srt)
    | Parser.List [ Parser.Atom "assert"; f ] -> Assert_cmd f
    | Parser.List [ Parser.Atom "push" ] -> Push 1
    | Parser.List [ Parser.Atom "push"; n ] -> Push (nat_of_atom "push" n)
    | Parser.List [ Parser.Atom "pop" ] -> Pop 1
    | Parser.List [ Parser.Atom "pop"; n ] -> Pop (nat_of_atom "pop" n)
    | Parser.List [ Parser.Atom "check-sat" ] -> Check_sat
    | Parser.List [ Parser.Atom "get-model" ] -> Get_model
    | Parser.List [ Parser.Atom "get-assertions" ] -> Get_assertions
    | Parser.List [ Parser.Atom "echo"; Parser.Atom s ] -> Echo s
    | Parser.List [ Parser.Atom "reset" ] -> Reset
    | Parser.List [ Parser.Atom "reset-assertions" ] -> Reset_assertions
    | Parser.List [ Parser.Atom "exit" ] -> Exit
    | Parser.List (Parser.Atom cmd :: _) -> failf "unsupported command %s" cmd
    | Parser.Atom a -> failf "expected a command, got %s" a
    | Parser.List _ -> failf "malformed command"
  with
  | c -> Ok c
  | exception Err msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Stream framing                                                      *)
(* ------------------------------------------------------------------ *)

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let split_complete text =
  let n = String.length text in
  let forms = ref [] in
  let i = ref 0 in
  let consumed = ref 0 in
  (* Scan one span at a time; [consumed] only advances past whole forms
     (and the whitespace/comments before them), so a split mid-form
     leaves the prefix intact for the next read to extend. *)
  (try
     while !i < n do
       (* skip inter-form whitespace and comments *)
       let progressed = ref true in
       while !progressed do
         progressed := false;
         while !i < n && is_ws text.[!i] do
           incr i;
           progressed := true
         done;
         if !i < n && text.[!i] = ';' then begin
           while !i < n && text.[!i] <> '\n' do incr i done;
           progressed := true
         end
       done;
       consumed := !i;
       if !i < n then
         if text.[!i] = '(' then begin
           let start = !i in
           let depth = ref 0 in
           let in_string = ref false in
           let fin = ref false in
           while (not !fin) && !i < n do
             let c = text.[!i] in
             if !in_string then begin
               if c = '"' then
                 if !i + 1 < n && text.[!i + 1] = '"' then incr i
                 else in_string := false
             end
             else if c = '"' then in_string := true
             else if c = ';' then
               while !i < n && text.[!i] <> '\n' do incr i done
             else if c = '(' then incr depth
             else if c = ')' then begin
               decr depth;
               if !depth = 0 then fin := true
             end;
             if !i < n then incr i
           done;
           if !fin then begin
             forms := String.sub text start (!i - start) :: !forms;
             consumed := !i
           end
           else raise Exit (* incomplete form: stop, keep as remainder *)
         end
         else begin
           (* bare top-level atom: complete once a delimiter follows
              (otherwise the next read may extend it) *)
           let start = !i in
           while
             !i < n
             && (not (is_ws text.[!i]))
             && text.[!i] <> '(' && text.[!i] <> ')' && text.[!i] <> ';'
           do
             incr i
           done;
           if !i < n then begin
             forms := String.sub text start (!i - start) :: !forms;
             consumed := !i
           end
           else raise Exit
         end
     done
   with Exit -> ());
  (List.rev !forms, String.sub text !consumed (n - !consumed))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type frame = {
  mutable decls : (string * Ast.sort) list;  (* newest first *)
  mutable asserts : Ast.formula list;  (* newest first *)
}

let fresh_frame () = { decls = []; asserts = [] }

type model_snapshot = {
  m_decls : (string * Ast.sort) list;  (* declaration order *)
  m_problem : Ab_problem.t;
  m_solution : Solution.t;
  m_preds : (string * int) list;
}

type session = {
  mutable frames : frame list;  (* top first; never empty *)
  mutable logic : string option;
  mutable print_success : bool;
  mutable model : model_snapshot option;
}

let create () =
  { frames = [ fresh_frame () ]; logic = None; print_success = false;
    model = None }

type check_result =
  | C_sat of Solution.t
  | C_unsat
  | C_unknown of string

type check_fun = Ab_problem.t -> check_result

let engine_check ?registry ?options () problem =
  match Engine.solve ?registry ?options problem with
  | Engine.R_sat sol, _ -> C_sat sol
  | Engine.R_unsat, _ -> C_unsat
  | Engine.R_unknown why, _ -> C_unknown why

type reply =
  | R_success
  | R_sat
  | R_unsat
  | R_unknown of string
  | R_model of string
  | R_info of string
  | R_echo of string
  | R_error of string
  | R_exit

(* Declarations / assertions in their original order, bottom frame
   first (frames store newest-first, the frame list is top-first). *)
let decls_in_order s =
  List.concat (List.rev_map (fun f -> List.rev f.decls) s.frames)

let asserts_in_order s =
  List.concat (List.rev_map (fun f -> List.rev f.asserts) s.frames)

let find_decl s name =
  let rec go = function
    | [] -> None
    | f :: rest -> (
      match List.assoc_opt name f.decls with
      | Some srt -> Some srt
      | None -> go rest)
  in
  go s.frames

(* ------------------------------------------------------------------ *)
(* Formula elaboration                                                 *)
(*                                                                     *)
(* SMT-LIB 2 terms are sort-checked against the session's declarations *)
(* and lowered to the 1.2 AST: Bool constants become predicates, [=]   *)
(* resolves to iff on Bool and to an equation on arithmetic, [let] is  *)
(* inlined (parallel binding, as the standard requires), [!]           *)
(* annotations are stripped.                                           *)
(* ------------------------------------------------------------------ *)

type value = V_term of Ast.term | V_form of Ast.formula

let as_form = function
  | V_form f -> f
  | V_term _ -> failf "expected a Bool expression, got an arithmetic one"

let as_term = function
  | V_term t -> t
  | V_form _ -> failf "expected an arithmetic expression, got a Bool one"

let cmp_of = function
  | "<" -> Ast.Lt
  | "<=" -> Ast.Le
  | ">" -> Ast.Gt
  | ">=" -> Ast.Ge
  | _ -> assert false

(* chainable comparison: (< a b c) = a<b and b<c *)
let chain mk = function
  | a :: (_ :: _ as rest) ->
    let conj =
      List.rev
        (fst
           (List.fold_left
              (fun (acc, prev) x -> (mk prev x :: acc, x))
              ([], a) rest))
    in
    (match conj with [ f ] -> f | fs -> Ast.F_and fs)
  | _ -> failf "comparison needs at least two arguments"

let rec elab s env (x : Parser.sexp) : value =
  match x with
  | Parser.Atom "true" -> V_form Ast.F_true
  | Parser.Atom "false" -> V_form Ast.F_false
  | Parser.Atom a when Parser.is_number a ->
    V_term (Ast.T_const (Q.of_decimal_string a))
  | Parser.Atom a -> (
    match List.assoc_opt a env with
    | Some v -> v
    | None -> (
      match find_decl s a with
      | Some Ast.S_bool -> V_form (Ast.F_pred a)
      | Some _ -> V_term (Ast.T_var a)
      | None -> failf "unknown constant %s" a))
  | Parser.List (Parser.Atom "!" :: body :: _attrs) -> elab s env body
  | Parser.List [ Parser.Atom "let"; Parser.List binds; body ] ->
    let env' =
      List.fold_left
        (fun acc b ->
          match b with
          | Parser.List [ Parser.Atom n; v ] -> (n, elab s env v) :: acc
          | _ -> failf "malformed let binding")
        env binds
    in
    elab s env' body
  | Parser.List (Parser.Atom "and" :: args) ->
    V_form (Ast.F_and (List.map (fun a -> as_form (elab s env a)) args))
  | Parser.List (Parser.Atom "or" :: args) ->
    V_form (Ast.F_or (List.map (fun a -> as_form (elab s env a)) args))
  | Parser.List [ Parser.Atom "not"; a ] ->
    V_form (Ast.F_not (as_form (elab s env a)))
  | Parser.List (Parser.Atom "=>" :: args) -> (
    (* right-associative n-ary implication *)
    match List.rev_map (fun a -> as_form (elab s env a)) args with
    | last :: (_ :: _ as before) ->
      V_form (List.fold_left (fun acc f -> Ast.F_implies (f, acc)) last before)
    | _ -> failf "=> needs at least two arguments")
  | Parser.List (Parser.Atom "xor" :: a :: (_ :: _ as rest)) ->
    V_form
      (List.fold_left
         (fun acc x -> Ast.F_xor (acc, as_form (elab s env x)))
         (as_form (elab s env a))
         rest)
  | Parser.List [ Parser.Atom "ite"; c; a; b ] -> (
    let c = as_form (elab s env c) in
    match (elab s env a, elab s env b) with
    | V_form fa, V_form fb ->
      V_form
        (Ast.F_or [ Ast.F_and [ c; fa ]; Ast.F_and [ Ast.F_not c; fb ] ])
    | _ -> failf "arithmetic ite is not supported")
  | Parser.List (Parser.Atom (("<" | "<=" | ">" | ">=") as op) :: args) ->
    let ts = List.map (fun a -> as_term (elab s env a)) args in
    V_form (chain (fun a b -> Ast.F_cmp (cmp_of op, a, b)) ts)
  | Parser.List (Parser.Atom "=" :: (_ :: _ :: _ as args)) -> (
    match List.map (elab s env) args with
    | V_form _ :: _ as vs ->
      V_form (chain (fun a b -> Ast.F_iff (a, b)) (List.map as_form vs))
    | vs ->
      V_form (chain (fun a b -> Ast.F_cmp (Ast.Eq, a, b)) (List.map as_term vs)))
  | Parser.List (Parser.Atom "distinct" :: (_ :: _ :: _ as args)) -> (
    match List.map (elab s env) args with
    | [ V_form a; V_form b ] -> V_form (Ast.F_xor (a, b))
    | V_form _ :: _ -> failf "distinct over more than two Bools"
    | vs ->
      let ts = List.map as_term vs in
      let rec pairs = function
        | [] -> []
        | t :: rest ->
          List.map (fun u -> Ast.F_not (Ast.F_cmp (Ast.Eq, t, u))) rest
          @ pairs rest
      in
      V_form
        (match pairs ts with [ f ] -> f | fs -> Ast.F_and fs))
  | Parser.List (Parser.Atom "+" :: (_ :: _ as args)) ->
    V_term (Ast.T_add (List.map (fun a -> as_term (elab s env a)) args))
  | Parser.List [ Parser.Atom "-"; a ] ->
    V_term (Ast.T_neg (as_term (elab s env a)))
  | Parser.List (Parser.Atom "-" :: a :: (_ :: _ as rest)) ->
    V_term
      (List.fold_left
         (fun acc x -> Ast.T_sub (acc, as_term (elab s env x)))
         (as_term (elab s env a))
         rest)
  | Parser.List (Parser.Atom "*" :: a :: (_ :: _ as rest)) ->
    V_term
      (List.fold_left
         (fun acc x -> Ast.T_mul (acc, as_term (elab s env x)))
         (as_term (elab s env a))
         rest)
  | Parser.List (Parser.Atom "/" :: a :: (_ :: _ as rest)) ->
    V_term
      (List.fold_left
         (fun acc x -> Ast.T_div (acc, as_term (elab s env x)))
         (as_term (elab s env a))
         rest)
  | Parser.List [ Parser.Atom p ] when find_decl s p = Some Ast.S_bool ->
    V_form (Ast.F_pred p)
  | Parser.List (Parser.Atom op :: _) -> failf "unsupported operator %s" op
  | Parser.List _ -> failf "unsupported expression"

let formula_of_sexp s x = as_form (elab s [] x)

(* ------------------------------------------------------------------ *)
(* check-sat / get-model                                               *)
(* ------------------------------------------------------------------ *)

let benchmark_of s =
  let decls = decls_in_order s in
  {
    Ast.name = "incremental";
    logic = Option.value ~default:"QF_LRA" s.logic;
    extrafuns = List.filter (fun (_, srt) -> srt <> Ast.S_bool) decls;
    extrapreds =
      List.filter_map
        (fun (n, srt) -> if srt = Ast.S_bool then Some n else None)
        decls;
    status = `Unknown;
    assumptions = asserts_in_order s;
    formula = Ast.F_true;
  }

let rat_sexp q =
  let mag q =
    if Q.is_integer q then Bigint.to_string (Q.num q)
    else
      Printf.sprintf "(/ %s %s)"
        (Bigint.to_string (Q.num q))
        (Bigint.to_string (Q.den q))
  in
  if Q.sign q < 0 then Printf.sprintf "(- %s)" (mag (Q.neg q)) else mag q

let value_sexp snapshot name sort =
  match sort with
  | Ast.S_bool -> (
    match List.assoc_opt name snapshot.m_preds with
    | Some v when v < Array.length snapshot.m_solution.Solution.bools ->
      if snapshot.m_solution.Solution.bools.(v) then "true" else "false"
    | _ -> "false")
  | Ast.S_int | Ast.S_real -> (
    match Ab_problem.arith_var_index snapshot.m_problem name with
    | Some i when i < Array.length snapshot.m_solution.Solution.arith -> (
      match snapshot.m_solution.Solution.arith.(i) with
      | Some (Solution.Exact q) -> rat_sexp q
      | Some (Solution.Approx f) -> rat_sexp (Q.of_float f)
      | None -> "0")
    | _ -> "0")

let render_model snapshot =
  let b = Buffer.create 128 in
  Buffer.add_string b "(model";
  List.iter
    (fun (name, sort) ->
      Buffer.add_string b
        (Printf.sprintf " (define-fun %s () %s %s)" name
           (match sort with
           | Ast.S_bool -> "Bool"
           | Ast.S_int -> "Int"
           | Ast.S_real -> "Real")
           (value_sexp snapshot name sort)))
    snapshot.m_decls;
  Buffer.add_string b ")";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let info_reply = function
  | ":name" -> R_info "(:name \"absolver\")"
  | ":version" -> R_info "(:version \"1.0\")"
  | ":authors" -> R_info "(:authors \"the absolver reproduction\")"
  | ":error-behavior" -> R_info "(:error-behavior continued-execution)"
  | k -> R_error (Printf.sprintf "unsupported get-info key %s" k)

let top s = List.hd s.frames

let execute s ~check (cmd : command) : reply =
  match
    match cmd with
    | Set_logic l ->
      s.logic <- Some l;
      R_success
    | Set_option (":print-success", v) ->
      s.print_success <- v = "true";
      R_success
    | Set_option _ | Set_info _ -> R_success
    | Get_info k -> info_reply k
    | Declare (name, sort) ->
      if find_decl s name <> None then
        failf "%s is already declared" name
      else begin
        (top s).decls <- (name, sort) :: (top s).decls;
        s.model <- None;
        R_success
      end
    | Assert_cmd body ->
      let f = formula_of_sexp s body in
      (top s).asserts <- f :: (top s).asserts;
      s.model <- None;
      R_success
    | Push n ->
      for _ = 1 to n do
        s.frames <- fresh_frame () :: s.frames
      done;
      s.model <- None;
      R_success
    | Pop n ->
      if n >= List.length s.frames then
        failf "pop below the assertion stack"
      else begin
        for _ = 1 to n do
          s.frames <- List.tl s.frames
        done;
        s.model <- None;
        R_success
      end
    | Check_sat -> (
      match To_ab.convert_full (benchmark_of s) with
      | Error e -> failf "conversion failed: %s" e
      | Ok (problem, preds) -> (
        match check problem with
        | C_sat sol ->
          s.model <-
            Some
              {
                m_decls = decls_in_order s;
                m_problem = problem;
                m_solution = sol;
                m_preds = preds;
              };
          R_sat
        | C_unsat ->
          s.model <- None;
          R_unsat
        | C_unknown why ->
          s.model <- None;
          R_unknown why))
    | Get_model -> (
      match s.model with
      | Some snap -> R_model (render_model snap)
      | None -> failf "model is not available")
    | Get_assertions ->
      let fs = asserts_in_order s in
      R_info
        (Printf.sprintf "(%s)"
           (String.concat " "
              (List.map (Format.asprintf "%a" Ast.pp_formula) fs)))
    | Echo msg ->
      R_echo (if String.length msg > 0 && msg.[0] = '"' then msg
              else Printf.sprintf "%S" msg)
    | Reset ->
      s.frames <- [ fresh_frame () ];
      s.logic <- None;
      s.print_success <- false;
      s.model <- None;
      R_success
    | Reset_assertions ->
      (* pop every level; level-0 declarations survive, assertions do not *)
      let globals =
        match List.rev s.frames with g :: _ -> g.decls | [] -> []
      in
      s.frames <- [ { decls = globals; asserts = [] } ];
      s.model <- None;
      R_success
    | Exit -> R_exit
  with
  | r -> r
  | exception Err msg -> R_error msg

let escape msg =
  let b = Buffer.create (String.length msg + 2) in
  String.iter
    (fun c -> if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
    msg;
  Buffer.contents b

let render s = function
  | R_success -> if s.print_success then Some "success" else None
  | R_sat -> Some "sat"
  | R_unsat -> Some "unsat"
  | R_unknown _ -> Some "unknown"
  | R_model m -> Some m
  | R_info i -> Some i
  | R_echo e -> Some e
  | R_error msg -> Some (Printf.sprintf "(error \"%s\")" (escape msg))
  | R_exit -> None

let run_string s ~check text =
  let forms, rest = split_complete text in
  let out = ref [] in
  let exited = ref false in
  let emit r = match render s r with Some l -> out := l :: !out | None -> () in
  List.iter
    (fun form ->
      if not !exited then
        match Parser.parse_sexps form with
        | Error e -> emit (R_error e)
        | Ok sexps ->
          List.iter
            (fun sx ->
              if not !exited then
                match parse_command sx with
                | Error e -> emit (R_error e)
                | Ok cmd -> (
                  match execute s ~check cmd with
                  | R_exit -> exited := true
                  | r -> emit r))
            sexps)
    forms;
  if (not !exited) && String.trim rest <> "" then
    emit (R_error "incomplete input");
  (List.rev !out, !exited)
