module Q = Absolver_numeric.Rational
module Expr = Absolver_nlp.Expr
module Linexpr = Absolver_lp.Linexpr
module Tseitin = Absolver_sat.Tseitin
module Ab_problem = Absolver_core.Ab_problem

exception Err of string

let rec expr_of_term problem (t : Ast.term) : Expr.t =
  match t with
  | Ast.T_var name -> Expr.var (Ab_problem.intern_arith_var problem name)
  | Ast.T_const q -> Expr.const q
  | Ast.T_add ts -> Expr.sum (List.map (expr_of_term problem) ts)
  | Ast.T_sub (a, b) -> Expr.sub (expr_of_term problem a) (expr_of_term problem b)
  | Ast.T_neg a -> Expr.neg (expr_of_term problem a)
  | Ast.T_mul (a, b) -> Expr.mul (expr_of_term problem a) (expr_of_term problem b)
  | Ast.T_div (a, b) -> Expr.div (expr_of_term problem a) (expr_of_term problem b)

let op_of_cmp = function
  | Ast.Lt -> Linexpr.Lt
  | Ast.Le -> Linexpr.Le
  | Ast.Gt -> Linexpr.Gt
  | Ast.Ge -> Linexpr.Ge
  | Ast.Eq -> Linexpr.Eq

let convert_full ?(split_eq = true) (b : Ast.benchmark) =
  match
    let problem = Ab_problem.create () in
    let int_sorts = Hashtbl.create 8 in
    List.iter
      (fun (n, sort) ->
        let v = Ab_problem.intern_arith_var problem n in
        if sort = Ast.S_int then Hashtbl.replace int_sorts v ())
      (List.filter (fun (_, s) -> s <> Ast.S_bool) b.Ast.extrafuns);
    let next_bool = ref 0 in
    let fresh () =
      let v = !next_bool in
      incr next_bool;
      v
    in
    (* Propositional predicates. *)
    let preds = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.replace preds p (fresh ())) b.Ast.extrapreds;
    (* Arithmetic atoms, shared structurally. *)
    let atoms = Hashtbl.create 16 in
    let domain_of e =
      let vars = Expr.vars e in
      if vars <> [] && List.for_all (fun v -> Hashtbl.mem int_sorts v) vars then
        Ab_problem.Dint
      else Ab_problem.Dreal
    in
    let atom_var expr op =
      let key = Format.asprintf "%s|%a" (Expr.to_string expr) Linexpr.pp_op op in
      match Hashtbl.find_opt atoms key with
      | Some v -> v
      | None ->
        let v = fresh () in
        Hashtbl.add atoms key v;
        Ab_problem.define problem ~bool_var:v ~domain:(domain_of expr)
          { Expr.expr; op; tag = v };
        v
    in
    let rec conv (f : Ast.formula) : Tseitin.formula =
      match f with
      | Ast.F_true -> Tseitin.True
      | Ast.F_false -> Tseitin.False
      | Ast.F_pred p -> (
        match Hashtbl.find_opt preds p with
        | Some v -> Tseitin.atom v
        | None -> raise (Err (Printf.sprintf "undeclared predicate %s" p)))
      | Ast.F_cmp (c, a, bt) ->
        let e = Expr.sub (expr_of_term problem a) (expr_of_term problem bt) in
        if c = Ast.Eq && split_eq then
          (* eq  <=>  (e <= 0) and (e >= 0): keeps negated equalities
             branch-free downstream. *)
          Tseitin.and_
            [
              Tseitin.atom (atom_var e Linexpr.Le);
              Tseitin.atom (atom_var e Linexpr.Ge);
            ]
        else Tseitin.atom (atom_var e (op_of_cmp c))
      | Ast.F_not f -> Tseitin.not_ (conv f)
      | Ast.F_and fs -> Tseitin.and_ (List.map conv fs)
      | Ast.F_or fs -> Tseitin.or_ (List.map conv fs)
      | Ast.F_implies (x, y) -> Tseitin.implies (conv x) (conv y)
      | Ast.F_iff (x, y) -> Tseitin.iff (conv x) (conv y)
      | Ast.F_xor (x, y) -> Tseitin.xor (conv x) (conv y)
    in
    let full =
      Tseitin.and_ (List.map conv (b.Ast.assumptions @ [ b.Ast.formula ]))
    in
    let clauses, n_vars = Tseitin.assert_cnf ~num_vars:!next_bool full in
    Ab_problem.ensure_bool_vars problem n_vars;
    List.iter (Ab_problem.add_clause problem) clauses;
    Ab_problem.set_projection problem (List.init !next_bool Fun.id);
    (match Ab_problem.validate problem with
    | Ok () -> ()
    | Error e -> raise (Err e));
    (* Predicate map in declaration order: the SMT-LIB 2 front-end reads
       Boolean model values back through it. *)
    (problem, List.map (fun p -> (p, Hashtbl.find preds p)) b.Ast.extrapreds)
  with
  | result -> Ok result
  | exception Err msg -> Error msg

let convert_split_eq ~split_eq b = Result.map fst (convert_full ~split_eq b)
let convert b = convert_split_eq ~split_eq:true b
