(** Parser for the SMT-LIB 1.2 subset of {!Ast}.

    The paper's Table 2 benchmarks "were converted automatically to
    ABSOLVER's input format from the satisfiability-modulo-theories
    benchmark library"; this parser is the front half of that conversion
    (the back half is {!To_ab}). S-expression based; supports [benchmark]
    declarations with [:logic], [:status], [:extrafuns], [:extrapreds],
    [:assumption] and [:formula] attributes. *)

type sexp = Atom of string | List of sexp list

val parse_sexps : string -> (sexp list, string) result

(** Lexical test for numeric literals ([3], [3.5], [-0.25], [7/2]);
    shared with the SMT-LIB 2 elaborator in {!Smt2}. *)
val is_number : string -> bool
val parse_benchmark : string -> (Ast.benchmark, string) result
val parse_file : string -> (Ast.benchmark, string) result
