module Budget = Absolver_resource.Budget
module Telemetry = Absolver_telemetry.Telemetry

let available_cores () =
  try Domain.recommended_domain_count () with _ -> 1

(* ------------------------------------------------------------------ *)
(* First-win racing                                                    *)
(* ------------------------------------------------------------------ *)

type 'a race_report = {
  winner : (string * 'a) option;
  results : (string * ('a, exn) result) list;
}

(* Run every entrant on its own domain under a budget forked from
   [budget].  The first entrant whose result satisfies [decisive] wins:
   its (name, value) is CASed into the winner slot and every other
   entrant's budget is cancelled, so cooperative competitors unwind at
   their next poll.  All domains are joined before returning — no entrant
   outlives the race.

   Exception policy: an entrant's exception is contained in its [results]
   slot.  If no entrant was decisive and at least one raised, the first
   exception (in entrant order) is re-raised at the join, so a programming
   error cannot masquerade as "everyone lost".  Losers' exceptions after a
   win are expected (cancellation unwinding) and stay in [results]. *)
let race ?(budget = Budget.unlimited) ?(telemetry = Telemetry.disabled)
    ~decisive entrants =
  match entrants with
  | [] -> { winner = None; results = [] }
  | [ (name, f) ] ->
    (* Degenerate race: run inline, no domain, same budget discipline. *)
    let b = Budget.fork budget in
    let v = f ~budget:b ~telemetry in
    {
      winner = (if decisive v then Some (name, v) else None);
      results = [ (name, Ok v) ];
    }
  | _ ->
    let n = List.length entrants in
    let budgets = Array.init n (fun _ -> Budget.fork budget) in
    let winner = Atomic.make None in
    let cancel_losers me =
      Array.iteri (fun i b -> if i <> me then Budget.cancel b) budgets
    in
    (* The parent for each entrant's spans is whatever span the spawner
       has open at race time (the engine's [portfolio] span), captured
       before the domains exist so the stitching is deterministic. *)
    let parent = Telemetry.current_span telemetry in
    let run i (name, f) =
      (* Per-entrant telemetry fork, merged by the spawner at join:
         enabled handles are lock-protected, but per-domain handles keep
         span nesting meaningful, and a fork shares the spawner's trace
         sink and id space so entrant spans land in the same tree (see
         Telemetry.fork/merge). *)
      let tele =
        if Telemetry.enabled telemetry then Telemetry.fork ~parent telemetry
        else telemetry
      in
      let outcome =
        match
          Telemetry.span tele
            ~attrs:[ ("entrant", Telemetry.String name) ]
            "pool.entrant"
            (fun () -> f ~budget:budgets.(i) ~telemetry:tele)
        with
        | v ->
          if
            decisive v
            && Atomic.compare_and_set winner None (Some (i, name, v))
          then cancel_losers i;
          Ok v
        | exception e -> Error e
      in
      (outcome, tele)
    in
    let domains =
      List.mapi (fun i entrant -> Domain.spawn (fun () -> run i entrant)) entrants
    in
    let results =
      List.map2
        (fun (name, _) d ->
          let outcome, tele = Domain.join d in
          if Telemetry.enabled telemetry then Telemetry.merge telemetry tele;
          (name, outcome))
        entrants domains
    in
    let winner =
      match Atomic.get winner with
      | Some (_, name, v) -> Some (name, v)
      | None -> None
    in
    (match winner with
    | Some _ -> ()
    | None -> (
      (* Nobody was decisive: surface the first contained exception, if
         any, rather than silently reporting an indecisive race. *)
      match
        List.find_opt (fun (_, r) -> Result.is_error r) results
      with
      | Some (_, Error e) -> raise e
      | _ -> ()));
    { winner; results }

(* ------------------------------------------------------------------ *)
(* Work-stealing frontier                                              *)
(* ------------------------------------------------------------------ *)

module Frontier = struct
  type ('a, 'r) ctx = {
    push : 'a -> unit;
    finish : 'r -> unit;
    worker : int;
    budget : Budget.t;
    telemetry : Telemetry.t;
  }

  type 'r outcome = Finished of 'r | Drained | Stopped

  type ('a, 'r) shared = {
    deques : 'a Ws_deque.t array;
    pending : int Atomic.t; (* items pushed, not yet fully processed *)
    win : 'r option Atomic.t;
    stop : bool Atomic.t; (* set on win, abort, or budget trip *)
    aborted : bool Atomic.t; (* a worker died before draining its items *)
    first_exn : exn option Atomic.t;
    budgets : Budget.t array;
  }

  let should_stop sh = Atomic.get sh.stop

  let finish sh r =
    if Atomic.compare_and_set sh.win None (Some r) then begin
      Atomic.set sh.stop true;
      Array.iter Budget.cancel sh.budgets
    end

  (* Round-robin steal attempt over every other worker's deque. *)
  let try_steal sh me =
    let n = Array.length sh.deques in
    let rec go k =
      if k >= n then None
      else
        let v = (me + k) mod n in
        match Ws_deque.steal sh.deques.(v) with
        | Some _ as x -> x
        | None -> go (k + 1)
    in
    go 1

  let worker_loop sh me work tele =
    let dq = sh.deques.(me) in
    let ctx =
      {
        push =
          (fun x ->
            Atomic.incr sh.pending;
            Ws_deque.push dq x);
        finish = (fun r -> finish sh r);
        worker = me;
        budget = sh.budgets.(me);
        telemetry = tele;
      }
    in
    let process item =
      (* [pending] is decremented only after [work] returns: an item lost
         to an exception leaves the count positive, so no other worker can
         mistake an aborted run for a drained frontier. *)
      match work ctx item with
      | () -> Atomic.decr sh.pending
      | exception Budget.Exhausted _ ->
        Atomic.set sh.aborted true;
        Atomic.set sh.stop true
      | exception e ->
        ignore (Atomic.compare_and_set sh.first_exn None (Some e));
        Atomic.set sh.aborted true;
        Atomic.set sh.stop true
    in
    let rec loop idle =
      if should_stop sh then ()
      else
        match Ws_deque.pop dq with
        | Some item ->
          process item;
          loop 0
        | None -> (
          match try_steal sh me with
          | Some item ->
            process item;
            loop 0
          | None ->
            if Atomic.get sh.pending = 0 then () (* drained *)
            else begin
              (* Out of work but the frontier is not drained: spin
                 politely, with an occasional budget poll so a deadline
                 can interrupt even an idle worker. *)
              Domain.cpu_relax ();
              if idle land 0xFF = 0xFF then begin
                match Budget.check sh.budgets.(me) with
                | Some _ ->
                  Atomic.set sh.aborted true;
                  Atomic.set sh.stop true
                | None -> ()
              end;
              loop (idle + 1)
            end)
    in
    loop 0

  let run ?(budget = Budget.unlimited) ?(telemetry = Telemetry.disabled) ~jobs
      ~init work =
    let jobs = max 1 jobs in
    let sh =
      {
        deques = Array.init jobs (fun _ -> Ws_deque.create ());
        pending = Atomic.make 0;
        win = Atomic.make None;
        stop = Atomic.make false;
        aborted = Atomic.make false;
        first_exn = Atomic.make None;
        budgets = Array.init jobs (fun _ -> Budget.fork budget);
      }
    in
    (* Seed items round-robin so workers start without stealing. *)
    List.iteri
      (fun i x ->
        Atomic.incr sh.pending;
        Ws_deque.push sh.deques.(i mod jobs) x)
      init;
    (* As in [race]: capture the spawner's open span before any domain
       starts, so every worker's spans hang under it. *)
    let parent = Telemetry.current_span telemetry in
    let spawn me () =
      let tele =
        if Telemetry.enabled telemetry then Telemetry.fork ~parent telemetry
        else telemetry
      in
      Telemetry.span tele
        ~attrs:[ ("worker", Telemetry.Int me) ]
        "pool.worker"
        (fun () -> worker_loop sh me work tele);
      tele
    in
    if jobs = 1 then begin
      let tele = spawn 0 () in
      if Telemetry.enabled telemetry then Telemetry.merge telemetry tele
    end
    else begin
      let domains =
        Array.init jobs (fun me -> Domain.spawn (fun () -> spawn me ()))
      in
      Array.iter
        (fun d ->
          let tele = Domain.join d in
          if Telemetry.enabled telemetry then Telemetry.merge telemetry tele)
        domains
    end;
    (match Atomic.get sh.win with
    | Some _ -> ()
    | None -> (
      match Atomic.get sh.first_exn with Some e -> raise e | None -> ()));
    match Atomic.get sh.win with
    | Some r -> Finished r
    | None -> if Atomic.get sh.aborted then Stopped else Drained
end

(* ------------------------------------------------------------------ *)
(* Executor: a persistent pool of worker domains                       *)
(* ------------------------------------------------------------------ *)

module Executor = struct
  type job = unit -> unit

  exception Kill_worker

  type t = {
    lock : Mutex.t;
    wake : Condition.t;
    queue : job Queue.t;
    queue_capacity : int;
    n_workers : int;
    restart_limit : int;
    mutable spawned : unit Domain.t list;  (* every domain ever spawned *)
    mutable live : int;  (* worker loops currently serving the queue *)
    mutable restarts_used : int;
    mutable stopping : bool;
    mutable joined : bool;
    deaths : int Atomic.t;
    lost : int Atomic.t;  (* jobs abandoned by a dying worker *)
    running : int Atomic.t;
    submitted : int Atomic.t;
    completed : int Atomic.t;
  }

  type submit_outcome = Submitted | Rejected of string

  (* The panic barrier's escape hatch: an ordinary exception is a job
     bug and is contained (the job's owner answers for it — the server
     lane converts it to a typed internal_error reply); these are
     process-level disasters that must kill the worker domain so the
     supervisor can replace it with a fresh one.  [Kill_worker] is the
     deterministic stand-in the chaos tests throw. *)
  let is_fatal = function
    | Kill_worker | Out_of_memory | Stack_overflow -> true
    | _ -> false

  (* Workers block on [wake] when idle and drain the queue to empty
     before honouring [stopping], so shutdown never drops an accepted
     job.  A job's exception is contained here: the executor is shared
     infrastructure and one bad job must not take a worker down — except
     an [is_fatal] one, which escapes to the supervisor below. *)
  let worker_loop t =
    let live = ref true in
    while !live do
      Mutex.lock t.lock;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.wake t.lock
      done;
      if Queue.is_empty t.queue then begin
        Mutex.unlock t.lock;
        live := false
      end
      else begin
        let job = Queue.pop t.queue in
        Mutex.unlock t.lock;
        Atomic.incr t.running;
        (match job () with
        | () ->
          Atomic.decr t.running;
          Atomic.incr t.completed
        | exception e when not (is_fatal e) ->
          Atomic.decr t.running;
          Atomic.incr t.completed
        | exception e ->
          Atomic.decr t.running;
          Atomic.incr t.lost;
          raise e)
      end
    done

  (* Supervision: a worker that dies of a fatal exception is replaced by
     a fresh domain, up to [restart_limit] replacements over the
     executor's lifetime.  Past the limit the pool shrinks and
     {!degraded} turns true — bounded restarts, so a deterministic
     crasher cannot hot-loop the supervisor.  The replacement is spawned
     from the dying domain itself (under the lock), so there is no
     supervisor thread to keep alive or crash. *)
  let rec supervised t () =
    try worker_loop t
    with _ ->
      Mutex.lock t.lock;
      Atomic.incr t.deaths;
      if (not t.stopping) && t.restarts_used < t.restart_limit then begin
        t.restarts_used <- t.restarts_used + 1;
        let d = Domain.spawn (supervised t) in
        t.spawned <- d :: t.spawned
      end
      else t.live <- t.live - 1;
      Mutex.unlock t.lock

  let create ?(queue_capacity = 64) ?(restart_limit = 8) ~workers () =
    let t =
      {
        lock = Mutex.create ();
        wake = Condition.create ();
        queue = Queue.create ();
        queue_capacity = max 1 queue_capacity;
        n_workers = max 1 workers;
        restart_limit = max 0 restart_limit;
        spawned = [];
        live = 0;
        restarts_used = 0;
        stopping = false;
        joined = false;
        deaths = Atomic.make 0;
        lost = Atomic.make 0;
        running = Atomic.make 0;
        submitted = Atomic.make 0;
        completed = Atomic.make 0;
      }
    in
    t.live <- t.n_workers;
    t.spawned <-
      List.init t.n_workers (fun _ -> Domain.spawn (supervised t));
    t

  let submit t job =
    Mutex.lock t.lock;
    if t.stopping then begin
      Mutex.unlock t.lock;
      Rejected "executor shutting down"
    end
    else if Queue.length t.queue >= t.queue_capacity then begin
      let n = Queue.length t.queue in
      Mutex.unlock t.lock;
      Rejected (Printf.sprintf "queue full (%d pending)" n)
    end
    else begin
      Queue.push job t.queue;
      Atomic.incr t.submitted;
      Condition.signal t.wake;
      Mutex.unlock t.lock;
      Submitted
    end

  let workers t = t.n_workers
  let in_flight t = Atomic.get t.running

  let queued t =
    Mutex.lock t.lock;
    let n = Queue.length t.queue in
    Mutex.unlock t.lock;
    n

  let submitted t = Atomic.get t.submitted
  let completed t = Atomic.get t.completed
  let worker_deaths t = Atomic.get t.deaths
  let lost_jobs t = Atomic.get t.lost

  let live_workers t =
    Mutex.lock t.lock;
    let n = t.live in
    Mutex.unlock t.lock;
    n

  let worker_restarts t =
    Mutex.lock t.lock;
    let n = t.restarts_used in
    Mutex.unlock t.lock;
    n

  (* The supervisor gave up on at least one worker: the pool is smaller
     than configured.  Health reports [degraded]; the queue still
     drains as long as one worker lives. *)
  let degraded t = live_workers t < t.n_workers

  let shutdown t =
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.wake;
    let join_now = not t.joined in
    t.joined <- true;
    Mutex.unlock t.lock;
    if join_now then begin
      (* A dying worker may spawn its replacement while we join, so
         join against a snapshot and re-check until the set is stable
         (restarts are bounded, so this terminates). *)
      let joined = ref [] in
      let rec drain () =
        let pending =
          Mutex.protect t.lock (fun () ->
              List.filter (fun d -> not (List.memq d !joined)) t.spawned)
        in
        if pending <> [] then begin
          List.iter
            (fun d ->
              Domain.join d;
              joined := d :: !joined)
            pending;
          drain ()
        end
      in
      drain ()
    end
end
