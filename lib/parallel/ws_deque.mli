(** Chase–Lev work-stealing deque.

    The per-worker frontier structure of the parallel subsystem: exactly
    one {e owner} domain calls {!push} and {!pop} (LIFO end, so the owner
    works depth-first and stays cache-warm), while any other domain may
    {!steal} from the opposite end (FIFO, so thieves take the oldest —
    typically largest — work items).  All operations are lock-free;
    [steal] may spuriously return [None] under contention, which callers
    treat as "try the next victim". *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. Amortized O(1); the buffer grows geometrically. *)

val pop : 'a t -> 'a option
(** Owner only. Takes the most recently pushed item, or [None] when the
    deque is empty (including when a thief won the race for the last
    item). *)

val steal : 'a t -> 'a option
(** Any domain. Takes the oldest item; [None] when empty {e or} when a
    concurrent pop/steal won the race — callers must not read [None] as
    proof of emptiness. *)

val size : 'a t -> int
(** Racy snapshot of the current length (for heuristics and tests only). *)
