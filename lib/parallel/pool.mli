(** Domain pool primitives: first-win racing and a work-stealing frontier.

    Two consumers drive the design (DESIGN.md §11): the engine's
    {e portfolio mode} races whole solvers on separate domains
    ({!race}), and the nonlinear oracle's parallel branch-and-prune runs
    its box worklist as a shared {!Frontier}.  Both cancel losers
    cooperatively through {!Absolver_resource.Budget.fork}ed budgets —
    there is no preemption anywhere; a competitor that never polls its
    budget is simply waited for. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()], the sensible cap for [~jobs]. *)

(** {1 First-win racing} *)

type 'a race_report = {
  winner : (string * 'a) option;
      (** the first entrant whose result was decisive, if any *)
  results : (string * ('a, exn) result) list;
      (** every entrant's outcome, in entrant order; losers cut short by
          cancellation typically land here as their degraded verdicts *)
}

val race :
  ?budget:Absolver_resource.Budget.t ->
  ?telemetry:Absolver_telemetry.Telemetry.t ->
  decisive:('a -> bool) ->
  (string
  * (budget:Absolver_resource.Budget.t ->
     telemetry:Absolver_telemetry.Telemetry.t ->
     'a))
  list ->
  'a race_report
(** [race ~decisive entrants] runs every entrant on its own domain under
    a budget forked from [budget] (so an external timeout or cancellation
    reaches all of them, while cancelling one entrant does not disturb
    the others).  The first result satisfying [decisive] wins and cancels
    the rest; all domains are joined before returning.  Each entrant
    records into a private {!Absolver_telemetry.Telemetry.fork} of
    [telemetry] (merged back at join), wrapped in a [pool.entrant] span
    parented under the spawner's open span — a traced portfolio run
    stays one connected span tree.  If nobody is decisive and some
    entrant raised, the first
    exception is re-raised after the join; with a single entrant the race
    degenerates to an inline call on the caller's domain. *)

(** {1 Persistent executor}

    A long-lived pool of worker domains draining a bounded FIFO job
    queue — the compute substrate of the solve server: client handler
    threads (I/O-bound, all on the main domain) submit solve jobs here
    so they run in parallel on separate domains, and the bounded queue
    is the server's global admission-control backstop.  Unlike {!race}
    and {!Frontier.run}, the pool outlives any one computation. *)
module Executor : sig
  type t

  exception Kill_worker
  (** Deterministically kills the worker domain running the job that
      raises it — the supervision tests' stand-in for a process-level
      disaster ([Out_of_memory] and [Stack_overflow] get the same
      treatment). *)

  type submit_outcome =
    | Submitted
    | Rejected of string
        (** admission refused, with the reason ("queue full (N pending)"
            or "executor shutting down") — the caller is expected to
            surface it, not retry blindly *)

  val is_fatal : exn -> bool
  (** Would this exception, escaping a job, kill its worker domain?
      Lets an outer panic barrier (the server's lane wrapper) answer
      recoverable failures and re-raise worker-fatal ones. *)

  val create :
    ?queue_capacity:int -> ?restart_limit:int -> workers:int -> unit -> t
  (** Spawn [max 1 workers] supervised worker domains. [queue_capacity]
      (default 64) bounds the number of {e queued} (not yet running)
      jobs; [restart_limit] (default 8) bounds worker replacements over
      the executor's lifetime. *)

  val submit : t -> (unit -> unit) -> submit_outcome
  (** Enqueue a job. Jobs must contain their own exceptions as a matter
      of hygiene, but a leak is contained by the worker loop — one bad
      job never takes a worker down.  The exceptions are fatal ones
      ({!Kill_worker}, [Out_of_memory], [Stack_overflow]): those kill
      the worker domain, abandoning the job (counted in {!lost_jobs}),
      and the supervisor spawns a replacement — up to [restart_limit]
      times, after which the pool shrinks and {!degraded} turns true. *)

  val workers : t -> int
  val in_flight : t -> int  (** jobs currently executing *)

  val queued : t -> int  (** jobs accepted but not yet started *)

  val submitted : t -> int  (** jobs accepted since creation *)

  val completed : t -> int  (** jobs finished (including failed) *)

  val live_workers : t -> int  (** workers currently serving the queue *)

  val worker_deaths : t -> int  (** fatal exceptions that killed a worker *)

  val worker_restarts : t -> int  (** replacements spawned so far *)

  val lost_jobs : t -> int  (** jobs abandoned by a dying worker *)

  val degraded : t -> bool
  (** The supervisor gave up on at least one worker (restart budget
      exhausted): the pool runs below its configured width.  Surfaced
      by the server's [health] op. *)

  val shutdown : t -> unit
  (** Stop accepting, drain every already-accepted job, join all worker
      domains (including replacements spawned mid-shutdown). Idempotent;
      blocks until the pool is quiet. *)
end

(** {1 Work-stealing frontier}

    A worklist distributed over per-worker Chase–Lev deques.  Workers pop
    their own deque LIFO (depth-first, cache-warm) and steal FIFO from
    others when empty.  Termination is exact: an atomic pending count is
    incremented at every push and decremented only {e after} an item is
    fully processed, so "my deque is empty and nobody advertises work"
    is never mistaken for global quiescence while an item is in flight —
    the distinction between {!Frontier.Drained} (exhaustive, sound for
    Unsat) and {!Frontier.Stopped} (gave up, sound only for Unknown). *)
module Frontier : sig
  type ('a, 'r) ctx = {
    push : 'a -> unit;  (** schedule a new item (this worker's deque) *)
    finish : 'r -> unit;
        (** first-win terminal result: records ['r] and cancels every
            worker's budget; later calls are no-ops *)
    worker : int;  (** worker index, [0 .. jobs-1] *)
    budget : Absolver_resource.Budget.t;
        (** this worker's forked budget — tick it from the work body *)
    telemetry : Absolver_telemetry.Telemetry.t;
        (** this worker's private fork of the spawner's handle, merged at
            join; its spans sit inside a per-worker [pool.worker] span
            parented under the spawner's open span *)
  }

  type 'r outcome =
    | Finished of 'r  (** some worker called [finish] *)
    | Drained  (** every item was processed and none remain *)
    | Stopped
        (** a worker's budget tripped (deadline, cancellation, …) before
            the frontier drained — exhaustiveness claims are void *)

  val run :
    ?budget:Absolver_resource.Budget.t ->
    ?telemetry:Absolver_telemetry.Telemetry.t ->
    jobs:int ->
    init:'a list ->
    (('a, 'r) ctx -> 'a -> unit) ->
    'r outcome
  (** [run ~jobs ~init work] processes [init] and everything [work]
      pushes, on [max 1 jobs] workers ([jobs = 1] runs on the caller's
      domain, no spawns).  [work] may raise [Budget.Exhausted] (mapped to
      {!Stopped}); any other exception stops the run and is re-raised at
      the join unless a [finish] already won. *)
end
