(* Chase–Lev work-stealing deque (Chase & Lev, SPAA'05; memory-model
   treatment after Lê et al., PPoPP'13).  One owner pushes and pops at the
   bottom; any number of thieves steal at the top.  OCaml [Atomic]
   operations are sequentially consistent, which subsumes the fences the
   C11 formulation needs, so the algorithm transcribes directly.

   Correctness notes, stated once here rather than inline:

   - [top] only ever increases (owner and thieves both advance it with a
     CAS), so a successful CAS proves nobody else consumed that index —
     no ABA.
   - A slot is reused by [push] only after [bottom - top] wraps past the
     buffer size, and growth triggers strictly before that, so a thief
     that read slot [t mod size] before its CAS can never observe a value
     overwritten by a concurrent push.
   - Growth copies live entries into a larger buffer at the same absolute
     indices and publishes it through an [Atomic]; thieves racing with
     growth read the old buffer, which the GC keeps valid and whose live
     slots the owner never mutates.

   Slots hold ['a option] so the owner can null out consumed entries and
   the GC is not forced to retain popped work items for the lifetime of
   the buffer. *)

type 'a buffer = { log : int; mask : int; slots : 'a option array }

let mk_buffer log =
  let size = 1 lsl log in
  { log; mask = size - 1; slots = Array.make size None }

let buf_get b i = b.slots.(i land b.mask)
let buf_set b i v = b.slots.(i land b.mask) <- v

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let create () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (mk_buffer 5) }

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

let grow t b tp old =
  let bigger = mk_buffer (old.log + 1) in
  for i = tp to b - 1 do
    buf_set bigger i (buf_get old i)
  done;
  Atomic.set t.buf bigger;
  bigger

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf = if b - tp > buf.mask then grow t b tp buf else buf in
  buf_set buf b (Some x);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  let buf = Atomic.get t.buf in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Deque was empty; restore the canonical empty state. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let x = buf_get buf b in
    if b > tp then begin
      buf_set buf b None;
      x
    end
    else begin
      (* Single element: race the thieves for it. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        buf_set buf b None;
        x
      end
      else None
    end
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let buf = Atomic.get t.buf in
    let x = buf_get buf tp in
    (* The CAS both claims index [tp] and validates the read: on failure
       another thief (or the owner's last-element pop) took it. *)
    if Atomic.compare_and_set t.top tp (tp + 1) then x else None
  end
