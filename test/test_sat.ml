(* Tests for the SAT layer: literals, DIMACS, CDCL, all-SAT, Tseitin. *)

module T = Absolver_sat.Types
module C = Absolver_sat.Cdcl
module D = Absolver_sat.Dimacs
module AS = Absolver_sat.All_sat
module TS = Absolver_sat.Tseitin
module Vec = Absolver_sat.Vec

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Literals.                                                           *)

let test_literals () =
  check int_t "var_of pos" 3 (T.var_of (T.pos 3));
  check int_t "var_of neg" 3 (T.var_of (T.neg_of_var 3));
  check bool_t "is_pos" true (T.is_pos (T.pos 0));
  check bool_t "negate flips" true (T.negate (T.pos 5) = T.neg_of_var 5);
  check int_t "dimacs pos" 4 (T.to_dimacs (T.pos 3));
  check int_t "dimacs neg" (-4) (T.to_dimacs (T.neg_of_var 3));
  check int_t "of_dimacs roundtrip" (T.pos 7) (T.of_dimacs 8);
  Alcotest.check_raises "of_dimacs zero"
    (Invalid_argument "Types.of_dimacs: zero literal") (fun () ->
      ignore (T.of_dimacs 0))

(* ------------------------------------------------------------------ *)
(* Vec.                                                                *)

let test_vec () =
  let v = Vec.create ~dummy:0 () in
  for i = 1 to 100 do
    Vec.push v i
  done;
  check int_t "size" 100 (Vec.size v);
  check int_t "get" 50 (Vec.get v 49);
  check int_t "pop" 100 (Vec.pop v);
  Vec.shrink v 10;
  check int_t "shrink" 10 (Vec.size v);
  Vec.swap_remove v 0;
  check int_t "swap_remove" 9 (Vec.size v);
  check int_t "swap_remove moved last" 10 (Vec.get v 0);
  Vec.sort compare v;
  check int_t "sorted first" 2 (Vec.get v 0);
  check int_t "fold" (2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10)
    (Vec.fold ( + ) 0 v)

(* ------------------------------------------------------------------ *)
(* CDCL basics.                                                        *)

let solve_clauses n clauses =
  let s = C.create () in
  C.ensure_vars s n;
  List.iter (C.add_clause s) clauses;
  (C.solve s, s)

let test_cdcl_trivial_sat () =
  let r, s = solve_clauses 1 [ [ T.pos 0 ] ] in
  check bool_t "sat" true (r = T.Sat);
  check bool_t "model" true (C.value s 0 = T.V_true)

let test_cdcl_trivial_unsat () =
  let r, _ = solve_clauses 1 [ [ T.pos 0 ]; [ T.neg_of_var 0 ] ] in
  check bool_t "unsat" true (r = T.Unsat)

let test_cdcl_empty_clause () =
  let r, s = solve_clauses 1 [ [] ] in
  check bool_t "unsat" true (r = T.Unsat);
  check bool_t "is_unsat" true (C.is_unsat s)

let test_cdcl_no_clauses () =
  let r, _ = solve_clauses 3 [] in
  check bool_t "sat" true (r = T.Sat)

let test_cdcl_tautology_dropped () =
  let r, _ = solve_clauses 1 [ [ T.pos 0; T.neg_of_var 0 ] ] in
  check bool_t "sat" true (r = T.Sat)

let test_cdcl_duplicate_literals () =
  let r, s = solve_clauses 1 [ [ T.pos 0; T.pos 0; T.pos 0 ] ] in
  check bool_t "sat" true (r = T.Sat);
  check bool_t "forced" true (C.value s 0 = T.V_true)

let test_cdcl_propagation_chain () =
  (* x0 and a chain of implications forcing x9. *)
  let clauses =
    [ T.pos 0 ]
    :: List.init 9 (fun i -> [ T.neg_of_var i; T.pos (i + 1) ])
  in
  let r, s = solve_clauses 10 clauses in
  check bool_t "sat" true (r = T.Sat);
  for i = 0 to 9 do
    check bool_t (Printf.sprintf "x%d forced" i) true (C.value s i = T.V_true)
  done

let test_cdcl_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT requiring learning. *)
  let v p h = (p * 2) + h in
  let clauses =
    List.init 3 (fun p -> [ T.pos (v p 0); T.pos (v p 1) ])
    @ List.concat_map
        (fun h ->
          [
            [ T.neg_of_var (v 0 h); T.neg_of_var (v 1 h) ];
            [ T.neg_of_var (v 0 h); T.neg_of_var (v 2 h) ];
            [ T.neg_of_var (v 1 h); T.neg_of_var (v 2 h) ];
          ])
        [ 0; 1 ]
  in
  let r, _ = solve_clauses 6 clauses in
  check bool_t "php(3,2) unsat" true (r = T.Unsat)

let test_cdcl_assumptions () =
  let s = C.create () in
  C.ensure_vars s 2;
  C.add_clause s [ T.pos 0; T.pos 1 ];
  check bool_t "sat under ~x0" true
    (C.solve ~assumptions:[ T.neg_of_var 0 ] s = T.Sat);
  check bool_t "x1 forced" true (C.value s 1 = T.V_true);
  check bool_t "unsat under both neg" true
    (C.solve ~assumptions:[ T.neg_of_var 0; T.neg_of_var 1 ] s = T.Unsat);
  check bool_t "still sat without assumptions" true (C.solve s = T.Sat);
  check bool_t "not globally unsat" false (C.is_unsat s)

let test_cdcl_incremental () =
  let s = C.create () in
  C.ensure_vars s 3;
  C.add_clause s [ T.pos 0; T.pos 1 ];
  check bool_t "sat 1" true (C.solve s = T.Sat);
  C.add_clause s [ T.neg_of_var 0 ];
  check bool_t "sat 2" true (C.solve s = T.Sat);
  check bool_t "x1 now forced" true (C.value s 1 = T.V_true);
  C.add_clause s [ T.neg_of_var 1 ];
  check bool_t "unsat 3" true (C.solve s = T.Unsat)

let test_cdcl_model_valid_random () =
  (* Deterministic pseudo-random 3-SAT near threshold; verify models. *)
  let st = Random.State.make [| 1234 |] in
  for _ = 1 to 200 do
    let n = 5 + Random.State.int st 15 in
    let m = int_of_float (4.0 *. float_of_int n) in
    let clauses =
      List.init m (fun _ ->
          List.init 3 (fun _ ->
              let v = Random.State.int st n in
              if Random.State.bool st then T.pos v else T.neg_of_var v))
    in
    let r, s = solve_clauses n clauses in
    match r with
    | T.Sat ->
      let ok =
        List.for_all
          (List.exists (fun l ->
               match C.value s (T.var_of l) with
               | T.V_true -> T.is_pos l
               | T.V_false -> not (T.is_pos l)
               | T.V_undef -> false))
          clauses
      in
      check bool_t "model satisfies" true ok
    | T.Unsat | T.Unknown -> ()
  done

(* ------------------------------------------------------------------ *)
(* DIMACS.                                                             *)

let test_dimacs_parse () =
  let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  match D.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok cnf ->
    check int_t "vars" 3 cnf.D.num_vars;
    check int_t "clauses" 2 (List.length cnf.D.clauses);
    check bool_t "comment" true (cnf.D.comments = [ "a comment" ]);
    check bool_t "first clause" true
      (List.hd cnf.D.clauses = [ T.pos 0; T.neg_of_var 1 ])

let test_dimacs_roundtrip () =
  let text = "p cnf 4 3\n1 2 0\n-3 4 0\n-1 -4 0\n" in
  match D.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok cnf -> (
    match D.parse_string (D.to_string cnf) with
    | Error e -> Alcotest.fail e
    | Ok cnf2 ->
      check bool_t "roundtrip" true (cnf.D.clauses = cnf2.D.clauses))

let test_dimacs_errors () =
  (match D.parse_string "p cnf x y\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad problem line");
  match D.parse_string "p cnf 2 1\n1 foo 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad literal"

(* ------------------------------------------------------------------ *)
(* All-SAT.                                                            *)

let count_brute n clauses =
  let total = ref 0 in
  for m = 0 to (1 lsl n) - 1 do
    if
      List.for_all
        (List.exists (fun l ->
             let v = T.var_of l in
             (m lsr v) land 1 = if T.is_pos l then 1 else 0))
        clauses
    then incr total
  done;
  !total

let test_allsat_counts () =
  let cases =
    [
      (2, [ [ T.pos 0; T.pos 1 ] ]);
      (3, [ [ T.pos 0 ]; [ T.neg_of_var 1; T.pos 2 ] ]);
      (4, []);
      (2, [ [ T.pos 0 ]; [ T.neg_of_var 0 ] ]);
    ]
  in
  List.iter
    (fun (n, clauses) ->
      match AS.enumerate ~num_vars:n clauses with
      | Error e -> Alcotest.fail (Absolver_resource.Absolver_error.to_string e)
      | Ok models ->
        check int_t "model count" (count_brute n clauses) (List.length models))
    cases

let test_allsat_projection () =
  (* Projecting onto x0: the two x1 values collapse. *)
  let clauses = [ [ T.pos 0; T.pos 1 ] ] in
  match AS.enumerate ~projection:[ 0 ] ~num_vars:2 clauses with
  | Error e -> Alcotest.fail (Absolver_resource.Absolver_error.to_string e)
  | Ok models -> check int_t "projected count" 2 (List.length models)

let test_allsat_limit () =
  match AS.enumerate ~limit:3 ~num_vars:4 [] with
  | Error e -> Alcotest.fail (Absolver_resource.Absolver_error.to_string e)
  | Ok models -> check int_t "limit respected" 3 (List.length models)

let test_allsat_strategies_agree () =
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    let n = 3 + Random.State.int st 5 in
    let clauses =
      List.init (Random.State.int st 8) (fun _ ->
          List.init (1 + Random.State.int st 3) (fun _ ->
              let v = Random.State.int st n in
              if Random.State.bool st then T.pos v else T.neg_of_var v))
    in
    let a =
      match AS.enumerate ~num_vars:n clauses with Ok m -> List.length m | Error e -> Alcotest.fail (Absolver_resource.Absolver_error.to_string e)
    in
    let b =
      match AS.enumerate_restarting ~num_vars:n clauses with
      | Ok m -> List.length m
      | Error e -> Alcotest.fail (Absolver_resource.Absolver_error.to_string e)
    in
    check int_t "strategies agree" a b;
    check int_t "brute agrees" (count_brute n clauses) a
  done

(* ------------------------------------------------------------------ *)
(* Tseitin.                                                            *)

let models_of_formula num_vars f =
  (* Count assignments of the original atoms satisfying f, via All_sat
     projection onto the atom variables. *)
  let clauses, total = TS.assert_cnf ~num_vars f in
  match AS.enumerate ~projection:(List.init num_vars Fun.id) ~num_vars:total clauses with
  | Ok models -> List.length models
  | Error e -> Alcotest.fail (Absolver_resource.Absolver_error.to_string e)

let test_tseitin_equisatisfiable () =
  let a = TS.atom 0 and b = TS.atom 1 and c = TS.atom 2 in
  check int_t "and" 1 (models_of_formula 3 (TS.and_ [ a; b; c ]));
  check int_t "or" 7 (models_of_formula 3 (TS.or_ [ a; b; c ]));
  check int_t "xor" 4 (models_of_formula 3 (TS.xor a b));
  check int_t "iff" 4 (models_of_formula 3 (TS.iff a b));
  check int_t "implies" 6 (models_of_formula 3 (TS.implies a b));
  check int_t "const true" 8 (models_of_formula 3 TS.True);
  check int_t "const false" 0 (models_of_formula 3 TS.False)

let test_tseitin_matches_eval () =
  let st = Random.State.make [| 7 |] in
  let rec random_formula depth =
    if depth = 0 then TS.atom (Random.State.int st 4)
    else
      match Random.State.int st 5 with
      | 0 -> TS.not_ (random_formula (depth - 1))
      | 1 -> TS.and_ [ random_formula (depth - 1); random_formula (depth - 1) ]
      | 2 -> TS.or_ [ random_formula (depth - 1); random_formula (depth - 1) ]
      | 3 -> TS.iff (random_formula (depth - 1)) (random_formula (depth - 1))
      | _ -> TS.xor (random_formula (depth - 1)) (random_formula (depth - 1))
  in
  for _ = 1 to 100 do
    let f = random_formula 4 in
    let expected = ref 0 in
    for m = 0 to 15 do
      if TS.eval (fun v -> (m lsr v) land 1 = 1) f then incr expected
    done;
    check int_t "tseitin model count = truth table" !expected
      (models_of_formula 4 f)
  done

let test_tseitin_shared_dag () =
  (* A deep shared chain must stay linear (regression for the exponential
     blowup found during development). *)
  let f = ref (TS.or_ [ TS.atom 0; TS.not_ (TS.atom 0) ]) in
  for _ = 1 to 500 do
    f := TS.and_ [ !f; !f ]
  done;
  let clauses, _ = TS.assert_cnf ~num_vars:1 !f in
  check bool_t "linear size" true (List.length clauses < 5000)

let suite =
  [
    ("literal encoding", `Quick, test_literals);
    ("vec operations", `Quick, test_vec);
    ("cdcl trivially sat", `Quick, test_cdcl_trivial_sat);
    ("cdcl trivially unsat", `Quick, test_cdcl_trivial_unsat);
    ("cdcl empty clause", `Quick, test_cdcl_empty_clause);
    ("cdcl no clauses", `Quick, test_cdcl_no_clauses);
    ("cdcl tautology", `Quick, test_cdcl_tautology_dropped);
    ("cdcl duplicate literals", `Quick, test_cdcl_duplicate_literals);
    ("cdcl propagation chain", `Quick, test_cdcl_propagation_chain);
    ("cdcl pigeonhole", `Quick, test_cdcl_pigeonhole_3_2);
    ("cdcl assumptions", `Quick, test_cdcl_assumptions);
    ("cdcl incremental", `Quick, test_cdcl_incremental);
    ("cdcl random 3-sat models", `Quick, test_cdcl_model_valid_random);
    ("dimacs parse", `Quick, test_dimacs_parse);
    ("dimacs roundtrip", `Quick, test_dimacs_roundtrip);
    ("dimacs errors", `Quick, test_dimacs_errors);
    ("all-sat counts", `Quick, test_allsat_counts);
    ("all-sat projection", `Quick, test_allsat_projection);
    ("all-sat limit", `Quick, test_allsat_limit);
    ("all-sat strategies agree", `Quick, test_allsat_strategies_agree);
    ("tseitin equisatisfiable", `Quick, test_tseitin_equisatisfiable);
    ("tseitin matches truth table", `Quick, test_tseitin_matches_eval);
    ("tseitin shared dag linear", `Quick, test_tseitin_shared_dag);
  ]
