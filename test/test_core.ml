(* Tests for the ABSOLVER core: Ab_problem, Dimacs_ext, Engine, Solution,
   Registry. *)

module A = Absolver_core
module E = Absolver_nlp.Expr
module L = Absolver_lp.Linexpr
module T = Absolver_sat.Types
module Q = Absolver_numeric.Rational

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let parse text =
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let fig2 =
  {|p cnf 4 3
1 0
-2 3 0
4 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
c bound a -10 10
c bound x -10 10
c bound y -10 3.9
|}

(* ------------------------------------------------------------------ *)
(* Ab_problem.                                                         *)

let test_ab_problem_build () =
  let p = A.Ab_problem.create () in
  let x = A.Ab_problem.intern_arith_var p "x" in
  check int_t "interning stable" x (A.Ab_problem.intern_arith_var p "x");
  check string_t "name back" "x" (A.Ab_problem.arith_var_name p x);
  check bool_t "lookup" true (A.Ab_problem.arith_var_index p "x" = Some x);
  check bool_t "missing" true (A.Ab_problem.arith_var_index p "y" = None);
  A.Ab_problem.define p ~bool_var:0 ~domain:A.Ab_problem.Dreal
    { E.expr = E.var x; op = L.Ge; tag = 0 };
  A.Ab_problem.add_clause p [ T.pos 0 ];
  check int_t "bool vars" 1 (A.Ab_problem.num_bool_vars p);
  check int_t "defs" 1 (List.length (A.Ab_problem.defs p));
  check bool_t "validate" true (A.Ab_problem.validate p = Ok ())

let test_ab_problem_multiple_defs () =
  let p = parse fig2 in
  (* Variable 1 carries two definitions (i >= 0 and j >= 0). *)
  check int_t "defs of var 1" 2 (List.length (A.Ab_problem.find_defs p 0));
  check int_t "total defs" 5 (List.length (A.Ab_problem.defs p));
  check int_t "defined vars" 4 (List.length (A.Ab_problem.defined_vars p));
  (* Duplicate define is ignored. *)
  let x = Option.get (A.Ab_problem.arith_var_index p "i") in
  A.Ab_problem.define p ~bool_var:0 ~domain:A.Ab_problem.Dint
    { E.expr = E.var x; op = L.Ge; tag = 0 };
  check int_t "duplicate ignored" 2 (List.length (A.Ab_problem.find_defs p 0))

let test_ab_problem_stats () =
  let s = A.Ab_problem.stats (parse fig2) in
  check int_t "clauses" 3 s.A.Ab_problem.n_clauses;
  check int_t "bool vars" 4 s.A.Ab_problem.n_bool_vars;
  check int_t "linear" 4 s.A.Ab_problem.n_linear;
  check int_t "nonlinear" 1 s.A.Ab_problem.n_nonlinear;
  check int_t "int defs" 4 s.A.Ab_problem.n_int_defs;
  check int_t "real defs" 1 s.A.Ab_problem.n_real_defs

let test_ab_problem_bounds () =
  let p = parse fig2 in
  let a = Option.get (A.Ab_problem.arith_var_index p "a") in
  (match List.assoc_opt a (A.Ab_problem.bounds p) with
  | Some (Some lo, Some hi) ->
    check bool_t "lo" true (Q.equal lo (Q.of_int (-10)));
    check bool_t "hi" true (Q.equal hi (Q.of_int 10))
  | _ -> Alcotest.fail "bounds missing");
  (* bound_rels are tagged with bounds_tag. *)
  check bool_t "bound rels tagged" true
    (List.for_all
       (fun (r : E.rel) -> r.E.tag = A.Ab_problem.bounds_tag)
       (A.Ab_problem.bound_rels p))

let test_ab_problem_validate_errors () =
  let p = A.Ab_problem.create () in
  A.Ab_problem.add_clause p [];
  (match A.Ab_problem.validate p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty clause accepted")

let test_ab_problem_circuit () =
  let p = parse fig2 in
  let c = A.Ab_problem.to_circuit p in
  check int_t "comparisons = defs" 5
    (List.length (Absolver_circuit.Circuit.comparisons c));
  (* Under the known solution the output pin must be tt. *)
  match A.Engine.solve p with
  | A.Engine.R_sat sol, _ ->
    let v =
      Absolver_circuit.Circuit.eval
        ~bool_env:(fun b -> Absolver_circuit.Tribool.of_bool sol.A.Solution.bools.(b))
        ~arith_env:(fun av -> A.Solution.arith_env sol av)
        c
    in
    (* Arithmetic values may be approximate (nonlinear witness), in which
       case the comparison gates stay unknown; accept tt or ?. *)
    check bool_t "output not ff" true (v <> Absolver_circuit.Tribool.False)
  | (A.Engine.R_unsat | A.Engine.R_unknown _), _ -> Alcotest.fail "fig2 should be sat"

(* ------------------------------------------------------------------ *)
(* Dimacs_ext.                                                         *)

let test_dimacs_ext_roundtrip () =
  let p = parse fig2 in
  let text = A.Dimacs_ext.to_string p in
  let p2 = parse text in
  check bool_t "stats stable" true (A.Ab_problem.stats p = A.Ab_problem.stats p2);
  check int_t "bounds stable" (List.length (A.Ab_problem.bounds p))
    (List.length (A.Ab_problem.bounds p2))

let test_dimacs_ext_expr_parser () =
  let p = A.Ab_problem.create () in
  let cases =
    [
      ("1 + 2 * 3", Q.of_int 7);
      ("(1 + 2) * 3", Q.of_int 9);
      ("2 ^ 3 + 1", Q.of_int 9);
      ("-2 + 5", Q.of_int 3);
      ("10 / 4", Q.of_ints 5 2);
      ("1 - 2 - 3", Q.of_int (-4));
      ("3.5 * 2", Q.of_int 7);
      ("2 ^ -1", Q.of_ints 1 2);
    ]
  in
  List.iter
    (fun (text, expected) ->
      match A.Dimacs_ext.parse_expr p text with
      | Ok (E.Const q) -> check bool_t text true (Q.equal q expected)
      | Ok e -> Alcotest.failf "%s did not fold: %s" text (E.to_string e)
      | Error e -> Alcotest.failf "%s: %s" text e)
    cases

let test_dimacs_ext_expr_functions () =
  let p = A.Ab_problem.create () in
  match A.Dimacs_ext.parse_expr p "sqrt(x) + exp(y) - sin(x * y)" with
  | Ok e ->
    check int_t "two vars" 2 (List.length (E.vars e));
    check bool_t "nonlinear" false (E.is_linear e)
  | Error e -> Alcotest.fail e

let test_dimacs_ext_parse_errors () =
  let bad input =
    match A.Dimacs_ext.parse_string input with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" input
  in
  bad "p cnf 1 1\n1 0\nc def int 1 i >=\n";
  bad "p cnf 1 1\n1 0\nc def frobnicate 1 i >= 0\n";
  bad "p cnf 1 1\n1 0\nc def int 0 i >= 0\n";
  bad "p cnf 1 1\n1 0\nc bound x abc 1\n";
  bad "p cnf 1 1\n1 x 0\n"

let test_dimacs_ext_rel_parser () =
  let p = A.Ab_problem.create () in
  match A.Dimacs_ext.parse_rel p "2 * u + 1 <= u + 4" with
  | Ok r ->
    check bool_t "op" true (r.E.op = L.Le);
    (* normalized to (2u + 1) - (u + 4) = u - 3 *)
    (match E.linearize r.E.expr with
    | Some le ->
      check bool_t "coeff 1" true (Q.equal (L.coeff le 0) Q.one);
      check bool_t "const -3" true (Q.equal (L.const le) (Q.of_int (-3)))
    | None -> Alcotest.fail "should be linear")
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Engine.                                                             *)

let test_engine_fig2 () =
  let p = parse fig2 in
  match A.Engine.solve p with
  | A.Engine.R_sat sol, stats ->
    check bool_t "verified" true (A.Solution.check p sol = Ok ());
    check bool_t "examined >= 1 model" true (stats.A.Engine.bool_models >= 1)
  | (A.Engine.R_unsat | A.Engine.R_unknown _), _ -> Alcotest.fail "fig2 sat"

let test_engine_pure_boolean () =
  let p = parse "p cnf 2 2\n1 2 0\n-1 2 0\n" in
  (match A.Engine.solve p with
  | A.Engine.R_sat sol, _ -> check bool_t "x2 true" true sol.A.Solution.bools.(1)
  | _ -> Alcotest.fail "sat");
  let p = parse "p cnf 1 2\n1 0\n-1 0\n" in
  match A.Engine.solve p with
  | A.Engine.R_unsat, _ -> ()
  | _ -> Alcotest.fail "unsat"

let test_engine_linear_conflict_refinement () =
  (* Boolean part allows both x<=1 and x>=2 to be true; arithmetic
     refutes it; engine must flip to a consistent model. *)
  let text =
    {|p cnf 2 1
1 0
c def real 1 u <= 1
c def real 2 u >= 2
|}
  in
  let p = parse text in
  match A.Engine.solve p with
  | A.Engine.R_sat sol, stats ->
    check bool_t "verified" true (A.Solution.check p sol = Ok ());
    check bool_t "var2 false" false sol.A.Solution.bools.(1);
    check bool_t "used conflicts or direct model" true
      (stats.A.Engine.linear_conflicts >= 0)
  | _ -> Alcotest.fail "sat expected"

let test_engine_arith_unsat () =
  (* delta-semantics force an unsatisfiable arithmetic combination. *)
  let text =
    {|p cnf 2 2
1 0
2 0
c def real 1 u <= 1
c def real 2 u >= 2
|}
  in
  match A.Engine.solve (parse text) with
  | A.Engine.R_unsat, _ -> ()
  | _ -> Alcotest.fail "unsat expected"

let test_engine_negated_equation_split () =
  (* not (u = 3) with 2.5 <= u <= 3.5 and u integer: u must be 3... so
     asserting variable 1 false is unsat; asserting it true is sat. *)
  let text =
    {|p cnf 1 1
-1 0
c def int 1 u = 3
c bound u 2.6 3.4
|}
  in
  match A.Engine.solve (parse text) with
  | A.Engine.R_unsat, stats ->
    check bool_t "branched" true (stats.A.Engine.eq_branches >= 2)
  | _ -> Alcotest.fail "unsat expected (no integer != 3 in [2.6, 3.4])"

let test_engine_negated_equation_sat () =
  let text =
    {|p cnf 1 1
-1 0
c def real 1 u = 3
c bound u 0 10
|}
  in
  match A.Engine.solve (parse text) with
  | A.Engine.R_sat sol, _ ->
    check bool_t "verified" true (A.Solution.check (parse text) sol = Ok ())
  | _ -> Alcotest.fail "sat expected"

let test_engine_all_models () =
  (* Two free defined variables over disjoint intervals: exactly the
     arithmetically consistent delta-valuations are enumerated. *)
  let text =
    {|p cnf 2 1
1 2 0
c def real 1 u <= 1
c def real 2 u >= 2
|}
  in
  match A.Engine.all_models (parse text) with
  | Ok (models, _) ->
    (* (T,F) and (F,T) are consistent; (T,T) is not; (F,F) fails clause. *)
    check int_t "model count" 2 (List.length models)
  | Error e -> Alcotest.fail e

let test_engine_all_models_limit () =
  let text = "p cnf 3 1\n1 2 3 0\n" in
  match A.Engine.all_models ~limit:4 (parse text) with
  | Ok (models, _) -> check int_t "limited" 4 (List.length models)
  | Error e -> Alcotest.fail e

let test_engine_count_models () =
  let text = "p cnf 2 1\n1 2 0\n" in
  match A.Engine.count_models (parse text) with
  | Ok (n, stats) ->
    check int_t "count" 3 n;
    (* count_models now carries the run's stats like every entry point. *)
    check bool_t "stats examine at least n models" true
      (stats.A.Engine.bool_models >= n)
  | Error e -> Alcotest.fail e

let test_engine_chaff_registry_agrees () =
  let p () = parse fig2 in
  let r1 = fst (A.Engine.solve ~registry:A.Registry.default (p ())) in
  let r2 = fst (A.Engine.solve ~registry:A.Registry.with_chaff (p ())) in
  let name = function
    | A.Engine.R_sat _ -> "sat"
    | A.Engine.R_unsat -> "unsat"
    | A.Engine.R_unknown _ -> "unknown"
  in
  check string_t "registries agree" (name r1) (name r2)

let test_engine_unconditional_bound_conflict () =
  (* Bounds alone contradictory: immediately unsat. *)
  let text = "p cnf 1 1\n1 0\nc def real 1 u >= 0\nc bound u 5 2\n" in
  match A.Engine.solve (parse text) with
  | A.Engine.R_unsat, _ -> ()
  | _ -> Alcotest.fail "unsat expected"

let test_engine_solution_values_respect_domain () =
  let text =
    {|p cnf 2 2
1 0
2 0
c def int 1 3 * u >= 7
c def int 2 u <= 5
c bound u 0 100
|}
  in
  let p = parse text in
  match A.Engine.solve p with
  | A.Engine.R_sat sol, _ ->
    let u = Option.get (A.Ab_problem.arith_var_index p "u") in
    let v = A.Solution.float_env sol ~default:(-1.0) u in
    check bool_t "integral" true (Float.abs (v -. Float.round v) < 1e-9);
    check bool_t "in range" true (v >= 3.0 -. 1e-9 && v <= 5.0 +. 1e-9)
  | _ -> Alcotest.fail "sat expected"

(* ------------------------------------------------------------------ *)
(* Solution checking.                                                  *)

let test_solution_check_rejects_bad () =
  let p = parse fig2 in
  match A.Engine.solve p with
  | A.Engine.R_sat sol, _ ->
    (* Corrupt the Boolean part: variable 4 must be true (unit clause). *)
    let bad_bools = Array.copy sol.A.Solution.bools in
    bad_bools.(3) <- false;
    let bad = A.Solution.make ~bools:bad_bools ~arith:sol.A.Solution.arith ~certified:false in
    (match A.Solution.check p bad with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "corrupted solution accepted")
  | _ -> Alcotest.fail "sat expected"

let suite =
  [
    ("ab_problem build", `Quick, test_ab_problem_build);
    ("ab_problem multiple defs per var", `Quick, test_ab_problem_multiple_defs);
    ("ab_problem stats", `Quick, test_ab_problem_stats);
    ("ab_problem bounds", `Quick, test_ab_problem_bounds);
    ("ab_problem validation", `Quick, test_ab_problem_validate_errors);
    ("ab_problem circuit view", `Quick, test_ab_problem_circuit);
    ("dimacs_ext roundtrip", `Quick, test_dimacs_ext_roundtrip);
    ("dimacs_ext expression parser", `Quick, test_dimacs_ext_expr_parser);
    ("dimacs_ext function symbols", `Quick, test_dimacs_ext_expr_functions);
    ("dimacs_ext parse errors", `Quick, test_dimacs_ext_parse_errors);
    ("dimacs_ext relation parser", `Quick, test_dimacs_ext_rel_parser);
    ("engine fig2", `Quick, test_engine_fig2);
    ("engine pure boolean", `Quick, test_engine_pure_boolean);
    ("engine conflict refinement", `Quick, test_engine_linear_conflict_refinement);
    ("engine arithmetic unsat", `Quick, test_engine_arith_unsat);
    ("engine negated equation unsat", `Quick, test_engine_negated_equation_split);
    ("engine negated equation sat", `Quick, test_engine_negated_equation_sat);
    ("engine all models", `Quick, test_engine_all_models);
    ("engine all models limit", `Quick, test_engine_all_models_limit);
    ("engine count models", `Quick, test_engine_count_models);
    ("engine chaff registry agrees", `Quick, test_engine_chaff_registry_agrees);
    ("engine contradictory bounds", `Quick, test_engine_unconditional_bound_conflict);
    ("engine integer domains", `Quick, test_engine_solution_values_respect_domain);
    ("solution check rejects corruption", `Quick, test_solution_check_rejects_bad);
  ]
