(* The multicore layer: Chase–Lev deque invariants, first-win racing
   with cooperative cancellation, exact frontier termination, and the
   differential guarantee that branch-and-prune verdicts are identical
   at every job count.  Also exercises the Bigint machine-word fast
   paths against the limb-based slow paths around the 2-limb border. *)

module Pool = Absolver_parallel.Pool
module Ws_deque = Absolver_parallel.Ws_deque
module Budget = Absolver_resource.Budget
module Err = Absolver_resource.Absolver_error
module Telemetry = Absolver_telemetry.Telemetry
module Bi = Absolver_numeric.Bigint
module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval
module E = Absolver_nlp.Expr
module Box = Absolver_nlp.Box
module BP = Absolver_nlp.Branch_prune
module L = Absolver_lp.Linexpr

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Ws_deque.                                                           *)

let test_deque_lifo_pop () =
  let d = Ws_deque.create () in
  for i = 1 to 100 do
    Ws_deque.push d i
  done;
  check int_t "size" 100 (Ws_deque.size d);
  for i = 100 downto 1 do
    check (Alcotest.option int_t) "pop order" (Some i) (Ws_deque.pop d)
  done;
  check (Alcotest.option int_t) "empty pop" None (Ws_deque.pop d)

let test_deque_fifo_steal () =
  let d = Ws_deque.create () in
  for i = 1 to 100 do
    Ws_deque.push d i
  done;
  (* Uncontended steals never fail spuriously, and take the oldest. *)
  for i = 1 to 100 do
    check (Alcotest.option int_t) "steal order" (Some i) (Ws_deque.steal d)
  done;
  check (Alcotest.option int_t) "empty steal" None (Ws_deque.steal d)

let test_deque_grow_and_interleave () =
  (* Push well past the initial capacity, interleaving pops: the
     circular buffer must grow without dropping or duplicating items. *)
  let d = Ws_deque.create () in
  let seen = Hashtbl.create 64 in
  let n = 10_000 in
  for i = 1 to n do
    Ws_deque.push d i;
    if i mod 3 = 0 then
      match Ws_deque.pop d with
      | Some v -> Hashtbl.replace seen v ()
      | None -> Alcotest.fail "pop of a non-empty deque"
  done;
  let rec drain () =
    match Ws_deque.pop d with
    | Some v ->
      if Hashtbl.mem seen v then Alcotest.fail "duplicated item";
      Hashtbl.replace seen v ();
      drain ()
    | None -> ()
  in
  drain ();
  check int_t "all items accounted for" n (Hashtbl.length seen)

let test_deque_concurrent_steal () =
  (* One owner pushing/popping, one thief stealing: every item is
     consumed exactly once, none lost, none duplicated. *)
  let d = Ws_deque.create () in
  let n = 20_000 in
  let owner_done = Atomic.make false in
  let stolen = ref [] in
  let thief =
    Domain.spawn (fun () ->
        let quiet = ref false in
        while not !quiet do
          match Ws_deque.steal d with
          | Some v -> stolen := v :: !stolen
          | None ->
            (* Only a post-completion empty steal proves quiescence:
               steal's None is spurious under contention. *)
            if Atomic.get owner_done then quiet := true
            else Domain.cpu_relax ()
        done)
  in
  let popped = ref [] in
  for i = 1 to n do
    Ws_deque.push d i;
    if i mod 2 = 0 then
      match Ws_deque.pop d with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Ws_deque.pop d with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set owner_done true;
  Domain.join thief;
  let seen = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace seen v ()) !popped;
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then Alcotest.fail "item both popped and stolen";
      Hashtbl.replace seen v ())
    !stolen;
  check int_t "every item consumed once" n (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Budget forking.                                                     *)

let test_budget_fork_parent_cancel () =
  let parent = Budget.create () in
  let child = Budget.fork parent in
  check bool_t "child starts clean" true (Budget.check child = None);
  Budget.cancel parent;
  check bool_t "parent cancel reaches child" true
    (Budget.check child = Some Err.Cancelled)

let test_budget_fork_child_isolated () =
  let parent = Budget.create () in
  let c1 = Budget.fork parent in
  let c2 = Budget.fork parent in
  Budget.cancel c1;
  check bool_t "cancelled child trips" true (Budget.check c1 <> None);
  check bool_t "parent unaffected" true (Budget.check parent = None);
  check bool_t "sibling unaffected" true (Budget.check c2 = None)

(* ------------------------------------------------------------------ *)
(* Pool.race.                                                          *)

let test_race_first_win_cancels_losers () =
  let loser_saw_cancel = Atomic.make false in
  let entrants =
    [
      ( "fast",
        fun ~budget:_ ~telemetry:_ -> `Decisive );
      ( "slow",
        fun ~budget ~telemetry:_ ->
          (* Poll until cancelled by the winner; a bounded spin keeps the
             test finite even if cancellation were broken. *)
          let spins = ref 0 in
          while Budget.check budget = None && !spins < 100_000_000 do
            incr spins;
            Domain.cpu_relax ()
          done;
          if Budget.check budget <> None then Atomic.set loser_saw_cancel true;
          `Gave_up );
    ]
  in
  let report = Pool.race ~decisive:(fun r -> r = `Decisive) entrants in
  (match report.Pool.winner with
  | Some ("fast", `Decisive) -> ()
  | Some (name, _) -> Alcotest.failf "wrong winner %s" name
  | None -> Alcotest.fail "no winner");
  check int_t "all results reported" 2 (List.length report.Pool.results);
  check bool_t "loser was cancelled" true (Atomic.get loser_saw_cancel)

let test_race_exception_contained () =
  (* A crashing entrant must not take down a decisive one. *)
  let entrants =
    [
      ("crasher", fun ~budget:_ ~telemetry:_ -> failwith "boom");
      ("steady", fun ~budget:_ ~telemetry:_ -> `Decisive);
    ]
  in
  let report = Pool.race ~decisive:(fun r -> r = `Decisive) entrants in
  (match report.Pool.winner with
  | Some ("steady", `Decisive) -> ()
  | _ -> Alcotest.fail "steady entrant should win");
  match List.assoc "crasher" report.Pool.results with
  | Error (Failure msg) when msg = "boom" -> ()
  | Error _ -> Alcotest.fail "wrong exception recorded"
  | Ok _ -> Alcotest.fail "crasher cannot have a result"

let test_race_all_indecisive_reraises () =
  let entrants =
    [
      ("a", fun ~budget:_ ~telemetry:_ -> `Meh);
      ("b", fun ~budget:_ ~telemetry:_ -> failwith "kaboom");
    ]
  in
  match Pool.race ~decisive:(fun _ -> false) entrants with
  | _ -> Alcotest.fail "should re-raise when nobody is decisive"
  | exception Failure msg when msg = "kaboom" -> ()

let test_race_merges_telemetry () =
  let telemetry = Telemetry.create () in
  let entrants =
    [
      ( "a",
        fun ~budget:_ ~telemetry ->
          Telemetry.add telemetry "race.work" 3;
          `A );
      ( "b",
        fun ~budget:_ ~telemetry ->
          Telemetry.add telemetry "race.work" 4;
          `B );
    ]
  in
  let _ = Pool.race ~telemetry ~decisive:(fun _ -> false) entrants in
  check int_t "counters merged from both entrants" 7
    (Telemetry.counter telemetry "race.work")

let test_race_guard_contains_stray_exn () =
  (* Budget.guard is the outermost wrapper on every public entry point:
     a crashing competitor degrades to an [Error] payload and trips the
     budget, it never escapes as an exception. *)
  let budget = Budget.create () in
  (match Budget.guard budget (fun () -> failwith "stray") with
  | Ok _ -> Alcotest.fail "guard must not swallow into Ok"
  | Error (Err.Internal _) -> ()
  | Error e -> Alcotest.failf "wrong payload %s" (Err.to_string e));
  check bool_t "budget tripped" true (Budget.tripped budget <> None)

(* ------------------------------------------------------------------ *)
(* Pool.Frontier.                                                      *)

let frontier_sum ~jobs n =
  (* Seed [1..n] and have each item spawn nothing; sum all processed
     items atomically.  Drained means every item was seen exactly once. *)
  let total = Atomic.make 0 in
  let init = List.init n (fun i -> i + 1) in
  let outcome =
    Pool.Frontier.run ~jobs ~init (fun _ctx item ->
        ignore (Atomic.fetch_and_add total item))
  in
  (outcome, Atomic.get total)

let test_frontier_drains_exactly () =
  let n = 1000 in
  let expected = n * (n + 1) / 2 in
  List.iter
    (fun jobs ->
      match frontier_sum ~jobs n with
      | Pool.Frontier.Drained, total ->
        check int_t (Printf.sprintf "sum at jobs=%d" jobs) expected total
      | (Pool.Frontier.Finished _ | Pool.Frontier.Stopped), _ ->
        Alcotest.fail "expected Drained")
    [ 1; 2; 4 ]

let test_frontier_dynamic_pushes () =
  (* Items push children down to depth 0: a binary tree of 2^d leaves,
     counted exactly at every job count. *)
  let depth = 10 in
  List.iter
    (fun jobs ->
      let leaves = Atomic.make 0 in
      let outcome =
        Pool.Frontier.run ~jobs ~init:[ depth ] (fun ctx d ->
            if d = 0 then ignore (Atomic.fetch_and_add leaves 1)
            else begin
              ctx.Pool.Frontier.push (d - 1);
              ctx.Pool.Frontier.push (d - 1)
            end)
      in
      (match outcome with
      | Pool.Frontier.Drained -> ()
      | _ -> Alcotest.fail "expected Drained");
      check int_t
        (Printf.sprintf "leaves at jobs=%d" jobs)
        (1 lsl depth) (Atomic.get leaves))
    [ 1; 2; 4 ]

let test_frontier_finish_wins () =
  List.iter
    (fun jobs ->
      let outcome =
        Pool.Frontier.run ~jobs ~init:(List.init 100 Fun.id) (fun ctx item ->
            if item = 42 then ctx.Pool.Frontier.finish "found")
      in
      match outcome with
      | Pool.Frontier.Finished "found" -> ()
      | _ -> Alcotest.fail "expected Finished")
    [ 1; 2; 4 ]

let test_frontier_budget_stops () =
  (* A cancelled parent budget reaches every forked worker: the outcome
     must be Stopped, never a false Drained (which downstream reads as
     exhaustive/Unsat).  Worker budgets fork with fresh step meters, so
     cancellation and deadlines — not step counts — are what propagate. *)
  let budget = Budget.create () in
  Budget.cancel budget;
  let outcome =
    Pool.Frontier.run ~budget ~jobs:2 ~init:(List.init 10_000 Fun.id)
      (fun ctx _item -> Budget.check_exn ctx.Pool.Frontier.budget)
  in
  match outcome with
  | Pool.Frontier.Stopped -> ()
  | Pool.Frontier.Drained -> Alcotest.fail "cancellation must not drain"
  | Pool.Frontier.Finished _ -> Alcotest.fail "nobody finished"

let test_frontier_exception_reraised () =
  match
    Pool.Frontier.run ~jobs:2 ~init:(List.init 100 Fun.id) (fun _ctx item ->
        if item = 7 then failwith "worker crash")
  with
  | _ -> Alcotest.fail "worker exception must re-raise at the join"
  | exception Failure msg when msg = "worker crash" -> ()

(* ------------------------------------------------------------------ *)
(* Differential branch-and-prune: jobs 1/2/4 agree.                    *)

let x = E.var 0
let y = E.var 1
let q = Q.of_int

let constructor = function
  | BP.Sat _ -> "sat"
  | BP.Approx_sat _ -> "approx_sat"
  | BP.Unsat -> "unsat"
  | BP.Unknown -> "unknown"

let verdict_class = function
  | BP.Sat _ | BP.Approx_sat _ -> "sat"
  | BP.Unsat -> "unsat"
  | BP.Unknown -> "unknown"

let solve_jobs ~jobs ?(config = BP.default_config) nvars bounds rels =
  let box = Box.of_bounds bounds nvars in
  fst (BP.solve ~config ~jobs ~nvars ~box rels)

let check_witness rels = function
  | BP.Sat p ->
    check bool_t "rigorous witness" true
      (List.for_all (fun r -> E.certainly_holds (Box.point_env p) r) rels)
  | BP.Approx_sat p ->
    check bool_t "approximate witness" true
      (List.for_all (E.holds_float ~tol:1e-5 (fun v -> p.(v))) rels)
  | BP.Unsat | BP.Unknown -> ()

let differential_case name nvars bounds rels =
  let r1 = solve_jobs ~jobs:1 nvars bounds rels in
  List.iter
    (fun jobs ->
      let r = solve_jobs ~jobs nvars bounds rels in
      check Alcotest.string
        (Printf.sprintf "%s verdict class at jobs=%d" name jobs)
        (verdict_class r1) (verdict_class r);
      check_witness rels r)
    [ 2; 4 ]

let test_differential_sat () =
  (* The unit disk intersected with a half-plane: satisfiable. *)
  differential_case "disk+halfplane" 2
    [ (0, I.make (-2.0) 2.0); (1, I.make (-2.0) 2.0) ]
    [
      { E.expr = E.sub (E.add (E.pow x 2) (E.pow y 2)) (E.const Q.one); op = L.Le; tag = 0 };
      { E.expr = E.sub (E.const (Q.of_decimal_string "0.5")) (E.add x y); op = L.Le; tag = 1 };
    ]

let test_differential_unsat () =
  (* x^2 + y^2 <= -1: empty, provable by frontier drain only. *)
  differential_case "negative-disk" 2
    [ (0, I.make (-2.0) 2.0); (1, I.make (-2.0) 2.0) ]
    [
      { E.expr = E.add (E.add (E.pow x 2) (E.pow y 2)) (E.const Q.one); op = L.Le; tag = 0 };
    ]

let test_differential_transcendental () =
  differential_case "exp-root" 1
    [ (0, I.make (-10.0) 10.0) ]
    [ { E.expr = E.sub (E.exp x) (E.const (q 3)); op = L.Eq; tag = 0 } ]

let test_differential_random () =
  (* Seeded random conjunctions: the parallel tree is schedule-independent
     by construction (path-seeded RNG), so Sat/Unsat classes must agree at
     every job count. *)
  let st = Random.State.make [| 77 |] in
  for _ = 1 to 12 do
    let mk_rel tag =
      let e =
        match Random.State.int st 3 with
        | 0 -> E.add (E.mul x y) (E.neg (E.pow x 2))
        | 1 -> E.sub (E.pow x 2) (E.mul (E.const (q 2)) y)
        | _ -> E.add (E.sin x) y
      in
      let c = Q.of_float (Random.State.float st 4.0 -. 2.0) in
      let op = if Random.State.bool st then L.Le else L.Ge in
      { E.expr = E.sub e (E.const c); op; tag }
    in
    let rels = List.init (1 + Random.State.int st 2) mk_rel in
    let config = { BP.default_config with BP.max_nodes = 500 } in
    let r1 = solve_jobs ~jobs:1 ~config 2
        [ (0, I.make (-3.0) 3.0); (1, I.make (-3.0) 3.0) ] rels
    in
    let r4 = solve_jobs ~jobs:4 ~config 2
        [ (0, I.make (-3.0) 3.0); (1, I.make (-3.0) 3.0) ] rels
    in
    (* Definite verdicts must never contradict each other; a node-capped
       run may degrade to unknown on one side. *)
    (match (verdict_class r1, verdict_class r4) with
    | "sat", "unsat" | "unsat", "sat" ->
      Alcotest.failf "jobs disagree: seq=%s par=%s" (constructor r1)
        (constructor r4)
    | _ -> ());
    check_witness rels r1;
    check_witness rels r4
  done

let test_jobs1_is_sequential () =
  (* jobs=1 must be bit-for-bit the sequential solver: identical
     constructor AND identical witness coordinates across calls. *)
  let rels =
    [ { E.expr = E.sub (E.pow x 2) (E.const (q 2)); op = L.Eq; tag = 0 } ]
  in
  let bounds = [ (0, I.make 0.0 2.0) ] in
  let a = solve_jobs ~jobs:1 1 bounds rels in
  let b = solve_jobs ~jobs:1 1 bounds rels in
  match (a, b) with
  | BP.Sat p, BP.Sat p' | BP.Approx_sat p, BP.Approx_sat p' ->
    check bool_t "identical witness" true (p = p')
  | BP.Unsat, BP.Unsat | BP.Unknown, BP.Unknown -> ()
  | _ -> Alcotest.failf "nondeterministic: %s vs %s" (constructor a) (constructor b)

(* ------------------------------------------------------------------ *)
(* Bigint fast paths.                                                  *)

let test_bigint_small_matches_native () =
  let st = Random.State.make [| 13 |] in
  for _ = 1 to 2_000 do
    let a = Random.State.int st 1_000_000 - 500_000 in
    let b = Random.State.int st 1_000_000 - 500_000 in
    let ba = Bi.of_int a and bb = Bi.of_int b in
    check Alcotest.string "add" (string_of_int (a + b)) (Bi.to_string (Bi.add ba bb));
    check Alcotest.string "sub" (string_of_int (a - b)) (Bi.to_string (Bi.sub ba bb));
    check Alcotest.string "mul" (string_of_int (a * b)) (Bi.to_string (Bi.mul ba bb));
    check int_t "compare" (Int.compare a b) (Bi.compare ba bb);
    if b <> 0 then begin
      check Alcotest.string "div" (string_of_int (a / b)) (Bi.to_string (Bi.div ba bb));
      check Alcotest.string "rem" (string_of_int (a mod b)) (Bi.to_string (Bi.rem ba bb))
    end;
    let rec g a b = if b = 0 then a else g b (a mod b) in
    check Alcotest.string "gcd"
      (string_of_int (g (Stdlib.abs a) (Stdlib.abs b)))
      (Bi.to_string (Bi.gcd ba bb))
  done

let test_bigint_boundary_consistency () =
  (* Around the 2-limb (60-bit) border the implementation switches
     between machine and limb arithmetic: algebraic identities must hold
     regardless of which path each operand takes. *)
  let st = Random.State.make [| 14 |] in
  let big_pool =
    [
      Bi.of_string "1152921504606846975" (* 2^60 - 1: last all-small value *);
      Bi.of_string "1152921504606846976" (* 2^60: first 3-limb magnitude *);
      Bi.of_string "170141183460469231731687303715884105727";
      Bi.of_string "-1152921504606846977";
      Bi.of_int max_int;
      Bi.of_int min_int;
      Bi.of_int 1;
      Bi.of_int (-1);
      Bi.zero;
    ]
  in
  let rand_small () = Bi.of_int (Random.State.int st 2_000_001 - 1_000_000) in
  let pick () =
    if Random.State.bool st then List.nth big_pool (Random.State.int st (List.length big_pool))
    else rand_small ()
  in
  for _ = 1 to 500 do
    let a = pick () and b = pick () in
    (* (a + b) - b = a *)
    check bool_t "add/sub roundtrip" true (Bi.equal (Bi.sub (Bi.add a b) b) a);
    (* (a * b) / b = a when b <> 0, and divmod reconstructs. *)
    if not (Bi.is_zero b) then begin
      check bool_t "mul/div roundtrip" true (Bi.equal (Bi.div (Bi.mul a b) b) a);
      let q, r = Bi.divmod a b in
      check bool_t "divmod reconstructs" true (Bi.equal (Bi.add (Bi.mul q b) r) a);
      check bool_t "rem bounded" true (Bi.compare (Bi.abs r) (Bi.abs b) < 0)
    end;
    (* gcd divides both and is symmetric. *)
    let g = Bi.gcd a b in
    if not (Bi.is_zero g) then begin
      check bool_t "gcd divides a" true (Bi.is_zero (Bi.rem a g));
      check bool_t "gcd divides b" true (Bi.is_zero (Bi.rem b g));
      check bool_t "gcd symmetric" true (Bi.equal g (Bi.gcd b a))
    end;
    (* compare is antisymmetric and agrees with sub's sign. *)
    check int_t "compare antisym" (Bi.compare a b) (-Bi.compare b a);
    check int_t "compare via sub" (Bi.compare a b) (Bi.sign (Bi.sub a b))
  done

(* ------------------------------------------------------------------ *)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "deque: LIFO pop." test_deque_lifo_pop;
    t "deque: FIFO steal." test_deque_fifo_steal;
    t "deque: grows and interleaves." test_deque_grow_and_interleave;
    t "deque: concurrent steal." test_deque_concurrent_steal;
    t "budget: parent cancel reaches fork." test_budget_fork_parent_cancel;
    t "budget: child trip isolated." test_budget_fork_child_isolated;
    t "race: first win cancels losers." test_race_first_win_cancels_losers;
    t "race: exception contained." test_race_exception_contained;
    t "race: indecisive re-raises." test_race_all_indecisive_reraises;
    t "race: telemetry merged." test_race_merges_telemetry;
    t "race: guard contains stray exn." test_race_guard_contains_stray_exn;
    t "frontier: drains exactly." test_frontier_drains_exactly;
    t "frontier: dynamic pushes." test_frontier_dynamic_pushes;
    t "frontier: finish wins." test_frontier_finish_wins;
    t "frontier: budget stops." test_frontier_budget_stops;
    t "frontier: exception re-raised." test_frontier_exception_reraised;
    t "bp: differential sat." test_differential_sat;
    t "bp: differential unsat." test_differential_unsat;
    t "bp: differential transcendental." test_differential_transcendental;
    t "bp: differential random." test_differential_random;
    t "bp: jobs=1 is sequential." test_jobs1_is_sequential;
    t "bigint: small matches native." test_bigint_small_matches_native;
    t "bigint: boundary consistency." test_bigint_boundary_consistency;
  ]
