(* Telemetry: clock monotonicity, span nesting and aggregation, counter
   semantics, the JSONL trace schema, and the on/off equivalence the
   engine promises (observation only — never a different answer). *)

module T = Absolver_telemetry.Telemetry
module A = Absolver_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---- clock ---- *)

let test_clock_monotone () =
  let prev = ref (T.Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = T.Clock.now () in
    if t < !prev then Alcotest.failf "clock went backwards: %f < %f" t !prev;
    prev := t
  done

let test_clock_advances () =
  let t0 = T.Clock.now () in
  (* burn a little real time *)
  let s = ref 0 in
  for i = 1 to 1_000_000 do
    s := !s + i
  done;
  ignore (Sys.opaque_identity !s);
  check bool_t "now() eventually advances" true (T.Clock.now () >= t0)

(* ---- disabled handle ---- *)

let test_disabled_noops () =
  let tel = T.disabled in
  check bool_t "disabled is not enabled" false (T.enabled tel);
  let r = T.span tel "anything" (fun () -> 42) in
  check int_t "span passes the result through" 42 r;
  T.add tel "c" 5;
  T.set_gauge tel "g" 1.0;
  T.event tel "e";
  check int_t "counter reads 0" 0 (T.counter tel "c");
  check int_t "no counters" 0 (List.length (T.counters tel));
  check int_t "no gauges" 0 (List.length (T.gauges tel));
  check int_t "no span aggregates" 0 (List.length (T.span_aggregates tel));
  T.close tel

(* ---- spans, counters, gauges ---- *)

let test_counters_monotone () =
  let tel = T.create () in
  T.add tel "work" 3;
  T.add tel "work" 2;
  T.add tel "work" (-7);
  (* ignored: monotone *)
  T.add tel "work" 0;
  (* ignored *)
  check int_t "total" 5 (T.counter tel "work");
  check int_t "unknown counter" 0 (T.counter tel "nope");
  T.set_gauge tel "depth" 3.0;
  T.set_gauge tel "depth" 1.5;
  (match T.gauges tel with
  | [ ("depth", v) ] -> check bool_t "gauge keeps last" true (v = 1.5)
  | other -> Alcotest.failf "unexpected gauges (%d)" (List.length other));
  T.close tel

let test_span_aggregation () =
  let tel = T.create () in
  for _ = 1 to 3 do
    T.span tel "outer" (fun () -> T.span tel "inner" (fun () -> ()))
  done;
  T.span tel "inner" (fun () -> ());
  T.close tel;
  let agg name =
    match List.assoc_opt name (T.span_aggregates tel) with
    | Some a -> a
    | None -> Alcotest.failf "span %s not aggregated" name
  in
  check int_t "outer calls" 3 (agg "outer").T.agg_calls;
  check int_t "inner calls" 4 (agg "inner").T.agg_calls;
  let o = agg "outer" in
  check bool_t "total >= 0" true (o.T.agg_total_s >= 0.0);
  check bool_t "max <= total" true (o.T.agg_max_s <= o.T.agg_total_s +. 1e-9)

let test_span_exception_safe () =
  let tel = T.create () in
  (try T.span tel "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  let r = T.span tel "after" (fun () -> "ok") in
  check string_t "usable after exception" "ok" r;
  T.close tel;
  check int_t "raising span still recorded" 1
    (match List.assoc_opt "boom" (T.span_aggregates tel) with
    | Some a -> a.T.agg_calls
    | None -> 0);
  check int_t "after span at top level again" 1
    (match List.assoc_opt "after" (T.span_aggregates tel) with
    | Some a -> a.T.agg_calls
    | None -> 0)

let test_manual_spans_nest () =
  let tel = T.create () in
  let a = T.span_open tel "a" in
  let _b = T.span_open tel "b" in
  (* closing [a] also closes the still-open [b]: nesting is structural *)
  T.span_close tel a;
  T.close tel;
  let calls name =
    match List.assoc_opt name (T.span_aggregates tel) with
    | Some a -> a.T.agg_calls
    | None -> 0
  in
  check int_t "a closed" 1 (calls "a");
  check int_t "b auto-closed" 1 (calls "b")

(* ---- JSON helpers ---- *)

let test_json_helpers () =
  check string_t "escape quotes" "a\\\"b" (T.Json.escape "a\"b");
  check string_t "escape newline" "a\\nb" (T.Json.escape "a\nb");
  check string_t "nan clamps to null" "null" (T.Json.of_float Float.nan);
  check string_t "infinity clamps to null" "null"
    (T.Json.of_float Float.infinity);
  check string_t "obj" "{\"a\":1,\"b\":\"x\"}"
    (T.Json.obj [ ("a", "1"); ("b", "\"x\"") ]);
  check string_t "int value" "3" (T.Json.of_value (T.Int 3));
  check string_t "bool value" "true" (T.Json.of_value (T.Bool true))

(* ---- trace schema ---- *)

let fig2_text =
  {|p cnf 3 3
1 0
-2 3 0
3 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
|}

let parse text =
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> failwith e

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_trace_schema () =
  let path = Filename.temp_file "absolver_trace" ".jsonl" in
  let oc = open_out path in
  let tel = T.create ~trace:oc () in
  let options = { A.Engine.default_options with A.Engine.telemetry = tel } in
  let result, _stats = A.Engine.solve ~options (parse fig2_text) in
  (match result with
  | A.Engine.R_sat _ -> ()
  | _ -> Alcotest.fail "fig2 fragment should be sat");
  T.close tel;
  close_out oc;
  let lines = read_lines path in
  Sys.remove path;
  check bool_t "trace nonempty" true (List.length lines > 3);
  (* every line is one JSON object with a type tag *)
  List.iter
    (fun line ->
      let n = String.length line in
      if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then
        Alcotest.failf "not a JSON object line: %s" line;
      let has fragment =
        let fl = String.length fragment in
        let rec at i =
          i + fl <= n && (String.sub line i fl = fragment || at (i + 1))
        in
        at 0
      in
      if not (has "\"type\":\"") then Alcotest.failf "missing type: %s" line)
    lines;
  let starts_with prefix line =
    String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  in
  (match lines with
  | first :: _ ->
    check bool_t "first line is the meta object" true
      (starts_with "{\"type\":\"meta\",\"format\":\"absolver-trace\"" first)
  | [] -> Alcotest.fail "empty trace");
  let contains fragment line =
    let n = String.length line and fl = String.length fragment in
    let rec at i = i + fl <= n && (String.sub line i fl = fragment || at (i + 1)) in
    at 0
  in
  let spans = List.filter (contains "\"type\":\"span\"") lines in
  check bool_t "has span lines" true (spans <> []);
  List.iter
    (fun s ->
      List.iter
        (fun key ->
          if not (contains key s) then Alcotest.failf "span missing %s: %s" key s)
        [ "\"id\":"; "\"parent\":"; "\"name\":\""; "\"start\":"; "\"dur\":" ])
    spans;
  let span_named name = List.exists (contains ("\"name\":\"" ^ name ^ "\"")) spans in
  check bool_t "solve root span" true (span_named "solve");
  check bool_t "presolve span" true (span_named "presolve");
  check bool_t "bool_model span" true (span_named "bool_model");
  check bool_t "linear_check span" true (span_named "linear_check");
  (* the root solve span has parent 0 (no parent) and children point at it *)
  check bool_t "some span nests under another" true
    (List.exists (fun s -> not (contains "\"parent\":0" s)) spans);
  (* final counter totals are emitted on close, one line per counter *)
  check bool_t "counter totals at close" true
    (List.exists (contains "\"type\":\"counter\"") lines)

(* ---- on/off equivalence ---- *)

let nonlinear_text =
  {|p cnf 1 1
1 0
c def real 1 x * x + y * y <= 1
c def real 1 x * y >= 2
c bound x -10 10
c bound y -10 10
|}

let unsat_text = {|p cnf 2 2
1 0
2 0
c def real 1 u <= 1
c def real 2 u >= 2
|}

let multi_text = {|p cnf 2 1
1 2 0
c def real 1 u <= 1
c def real 2 u >= 2
|}

let verdict = function
  | A.Engine.R_sat _ -> "sat"
  | A.Engine.R_unsat -> "unsat"
  | A.Engine.R_unknown _ -> "unknown"

let structural (st : A.Engine.run_stats) =
  ( st.A.Engine.bool_models,
    st.A.Engine.linear_checks,
    st.A.Engine.linear_conflicts,
    st.A.Engine.nonlinear_calls,
    st.A.Engine.blocking_clauses,
    st.A.Engine.eq_branches,
    st.A.Engine.sat_decisions,
    st.A.Engine.simplex_pivots )

let test_on_off_equivalence () =
  List.iter
    (fun (name, text) ->
      let solve tel =
        let options = { A.Engine.default_options with A.Engine.telemetry = tel } in
        A.Engine.solve ~options (parse text)
      in
      let r_off, st_off = solve T.disabled in
      let tel = T.create () in
      let r_on, st_on = solve tel in
      T.close tel;
      check string_t (name ^ ": same verdict") (verdict r_off) (verdict r_on);
      check bool_t
        (name ^ ": same structural stats")
        true
        (structural st_off = structural st_on))
    [
      ("fig2", fig2_text);
      ("nonlinear_unsat", nonlinear_text);
      ("unsat", unsat_text);
      ("multi", multi_text);
    ]

let test_all_models_equivalence () =
  let solve tel =
    let options = { A.Engine.default_options with A.Engine.telemetry = tel } in
    match A.Engine.all_models ~options (parse multi_text) with
    | Ok (models, st) -> (List.length models, structural st)
    | Error e -> failwith e
  in
  let off = solve T.disabled in
  let tel = T.create () in
  let on = solve tel in
  T.close tel;
  check bool_t "all_models identical with telemetry on" true (off = on)

let suite =
  [
    Alcotest.test_case "clock is monotone" `Quick test_clock_monotone;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "disabled handle is a no-op" `Quick test_disabled_noops;
    Alcotest.test_case "counters are monotone" `Quick test_counters_monotone;
    Alcotest.test_case "spans aggregate per name" `Quick test_span_aggregation;
    Alcotest.test_case "spans survive exceptions" `Quick test_span_exception_safe;
    Alcotest.test_case "manual spans close nested" `Quick test_manual_spans_nest;
    Alcotest.test_case "json helpers" `Quick test_json_helpers;
    Alcotest.test_case "JSONL trace schema" `Quick test_trace_schema;
    Alcotest.test_case "solve: telemetry on/off equivalence" `Quick
      test_on_off_equivalence;
    Alcotest.test_case "all_models: telemetry on/off equivalence" `Quick
      test_all_models_equivalence;
  ]
