(* Telemetry: clock monotonicity, span nesting and aggregation, counter
   semantics, the JSONL trace schema, and the on/off equivalence the
   engine promises (observation only — never a different answer). *)

module T = Absolver_telemetry.Telemetry
module A = Absolver_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---- clock ---- *)

let test_clock_monotone () =
  let prev = ref (T.Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = T.Clock.now () in
    if t < !prev then Alcotest.failf "clock went backwards: %f < %f" t !prev;
    prev := t
  done

let test_clock_advances () =
  let t0 = T.Clock.now () in
  (* burn a little real time *)
  let s = ref 0 in
  for i = 1 to 1_000_000 do
    s := !s + i
  done;
  ignore (Sys.opaque_identity !s);
  check bool_t "now() eventually advances" true (T.Clock.now () >= t0)

(* ---- disabled handle ---- *)

let test_disabled_noops () =
  let tel = T.disabled in
  check bool_t "disabled is not enabled" false (T.enabled tel);
  let r = T.span tel "anything" (fun () -> 42) in
  check int_t "span passes the result through" 42 r;
  T.add tel "c" 5;
  T.set_gauge tel "g" 1.0;
  T.event tel "e";
  check int_t "counter reads 0" 0 (T.counter tel "c");
  check int_t "no counters" 0 (List.length (T.counters tel));
  check int_t "no gauges" 0 (List.length (T.gauges tel));
  check int_t "no span aggregates" 0 (List.length (T.span_aggregates tel));
  T.close tel

(* ---- spans, counters, gauges ---- *)

let test_counters_monotone () =
  let tel = T.create () in
  T.add tel "work" 3;
  T.add tel "work" 2;
  T.add tel "work" (-7);
  (* ignored: monotone *)
  T.add tel "work" 0;
  (* ignored *)
  check int_t "total" 5 (T.counter tel "work");
  check int_t "unknown counter" 0 (T.counter tel "nope");
  T.set_gauge tel "depth" 3.0;
  T.set_gauge tel "depth" 1.5;
  (match T.gauges tel with
  | [ ("depth", v) ] -> check bool_t "gauge keeps last" true (v = 1.5)
  | other -> Alcotest.failf "unexpected gauges (%d)" (List.length other));
  T.close tel

let test_span_aggregation () =
  let tel = T.create () in
  for _ = 1 to 3 do
    T.span tel "outer" (fun () -> T.span tel "inner" (fun () -> ()))
  done;
  T.span tel "inner" (fun () -> ());
  T.close tel;
  let agg name =
    match List.assoc_opt name (T.span_aggregates tel) with
    | Some a -> a
    | None -> Alcotest.failf "span %s not aggregated" name
  in
  check int_t "outer calls" 3 (agg "outer").T.agg_calls;
  check int_t "inner calls" 4 (agg "inner").T.agg_calls;
  let o = agg "outer" in
  check bool_t "total >= 0" true (o.T.agg_total_s >= 0.0);
  check bool_t "max <= total" true (o.T.agg_max_s <= o.T.agg_total_s +. 1e-9)

let test_span_exception_safe () =
  let tel = T.create () in
  (try T.span tel "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  let r = T.span tel "after" (fun () -> "ok") in
  check string_t "usable after exception" "ok" r;
  T.close tel;
  check int_t "raising span still recorded" 1
    (match List.assoc_opt "boom" (T.span_aggregates tel) with
    | Some a -> a.T.agg_calls
    | None -> 0);
  check int_t "after span at top level again" 1
    (match List.assoc_opt "after" (T.span_aggregates tel) with
    | Some a -> a.T.agg_calls
    | None -> 0)

let test_manual_spans_nest () =
  let tel = T.create () in
  let a = T.span_open tel "a" in
  let _b = T.span_open tel "b" in
  (* closing [a] also closes the still-open [b]: nesting is structural *)
  T.span_close tel a;
  T.close tel;
  let calls name =
    match List.assoc_opt name (T.span_aggregates tel) with
    | Some a -> a.T.agg_calls
    | None -> 0
  in
  check int_t "a closed" 1 (calls "a");
  check int_t "b auto-closed" 1 (calls "b")

(* ---- JSON helpers ---- *)

let test_json_helpers () =
  check string_t "escape quotes" "a\\\"b" (T.Json.escape "a\"b");
  check string_t "escape newline" "a\\nb" (T.Json.escape "a\nb");
  check string_t "nan clamps to null" "null" (T.Json.of_float Float.nan);
  check string_t "infinity clamps to null" "null"
    (T.Json.of_float Float.infinity);
  check string_t "obj" "{\"a\":1,\"b\":\"x\"}"
    (T.Json.obj [ ("a", "1"); ("b", "\"x\"") ]);
  check string_t "int value" "3" (T.Json.of_value (T.Int 3));
  check string_t "bool value" "true" (T.Json.of_value (T.Bool true))

(* ---- trace schema ---- *)

let fig2_text =
  {|p cnf 3 3
1 0
-2 3 0
3 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
|}

let parse text =
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> failwith e

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_trace_schema () =
  let path = Filename.temp_file "absolver_trace" ".jsonl" in
  let oc = open_out path in
  let tel = T.create ~trace:oc () in
  let options = { A.Engine.default_options with A.Engine.telemetry = tel } in
  let result, _stats = A.Engine.solve ~options (parse fig2_text) in
  (match result with
  | A.Engine.R_sat _ -> ()
  | _ -> Alcotest.fail "fig2 fragment should be sat");
  T.close tel;
  close_out oc;
  let lines = read_lines path in
  Sys.remove path;
  check bool_t "trace nonempty" true (List.length lines > 3);
  (* every line is one JSON object with a type tag *)
  List.iter
    (fun line ->
      let n = String.length line in
      if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then
        Alcotest.failf "not a JSON object line: %s" line;
      let has fragment =
        let fl = String.length fragment in
        let rec at i =
          i + fl <= n && (String.sub line i fl = fragment || at (i + 1))
        in
        at 0
      in
      if not (has "\"type\":\"") then Alcotest.failf "missing type: %s" line)
    lines;
  let starts_with prefix line =
    String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  in
  (match lines with
  | first :: _ ->
    check bool_t "first line is the meta object" true
      (starts_with "{\"type\":\"meta\",\"format\":\"absolver-trace\"" first)
  | [] -> Alcotest.fail "empty trace");
  let contains fragment line =
    let n = String.length line and fl = String.length fragment in
    let rec at i = i + fl <= n && (String.sub line i fl = fragment || at (i + 1)) in
    at 0
  in
  let spans = List.filter (contains "\"type\":\"span\"") lines in
  check bool_t "has span lines" true (spans <> []);
  List.iter
    (fun s ->
      List.iter
        (fun key ->
          if not (contains key s) then Alcotest.failf "span missing %s: %s" key s)
        [ "\"id\":"; "\"parent\":"; "\"name\":\""; "\"start\":"; "\"dur\":" ])
    spans;
  let span_named name = List.exists (contains ("\"name\":\"" ^ name ^ "\"")) spans in
  check bool_t "solve root span" true (span_named "solve");
  check bool_t "presolve span" true (span_named "presolve");
  check bool_t "bool_model span" true (span_named "bool_model");
  check bool_t "linear_check span" true (span_named "linear_check");
  (* the root solve span has parent 0 (no parent) and children point at it *)
  check bool_t "some span nests under another" true
    (List.exists (fun s -> not (contains "\"parent\":0" s)) spans);
  (* final counter totals are emitted on close, one line per counter *)
  check bool_t "counter totals at close" true
    (List.exists (contains "\"type\":\"counter\"") lines)

(* ---- on/off equivalence ---- *)

let nonlinear_text =
  {|p cnf 1 1
1 0
c def real 1 x * x + y * y <= 1
c def real 1 x * y >= 2
c bound x -10 10
c bound y -10 10
|}

let unsat_text = {|p cnf 2 2
1 0
2 0
c def real 1 u <= 1
c def real 2 u >= 2
|}

let multi_text = {|p cnf 2 1
1 2 0
c def real 1 u <= 1
c def real 2 u >= 2
|}

let verdict = function
  | A.Engine.R_sat _ -> "sat"
  | A.Engine.R_unsat -> "unsat"
  | A.Engine.R_unknown _ -> "unknown"

let structural (st : A.Engine.run_stats) =
  ( st.A.Engine.bool_models,
    st.A.Engine.linear_checks,
    st.A.Engine.linear_conflicts,
    st.A.Engine.nonlinear_calls,
    st.A.Engine.blocking_clauses,
    st.A.Engine.eq_branches,
    st.A.Engine.sat_decisions,
    st.A.Engine.simplex_pivots )

let test_on_off_equivalence () =
  List.iter
    (fun (name, text) ->
      let solve tel =
        let options = { A.Engine.default_options with A.Engine.telemetry = tel } in
        A.Engine.solve ~options (parse text)
      in
      let r_off, st_off = solve T.disabled in
      let tel = T.create () in
      let r_on, st_on = solve tel in
      T.close tel;
      check string_t (name ^ ": same verdict") (verdict r_off) (verdict r_on);
      check bool_t
        (name ^ ": same structural stats")
        true
        (structural st_off = structural st_on))
    [
      ("fig2", fig2_text);
      ("nonlinear_unsat", nonlinear_text);
      ("unsat", unsat_text);
      ("multi", multi_text);
    ]

let test_all_models_equivalence () =
  let solve tel =
    let options = { A.Engine.default_options with A.Engine.telemetry = tel } in
    match A.Engine.all_models ~options (parse multi_text) with
    | Ok (models, st) -> (List.length models, structural st)
    | Error e -> failwith e
  in
  let off = solve T.disabled in
  let tel = T.create () in
  let on = solve tel in
  T.close tel;
  check bool_t "all_models identical with telemetry on" true (off = on)

(* ---- histograms ---- *)

let test_hist_basic () =
  let tel = T.create () in
  List.iter (T.observe tel "lat") [ 1.0; 2.0; 4.0; 8.0; 100.0 ];
  let h =
    match T.histogram tel "lat" with
    | Some h -> h
    | None -> Alcotest.fail "histogram missing"
  in
  check int_t "count" 5 h.T.h_count;
  check bool_t "sum" true (Float.abs (h.T.h_sum -. 115.0) < 1e-9);
  check bool_t "min" true (h.T.h_min = 1.0);
  check bool_t "max" true (h.T.h_max = 100.0);
  check bool_t "unknown name" true (T.histogram tel "nope" = None);
  T.close tel

let test_hist_bucket_boundaries () =
  (* every bucket bound is an exact power of γ, and each sample lands in
     the bucket whose range (ub/γ, ub] contains it *)
  let tel = T.create () in
  let samples = [ 0.0013; 0.7; 1.0; 1.0000001; 3.5; 1234.5; -2.0; 0.0 ] in
  List.iter (T.observe tel "x") samples;
  let h = Option.get (T.histogram tel "x") in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 h.T.h_buckets in
  check int_t "bucket counts sum to count" h.T.h_count total;
  List.iter
    (fun (ub, _) ->
      if ub > 0.0 then begin
        let i = Float.round (Float.log ub /. Float.log T.hist_gamma) in
        let back = Float.pow T.hist_gamma i in
        if Float.abs (back -. ub) > 1e-9 *. ub then
          Alcotest.failf "bucket bound %.17g is not a power of gamma" ub
      end)
    h.T.h_buckets;
  List.iter
    (fun v ->
      let covering =
        List.filter
          (fun (ub, _) ->
            if v <= 0.0 then ub = 0.0 else v <= ub && v > ub /. T.hist_gamma)
          h.T.h_buckets
      in
      check int_t
        (Printf.sprintf "exactly one bucket covers %g" v)
        1 (List.length covering))
    samples;
  (* cumulative counts are monotone and end at the total *)
  let cum = T.hist_cumulative h in
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check bool_t "cumulative monotone" true (mono cum);
  (match List.rev cum with
  | (_, last) :: _ -> check int_t "cumulative ends at count" h.T.h_count last
  | [] -> Alcotest.fail "empty cumulative");
  T.close tel

let test_hist_quantile_bounds () =
  (* nearest-rank estimate stays within a √γ factor of the exact
     percentile, and within [min,max], for a deterministic LCG stream *)
  let n = 2000 in
  let seed = ref 12345 in
  let next () =
    seed := ((!seed * 1103515245) + 12321) land 0x3FFFFFFF;
    float_of_int (1 + (!seed mod 100000)) /. 7.0
  in
  let tel = T.create () in
  let values = Array.init n (fun _ -> next ()) in
  Array.iter (T.observe tel "v") values;
  let h = Option.get (T.histogram tel "v") in
  Array.sort compare values;
  let tol = sqrt T.hist_gamma *. 1.0001 in
  List.iter
    (fun q ->
      let est = T.hist_quantile h q in
      let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
      let exact = values.(rank - 1) in
      check bool_t
        (Printf.sprintf "q%.2f within range" q)
        true
        (est >= h.T.h_min && est <= h.T.h_max);
      if est > exact *. tol || est < exact /. tol then
        Alcotest.failf "q%.2f estimate %g too far from exact %g" q est exact)
    [ 0.01; 0.25; 0.50; 0.90; 0.95; 0.99; 1.0 ];
  T.close tel

let hist_as_list tel name =
  match T.histogram tel name with
  | Some h -> (h.T.h_count, h.T.h_sum, h.T.h_min, h.T.h_max, h.T.h_buckets)
  | None -> Alcotest.fail ("no histogram " ^ name)

let test_hist_merge_associative () =
  let mk samples =
    let tel = T.create () in
    List.iter (T.observe tel "m") samples;
    tel
  in
  let a () = mk [ 0.5; 1.0; 2.0 ]
  and b () = mk [ 2.0; 64.0; -1.0 ]
  and c () = mk [ 0.001; 3.14159; 1e6 ] in
  (* (a ⊕ b) ⊕ c versus a ⊕ (b ⊕ c), both into a fresh destination *)
  let left =
    let ab = a () in
    T.merge ab (b ());
    T.merge ab (c ());
    hist_as_list ab "m"
  in
  let right =
    let bc = b () in
    T.merge bc (c ());
    let abc = a () in
    T.merge abc bc;
    hist_as_list abc "m"
  in
  check bool_t "merge associative (bucket-exact)" true (left = right);
  let count, sum, mn, mx, _ = left in
  check int_t "merged count" 9 count;
  check bool_t "merged sum" true (Float.abs (sum -. 1000071.64259) < 1e-4);
  check bool_t "merged min" true (mn = -1.0);
  check bool_t "merged max" true (mx = 1e6)

let test_merge_preserves_trace_id () =
  let dst = T.create () in
  let src = T.create () in
  T.set_trace_id src "deadbeef00000001";
  T.observe src "q" 5.0;
  T.merge dst src;
  check bool_t "trace id carried" true
    (T.trace_id dst = Some "deadbeef00000001");
  let h = Option.get (T.histogram dst "q") in
  check int_t "histogram carried" 1 h.T.h_count;
  (* an already-set destination id wins over later merges *)
  let src2 = T.create () in
  T.set_trace_id src2 "feedface00000002";
  T.merge dst src2;
  check bool_t "existing id kept" true
    (T.trace_id dst = Some "deadbeef00000001")

(* ---- fork / trace context ---- *)

module TT = Absolver_tracetool.Tracetool

let with_trace f =
  let path = Filename.temp_file "absolver_tt" ".jsonl" in
  let oc = open_out path in
  let tel = T.create ~trace:oc () in
  f tel;
  close_out oc;
  let t =
    match TT.load path with
    | Ok t -> t
    | Error e -> Alcotest.failf "trace load: %s" e
  in
  Sys.remove path;
  t

let test_fork_parent_links () =
  let t =
    with_trace (fun tel ->
        T.set_trace_id tel (T.mint_trace_id ());
        let root = T.span_open tel "root" in
        let parent = T.current_span tel in
        check int_t "current_span is the open span" root parent;
        (* one fork per "worker", as the pool does *)
        let workers = List.init 3 (fun _ -> T.fork ~parent tel) in
        List.iter (fun w -> T.span w "work" (fun () -> ())) workers;
        List.iter (fun w -> T.merge tel w) workers;
        T.span_close tel root;
        T.close tel)
  in
  check int_t "no unresolved parents" 0 (List.length (TT.unresolved t));
  (match TT.roots t with
  | [ r ] ->
    check string_t "single root" "root" r.TT.sp_name;
    check int_t "three children" 3 (List.length (TT.children t r.TT.sp_id));
    List.iter
      (fun c -> check string_t "child name" "work" c.TT.sp_name)
      (TT.children t r.TT.sp_id)
  | other -> Alcotest.failf "expected one root, got %d" (List.length other));
  (* every span carries the minted trace id *)
  check int_t "one trace id" 1 (List.length (TT.trace_ids t));
  List.iter
    (fun sp ->
      check bool_t "span tagged" true (sp.TT.sp_trace <> None))
    (TT.spans t)

let test_abandoned_children_marked () =
  let t =
    with_trace (fun tel ->
        let a = T.span_open tel "a" in
        let _b = T.span_open tel "b" in
        T.span_close tel a;
        let _c = T.span_open tel "c" in
        T.close tel)
  in
  let by_name n =
    match List.find_opt (fun sp -> sp.TT.sp_name = n) (TT.spans t) with
    | Some sp -> sp
    | None -> Alcotest.failf "span %s missing" n
  in
  check bool_t "b force-closed" true (by_name "b").TT.sp_abandoned;
  check bool_t "c force-closed at close" true (by_name "c").TT.sp_abandoned;
  check bool_t "a closed normally" false (by_name "a").TT.sp_abandoned

let test_jobs4_trace_single_tree () =
  (* the acceptance test of the tracing tentpole: a parallel (--jobs 4)
     branch-and-prune run writes one connected span tree — every span's
     parent resolves across the executor/pool domain hand-offs *)
  let registry =
    {
      A.Registry.default with
      A.Registry.nonlinear = [ A.Registry.branch_prune_solver ~jobs:4 () ];
    }
  in
  let t =
    with_trace (fun tel ->
        let options =
          { A.Engine.default_options with A.Engine.telemetry = tel }
        in
        let result, _ = A.Engine.solve ~registry ~options (parse nonlinear_text) in
        (match result with
        | A.Engine.R_unsat -> ()
        | _ -> Alcotest.fail "nonlinear fragment should be unsat");
        T.close tel)
  in
  check bool_t "has spans" true (TT.spans t <> []);
  check int_t "no unresolved parents" 0 (List.length (TT.unresolved t));
  (match TT.roots t with
  | [ r ] -> check string_t "single solve root" "solve" r.TT.sp_name
  | other -> Alcotest.failf "expected one root, got %d" (List.length other));
  check bool_t "worker spans present" true
    (List.exists (fun sp -> sp.TT.sp_name = "pool.worker") (TT.spans t))

let suite =
  [
    Alcotest.test_case "clock is monotone" `Quick test_clock_monotone;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "disabled handle is a no-op" `Quick test_disabled_noops;
    Alcotest.test_case "counters are monotone" `Quick test_counters_monotone;
    Alcotest.test_case "spans aggregate per name" `Quick test_span_aggregation;
    Alcotest.test_case "spans survive exceptions" `Quick test_span_exception_safe;
    Alcotest.test_case "manual spans close nested" `Quick test_manual_spans_nest;
    Alcotest.test_case "json helpers" `Quick test_json_helpers;
    Alcotest.test_case "JSONL trace schema" `Quick test_trace_schema;
    Alcotest.test_case "solve: telemetry on/off equivalence" `Quick
      test_on_off_equivalence;
    Alcotest.test_case "all_models: telemetry on/off equivalence" `Quick
      test_all_models_equivalence;
    Alcotest.test_case "histogram basics" `Quick test_hist_basic;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_hist_bucket_boundaries;
    Alcotest.test_case "histogram quantile bounds" `Quick
      test_hist_quantile_bounds;
    Alcotest.test_case "histogram merge is associative" `Quick
      test_hist_merge_associative;
    Alcotest.test_case "merge preserves trace id" `Quick
      test_merge_preserves_trace_id;
    Alcotest.test_case "fork stitches parent links" `Quick
      test_fork_parent_links;
    Alcotest.test_case "abandoned spans are marked" `Quick
      test_abandoned_children_marked;
    Alcotest.test_case "jobs=4 trace is one connected tree" `Quick
      test_jobs4_trace_single_tree;
  ]
