(* Tracetool: the JSONL loader and the analyses the [absolver trace]
   subcommand renders, exercised on synthetic traces where tree shape,
   critical path and folded stacks are known exactly. *)

module TT = Absolver_tracetool.Tracetool

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let span ?(trace = "") ?(attrs = "") ~id ~parent ~start ~dur name =
  Printf.sprintf
    "{\"type\":\"span\",\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"start\":%g,\"dur\":%g%s%s}"
    id parent name start dur
    (if trace = "" then "" else Printf.sprintf ",\"trace\":\"%s\"" trace)
    (if attrs = "" then "" else Printf.sprintf ",\"attrs\":{%s}" attrs)

(* Two requests interleaved in close order, as a concurrent server
   writes them:
     req A: root(1) [0,10ms] -> lp(2) [1,6ms] -> pivot(3) [2,2ms]
     req B: root(4) [0,4ms]  -> lp(5) [1,1ms]                      *)
let interleaved =
  String.concat "\n"
    [
      "{\"type\":\"meta\",\"format\":\"absolver-trace\",\"version\":2}";
      span ~trace:"aaaa" ~id:3 ~parent:2 ~start:0.002 ~dur:0.002 "pivot";
      span ~trace:"bbbb" ~id:5 ~parent:4 ~start:0.001 ~dur:0.001 "lp";
      span ~trace:"bbbb" ~id:4 ~parent:(-1) ~start:0.0 ~dur:0.004 "root";
      span ~trace:"aaaa" ~id:2 ~parent:1 ~start:0.001 ~dur:0.006 "lp";
      span ~trace:"aaaa" ~id:1 ~parent:(-1) ~start:0.0 ~dur:0.010 "root";
      "{\"type\":\"counter\",\"name\":\"lp.pivots\",\"total\":7}";
    ]

let load text =
  match TT.of_string text with
  | Ok t -> t
  | Error e -> Alcotest.failf "load: %s" e

let test_load_and_index () =
  let t = load interleaved in
  check int_t "five spans" 5 (List.length (TT.spans t));
  check int_t "two roots" 2 (List.length (TT.roots t));
  check int_t "no unresolved" 0 (List.length (TT.unresolved t));
  (match TT.find t 2 with
  | Some sp ->
    check string_t "find by id" "lp" sp.TT.sp_name;
    check int_t "parent kept" 1 sp.TT.sp_parent
  | None -> Alcotest.fail "span 2 missing");
  check bool_t "children sorted by start" true
    (match List.map (fun sp -> sp.TT.sp_id) (TT.children t 1) with
    | [ 2 ] -> true
    | _ -> false);
  check bool_t "counter totals" true
    (TT.counter_totals t = [ ("lp.pivots", 7) ])

let test_trace_id_slicing () =
  let t = load interleaved in
  check bool_t "ids in first-appearance order" true
    (TT.trace_ids t = [ "aaaa"; "bbbb" ]);
  (match TT.roots ~trace_id:"bbbb" t with
  | [ r ] ->
    check int_t "request B root" 4 r.TT.sp_id;
    check int_t "one child" 1 (List.length (TT.children t r.TT.sp_id))
  | other -> Alcotest.failf "expected 1 root for bbbb, got %d" (List.length other));
  check int_t "unknown id selects nothing" 0
    (List.length (TT.roots ~trace_id:"cccc" t))

let test_self_time_and_aggregates () =
  let t = load interleaved in
  let root_a = Option.get (TT.find t 1) in
  (* 10ms total, 6ms in the lp child -> 4ms self *)
  check bool_t "self time subtracts children" true
    (Float.abs (TT.self_seconds t root_a -. 0.004) < 1e-9);
  match List.assoc_opt "lp" (TT.aggregates t) with
  | Some (calls, total, self) ->
    check int_t "lp calls across requests" 2 calls;
    check bool_t "lp total" true (Float.abs (total -. 0.007) < 1e-9);
    check bool_t "lp self" true (Float.abs (self -. 0.005) < 1e-9)
  | None -> Alcotest.fail "lp not aggregated"

let test_critical_path () =
  let text =
    String.concat "\n"
      [
        span ~id:1 ~parent:(-1) ~start:0.0 ~dur:0.010 "root";
        span ~id:2 ~parent:1 ~start:0.001 ~dur:0.003 "short";
        span ~id:3 ~parent:1 ~start:0.004 ~dur:0.005 "long";
        span ~id:4 ~parent:3 ~start:0.004 ~dur:0.004 "leaf";
      ]
  in
  let t = load text in
  let root = Option.get (TT.find t 1) in
  check bool_t "descends into the widest child" true
    (List.map (fun sp -> sp.TT.sp_name) (TT.critical_path t root)
    = [ "root"; "long"; "leaf" ])

let test_folded_stacks () =
  let t = load interleaved in
  (* self times: root A 4ms, lp A 4ms, pivot 2ms; root B 3ms, lp B 1ms;
     equal stacks from both requests sum *)
  check bool_t "folded stacks with summed self time" true
    (TT.folded t
    = [
        ("root", 7000); ("root;lp", 5000); ("root;lp;pivot", 2000);
      ]);
  check bool_t "folded respects trace-id filter" true
    (TT.folded ~trace_id:"bbbb" t = [ ("root", 3000); ("root;lp", 1000) ])

let test_unresolved_detection () =
  let text =
    String.concat "\n"
      [
        span ~id:1 ~parent:(-1) ~start:0.0 ~dur:0.01 "root";
        span ~id:2 ~parent:99 ~start:0.0 ~dur:0.01 "lost";
      ]
  in
  let t = load text in
  match TT.unresolved t with
  | [ sp ] -> check int_t "broken link found" 2 sp.TT.sp_id
  | other -> Alcotest.failf "expected 1 unresolved, got %d" (List.length other)

let test_abandoned_flag () =
  let text =
    span ~attrs:"\"abandoned\":true" ~id:1 ~parent:(-1) ~start:0.0 ~dur:0.01
      "cut"
  in
  let t = load text in
  check bool_t "abandoned surfaced" true
    (Option.get (TT.find t 1)).TT.sp_abandoned

let test_parse_errors () =
  (match TT.of_string "{\"type\":\"span\",\"id\":1}" with
  | Error e ->
    check bool_t "missing fields rejected" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "truncated span accepted");
  (match TT.of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (* unknown record kinds are tolerated, blank lines skipped *)
  match TT.of_string "{\"type\":\"fancy-new-thing\"}\n\n" with
  | Ok t -> check int_t "future kinds ignored" 0 (List.length (TT.spans t))
  | Error e -> Alcotest.failf "forward-compat parse failed: %s" e

let test_rendering () =
  let t = load interleaved in
  let root = Option.get (TT.find t 1) in
  let tree = TT.render_tree t root in
  let contains needle hay =
    let n = String.length hay and m = String.length needle in
    let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
    at 0
  in
  check bool_t "tree shows root" true (contains "root (#1)" tree);
  check bool_t "tree shows nested pivot" true (contains "    pivot (#3)" tree);
  check bool_t "depth cap prunes" false
    (contains "pivot" (TT.render_tree ~max_depth:1 t root));
  check bool_t "critical path renders percents" true
    (contains "100.0%" (TT.render_critical_path t root));
  check bool_t "aggregates header" true
    (contains "total(ms)" (TT.render_aggregates t));
  let summary = TT.render_summary t in
  check bool_t "summary counts" true
    (contains "spans: 5   roots: 2   traces: 2" summary)

let suite =
  [
    Alcotest.test_case "load + index interleaved trace" `Quick
      test_load_and_index;
    Alcotest.test_case "trace-id slicing" `Quick test_trace_id_slicing;
    Alcotest.test_case "self time and aggregates" `Quick
      test_self_time_and_aggregates;
    Alcotest.test_case "critical path" `Quick test_critical_path;
    Alcotest.test_case "folded stacks" `Quick test_folded_stacks;
    Alcotest.test_case "unresolved parents detected" `Quick
      test_unresolved_detection;
    Alcotest.test_case "abandoned flag surfaced" `Quick test_abandoned_flag;
    Alcotest.test_case "parse errors and forward compat" `Quick
      test_parse_errors;
    Alcotest.test_case "rendering" `Quick test_rendering;
  ]
