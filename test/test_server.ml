(* The solve server: differential replay against the direct engine
   (byte-identical verdicts and models through a warm per-client
   session), session isolation between interleaved clients, the
   SMT-LIB 2 front-end's scoping and error recovery, the executor's
   admission control, and the JSON layer. *)

module Server = Absolver_server.Server
module Sjson = Absolver_server.Sjson
module Protocol = Absolver_server.Protocol
module Smt2 = Absolver_smtlib.Smt2
module Smt_parser = Absolver_smtlib.Parser
module Fischer = Absolver_smtlib.Fischer
module Pool = Absolver_parallel.Pool
module Engine = Absolver_core.Engine
module Registry = Absolver_core.Registry
module Dimacs = Absolver_core.Dimacs_ext
module Budget = Absolver_resource.Budget

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* In-process connections: a pipe pair per direction, the server's     *)
(* reader on its own thread — the same code path a socket client hits. *)
(* ------------------------------------------------------------------ *)

type conn = {
  wr : out_channel;
  rd : in_channel;
  th : Thread.t;
  mutable open_ : bool;
}

let connect srv =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr req_r in
  let oc = Unix.out_channel_of_descr resp_w in
  let th =
    Thread.create
      (fun () ->
        Server.serve_channel srv ic oc;
        (try close_in ic with Sys_error _ -> ());
        try close_out oc with Sys_error _ -> ())
      ()
  in
  {
    wr = Unix.out_channel_of_descr req_w;
    rd = Unix.in_channel_of_descr resp_r;
    th;
    open_ = true;
  }

let send conn line =
  output_string conn.wr line;
  output_char conn.wr '\n';
  flush conn.wr

let recv conn = input_line conn.rd

(* Close our writing end (server sees EOF), join, drain stragglers. *)
let finish conn =
  if conn.open_ then begin
    conn.open_ <- false;
    (try close_out conn.wr with Sys_error _ -> ());
    Thread.join conn.th;
    let rest = ref [] in
    (try
       while true do
         rest := input_line conn.rd :: !rest
       done
     with End_of_file | Sys_error _ -> ());
    (try close_in conn.rd with Sys_error _ -> ());
    List.rev !rest
  end
  else []

(* One request in, one response out (lane FIFO makes this exact). *)
let roundtrip conn line =
  send conn line;
  recv conn

let field name resp =
  match Sjson.parse resp with
  | Ok obj -> Sjson.member name obj
  | Error e -> Alcotest.failf "unparseable response %s: %s" resp e

let str_field name resp = Option.bind (field name resp) Sjson.get_string

(* A test server: no default deadline (pure cancellation budgets), so
   the reference runs below are governed identically. *)
let test_config ?(workers = 2) ?(max_clients = 32) () =
  {
    Server.default_config with
    Server.workers;
    max_clients;
    default_timeout_ms = None;
  }

let with_server ?config f =
  let config =
    match config with Some c -> c | None -> test_config ()
  in
  let srv = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) (fun () -> f srv)

(* ------------------------------------------------------------------ *)
(* Differential replay: seeded query scripts through the server vs     *)
(* the engine called directly through an equivalent warm session.      *)
(* ------------------------------------------------------------------ *)

let gen_problem st =
  let nv = 2 + Random.State.int st 2 in
  let coef () = 1 + Random.State.int st 5 in
  let rhs () = Random.State.int st 15 - 5 in
  let op () =
    match Random.State.int st 4 with
    | 0 -> "<="
    | 1 -> ">="
    | 2 -> "<"
    | _ -> ">"
  in
  let defs =
    List.init nv (fun i ->
        Printf.sprintf "c def real %d %d*x + %d*y %s %d" (i + 1) (coef ())
          (coef ()) (op ()) (rhs ()))
  in
  let ncl = 1 + Random.State.int st 3 in
  let clauses =
    List.init ncl (fun _ ->
        let lits =
          List.filter_map
            (fun v ->
              match Random.State.int st 3 with
              | 0 -> Some (string_of_int (v + 1))
              | 1 -> Some (string_of_int (-(v + 1)))
              | _ -> None)
            (List.init nv Fun.id)
        in
        let lits = if lits = [] then [ "1" ] else lits in
        String.concat " " lits ^ " 0")
  in
  Printf.sprintf "p cnf %d %d\n%s\n%s\n" nv ncl
    (String.concat "\n" clauses)
    (String.concat "\n" defs)

let solve_request id text =
  Sjson.to_string
    (Sjson.Obj
       [
         ("id", Sjson.Num (float_of_int id));
         ("op", Sjson.Str "solve");
         ("format", Sjson.Str "dimacs");
         ("problem", Sjson.Str text);
       ])

(* Canonical outcome of one query, shared by both sides: verdicts and
   models must match byte for byte. *)
let outcome_of_response resp =
  check (Alcotest.option string_t) "status ok" (Some "ok")
    (str_field "status" resp);
  match str_field "verdict" resp with
  | Some "sat" -> "sat " ^ Option.get (str_field "model" resp)
  | Some v -> v
  | None -> Alcotest.failf "no verdict in %s" resp

let outcome_of_direct prob result =
  match result with
  | Engine.R_sat sol -> "sat " ^ Protocol.model_to_string prob sol
  | Engine.R_unsat -> "unsat"
  | Engine.R_unknown _ -> "unknown"

(* The reference replays the script the way the server does: one warm
   persistent-simplex session for the whole script.  A second reference
   with the vanilla registry (fresh session per solve) guards the
   warm-session path against verdict flips. *)
let reference_outcomes texts =
  let solver, dispose = Registry.persistent_simplex () in
  let registry = { Registry.default with Registry.linear = [ solver ] } in
  let outcomes =
    List.map
      (fun text ->
        match Dimacs.parse_string text with
        | Error e -> Alcotest.failf "reference parse: %s" e
        | Ok prob ->
          let result, _ = Engine.solve ~registry prob in
          outcome_of_direct prob result)
      texts
  in
  dispose ();
  outcomes

let vanilla_verdicts texts =
  List.map
    (fun text ->
      match Dimacs.parse_string text with
      | Error e -> Alcotest.failf "vanilla parse: %s" e
      | Ok prob -> (
        match fst (Engine.solve prob) with
        | Engine.R_sat _ -> "sat"
        | Engine.R_unsat -> "unsat"
        | Engine.R_unknown _ -> "unknown"))
    texts

let test_differential_replay () =
  let n_scripts = 200 in
  let st = Random.State.make [| 0x5e47e4 |] in
  with_server (fun srv ->
      for script = 1 to n_scripts do
        let n_queries = 3 + Random.State.int st 3 in
        let texts = List.init n_queries (fun _ -> gen_problem st) in
        let conn = connect srv in
        let served =
          List.mapi
            (fun i text ->
              outcome_of_response (roundtrip conn (solve_request (i + 1) text)))
            texts
        in
        ignore (finish conn);
        let expected = reference_outcomes texts in
        List.iteri
          (fun i (got, want) ->
            if got <> want then
              Alcotest.failf "script %d query %d: server %s <> direct %s"
                script (i + 1) got want)
          (List.combine served expected);
        (* cross-check: warm sessions never flip a verdict *)
        List.iteri
          (fun i (got, vanilla) ->
            let verdict =
              match String.index_opt got ' ' with
              | Some j -> String.sub got 0 j
              | None -> got
            in
            if verdict <> "unknown" && vanilla <> "unknown"
               && verdict <> vanilla then
              Alcotest.failf "script %d query %d: warm %s <> vanilla %s"
                script (i + 1) verdict vanilla)
          (List.combine served (vanilla_verdicts texts))
      done)

(* Two clients interleaved request-by-request must answer exactly what
   each gets on a private connection — the per-client session state
   (warm tableau, interned variables) must not leak across lanes. *)
let test_interleaved_clients_isolated () =
  let mk_script seed =
    let st = Random.State.make [| seed |] in
    List.init 10 (fun _ -> gen_problem st)
  in
  let script_a = mk_script 11 and script_b = mk_script 23 in
  let isolated script =
    with_server (fun srv ->
        let conn = connect srv in
        let out =
          List.mapi
            (fun i t -> roundtrip conn (solve_request (i + 1) t))
            script
        in
        ignore (finish conn);
        out)
  in
  let iso_a = isolated script_a and iso_b = isolated script_b in
  with_server (fun srv ->
      let ca = connect srv and cb = connect srv in
      let got_a = ref [] and got_b = ref [] in
      List.iteri
        (fun i (ta, tb) ->
          got_a := roundtrip ca (solve_request (i + 1) ta) :: !got_a;
          got_b := roundtrip cb (solve_request (i + 1) tb) :: !got_b)
        (List.combine script_a script_b);
      ignore (finish ca);
      ignore (finish cb);
      check (Alcotest.list string_t) "client A unaffected by B" iso_a
        (List.rev !got_a);
      check (Alcotest.list string_t) "client B unaffected by A" iso_b
        (List.rev !got_b))

(* ------------------------------------------------------------------ *)
(* Server behaviours: admission, timeouts, stats, smt2 framing.        *)
(* ------------------------------------------------------------------ *)

let test_max_clients_rejected () =
  with_server ~config:(test_config ~max_clients:1 ()) (fun srv ->
      let c1 = connect srv in
      (* make sure c1 is registered before racing c2 in *)
      let r = roundtrip c1 {|{"id":1,"op":"health"}|} in
      check (Alcotest.option string_t) "c1 healthy" (Some "ok")
        (str_field "status" r);
      let c2 = connect srv in
      let rejected = recv c2 in
      check (Alcotest.option string_t) "c2 rejected" (Some "rejected")
        (str_field "status" rejected);
      ignore (finish c2);
      ignore (finish c1))

let test_timeout_degrades_to_unknown () =
  (* a 1 ms deadline on a non-trivial instance: the reply must be a
     graceful unknown, not a dropped connection *)
  let prob =
    match Fischer.problem ~n:3 () with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let text = Dimacs.to_string prob in
  with_server (fun srv ->
      let conn = connect srv in
      let req =
        Sjson.to_string
          (Sjson.Obj
             [
               ("id", Sjson.Num 1.);
               ("op", Sjson.Str "solve");
               ("format", Sjson.Str "dimacs");
               ("problem", Sjson.Str text);
               ("timeout_ms", Sjson.Num 1.);
             ])
      in
      let resp = roundtrip conn req in
      check (Alcotest.option string_t) "ok" (Some "ok") (str_field "status" resp);
      check (Alcotest.option string_t) "unknown" (Some "unknown")
        (str_field "verdict" resp);
      check bool_t "has reason" true (str_field "reason" resp <> None);
      (* the session survives the trip *)
      let r2 =
        roundtrip conn
          (solve_request 2 "p cnf 1 1\n1 0\nc def real 1 u >= 1\n")
      in
      check (Alcotest.option string_t) "next query sat" (Some "sat")
        (str_field "verdict" r2);
      ignore (finish conn))

let test_stats_and_health_track_queries () =
  with_server (fun srv ->
      let conn = connect srv in
      ignore (roundtrip conn (solve_request 1 "p cnf 1 1\n1 0\nc def real 1 u >= 1\n"));
      ignore (roundtrip conn (solve_request 2 "p cnf 1 2\n1 0\n-1 0\nc def real 1 u >= 1\n"));
      let resp = roundtrip conn {|{"id":3,"op":"stats"}|} in
      let stats = Option.get (field "stats" resp) in
      let get path =
        match path with
        | [ a ] -> Option.get (Sjson.member a stats)
        | [ a; b ] -> Option.get (Sjson.member b (Option.get (Sjson.member a stats)))
        | _ -> assert false
      in
      check (Alcotest.option int_t) "solve count" (Some 2)
        (Sjson.get_int (get [ "queries"; "solve" ]));
      check (Alcotest.option int_t) "sat" (Some 1)
        (Sjson.get_int (get [ "verdicts"; "sat" ]));
      check (Alcotest.option int_t) "unsat" (Some 1)
        (Sjson.get_int (get [ "verdicts"; "unsat" ]));
      check bool_t "latency recorded" true
        (Sjson.get_int (Option.get (Sjson.member "count" (get [ "latency_ms" ])))
        = Some 2);
      check bool_t "queue depth gauge present" true
        (match Sjson.get_int (get [ "pool"; "queue_depth" ]) with
        | Some d -> d >= 0
        | None -> false);
      ignore (finish conn))

(* ------------------------------------------------------------------ *)
(* Observability: the metrics op's Prometheus text, request tracing.   *)
(* ------------------------------------------------------------------ *)

(* A line-level Prometheus text-format check mirroring
   scripts/check_prometheus.py: TYPEd families, parseable samples,
   cumulative histogram buckets capped by a +Inf bucket = _count. *)
let validate_prometheus text =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  check bool_t "metrics nonempty" true (lines <> []);
  let types = Hashtbl.create 16 in
  let samples = ref [] in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ]
          when List.mem kind [ "counter"; "gauge"; "histogram" ] ->
          Hashtbl.replace types name kind
        | _ -> Alcotest.failf "bad comment line: %s" line
      end
      else begin
        let name_part, value_part =
          match String.rindex_opt line ' ' with
          | Some i ->
            ( String.sub line 0 i,
              String.sub line (i + 1) (String.length line - i - 1) )
          | None -> Alcotest.failf "no value: %s" line
        in
        (match value_part with
        | "+Inf" | "-Inf" | "NaN" -> ()
        | v ->
          if float_of_string_opt v = None then
            Alcotest.failf "unparseable value %s in: %s" v line);
        let name, label =
          match String.index_opt name_part '{' with
          | Some i ->
            if name_part.[String.length name_part - 1] <> '}' then
              Alcotest.failf "unterminated labels: %s" line;
            ( String.sub name_part 0 i,
              String.sub name_part (i + 1) (String.length name_part - i - 2) )
          | None -> (name_part, "")
        in
        String.iter
          (fun c ->
            let ok =
              (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
              || (c >= '0' && c <= '9') || c = '_' || c = ':'
            in
            if not ok then Alcotest.failf "bad metric name char in: %s" line)
          name;
        samples := (name, label, value_part) :: !samples
      end)
    lines;
  let samples = List.rev !samples in
  (* every sample belongs to a TYPEd family *)
  let family name =
    let strip suff =
      let n = String.length name and s = String.length suff in
      if n > s && String.sub name (n - s) s = suff then
        Some (String.sub name 0 (n - s))
      else None
    in
    let base =
      List.find_map strip [ "_bucket"; "_sum"; "_count" ]
      |> Option.value ~default:name
    in
    if Hashtbl.mem types base then base
    else if Hashtbl.mem types name then name
    else Alcotest.failf "sample without TYPE: %s" name
  in
  List.iter (fun (n, _, _) -> ignore (family n)) samples;
  (* histogram series: cumulative buckets, +Inf present and = _count *)
  Hashtbl.iter
    (fun name kind ->
      if kind = "histogram" then begin
        let buckets =
          List.filter_map
            (fun (n, l, v) ->
              if n = name ^ "_bucket" then Some (l, float_of_string v)
              else None)
            (List.map
               (fun (n, l, v) ->
                 (n, l, (if v = "+Inf" then "inf" else v)))
               samples)
        in
        check bool_t (name ^ " has buckets") true (buckets <> []);
        let le_of label =
          (* le="..." -> the bound, +Inf as infinity *)
          match String.split_on_char '"' label with
          | [ "le="; b; "" ] ->
            if b = "+Inf" then infinity else float_of_string b
          | _ -> Alcotest.failf "bad bucket label %s on %s" label name
        in
        let sorted =
          List.sort compare (List.map (fun (l, v) -> (le_of l, v)) buckets)
        in
        let rec cumulative = function
          | (_, a) :: ((_, b) :: _ as rest) ->
            check bool_t (name ^ " buckets cumulative") true (a <= b);
            cumulative rest
          | _ -> ()
        in
        cumulative sorted;
        let inf_count =
          match List.rev sorted with
          | (le, v) :: _ when le = infinity -> v
          | _ -> Alcotest.failf "%s missing +Inf bucket" name
        in
        let total =
          match
            List.find_opt (fun (n, _, _) -> n = name ^ "_count") samples
          with
          | Some (_, _, v) -> float_of_string v
          | None -> Alcotest.failf "%s missing _count" name
        in
        check bool_t (name ^ " +Inf = count") true (inf_count = total);
        check bool_t (name ^ " has _sum") true
          (List.exists (fun (n, _, _) -> n = name ^ "_sum") samples)
      end)
    types

let test_metrics_op_prometheus () =
  with_server (fun srv ->
      let conn = connect srv in
      ignore (roundtrip conn (solve_request 1 "p cnf 1 1\n1 0\nc def real 1 u >= 1\n"));
      ignore (roundtrip conn (solve_request 2 "p cnf 1 2\n1 0\n-1 0\nc def real 1 u >= 1\n"));
      let resp = roundtrip conn {|{"id":3,"op":"metrics"}|} in
      let text =
        match str_field "metrics" resp with
        | Some t -> t
        | None -> Alcotest.failf "no metrics payload in %s" resp
      in
      validate_prometheus text;
      let contains needle =
        let n = String.length text and m = String.length needle in
        let rec at i =
          i + m <= n && (String.sub text i m = needle || at (i + 1))
        in
        at 0
      in
      check bool_t "request counter" true
        (contains "absolver_server_solve_total 2");
      check bool_t "latency histogram buckets" true
        (contains "absolver_server_latency_ms_bucket{le=");
      check bool_t "queue-wait histogram" true
        (contains "absolver_server_queue_wait_ms_count 2");
      check bool_t "per-span seconds" true
        (contains "absolver_span_seconds_total{span=\"server.request\"}");
      ignore (finish conn))

module TT = Absolver_tracetool.Tracetool

let nonlinear_unsat_text =
  "p cnf 1 1\n1 0\nc def real 1 x * x + y * y <= 1\nc def real 1 x * y >= 2\n\
   c bound x -10 10\nc bound y -10 10\n"

let test_traced_request_single_tree () =
  (* one traced query through the full server stack — reader thread,
     executor lane, branch-and-prune frontier domains — must produce
     exactly one connected span tree, stitched by the echoed trace id *)
  let path = Filename.temp_file "absolver_srvtrace" ".jsonl" in
  let oc = open_out path in
  let config =
    {
      (test_config ()) with
      Server.trace = Some oc;
      registry =
        (fun () ->
          ( {
              Registry.default with
              Registry.nonlinear = [ Registry.branch_prune_solver ~jobs:2 () ];
            },
            fun () -> () ));
    }
  in
  with_server ~config (fun srv ->
      let conn = connect srv in
      let resp = roundtrip conn (solve_request 1 nonlinear_unsat_text) in
      check (Alcotest.option string_t) "unsat" (Some "unsat")
        (str_field "verdict" resp);
      let tid =
        match str_field "trace_id" resp with
        | Some tid -> tid
        | None -> Alcotest.failf "no trace_id echoed in %s" resp
      in
      check bool_t "span_id echoed" true (field "span_id" resp <> None);
      ignore (finish conn);
      (* end_request flushed the sink before the reply line was written,
         so the file is complete for this request already *)
      let t =
        match TT.load path with
        | Ok t -> t
        | Error e -> Alcotest.failf "trace load: %s" e
      in
      check int_t "no unresolved parents" 0 (List.length (TT.unresolved t));
      (match TT.roots ~trace_id:tid t with
      | [ r ] ->
        check string_t "root is the request span" "server.request"
          r.TT.sp_name;
        check bool_t "request attrs" true
          (List.mem_assoc "op" r.TT.sp_attrs);
        (* the engine's solve span hangs under the request root *)
        check bool_t "solve under request" true
          (List.exists
             (fun sp -> sp.TT.sp_name = "solve")
             (TT.children t r.TT.sp_id))
      | other ->
        Alcotest.failf "expected 1 root for %s, got %d" tid
          (List.length other));
      (* every span written belongs to this request's trace *)
      check bool_t "single trace id in file" true (TT.trace_ids t = [ tid ]);
      List.iter
        (fun sp ->
          check bool_t "span tagged with the trace id" true
            (sp.TT.sp_trace = Some tid))
        (TT.spans t));
  close_out_noerr oc;
  Sys.remove path

let test_smt2_framing_over_connection () =
  with_server (fun srv ->
      let conn = connect srv in
      send conn "(set-logic QF_LRA)";
      send conn "(declare-const x Real)";
      send conn "(assert (and (>= x 2)";
      send conn "        (<= x 2)))";
      send conn "(check-sat)";
      check string_t "sat" "sat" (recv conn);
      send conn "(get-model)";
      check string_t "model" "(model (define-fun x () Real 2))" (recv conn);
      send conn "(exit)";
      ignore (finish conn))

(* ------------------------------------------------------------------ *)
(* SMT-LIB 2 front-end units (no server).                              *)
(* ------------------------------------------------------------------ *)

let run_script script =
  let session = Smt2.create () in
  fst (Smt2.run_string session ~check:(Smt2.engine_check ()) script)

let test_smt2_push_pop_scoping () =
  let out =
    run_script
      "(declare-const x Real)(assert (>= x 10))(push 1)(assert (<= x 5))\
       (check-sat)(pop 1)(check-sat)(get-model)"
  in
  check (Alcotest.list string_t) "pop restores satisfiability"
    [ "unsat"; "sat"; "(model (define-fun x () Real 10))" ]
    out

let test_smt2_pop_below_stack () =
  let out = run_script "(push 1)(pop 2)(check-sat)" in
  check (Alcotest.list string_t) "pop too deep is an error, session lives"
    [ "(error \"pop below the assertion stack\")"; "sat" ]
    out

let test_smt2_malformed_recovery () =
  let out =
    run_script
      "(declare-const x Real)(assert y)(assert (>= x 1))\
       (check-sat)(assert (foo"
  in
  check (Alcotest.list string_t) "errors answered, later commands fine"
    [
      "(error \"unknown constant y\")";
      "sat";
      "(error \"incomplete input\")";
    ]
    out

let test_smt2_bool_equality_is_iff () =
  let out =
    run_script
      "(declare-const p Bool)(declare-const q Bool)(assert (= p q))\
       (assert p)(check-sat)(get-model)"
  in
  check (Alcotest.list string_t) "= on Bool resolves to iff"
    [
      "sat";
      "(model (define-fun p () Bool true) (define-fun q () Bool true))";
    ]
    out

let test_smt2_let_and_ite () =
  let out =
    run_script
      "(declare-const x Real)(declare-const p Bool)\
       (assert (let ((t (+ x 1))) (>= t 4)))\
       (assert (ite p (<= x 3) (<= x 100)))(assert p)(check-sat)(get-model)"
  in
  check (Alcotest.list string_t) "let inlined, formula-ite lowered"
    [
      "sat";
      "(model (define-fun x () Real 3) (define-fun p () Bool true))";
    ]
    out

let test_smt2_duplicate_declaration () =
  let out = run_script "(declare-const x Real)(declare-const x Bool)" in
  check (Alcotest.list string_t) "redeclaration refused"
    [ "(error \"x is already declared\")" ]
    out

let test_smt2_get_model_needs_sat () =
  let out = run_script "(declare-const x Real)(get-model)" in
  check (Alcotest.list string_t) "no model before check-sat"
    [ "(error \"model is not available\")" ]
    out;
  let out =
    run_script
      "(declare-const x Real)(assert (>= x 1))(check-sat)(assert (<= x 0))\
       (get-model)"
  in
  check (Alcotest.list string_t) "asserting invalidates the model"
    [ "sat"; "(error \"model is not available\")" ]
    out

let test_smt2_print_success () =
  let out =
    run_script
      "(set-option :print-success true)(set-logic QF_LRA)\
       (set-option :print-success false)(set-logic QF_LRA)"
  in
  check (Alcotest.list string_t) "print-success toggles"
    [ "success"; "success" ] out

let test_smt2_int_sort_branch_and_bound () =
  let out =
    run_script
      "(declare-const k Int)(assert (> k (/ 7 2)))(assert (< k 5))\
       (check-sat)(get-model)"
  in
  check (Alcotest.list string_t) "Int constants solved integrally"
    [ "sat"; "(model (define-fun k () Int 4))" ]
    out

let test_smt2_split_complete () =
  let forms, rest = Smt2.split_complete "(a b) (c (d e)) (unfinished (f" in
  check (Alcotest.list string_t) "complete forms" [ "(a b)"; "(c (d e))" ] forms;
  check string_t "remainder" "(unfinished (f" rest;
  let forms, rest =
    Smt2.split_complete "; a comment line\n(echo \"smi;)ley\")\n"
  in
  check (Alcotest.list string_t) "comments and strings respected"
    [ "(echo \"smi;)ley\")" ]
    forms;
  check string_t "nothing left" "" rest

let test_smt2_reset_and_reset_assertions () =
  let session = Smt2.create () in
  let run s = fst (Smt2.run_string session ~check:(Smt2.engine_check ()) s) in
  let out =
    run
      "(declare-const x Real)(push 1)(assert (<= x 0))(reset-assertions)\
       (assert (>= x 3))(check-sat)(get-model)"
  in
  check (Alcotest.list string_t) "reset-assertions keeps declarations"
    [ "sat"; "(model (define-fun x () Real 3))" ]
    out;
  let out = run "(reset)(assert (>= x 3))" in
  check (Alcotest.list string_t) "reset forgets declarations"
    [ "(error \"unknown constant x\")" ]
    out

(* ------------------------------------------------------------------ *)
(* Executor units.                                                     *)
(* ------------------------------------------------------------------ *)

let test_executor_runs_everything () =
  let exec = Pool.Executor.create ~workers:3 () in
  let hits = Atomic.make 0 in
  (* a fast submitter can outrun the bounded queue: back off and retry,
     as the server's flow control does *)
  let rec submit job =
    match Pool.Executor.submit exec job with
    | Pool.Executor.Submitted -> ()
    | Pool.Executor.Rejected _ ->
      Thread.yield ();
      submit job
  in
  for _ = 1 to 100 do
    submit (fun () -> Atomic.incr hits)
  done;
  Pool.Executor.shutdown exec;
  check int_t "all jobs ran" 100 (Atomic.get hits);
  check int_t "completed counter" 100 (Pool.Executor.completed exec)

let test_executor_bounded_queue_rejects () =
  let exec = Pool.Executor.create ~workers:1 ~queue_capacity:2 () in
  let gate = Mutex.create () in
  let cv = Condition.create () in
  let release = ref false in
  let blocker () =
    Mutex.protect gate (fun () ->
        while not !release do
          Condition.wait cv gate
        done)
  in
  (match Pool.Executor.submit exec blocker with
  | Pool.Executor.Submitted -> ()
  | Pool.Executor.Rejected r -> Alcotest.failf "blocker rejected: %s" r);
  (* wait until the single worker holds the blocker *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Pool.Executor.in_flight exec < 1 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  check int_t "blocker running" 1 (Pool.Executor.in_flight exec);
  let ok1 = Pool.Executor.submit exec (fun () -> ()) in
  let ok2 = Pool.Executor.submit exec (fun () -> ()) in
  check bool_t "queue admits to capacity" true
    (ok1 = Pool.Executor.Submitted && ok2 = Pool.Executor.Submitted);
  (match Pool.Executor.submit exec (fun () -> ()) with
  | Pool.Executor.Rejected reason ->
    check bool_t "reason names the queue" true
      (String.length reason > 0
      && String.sub reason 0 (min 10 (String.length reason)) = "queue full")
  | Pool.Executor.Submitted -> Alcotest.fail "over-capacity submit admitted");
  Mutex.protect gate (fun () ->
      release := true;
      Condition.broadcast cv);
  Pool.Executor.shutdown exec;
  check int_t "accepted jobs all drained" 3 (Pool.Executor.completed exec)

let test_executor_shutdown_refuses_new_work () =
  let exec = Pool.Executor.create ~workers:2 () in
  Pool.Executor.shutdown exec;
  (match Pool.Executor.submit exec (fun () -> ()) with
  | Pool.Executor.Rejected _ -> ()
  | Pool.Executor.Submitted -> Alcotest.fail "submit after shutdown");
  (* idempotent *)
  Pool.Executor.shutdown exec

let test_executor_contains_job_exceptions () =
  let exec = Pool.Executor.create ~workers:1 () in
  let after = Atomic.make false in
  ignore (Pool.Executor.submit exec (fun () -> failwith "boom"));
  ignore (Pool.Executor.submit exec (fun () -> Atomic.set after true));
  Pool.Executor.shutdown exec;
  check bool_t "worker survived the raise" true (Atomic.get after)

(* ------------------------------------------------------------------ *)
(* JSON layer.                                                         *)
(* ------------------------------------------------------------------ *)

let test_sjson_roundtrip () =
  let cases =
    [
      {|{"a":1,"b":[true,null,"x"],"c":{"d":-2.5}}|};
      {|"esc \" \\ \n \t"|};
      {|[1,2,3]|};
      {|-17|};
    ]
  in
  List.iter
    (fun text ->
      match Sjson.parse text with
      | Error e -> Alcotest.failf "parse %s: %s" text e
      | Ok v -> (
        let printed = Sjson.to_string v in
        match Sjson.parse printed with
        | Error e -> Alcotest.failf "reparse %s: %s" printed e
        | Ok v2 ->
          check bool_t (Printf.sprintf "fixpoint %s" text) true (v = v2)))
    cases

let test_sjson_rejects_garbage () =
  List.iter
    (fun text ->
      match Sjson.parse text with
      | Ok _ -> Alcotest.failf "accepted %s" text
      | Error _ -> ())
    [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2" ]

let test_protocol_parse () =
  match
    Protocol.parse_request
      {|{"id":7,"op":"solve","format":"smt1","problem":"x","timeout_ms":250}|}
  with
  | Ok (Sjson.Num 7., Ok (Protocol.Solve { format; timeout_ms; _ })) ->
    check bool_t "smt1 format" true (format = Protocol.F_smt1);
    check (Alcotest.option int_t) "timeout" (Some 250) timeout_ms
  | Ok _ | Error _ -> Alcotest.fail "solve request did not parse"

let suite =
  [
    Alcotest.test_case "differential: 200 scripts, byte-identical" `Slow
      test_differential_replay;
    Alcotest.test_case "interleaved clients are isolated" `Slow
      test_interleaved_clients_isolated;
    Alcotest.test_case "max-clients admission" `Quick test_max_clients_rejected;
    Alcotest.test_case "timeout degrades to unknown" `Quick
      test_timeout_degrades_to_unknown;
    Alcotest.test_case "stats and health track queries" `Quick
      test_stats_and_health_track_queries;
    Alcotest.test_case "metrics op emits valid Prometheus text" `Quick
      test_metrics_op_prometheus;
    Alcotest.test_case "traced request is one connected tree" `Quick
      test_traced_request_single_tree;
    Alcotest.test_case "smt2 framing over a connection" `Quick
      test_smt2_framing_over_connection;
    Alcotest.test_case "smt2: push/pop scoping" `Quick
      test_smt2_push_pop_scoping;
    Alcotest.test_case "smt2: pop below stack" `Quick test_smt2_pop_below_stack;
    Alcotest.test_case "smt2: malformed input recovery" `Quick
      test_smt2_malformed_recovery;
    Alcotest.test_case "smt2: = on Bool is iff" `Quick
      test_smt2_bool_equality_is_iff;
    Alcotest.test_case "smt2: let and ite" `Quick test_smt2_let_and_ite;
    Alcotest.test_case "smt2: duplicate declaration" `Quick
      test_smt2_duplicate_declaration;
    Alcotest.test_case "smt2: get-model freshness" `Quick
      test_smt2_get_model_needs_sat;
    Alcotest.test_case "smt2: print-success" `Quick test_smt2_print_success;
    Alcotest.test_case "smt2: Int branch-and-bound" `Quick
      test_smt2_int_sort_branch_and_bound;
    Alcotest.test_case "smt2: stream splitting" `Quick test_smt2_split_complete;
    Alcotest.test_case "smt2: reset / reset-assertions" `Quick
      test_smt2_reset_and_reset_assertions;
    Alcotest.test_case "executor: runs everything" `Quick
      test_executor_runs_everything;
    Alcotest.test_case "executor: bounded queue rejects" `Quick
      test_executor_bounded_queue_rejects;
    Alcotest.test_case "executor: shutdown refuses work" `Quick
      test_executor_shutdown_refuses_new_work;
    Alcotest.test_case "executor: contains exceptions" `Quick
      test_executor_contains_job_exceptions;
    Alcotest.test_case "sjson roundtrip" `Quick test_sjson_roundtrip;
    Alcotest.test_case "sjson rejects garbage" `Quick test_sjson_rejects_garbage;
    Alcotest.test_case "protocol parse" `Quick test_protocol_parse;
  ]
