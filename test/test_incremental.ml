(* The incremental DPLL(T) hot path: differential testing of the
   persistent warm-started LP session against the from-scratch solver —
   at the LP level (verdicts, models, conflict cores) and at the engine
   level (solve, all_models, budget pressure, parallel nonlinear jobs) —
   plus unit tests for the delta computation, the verdict cache and the
   simplex checkpoint/rollback API. *)

module A = Absolver_core
module E = Absolver_nlp.Expr
module L = Absolver_lp.Linexpr
module Sx = Absolver_lp.Simplex
module Inc = Absolver_lp.Incremental
module VC = Absolver_lp.Verdict_cache
module T = Absolver_sat.Types
module Q = Absolver_numeric.Rational
module DR = Absolver_numeric.Delta_rational
module Budget = Absolver_resource.Budget

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Generators.                                                         *)

let random_cons st ~nvars ~tag =
  let nterms = 1 + Random.State.int st 3 in
  let expr = ref (L.constant (Q.of_int (Random.State.int st 11 - 5))) in
  for _ = 1 to nterms do
    let c = Random.State.int st 7 - 3 in
    if c <> 0 then
      expr := L.add_term !expr (Q.of_int c) (Random.State.int st nvars)
  done;
  let op =
    match Random.State.int st 8 with
    | 0 | 1 -> L.Le
    | 2 -> L.Lt
    | 3 | 4 -> L.Ge
    | 5 -> L.Gt
    | _ -> L.Eq
  in
  { L.expr = !expr; op; tag }

(* A pool of constraints plus box bounds keeping systems bounded; the
   box rows make most subsets feasible enough to exercise warm starts. *)
let random_pool st ~nvars ~size =
  let box =
    List.concat
      (List.init nvars (fun v ->
           [
             { L.expr = L.add_term (L.constant (Q.of_int 12)) Q.one v;
               op = L.Ge;
               tag = 1000 + (2 * v);
             };
             { L.expr = L.add_term (L.constant (Q.of_int (-12))) Q.one v;
               op = L.Le;
               tag = 1001 + (2 * v);
             };
           ]))
  in
  let pool = Array.init size (fun i -> random_cons st ~nvars ~tag:i) in
  (box, pool)

let random_subset st pool =
  Array.to_list pool
  |> List.filter (fun _ -> Random.State.bool st)

(* Same shape as the resource suite's generator: a linear AB-problem
   with enough Boolean structure to make the engine enumerate several
   models per solve. *)
let random_linear_problem st =
  let nvars_arith = 2 + Random.State.int st 3 in
  let n_defs = 2 + Random.State.int st 5 in
  let p = A.Ab_problem.create () in
  let vars =
    List.init nvars_arith (fun i ->
        A.Ab_problem.intern_arith_var p (Printf.sprintf "v%d" i))
  in
  List.iter
    (fun v ->
      A.Ab_problem.set_bounds p v ~lower:(Q.of_int (-10)) ~upper:(Q.of_int 10)
        ())
    vars;
  for b = 0 to n_defs - 1 do
    let nterms = 1 + Random.State.int st 2 in
    let terms =
      List.init nterms (fun _ ->
          E.mul
            (E.const (Q.of_int (1 + Random.State.int st 3)))
            (E.var (Random.State.int st nvars_arith)))
    in
    let expr =
      E.sub (E.sum terms) (E.const (Q.of_int (Random.State.int st 9 - 4)))
    in
    let op =
      match Random.State.int st 5 with
      | 0 | 1 -> L.Le
      | 2 | 3 -> L.Ge
      | _ -> L.Eq
    in
    A.Ab_problem.define p ~bool_var:b ~domain:A.Ab_problem.Dreal
      { E.expr; op; tag = b }
  done;
  let n_clauses = 1 + Random.State.int st 4 in
  for _ = 1 to n_clauses do
    let len = 1 + Random.State.int st 3 in
    let clause =
      List.init len (fun _ ->
          let v = Random.State.int st n_defs in
          if Random.State.bool st then T.pos v else T.neg_of_var v)
    in
    A.Ab_problem.add_clause p clause
  done;
  p

let incremental_options = A.Engine.default_options

let scratch_options =
  { A.Engine.default_options with A.Engine.use_incremental = false }

let verdict_tag = function
  | A.Engine.R_sat _ -> "sat"
  | A.Engine.R_unsat -> "unsat"
  | A.Engine.R_unknown _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* LP-level differential: Incremental.solve vs Simplex.solve_system.   *)

let model_satisfies ~case constraints model =
  let env v = Option.value ~default:Q.zero (List.assoc_opt v model) in
  List.iter
    (fun c ->
      if not (L.holds env c) then
        Alcotest.failf "case %d: session model violates tag %d" case c.L.tag)
    constraints

let core_is_conflicting ~case ~int_vars constraints core =
  let tags = List.map (fun (c : L.cons) -> c.L.tag) constraints in
  List.iter
    (fun g ->
      if not (List.mem g tags) then
        Alcotest.failf "case %d: core tag %d not among inputs" case g)
    core;
  let subset =
    List.filter (fun (c : L.cons) -> List.mem c.L.tag core) constraints
  in
  match Sx.solve_system ~int_vars subset with
  | Sx.Unsat _ -> ()
  | Sx.Sat _ -> Alcotest.failf "case %d: returned core is satisfiable" case
  | Sx.Unknown _ -> Alcotest.failf "case %d: core re-check unknown" case

let test_lp_differential () =
  let st = Random.State.make [| 0x1AC5E |] in
  let case = ref 0 in
  (* 30 independent sessions, 5 queries each = 150 differential cases;
     consecutive queries share a pool so the delta path, the cache and
     the warm-started basis all get real work. *)
  for _session = 1 to 30 do
    let nvars = 2 + Random.State.int st 3 in
    let box, pool = random_pool st ~nvars ~size:6 in
    let session = Inc.create () in
    for _query = 1 to 5 do
      incr case;
      let constraints = box @ random_subset st pool in
      let int_vars =
        if Random.State.int st 3 = 0 then [ Random.State.int st nvars ] else []
      in
      let inc = Inc.solve session ~int_vars constraints in
      let scratch = Sx.solve_system ~int_vars constraints in
      (match (inc, scratch) with
      | Sx.Sat m, Sx.Sat _ -> model_satisfies ~case:!case constraints m
      | Sx.Unsat core, Sx.Unsat _ ->
        core_is_conflicting ~case:!case ~int_vars constraints core
      | Sx.Unknown _, Sx.Unknown _ -> ()
      | _ ->
        Alcotest.failf "case %d: session and from-scratch verdicts differ"
          !case);
      (* Integer models must actually be integral on the int vars. *)
      match inc with
      | Sx.Sat m ->
        List.iter
          (fun v ->
            match List.assoc_opt v m with
            | Some q when not (Q.is_integer q) ->
              Alcotest.failf "case %d: non-integral int var" !case
            | _ -> ())
          int_vars
      | _ -> ()
    done
  done;
  check bool_t "ran 150 cases" true (!case = 150)

(* ------------------------------------------------------------------ *)
(* Engine-level differential: solve and all_models, incremental vs
   from-scratch.                                                       *)

let test_engine_solve_differential () =
  let st = Random.State.make [| 0xD1FF |] in
  for case = 1 to 120 do
    let p = random_linear_problem st in
    let inc, _ = A.Engine.solve ~options:incremental_options p in
    let scr, _ = A.Engine.solve ~options:scratch_options p in
    check Alcotest.string
      (Printf.sprintf "case %d verdict" case)
      (verdict_tag scr) (verdict_tag inc);
    List.iter
      (fun r ->
        match r with
        | A.Engine.R_sat sol -> (
          match A.Solution.check p sol with
          | Ok () -> ()
          | Error e -> Alcotest.failf "case %d: model broken: %s" case e)
        | _ -> ())
      [ inc; scr ]
  done

let bools_of_solutions sols =
  List.sort compare
    (List.map (fun (s : A.Solution.t) -> Array.to_list s.A.Solution.bools) sols)

let test_engine_all_models_differential () =
  let st = Random.State.make [| 0xA11 |] in
  for case = 1 to 60 do
    let p = random_linear_problem st in
    match
      ( A.Engine.all_models ~options:incremental_options p,
        A.Engine.all_models ~options:scratch_options p )
    with
    | Ok (inc, _), Ok (scr, _) ->
      check int_t
        (Printf.sprintf "case %d model count" case)
        (List.length scr) (List.length inc);
      check bool_t
        (Printf.sprintf "case %d model sets" case)
        true
        (bools_of_solutions inc = bools_of_solutions scr);
      List.iter
        (fun sol ->
          match A.Solution.check p sol with
          | Ok () -> ()
          | Error e -> Alcotest.failf "case %d: enumerated model broken: %s" case e)
        inc
    | Error e1, Error e2 ->
      (* Both incomplete is fine, for the same reason. *)
      check Alcotest.string (Printf.sprintf "case %d error" case) e2 e1
    | Ok _, Error e | Error e, Ok _ ->
      Alcotest.failf "case %d: only one engine enumerated (%s)" case e
  done

(* Budget pressure must degrade to Unknown, never flip an answer, and
   never break a model — same contract as the resource suite, applied to
   the incremental path. *)
let test_budget_pressure_no_flip () =
  let st = Random.State.make [| 0xB4D6E |] in
  for case = 1 to 60 do
    let p = random_linear_problem st in
    let reference, _ = A.Engine.solve ~options:scratch_options p in
    let budget =
      match Random.State.int st 3 with
      | 0 -> Budget.create ~max_steps:(1 + Random.State.int st 400) ()
      | 1 -> Budget.create ~deadline_seconds:0.0 ()
      | _ ->
        let b = Budget.create () in
        Budget.cancel b;
        b
    in
    let options = { incremental_options with A.Engine.budget } in
    let degraded, _ = A.Engine.solve ~options p in
    (match (verdict_tag reference, verdict_tag degraded) with
    | "sat", "unsat" | "unsat", "sat" ->
      Alcotest.failf "case %d: budget pressure flipped the answer" case
    | _ -> ());
    match degraded with
    | A.Engine.R_sat sol -> (
      match A.Solution.check p sol with
      | Ok () -> ()
      | Error e -> Alcotest.failf "case %d: budgeted model broken: %s" case e)
    | _ -> ()
  done

(* The incremental session must compose with a parallel nonlinear
   solver: same verdicts with [jobs > 1] as from scratch. *)
let test_jobs_differential () =
  let problems =
    [
      "p cnf 2 2\n1 0\n2 0\nc def real 1 x * x <= 2\nc def real 2 x >= 1\n\
       c bound x 0 10\n";
      "p cnf 2 2\n1 0\n2 0\nc def real 1 x * x >= 9\nc def real 2 x <= 2\n\
       c bound x 0 10\n";
      "p cnf 2 1\n1 2 0\nc def real 1 x * y >= 4\nc def real 2 x + y <= 1\n\
       c bound x 0 5\nc bound y 0 5\n";
    ]
  in
  let registry =
    {
      A.Registry.default with
      A.Registry.nonlinear = [ A.Registry.branch_prune_solver ~jobs:2 () ];
    }
  in
  List.iteri
    (fun i text ->
      match A.Dimacs_ext.parse_string text with
      | Error e -> Alcotest.fail e
      | Ok p ->
        let inc, _ = A.Engine.solve ~registry ~options:incremental_options p in
        let scr, _ = A.Engine.solve ~registry ~options:scratch_options p in
        check Alcotest.string
          (Printf.sprintf "jobs case %d" i)
          (verdict_tag scr) (verdict_tag inc))
    problems

(* ------------------------------------------------------------------ *)
(* Unit tests: delta computation.                                      *)

let cons_of ~tag coeffs k op =
  let expr =
    List.fold_left
      (fun acc (c, v) -> L.add_term acc (Q.of_int c) v)
      (L.constant (Q.of_int k))
      coeffs
  in
  { L.expr; op; tag }

let test_delta_reuse () =
  let s = Inc.create ~cache_capacity:0 () in
  let c1 = cons_of ~tag:1 [ (1, 0) ] (-5) L.Le in
  let c2 = cons_of ~tag:2 [ (1, 1) ] (-5) L.Le in
  let c3 = cons_of ~tag:3 [ (1, 0); (1, 1) ] (-8) L.Ge in
  let c4 = cons_of ~tag:4 [ (1, 0); (-1, 1) ] 0 L.Ge in
  (match Inc.solve s [ c1; c2; c3 ] with
  | Sx.Sat _ -> ()
  | _ -> Alcotest.fail "first query should be sat");
  let st = Inc.stats s in
  check int_t "asserted after q1" 3 st.Inc.asserted;
  check int_t "retracted after q1" 0 st.Inc.retracted;
  (* Shared bottom prefix c1,c2: only c3 is retracted, only c4 pushed. *)
  (match Inc.solve s [ c1; c2; c4 ] with
  | Sx.Sat _ -> ()
  | _ -> Alcotest.fail "second query should be sat");
  check int_t "asserted after q2" 4 st.Inc.asserted;
  check int_t "retracted after q2" 1 st.Inc.retracted;
  check int_t "reused after q2" 2 st.Inc.reused;
  (* Order-insensitivity: the same multiset in another order is a full
     prefix match — nothing asserted, nothing retracted. *)
  (match Inc.solve s [ c4; c2; c1 ] with
  | Sx.Sat _ -> ()
  | _ -> Alcotest.fail "third query should be sat");
  check int_t "asserted after q3" 4 st.Inc.asserted;
  check int_t "retracted after q3" 1 st.Inc.retracted;
  check int_t "reused after q3" 5 st.Inc.reused

let test_delta_multiset () =
  (* Duplicate constraints are tracked as a multiset: dropping one copy
     of a duplicated row retracts exactly one frame. *)
  let s = Inc.create ~cache_capacity:0 () in
  let c1 = cons_of ~tag:1 [ (1, 0) ] (-5) L.Le in
  ignore (Inc.solve s [ c1; c1 ]);
  let st = Inc.stats s in
  check int_t "two frames for two copies" 2 st.Inc.asserted;
  ignore (Inc.solve s [ c1 ]);
  check int_t "one copy retracted" 1 st.Inc.retracted;
  check int_t "one copy reused" 1 st.Inc.reused

(* ------------------------------------------------------------------ *)
(* Unit tests: verdict cache.                                          *)

let test_cache_signature () =
  let c = VC.create () in
  check bool_t "order-independent" true
    (VC.signature c [ "a"; "b"; "c" ] = VC.signature c [ "c"; "a"; "b" ]);
  check bool_t "multiset-sensitive" true
    (VC.signature c [ "a" ] <> VC.signature c [ "a"; "a" ])

let test_cache_hit_and_order () =
  let c = VC.create () in
  VC.add c [ "b"; "a" ] 1;
  check bool_t "hit in another order" true (VC.find c [ "a"; "b" ] = Some 1);
  check bool_t "subset misses" true (VC.find c [ "a" ] = None);
  check bool_t "superset misses" true (VC.find c [ "a"; "b"; "c" ] = None);
  check int_t "hits" 1 (VC.hits c);
  check int_t "misses" 2 (VC.misses c)

let test_cache_collisions () =
  (* A degenerate hash puts every entry in one bucket: the exact key
     comparison must still answer correctly. *)
  let c = VC.create ~hash:(fun _ -> 7L) () in
  VC.add c [ "a" ] 1;
  VC.add c [ "b" ] 2;
  VC.add c [ "b"; "b" ] 3;
  check bool_t "colliding a" true (VC.find c [ "a" ] = Some 1);
  check bool_t "colliding b" true (VC.find c [ "b" ] = Some 2);
  check bool_t "colliding bb" true (VC.find c [ "b"; "b" ] = Some 3);
  check bool_t "colliding miss" true (VC.find c [ "c" ] = None);
  check int_t "all stored" 3 (VC.size c)

let test_cache_eviction () =
  let c = VC.create ~capacity:2 () in
  VC.add c [ "a" ] 1;
  VC.add c [ "b" ] 2;
  VC.add c [ "c" ] 3;
  check int_t "capacity respected" 2 (VC.size c);
  check int_t "one eviction" 1 (VC.evictions c);
  check bool_t "oldest gone" true (VC.find c [ "a" ] = None);
  check bool_t "newest present" true (VC.find c [ "c" ] = Some 3)

let test_cache_disabled () =
  let c = VC.create ~capacity:0 () in
  VC.add c [ "a" ] 1;
  check int_t "nothing stored" 0 (VC.size c);
  check bool_t "never hits" true (VC.find c [ "a" ] = None)

let test_session_cache_replay () =
  let s = Inc.create () in
  let c1 = cons_of ~tag:1 [ (1, 0) ] (-5) L.Le in
  let c2 = cons_of ~tag:2 [ (1, 0) ] 1 L.Ge in
  let sat_set = [ c1 ] in
  let unsat_set = [ c1; cons_of ~tag:3 [ (1, 0) ] (-7) L.Ge ] in
  ignore c2;
  let v1 = Inc.solve s sat_set in
  let u1 = Inc.solve s unsat_set in
  let v2 = Inc.solve s sat_set in
  let u2 = Inc.solve s unsat_set in
  check bool_t "sat replayed" true (v1 = v2);
  check bool_t "unsat core replayed" true (u1 = u2);
  let hits =
    List.assoc "lp.inc.cache_hits" (Inc.counters s)
  in
  check bool_t "cache hit counted" true (hits >= 2)

(* ------------------------------------------------------------------ *)
(* Unit tests: simplex checkpoint/rollback and the float filter.       *)

let test_checkpoint_rollback () =
  let sx = Sx.create () in
  Sx.ensure_vars sx 2;
  (match Sx.assert_cons sx (cons_of ~tag:1 [ (1, 0) ] (-5) L.Le) with
  | Sx.Feasible -> ()
  | Sx.Infeasible _ -> Alcotest.fail "x <= 5 infeasible?");
  let cp = Sx.checkpoint sx in
  Sx.push sx;
  (match Sx.assert_cons sx (cons_of ~tag:2 [ (1, 0) ] (-7) L.Ge) with
  | Sx.Infeasible _ -> ()
  | Sx.Feasible -> (
    match Sx.check sx with
    | Sx.Infeasible _ -> ()
    | Sx.Feasible -> Alcotest.fail "x <= 5 && x >= 7 should be infeasible"));
  Sx.rollback sx cp;
  (match Sx.check sx with
  | Sx.Feasible -> ()
  | Sx.Infeasible _ -> Alcotest.fail "rollback should restore feasibility");
  (* Rolling back to the current depth is a no-op; a target above the
     current trail depth raises. *)
  Sx.rollback sx cp;
  Sx.push sx;
  let deep = Sx.checkpoint sx in
  Sx.rollback sx cp;
  match Sx.rollback sx deep with
  | () -> Alcotest.fail "rollback above the trail should raise"
  | exception Invalid_argument _ -> ()

let test_float_filter_equivalence () =
  let st = Random.State.make [| 0xF10A7 |] in
  for case = 1 to 40 do
    let nvars = 2 + Random.State.int st 3 in
    let box, pool = random_pool st ~nvars ~size:5 in
    let constraints = box @ random_subset st pool in
    let filtered = Inc.create ~cache_capacity:0 ~float_filter:true () in
    let plain = Inc.create ~cache_capacity:0 ~float_filter:false () in
    let vf = Inc.solve filtered constraints in
    let vp = Inc.solve plain constraints in
    let tag = function
      | Sx.Sat _ -> "sat"
      | Sx.Unsat _ -> "unsat"
      | Sx.Unknown _ -> "unknown"
    in
    check Alcotest.string
      (Printf.sprintf "float-filter case %d" case)
      (tag vp) (tag vf)
  done

let test_run_stats_surface () =
  (* The incremental run populates the new stats columns and they show
     up in both renderings. *)
  let st = Random.State.make [| 0x57A7 |] in
  let p = random_linear_problem st in
  let _, stats = A.Engine.solve ~options:incremental_options p in
  check bool_t "session did work" true
    (stats.A.Engine.lp_asserted > 0 || stats.A.Engine.lp_cache_hits > 0
   || stats.A.Engine.linear_checks = 0);
  let json = A.Engine.run_stats_json stats in
  let contains sub =
    let n = String.length json and m = String.length sub in
    let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> check bool_t key true (contains ("\"" ^ key ^ "\"")))
    [
      "lp_cache_hits";
      "lp_cache_misses";
      "lp_cache_evictions";
      "lp_asserted";
      "lp_retracted";
      "lp_reused";
    ];
  let scr, scr_stats = A.Engine.solve ~options:scratch_options p in
  ignore scr;
  check int_t "from-scratch run asserts nothing" 0
    scr_stats.A.Engine.lp_asserted

let suite =
  [
    Alcotest.test_case "lp differential (150 cases)" `Slow test_lp_differential;
    Alcotest.test_case "engine solve differential (120 cases)" `Slow
      test_engine_solve_differential;
    Alcotest.test_case "all_models differential (60 cases)" `Slow
      test_engine_all_models_differential;
    Alcotest.test_case "budget pressure never flips (60 cases)" `Slow
      test_budget_pressure_no_flip;
    Alcotest.test_case "jobs>1 differential" `Quick test_jobs_differential;
    Alcotest.test_case "delta reuse" `Quick test_delta_reuse;
    Alcotest.test_case "delta multiset" `Quick test_delta_multiset;
    Alcotest.test_case "cache signature" `Quick test_cache_signature;
    Alcotest.test_case "cache hit and order" `Quick test_cache_hit_and_order;
    Alcotest.test_case "cache collisions" `Quick test_cache_collisions;
    Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
    Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
    Alcotest.test_case "session cache replay" `Quick test_session_cache_replay;
    Alcotest.test_case "checkpoint/rollback" `Quick test_checkpoint_rollback;
    Alcotest.test_case "float filter equivalence (40 cases)" `Quick
      test_float_filter_equivalence;
    Alcotest.test_case "run stats surface" `Quick test_run_stats_surface;
  ]
