(* Tests for the presolve subsystem: the Absolver_preprocess passes, the
   Preprocess driver, and an equivalence suite asserting that the engine
   returns identical results with the presolve layer on and off. *)

module A = Absolver_core
module PP = Absolver_preprocess
module E = Absolver_nlp.Expr
module Box = Absolver_nlp.Box
module I = Absolver_numeric.Interval
module L = Absolver_lp.Linexpr
module T = Absolver_sat.Types
module Q = Absolver_numeric.Rational
module F = Absolver_smtlib.Fischer
module S = Absolver_encodings.Sudoku
module P = Absolver_encodings.Puzzles
module M = Absolver_model

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let parse text =
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let protect_all _ = true

let simplified = function
  | PP.Sat_simplify.Unsat -> Alcotest.fail "unexpected root unsat"
  | PP.Sat_simplify.Simplified s -> s

let lit_list_t = Alcotest.(list int)

(* ------------------------------------------------------------------ *)
(* Sat_simplify.                                                       *)

let test_sat_unit_chain () =
  let s =
    simplified
      (PP.Sat_simplify.simplify ~nvars:3
         [
           [ T.pos 0 ];
           [ T.neg_of_var 0; T.pos 1 ];
           [ T.neg_of_var 1; T.pos 2 ];
         ])
  in
  check int_t "three vars fixed" 3 (List.length s.PP.Sat_simplify.fixed);
  List.iter
    (fun (_, b) -> check bool_t "all true" true b)
    s.PP.Sat_simplify.fixed;
  (* The output CNF is the three units. *)
  check int_t "unit clauses" 3 (List.length s.PP.Sat_simplify.clauses);
  List.iter
    (fun c -> check int_t "unit" 1 (List.length c))
    s.PP.Sat_simplify.clauses

let test_sat_subsumption () =
  let s =
    simplified
      (PP.Sat_simplify.simplify ~protect:protect_all ~nvars:3
         [ [ T.pos 0; T.pos 1 ]; [ T.pos 0; T.pos 1; T.pos 2 ] ])
  in
  check int_t "subsumed clause removed" 1 (List.length s.PP.Sat_simplify.clauses);
  check lit_list_t "the short clause survives" [ T.pos 0; T.pos 1 ]
    (List.sort compare (List.hd s.PP.Sat_simplify.clauses))

let test_sat_self_subsumption () =
  (* (a or b) and (-a or b or c): resolving on a strengthens the second
     clause to (b or c). *)
  let s =
    simplified
      (PP.Sat_simplify.simplify ~protect:protect_all ~nvars:3
         [ [ T.pos 0; T.pos 1 ]; [ T.neg_of_var 0; T.pos 1; T.pos 2 ] ])
  in
  check bool_t "one literal strengthened" true
    (s.PP.Sat_simplify.stats.PP.Sat_simplify.strengthened_literals >= 1);
  check bool_t "(b or c) present" true
    (List.exists
       (fun c -> List.sort compare c = [ T.pos 1; T.pos 2 ])
       s.PP.Sat_simplify.clauses)

let test_sat_failed_literal () =
  (* Assuming a propagates b, then c, then a conflict with (-a or -c);
     the implication needs two steps, so neither subsumption nor
     resolution sees it — only probing fixes a to false. *)
  let s =
    simplified
      (PP.Sat_simplify.simplify ~protect:protect_all ~nvars:3
         [
           [ T.neg_of_var 0; T.pos 1 ];
           [ T.neg_of_var 1; T.pos 2 ];
           [ T.neg_of_var 0; T.neg_of_var 2 ];
         ])
  in
  check bool_t "a fixed false" true
    (List.mem (0, false) s.PP.Sat_simplify.fixed);
  check bool_t "a failed probe counted" true
    (s.PP.Sat_simplify.stats.PP.Sat_simplify.failed_literals >= 1)

let test_sat_pure_and_restore () =
  (* b occurs only positively and is unprotected: the clause dies; the
     reconstruction map must turn any model of the residual CNF into a
     model of the original one. *)
  let original = [ [ T.pos 0; T.pos 1 ] ] in
  let s =
    simplified
      (PP.Sat_simplify.simplify ~protect:(fun v -> v = 0) ~nvars:2 original)
  in
  check bool_t "b eliminated as pure true" true
    (List.mem (1, true) s.PP.Sat_simplify.pure);
  let model = [| false; false |] in
  PP.Sat_simplify.restore ~pure:s.PP.Sat_simplify.pure model;
  let sat_clause c =
    List.exists
      (fun l -> model.(T.var_of l) = T.is_pos l)
      c
  in
  check bool_t "restored model satisfies the original CNF" true
    (List.for_all sat_clause original)

let test_sat_root_unsat () =
  match
    PP.Sat_simplify.simplify ~nvars:1 [ [ T.pos 0 ]; [ T.neg_of_var 0 ] ]
  with
  | PP.Sat_simplify.Unsat -> ()
  | PP.Sat_simplify.Simplified _ -> Alcotest.fail "contradictory units accepted"

(* ------------------------------------------------------------------ *)
(* Lp_presolve.                                                        *)

let some_q_t =
  Alcotest.testable
    (fun fmt -> function
      | None -> Format.pp_print_string fmt "_"
      | Some q -> Q.pp fmt q)
    (fun a b ->
      match (a, b) with
      | None, None -> true
      | Some a, Some b -> Q.equal a b
      | _ -> false)

let test_lp_singleton_and_propagation () =
  let b = PP.Lp_presolve.create 2 in
  (* x0 - 5 <= 0 (singleton row), x1 - x0 <= 0 (propagates x1 <= 5). *)
  let rows =
    [
      { L.expr = L.of_list [ (Q.one, 0) ] (Q.of_int (-5)); op = L.Le; tag = 1 };
      {
        L.expr = L.of_list [ (Q.one, 1); (Q.of_int (-1), 0) ] Q.zero;
        op = L.Le;
        tag = 2;
      };
    ]
  in
  (match PP.Lp_presolve.presolve b rows with
  | PP.Lp_presolve.Infeasible_rows _ -> Alcotest.fail "feasible rows refuted"
  | PP.Lp_presolve.Presolved { tightened; _ } ->
    check bool_t "some tightening" true (tightened >= 2));
  check some_q_t "x0 <= 5" (Some (Q.of_int 5)) b.PP.Lp_presolve.hi.(0);
  check some_q_t "x1 <= 5" (Some (Q.of_int 5)) b.PP.Lp_presolve.hi.(1)

let test_lp_infeasible () =
  let b = PP.Lp_presolve.create 1 in
  b.PP.Lp_presolve.lo.(0) <- Some Q.zero;
  b.PP.Lp_presolve.hi.(0) <- Some Q.one;
  (* x0 >= 2 against x0 in [0, 1]. *)
  let row =
    { L.expr = L.of_list [ (Q.one, 0) ] (Q.of_int (-2)); op = L.Ge; tag = 7 }
  in
  check bool_t "status infeasible" true
    (PP.Lp_presolve.status b row = PP.Lp_presolve.Infeasible);
  match PP.Lp_presolve.presolve b [ row ] with
  | PP.Lp_presolve.Infeasible_rows tags ->
    check bool_t "offending tag reported" true (List.mem 7 tags)
  | PP.Lp_presolve.Presolved _ -> Alcotest.fail "infeasible row kept"

let test_lp_redundant () =
  let b = PP.Lp_presolve.create 1 in
  b.PP.Lp_presolve.lo.(0) <- Some Q.zero;
  b.PP.Lp_presolve.hi.(0) <- Some Q.one;
  (* x0 <= 2 always holds on [0, 1]: the row is dropped. *)
  let row =
    { L.expr = L.of_list [ (Q.one, 0) ] (Q.of_int (-2)); op = L.Le; tag = 3 }
  in
  check bool_t "status redundant" true
    (PP.Lp_presolve.status b row = PP.Lp_presolve.Redundant);
  match PP.Lp_presolve.presolve b [ row ] with
  | PP.Lp_presolve.Presolved { kept; dropped; _ } ->
    check int_t "dropped" 1 dropped;
    check int_t "kept" 0 (List.length kept)
  | PP.Lp_presolve.Infeasible_rows _ -> Alcotest.fail "redundant row refuted"

let test_lp_integer_rounding () =
  let b = PP.Lp_presolve.create 1 in
  (* 2*x0 <= 5 with x0 integral: x0 <= 2, not 5/2. *)
  let row =
    {
      L.expr = L.of_list [ (Q.of_int 2, 0) ] (Q.of_int (-5));
      op = L.Le;
      tag = 1;
    }
  in
  (match PP.Lp_presolve.presolve ~is_int:(fun _ -> true) b [ row ] with
  | PP.Lp_presolve.Presolved _ -> ()
  | PP.Lp_presolve.Infeasible_rows _ -> Alcotest.fail "feasible row refuted");
  check some_q_t "x0 <= 2" (Some (Q.of_int 2)) b.PP.Lp_presolve.hi.(0)

(* ------------------------------------------------------------------ *)
(* Icp.                                                                *)

let test_icp_contracts () =
  let box = Box.of_bounds [ (0, I.make (-4.0) 4.0) ] 1 in
  let rel =
    { E.expr = E.sub (E.pow (E.var 0) 2) (E.const Q.one); op = L.Le; tag = 0 }
  in
  match PP.Icp.contract ~box [ rel ] with
  | `Empty -> Alcotest.fail "x^2 <= 1 is satisfiable on [-4, 4]"
  | `Box (b, narrowed) ->
    check bool_t "narrowed" true (narrowed >= 1);
    let iv = Box.get b 0 in
    check bool_t "within [-1, 1] (outward rounded)" true
      (iv.I.lo >= -1.0001 && iv.I.hi <= 1.0001)

let test_icp_empty () =
  let box = Box.of_bounds [ (0, I.make (-4.0) 4.0) ] 1 in
  let rel =
    { E.expr = E.add (E.pow (E.var 0) 2) (E.const Q.one); op = L.Le; tag = 0 }
  in
  match PP.Icp.contract ~box [ rel ] with
  | `Empty -> ()
  | `Box _ -> Alcotest.fail "x^2 + 1 <= 0 accepted"

(* ------------------------------------------------------------------ *)
(* The Preprocess driver.                                              *)

let test_driver_arithmetic_refutation () =
  (* Clause 1 fixes "x >= 1"; the second definition "x <= 0" is then
     infeasible on the presolved bounds, so its unit feedback contradicts
     clause 2 — the whole problem dies inside presolve. *)
  let p =
    parse
      {|p cnf 2 2
1 0
2 0
c def real 1 x >= 1
c def real 2 x <= 0
|}
  in
  let pre = A.Preprocess.run p in
  check bool_t "refuted by presolve" true (pre.A.Preprocess.status = `Unsat);
  let result, stats = A.Engine.solve p in
  check bool_t "engine agrees" true (result = A.Engine.R_unsat);
  check int_t "no Boolean model ever examined" 0 stats.A.Engine.bool_models

let test_driver_unit_def_feedback () =
  (* With x in [5, 10], "x >= 0" is redundant, so variable 2's definition
     holds unconditionally; the Boolean side alone cannot fix variable 2
     (the clause is no unit), so the fix must come from the arithmetic
     feedback. *)
  let p =
    parse
      {|p cnf 2 1
1 -2 0
c def real 2 x >= 0
c bound x 5 10
|}
  in
  let pre = A.Preprocess.run p in
  check bool_t "still open" true (pre.A.Preprocess.status = `Open);
  check bool_t "unit fed back" true (pre.A.Preprocess.stats.A.Preprocess.unit_defs >= 1);
  check bool_t "defined var fixed true" true
    (List.mem (1, true) pre.A.Preprocess.fixed)

let test_driver_box_tightening () =
  (* Fixed definitions imply x in [1, 3] inside the declared [-100, 100]. *)
  let p =
    parse
      {|p cnf 1 1
1 0
c def real 1 x >= 1
c def real 1 x <= 3
c bound x -100 100
|}
  in
  let pre = A.Preprocess.run p in
  check bool_t "bounds tightened" true
    (pre.A.Preprocess.stats.A.Preprocess.tightened_bounds >= 1);
  let iv = Box.get pre.A.Preprocess.box 0 in
  check bool_t "box lower" true (iv.I.lo >= 0.999);
  check bool_t "box upper" true (iv.I.hi <= 3.001)

let test_driver_model_reconstruction () =
  (* Variable 2 is undefined and outside the projection, so presolve may
     eliminate it as pure; the engine must still hand back a model
     satisfying the clause (1 or 2) via restore_model. *)
  let p = A.Ab_problem.create () in
  A.Ab_problem.add_clause p [ T.pos 0 ];
  A.Ab_problem.add_clause p [ T.pos 1; T.pos 2 ];
  A.Ab_problem.set_projection p [ 0 ];
  let pre = A.Preprocess.run p in
  check bool_t "some variable eliminated as pure" true
    (pre.A.Preprocess.pure <> []);
  match A.Engine.solve p with
  | A.Engine.R_sat sol, _ ->
    check bool_t "reconstructed model verifies" true
      (A.Solution.check p sol = Ok ())
  | _ -> Alcotest.fail "sat expected"

(* ------------------------------------------------------------------ *)
(* Equivalence: engine results with presolve on vs off.                *)

let opts on = { A.Engine.default_options with A.Engine.use_presolve = on }

let verdict = function
  | A.Engine.R_sat _ -> "sat"
  | A.Engine.R_unsat -> "unsat"
  | A.Engine.R_unknown _ -> "unknown"

let check_solve_equiv ?(registry = A.Registry.default) name mk =
  let solve on = A.Engine.solve ~registry ~options:(opts on) (mk ()) in
  let r_on, _ = solve true in
  let r_off, _ = solve false in
  check string_t (name ^ ": same verdict") (verdict r_off) (verdict r_on);
  List.iter
    (fun r ->
      match r with
      | A.Engine.R_sat sol ->
        check bool_t (name ^ ": witness verifies") true
          (A.Solution.check (mk ()) sol = Ok ())
      | A.Engine.R_unsat | A.Engine.R_unknown _ -> ())
    [ r_on; r_off ]

let esat_text =
  {|p cnf 8 11
1 2 0
-1 3 0
2 -3 4 0
-4 5 0
5 6 0
-6 7 0
7 -8 0
1 -5 8 0
-2 -7 0
3 4 -6 0
2 5 7 0
c def real 1 u + v >= 1
c def real 2 u - v <= 3
c def real 3 2 * u + w <= 10
c def real 4 w - v >= -2
c def real 5 u + v + w <= 12
c def real 6 v >= 0
c def real 6 u + 2 * v <= 15
c def real 7 u >= 0
c def real 7 w >= 0
c def real 8 u * v <= 6
c def real 8 w * w >= 0.25
c bound u -20 20
c bound v -20 20
c bound w -20 20
|}

let nonlinear_unsat_text =
  {|p cnf 1 1
1 0
c def real 1 x * x + y * y <= 1
c def real 1 x * y >= 2
c bound x -10 10
c bound y -10 10
|}

let div_text =
  {|p cnf 1 1
1 0
c def real 1 a >= 1
c def real 1 a <= 5
c def real 1 b >= 2
c def real 1 b <= 6
c def real 1 a / b >= 0.5
c bound a -100 100
c bound b -100 100
|}

let fig2_text =
  {|p cnf 4 3
1 0
-2 3 0
4 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
c bound a -10 10
c bound x -10 10
c bound y -10 3.9
|}

let fischer_problem n =
  match F.problem ~rounds:4 ~property:(F.Cs_within (Q.of_int 2)) ~n () with
  | Ok p -> p
  | Error e -> Alcotest.failf "fischer: %s" e

let test_equiv_solve_corpus () =
  check_solve_equiv "esat" (fun () -> parse esat_text);
  check_solve_equiv "nonlinear_unsat" (fun () -> parse nonlinear_unsat_text);
  check_solve_equiv "div" (fun () -> parse div_text);
  check_solve_equiv "fig2" (fun () -> parse fig2_text);
  check_solve_equiv "fischer2" (fun () -> fischer_problem 2);
  check_solve_equiv "fischer3" (fun () -> fischer_problem 3);
  let puzzle = P.generate ~name:"presolve-equiv" ~clues:40 in
  check_solve_equiv "sudoku-mixed" (fun () -> S.absolver_problem puzzle);
  check_solve_equiv "sudoku-sat" (fun () -> S.sat_problem puzzle)

let test_equiv_solve_steering () =
  let registry =
    {
      A.Registry.default with
      A.Registry.nonlinear =
        [
          A.Registry.branch_prune_solver
            ~config:
              {
                Absolver_nlp.Branch_prune.default_config with
                Absolver_nlp.Branch_prune.max_nodes = 600;
                samples_per_node = 2;
                root_samples = 2048;
              }
            ();
        ];
    }
  in
  check_solve_equiv ~registry "steering" (fun () -> M.Steering.problem ())

let model_key projection (sol : A.Solution.t) =
  String.concat ""
    (List.map (fun v -> if sol.A.Solution.bools.(v) then "1" else "0") projection)

let check_all_models_equiv name mk =
  let problem = mk () in
  let projection =
    match A.Ab_problem.projection problem with
    | Some vs -> vs
    | None -> List.init (A.Ab_problem.num_bool_vars problem) Fun.id
  in
  let run on =
    match A.Engine.all_models ~options:(opts on) (mk ()) with
    | Ok (models, _) -> models
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  let m_on = run true and m_off = run false in
  check int_t (name ^ ": same model count") (List.length m_off)
    (List.length m_on);
  let keys ms = List.sort compare (List.map (model_key projection) ms) in
  check (Alcotest.list string_t)
    (name ^ ": same projected models")
    (keys m_off) (keys m_on);
  List.iter
    (fun sol ->
      check bool_t (name ^ ": every model verifies") true
        (A.Solution.check problem sol = Ok ()))
    m_on

let test_equiv_all_models () =
  check_all_models_equiv "disjoint-intervals" (fun () ->
      parse "p cnf 2 1\n1 2 0\nc def real 1 u <= 1\nc def real 2 u >= 2\n");
  check_all_models_equiv "free-clause" (fun () -> parse "p cnf 3 1\n1 2 3 0\n");
  check_all_models_equiv "esat" (fun () -> parse esat_text);
  check_all_models_equiv "fig2" (fun () -> parse fig2_text);
  check_all_models_equiv "fischer2" (fun () -> fischer_problem 2)

let test_equiv_optimize () =
  let mk () =
    parse
      {|p cnf 3 2
1 2 0
-2 3 0
c def real 1 u <= 2
c def real 2 u >= 5
c def real 3 u <= 7
c bound u 0 10
|}
  in
  let run on dir = A.Engine.optimize ~options:(opts on) ~objective:(L.var 0) dir (mk ()) in
  let value name a b =
    match (a, b) with
    | A.Engine.Opt_best (va, _), A.Engine.Opt_best (vb, _) ->
      check bool_t (name ^ ": same optimum") true (Q.equal va vb)
    | A.Engine.Opt_unsat, A.Engine.Opt_unsat
    | A.Engine.Opt_unbounded, A.Engine.Opt_unbounded
    | A.Engine.Opt_unknown _, A.Engine.Opt_unknown _ -> ()
    | _ -> Alcotest.failf "%s: outcomes differ with presolve" name
  in
  value "max" (run true `Maximize) (run false `Maximize);
  value "min" (run true `Minimize) (run false `Minimize);
  let unsat = parse "p cnf 2 2\n1 0\n2 0\nc def real 1 u <= 1\nc def real 2 u >= 2\n" in
  match A.Engine.optimize ~options:(opts true) ~objective:(L.var 0) `Maximize unsat with
  | A.Engine.Opt_unsat -> ()
  | _ -> Alcotest.fail "presolved optimize must report unsat"

(* A deterministic LCG so the random corpus is reproducible. *)
let test_equiv_random_problems () =
  let state = ref 123456789 in
  let rand m =
    state := ((1103515245 * !state) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  for _ = 1 to 25 do
    let nb = 4 in
    let p = A.Ab_problem.create () in
    let x = A.Ab_problem.intern_arith_var p "x" in
    let y = A.Ab_problem.intern_arith_var p "y" in
    A.Ab_problem.set_bounds p x ~lower:(Q.of_int (-8)) ~upper:(Q.of_int 8) ();
    A.Ab_problem.set_bounds p y ~lower:(Q.of_int (-8)) ~upper:(Q.of_int 8) ();
    for v = 0 to nb - 1 do
      let a = rand 5 - 2 and b = rand 5 - 2 and c = rand 9 - 4 in
      let op = match rand 3 with 0 -> L.Le | 1 -> L.Ge | _ -> L.Lt in
      if a <> 0 || b <> 0 then
        A.Ab_problem.define p ~bool_var:v ~domain:A.Ab_problem.Dreal
          {
            E.expr =
              E.sub
                (E.add
                   (E.mul (E.const (Q.of_int a)) (E.var x))
                   (E.mul (E.const (Q.of_int b)) (E.var y)))
                (E.const (Q.of_int c));
            op;
            tag = v;
          }
    done;
    for _ = 1 to 5 do
      let lit () =
        let v = rand nb in
        if rand 2 = 0 then T.pos v else T.neg_of_var v
      in
      let c = List.sort_uniq compare [ lit (); lit (); lit () ] in
      A.Ab_problem.add_clause p c
    done;
    (match A.Ab_problem.validate p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "generated problem invalid: %s" e);
    let r_on = fst (A.Engine.solve ~options:(opts true) p) in
    let r_off = fst (A.Engine.solve ~options:(opts false) p) in
    check string_t "random: same verdict" (verdict r_off) (verdict r_on);
    let count on =
      match A.Engine.all_models ~options:(opts on) ~limit:64 p with
      | Ok (ms, _) -> List.length ms
      | Error e -> Alcotest.failf "random all-models: %s" e
    in
    check int_t "random: same model count" (count false) (count true)
  done

let suite =
  [
    ("sat: unit chain", `Quick, test_sat_unit_chain);
    ("sat: subsumption", `Quick, test_sat_subsumption);
    ("sat: self-subsumption", `Quick, test_sat_self_subsumption);
    ("sat: failed literal", `Quick, test_sat_failed_literal);
    ("sat: pure + restore", `Quick, test_sat_pure_and_restore);
    ("sat: root unsat", `Quick, test_sat_root_unsat);
    ("lp: singleton + propagation", `Quick, test_lp_singleton_and_propagation);
    ("lp: infeasible", `Quick, test_lp_infeasible);
    ("lp: redundant", `Quick, test_lp_redundant);
    ("lp: integer rounding", `Quick, test_lp_integer_rounding);
    ("icp: contraction", `Quick, test_icp_contracts);
    ("icp: empty", `Quick, test_icp_empty);
    ("driver: arithmetic refutation", `Quick, test_driver_arithmetic_refutation);
    ("driver: unit-def feedback", `Quick, test_driver_unit_def_feedback);
    ("driver: box tightening", `Quick, test_driver_box_tightening);
    ("driver: model reconstruction", `Quick, test_driver_model_reconstruction);
    ("equiv: solve corpus", `Quick, test_equiv_solve_corpus);
    ("equiv: steering", `Slow, test_equiv_solve_steering);
    ("equiv: all-models", `Quick, test_equiv_all_models);
    ("equiv: optimize", `Quick, test_equiv_optimize);
    ("equiv: random problems", `Quick, test_equiv_random_problems);
  ]
