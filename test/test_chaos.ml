(* Fault-tolerant serving (DESIGN.md Sec. 15): the seeded network chaos
   harness against the reconnecting session client — transcripts under
   faults must be byte-identical to a fault-free run, with zero daemon
   crashes, zero verdict flips and zero leaked descriptors — plus the
   supporting machinery: executor supervision, the lane panic barrier,
   I/O deadlines, frame caps, EPIPE isolation, stale-socket recovery and
   the hardened JSON parser's bounds. *)

module Server = Absolver_server.Server
module Sjson = Absolver_server.Sjson
module Io = Absolver_server.Io
module Client = Absolver_client.Client
module Pool = Absolver_parallel.Pool
module Faults = Absolver_resource.Faults
module Budget = Absolver_resource.Budget

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let open_fds () = Array.length (Sys.readdir "/proc/self/fd")

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Socket-server harness                                               *)
(* ------------------------------------------------------------------ *)

let fresh_sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "absolver-chaos-%d-%d.sock" (Unix.getpid ()) !n)

type server_handle = {
  h_srv : Server.t;
  h_th : Thread.t;
  h_result : (unit, string) result ref;
}

let start_socket_server ?config path =
  let config =
    match config with Some c -> c | None -> Test_server.test_config ()
  in
  let srv = Server.create ~config () in
  let result = ref (Ok ()) in
  let th = Thread.create (fun () -> result := Server.serve_socket srv ~path) () in
  (* wait for the listener: a refused dial means it is not up yet *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        Thread.delay 0.01;
        wait ()
      end
      else Alcotest.fail "socket server did not come up"
  in
  wait ();
  { h_srv = srv; h_th = th; h_result = result }

let stop_socket_server h =
  Server.request_stop h.h_srv;
  Thread.join h.h_th;
  Server.shutdown h.h_srv;
  match !(h.h_result) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "serve_socket: %s" e

(* ------------------------------------------------------------------ *)
(* Seeded session scripts                                              *)
(*                                                                     *)
(* Two families: flat scripts (asserts / check-sat / get-model, no     *)
(* scoping) exercise byte-identical model replay; scoped scripts       *)
(* (push/pop, verdicts only) exercise journal compaction.  Replies are *)
(* deterministic for both under arbitrary reconnects.                  *)
(* ------------------------------------------------------------------ *)

let gen_session st =
  let a () = 1 + Random.State.int st 5 in
  let r () = Random.State.int st 13 - 4 in
  let lin () =
    Printf.sprintf "(assert (<= (+ (* %d x) (* %d y)) %d))" (a ()) (a ()) (r ())
  in
  let scoped = Random.State.bool st in
  let cmds = ref [ "(declare-const y Real)"; "(declare-const x Real)" ] in
  let depth = ref 0 in
  let n = 3 + Random.State.int st 5 in
  for _ = 1 to n do
    match Random.State.int st 6 with
    | 0 | 1 -> cmds := lin () :: !cmds
    | 2 -> cmds := Printf.sprintf "(assert (>= x %d))" (r ()) :: !cmds
    | 3 when scoped ->
      incr depth;
      cmds := "(push 1)" :: !cmds
    | 4 when scoped && !depth > 0 ->
      decr depth;
      cmds := "(pop 1)" :: !cmds
    | _ -> cmds := "(check-sat)" :: !cmds
  done;
  cmds := "(check-sat)" :: !cmds;
  if not scoped then cmds := "(get-model)" :: !cmds;
  List.rev !cmds

(* Run one script through its own client connection; the transcript is
   the concatenation of all reply lines. *)
let run_session path cfg cmds =
  match Client.connect ~config:cfg ~path () with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok cl ->
    let out =
      List.concat_map
        (fun cmd ->
          match Client.command cl cmd with
          | Ok rs -> rs
          | Error e -> Alcotest.failf "command %s: %s" cmd e)
        cmds
    in
    Client.close cl;
    out

(* A small thread pool over an array of jobs: the chaos suite drives
   many sessions concurrently, like real clients would. *)
let map_par nthreads f xs =
  let arr = Array.of_list xs in
  let out = Array.make (Array.length arr) [] in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length arr then begin
        out.(i) <- f arr.(i);
        go ()
      end
    in
    go ()
  in
  let ths = List.init (max 1 nthreads) (fun _ -> Thread.create worker ()) in
  List.iter Thread.join ths;
  Array.to_list out

(* ------------------------------------------------------------------ *)
(* The chaos differential                                              *)
(* ------------------------------------------------------------------ *)

let chaos_client_config =
  {
    Client.default_config with
    Client.journal_solves = true;
    request_timeout_s = 10.0;
    connect_timeout_s = 10.0;
    max_attempts = 16;
    backoff_base_s = 0.002;
    backoff_max_s = 0.05;
  }

let test_chaos_differential () =
  let n_scripts = 200 in
  let scripts =
    let st = Random.State.make [| 0xc4a05 |] in
    List.init n_scripts (fun _ -> gen_session st)
  in
  let fds0 = open_fds () in
  let path = fresh_sock_path () in
  let h = start_socket_server path in
  let run cmds = run_session path chaos_client_config cmds in
  let reference = map_par 8 run scripts in
  Faults.Net.arm
    ~plan:
      {
        Faults.Net.default_plan with
        Faults.Net.seed = 42;
        max_delay_ms = 2.0;
      }
    ();
  let chaotic =
    match map_par 8 run scripts with
    | r -> r
    | exception e ->
      Faults.Net.disarm ();
      raise e
  in
  let injected = Faults.Net.injected () in
  Faults.Net.disarm ();
  let total_injected = List.fold_left (fun n (_, k) -> n + k) 0 injected in
  if total_injected = 0 then
    Alcotest.fail "chaos plan injected nothing — the harness is not wired";
  List.iteri
    (fun i (want, got) ->
      if want <> got then
        Alcotest.failf
          "script %d: transcript diverged under chaos\nfault-free: %s\nchaos:      %s"
          (i + 1)
          (String.concat " | " want)
          (String.concat " | " got))
    (List.combine reference chaotic);
  (* the daemon took the whole storm without degrading *)
  (match List.assoc "health" (Server.health_fields h.h_srv) with
  | Sjson.Str s -> check string_t "health after chaos" "ok" s
  | _ -> Alcotest.fail "health field missing");
  stop_socket_server h;
  check int_t "no leaked fds" fds0 (open_fds ())

(* Kill the daemon mid-session, restart it on the same path: the client
   reconnects and replays its journal, and the continued session's
   replies match an uninterrupted run of the same commands. *)
let test_kill_restart_replay () =
  let path = fresh_sock_path () in
  let script =
    [
      "(declare-const x Real)";
      "(assert (>= x 1))";
      "(check-sat)";
      "(get-model)";
      (* --- daemon killed and restarted here --- *)
      "(assert (<= x 5))";
      "(check-sat)";
      "(get-model)";
    ]
  in
  let h1 = start_socket_server path in
  let cl =
    match Client.connect ~config:chaos_client_config ~path () with
    | Ok cl -> cl
    | Error e -> Alcotest.failf "connect: %s" e
  in
  let run cmd =
    match Client.command cl cmd with
    | Ok rs -> rs
    | Error e -> Alcotest.failf "command %s: %s" cmd e
  in
  let first, second =
    match script with
    | a :: b :: c :: d :: rest -> ([ a; b; c; d ], rest)
    | _ -> assert false
  in
  let out1 = List.concat_map run first in
  stop_socket_server h1;
  let h2 = start_socket_server path in
  let out2 = List.concat_map run second in
  Client.close cl;
  if Client.reconnects cl < 1 then Alcotest.fail "client never reconnected";
  if Client.replayed cl = 0 then Alcotest.fail "journal was not replayed";
  (* uninterrupted reference on a fresh daemon *)
  let reference = run_session path chaos_client_config script in
  stop_socket_server h2;
  check (Alcotest.list string_t) "transcript matches uninterrupted run"
    reference (out1 @ out2)

(* ------------------------------------------------------------------ *)
(* Executor supervision                                                *)
(* ------------------------------------------------------------------ *)

let wait_for ?(timeout = 5.0) pred what =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let submit_ok e f =
  match Pool.Executor.submit e f with
  | Pool.Executor.Submitted -> ()
  | Pool.Executor.Rejected r -> Alcotest.failf "submit rejected: %s" r

let test_executor_supervision () =
  let e = Pool.Executor.create ~workers:2 ~restart_limit:2 () in
  submit_ok e (fun () -> raise Pool.Executor.Kill_worker);
  wait_for
    (fun () ->
      Pool.Executor.worker_deaths e = 1 && Pool.Executor.live_workers e = 2)
    "first worker respawn";
  check int_t "one restart used" 1 (Pool.Executor.worker_restarts e);
  check bool_t "not degraded" false (Pool.Executor.degraded e);
  let hit = Atomic.make false in
  submit_ok e (fun () -> Atomic.set hit true);
  wait_for (fun () -> Atomic.get hit) "job on respawned pool";
  (* exhaust the restart budget *)
  submit_ok e (fun () -> raise Pool.Executor.Kill_worker);
  submit_ok e (fun () -> raise Pool.Executor.Kill_worker);
  wait_for
    (fun () ->
      Pool.Executor.worker_deaths e = 3 && Pool.Executor.live_workers e = 1)
    "restart budget exhaustion";
  check bool_t "degraded after budget exhausted" true (Pool.Executor.degraded e);
  check int_t "abandoned jobs counted" 3 (Pool.Executor.lost_jobs e);
  (* the surviving worker still serves *)
  let hit2 = Atomic.make false in
  submit_ok e (fun () -> Atomic.set hit2 true);
  wait_for (fun () -> Atomic.get hit2) "job on degraded pool";
  Pool.Executor.shutdown e

(* The server's lane panic barrier: an injected exception inside a lane
   job yields one typed internal_error reply; the connection, the lane
   and the worker all survive. *)
let test_lane_panic_barrier () =
  Fun.protect ~finally:Faults.disarm_all (fun () ->
      Test_server.with_server (fun srv ->
          let conn = Test_server.connect srv in
          Faults.arm ~point:"server.lane" Faults.Raise;
          let resp =
            Test_server.roundtrip conn {|{"id":1,"op":"health"}|}
          in
          check (Alcotest.option string_t) "status error" (Some "error")
            (Test_server.str_field "status" resp);
          check (Alcotest.option string_t) "typed kind" (Some "internal_error")
            (Test_server.str_field "kind" resp);
          (* same connection, next request: the lane is alive *)
          let resp2 =
            Test_server.roundtrip conn {|{"id":2,"op":"health"}|}
          in
          check (Alcotest.option string_t) "lane survived" (Some "ok")
            (Test_server.str_field "status" resp2);
          let stats =
            Test_server.roundtrip conn {|{"id":3,"op":"stats"}|}
          in
          (match
             Option.bind (Test_server.field "stats" stats)
               (fun s ->
                 Option.bind (Sjson.member "errors" s) (Sjson.member "internal"))
           with
          | Some (Sjson.Num n) ->
            check bool_t "internal error counted" true (n >= 1.0)
          | _ -> Alcotest.fail "stats.errors.internal missing");
          ignore (Test_server.finish conn)))

(* ------------------------------------------------------------------ *)
(* I/O limits over the pipe harness                                    *)
(* ------------------------------------------------------------------ *)

let config_with_io io =
  { (Test_server.test_config ()) with Server.io }

let test_idle_timeout_reclaims () =
  let io = { Io.default_limits with Io.idle_timeout_s = Some 0.3 } in
  Test_server.with_server ~config:(config_with_io io) (fun srv ->
      let conn = Test_server.connect srv in
      let resp = Test_server.roundtrip conn {|{"id":1,"op":"health"}|} in
      check (Alcotest.option string_t) "healthy first" (Some "ok")
        (Test_server.str_field "status" resp);
      (* stay silent: the server reclaims the connection on its own *)
      let line = Test_server.recv conn in
      check (Alcotest.option string_t) "idle-timeout error"
        (Some "idle timeout, closing connection")
        (Test_server.str_field "error" line);
      (match Test_server.recv conn with
      | exception End_of_file -> ()
      | l -> Alcotest.failf "expected EOF after idle reclaim, got %s" l);
      ignore (Test_server.finish conn))

let test_read_deadline_reclaims () =
  let io = { Io.default_limits with Io.read_deadline_s = Some 0.3 } in
  Test_server.with_server ~config:(config_with_io io) (fun srv ->
      let conn = Test_server.connect srv in
      ignore (Test_server.roundtrip conn {|{"id":1,"op":"health"}|});
      (* a torn frame: bytes arrive, the newline never does *)
      output_string conn.Test_server.wr "{\"id\":2,\"op\":";
      flush conn.Test_server.wr;
      let line = Test_server.recv conn in
      check (Alcotest.option string_t) "read-deadline error"
        (Some "read deadline exceeded, closing connection")
        (Test_server.str_field "error" line);
      ignore (Test_server.finish conn))

let test_oversized_frame_rejected () =
  let io = { Io.default_limits with Io.max_frame_bytes = 512 } in
  Test_server.with_server ~config:(config_with_io io) (fun srv ->
      let conn = Test_server.connect srv in
      ignore (Test_server.roundtrip conn {|{"id":1,"op":"health"}|});
      Test_server.send conn ("{\"id\":2," ^ String.make 1024 'x');
      let line = Test_server.recv conn in
      check (Alcotest.option string_t) "oversize error"
        (Some "frame exceeds 512 bytes")
        (Test_server.str_field "error" line);
      ignore (Test_server.finish conn))

(* A peer that vanishes mid-request: the reply write fails (EPIPE), the
   client's umbrella budget is cancelled so in-flight work drains, the
   disconnect reason lands in stats, and nothing is written to the dead
   descriptor — all without touching the sibling connection. *)
let test_disconnect_mid_request () =
  Test_server.with_server (fun srv ->
      let watcher = Test_server.connect srv in
      let conn = Test_server.connect srv in
      ignore (Test_server.roundtrip conn {|{"id":1,"op":"health"}|});
      (* close only our read side: the server's next reply hits EPIPE
         while its reader is still blocked on the request pipe *)
      (try close_in conn.Test_server.rd with Sys_error _ -> ());
      Test_server.send conn
        (Test_server.solve_request 2
           (Test_server.gen_problem (Random.State.make [| 7 |])));
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec poll () =
        let resp =
          Test_server.roundtrip watcher {|{"id":9,"op":"stats"}|}
        in
        let epipe =
          Option.bind (Test_server.field "stats" resp) (fun s ->
              Option.bind (Sjson.member "disconnects" s) (Sjson.member "epipe"))
        in
        match epipe with
        | Some (Sjson.Num n) when n >= 1.0 -> ()
        | _ ->
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "epipe disconnect never recorded"
          else begin
            Thread.delay 0.02;
            poll ()
          end
      in
      poll ();
      (* the sibling is untouched and the dead client fully drained *)
      let resp = Test_server.roundtrip watcher {|{"id":10,"op":"health"}|} in
      check (Alcotest.option string_t) "sibling healthy" (Some "ok")
        (Test_server.str_field "status" resp);
      (try close_out conn.Test_server.wr with Sys_error _ -> ());
      Thread.join conn.Test_server.th;
      conn.Test_server.open_ <- false;
      ignore (Test_server.finish watcher))

(* ------------------------------------------------------------------ *)
(* EPIPE isolation over a real socket                                  *)
(* ------------------------------------------------------------------ *)

let test_write_to_closed_socket () =
  let path = fresh_sock_path () in
  let h = start_socket_server path in
  (* a rude client: sends a request and vanishes without reading *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let line = "(check-sat)\n" in
  ignore (Unix.write_substring fd line 0 (String.length line));
  Unix.close fd;
  (* the daemon must shrug it off: a well-behaved client still works *)
  let out = run_session path chaos_client_config [ "(check-sat)" ] in
  check (Alcotest.list string_t) "daemon survived EPIPE" [ "sat" ] out;
  stop_socket_server h

(* ------------------------------------------------------------------ *)
(* Stale-socket handling                                               *)
(* ------------------------------------------------------------------ *)

let test_stale_socket_removed_after_probe () =
  let path = fresh_sock_path () in
  (* a crashed daemon's residue: a bound socket file nobody answers on *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.close fd;
  check bool_t "stale file exists" true (Sys.file_exists path);
  let h = start_socket_server path in
  let out = run_session path chaos_client_config [ "(check-sat)" ] in
  check (Alcotest.list string_t) "restart over stale socket" [ "sat" ] out;
  stop_socket_server h;
  check bool_t "socket removed at shutdown" false (Sys.file_exists path)

let test_live_socket_not_hijacked () =
  let path = fresh_sock_path () in
  let h = start_socket_server path in
  let srv2 = Server.create ~config:(Test_server.test_config ()) () in
  (match Server.serve_socket srv2 ~path with
  | Ok () -> Alcotest.fail "second daemon bound over a live socket"
  | Error e ->
    check bool_t "live-daemon error" true (contains ~needle:"live daemon" e));
  Server.shutdown srv2;
  (* the original daemon is unharmed *)
  let out = run_session path chaos_client_config [ "(check-sat)" ] in
  check (Alcotest.list string_t) "original daemon unharmed" [ "sat" ] out;
  stop_socket_server h

let test_non_socket_file_not_destroyed () =
  let path = Filename.temp_file "absolver-chaos" ".not-a-socket" in
  let oc = open_out path in
  output_string oc "precious";
  close_out oc;
  let srv = Server.create ~config:(Test_server.test_config ()) () in
  (match Server.serve_socket srv ~path with
  | Ok () -> Alcotest.fail "bound over a regular file"
  | Error _ -> ());
  Server.shutdown srv;
  let ic = open_in path in
  let contents = input_line ic in
  close_in ic;
  Sys.remove path;
  check string_t "regular file untouched" "precious" contents

(* ------------------------------------------------------------------ *)
(* Client unit behaviour                                               *)
(* ------------------------------------------------------------------ *)

let test_backoff_deterministic () =
  let cfg = { Client.default_config with Client.backoff_base_s = 0.01 } in
  let sched seed =
    let rng = Random.State.make [| seed |] in
    List.init 10 (fun i -> Client.backoff_s cfg ~rng ~attempt:(i + 1))
  in
  check (Alcotest.list (Alcotest.float 0.0)) "same seed, same schedule"
    (sched 5) (sched 5);
  if sched 5 = sched 6 then Alcotest.fail "different seeds, same schedule";
  List.iter
    (fun d ->
      if d <= 0.0 || d > cfg.Client.backoff_max_s then
        Alcotest.failf "delay %f outside (0, %f]" d cfg.Client.backoff_max_s)
    (sched 5)

let test_journal_compaction () =
  let path = fresh_sock_path () in
  let h = start_socket_server path in
  let cl =
    match Client.connect ~config:Client.default_config ~path () with
    | Ok cl -> cl
    | Error e -> Alcotest.failf "connect: %s" e
  in
  let run cmd =
    match Client.command cl cmd with
    | Ok rs -> rs
    | Error e -> Alcotest.failf "command %s: %s" cmd e
  in
  ignore (run "(declare-const x Real)");
  ignore (run "(assert (>= x 1))");
  ignore (run "(push 1)");
  ignore (run "(assert (<= x 0))");
  check int_t "journal holds base + pushed frame" 3 (Client.journal_length cl);
  ignore (run "(pop 1)");
  check int_t "popped frame compacted away" 2 (Client.journal_length cl);
  (* check-sat is not journaled unless journal_solves *)
  ignore (run "(check-sat)");
  check int_t "solves not journaled" 2 (Client.journal_length cl);
  Client.close cl;
  stop_socket_server h

(* ------------------------------------------------------------------ *)
(* Hardened JSON parsing                                               *)
(* ------------------------------------------------------------------ *)

let test_sjson_bounds () =
  (match Sjson.parse (String.make 600 '[') with
  | Error e ->
    check bool_t "deep nesting rejected" true
      (contains ~needle:"nesting deeper than" e)
  | Ok _ -> Alcotest.fail "600-deep nesting accepted");
  (match Sjson.parse "\"never closed" with
  | Error e ->
    check string_t "unterminated string reports opening byte"
      "unterminated string (opened at byte 0)" e
  | Ok _ -> Alcotest.fail "unterminated string accepted");
  (match Sjson.parse "{\"key\":\"broken" with
  | Error e ->
    check string_t "offset points at the string, not EOF"
      "unterminated string (opened at byte 7)" e
  | Ok _ -> Alcotest.fail "unterminated value accepted");
  let huge =
    "[" ^ String.concat "," (List.init 1_100_000 (fun _ -> "1")) ^ "]"
  in
  match Sjson.parse huge with
  | Error e ->
    check bool_t "node count capped" true
      (contains ~needle:"document too large" e)
  | Ok _ -> Alcotest.fail "1.1M-node document accepted"

let suite =
  [
    Alcotest.test_case "chaos: 200-script differential" `Slow
      test_chaos_differential;
    Alcotest.test_case "chaos: kill-and-restart with replay" `Slow
      test_kill_restart_replay;
    Alcotest.test_case "supervision: executor respawns workers" `Quick
      test_executor_supervision;
    Alcotest.test_case "supervision: lane panic barrier" `Quick
      test_lane_panic_barrier;
    Alcotest.test_case "io: idle timeout reclaims" `Quick
      test_idle_timeout_reclaims;
    Alcotest.test_case "io: read deadline reclaims" `Quick
      test_read_deadline_reclaims;
    Alcotest.test_case "io: oversized frame rejected" `Quick
      test_oversized_frame_rejected;
    Alcotest.test_case "io: disconnect mid-request" `Quick
      test_disconnect_mid_request;
    Alcotest.test_case "io: write to closed socket" `Quick
      test_write_to_closed_socket;
    Alcotest.test_case "socket: stale file removed after probe" `Quick
      test_stale_socket_removed_after_probe;
    Alcotest.test_case "socket: live daemon not hijacked" `Quick
      test_live_socket_not_hijacked;
    Alcotest.test_case "socket: regular file not destroyed" `Quick
      test_non_socket_file_not_destroyed;
    Alcotest.test_case "client: deterministic backoff" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "client: journal compaction" `Quick
      test_journal_compaction;
    Alcotest.test_case "sjson: adversarial bounds" `Quick test_sjson_bounds;
  ]
