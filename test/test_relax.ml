(* Tests for the linear relaxation layer (DESIGN.md Sec. 17): exact cut
   soundness over sampled box points, the octagon middle tier, the
   scoped incremental-session API, and a seeded relax-on/off
   differential suite at --jobs 1 and --jobs 4. *)

module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval
module E = Absolver_nlp.Expr
module Box = Absolver_nlp.Box
module BP = Absolver_nlp.Branch_prune
module L = Absolver_lp.Linexpr
module Inc = Absolver_lp.Incremental
module Oct = Absolver_relax.Octagon
module Relax = Absolver_relax.Relax
module A = Absolver_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Cut soundness: every enclosure brackets the expression and every    *)
(* cut over-approximates the atom at sampled points of the box. All    *)
(* sample coordinates are small dyadics (multiples of 1/8), so float   *)
(* boxes represent them exactly and every rational evaluation below is *)
(* exact — no float slop anywhere in the comparisons.                  *)

let grid_points (ranges : (float * float) list) =
  (* Per-variable: endpoints, midpoint, and two interior dyadics. *)
  let per_var (lo, hi) =
    let mid = (lo +. hi) /. 2.0 in
    List.sort_uniq compare
      [ lo; hi; mid; (lo +. mid) /. 2.0; (mid +. hi) /. 2.0 ]
  in
  List.fold_left
    (fun acc r ->
      List.concat_map (fun p -> List.map (fun v -> v :: p) (per_var r)) acc)
    [ [] ]
    ranges
  |> List.map (fun p -> Array.of_list (List.rev p))

let box_of_ranges ranges =
  Box.of_bounds
    (List.mapi (fun i (lo, hi) -> (i, I.make lo hi)) ranges)
    (List.length ranges)

let q_env (p : float array) v = Q.of_float p.(v)

(* The rational-arithmetic fragment: evaluation is exact, so the bracket
   check is an exact rational comparison. *)
let check_enclosure_exact name expr ranges =
  let box = box_of_ranges ranges in
  let enc = Relax.enclose_expr ~box expr in
  List.iter
    (fun p ->
      match E.eval_exact (q_env p) expr with
      | None -> Alcotest.failf "%s: expected exact evaluation" name
      | Some v ->
        (match enc.Relax.enc_lo with
        | Some lo ->
          let lv = L.eval (q_env p) lo in
          if Q.compare lv v > 0 then
            Alcotest.failf "%s: lower enclosure %s > value %s" name
              (Q.to_string lv) (Q.to_string v)
        | None -> ());
        (match enc.Relax.enc_hi with
        | Some hi ->
          let hv = L.eval (q_env p) hi in
          if Q.compare hv v < 0 then
            Alcotest.failf "%s: upper enclosure %s < value %s" name
              (Q.to_string hv) (Q.to_string v)
        | None -> ()))
    (grid_points ranges)

(* Transcendentals have no exact evaluation; the strongest exact
   statement is against the outward interval evaluation at the (exactly
   represented) sample point: a lower enclosure above the interval's
   upper bound — or an upper one below its lower bound — is a proven
   soundness violation. The comparisons themselves stay exact. *)
let check_enclosure_interval name expr ranges =
  let box = box_of_ranges ranges in
  let enc = Relax.enclose_expr ~box expr in
  List.iter
    (fun p ->
      let iv = E.eval_interval (fun v -> I.make p.(v) p.(v)) expr in
      (match enc.Relax.enc_lo with
      | Some lo ->
        let lv = L.eval (q_env p) lo in
        if Q.compare lv (Q.of_float (iv.I.hi)) > 0 then
          Alcotest.failf "%s: lower enclosure %s > sup %g" name
            (Q.to_string lv) (iv.I.hi)
      | None -> ());
      match enc.Relax.enc_hi with
      | Some hi ->
        let hv = L.eval (q_env p) hi in
        if Q.compare hv (Q.of_float (iv.I.lo)) < 0 then
          Alcotest.failf "%s: upper enclosure %s < inf %g" name
            (Q.to_string hv) (iv.I.lo)
      | None -> ())
    (grid_points ranges)

let x = E.var 0
let y = E.var 1

let test_enclosure_rational () =
  check_enclosure_exact "x*y" (E.mul x y) [ (-2.0, 3.0); (-1.0, 4.0) ];
  check_enclosure_exact "x*y neg" (E.mul x y) [ (-3.0, -1.0); (-2.0, -0.5) ];
  check_enclosure_exact "x^2" (E.pow x 2) [ (-2.0, 2.0) ];
  check_enclosure_exact "x^3" (E.pow x 3) [ (-1.5, 2.0) ];
  check_enclosure_exact "x/y" (E.div x y) [ (-2.0, 2.0); (1.0, 3.0) ];
  check_enclosure_exact "x^2+y^2" (E.add (E.pow x 2) (E.pow y 2))
    [ (-1.0, 2.0); (-2.0, 1.0) ];
  check_enclosure_exact "affine" (E.sub (E.add x (E.mul (E.const (Q.of_int 3)) y)) (E.const Q.one))
    [ (-2.0, 2.0); (-2.0, 2.0) ];
  check_enclosure_exact "x*y - x^2" (E.sub (E.mul x y) (E.pow x 2))
    [ (0.5, 2.0); (-1.0, 1.0) ]

let test_enclosure_transcendental () =
  check_enclosure_interval "exp" (E.exp x) [ (-1.0, 2.0) ];
  check_enclosure_interval "log" (E.log x) [ (0.5, 4.0) ];
  check_enclosure_interval "sqrt" (E.sqrt x) [ (0.25, 4.0) ];
  check_enclosure_interval "sin" (E.sin x) [ (-1.0, 1.5) ];
  check_enclosure_interval "cos" (E.cos x) [ (0.0, 3.0) ];
  check_enclosure_interval "x*exp(y)" (E.mul x (E.exp y))
    [ (0.5, 2.0); (-1.0, 1.0) ];
  check_enclosure_interval "sin(x)+y^2" (E.add (E.sin x) (E.pow y 2))
    [ (-1.0, 1.0); (-1.0, 1.0) ]

(* Cut soundness: any sampled point that satisfies the atom exactly
   must satisfy every generated cut (slack zero keeps the comparison
   exact). *)
let check_cuts name (rel : E.rel) ranges =
  let box = box_of_ranges ranges in
  let cuts = Relax.cuts_of_rel ~slack:Q.zero ~box rel in
  let holds_exact p =
    match E.eval_exact (q_env p) rel.E.expr with
    | None -> false
    | Some v -> (
      let s = Q.sign v in
      match rel.E.op with
      | L.Le -> s <= 0
      | L.Lt -> s < 0
      | L.Ge -> s >= 0
      | L.Gt -> s > 0
      | L.Eq -> s = 0)
  in
  let checked = ref 0 in
  List.iter
    (fun p ->
      if holds_exact p then begin
        incr checked;
        List.iter
          (fun c ->
            if not (L.holds (q_env p) c) then
              Alcotest.failf "%s: cut violated at a feasible point" name)
          cuts
      end)
    (grid_points ranges);
  if !checked = 0 then Alcotest.failf "%s: no feasible sample point" name

let test_cut_soundness () =
  check_cuts "x*y <= 2"
    { E.expr = E.sub (E.mul x y) (E.const (Q.of_int 2)); op = L.Le; tag = 0 }
    [ (-2.0, 2.0); (-2.0, 2.0) ];
  check_cuts "x^2 >= 1"
    { E.expr = E.sub (E.pow x 2) (E.const Q.one); op = L.Ge; tag = 1 }
    [ (-2.0, 2.0) ];
  check_cuts "x^2 + y^2 <= 4"
    {
      E.expr = E.sub (E.add (E.pow x 2) (E.pow y 2)) (E.const (Q.of_int 4));
      op = L.Le;
      tag = 2;
    }
    [ (-2.0, 2.0); (-2.0, 2.0) ];
  check_cuts "x/y >= 1/2 (y > 0)"
    {
      E.expr = E.sub (E.div x y) (E.const (Q.of_ints 1 2));
      op = L.Ge;
      tag = 3;
    }
    [ (-2.0, 2.0); (1.0, 3.0) ];
  check_cuts "x^3 <= 1"
    { E.expr = E.sub (E.pow x 3) (E.const Q.one); op = L.Le; tag = 4 }
    [ (-1.5, 1.5) ]

(* ------------------------------------------------------------------ *)
(* Octagon middle tier.                                                *)

let test_octagon_bounds () =
  let o = Oct.create 2 in
  Oct.add1 o 0 ~pos:true (Q.of_int 3);
  (* x <= 3 *)
  Oct.add1 o 0 ~pos:false (Q.of_int (-1));
  (* -x <= -1, i.e. x >= 1 *)
  Oct.add2 o 0 ~upos:true 1 ~vpos:true (Q.of_int 4);
  (* x + y <= 4 *)
  Oct.add2 o 0 ~upos:false 1 ~vpos:true Q.zero;
  (* y - x <= 0 *)
  check bool_t "feasible" true (Oct.close o);
  let lo, hi = Oct.bounds o 0 in
  check bool_t "x lower" true (lo = Some (Q.of_int 1));
  check bool_t "x upper" true (hi = Some (Q.of_int 3));
  let _, yhi = Oct.bounds o 1 in
  (* x + y <= 4 and y - x <= 0 pair into 2y <= 4 via strengthening *)
  check bool_t "y upper" true (yhi = Some (Q.of_int 2))

let test_octagon_negative_cycle () =
  let o = Oct.create 2 in
  Oct.add2 o 0 ~upos:true 1 ~vpos:false (Q.of_int (-1));
  (* x - y <= -1 *)
  Oct.add2 o 0 ~upos:false 1 ~vpos:true (Q.of_int (-1));
  (* y - x <= -1 *)
  check bool_t "infeasible" false (Oct.close o)

let test_octagon_strengthening () =
  (* x + y <= 2 and x - y <= 0 imply x <= 1 only through the octagonal
     strengthening step (pairing the two binary rows). *)
  let o = Oct.create 2 in
  Oct.add2 o 0 ~upos:true 1 ~vpos:true (Q.of_int 2);
  Oct.add2 o 0 ~upos:true 1 ~vpos:false Q.zero;
  check bool_t "feasible" true (Oct.close o);
  let _, hi = Oct.bounds o 0 in
  check bool_t "x upper from strengthening" true (hi = Some (Q.of_int 1))

(* ------------------------------------------------------------------ *)
(* Scoped incremental-session API.                                     *)

let le_cons ?(tag = 0) terms k =
  (* sum terms <= k, encoded as expr - k <= 0 *)
  let expr =
    List.fold_left
      (fun acc (c, v) -> L.add_term acc c v)
      (L.constant (Q.neg k)) terms
  in
  { L.expr; op = L.Le; tag }

let ge_cons ?(tag = 0) terms k =
  let expr =
    List.fold_left
      (fun acc (c, v) -> L.add_term acc c v)
      (L.constant (Q.neg k)) terms
  in
  { L.expr; op = L.Ge; tag }

let test_scoped_session () =
  let s = Inc.create () in
  Inc.scope_push s;
  check bool_t "assert x <= 1" true
    (Inc.scope_assert s (le_cons [ (Q.one, 0) ] Q.one));
  check bool_t "feasible" true (Inc.scope_check s);
  Inc.scope_push s;
  check int_t "two scopes" 2 (Inc.open_scopes s);
  let ok = Inc.scope_assert s (ge_cons [ (Q.one, 0) ] (Q.of_int 2)) in
  (* x <= 1 and x >= 2: the conflict surfaces either at assert time or
     at the next check. *)
  check bool_t "conflict detected" false (ok && Inc.scope_check s);
  Inc.scope_pop s;
  check bool_t "feasible after pop" true (Inc.scope_check s);
  Inc.scope_pop s;
  check int_t "no scopes" 0 (Inc.open_scopes s)

let test_scoped_optimize () =
  let s = Inc.create () in
  Inc.scope_push s;
  ignore (Inc.scope_assert s (le_cons [ (Q.one, 0) ] (Q.of_int 5)));
  ignore (Inc.scope_assert s (ge_cons [ (Q.one, 0) ] (Q.of_int 2)));
  check bool_t "feasible" true (Inc.scope_check s);
  (match Inc.scope_maximize s (L.var 0) with
  | Inc.Opt_value d ->
    check bool_t "max = 5" true
      (Q.equal (Absolver_numeric.Delta_rational.r d) (Q.of_int 5))
  | _ -> Alcotest.fail "expected bounded maximum");
  (match Inc.scope_minimize s (L.var 0) with
  | Inc.Opt_value d ->
    check bool_t "min = 2" true
      (Q.equal (Absolver_numeric.Delta_rational.r d) (Q.of_int 2))
  | _ -> Alcotest.fail "expected bounded minimum");
  Inc.scope_pop s

let test_solve_rejected_in_scope_mode () =
  let s = Inc.create () in
  Inc.scope_push s;
  ignore (Inc.scope_assert s (le_cons [ (Q.one, 0) ] Q.one));
  (match Inc.solve s [ le_cons [ (Q.one, 0) ] Q.zero ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Inc.solve must reject while scopes are open");
  Inc.scope_pop s

(* ------------------------------------------------------------------ *)
(* Seeded differential suite: random nonlinear AB-problems solved with *)
(* the relaxation on and off, at jobs 1 and 4. Verdicts must agree     *)
(* (modulo certified-vs-approx witnesses, which both count as sat) and *)
(* the Boolean model sets must be identical.                           *)

let rand_q st =
  (* small dyadic constants: k/4 for k in [-8, 8] *)
  Q.of_ints (Random.State.int st 17 - 8) 4

let rand_nonlinear st nreal =
  let v () = E.var (Random.State.int st nreal) in
  match Random.State.int st 8 with
  | 0 -> E.mul (v ()) (v ())
  | 1 -> E.pow (v ()) 2
  | 2 -> E.add (E.pow (v ()) 2) (E.pow (v ()) 2)
  | 3 -> E.sub (E.mul (v ()) (v ())) (v ())
  | 4 -> E.pow (v ()) 3
  | 5 -> E.sin (v ())
  | 6 -> E.add (E.mul (v ()) (v ())) (v ())
  | _ -> E.cos (v ())

let rand_problem st =
  let nbool = 2 + Random.State.int st 2 in
  let nreal = 2 in
  let p = A.Ab_problem.create () in
  A.Ab_problem.ensure_bool_vars p nbool;
  (* one clause mentioning every variable keeps all defs reachable, a
     couple of random binary clauses add Boolean structure *)
  A.Ab_problem.add_clause p
    (List.init nbool (fun i ->
         if Random.State.bool st then Absolver_sat.Types.pos (i + 1)
         else Absolver_sat.Types.neg_of_var (i + 1)));
  A.Ab_problem.add_clause p
    [
      Absolver_sat.Types.pos 1;
      (if Random.State.bool st then Absolver_sat.Types.pos 2
       else Absolver_sat.Types.neg_of_var 2);
    ];
  for v = 0 to nreal - 1 do
    let name = Printf.sprintf "x%d" v in
    let idx = A.Ab_problem.intern_arith_var p name in
    A.Ab_problem.set_bounds p idx ~lower:(Q.of_int (-2)) ~upper:(Q.of_int 2)
      ()
  done;
  for b = 1 to nbool do
    let expr = E.sub (rand_nonlinear st nreal) (E.const (rand_q st)) in
    let op = if Random.State.bool st then L.Le else L.Ge in
    A.Ab_problem.define p ~bool_var:b ~domain:A.Ab_problem.Dreal
      { E.expr; op; tag = b }
  done;
  p

let registry_jobs jobs =
  {
    A.Registry.default with
    A.Registry.nonlinear =
      [
        A.Registry.branch_prune_solver
          ~config:{ BP.default_config with BP.max_nodes = 20_000 }
          ~jobs ();
      ];
  }

let verdict_name = function
  | A.Engine.R_sat _ -> "sat"
  | A.Engine.R_unsat -> "unsat"
  | A.Engine.R_unknown _ -> "unknown"

let bool_model_set p registry relax =
  let options =
    { A.Engine.default_options with A.Engine.use_bp_relaxation = relax }
  in
  match A.Engine.all_models ~registry ~options ~limit:64 p with
  | Error e -> Alcotest.failf "all_models: %s" e
  | Ok (models, _) ->
    List.sort_uniq compare
      (List.map
         (fun (s : A.Solution.t) -> Array.to_list s.A.Solution.bools)
         models)

let differential_case st ~jobs =
  let p = rand_problem st in
  let registry = registry_jobs jobs in
  let solve relax =
    let options =
      { A.Engine.default_options with A.Engine.use_bp_relaxation = relax }
    in
    let r, _ = A.Engine.solve ~registry ~options p in
    verdict_name r
  in
  let v_on = solve true and v_off = solve false in
  if v_on <> v_off then
    Alcotest.failf "verdict differs at jobs %d: relax on %s, off %s" jobs
      v_on v_off;
  let m_on = bool_model_set p registry true
  and m_off = bool_model_set p registry false in
  if m_on <> m_off then
    Alcotest.failf "model sets differ at jobs %d (%d vs %d models)" jobs
      (List.length m_on) (List.length m_off)

let test_differential_jobs1 () =
  let st = Random.State.make [| 0x5eed; 1 |] in
  for _ = 1 to 100 do
    differential_case st ~jobs:1
  done

let test_differential_jobs4 () =
  let st = Random.State.make [| 0x5eed; 4 |] in
  for _ = 1 to 100 do
    differential_case st ~jobs:4
  done

(* ------------------------------------------------------------------ *)
(* The engine option and stats plumbing.                               *)

let steering_text =
  {|p cnf 1 1
1 0
c def real 1 x * x + y * y <= 1
c def real 1 x + y >= 2
c bound x -2 2
c bound y -2 2
|}

let test_relax_counters_surface () =
  let p =
    match A.Dimacs_ext.parse_string steering_text with
    | Ok p -> p
    | Error e -> failwith e
  in
  let r_on, st_on =
    A.Engine.solve
      ~options:{ A.Engine.default_options with A.Engine.use_bp_relaxation = true }
      p
  in
  let r_off, st_off =
    A.Engine.solve
      ~options:{ A.Engine.default_options with A.Engine.use_bp_relaxation = false }
      p
  in
  check bool_t "unsat on" true (r_on = A.Engine.R_unsat);
  check bool_t "unsat off" true (r_off = A.Engine.R_unsat);
  check bool_t "cuts asserted" true (st_on.A.Engine.relax_cuts_asserted > 0);
  check bool_t "lp checks ran" true (st_on.A.Engine.relax_lp_checks > 0);
  check int_t "no cuts when off" 0 st_off.A.Engine.relax_cuts_asserted;
  check int_t "no checks when off" 0 st_off.A.Engine.relax_lp_checks

let suite =
  [
    Alcotest.test_case "enclosure brackets rational ops exactly" `Quick
      test_enclosure_rational;
    Alcotest.test_case "enclosure brackets transcendentals" `Quick
      test_enclosure_transcendental;
    Alcotest.test_case "cuts over-approximate atoms at feasible points"
      `Quick test_cut_soundness;
    Alcotest.test_case "octagon closure bounds" `Quick test_octagon_bounds;
    Alcotest.test_case "octagon negative cycle" `Quick
      test_octagon_negative_cycle;
    Alcotest.test_case "octagonal strengthening" `Quick
      test_octagon_strengthening;
    Alcotest.test_case "scoped session push/assert/pop" `Quick
      test_scoped_session;
    Alcotest.test_case "scoped optimization" `Quick test_scoped_optimize;
    Alcotest.test_case "solve rejected in scope mode" `Quick
      test_solve_rejected_in_scope_mode;
    Alcotest.test_case "differential relax on/off, jobs 1" `Slow
      test_differential_jobs1;
    Alcotest.test_case "differential relax on/off, jobs 4" `Slow
      test_differential_jobs4;
    Alcotest.test_case "relaxation counters surface in run_stats" `Quick
      test_relax_counters_surface;
  ]
